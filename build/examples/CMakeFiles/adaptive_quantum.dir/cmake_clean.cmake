file(REMOVE_RECURSE
  "CMakeFiles/adaptive_quantum.dir/adaptive_quantum.cpp.o"
  "CMakeFiles/adaptive_quantum.dir/adaptive_quantum.cpp.o.d"
  "adaptive_quantum"
  "adaptive_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
