# Empty compiler generated dependencies file for adaptive_quantum.
# This may be replaced when dependencies are built.
