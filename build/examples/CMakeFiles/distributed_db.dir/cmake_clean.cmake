file(REMOVE_RECURSE
  "CMakeFiles/distributed_db.dir/distributed_db.cpp.o"
  "CMakeFiles/distributed_db.dir/distributed_db.cpp.o.d"
  "distributed_db"
  "distributed_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
