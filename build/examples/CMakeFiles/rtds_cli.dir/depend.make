# Empty dependencies file for rtds_cli.
# This may be replaced when dependencies are built.
