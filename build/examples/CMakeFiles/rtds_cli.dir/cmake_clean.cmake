file(REMOVE_RECURSE
  "CMakeFiles/rtds_cli.dir/rtds_cli.cpp.o"
  "CMakeFiles/rtds_cli.dir/rtds_cli.cpp.o.d"
  "rtds_cli"
  "rtds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
