file(REMOVE_RECURSE
  "CMakeFiles/debug_calibration.dir/__/tools/debug_calibration.cpp.o"
  "CMakeFiles/debug_calibration.dir/__/tools/debug_calibration.cpp.o.d"
  "debug_calibration"
  "debug_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
