# Empty dependencies file for debug_calibration.
# This may be replaced when dependencies are built.
