file(REMOVE_RECURSE
  "CMakeFiles/bench_interconnect_ablation.dir/bench_interconnect_ablation.cpp.o"
  "CMakeFiles/bench_interconnect_ablation.dir/bench_interconnect_ablation.cpp.o.d"
  "bench_interconnect_ablation"
  "bench_interconnect_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interconnect_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
