# Empty compiler generated dependencies file for bench_interconnect_ablation.
# This may be replaced when dependencies are built.
