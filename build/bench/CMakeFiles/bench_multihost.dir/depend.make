# Empty dependencies file for bench_multihost.
# This may be replaced when dependencies are built.
