file(REMOVE_RECURSE
  "CMakeFiles/bench_multihost.dir/bench_multihost.cpp.o"
  "CMakeFiles/bench_multihost.dir/bench_multihost.cpp.o.d"
  "bench_multihost"
  "bench_multihost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multihost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
