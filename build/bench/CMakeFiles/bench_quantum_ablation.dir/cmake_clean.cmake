file(REMOVE_RECURSE
  "CMakeFiles/bench_quantum_ablation.dir/bench_quantum_ablation.cpp.o"
  "CMakeFiles/bench_quantum_ablation.dir/bench_quantum_ablation.cpp.o.d"
  "bench_quantum_ablation"
  "bench_quantum_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantum_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
