# Empty dependencies file for bench_quantum_ablation.
# This may be replaced when dependencies are built.
