file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_replication.dir/bench_fig6_replication.cpp.o"
  "CMakeFiles/bench_fig6_replication.dir/bench_fig6_replication.cpp.o.d"
  "bench_fig6_replication"
  "bench_fig6_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
