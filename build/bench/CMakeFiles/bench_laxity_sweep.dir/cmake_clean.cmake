file(REMOVE_RECURSE
  "CMakeFiles/bench_laxity_sweep.dir/bench_laxity_sweep.cpp.o"
  "CMakeFiles/bench_laxity_sweep.dir/bench_laxity_sweep.cpp.o.d"
  "bench_laxity_sweep"
  "bench_laxity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laxity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
