# Empty compiler generated dependencies file for bench_laxity_sweep.
# This may be replaced when dependencies are built.
