file(REMOVE_RECURSE
  "CMakeFiles/bench_strategy_ablation.dir/bench_strategy_ablation.cpp.o"
  "CMakeFiles/bench_strategy_ablation.dir/bench_strategy_ablation.cpp.o.d"
  "bench_strategy_ablation"
  "bench_strategy_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategy_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
