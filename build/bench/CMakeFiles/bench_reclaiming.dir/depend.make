# Empty dependencies file for bench_reclaiming.
# This may be replaced when dependencies are built.
