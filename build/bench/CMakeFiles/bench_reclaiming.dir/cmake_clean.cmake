file(REMOVE_RECURSE
  "CMakeFiles/bench_reclaiming.dir/bench_reclaiming.cpp.o"
  "CMakeFiles/bench_reclaiming.dir/bench_reclaiming.cpp.o.d"
  "bench_reclaiming"
  "bench_reclaiming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reclaiming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
