file(REMOVE_RECURSE
  "CMakeFiles/rtds_db.dir/database.cc.o"
  "CMakeFiles/rtds_db.dir/database.cc.o.d"
  "CMakeFiles/rtds_db.dir/placement.cc.o"
  "CMakeFiles/rtds_db.dir/placement.cc.o.d"
  "CMakeFiles/rtds_db.dir/transaction.cc.o"
  "CMakeFiles/rtds_db.dir/transaction.cc.o.d"
  "librtds_db.a"
  "librtds_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
