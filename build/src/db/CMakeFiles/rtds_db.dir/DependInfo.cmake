
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/rtds_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/rtds_db.dir/database.cc.o.d"
  "/root/repo/src/db/placement.cc" "src/db/CMakeFiles/rtds_db.dir/placement.cc.o" "gcc" "src/db/CMakeFiles/rtds_db.dir/placement.cc.o.d"
  "/root/repo/src/db/transaction.cc" "src/db/CMakeFiles/rtds_db.dir/transaction.cc.o" "gcc" "src/db/CMakeFiles/rtds_db.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rtds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/rtds_tasks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
