file(REMOVE_RECURSE
  "librtds_db.a"
)
