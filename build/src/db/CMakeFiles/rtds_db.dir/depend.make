# Empty dependencies file for rtds_db.
# This may be replaced when dependencies are built.
