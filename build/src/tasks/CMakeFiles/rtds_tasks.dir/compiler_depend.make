# Empty compiler generated dependencies file for rtds_tasks.
# This may be replaced when dependencies are built.
