file(REMOVE_RECURSE
  "librtds_tasks.a"
)
