file(REMOVE_RECURSE
  "CMakeFiles/rtds_tasks.dir/batch.cc.o"
  "CMakeFiles/rtds_tasks.dir/batch.cc.o.d"
  "CMakeFiles/rtds_tasks.dir/task.cc.o"
  "CMakeFiles/rtds_tasks.dir/task.cc.o.d"
  "CMakeFiles/rtds_tasks.dir/workload.cc.o"
  "CMakeFiles/rtds_tasks.dir/workload.cc.o.d"
  "librtds_tasks.a"
  "librtds_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
