# Empty dependencies file for rtds_search.
# This may be replaced when dependencies are built.
