file(REMOVE_RECURSE
  "CMakeFiles/rtds_search.dir/engine.cc.o"
  "CMakeFiles/rtds_search.dir/engine.cc.o.d"
  "CMakeFiles/rtds_search.dir/partial_schedule.cc.o"
  "CMakeFiles/rtds_search.dir/partial_schedule.cc.o.d"
  "librtds_search.a"
  "librtds_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
