file(REMOVE_RECURSE
  "librtds_search.a"
)
