# Empty dependencies file for rtds_sim.
# This may be replaced when dependencies are built.
