file(REMOVE_RECURSE
  "CMakeFiles/rtds_sim.dir/simulator.cc.o"
  "CMakeFiles/rtds_sim.dir/simulator.cc.o.d"
  "librtds_sim.a"
  "librtds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
