file(REMOVE_RECURSE
  "librtds_sim.a"
)
