file(REMOVE_RECURSE
  "CMakeFiles/rtds_exp.dir/analysis.cc.o"
  "CMakeFiles/rtds_exp.dir/analysis.cc.o.d"
  "CMakeFiles/rtds_exp.dir/experiment.cc.o"
  "CMakeFiles/rtds_exp.dir/experiment.cc.o.d"
  "CMakeFiles/rtds_exp.dir/table.cc.o"
  "CMakeFiles/rtds_exp.dir/table.cc.o.d"
  "librtds_exp.a"
  "librtds_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
