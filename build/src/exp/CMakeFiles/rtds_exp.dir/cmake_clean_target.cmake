file(REMOVE_RECURSE
  "librtds_exp.a"
)
