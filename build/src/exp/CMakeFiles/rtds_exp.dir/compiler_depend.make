# Empty compiler generated dependencies file for rtds_exp.
# This may be replaced when dependencies are built.
