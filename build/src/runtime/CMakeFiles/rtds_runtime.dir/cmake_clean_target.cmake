file(REMOVE_RECURSE
  "librtds_runtime.a"
)
