file(REMOVE_RECURSE
  "CMakeFiles/rtds_runtime.dir/threaded_runtime.cc.o"
  "CMakeFiles/rtds_runtime.dir/threaded_runtime.cc.o.d"
  "librtds_runtime.a"
  "librtds_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
