
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/threaded_runtime.cc" "src/runtime/CMakeFiles/rtds_runtime.dir/threaded_runtime.cc.o" "gcc" "src/runtime/CMakeFiles/rtds_runtime.dir/threaded_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rtds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/rtds_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/rtds_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rtds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rtds_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
