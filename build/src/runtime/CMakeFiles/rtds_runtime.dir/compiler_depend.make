# Empty compiler generated dependencies file for rtds_runtime.
# This may be replaced when dependencies are built.
