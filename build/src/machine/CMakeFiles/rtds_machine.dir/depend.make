# Empty dependencies file for rtds_machine.
# This may be replaced when dependencies are built.
