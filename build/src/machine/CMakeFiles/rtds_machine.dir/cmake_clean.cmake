file(REMOVE_RECURSE
  "CMakeFiles/rtds_machine.dir/cluster.cc.o"
  "CMakeFiles/rtds_machine.dir/cluster.cc.o.d"
  "CMakeFiles/rtds_machine.dir/interconnect.cc.o"
  "CMakeFiles/rtds_machine.dir/interconnect.cc.o.d"
  "CMakeFiles/rtds_machine.dir/schedule_export.cc.o"
  "CMakeFiles/rtds_machine.dir/schedule_export.cc.o.d"
  "CMakeFiles/rtds_machine.dir/validator.cc.o"
  "CMakeFiles/rtds_machine.dir/validator.cc.o.d"
  "librtds_machine.a"
  "librtds_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
