file(REMOVE_RECURSE
  "librtds_machine.a"
)
