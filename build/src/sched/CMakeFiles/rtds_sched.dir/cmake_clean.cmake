file(REMOVE_RECURSE
  "CMakeFiles/rtds_sched.dir/algorithm.cc.o"
  "CMakeFiles/rtds_sched.dir/algorithm.cc.o.d"
  "CMakeFiles/rtds_sched.dir/driver.cc.o"
  "CMakeFiles/rtds_sched.dir/driver.cc.o.d"
  "CMakeFiles/rtds_sched.dir/partitioned.cc.o"
  "CMakeFiles/rtds_sched.dir/partitioned.cc.o.d"
  "CMakeFiles/rtds_sched.dir/presets.cc.o"
  "CMakeFiles/rtds_sched.dir/presets.cc.o.d"
  "CMakeFiles/rtds_sched.dir/quantum.cc.o"
  "CMakeFiles/rtds_sched.dir/quantum.cc.o.d"
  "CMakeFiles/rtds_sched.dir/trace.cc.o"
  "CMakeFiles/rtds_sched.dir/trace.cc.o.d"
  "librtds_sched.a"
  "librtds_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
