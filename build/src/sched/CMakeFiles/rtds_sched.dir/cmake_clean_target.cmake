file(REMOVE_RECURSE
  "librtds_sched.a"
)
