# Empty dependencies file for rtds_sched.
# This may be replaced when dependencies are built.
