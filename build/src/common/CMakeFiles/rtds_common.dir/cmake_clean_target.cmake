file(REMOVE_RECURSE
  "librtds_common.a"
)
