file(REMOVE_RECURSE
  "CMakeFiles/rtds_common.dir/histogram.cc.o"
  "CMakeFiles/rtds_common.dir/histogram.cc.o.d"
  "CMakeFiles/rtds_common.dir/log.cc.o"
  "CMakeFiles/rtds_common.dir/log.cc.o.d"
  "CMakeFiles/rtds_common.dir/rng.cc.o"
  "CMakeFiles/rtds_common.dir/rng.cc.o.d"
  "CMakeFiles/rtds_common.dir/stats.cc.o"
  "CMakeFiles/rtds_common.dir/stats.cc.o.d"
  "librtds_common.a"
  "librtds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
