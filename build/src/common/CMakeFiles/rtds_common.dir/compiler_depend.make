# Empty compiler generated dependencies file for rtds_common.
# This may be replaced when dependencies are built.
