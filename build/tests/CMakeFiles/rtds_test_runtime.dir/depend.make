# Empty dependencies file for rtds_test_runtime.
# This may be replaced when dependencies are built.
