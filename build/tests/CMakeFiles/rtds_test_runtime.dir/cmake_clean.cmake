file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_runtime.dir/runtime/bounded_queue_test.cc.o"
  "CMakeFiles/rtds_test_runtime.dir/runtime/bounded_queue_test.cc.o.d"
  "CMakeFiles/rtds_test_runtime.dir/runtime/threaded_runtime_test.cc.o"
  "CMakeFiles/rtds_test_runtime.dir/runtime/threaded_runtime_test.cc.o.d"
  "rtds_test_runtime"
  "rtds_test_runtime.pdb"
  "rtds_test_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
