# Empty dependencies file for rtds_test_integration.
# This may be replaced when dependencies are built.
