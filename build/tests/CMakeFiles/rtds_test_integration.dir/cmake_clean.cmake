file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_integration.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/rtds_test_integration.dir/integration/end_to_end_test.cc.o.d"
  "rtds_test_integration"
  "rtds_test_integration.pdb"
  "rtds_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
