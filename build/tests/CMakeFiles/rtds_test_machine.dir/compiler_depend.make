# Empty compiler generated dependencies file for rtds_test_machine.
# This may be replaced when dependencies are built.
