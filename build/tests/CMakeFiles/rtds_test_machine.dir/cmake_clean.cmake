file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_machine.dir/machine/cluster_test.cc.o"
  "CMakeFiles/rtds_test_machine.dir/machine/cluster_test.cc.o.d"
  "CMakeFiles/rtds_test_machine.dir/machine/interconnect_test.cc.o"
  "CMakeFiles/rtds_test_machine.dir/machine/interconnect_test.cc.o.d"
  "CMakeFiles/rtds_test_machine.dir/machine/reclaim_test.cc.o"
  "CMakeFiles/rtds_test_machine.dir/machine/reclaim_test.cc.o.d"
  "CMakeFiles/rtds_test_machine.dir/machine/schedule_export_test.cc.o"
  "CMakeFiles/rtds_test_machine.dir/machine/schedule_export_test.cc.o.d"
  "CMakeFiles/rtds_test_machine.dir/machine/validator_test.cc.o"
  "CMakeFiles/rtds_test_machine.dir/machine/validator_test.cc.o.d"
  "rtds_test_machine"
  "rtds_test_machine.pdb"
  "rtds_test_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
