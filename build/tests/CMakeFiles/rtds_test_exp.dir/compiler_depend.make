# Empty compiler generated dependencies file for rtds_test_exp.
# This may be replaced when dependencies are built.
