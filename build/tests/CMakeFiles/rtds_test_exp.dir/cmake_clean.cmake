file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_exp.dir/exp/analysis_test.cc.o"
  "CMakeFiles/rtds_test_exp.dir/exp/analysis_test.cc.o.d"
  "CMakeFiles/rtds_test_exp.dir/exp/experiment_test.cc.o"
  "CMakeFiles/rtds_test_exp.dir/exp/experiment_test.cc.o.d"
  "CMakeFiles/rtds_test_exp.dir/exp/reclaim_experiment_test.cc.o"
  "CMakeFiles/rtds_test_exp.dir/exp/reclaim_experiment_test.cc.o.d"
  "CMakeFiles/rtds_test_exp.dir/exp/table_test.cc.o"
  "CMakeFiles/rtds_test_exp.dir/exp/table_test.cc.o.d"
  "rtds_test_exp"
  "rtds_test_exp.pdb"
  "rtds_test_exp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
