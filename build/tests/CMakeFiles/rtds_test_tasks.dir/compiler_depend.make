# Empty compiler generated dependencies file for rtds_test_tasks.
# This may be replaced when dependencies are built.
