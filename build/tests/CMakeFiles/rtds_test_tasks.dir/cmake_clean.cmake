file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_tasks.dir/tasks/batch_test.cc.o"
  "CMakeFiles/rtds_test_tasks.dir/tasks/batch_test.cc.o.d"
  "CMakeFiles/rtds_test_tasks.dir/tasks/start_time_test.cc.o"
  "CMakeFiles/rtds_test_tasks.dir/tasks/start_time_test.cc.o.d"
  "CMakeFiles/rtds_test_tasks.dir/tasks/task_test.cc.o"
  "CMakeFiles/rtds_test_tasks.dir/tasks/task_test.cc.o.d"
  "CMakeFiles/rtds_test_tasks.dir/tasks/workload_test.cc.o"
  "CMakeFiles/rtds_test_tasks.dir/tasks/workload_test.cc.o.d"
  "rtds_test_tasks"
  "rtds_test_tasks.pdb"
  "rtds_test_tasks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
