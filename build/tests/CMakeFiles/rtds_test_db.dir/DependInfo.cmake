
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/db/database_test.cc" "tests/CMakeFiles/rtds_test_db.dir/db/database_test.cc.o" "gcc" "tests/CMakeFiles/rtds_test_db.dir/db/database_test.cc.o.d"
  "/root/repo/tests/db/placement_test.cc" "tests/CMakeFiles/rtds_test_db.dir/db/placement_test.cc.o" "gcc" "tests/CMakeFiles/rtds_test_db.dir/db/placement_test.cc.o.d"
  "/root/repo/tests/db/query_mode_test.cc" "tests/CMakeFiles/rtds_test_db.dir/db/query_mode_test.cc.o" "gcc" "tests/CMakeFiles/rtds_test_db.dir/db/query_mode_test.cc.o.d"
  "/root/repo/tests/db/transaction_test.cc" "tests/CMakeFiles/rtds_test_db.dir/db/transaction_test.cc.o" "gcc" "tests/CMakeFiles/rtds_test_db.dir/db/transaction_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rtds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rtds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/rtds_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/rtds_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/rtds_search.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rtds_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/rtds_db.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rtds_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/rtds_exp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
