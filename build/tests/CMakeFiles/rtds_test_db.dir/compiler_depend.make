# Empty compiler generated dependencies file for rtds_test_db.
# This may be replaced when dependencies are built.
