file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_db.dir/db/database_test.cc.o"
  "CMakeFiles/rtds_test_db.dir/db/database_test.cc.o.d"
  "CMakeFiles/rtds_test_db.dir/db/placement_test.cc.o"
  "CMakeFiles/rtds_test_db.dir/db/placement_test.cc.o.d"
  "CMakeFiles/rtds_test_db.dir/db/query_mode_test.cc.o"
  "CMakeFiles/rtds_test_db.dir/db/query_mode_test.cc.o.d"
  "CMakeFiles/rtds_test_db.dir/db/transaction_test.cc.o"
  "CMakeFiles/rtds_test_db.dir/db/transaction_test.cc.o.d"
  "rtds_test_db"
  "rtds_test_db.pdb"
  "rtds_test_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
