# Empty dependencies file for rtds_test_sim.
# This may be replaced when dependencies are built.
