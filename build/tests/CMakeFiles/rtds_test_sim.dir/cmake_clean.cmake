file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_sim.dir/sim/simulator_property_test.cc.o"
  "CMakeFiles/rtds_test_sim.dir/sim/simulator_property_test.cc.o.d"
  "CMakeFiles/rtds_test_sim.dir/sim/simulator_test.cc.o"
  "CMakeFiles/rtds_test_sim.dir/sim/simulator_test.cc.o.d"
  "rtds_test_sim"
  "rtds_test_sim.pdb"
  "rtds_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
