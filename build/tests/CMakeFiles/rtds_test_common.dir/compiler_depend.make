# Empty compiler generated dependencies file for rtds_test_common.
# This may be replaced when dependencies are built.
