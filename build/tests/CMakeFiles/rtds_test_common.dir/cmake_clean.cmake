file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_common.dir/common/histogram_test.cc.o"
  "CMakeFiles/rtds_test_common.dir/common/histogram_test.cc.o.d"
  "CMakeFiles/rtds_test_common.dir/common/ring_buffer_test.cc.o"
  "CMakeFiles/rtds_test_common.dir/common/ring_buffer_test.cc.o.d"
  "CMakeFiles/rtds_test_common.dir/common/rng_test.cc.o"
  "CMakeFiles/rtds_test_common.dir/common/rng_test.cc.o.d"
  "CMakeFiles/rtds_test_common.dir/common/stats_property_test.cc.o"
  "CMakeFiles/rtds_test_common.dir/common/stats_property_test.cc.o.d"
  "CMakeFiles/rtds_test_common.dir/common/stats_test.cc.o"
  "CMakeFiles/rtds_test_common.dir/common/stats_test.cc.o.d"
  "CMakeFiles/rtds_test_common.dir/common/time_test.cc.o"
  "CMakeFiles/rtds_test_common.dir/common/time_test.cc.o.d"
  "rtds_test_common"
  "rtds_test_common.pdb"
  "rtds_test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
