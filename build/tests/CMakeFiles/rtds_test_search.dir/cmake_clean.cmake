file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_search.dir/search/cursor_test.cc.o"
  "CMakeFiles/rtds_test_search.dir/search/cursor_test.cc.o.d"
  "CMakeFiles/rtds_test_search.dir/search/engine_test.cc.o"
  "CMakeFiles/rtds_test_search.dir/search/engine_test.cc.o.d"
  "CMakeFiles/rtds_test_search.dir/search/level_order_test.cc.o"
  "CMakeFiles/rtds_test_search.dir/search/level_order_test.cc.o.d"
  "CMakeFiles/rtds_test_search.dir/search/oracle_test.cc.o"
  "CMakeFiles/rtds_test_search.dir/search/oracle_test.cc.o.d"
  "CMakeFiles/rtds_test_search.dir/search/partial_schedule_test.cc.o"
  "CMakeFiles/rtds_test_search.dir/search/partial_schedule_test.cc.o.d"
  "CMakeFiles/rtds_test_search.dir/search/representation_test.cc.o"
  "CMakeFiles/rtds_test_search.dir/search/representation_test.cc.o.d"
  "CMakeFiles/rtds_test_search.dir/search/strategy_test.cc.o"
  "CMakeFiles/rtds_test_search.dir/search/strategy_test.cc.o.d"
  "rtds_test_search"
  "rtds_test_search.pdb"
  "rtds_test_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
