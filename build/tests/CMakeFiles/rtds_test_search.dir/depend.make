# Empty dependencies file for rtds_test_search.
# This may be replaced when dependencies are built.
