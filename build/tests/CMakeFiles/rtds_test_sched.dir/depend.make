# Empty dependencies file for rtds_test_sched.
# This may be replaced when dependencies are built.
