file(REMOVE_RECURSE
  "CMakeFiles/rtds_test_sched.dir/sched/algorithm_test.cc.o"
  "CMakeFiles/rtds_test_sched.dir/sched/algorithm_test.cc.o.d"
  "CMakeFiles/rtds_test_sched.dir/sched/driver_test.cc.o"
  "CMakeFiles/rtds_test_sched.dir/sched/driver_test.cc.o.d"
  "CMakeFiles/rtds_test_sched.dir/sched/partitioned_test.cc.o"
  "CMakeFiles/rtds_test_sched.dir/sched/partitioned_test.cc.o.d"
  "CMakeFiles/rtds_test_sched.dir/sched/quantum_test.cc.o"
  "CMakeFiles/rtds_test_sched.dir/sched/quantum_test.cc.o.d"
  "CMakeFiles/rtds_test_sched.dir/sched/theorem_test.cc.o"
  "CMakeFiles/rtds_test_sched.dir/sched/theorem_test.cc.o.d"
  "CMakeFiles/rtds_test_sched.dir/sched/trace_test.cc.o"
  "CMakeFiles/rtds_test_sched.dir/sched/trace_test.cc.o.d"
  "rtds_test_sched"
  "rtds_test_sched.pdb"
  "rtds_test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtds_test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
