# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rtds_test_common[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_sim[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_tasks[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_machine[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_search[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_sched[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_db[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_exp[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_runtime[1]_include.cmake")
include("/root/repo/build/tests/rtds_test_integration[1]_include.cmake")
