// Live threaded deployment of the scheduling pipeline.
//
// This mirrors the paper's Paragon deployment shape with std::threads in
// one process: a host thread runs scheduling phases (same PhaseAlgorithm,
// QuantumPolicy and feasibility machinery as the simulation) and m worker
// threads drain their ready-queue mailboxes, "executing" each task by
// sleeping for its execution cost (optionally scaled). Deadlines are checked
// against the wall clock, so the run experiences real scheduling overhead,
// queueing and jitter. The DES (src/sim) remains the instrument for the
// paper's figures — this runtime exists to demonstrate the scheduler driving
// real concurrency and is exercised by integration tests with generous
// margins.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/time.h"
#include "machine/interconnect.h"
#include "sched/algorithm.h"
#include "sched/quantum.h"
#include "tasks/task.h"

namespace rtds::runtime {

using tasks::Task;

struct RuntimeConfig {
  std::uint32_t num_workers{4};
  SimDuration comm_cost{msec(2)};
  /// Virtual scheduling cost per generated vertex: sets the vertex budget
  /// of each phase exactly as in the simulation.
  SimDuration vertex_cost{usec(10)};
  /// Execution sleep = execution cost * time_scale. Values < 1 shrink the
  /// wall time of demos; 1.0 executes in real time.
  double time_scale{1.0};
  std::size_t mailbox_capacity{1024};
};

struct RuntimeReport {
  std::uint64_t total_tasks{0};
  std::uint64_t scheduled{0};
  std::uint64_t deadline_hits{0};
  std::uint64_t exec_misses{0};
  std::uint64_t culled{0};
  std::uint64_t phases{0};
  std::uint64_t vertices_generated{0};
  SimDuration elapsed{SimDuration::zero()};

  [[nodiscard]] double hit_ratio() const {
    return total_tasks == 0 ? 1.0
                            : double(deadline_hits) / double(total_tasks);
  }
};

/// Runs one workload to completion on real threads and reports.
///
/// `workload` must be sorted by arrival; arrivals and deadlines are
/// interpreted relative to the runtime's start instant. The algorithm and
/// quantum policy must outlive the call (it is synchronous).
RuntimeReport run_threaded(const sched::PhaseAlgorithm& algorithm,
                           const sched::QuantumPolicy& quantum,
                           const RuntimeConfig& config,
                           const std::vector<Task>& workload);

}  // namespace rtds::runtime
