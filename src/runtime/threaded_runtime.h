// Live threaded deployment of the scheduling pipeline.
//
// This mirrors the paper's Paragon deployment shape with std::threads in
// one process: the SAME PhasePipeline that drives the DES figures runs the
// host scheduling loop here, parameterized over a ThreadedBackend
// (runtime/threaded_backend.h) whose m worker threads drain ready-queue
// mailboxes against the wall clock. run_threaded is pure glue: build the
// backend, run the pipeline, return the unified metrics.
#pragma once

#include <vector>

#include "runtime/threaded_backend.h"
#include "sched/algorithm.h"
#include "sched/pipeline.h"
#include "sched/quantum.h"
#include "tasks/task.h"

namespace rtds::runtime {

using tasks::Task;

/// Threaded runs report the same metrics struct as the DES and partitioned
/// deployments — results are directly comparable across backends. Wall
/// time elapsed is finish_time (the threaded clock starts at zero).
using RuntimeReport = sched::RunMetrics;

/// Runs one workload to completion on real threads and reports.
///
/// `workload` must be sorted by arrival; arrivals and deadlines are
/// interpreted relative to the runtime's start instant. The algorithm and
/// quantum policy must outlive the call (it is synchronous). An optional
/// observer receives one PhaseRecord per phase, as in the simulation.
RuntimeReport run_threaded(const sched::PhaseAlgorithm& algorithm,
                           const sched::QuantumPolicy& quantum,
                           const RuntimeConfig& config,
                           const std::vector<Task>& workload,
                           sched::PhaseObserver* observer = nullptr);

}  // namespace rtds::runtime
