#include "runtime/threaded_runtime.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "common/error.h"
#include "runtime/bounded_queue.h"
#include "tasks/batch.h"

namespace rtds::runtime {

namespace {

using Clock = std::chrono::steady_clock;

/// Maps the wall clock onto SimTime microseconds since runtime start.
class WallClock {
 public:
  WallClock() : start_(Clock::now()) {}

  [[nodiscard]] SimTime now() const {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - start_)
                        .count();
    return SimTime{us};
  }

  void sleep_until(SimTime t) const {
    std::this_thread::sleep_until(start_ + std::chrono::microseconds(t.us));
  }

 private:
  Clock::time_point start_;
};

struct WorkItem {
  Task task;
  SimDuration exec_cost;
};

}  // namespace

RuntimeReport run_threaded(const sched::PhaseAlgorithm& algorithm,
                           const sched::QuantumPolicy& quantum,
                           const RuntimeConfig& config,
                           const std::vector<Task>& workload) {
  RTDS_REQUIRE(config.num_workers >= 1, "run_threaded: need >= 1 worker");
  RTDS_REQUIRE(config.time_scale > 0.0, "run_threaded: bad time scale");
  RTDS_REQUIRE(config.vertex_cost > SimDuration::zero(),
               "run_threaded: vertex cost must be positive");
  for (std::size_t i = 1; i < workload.size(); ++i) {
    RTDS_REQUIRE(workload[i - 1].arrival <= workload[i].arrival,
                 "run_threaded: workload must be sorted by arrival");
  }

  RuntimeReport report;
  report.total_tasks = workload.size();
  if (workload.empty()) return report;

  const machine::Interconnect net = machine::Interconnect::cut_through(
      config.num_workers, config.comm_cost);

  WallClock clock;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};

  // One mailbox per worker; workers sleep for the (scaled) execution cost
  // and judge the deadline against the wall clock.
  std::vector<std::unique_ptr<BoundedQueue<WorkItem>>> mailboxes;
  mailboxes.reserve(config.num_workers);
  for (std::uint32_t k = 0; k < config.num_workers; ++k) {
    mailboxes.push_back(
        std::make_unique<BoundedQueue<WorkItem>>(config.mailbox_capacity));
  }

  std::vector<std::thread> workers;
  workers.reserve(config.num_workers);
  for (std::uint32_t k = 0; k < config.num_workers; ++k) {
    workers.emplace_back([&, k] {
      while (auto item = mailboxes[k]->pop()) {
        const auto scaled_us = std::llround(double(item->exec_cost.us) *
                                            config.time_scale);
        std::this_thread::sleep_for(std::chrono::microseconds(scaled_us));
        const SimTime end = clock.now();
        if (end <= item->task.deadline) {
          hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Host scheduling loop: the committed-load model is identical to the
  // simulation's Cluster (busy-until horizons), but the clock is real.
  std::vector<SimTime> busy_until(config.num_workers, SimTime::zero());
  tasks::Batch batch;
  std::size_t cursor = 0;

  while (true) {
    SimTime t = clock.now();

    std::vector<Task> arrived;
    while (cursor < workload.size() && workload[cursor].arrival <= t) {
      arrived.push_back(workload[cursor]);
      ++cursor;
    }
    batch.merge_arrivals(arrived);
    report.culled += batch.cull_missed(t).size();

    if (batch.empty()) {
      if (cursor >= workload.size()) break;
      clock.sleep_until(workload[cursor].arrival);
      continue;
    }

    const SimDuration min_slack = batch.min_slack(t);
    SimDuration min_load = SimDuration::max();
    for (SimTime b : busy_until) {
      const SimDuration load =
          b <= t ? SimDuration::zero() : b - t;
      min_load = min_duration(min_load, load);
    }
    SimDuration q = quantum.allocate(min_slack, min_load);
    q = max_duration(q, config.vertex_cost);
    const auto budget = static_cast<std::uint64_t>(q / config.vertex_cost);

    const SimTime planned_delivery = t + q;
    std::vector<SimDuration> base_loads(config.num_workers);
    for (std::uint32_t k = 0; k < config.num_workers; ++k) {
      base_loads[k] = busy_until[k] <= planned_delivery
                          ? SimDuration::zero()
                          : busy_until[k] - planned_delivery;
    }

    const sched::SearchResult result = algorithm.schedule_phase(
        batch.tasks(), std::move(base_loads), planned_delivery, net, budget);
    ++report.phases;
    report.vertices_generated += result.stats.vertices_generated;

    // Deliver: push into mailboxes and update committed horizons from the
    // actual push time (earlier than planned delivery is safe — the
    // feasibility test charged the full quantum).
    std::unordered_set<tasks::TaskId> scheduled_ids;
    const SimTime push_time = clock.now();
    for (const search::Assignment& a : result.schedule) {
      const Task& task = batch.tasks()[a.task_index];
      const SimDuration cost =
          task.processing + net.comm_cost(task.affinity, a.worker);
      mailboxes[a.worker]->push(WorkItem{task, cost});
      const SimTime start =
          busy_until[a.worker] < push_time ? push_time
                                           : busy_until[a.worker];
      busy_until[a.worker] = start + cost;
      scheduled_ids.insert(task.id);
      ++report.scheduled;
    }
    batch.remove_scheduled(scheduled_ids);
  }

  for (auto& mb : mailboxes) mb->close();
  for (std::thread& w : workers) w.join();

  report.deadline_hits = hits.load();
  report.exec_misses = misses.load();
  report.elapsed = clock.now() - SimTime::zero();
  RTDS_ASSERT(report.deadline_hits + report.exec_misses == report.scheduled);
  return report;
}

}  // namespace rtds::runtime
