#include "runtime/threaded_runtime.h"

#include "common/error.h"

namespace rtds::runtime {

RuntimeReport run_threaded(const sched::PhaseAlgorithm& algorithm,
                           const sched::QuantumPolicy& quantum,
                           const RuntimeConfig& config,
                           const std::vector<Task>& workload,
                           sched::PhaseObserver* observer) {
  RTDS_REQUIRE(config.num_workers >= 1, "run_threaded: need >= 1 worker");
  RTDS_REQUIRE(config.time_scale > 0.0, "run_threaded: bad time scale");
  RTDS_REQUIRE(config.vertex_cost > SimDuration::zero(),
               "run_threaded: vertex cost must be positive");

  // The threaded backend has no synthetic per-phase overhead: each phase's
  // real cost is the wall time the search consumed.
  sched::PipelineConfig pipeline_cfg;
  pipeline_cfg.vertex_generation_cost = config.vertex_cost;
  pipeline_cfg.phase_overhead = SimDuration::zero();
  pipeline_cfg.max_delivery_attempts = config.max_delivery_attempts;
  const sched::PhasePipeline pipeline(algorithm, quantum, pipeline_cfg);

  ThreadedBackend backend(config);
  return pipeline.run(workload, backend, observer);
}

}  // namespace rtds::runtime
