// Live threaded ExecutionBackend: real worker threads on the wall clock.
//
// This is the deployment glue that lets the ONE phase pipeline
// (sched/pipeline.h) drive actual concurrency: m worker threads drain
// their ready-queue mailboxes, "executing" each task by sleeping for its
// execution cost (optionally scaled), and deadlines are judged against the
// wall clock — so a run experiences real scheduling overhead, queueing and
// jitter. The DES (SimBackend) remains the instrument for the paper's
// figures; this backend exists to demonstrate the scheduler driving real
// threads and is exercised by integration tests with generous margins.
//
// Time mapping: the wall clock is projected onto SimTime microseconds since
// backend construction. advance() is a no-op — the search that just ran
// consumed real host time already, which is exactly the quantity the DES
// charges synthetically.
//
// Overflow policy: delivery into a full mailbox is retried a few times
// with a short bounded backoff, then refused loudly — the refusal is
// counted, reported back to the pipeline by task identity (readmission),
// and summarized in one warning per phase — instead of blocking the host
// thread indefinitely behind a slow worker; see
// RuntimeConfig::mailbox_capacity / delivery_retries / delivery_backoff.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time.h"
#include "machine/interconnect.h"
#include "runtime/bounded_queue.h"
#include "sched/backend.h"
#include "tasks/task.h"

namespace rtds::runtime {

struct RuntimeConfig {
  std::uint32_t num_workers{4};
  SimDuration comm_cost{msec(2)};
  /// Virtual scheduling cost per generated vertex: sets the vertex budget
  /// of each phase exactly as in the simulation.
  SimDuration vertex_cost{usec(10)};
  /// Execution sleep = execution cost * time_scale. Values < 1 shrink the
  /// wall time of demos; 1.0 executes in real time.
  double time_scale{1.0};
  /// Ready-queue depth per worker. Deliveries beyond this are refused and
  /// counted (RunMetrics::overflow_drops), never blocked on indefinitely;
  /// the pipeline readmits refused tasks into the next batch.
  std::size_t mailbox_capacity{1024};
  /// On a full mailbox the host retries the push this many times, sleeping
  /// `delivery_backoff` between attempts, before declaring the drop. The
  /// total wait is bounded by delivery_retries * delivery_backoff, so a
  /// stuck worker can only stall the host briefly. 0 = drop immediately.
  std::uint32_t delivery_retries{3};
  SimDuration delivery_backoff{usec(100)};
  /// Pipeline-level delivery budget per task (PipelineConfig::
  /// max_delivery_attempts): refused tasks are readmitted until this many
  /// deliver() refusals, then retired as `rejected`. 0 = unbounded.
  std::uint32_t max_delivery_attempts{8};
};

/// ExecutionBackend over std::thread workers + bounded mailboxes.
///
/// Construction spawns the workers; drain() (or destruction) closes the
/// mailboxes and joins them. One backend instance serves one pipeline run.
class ThreadedBackend final : public sched::ExecutionBackend {
 public:
  explicit ThreadedBackend(const RuntimeConfig& config);
  ~ThreadedBackend() override;

  ThreadedBackend(const ThreadedBackend&) = delete;
  ThreadedBackend& operator=(const ThreadedBackend&) = delete;

  [[nodiscard]] std::uint32_t num_workers() const override;
  [[nodiscard]] const machine::Interconnect& interconnect() const override;
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] SimDuration load(std::uint32_t worker,
                                 SimTime t) const override;
  void wait_until(SimTime t) override;
  void advance(SimDuration host_busy) override;
  sched::DeliveryResult deliver(
      const std::vector<machine::ScheduledAssignment>& schedule) override;
  sched::BackendStats drain() override;
  void bind_ledger(sched::TaskLedger* ledger) override;

  /// Deliveries refused because a mailbox was full (mirrored into
  /// RunMetrics::overflow_drops by the pipeline).
  [[nodiscard]] std::uint64_t overflow_drops() const {
    return overflow_drops_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkItem {
    tasks::Task task;
    SimDuration exec_cost;
    /// Gang sibling: occupy the worker for exec_cost but record no outcome
    /// — the lead worker's item alone judges the deadline and reports to
    /// the ledger, so a k-worker job stays ONE task in every count.
    bool occupy_only{false};
  };
  /// Per-task terminal outcome, judged by a worker against the wall clock.
  struct Outcome {
    tasks::TaskId task;
    bool hit;
  };
  using Clock = std::chrono::steady_clock;

  void shutdown();  // close mailboxes + join workers; idempotent

  RuntimeConfig config_;
  machine::Interconnect net_;
  Clock::time_point start_;

  std::vector<std::unique_ptr<BoundedQueue<WorkItem>>> mailboxes_;
  std::vector<std::thread> workers_;
  /// Committed-completion horizon per worker — the same busy-until load
  /// model as machine::Cluster, but against the wall clock.
  std::vector<SimTime> busy_until_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> overflow_drops_{0};
  /// Outcomes buffered by the workers and flushed into the bound ledger
  /// after the join in drain() — the ledger itself stays host-thread-only.
  std::mutex outcomes_mutex_;
  std::vector<Outcome> outcomes_;
  sched::TaskLedger* ledger_{nullptr};
  bool joined_{false};
};

}  // namespace rtds::runtime
