#include "runtime/threaded_backend.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace rtds::runtime {

ThreadedBackend::ThreadedBackend(const RuntimeConfig& config)
    : config_(config),
      net_(machine::Interconnect::cut_through(config.num_workers,
                                              config.comm_cost)),
      start_(Clock::now()),
      busy_until_(config.num_workers, SimTime::zero()) {
  RTDS_REQUIRE(config.num_workers >= 1,
               "ThreadedBackend: need >= 1 worker");
  RTDS_REQUIRE(config.time_scale > 0.0, "ThreadedBackend: bad time scale");

  mailboxes_.reserve(config_.num_workers);
  for (std::uint32_t k = 0; k < config_.num_workers; ++k) {
    mailboxes_.push_back(
        std::make_unique<BoundedQueue<WorkItem>>(config_.mailbox_capacity));
  }

  // Workers sleep for the (scaled) execution cost and judge the deadline
  // against the wall clock.
  workers_.reserve(config_.num_workers);
  for (std::uint32_t k = 0; k < config_.num_workers; ++k) {
    workers_.emplace_back([this, k] {
      while (auto item = mailboxes_[k]->pop()) {
        const auto scaled_us = std::llround(double(item->exec_cost.us) *
                                            config_.time_scale);
        std::this_thread::sleep_for(std::chrono::microseconds(scaled_us));
        if (item->occupy_only) continue;
        const SimTime end = now();
        const bool hit = end <= item->task.deadline;
        if (hit) {
          hits_.fetch_add(1, std::memory_order_relaxed);
        } else {
          misses_.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard lock(outcomes_mutex_);
        outcomes_.push_back({item->task.id, hit});
      }
    });
  }
}

ThreadedBackend::~ThreadedBackend() { shutdown(); }

std::uint32_t ThreadedBackend::num_workers() const {
  return config_.num_workers;
}

const machine::Interconnect& ThreadedBackend::interconnect() const {
  return net_;
}

SimTime ThreadedBackend::now() const {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start_)
                      .count();
  return SimTime{us};
}

SimDuration ThreadedBackend::load(std::uint32_t worker, SimTime t) const {
  RTDS_REQUIRE(worker < busy_until_.size(), "load: bad worker id");
  const SimTime horizon = busy_until_[worker];
  return horizon <= t ? SimDuration::zero() : horizon - t;
}

void ThreadedBackend::wait_until(SimTime t) {
  std::this_thread::sleep_until(start_ + std::chrono::microseconds(t.us));
}

void ThreadedBackend::advance(SimDuration /*host_busy*/) {
  // The wall clock already paid for the search as it ran; the virtual
  // charge the DES backends apply has no threaded counterpart.
}

sched::DeliveryResult ThreadedBackend::deliver(
    const std::vector<machine::ScheduledAssignment>& schedule) {
  sched::DeliveryResult out;
  for (const machine::ScheduledAssignment& sa : schedule) {
    const std::uint32_t k = sa.task.workers_required;
    RTDS_REQUIRE(k >= 1 && sa.worker < config_.num_workers &&
                     k <= config_.num_workers - sa.worker,
                 "deliver: gang block exceeds the machine");
    const SimDuration cost =
        sa.task.processing + net_.comm_cost(sa.task.affinity, sa.worker);
    // A gang is handed to its k mailboxes atomically or refused whole. The
    // host is the sole producer, so free slots observed across the block
    // cannot shrink before the pushes below — checking first gives
    // all-or-nothing without any rollback. A full mailbox is retried
    // briefly — a worker popping its next item frees a slot within
    // microseconds — but the total wait is bounded: the host must never
    // hang behind a stuck worker.
    const auto block_free = [&] {
      for (std::uint32_t j = 0; j < k; ++j) {
        if (mailboxes_[sa.worker + j]->free_slots() == 0) return false;
      }
      return true;
    };
    bool room = block_free();
    for (std::uint32_t attempt = 0;
         !room && attempt < config_.delivery_retries; ++attempt) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.delivery_backoff.us));
      room = block_free();
    }
    if (!room) {
      overflow_drops_.fetch_add(1, std::memory_order_relaxed);
      out.undelivered.push_back(sa);
      continue;
    }
    // Lead worker judges the deadline and reports the outcome; siblings
    // get occupy-only items so the job charges k workers but counts once.
    bool pushed = mailboxes_[sa.worker]->try_push(WorkItem{sa.task, cost});
    for (std::uint32_t j = 1; j < k; ++j) {
      pushed = mailboxes_[sa.worker + j]->try_push(
                   WorkItem{sa.task, cost, /*occupy_only=*/true}) &&
               pushed;
    }
    RTDS_CHECK_MSG(pushed,
                   "deliver: reserved gang mailbox slot disappeared");
    const SimTime push_time = now();
    SimTime start = push_time;
    for (std::uint32_t j = 0; j < k; ++j) {
      if (busy_until_[sa.worker + j] > start) {
        start = busy_until_[sa.worker + j];
      }
    }
    for (std::uint32_t j = 0; j < k; ++j) {
      busy_until_[sa.worker + j] = start + cost;
    }
    ++out.accepted;
  }
  if (!out.undelivered.empty()) {
    // One aggregated warning per phase, not one per dropped task.
    RTDS_WARN << "mailbox overflow: " << out.undelivered.size() << " of "
              << schedule.size() << " assignments refused this phase "
              << "(capacity " << config_.mailbox_capacity << ", "
              << config_.delivery_retries << " retries of "
              << config_.delivery_backoff.us
              << "us); refused tasks are readmitted";
  }
  return out;
}

sched::BackendStats ThreadedBackend::drain() {
  shutdown();
  if (ledger_ != nullptr) {
    // Workers are joined: the outcome buffer is complete and quiescent.
    std::lock_guard lock(outcomes_mutex_);
    for (const Outcome& o : outcomes_) ledger_->execute(o.task, o.hit);
    outcomes_.clear();
  }
  sched::BackendStats out;
  out.deadline_hits = hits_.load();
  out.exec_misses = misses_.load();
  out.finish_time = now();
  return out;
}

void ThreadedBackend::bind_ledger(sched::TaskLedger* ledger) {
  ledger_ = ledger;
}

void ThreadedBackend::shutdown() {
  if (joined_) return;
  for (auto& mb : mailboxes_) mb->close();
  for (std::thread& w : workers_) w.join();
  joined_ = true;
}

}  // namespace rtds::runtime
