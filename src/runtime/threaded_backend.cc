#include "runtime/threaded_backend.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace rtds::runtime {

ThreadedBackend::ThreadedBackend(const RuntimeConfig& config)
    : config_(config),
      net_(machine::Interconnect::cut_through(config.num_workers,
                                              config.comm_cost)),
      start_(Clock::now()),
      busy_until_(config.num_workers, SimTime::zero()) {
  RTDS_REQUIRE(config.num_workers >= 1,
               "ThreadedBackend: need >= 1 worker");
  RTDS_REQUIRE(config.time_scale > 0.0, "ThreadedBackend: bad time scale");

  mailboxes_.reserve(config_.num_workers);
  for (std::uint32_t k = 0; k < config_.num_workers; ++k) {
    mailboxes_.push_back(
        std::make_unique<BoundedQueue<WorkItem>>(config_.mailbox_capacity));
  }

  // Workers sleep for the (scaled) execution cost and judge the deadline
  // against the wall clock.
  workers_.reserve(config_.num_workers);
  for (std::uint32_t k = 0; k < config_.num_workers; ++k) {
    workers_.emplace_back([this, k] {
      while (auto item = mailboxes_[k]->pop()) {
        const auto scaled_us = std::llround(double(item->exec_cost.us) *
                                            config_.time_scale);
        std::this_thread::sleep_for(std::chrono::microseconds(scaled_us));
        const SimTime end = now();
        if (end <= item->task.deadline) {
          hits_.fetch_add(1, std::memory_order_relaxed);
        } else {
          misses_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
}

ThreadedBackend::~ThreadedBackend() { shutdown(); }

std::uint32_t ThreadedBackend::num_workers() const {
  return config_.num_workers;
}

const machine::Interconnect& ThreadedBackend::interconnect() const {
  return net_;
}

SimTime ThreadedBackend::now() const {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start_)
                      .count();
  return SimTime{us};
}

SimDuration ThreadedBackend::load(std::uint32_t worker, SimTime t) const {
  RTDS_REQUIRE(worker < busy_until_.size(), "load: bad worker id");
  const SimTime horizon = busy_until_[worker];
  return horizon <= t ? SimDuration::zero() : horizon - t;
}

void ThreadedBackend::wait_until(SimTime t) {
  std::this_thread::sleep_until(start_ + std::chrono::microseconds(t.us));
}

void ThreadedBackend::advance(SimDuration /*host_busy*/) {
  // The wall clock already paid for the search as it ran; the virtual
  // charge the DES backends apply has no threaded counterpart.
}

std::size_t ThreadedBackend::deliver(
    const std::vector<machine::ScheduledAssignment>& schedule) {
  std::size_t delivered = 0;
  for (const machine::ScheduledAssignment& sa : schedule) {
    RTDS_REQUIRE(sa.worker < config_.num_workers, "deliver: bad worker id");
    const SimDuration cost =
        sa.task.processing + net_.comm_cost(sa.task.affinity, sa.worker);
    if (!mailboxes_[sa.worker]->try_push(WorkItem{sa.task, cost})) {
      // Fail loudly instead of blocking the host behind a slow worker: the
      // task is dropped here and surfaces as an overflow drop, not a hang.
      overflow_drops_.fetch_add(1, std::memory_order_relaxed);
      RTDS_WARN << "mailbox overflow: worker " << sa.worker
                << " full (capacity " << config_.mailbox_capacity
                << "), dropping task " << sa.task.id;
      continue;
    }
    const SimTime push_time = now();
    const SimTime start =
        busy_until_[sa.worker] < push_time ? push_time
                                           : busy_until_[sa.worker];
    busy_until_[sa.worker] = start + cost;
    ++delivered;
  }
  return delivered;
}

sched::BackendStats ThreadedBackend::drain() {
  shutdown();
  sched::BackendStats out;
  out.deadline_hits = hits_.load();
  out.exec_misses = misses_.load();
  out.finish_time = now();
  return out;
}

void ThreadedBackend::shutdown() {
  if (joined_) return;
  for (auto& mb : mailboxes_) mb->close();
  for (std::thread& w : workers_) w.join();
  joined_ = true;
}

}  // namespace rtds::runtime
