// Thread-safe bounded FIFO used as the host -> worker mailbox in the
// threaded runtime. Blocking pop with close semantics: once closed and
// drained, pop returns nullopt and the worker exits.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.h"

namespace rtds::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    RTDS_REQUIRE(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  /// Blocks while full. Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false — without waiting — if the queue is
  /// full or closed. This is the overflow-policy primitive: a host thread
  /// must never block indefinitely on a saturated worker mailbox.
  bool try_push(T value) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Closes the queue: pending pops drain remaining items, then observe
  /// nullopt; pushes fail.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Free slots right now (0 when closed). With a single producer this is
  /// a usable reservation check: consumers only ever grow the free space,
  /// so a capacity observed here still holds at the producer's next push.
  [[nodiscard]] std::size_t free_slots() const {
    std::lock_guard lock(mutex_);
    if (closed_) return 0;
    return capacity_ - items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_{false};
};

}  // namespace rtds::runtime
