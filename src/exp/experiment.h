// Experiment harness reproducing the paper's evaluation protocol (Sec. 5.1):
// a distributed real-time database workload is generated, scheduled by a
// candidate algorithm on a simulated distributed-memory machine, and the
// deadline-hit ratio is averaged over `repetitions` independent runs with
// derived seeds. Two-tailed Welch difference-of-means tests compare
// algorithms at the paper's 0.01 significance level.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "db/database.h"
#include "db/transaction.h"
#include "sched/algorithm.h"
#include "sched/driver.h"
#include "sched/quantum.h"

namespace rtds::exp {

/// Which quantum policy the run uses.
enum class QuantumKind { kSelfAdjusting, kFixed };

/// Full description of one experiment cell (one point in a figure).
struct ExperimentConfig {
  // -- machine --------------------------------------------------------------
  std::uint32_t num_workers{10};
  /// C — constant cut-through communication cost for non-affine placement.
  SimDuration comm_cost{msec(5)};

  // -- scheduling-cost model --------------------------------------------------
  /// Host time per generated vertex. 2us per allocate+evaluate+test is the
  /// right order for late-90s hardware and puts the reproduction in the
  /// regime the paper studies: the assignment-oriented scheduler becomes
  /// capacity-bound while the sequence-oriented one stays host-bound.
  SimDuration vertex_cost{usec(2)};
  /// Fixed per-phase turnover cost (batch maintenance + schedule delivery).
  SimDuration phase_overhead{usec(50)};

  // -- quantum policy ---------------------------------------------------------
  QuantumKind quantum{QuantumKind::kSelfAdjusting};
  SimDuration min_quantum{usec(100)};
  /// Upper clamp on Q_s. The feasibility test charges the entire quantum
  /// against every candidate (Fig. 4), so a quantum much larger than
  /// typical slacks would make everything infeasible; 20ms is an order
  /// below the scan-transaction deadlines.
  SimDuration max_quantum{msec(20)};
  SimDuration fixed_quantum{msec(10)};  ///< used when quantum == kFixed

  // -- database & workload (paper defaults) -----------------------------------
  db::DatabaseConfig database;
  double replication_rate{0.3};
  /// Resource-reclaiming extension (paper ref [3]): execute actual
  /// first-match costs and reclaim the worst-case slack on the workers.
  bool reclaim_actual_costs{false};
  double scaling_factor{1.0};  ///< SF (laxity)
  std::uint32_t num_transactions{1000};
  std::uint32_t max_predicates{0};  ///< 0 = num_attributes
  /// Gang/moldable extension: each generated task becomes a gang with this
  /// probability, width uniform in [2, gang_max_workers]. Drawn AFTER the
  /// full database workload so runs with gang_fraction == 0 reproduce the
  /// historical task stream byte-for-byte.
  double gang_fraction{0.0};
  std::uint32_t gang_max_workers{2};

  // -- protocol ----------------------------------------------------------------
  std::uint64_t base_seed{0x5ADC0FFEE1998ULL};
  std::uint32_t repetitions{10};

  [[nodiscard]] std::unique_ptr<sched::QuantumPolicy> make_quantum() const;
};

/// Aggregated outcome of the repeated runs of one (config, algorithm) cell.
struct Aggregate {
  std::string algorithm;
  RunningStats hit_ratio;        ///< fraction of tasks meeting deadlines
  RunningStats scheduled_ratio;  ///< fraction of tasks ever delivered
  RunningStats exec_misses;      ///< theorem: identically zero
  RunningStats culled;
  RunningStats phases;
  RunningStats dead_ends;
  RunningStats backtracks_per_phase;
  RunningStats vertices;
  RunningStats sched_time_ms;    ///< host scheduling busy time
  RunningStats makespan_ms;
  RunningStats mean_quantum_ms;  ///< average allocated Q_s(j)
};

/// Runs one seed of one cell. The cluster/simulator are created fresh.
sched::RunMetrics run_once(const ExperimentConfig& config,
                           const sched::PhaseAlgorithm& algorithm,
                           std::uint64_t seed);

/// Runs `config.repetitions` seeds and aggregates.
Aggregate run_repeated(const ExperimentConfig& config,
                       const sched::PhaseAlgorithm& algorithm);

/// Welch test on the hit ratios of two aggregates (paper's significance
/// protocol).
WelchResult compare_hit_ratios(const Aggregate& a, const Aggregate& b);

}  // namespace rtds::exp
