#include "exp/experiment.h"

#include "common/error.h"
#include "common/rng.h"
#include "db/placement.h"
#include "machine/cluster.h"
#include "sched/backend.h"
#include "sched/pipeline.h"
#include "sim/simulator.h"

namespace rtds::exp {

std::unique_ptr<sched::QuantumPolicy> ExperimentConfig::make_quantum() const {
  switch (quantum) {
    case QuantumKind::kSelfAdjusting:
      return sched::make_self_adjusting_quantum(min_quantum, max_quantum);
    case QuantumKind::kFixed:
      return sched::make_fixed_quantum(fixed_quantum);
  }
  RTDS_ASSERT_MSG(false, "unreachable quantum kind");
  return nullptr;
}

sched::RunMetrics run_once(const ExperimentConfig& config,
                           const sched::PhaseAlgorithm& algorithm,
                           std::uint64_t seed) {
  Xoshiro256ss rng(seed);

  const db::GlobalDatabase database(config.database, rng);
  const db::Placement placement = db::Placement::rotation(
      config.database.num_subdbs, config.num_workers,
      config.replication_rate);

  db::TransactionWorkloadConfig txn_cfg;
  txn_cfg.num_transactions = config.num_transactions;
  txn_cfg.max_predicates = config.max_predicates;
  txn_cfg.scaling_factor = config.scaling_factor;
  txn_cfg.fill_actual_costs = config.reclaim_actual_costs;
  const std::vector<db::Transaction> txns =
      db::generate_transactions(database, txn_cfg, rng);
  std::vector<tasks::Task> workload =
      db::to_tasks(txns, database, placement, txn_cfg);

  // Gang/moldable extension: widen a fraction of the transactions AFTER the
  // full workload is generated, so gang_fraction == 0 draws nothing and the
  // historical task stream is reproduced byte-for-byte.
  if (config.gang_fraction > 0.0) {
    RTDS_REQUIRE(config.gang_max_workers >= 2 &&
                     config.gang_max_workers <= config.num_workers,
                 "run_once: gang_max_workers must be in [2, num_workers]");
    for (tasks::Task& t : workload) {
      if (rng.bernoulli(config.gang_fraction)) {
        t.workers_required = static_cast<std::uint32_t>(
            rng.uniform_int(2, config.gang_max_workers));
      }
    }
  }

  machine::Cluster cluster(
      config.num_workers,
      machine::Interconnect::cut_through(config.num_workers,
                                         config.comm_cost),
      config.reclaim_actual_costs ? machine::ReclaimMode::kReclaim
                                  : machine::ReclaimMode::kWorstCase);
  sim::Simulator simulator;
  const auto quantum = config.make_quantum();
  sched::PipelineConfig pipeline_cfg;
  pipeline_cfg.vertex_generation_cost = config.vertex_cost;
  pipeline_cfg.phase_overhead = config.phase_overhead;
  const sched::PhasePipeline pipeline(algorithm, *quantum, pipeline_cfg);
  sched::SimBackend backend(cluster, simulator);
  return pipeline.run(workload, backend);
}

Aggregate run_repeated(const ExperimentConfig& config,
                       const sched::PhaseAlgorithm& algorithm) {
  RTDS_REQUIRE(config.repetitions >= 1, "run_repeated: need >= 1 repetition");
  Aggregate agg;
  agg.algorithm = algorithm.name();
  for (std::uint32_t i = 0; i < config.repetitions; ++i) {
    const sched::RunMetrics m =
        run_once(config, algorithm, derive_seed(config.base_seed, i));
    agg.hit_ratio.add(m.hit_ratio());
    agg.scheduled_ratio.add(
        m.total_tasks == 0 ? 1.0
                           : double(m.scheduled) / double(m.total_tasks));
    agg.exec_misses.add(double(m.exec_misses));
    agg.culled.add(double(m.culled));
    agg.phases.add(double(m.phases));
    agg.dead_ends.add(double(m.dead_ends));
    agg.backtracks_per_phase.add(
        m.phases == 0 ? 0.0 : double(m.backtracks) / double(m.phases));
    agg.vertices.add(double(m.vertices_generated));
    agg.sched_time_ms.add(m.scheduling_time.millis());
    agg.makespan_ms.add(double(m.finish_time.us) * 1e-3);
    agg.mean_quantum_ms.add(
        m.phases == 0 ? 0.0
                      : m.allocated_quantum.millis() / double(m.phases));
  }
  return agg;
}

WelchResult compare_hit_ratios(const Aggregate& a, const Aggregate& b) {
  return welch_t_test(a.hit_ratio, b.hit_ratio);
}

}  // namespace rtds::exp
