// Plain-text table and CSV emitters for the benchmark harness.
//
// Every figure/table bench prints (a) a fixed-width table mirroring the
// paper's series and (b) an optional CSV block for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rtds::exp {

/// Column-aligned text table. Cells are strings; the writer sizes columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with a header underline, columns padded to the widest cell.
  void print(std::ostream& os) const;

  /// Renders as CSV (header + rows), commas escaped by quoting.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string fmt(double value, int digits = 3);

/// Formats "mean ± ci" for a stats pair.
std::string fmt_pm(double mean, double ci, int digits = 3);

/// Formats a ratio as a percentage with one decimal, e.g. "73.4%".
std::string fmt_pct(double ratio);

}  // namespace rtds::exp
