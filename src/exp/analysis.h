// Post-run analysis of execution logs: lateness distributions and
// per-worker load balance — the quantities behind the paper's qualitative
// statements ("many processors remain idle while others are heavily
// loaded", Sec. 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "machine/cluster.h"
#include "sched/ledger.h"
#include "sched/pipeline.h"

namespace rtds::exp {

/// Deadline-margin statistics over executed tasks. Margin = deadline - end
/// (positive: finished early; negative: tardy — zero under the theorem).
struct LatenessSummary {
  std::uint64_t executed{0};
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  RunningStats margin_ms;       ///< over all executed tasks
  RunningStats tardiness_ms;    ///< over misses only (positive values)

  [[nodiscard]] std::string to_string() const;
};

LatenessSummary lateness_summary(
    const std::vector<machine::CompletionRecord>& log);

/// Histogram of deadline margins (ms) with symmetric bounds around zero.
Histogram margin_histogram(
    const std::vector<machine::CompletionRecord>& log, double half_range_ms,
    std::size_t buckets = 20);

/// Load-balance metrics over workers at the end of a run.
struct BalanceSummary {
  RunningStats busy_ms;  ///< per-worker busy time
  double imbalance{0.0}; ///< (max - min) / max busy time; 0 = perfect
  std::uint32_t idle_workers{0};  ///< workers that executed nothing
};

BalanceSummary balance_summary(const machine::Cluster& cluster);

/// Task-conservation audit of one finished run: every offered task must sit
/// in exactly one terminal state (hit, exec miss, culled, rejected,
/// admission-rejected). An `unaccounted` count != 0 is the overload-loss
/// bug this layer exists to rule out — it means tasks vanished without an
/// outcome.
struct ConservationReport {
  std::uint64_t total{0};
  std::uint64_t deadline_hits{0};
  std::uint64_t exec_misses{0};
  std::uint64_t culled{0};
  std::uint64_t rejected{0};
  std::uint64_t admission_rejected{0};  ///< open-system runs only
  std::uint64_t unaccounted{0};

  [[nodiscard]] bool conserved() const { return unaccounted == 0; }
  [[nodiscard]] std::string to_string() const;
};

/// Audit from the per-task ledger of a run.
ConservationReport conservation_report(const sched::TaskLedger& ledger);

/// Audit from aggregate metrics (when no ledger was kept by the caller).
ConservationReport conservation_report(const sched::RunMetrics& metrics);

}  // namespace rtds::exp
