// Post-run analysis of execution logs: lateness distributions and
// per-worker load balance — the quantities behind the paper's qualitative
// statements ("many processors remain idle while others are heavily
// loaded", Sec. 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "machine/cluster.h"

namespace rtds::exp {

/// Deadline-margin statistics over executed tasks. Margin = deadline - end
/// (positive: finished early; negative: tardy — zero under the theorem).
struct LatenessSummary {
  std::uint64_t executed{0};
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  RunningStats margin_ms;       ///< over all executed tasks
  RunningStats tardiness_ms;    ///< over misses only (positive values)

  [[nodiscard]] std::string to_string() const;
};

LatenessSummary lateness_summary(
    const std::vector<machine::CompletionRecord>& log);

/// Histogram of deadline margins (ms) with symmetric bounds around zero.
Histogram margin_histogram(
    const std::vector<machine::CompletionRecord>& log, double half_range_ms,
    std::size_t buckets = 20);

/// Load-balance metrics over workers at the end of a run.
struct BalanceSummary {
  RunningStats busy_ms;  ///< per-worker busy time
  double imbalance{0.0}; ///< (max - min) / max busy time; 0 = perfect
  std::uint32_t idle_workers{0};  ///< workers that executed nothing
};

BalanceSummary balance_summary(const machine::Cluster& cluster);

}  // namespace rtds::exp
