#include "exp/analysis.h"

#include <sstream>

namespace rtds::exp {

std::string LatenessSummary::to_string() const {
  std::ostringstream os;
  os << "executed " << executed << " (hits " << hits << ", misses " << misses
     << ")";
  if (executed > 0) {
    os << ", margin mean " << margin_ms.mean() << "ms";
  }
  if (misses > 0) {
    os << ", tardiness mean " << tardiness_ms.mean() << "ms max "
       << tardiness_ms.max() << "ms";
  }
  return os.str();
}

LatenessSummary lateness_summary(
    const std::vector<machine::CompletionRecord>& log) {
  LatenessSummary out;
  for (const machine::CompletionRecord& rec : log) {
    ++out.executed;
    const double margin_ms = (rec.deadline - rec.end).millis();
    out.margin_ms.add(margin_ms);
    if (rec.met_deadline()) {
      ++out.hits;
    } else {
      ++out.misses;
      out.tardiness_ms.add(-margin_ms);
    }
  }
  return out;
}

Histogram margin_histogram(
    const std::vector<machine::CompletionRecord>& log, double half_range_ms,
    std::size_t buckets) {
  Histogram h(-half_range_ms, half_range_ms, buckets);
  for (const machine::CompletionRecord& rec : log) {
    h.add((rec.deadline - rec.end).millis());
  }
  return h;
}

std::string ConservationReport::to_string() const {
  std::ostringstream os;
  os << "offered " << total << " = hits " << deadline_hits
     << " + exec misses " << exec_misses << " + culled " << culled
     << " + rejected " << rejected;
  if (admission_rejected > 0) {
    os << " + admission rejected " << admission_rejected;
  }
  if (unaccounted > 0) {
    os << " + UNACCOUNTED " << unaccounted << " (conservation violated)";
  }
  return os.str();
}

ConservationReport conservation_report(const sched::TaskLedger& ledger) {
  ConservationReport out;
  const sched::LedgerCounts& c = ledger.counts();
  out.total = c.total;
  out.deadline_hits = c.deadline_hits;
  out.exec_misses = c.exec_misses;
  out.culled = c.culled;
  out.rejected = c.rejected;
  out.admission_rejected = c.admission_rejected;
  out.unaccounted = c.in_flight;
  return out;
}

ConservationReport conservation_report(const sched::RunMetrics& metrics) {
  ConservationReport out;
  out.total = metrics.total_tasks;
  out.deadline_hits = metrics.deadline_hits;
  out.exec_misses = metrics.exec_misses;
  out.culled = metrics.culled;
  out.rejected = metrics.rejected;
  out.admission_rejected = metrics.admission_rejected;
  const std::uint64_t accounted = out.deadline_hits + out.exec_misses +
                                  out.culled + out.rejected +
                                  out.admission_rejected;
  out.unaccounted = out.total > accounted ? out.total - accounted : 0;
  return out;
}

BalanceSummary balance_summary(const machine::Cluster& cluster) {
  BalanceSummary out;
  std::vector<std::uint64_t> executed(cluster.num_workers(), 0);
  for (const machine::CompletionRecord& rec : cluster.log()) {
    ++executed[rec.worker];
  }
  for (std::uint32_t k = 0; k < cluster.num_workers(); ++k) {
    out.busy_ms.add(cluster.busy_time(k).millis());
    if (executed[k] == 0) ++out.idle_workers;
  }
  if (!out.busy_ms.empty() && out.busy_ms.max() > 0.0) {
    out.imbalance = (out.busy_ms.max() - out.busy_ms.min()) /
                    out.busy_ms.max();
  }
  return out;
}

}  // namespace rtds::exp
