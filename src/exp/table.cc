#include "exp/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace rtds::exp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RTDS_REQUIRE(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  RTDS_REQUIRE(cells.size() == header_.size(),
               "TextTable: row width != header width");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(int(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << esc(row[c]);
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_pm(double mean, double ci, int digits) {
  return fmt(mean, digits) + " ± " + fmt(ci, digits);
}

std::string fmt_pct(double ratio) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << ratio * 100.0 << "%";
  return os.str();
}

}  // namespace rtds::exp
