#include "search/engine.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <tuple>
#include <vector>

#include "common/error.h"
#include "search/expand_core.h"

namespace rtds::search {

namespace {

using detail::Candidate;

/// A generated vertex kept in the search arena, narrow header: depth and
/// cursor pack into 16 bits each, so a node is 56 bytes with the embedded
/// assignment. Selected for batches up to 65535 tasks — every realistic
/// phase batch, and the layout the PR-4 throughput numbers were taken on.
struct NodeNarrow {
  using DepthType = std::uint16_t;
  /// Largest batch this header can index (depth/cursor saturate at 16 bits).
  static constexpr std::uint32_t kMaxTasks = 65535;
  std::int32_t parent{-1};  ///< arena index, or -1 for children of the root
  std::uint16_t depth{0};   ///< number of assignments on the path to here
  /// Assignment-oriented task-scan resume point: tasks before this position
  /// in the consideration order are either assigned on this path or were
  /// proven unplaceable at an ancestor (and stay so, since queue offsets
  /// only grow along a path).
  std::uint16_t order_cursor{0};
  Assignment assignment;
};

/// Wide header for batches above 65535 tasks: depth and cursor widen to 32
/// bits (64-byte node — exactly one cache line). Same semantics as
/// NodeNarrow; the engine body is templated over the two.
struct NodeWide {
  using DepthType = std::uint32_t;
  std::int32_t parent{-1};
  std::uint32_t depth{0};
  std::uint32_t order_cursor{0};
  Assignment assignment;
};

static_assert(sizeof(NodeNarrow) <= 56);
static_assert(sizeof(NodeWide) <= 64);

/// Pool bound retained between runs per node arena: a million-task run can
/// legitimately grow the arena to hundreds of MB, which must not stay
/// captive on a long-lived backend thread once the phase is over.
constexpr std::size_t kArenaRetainBytes = std::size_t{64} << 20;

/// Growable pooled node arena: fixed-size chunks, never a realloc-copy, so
/// Assignment pointers into it stay stable while it grows and clear()
/// retains the chunks for the next run (steady-state allocation-free).
template <typename NodeT>
class NodeArena {
 public:
  static constexpr std::uint32_t kChunkShift = 14;  // 16384 nodes per chunk
  static constexpr std::uint32_t kChunkNodes = 1u << kChunkShift;

  [[nodiscard]] std::size_t size() const { return size_; }
  void clear() { size_ = 0; }

  NodeT& emplace_back() {
    // Arena indices travel as int32 (node ids, CL entries).
    RTDS_REQUIRE(size_ < (std::size_t{1} << 31),
                 "SearchEngine: node arena above 2^31 nodes");
    const std::size_t c = size_ >> kChunkShift;
    if (c == chunks_.size()) {
      chunks_.push_back(std::make_unique<NodeT[]>(kChunkNodes));
    }
    return chunks_[c][size_++ & (kChunkNodes - 1)];
  }

  [[nodiscard]] NodeT& operator[](std::size_t i) {
    return chunks_[i >> kChunkShift][i & (kChunkNodes - 1)];
  }
  [[nodiscard]] const NodeT& operator[](std::size_t i) const {
    return chunks_[i >> kChunkShift][i & (kChunkNodes - 1)];
  }

  [[nodiscard]] std::size_t capacity_bytes() const {
    return chunks_.size() * (std::size_t{kChunkNodes} * sizeof(NodeT));
  }

  /// Drops pooled chunks until at most `max_bytes` stay resident. Only
  /// valid between runs (live node indices become dangling).
  void trim(std::size_t max_bytes) {
    size_ = 0;
    while (!chunks_.empty() && capacity_bytes() > max_bytes) {
      chunks_.pop_back();
    }
  }

 private:
  std::vector<std::unique_ptr<NodeT[]>> chunks_;
  std::size_t size_{0};
};

/// The candidate list CL over caller-owned storage. Depth-first consumes it
/// as a stack (successor groups are pushed best-on-top, Sec. 4.1);
/// best-first is a 4-ary min-heap on (k1, k2, k3, seq) — seq makes the
/// order strictly total, so the pop sequence is independent of heap shape
/// and identical to the historical std::push_heap/pop_heap binary heap
/// (FIFO among key-equal entries).
class CandidateList {
 public:
  struct Entry {
    std::int64_t k1;
    std::int64_t k2;
    std::uint32_t k3;
    std::uint64_t seq;
    std::int32_t node;
  };

  CandidateList(SearchStrategy strategy, std::vector<Entry>& storage)
      : strategy_(strategy), entries_(storage) {
    entries_.clear();
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Depth-first callers must push a successor group in reverse priority
  /// order (worst first) so the best ends on top.
  void push(const Candidate& c, std::int32_t node) {
    entries_.push_back(Entry{c.key1, c.key2, c.key3, seq_++, node});
    if (strategy_ == SearchStrategy::kBestFirst) sift_up(entries_.size() - 1);
  }

  std::int32_t pop() {
    RTDS_ASSERT(!entries_.empty());
    if (strategy_ != SearchStrategy::kBestFirst) {
      const std::int32_t node = entries_.back().node;
      entries_.pop_back();
      return node;
    }
    const std::int32_t node = entries_.front().node;
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    return node;
  }

 private:
  static bool less(const Entry& a, const Entry& b) {
    return std::tie(a.k1, a.k2, a.k3, a.seq) <
           std::tie(b.k1, b.k2, b.k3, b.seq);
  }

  void sift_up(std::size_t i) {
    Entry e = entries_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!less(e, entries_[parent])) break;
      entries_[i] = entries_[parent];
      i = parent;
    }
    entries_[i] = e;
  }

  void sift_down(std::size_t i) {
    const std::size_t size = entries_.size();
    Entry e = entries_[i];
    while (true) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= size) break;
      const std::size_t last_child = std::min(first_child + 4, size);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (less(entries_[c], entries_[best])) best = c;
      }
      if (!less(entries_[best], e)) break;
      entries_[i] = entries_[best];
      i = best;
    }
    entries_[i] = e;
  }

  SearchStrategy strategy_;
  std::uint64_t seq_{0};
  std::vector<Entry>& entries_;
};

/// Per-thread scratch buffers reused across run() calls so the hot loop is
/// allocation-free after the first few phases (capacity is retained by
/// clear(); arenas pool their chunks and self-trim to kArenaRetainBytes).
/// thread_local keeps the engine safely shareable across backend threads.
struct Workspace {
  std::vector<std::uint32_t> order;
  NodeArena<NodeNarrow> narrow;
  NodeArena<NodeWide> wide;
  std::vector<Candidate> candidates;
  std::vector<CandidateList::Entry> cl_entries;
  std::vector<tasks::ProcessorId> level_order;
  std::vector<std::uint32_t> task_ids;
  std::vector<const Assignment*> chain;
  std::size_t peak_bytes{0};
};

Workspace& workspace() {
  static thread_local Workspace ws;
  return ws;
}

std::size_t workspace_bytes(const Workspace& ws) {
  return ws.narrow.capacity_bytes() + ws.wide.capacity_bytes() +
         ws.candidates.capacity() * sizeof(Candidate) +
         ws.cl_entries.capacity() * sizeof(CandidateList::Entry) +
         ws.order.capacity() * sizeof(std::uint32_t) +
         ws.task_ids.capacity() * sizeof(std::uint32_t);
}

template <typename NodeT>
SearchResult run_impl(const SearchConfig& config,
                      const std::vector<Task>& batch,
                      const std::vector<SimDuration>& base_loads,
                      SimTime delivery_time, const machine::Interconnect& net,
                      std::uint64_t vertex_budget, Workspace& ws,
                      NodeArena<NodeT>& arena) {
  SearchResult result;
  const std::uint32_t m = net.num_workers();

  // kBatchOrder is the identity permutation: skip building (and chasing)
  // the index vector entirely.
  if (config.task_order == TaskOrder::kBatchOrder) {
    ws.order.clear();
  } else {
    task_consideration_order_into(batch, config.task_order, ws.order);
  }
  const std::uint32_t* order = ws.order.empty() ? nullptr : ws.order.data();

  PartialSchedule ps(&batch, base_loads, delivery_time, &net);
  ps.set_consideration_order(order);

  arena.clear();
  CandidateList cl(config.strategy, ws.cl_entries);

  SearchStats& stats = result.stats;
  std::uint64_t budget_left = vertex_budget;

  std::int32_t current = -1;  // arena index of the vertex CPS ends at
  std::int32_t best_node = -1;
  std::uint32_t best_depth = 0;
  SimDuration best_ce = SimDuration::max();

  const auto node_depth = [&](std::int32_t id) -> std::uint32_t {
    return id < 0 ? 0u : arena[std::size_t(id)].depth;
  };

  // Expands the current vertex (shared core, search/expand_core.h): charges
  // the budget, collects sorted feasible successors, then registers them in
  // the arena and pushes them onto CL best-on-top.
  std::vector<Candidate>& candidates = ws.candidates;
  const auto expand_current = [&](std::uint32_t cursor) {
    cursor = detail::expand_vertex(config, ps, batch, m, cursor, budget_left,
                                   stats, candidates, ws.level_order,
                                   ws.task_ids);
    // Push worst-first so the best candidate ends on top of the stack
    // (front of CL).
    const auto depth = static_cast<typename NodeT::DepthType>(ps.depth() + 1);
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      NodeT& node = arena.emplace_back();
      node.parent = current;
      node.depth = depth;
      node.order_cursor = static_cast<typename NodeT::DepthType>(cursor);
      node.assignment = it->assignment;
      cl.push(*it, static_cast<std::int32_t>(arena.size() - 1));
    }
  };

  // Switches CPS from `current` to arena vertex `target` via their lowest
  // common ancestor.
  std::vector<const Assignment*>& chain = ws.chain;
  const auto switch_to = [&](std::int32_t target) {
    chain.clear();
    std::int32_t a = current;
    std::int32_t b = target;
    while (node_depth(b) > node_depth(a)) {
      chain.push_back(&arena[std::size_t(b)].assignment);
      b = arena[std::size_t(b)].parent;
    }
    while (node_depth(a) > node_depth(b)) {
      ps.pop();
      a = arena[std::size_t(a)].parent;
    }
    while (a != b) {
      ps.pop();
      a = arena[std::size_t(a)].parent;
      chain.push_back(&arena[std::size_t(b)].assignment);
      b = arena[std::size_t(b)].parent;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      ps.push(**it);
    }
    current = target;
  };

  while (true) {
    if (budget_left == 0) {
      stats.budget_exhausted = true;
      break;
    }
    expand_current(current < 0 ? 0u
                               : arena[std::size_t(current)].order_cursor);
    if (cl.empty()) {
      if (!ps.complete()) stats.dead_end = true;
      break;
    }
    const std::int32_t next = cl.pop();
    if (arena[std::size_t(next)].parent != current) ++stats.backtracks;
    switch_to(next);

    if (ps.depth() > stats.max_depth) stats.max_depth = ps.depth();
    const bool deeper = ps.depth() > best_depth;
    const bool same_depth_better =
        ps.depth() == best_depth && ps.max_ce() < best_ce;
    if (best_node == -1 || deeper || same_depth_better) {
      best_node = current;
      best_depth = ps.depth();
      best_ce = ps.max_ce();
    }

    if (ps.complete()) {
      stats.reached_leaf = true;
      break;
    }
  }

  // Choose the returned path: the deepest (then best-balanced) vertex seen,
  // or the vertex where the search stopped.
  const std::int32_t chosen = config.return_deepest ? best_node : current;
  std::vector<Assignment> out;
  for (std::int32_t v = chosen; v >= 0; v = arena[std::size_t(v)].parent) {
    out.push_back(arena[std::size_t(v)].assignment);
  }
  std::reverse(out.begin(), out.end());
  result.schedule = std::move(out);

  ws.peak_bytes = std::max(ws.peak_bytes, workspace_bytes(ws));
  arena.trim(kArenaRetainBytes);
  return result;
}

}  // namespace

void task_consideration_order_into(const std::vector<Task>& batch,
                                   TaskOrder order,
                                   std::vector<std::uint32_t>& out) {
  out.resize(batch.size());
  for (std::uint32_t i = 0; i < batch.size(); ++i) out[i] = i;
  switch (order) {
    case TaskOrder::kBatchOrder:
      break;
    case TaskOrder::kEarliestDeadline:
      std::stable_sort(out.begin(), out.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return batch[a].deadline < batch[b].deadline;
                       });
      break;
    case TaskOrder::kMinSlack:
      // Slack ordering (d - t - p) is time-independent within a phase:
      // compare d - p.
      std::stable_sort(out.begin(), out.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return batch[a].deadline - batch[a].processing <
                                batch[b].deadline - batch[b].processing;
                       });
      break;
  }
}

std::vector<std::uint32_t> task_consideration_order(
    const std::vector<Task>& batch, TaskOrder order) {
  std::vector<std::uint32_t> idx;
  task_consideration_order_into(batch, order, idx);
  return idx;
}

std::size_t thread_workspace_bytes() { return workspace_bytes(workspace()); }

std::size_t thread_workspace_peak_bytes() { return workspace().peak_bytes; }

SearchEngine::SearchEngine(SearchConfig config) : config_(config) {}

SearchResult SearchEngine::run(const std::vector<Task>& batch,
                               const std::vector<SimDuration>& base_loads,
                               SimTime delivery_time,
                               const machine::Interconnect& net,
                               std::uint64_t vertex_budget) const {
  SearchResult result;
  if (batch.empty() || vertex_budget == 0) return result;
  RTDS_REQUIRE(batch.size() <= kMaxBatchTasks,
               "SearchEngine: phase batch above kMaxBatchTasks");

  Workspace& ws = workspace();
  if (batch.size() <= NodeNarrow::kMaxTasks) {
    return run_impl<NodeNarrow>(config_, batch, base_loads, delivery_time,
                                net, vertex_budget, ws, ws.narrow);
  }
  return run_impl<NodeWide>(config_, batch, base_loads, delivery_time, net,
                            vertex_budget, ws, ws.wide);
}

}  // namespace rtds::search
