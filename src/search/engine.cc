#include "search/engine.h"

#include <algorithm>
#include <bit>
#include <tuple>

#include "common/error.h"

namespace rtds::search {

namespace {

/// A generated vertex kept in the search arena. `parent` is an index into
/// the arena, or -1 for children of the root. Depth and cursor are packed
/// into 16 bits each (run() rejects batches above 65535 tasks) so a node is
/// one cache line wide with the embedded assignment.
struct Node {
  std::int32_t parent{-1};
  std::uint16_t depth{0};  ///< number of assignments on the path to here
  /// Assignment-oriented task-scan resume point: tasks before this position
  /// in the consideration order are either assigned on this path or were
  /// proven unplaceable at an ancestor (and stay so, since queue offsets
  /// only grow along a path).
  std::uint16_t order_cursor{0};
  Assignment assignment;
};

/// A feasible successor awaiting insertion into CL, with its sort key.
/// Lower keys are higher priority (front of CL). Within one successor group
/// the key tuple is a strict total order (the last significant component is
/// the branch index or worker id, unique per candidate), so any comparison
/// sort produces the historical stable_sort permutation.
struct Candidate {
  Assignment assignment;
  std::int64_t key1{0};
  std::int64_t key2{0};
  std::uint32_t key3{0};

  bool operator<(const Candidate& o) const {
    return std::tie(key1, key2, key3) < std::tie(o.key1, o.key2, o.key3);
  }
};

/// The candidate list CL over caller-owned storage. Depth-first consumes it
/// as a stack (successor groups are pushed best-on-top, Sec. 4.1);
/// best-first is a 4-ary min-heap on (k1, k2, k3, seq) — seq makes the
/// order strictly total, so the pop sequence is independent of heap shape
/// and identical to the historical std::push_heap/pop_heap binary heap
/// (FIFO among key-equal entries).
class CandidateList {
 public:
  struct Entry {
    std::int64_t k1;
    std::int64_t k2;
    std::uint32_t k3;
    std::uint64_t seq;
    std::int32_t node;
  };

  CandidateList(SearchStrategy strategy, std::vector<Entry>& storage)
      : strategy_(strategy), entries_(storage) {
    entries_.clear();
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Depth-first callers must push a successor group in reverse priority
  /// order (worst first) so the best ends on top.
  void push(const Candidate& c, std::int32_t node) {
    entries_.push_back(Entry{c.key1, c.key2, c.key3, seq_++, node});
    if (strategy_ == SearchStrategy::kBestFirst) sift_up(entries_.size() - 1);
  }

  std::int32_t pop() {
    RTDS_ASSERT(!entries_.empty());
    if (strategy_ != SearchStrategy::kBestFirst) {
      const std::int32_t node = entries_.back().node;
      entries_.pop_back();
      return node;
    }
    const std::int32_t node = entries_.front().node;
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    return node;
  }

 private:
  static bool less(const Entry& a, const Entry& b) {
    return std::tie(a.k1, a.k2, a.k3, a.seq) <
           std::tie(b.k1, b.k2, b.k3, b.seq);
  }

  void sift_up(std::size_t i) {
    Entry e = entries_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!less(e, entries_[parent])) break;
      entries_[i] = entries_[parent];
      i = parent;
    }
    entries_[i] = e;
  }

  void sift_down(std::size_t i) {
    const std::size_t size = entries_.size();
    Entry e = entries_[i];
    while (true) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= size) break;
      const std::size_t last_child = std::min(first_child + 4, size);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (less(entries_[c], entries_[best])) best = c;
      }
      if (!less(entries_[best], e)) break;
      entries_[i] = entries_[best];
      i = best;
    }
    entries_[i] = e;
  }

  SearchStrategy strategy_;
  std::uint64_t seq_{0};
  std::vector<Entry>& entries_;
};

/// Stable in-place insertion sort; O(k) on the nearly-sorted groups the
/// heuristics produce, and no temp-buffer allocation (std::stable_sort
/// allocates one per call in libstdc++). Falls back to std::sort for large
/// groups — safe because candidate keys are strictly totally ordered within
/// a group, so every comparison sort yields the same permutation.
void sort_candidates(std::vector<Candidate>& c) {
  if (c.size() > 48) {
    std::sort(c.begin(), c.end());
    return;
  }
  for (std::size_t i = 1; i < c.size(); ++i) {
    Candidate tmp = c[i];
    std::size_t j = i;
    for (; j > 0 && tmp < c[j - 1]; --j) c[j] = c[j - 1];
    c[j] = tmp;
  }
}

/// Per-thread scratch buffers reused across run() calls so the hot loop is
/// allocation-free after the first few phases (capacity is retained by
/// clear()). thread_local keeps the engine safely shareable across backend
/// threads.
struct Workspace {
  std::vector<std::uint32_t> order;
  std::vector<Node> arena;
  std::vector<Candidate> candidates;
  std::vector<CandidateList::Entry> cl_entries;
  std::vector<tasks::ProcessorId> level_order;
  std::vector<const Assignment*> chain;
};

}  // namespace

void task_consideration_order_into(const std::vector<Task>& batch,
                                   TaskOrder order,
                                   std::vector<std::uint32_t>& out) {
  out.resize(batch.size());
  for (std::uint32_t i = 0; i < batch.size(); ++i) out[i] = i;
  switch (order) {
    case TaskOrder::kBatchOrder:
      break;
    case TaskOrder::kEarliestDeadline:
      std::stable_sort(out.begin(), out.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return batch[a].deadline < batch[b].deadline;
                       });
      break;
    case TaskOrder::kMinSlack:
      // Slack ordering (d - t - p) is time-independent within a phase:
      // compare d - p.
      std::stable_sort(out.begin(), out.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return batch[a].deadline - batch[a].processing <
                                batch[b].deadline - batch[b].processing;
                       });
      break;
  }
}

std::vector<std::uint32_t> task_consideration_order(
    const std::vector<Task>& batch, TaskOrder order) {
  std::vector<std::uint32_t> idx;
  task_consideration_order_into(batch, order, idx);
  return idx;
}

SearchEngine::SearchEngine(SearchConfig config) : config_(config) {}

SearchResult SearchEngine::run(const std::vector<Task>& batch,
                               const std::vector<SimDuration>& base_loads,
                               SimTime delivery_time,
                               const machine::Interconnect& net,
                               std::uint64_t vertex_budget) const {
  SearchResult result;
  if (batch.empty() || vertex_budget == 0) return result;
  RTDS_REQUIRE(batch.size() <= 65535,
               "SearchEngine: phase batch above 65535 tasks");

  static thread_local Workspace ws;

  const auto n = static_cast<std::uint32_t>(batch.size());
  const std::uint32_t m = net.num_workers();

  // kBatchOrder is the identity permutation: skip building (and chasing)
  // the index vector entirely.
  if (config_.task_order == TaskOrder::kBatchOrder) {
    ws.order.clear();
  } else {
    task_consideration_order_into(batch, config_.task_order, ws.order);
  }
  const std::uint32_t* order = ws.order.empty() ? nullptr : ws.order.data();

  PartialSchedule ps(&batch, base_loads, delivery_time, &net);
  ps.set_consideration_order(order);

  ws.arena.clear();
  ws.arena.reserve(std::min<std::uint64_t>(vertex_budget, 1u << 20));
  std::vector<Node>& arena = ws.arena;
  CandidateList cl(config_.strategy, ws.cl_entries);

  SearchStats& stats = result.stats;
  std::uint64_t budget_left = vertex_budget;

  std::int32_t current = -1;  // arena index of the vertex CPS ends at
  std::int32_t best_node = -1;
  std::uint32_t best_depth = 0;
  SimDuration best_ce = SimDuration::max();

  const auto node_depth = [&](std::int32_t id) -> std::uint32_t {
    return id < 0 ? 0u : arena[std::size_t(id)].depth;
  };

  // Computes the CL sort key for a feasible assignment at the current CPS.
  const auto make_candidate = [&](const Assignment& a,
                                  std::uint32_t branch_index) {
    Candidate c;
    c.assignment = a;
    if (config_.use_load_balance_cost) {
      // Resulting CE of the extended schedule (Sec. 4.4), tie-broken by the
      // task's own completion and the branch order.
      c.key1 = max_duration(ps.max_ce(), a.end_offset).us;
      c.key2 = a.end_offset.us;
      c.key3 = branch_index;
    } else if (config_.representation == Representation::kAssignmentOriented) {
      switch (config_.processor_order) {
        case ProcessorOrder::kIndexOrder:
          c.key1 = a.worker;
          break;
        case ProcessorOrder::kMinEndOffset:
          c.key1 = a.end_offset.us;
          c.key2 = a.worker;
          break;
        case ProcessorOrder::kMinCommCost:
          c.key1 = (a.exec_cost - batch[a.task_index].processing).us;
          c.key2 = a.end_offset.us;
          c.key3 = a.worker;
          break;
      }
    } else {
      // Sequence-oriented: tasks were generated in heuristic order already.
      c.key1 = branch_index;
    }
    return c;
  };

  // Expands the current vertex: generates successors (charging the vertex
  // budget for every generation, feasible or not), sorts the feasible ones,
  // and pushes them onto CL best-on-top. Returns the order cursor children
  // inherit (assignment-oriented only).
  std::vector<Candidate>& candidates = ws.candidates;
  const auto expand_current = [&](std::uint32_t cursor) -> std::uint32_t {
    ++stats.expansions;
    candidates.clear();
    const std::uint32_t depth = ps.depth();
    if (config_.max_depth != 0 && depth >= config_.max_depth) {
      return cursor;  // depth-pruned: no successors
    }

    if (config_.representation == Representation::kAssignmentOriented) {
      // Select the next task by the (static) task-order heuristic, branch
      // over every processor (Fig. 2). Tasks with no feasible placement
      // are skipped (see SearchConfig::skip_unplaceable_tasks) — their
      // infeasibility holds for the whole subtree, so children resume the
      // scan at the cursor this expansion returns.
      //
      // Queue offsets are fixed during one expansion, so min_ce is hoisted
      // and feeds the bulk lower-bound test: when even the least-loaded
      // worker cannot meet the deadline, all m placements are infeasible
      // and the budget is charged in one step (identical accounting to
      // evaluating each) without touching the queues.
      const SimDuration lo = ps.min_ce();
      std::uint32_t scan = cursor;
      while (scan < n) {
        // Find the next unassigned task at or after `scan`.
        scan = ps.first_unassigned_at_or_after(scan);
        if (scan == n) break;
        const std::uint32_t task = ps.task_at(scan);
        if (ps.task_unplaceable(task, lo)) {
          const std::uint64_t charged = std::min<std::uint64_t>(m, budget_left);
          budget_left -= charged;
          stats.vertices_generated += charged;
          if (charged < m) stats.budget_exhausted = true;
        } else {
          Assignment a;
          for (std::uint32_t k = 0; k < m; ++k) {
            if (budget_left == 0) {
              stats.budget_exhausted = true;
              break;
            }
            --budget_left;
            ++stats.vertices_generated;
            if (ps.evaluate_fast(task, k, a)) {
              candidates.push_back(make_candidate(a, k));
              if (config_.max_successors != 0 &&
                  candidates.size() >= config_.max_successors) {
                break;
              }
            }
          }
        }
        if (!candidates.empty() || stats.budget_exhausted ||
            !config_.skip_unplaceable_tasks) {
          break;
        }
        ++scan;  // task unplaceable in this whole subtree: skip it
      }
      cursor = scan;
    } else {
      // Select the level's processor (round-robin per Fig. 1, or the
      // least-loaded-first heuristic the paper allows), branch over every
      // unassigned task in heuristic order. When the level's processor
      // admits no feasible task, skip_saturated_processors moves on to the
      // next processor in the same order (every evaluation still charged).
      ws.level_order.resize(m);
      for (std::uint32_t k = 0; k < m; ++k) {
        ws.level_order[k] = (depth + k) % m;
      }
      if (config_.level_processor_order ==
          LevelProcessorOrder::kLeastLoaded) {
        // Stable insertion sort (m is small; no stable_sort temp buffer).
        for (std::uint32_t i = 1; i < m; ++i) {
          const ProcessorId tmp = ws.level_order[i];
          std::uint32_t j = i;
          for (; j > 0 && ps.ce(tmp) < ps.ce(ws.level_order[j - 1]); --j) {
            ws.level_order[j] = ws.level_order[j - 1];
          }
          ws.level_order[j] = tmp;
        }
      }
      const std::uint32_t max_rotations =
          config_.skip_saturated_processors ? m : 1;
      const std::vector<std::uint64_t>& words = ps.unassigned_words();
      for (std::uint32_t rot = 0; rot < max_rotations; ++rot) {
        const ProcessorId worker = ws.level_order[rot];
        std::uint32_t branch = 0;
        Assignment a;
        bool stop = false;
        // Iterate unassigned tasks in consideration order straight off the
        // bitset words (set bit = unassigned position).
        for (std::size_t w = 0; w < words.size() && !stop; ++w) {
          std::uint64_t bits = words[w];
          while (bits != 0) {
            const auto pos = static_cast<std::uint32_t>(
                (w << 6) + std::uint32_t(std::countr_zero(bits)));
            bits &= bits - 1;
            const std::uint32_t i = ps.task_at(pos);
            if (budget_left == 0) {
              stats.budget_exhausted = true;
              stop = true;
              break;
            }
            --budget_left;
            ++stats.vertices_generated;
            if (ps.evaluate_fast(i, worker, a)) {
              candidates.push_back(make_candidate(a, branch));
              if (config_.max_successors != 0 &&
                  candidates.size() >= config_.max_successors) {
                stop = true;
                break;
              }
            }
            ++branch;
          }
        }
        if (!candidates.empty() || stats.budget_exhausted) break;
      }
    }

    sort_candidates(candidates);
    // Push worst-first so the best candidate ends on top of the stack
    // (front of CL).
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      Node node;
      node.parent = current;
      node.depth = static_cast<std::uint16_t>(ps.depth() + 1);
      node.order_cursor = static_cast<std::uint16_t>(cursor);
      node.assignment = it->assignment;
      arena.push_back(node);
      cl.push(*it, static_cast<std::int32_t>(arena.size() - 1));
    }
    return cursor;
  };

  // Switches CPS from `current` to arena vertex `target` via their lowest
  // common ancestor.
  std::vector<const Assignment*>& chain = ws.chain;
  const auto switch_to = [&](std::int32_t target) {
    chain.clear();
    std::int32_t a = current;
    std::int32_t b = target;
    while (node_depth(b) > node_depth(a)) {
      chain.push_back(&arena[std::size_t(b)].assignment);
      b = arena[std::size_t(b)].parent;
    }
    while (node_depth(a) > node_depth(b)) {
      ps.pop();
      a = arena[std::size_t(a)].parent;
    }
    while (a != b) {
      ps.pop();
      a = arena[std::size_t(a)].parent;
      chain.push_back(&arena[std::size_t(b)].assignment);
      b = arena[std::size_t(b)].parent;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      ps.push(**it);
    }
    current = target;
  };

  while (true) {
    if (budget_left == 0) {
      stats.budget_exhausted = true;
      break;
    }
    expand_current(current < 0 ? 0u
                               : arena[std::size_t(current)].order_cursor);
    if (cl.empty()) {
      if (!ps.complete()) stats.dead_end = true;
      break;
    }
    const std::int32_t next = cl.pop();
    if (arena[std::size_t(next)].parent != current) ++stats.backtracks;
    switch_to(next);

    if (ps.depth() > stats.max_depth) stats.max_depth = ps.depth();
    const bool deeper = ps.depth() > best_depth;
    const bool same_depth_better =
        ps.depth() == best_depth && ps.max_ce() < best_ce;
    if (best_node == -1 || deeper || same_depth_better) {
      best_node = current;
      best_depth = ps.depth();
      best_ce = ps.max_ce();
    }

    if (ps.complete()) {
      stats.reached_leaf = true;
      break;
    }
  }

  // Choose the returned path: the deepest (then best-balanced) vertex seen,
  // or the vertex where the search stopped.
  const std::int32_t chosen = config_.return_deepest ? best_node : current;
  std::vector<Assignment> out;
  for (std::int32_t v = chosen; v >= 0; v = arena[std::size_t(v)].parent) {
    out.push_back(arena[std::size_t(v)].assignment);
  }
  std::reverse(out.begin(), out.end());
  result.schedule = std::move(out);
  return result;
}

}  // namespace rtds::search
