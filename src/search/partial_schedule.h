// Partial schedules and the predictive feasibility test (Sec. 3, 4.1, 4.3).
//
// A partial schedule CPS is a path from the root of the task-space tree G:
// an ordered list of task-to-processor assignments. This class maintains the
// incremental state the search needs at the current vertex:
//   * ce_k — the completion offset of each worker's queue, measured from the
//     moment the schedule will be delivered (Sec. 4.4):
//       ce_k = max(0, Load_k(j-1) - Q_s(j)) + Σ (p_l + c_lk)
//   * the set of tasks already assigned on this path;
//   * CE = max_k ce_k, the load-balancing cost function.
//
// The feasibility test (Fig. 4) for adding (T_l -> P_k):
//     t_c + RQ_s(j) + se_lk <= d_l
// Because t_c + RQ_s(j) == t_s + Q_s(j) — the planned delivery time of the
// schedule — the test reduces to  delivery_time + se_lk <= d_l, where se_lk
// is T_l's end offset in P_k's queue. This is exactly the bound used in the
// paper's correction theorem, and it is what makes scheduled tasks immune to
// scheduling overhead: the whole quantum is charged up front.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.h"
#include "machine/interconnect.h"
#include "tasks/task.h"

namespace rtds::search {

using tasks::ProcessorId;
using tasks::Task;

/// One task-to-processor assignment (a vertex of G).
struct Assignment {
  std::uint32_t task_index{0};  ///< index into the phase's batch snapshot
  ProcessorId worker{0};
  SimDuration exec_cost{SimDuration::zero()};  ///< p_l + c_lk
  /// Queue offset of the worker when this assignment was evaluated — the
  /// undo value for backtracking (start-time constraints can insert idle
  /// gaps, so popping cannot simply subtract exec_cost).
  SimDuration prev_ce{SimDuration::zero()};
  SimDuration start_offset{SimDuration::zero()};  ///< from delivery time
  SimDuration end_offset{SimDuration::zero()};    ///< se_lk, from delivery
};

/// Mutable path state for depth-first search with backtracking.
class PartialSchedule {
 public:
  /// `batch` must outlive this object. `base_loads[k]` is the worker's
  /// residual load at delivery time: max(0, Load_k(j-1) - Q_s(j)).
  /// `delivery_time` is t_s + Q_s(j), the time the schedule will reach the
  /// ready queues. `net` prices c_lk.
  PartialSchedule(const std::vector<Task>* batch,
                  std::vector<SimDuration> base_loads, SimTime delivery_time,
                  const machine::Interconnect* net);

  [[nodiscard]] std::uint32_t depth() const {
    return static_cast<std::uint32_t>(path_.size());
  }
  [[nodiscard]] std::uint32_t batch_size() const {
    return static_cast<std::uint32_t>(batch_->size());
  }
  [[nodiscard]] bool complete() const { return depth() == batch_size(); }
  [[nodiscard]] bool assigned(std::uint32_t task_index) const {
    return assigned_[task_index];
  }
  [[nodiscard]] SimTime delivery_time() const { return delivery_time_; }

  /// Completion offset of worker k's queue (from delivery time).
  [[nodiscard]] SimDuration ce(ProcessorId k) const { return ce_[k]; }

  /// CE — the load-balancing cost of this partial schedule (Sec. 4.4):
  /// the maximum completion offset over all workers.
  [[nodiscard]] SimDuration max_ce() const { return max_ce_; }

  /// Evaluates the candidate vertex (T_l -> P_k): computes cost and end
  /// offset, and applies the feasibility test of Fig. 4. Returns nullopt
  /// when infeasible. Does not modify the schedule.
  [[nodiscard]] std::optional<Assignment> evaluate(
      std::uint32_t task_index, ProcessorId worker) const;

  /// Extends the path by `a` (which must have come from evaluate() at the
  /// current state).
  void push(const Assignment& a);

  /// Undoes the most recent assignment (backtracking).
  void pop();

  /// Assignments along the current path, in path order.
  [[nodiscard]] const std::vector<Assignment>& path() const { return path_; }

 private:
  const std::vector<Task>* batch_;
  const machine::Interconnect* net_;
  SimTime delivery_time_;
  std::vector<SimDuration> base_loads_;
  std::vector<SimDuration> ce_;
  SimDuration max_ce_{SimDuration::zero()};
  std::vector<bool> assigned_;
  std::vector<Assignment> path_;
};

}  // namespace rtds::search
