// Partial schedules and the predictive feasibility test (Sec. 3, 4.1, 4.3).
//
// A partial schedule CPS is a path from the root of the task-space tree G:
// an ordered list of task-to-processor assignments. This class maintains the
// incremental state the search needs at the current vertex:
//   * ce_k — the completion offset of each worker's queue, measured from the
//     moment the schedule will be delivered (Sec. 4.4):
//       ce_k = max(0, Load_k(j-1) - Q_s(j)) + Σ (p_l + c_lk)
//   * the set of tasks already assigned on this path;
//   * CE = max_k ce_k, the load-balancing cost function.
//
// The feasibility test (Fig. 4) for adding (T_l -> P_k):
//     t_c + RQ_s(j) + se_lk <= d_l
// Because t_c + RQ_s(j) == t_s + Q_s(j) — the planned delivery time of the
// schedule — the test reduces to  delivery_time + se_lk <= d_l, where se_lk
// is T_l's end offset in P_k's queue. This is exactly the bound used in the
// paper's correction theorem, and it is what makes scheduled tasks immune to
// scheduling overhead: the whole quantum is charged up front.
//
// Hot-path layout (see docs/ARCHITECTURE.md "Search hot path"): the search
// charges its entire vertex budget through evaluate/push/pop, so this class
// keeps flat structure-of-arrays state sized at construction and touches
// nothing else:
//   * p_us_/es_us_/d_us_/aff_bits_/width_ — the per-task constants, one
//     contiguous array per field in raw delivery-relative microseconds, so
//     evaluation never dereferences the 56-byte Task and the search/simd.h
//     kernels can gather lanes straight out of them;
//   * ce_us_ — per-worker completion offsets (m contiguous 8-byte counts,
//     the vector operand of the Fig. 4 worker-mask kernel);
//   * unassigned_ — a 64-bit-word bitset over *consideration-order
//     positions* (bit set = still unassigned), giving O(n/64) find-first
//     scans instead of a std::vector<bool> walk, and supplying the lane
//     batches for the task-mask kernel.
// Backtracking is O(1): every Assignment carries the undo values prev_ce and
// prev_max_ce, so pop() restores both the worker's queue and CE without the
// historical O(m) rescan.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.h"
#include "machine/interconnect.h"
#include "search/simd.h"
#include "tasks/task.h"

namespace rtds::search {

using tasks::ProcessorId;
using tasks::Task;

/// One task-to-processor assignment (a vertex of G).
struct Assignment {
  std::uint32_t task_index{0};  ///< index into the phase's batch snapshot
  ProcessorId worker{0};
  SimDuration exec_cost{SimDuration::zero()};  ///< p_l + c_lk
  /// Queue offset of the worker when this assignment was evaluated — the
  /// undo value for backtracking (start-time constraints can insert idle
  /// gaps, so popping cannot simply subtract exec_cost).
  SimDuration prev_ce{SimDuration::zero()};
  /// CE of the whole partial schedule when this assignment was evaluated —
  /// the undo value that makes pop() O(1) instead of an O(m) rescan.
  /// Valid because push/pop are strictly LIFO: the state after popping this
  /// assignment is exactly the state in which it was evaluated.
  SimDuration prev_max_ce{SimDuration::zero()};
  SimDuration start_offset{SimDuration::zero()};  ///< from delivery time
  SimDuration end_offset{SimDuration::zero()};    ///< se_lk, from delivery
};

/// Mutable path state for depth-first search with backtracking.
class PartialSchedule {
 public:
  /// Per-task constants in raw microseconds relative to the delivery time.
  /// Storage is one array per field (see header comment); this struct is the
  /// assembled by-value view for cold-path callers (portfolio heuristics,
  /// tests).
  struct TaskConstants {
    std::int64_t processing_us{0};  ///< p_l
    std::int64_t es_off_us{0};      ///< max(0, earliest_start - delivery)
    std::int64_t d_off_us{0};       ///< deadline - delivery (may be < 0)
    std::uint64_t affinity_bits{0};  ///< AffinitySet::raw()
    /// Gang width k: the job occupies the contiguous worker block
    /// [worker, worker+k). k == 1 is the sequential task model.
    std::uint32_t workers_required{1};
  };

  /// `batch` must outlive this object and must not be mutated while it is
  /// in use: task parameters are snapshotted into the per-task constants at
  /// construction (delivery-relative offsets can only be precomputed once).
  /// `base_loads[k]` is the worker's residual load at delivery time:
  /// max(0, Load_k(j-1) - Q_s(j)). `delivery_time` is t_s + Q_s(j), the
  /// time the schedule will reach the ready queues. `net` prices c_lk.
  PartialSchedule(const std::vector<Task>* batch,
                  std::vector<SimDuration> base_loads, SimTime delivery_time,
                  const machine::Interconnect* net);

  /// Declares the consideration order the search iterates tasks in, so the
  /// unassigned bitset lives in order-position space and find-first scans
  /// return positions in heuristic order. `order` must be a permutation of
  /// [0, batch_size) that outlives this object, or nullptr for the identity
  /// order (the kBatchOrder fast path — no index vector needed at all).
  /// Must be called before the first push.
  void set_consideration_order(const std::uint32_t* order);

  [[nodiscard]] std::uint32_t depth() const {
    return static_cast<std::uint32_t>(path_.size());
  }
  [[nodiscard]] std::uint32_t batch_size() const {
    return static_cast<std::uint32_t>(batch_->size());
  }
  [[nodiscard]] bool complete() const { return depth() == batch_size(); }
  [[nodiscard]] bool assigned(std::uint32_t task_index) const {
    const std::uint32_t pos =
        pos_of_task_.empty() ? task_index : pos_of_task_[task_index];
    return ((unassigned_[pos >> 6] >> (pos & 63)) & 1u) == 0;
  }
  [[nodiscard]] SimTime delivery_time() const { return delivery_time_; }

  /// First consideration-order position >= `pos` holding an unassigned
  /// task, or batch_size() when none. O(n/64) word scan.
  [[nodiscard]] std::uint32_t first_unassigned_at_or_after(
      std::uint32_t pos) const;

  /// Task index at consideration-order position `pos`.
  [[nodiscard]] std::uint32_t task_at(std::uint32_t pos) const {
    return order_ == nullptr ? pos : order_[pos];
  }

  /// Raw unassigned bitset (bit = consideration-order position), for
  /// zero-overhead iteration in the sequence-oriented expansion loop.
  [[nodiscard]] const std::vector<std::uint64_t>& unassigned_words() const {
    return unassigned_;
  }

  /// Completion offset of worker k's queue (from delivery time).
  [[nodiscard]] SimDuration ce(ProcessorId k) const {
    return SimDuration{ce_us_[k]};
  }

  /// The full per-worker completion-offset vector in raw microseconds —
  /// the streaming operand of the simd worker-mask kernel.
  [[nodiscard]] const std::int64_t* ce_data() const { return ce_us_.data(); }

  /// CE — the load-balancing cost of this partial schedule (Sec. 4.4):
  /// the maximum completion offset over all workers.
  [[nodiscard]] SimDuration max_ce() const { return SimDuration{max_ce_us_}; }

  /// Minimum completion offset over all workers — the lower bound used by
  /// the engine's bulk infeasibility test. O(m/lanes) via simd::min_i64.
  [[nodiscard]] SimDuration min_ce() const {
    return SimDuration{simd::min_i64(
        ce_us_.data(), static_cast<std::uint32_t>(ce_us_.size()))};
  }

  /// Lower-bound infeasibility test over ALL workers at once: end offsets
  /// are >= max(min_ce, es_off) + p (communication cost is non-negative),
  /// so when that bound already misses the deadline every one of the m
  /// placements is infeasible and the engine can charge the budget without
  /// evaluating each. `min_ce` must be this schedule's current min_ce().
  /// Sound for gangs too: a gang's start is the max completion offset over
  /// its worker block, which is >= min_ce, and the structurally invalid
  /// leads (block past worker m) are infeasible by definition.
  [[nodiscard]] bool task_unplaceable(std::uint32_t task_index,
                                      SimDuration min_ce) const {
    const std::int64_t es = es_us_[task_index];
    const std::int64_t start = min_ce.us > es ? min_ce.us : es;
    return start + p_us_[task_index] > d_us_[task_index];
  }

  /// Assembled per-task constants (by value — storage is SoA).
  [[nodiscard]] TaskConstants constants(std::uint32_t task_index) const {
    return TaskConstants{p_us_[task_index], es_us_[task_index],
                         d_us_[task_index], aff_bits_[task_index],
                         width_[task_index]};
  }

  /// Direct SoA field reads for the hot loops.
  [[nodiscard]] std::int64_t processing_us(std::uint32_t i) const {
    return p_us_[i];
  }
  [[nodiscard]] std::int64_t d_off_us(std::uint32_t i) const {
    return d_us_[i];
  }
  [[nodiscard]] std::uint32_t workers_required(std::uint32_t i) const {
    return width_[i];
  }
  /// True when any task in the batch is a gang (width > 1).
  [[nodiscard]] bool has_gangs() const { return has_gangs_; }

  // -- simd batch evaluation (search/simd.h) ---------------------------------
  // Both mask kernels compute EXACTLY the per-lane verdicts evaluate_fast
  // would return, under preconditions the engine checks before taking the
  // batched path; outside them it falls back to the scalar loop, so results
  // stay bit-identical either way.

  /// True when feasible_workers_mask(task) is exact for this task: constant
  /// cut-through communication (no per-worker comm_cost calls), width 1 (no
  /// block scan), and a non-empty affinity (evaluate_fast would REQUIRE on
  /// an empty one — the mask path must not mask that bug).
  [[nodiscard]] bool workers_mask_eligible(std::uint32_t task_index) const {
    return cut_through_ && width_[task_index] == 1 &&
           aff_bits_[task_index] != 0;
  }

  /// Bit k set iff evaluate_fast(task_index, k) would be feasible, for every
  /// worker k at once. Preconditions: workers_mask_eligible(task_index).
  [[nodiscard]] std::uint64_t feasible_workers_mask(
      std::uint32_t task_index) const {
    return simd::feasible_workers_mask(
        ce_us_.data(), static_cast<std::uint32_t>(ce_us_.size()),
        p_us_[task_index], es_us_[task_index], d_us_[task_index], comm_us_,
        aff_bits_[task_index]);
  }

  /// True when feasible_tasks_mask is exact for this whole batch: constant
  /// cut-through communication and no gangs anywhere (the per-word batches
  /// come off the unassigned bitset, which doesn't know widths). Individual
  /// tasks must additionally have non-empty affinities — guaranteed by the
  /// workload layer and asserted in debug builds.
  [[nodiscard]] bool tasks_mask_eligible() const {
    return cut_through_ && !has_gangs_;
  }

  /// Bit j set iff evaluate_fast(tasks[j], worker) would be feasible.
  /// `tasks` holds `count` <= 64 unassigned task ids. Preconditions:
  /// tasks_mask_eligible().
  [[nodiscard]] std::uint64_t feasible_tasks_mask(
      ProcessorId worker, const std::uint32_t* tasks,
      std::uint32_t count) const;

  /// Evaluates the candidate vertex (T_l -> P_k): computes cost and end
  /// offset, and applies the feasibility test of Fig. 4. Returns nullopt
  /// when infeasible. Does not modify the schedule.
  [[nodiscard]] std::optional<Assignment> evaluate(
      std::uint32_t task_index, ProcessorId worker) const;

  /// Precondition-free evaluation core for the search hot loop: same
  /// arithmetic and feasibility test as evaluate(), but writes into `out`
  /// (no optional) and validates nothing beyond debug assertions. Returns
  /// true when feasible. Callers must guarantee task_index/worker are in
  /// range and the task is unassigned.
  bool evaluate_fast(std::uint32_t task_index, ProcessorId worker,
                     Assignment& out) const;

  /// Extends the path by `a` (which must have come from evaluate() at the
  /// current state).
  void push(const Assignment& a);

  /// Undoes the most recent assignment (backtracking). O(1) for sequential
  /// tasks (restores the worker's queue offset and CE from the assignment's
  /// undo fields); O(k) for a k-worker gang, whose sibling offsets are
  /// restored from the side undo stack push() recorded.
  void pop();

  /// Assignments along the current path, in path order.
  [[nodiscard]] const std::vector<Assignment>& path() const { return path_; }

  /// Bytes of heap state this schedule holds (SoA constants, bitset, path) —
  /// for the bench memory column.
  [[nodiscard]] std::size_t footprint_bytes() const;

 private:
  [[nodiscard]] std::uint32_t pos_of(std::uint32_t task_index) const {
    return pos_of_task_.empty() ? task_index : pos_of_task_[task_index];
  }
  void reset_unassigned_bits();

  const std::vector<Task>* batch_;
  const machine::Interconnect* net_;
  SimTime delivery_time_;
  std::vector<SimDuration> base_loads_;
  /// Per-worker completion offsets in raw microseconds (SoA hot vector).
  std::vector<std::int64_t> ce_us_;
  std::int64_t max_ce_us_{0};
  // Per-task constants, one contiguous array per field (SoA).
  std::vector<std::int64_t> p_us_;
  std::vector<std::int64_t> es_us_;
  std::vector<std::int64_t> d_us_;
  std::vector<std::uint64_t> aff_bits_;
  std::vector<std::uint32_t> width_;
  bool has_gangs_{false};
  bool cut_through_{true};
  std::int64_t comm_us_{0};  ///< constant C (cut-through model only)
  /// Bit (per consideration-order position) set while unassigned.
  std::vector<std::uint64_t> unassigned_;
  const std::uint32_t* order_{nullptr};        ///< nullptr = identity
  std::vector<std::uint32_t> pos_of_task_;     ///< empty = identity
  std::vector<Assignment> path_;
  /// Sibling undo values for gang assignments: push() of a k-worker gang
  /// appends the k-1 pre-push completion offsets of workers
  /// [worker+1, worker+k) (the lead's lives in Assignment::prev_ce), and
  /// pop() restores them. Valid because push/pop are strictly LIFO.
  std::vector<SimDuration> gang_undo_;
};

}  // namespace rtds::search
