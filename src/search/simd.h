// RTDS_SIMD: the portable vector layer under the search hot path.
//
// Three kernels cover the Fig. 4 inner loops:
//
//   feasible_workers_mask — one candidate task against all m workers
//                           (assignment-oriented expansion; lanes are
//                           workers, the ce_k vector streams in).
//   feasible_tasks_mask   — one worker against a word of candidate tasks
//                           (sequence-oriented expansion; lanes are tasks,
//                           the SoA constants arrays are gathered).
//   max_i64 / min_i64     — the CE = max_k ce_k load scan and its min
//                           (cursor-hoist) twin.
//
// Every kernel has a `_scalar` reference variant that is ALWAYS compiled,
// regardless of target flags; the vector paths are proven against it by
// tests/search/simd_parity_test.cc. Backend selection is at build time:
// AVX2 when the TU is compiled with -mavx2/-march=native, NEON on AArch64,
// otherwise the scalar variants (written as plain countable loops so the
// autovectorizer can still do its thing). Defining RTDS_SIMD_FORCE_SCALAR
// pins the scalar paths on any hardware — the CI scalar-fallback leg and
// the parity tests use it.
//
// Contract (relied on for bit-identical SearchResults): each vector kernel
// computes EXACTLY the scalar recurrence per lane —
//
//   comm  = (affinity bit set) ? 0 : comm_us      (cut-through networks)
//   start = max(ce_k, es)
//   feasible iff start + p + comm <= d
//
// with 64-bit two's-complement arithmetic, so the returned bitmask equals
// the scalar loop's verdicts bit for bit. All operands are microsecond
// counts far below 2^62; no kernel may reassociate in a way that changes
// results under that bound.
#pragma once

#include <cstddef>
#include <cstdint>

#if !defined(RTDS_SIMD_FORCE_SCALAR)
#if defined(__AVX2__)
#define RTDS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define RTDS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace rtds::search::simd {

[[nodiscard]] inline const char* backend_name() {
#if defined(RTDS_SIMD_AVX2)
  return "avx2";
#elif defined(RTDS_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These ARE the specification; the vector paths
// below must agree with them on every input the engines can produce.
// ---------------------------------------------------------------------------

/// Bit k set iff worker k can finish the candidate task by its deadline:
/// max(ce[k], es) + p + ((aff >> k) & 1 ? 0 : comm) <= d. Workers >= m are
/// clear. Requires m <= 64.
[[nodiscard]] inline std::uint64_t feasible_workers_mask_scalar(
    const std::int64_t* ce, std::uint32_t m, std::int64_t p_us,
    std::int64_t es_us, std::int64_t d_us, std::int64_t comm_us,
    std::uint64_t aff_bits) {
  std::uint64_t mask = 0;
  for (std::uint32_t k = 0; k < m; ++k) {
    const std::int64_t comm = ((aff_bits >> k) & 1u) != 0 ? 0 : comm_us;
    const std::int64_t start = ce[k] > es_us ? ce[k] : es_us;
    if (start + p_us + comm <= d_us) mask |= std::uint64_t{1} << k;
  }
  return mask;
}

/// Bit j set iff tasks[j] fits on `worker` (whose load is ce_w):
/// max(ce_w, es[t]) + p[t] + ((aff[t] >> worker) & 1 ? 0 : comm) <= d[t].
/// p/es/d/aff are the SoA constants arrays indexed by task id; `tasks`
/// holds `count` <= 64 task ids.
[[nodiscard]] inline std::uint64_t feasible_tasks_mask_scalar(
    const std::uint32_t* tasks, std::uint32_t count, std::int64_t ce_w,
    std::uint32_t worker, const std::int64_t* p_us, const std::int64_t* es_us,
    const std::int64_t* d_us, const std::uint64_t* aff_bits,
    std::int64_t comm_us) {
  std::uint64_t mask = 0;
  for (std::uint32_t j = 0; j < count; ++j) {
    const std::uint32_t t = tasks[j];
    const std::int64_t comm =
        ((aff_bits[t] >> worker) & 1u) != 0 ? 0 : comm_us;
    const std::int64_t start = ce_w > es_us[t] ? ce_w : es_us[t];
    if (start + p_us[t] + comm <= d_us[t]) mask |= std::uint64_t{1} << j;
  }
  return mask;
}

/// max over v[0..m); m >= 1.
[[nodiscard]] inline std::int64_t max_i64_scalar(const std::int64_t* v,
                                                 std::uint32_t m) {
  std::int64_t best = v[0];
  for (std::uint32_t k = 1; k < m; ++k) {
    if (v[k] > best) best = v[k];
  }
  return best;
}

/// min over v[0..m); m >= 1.
[[nodiscard]] inline std::int64_t min_i64_scalar(const std::int64_t* v,
                                                 std::uint32_t m) {
  std::int64_t best = v[0];
  for (std::uint32_t k = 1; k < m; ++k) {
    if (v[k] < best) best = v[k];
  }
  return best;
}

// ---------------------------------------------------------------------------
// Dispatching kernels.
// ---------------------------------------------------------------------------

#if defined(RTDS_SIMD_AVX2)

namespace detail {

/// Lane-wise max(a, b) for epi64 (AVX2 has no _mm256_max_epi64).
[[nodiscard]] inline __m256i max_epi64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

/// Lane-wise min(a, b) for epi64.
[[nodiscard]] inline __m256i min_epi64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

/// Low 4 bits = sign bit (i.e. all-ones test) of each 64-bit lane.
[[nodiscard]] inline std::uint32_t movemask_epi64(__m256i v) {
  return static_cast<std::uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(v)));
}

}  // namespace detail

[[nodiscard]] inline std::uint64_t feasible_workers_mask(
    const std::int64_t* ce, std::uint32_t m, std::int64_t p_us,
    std::int64_t es_us, std::int64_t d_us, std::int64_t comm_us,
    std::uint64_t aff_bits) {
  std::uint64_t mask = 0;
  const __m256i es_v = _mm256_set1_epi64x(es_us);
  const __m256i d_v = _mm256_set1_epi64x(d_us);
  const __m256i p_v = _mm256_set1_epi64x(p_us);
  const __m256i comm_v = _mm256_set1_epi64x(comm_us);
  const __m256i one_v = _mm256_set1_epi64x(1);
  const __m256i aff_v =
      _mm256_set1_epi64x(static_cast<long long>(aff_bits));
  const __m256i four_v = _mm256_set1_epi64x(4);
  __m256i idx_v = _mm256_setr_epi64x(0, 1, 2, 3);
  std::uint32_t k = 0;
  for (; k + 4 <= m; k += 4) {
    const __m256i ce_v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ce + k));
    // comm lane = comm_us where the affinity bit is clear, else 0.
    const __m256i bit_v =
        _mm256_and_si256(_mm256_srlv_epi64(aff_v, idx_v), one_v);
    const __m256i no_aff_v = _mm256_cmpeq_epi64(bit_v, _mm256_setzero_si256());
    const __m256i c_v = _mm256_and_si256(no_aff_v, comm_v);
    const __m256i start_v = detail::max_epi64(ce_v, es_v);
    const __m256i end_v =
        _mm256_add_epi64(_mm256_add_epi64(start_v, p_v), c_v);
    // feasible iff end <= d, i.e. NOT (end > d).
    const std::uint32_t bad = detail::movemask_epi64(_mm256_cmpgt_epi64(end_v, d_v));
    mask |= static_cast<std::uint64_t>(~bad & 0xFu) << k;
    idx_v = _mm256_add_epi64(idx_v, four_v);
  }
  for (; k < m; ++k) {
    const std::int64_t comm = ((aff_bits >> k) & 1u) != 0 ? 0 : comm_us;
    const std::int64_t start = ce[k] > es_us ? ce[k] : es_us;
    if (start + p_us + comm <= d_us) mask |= std::uint64_t{1} << k;
  }
  return mask;
}

[[nodiscard]] inline std::uint64_t feasible_tasks_mask(
    const std::uint32_t* tasks, std::uint32_t count, std::int64_t ce_w,
    std::uint32_t worker, const std::int64_t* p_us, const std::int64_t* es_us,
    const std::int64_t* d_us, const std::uint64_t* aff_bits,
    std::int64_t comm_us) {
  std::uint64_t mask = 0;
  const __m256i ce_v = _mm256_set1_epi64x(ce_w);
  const __m256i comm_v = _mm256_set1_epi64x(comm_us);
  const __m256i one_v = _mm256_set1_epi64x(1);
  const __m128i shift_v = _mm_cvtsi32_si128(static_cast<int>(worker));
  std::uint32_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const __m128i t_v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tasks + j));
    const __m256i p_g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(p_us), t_v, 8);
    const __m256i es_g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(es_us), t_v, 8);
    const __m256i d_g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(d_us), t_v, 8);
    const __m256i aff_g = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(aff_bits), t_v, 8);
    const __m256i bit_v =
        _mm256_and_si256(_mm256_srl_epi64(aff_g, shift_v), one_v);
    const __m256i no_aff_v = _mm256_cmpeq_epi64(bit_v, _mm256_setzero_si256());
    const __m256i c_v = _mm256_and_si256(no_aff_v, comm_v);
    const __m256i start_v = detail::max_epi64(ce_v, es_g);
    const __m256i end_v =
        _mm256_add_epi64(_mm256_add_epi64(start_v, p_g), c_v);
    const std::uint32_t bad = detail::movemask_epi64(_mm256_cmpgt_epi64(end_v, d_g));
    mask |= static_cast<std::uint64_t>(~bad & 0xFu) << j;
  }
  for (; j < count; ++j) {
    const std::uint32_t t = tasks[j];
    const std::int64_t comm =
        ((aff_bits[t] >> worker) & 1u) != 0 ? 0 : comm_us;
    const std::int64_t start = ce_w > es_us[t] ? ce_w : es_us[t];
    if (start + p_us[t] + comm <= d_us[t]) mask |= std::uint64_t{1} << j;
  }
  return mask;
}

[[nodiscard]] inline std::int64_t max_i64(const std::int64_t* v,
                                          std::uint32_t m) {
  if (m < 8) return max_i64_scalar(v, m);
  __m256i best_v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  std::uint32_t k = 4;
  for (; k + 4 <= m; k += 4) {
    best_v = detail::max_epi64(
        best_v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + k)));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best_v);
  std::int64_t best = lanes[0];
  for (int i = 1; i < 4; ++i) {
    if (lanes[i] > best) best = lanes[i];
  }
  for (; k < m; ++k) {
    if (v[k] > best) best = v[k];
  }
  return best;
}

[[nodiscard]] inline std::int64_t min_i64(const std::int64_t* v,
                                          std::uint32_t m) {
  if (m < 8) return min_i64_scalar(v, m);
  __m256i best_v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  std::uint32_t k = 4;
  for (; k + 4 <= m; k += 4) {
    best_v = detail::min_epi64(
        best_v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + k)));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best_v);
  std::int64_t best = lanes[0];
  for (int i = 1; i < 4; ++i) {
    if (lanes[i] < best) best = lanes[i];
  }
  for (; k < m; ++k) {
    if (v[k] < best) best = v[k];
  }
  return best;
}

#elif defined(RTDS_SIMD_NEON)

[[nodiscard]] inline std::uint64_t feasible_workers_mask(
    const std::int64_t* ce, std::uint32_t m, std::int64_t p_us,
    std::int64_t es_us, std::int64_t d_us, std::int64_t comm_us,
    std::uint64_t aff_bits) {
  std::uint64_t mask = 0;
  const int64x2_t es_v = vdupq_n_s64(es_us);
  const int64x2_t slack_v = vdupq_n_s64(d_us - p_us);
  const int64x2_t comm_v = vdupq_n_s64(comm_us);
  std::uint32_t k = 0;
  for (; k + 2 <= m; k += 2) {
    const int64x2_t ce_v = vld1q_s64(ce + k);
    const uint64x2_t has_aff = vcombine_u64(
        vdup_n_u64(((aff_bits >> k) & 1u) != 0 ? ~0ull : 0ull),
        vdup_n_u64(((aff_bits >> (k + 1)) & 1u) != 0 ? ~0ull : 0ull));
    const int64x2_t c_v =
        vbicq_s64(comm_v, vreinterpretq_s64_u64(has_aff));
    const int64x2_t start_v = vmaxq_s64(ce_v, es_v);
    // feasible iff start + p + c <= d  <=>  start + c <= d - p; both sides
    // stay below 2^62 so the rewrite cannot change the comparison.
    const uint64x2_t ok = vcleq_s64(vaddq_s64(start_v, c_v), slack_v);
    mask |= (vgetq_lane_u64(ok, 0) & 1u) << k;
    mask |= (vgetq_lane_u64(ok, 1) & 1u) << (k + 1);
  }
  for (; k < m; ++k) {
    const std::int64_t comm = ((aff_bits >> k) & 1u) != 0 ? 0 : comm_us;
    const std::int64_t start = ce[k] > es_us ? ce[k] : es_us;
    if (start + p_us + comm <= d_us) mask |= std::uint64_t{1} << k;
  }
  return mask;
}

[[nodiscard]] inline std::uint64_t feasible_tasks_mask(
    const std::uint32_t* tasks, std::uint32_t count, std::int64_t ce_w,
    std::uint32_t worker, const std::int64_t* p_us, const std::int64_t* es_us,
    const std::int64_t* d_us, const std::uint64_t* aff_bits,
    std::int64_t comm_us) {
  // NEON has no gather; the scalar loop autovectorizes poorly here anyway,
  // so lean on the reference kernel.
  return feasible_tasks_mask_scalar(tasks, count, ce_w, worker, p_us, es_us,
                                    d_us, aff_bits, comm_us);
}

[[nodiscard]] inline std::int64_t max_i64(const std::int64_t* v,
                                          std::uint32_t m) {
  if (m < 4) return max_i64_scalar(v, m);
  int64x2_t best_v = vld1q_s64(v);
  std::uint32_t k = 2;
  for (; k + 2 <= m; k += 2) best_v = vmaxq_s64(best_v, vld1q_s64(v + k));
  std::int64_t best = vgetq_lane_s64(best_v, 0);
  if (vgetq_lane_s64(best_v, 1) > best) best = vgetq_lane_s64(best_v, 1);
  for (; k < m; ++k) {
    if (v[k] > best) best = v[k];
  }
  return best;
}

[[nodiscard]] inline std::int64_t min_i64(const std::int64_t* v,
                                          std::uint32_t m) {
  if (m < 4) return min_i64_scalar(v, m);
  int64x2_t best_v = vld1q_s64(v);
  std::uint32_t k = 2;
  for (; k + 2 <= m; k += 2) best_v = vminq_s64(best_v, vld1q_s64(v + k));
  std::int64_t best = vgetq_lane_s64(best_v, 0);
  if (vgetq_lane_s64(best_v, 1) < best) best = vgetq_lane_s64(best_v, 1);
  for (; k < m; ++k) {
    if (v[k] < best) best = v[k];
  }
  return best;
}

#else  // scalar fallback

[[nodiscard]] inline std::uint64_t feasible_workers_mask(
    const std::int64_t* ce, std::uint32_t m, std::int64_t p_us,
    std::int64_t es_us, std::int64_t d_us, std::int64_t comm_us,
    std::uint64_t aff_bits) {
  return feasible_workers_mask_scalar(ce, m, p_us, es_us, d_us, comm_us,
                                      aff_bits);
}

[[nodiscard]] inline std::uint64_t feasible_tasks_mask(
    const std::uint32_t* tasks, std::uint32_t count, std::int64_t ce_w,
    std::uint32_t worker, const std::int64_t* p_us, const std::int64_t* es_us,
    const std::int64_t* d_us, const std::uint64_t* aff_bits,
    std::int64_t comm_us) {
  return feasible_tasks_mask_scalar(tasks, count, ce_w, worker, p_us, es_us,
                                    d_us, aff_bits, comm_us);
}

[[nodiscard]] inline std::int64_t max_i64(const std::int64_t* v,
                                          std::uint32_t m) {
  return max_i64_scalar(v, m);
}

[[nodiscard]] inline std::int64_t min_i64(const std::int64_t* v,
                                          std::uint32_t m) {
  return min_i64_scalar(v, m);
}

#endif

}  // namespace rtds::search::simd
