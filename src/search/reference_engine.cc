// Pre-optimization engine snapshot — see reference_engine.h for why this
// code is deliberately kept slow. It mirrors the historic engine.cc and
// partial_schedule.cc line for line (modulo renames into this namespace).
#include "search/reference_engine.h"

#include <algorithm>
#include <optional>
#include <tuple>

#include "common/error.h"

namespace rtds::search::reference {

namespace {

/// Historic PartialSchedule: std::vector<bool> assigned map, O(m) max_ce
/// rescan on every pop.
class ReferencePartialSchedule {
 public:
  ReferencePartialSchedule(const std::vector<Task>* batch,
                           std::vector<SimDuration> base_loads,
                           SimTime delivery_time,
                           const machine::Interconnect* net)
      : batch_(batch),
        net_(net),
        delivery_time_(delivery_time),
        base_loads_(std::move(base_loads)),
        assigned_(batch->size(), false) {
    RTDS_REQUIRE(batch_ != nullptr && net_ != nullptr,
                 "ReferencePartialSchedule: null batch or interconnect");
    RTDS_REQUIRE(base_loads_.size() == net_->num_workers(),
                 "ReferencePartialSchedule: base_loads size != worker count");
    for (SimDuration d : base_loads_) {
      RTDS_REQUIRE(!d.is_negative(),
                   "ReferencePartialSchedule: negative base load");
    }
    ce_ = base_loads_;
    max_ce_ = SimDuration::zero();
    for (SimDuration d : ce_) max_ce_ = max_duration(max_ce_, d);
    path_.reserve(batch->size());
  }

  [[nodiscard]] std::uint32_t depth() const {
    return static_cast<std::uint32_t>(path_.size());
  }
  [[nodiscard]] std::uint32_t batch_size() const {
    return static_cast<std::uint32_t>(batch_->size());
  }
  [[nodiscard]] bool complete() const { return depth() == batch_size(); }
  [[nodiscard]] bool assigned(std::uint32_t task_index) const {
    return assigned_[task_index];
  }
  [[nodiscard]] SimDuration ce(ProcessorId k) const { return ce_[k]; }
  [[nodiscard]] SimDuration max_ce() const { return max_ce_; }

  [[nodiscard]] std::optional<Assignment> evaluate(std::uint32_t task_index,
                                                   ProcessorId worker) const {
    RTDS_REQUIRE(task_index < batch_->size(), "evaluate: bad task index");
    RTDS_REQUIRE(worker < net_->num_workers(), "evaluate: bad worker id");
    RTDS_REQUIRE(!assigned_[task_index], "evaluate: task already assigned");

    const Task& t = (*batch_)[task_index];
    // Gang occupancy rule (must match PartialSchedule::evaluate_fast): the
    // contiguous block [worker, worker+k) must fit in the machine, and the
    // job starts only once the whole block has drained. Communication is
    // priced against the lead worker's affinity alone.
    if (std::size_t{worker} + t.workers_required > ce_.size()) {
      return std::nullopt;
    }
    Assignment a;
    a.task_index = task_index;
    a.worker = worker;
    a.exec_cost = t.processing + net_->comm_cost(t.affinity, worker);
    a.prev_ce = ce_[worker];
    a.prev_max_ce = max_ce_;
    a.start_offset = a.prev_ce;
    for (std::uint32_t j = 1; j < t.workers_required; ++j) {
      a.start_offset = max_duration(a.start_offset, ce_[worker + j]);
    }
    if (t.earliest_start > delivery_time_) {
      a.start_offset =
          max_duration(a.start_offset, t.earliest_start - delivery_time_);
    }
    a.end_offset = a.start_offset + a.exec_cost;

    if (delivery_time_ + a.end_offset > t.deadline) return std::nullopt;
    return a;
  }

  void push(const Assignment& a) {
    RTDS_ASSERT(!assigned_[a.task_index]);
    RTDS_ASSERT(a.worker < ce_.size());
    RTDS_ASSERT(ce_[a.worker] == a.prev_ce);
    assigned_[a.task_index] = true;
    const std::uint32_t k = (*batch_)[a.task_index].workers_required;
    for (std::uint32_t j = 1; j < k; ++j) {
      gang_undo_.push_back(ce_[a.worker + j]);
      ce_[a.worker + j] = a.end_offset;
    }
    ce_[a.worker] = a.end_offset;
    max_ce_ = max_duration(max_ce_, ce_[a.worker]);
    path_.push_back(a);
  }

  void pop() {
    RTDS_REQUIRE(!path_.empty(), "pop: empty path");
    const Assignment a = path_.back();
    path_.pop_back();
    assigned_[a.task_index] = false;
    const std::uint32_t k = (*batch_)[a.task_index].workers_required;
    for (std::uint32_t j = k; j-- > 1;) {
      ce_[a.worker + j] = gang_undo_.back();
      gang_undo_.pop_back();
    }
    ce_[a.worker] = a.prev_ce;
    // Historic behavior: max_ce recomputed with a full O(m) rescan.
    max_ce_ = SimDuration::zero();
    for (SimDuration d : ce_) max_ce_ = max_duration(max_ce_, d);
  }

 private:
  const std::vector<Task>* batch_;
  const machine::Interconnect* net_;
  SimTime delivery_time_;
  std::vector<SimDuration> base_loads_;
  std::vector<SimDuration> ce_;
  SimDuration max_ce_{SimDuration::zero()};
  std::vector<bool> assigned_;
  std::vector<Assignment> path_;
  std::vector<SimDuration> gang_undo_;
};

struct Node {
  std::int32_t parent{-1};
  std::uint32_t depth{0};
  std::uint32_t order_cursor{0};
  Assignment assignment;
};

struct Candidate {
  Assignment assignment;
  std::int64_t key1{0};
  std::int64_t key2{0};
  std::uint32_t key3{0};

  bool operator<(const Candidate& o) const {
    return std::tie(key1, key2, key3) < std::tie(o.key1, o.key2, o.key3);
  }
};

/// Historic candidate list: one Entry vector, std::push_heap per best-first
/// insertion.
class CandidateList {
 public:
  explicit CandidateList(SearchStrategy strategy) : strategy_(strategy) {}

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  void push(const Candidate& c, std::int32_t node) {
    entries_.push_back(Entry{c.key1, c.key2, c.key3, seq_++, node});
    if (strategy_ == SearchStrategy::kBestFirst) {
      std::push_heap(entries_.begin(), entries_.end(), BestOnTop{});
    }
  }

  std::int32_t pop() {
    RTDS_ASSERT(!entries_.empty());
    if (strategy_ == SearchStrategy::kBestFirst) {
      std::pop_heap(entries_.begin(), entries_.end(), BestOnTop{});
    }
    const std::int32_t node = entries_.back().node;
    entries_.pop_back();
    return node;
  }

 private:
  struct Entry {
    std::int64_t k1;
    std::int64_t k2;
    std::uint32_t k3;
    std::uint64_t seq;
    std::int32_t node;
  };
  struct BestOnTop {
    bool operator()(const Entry& a, const Entry& b) const {
      return std::tie(a.k1, a.k2, a.k3, a.seq) >
             std::tie(b.k1, b.k2, b.k3, b.seq);
    }
  };

  SearchStrategy strategy_;
  std::uint64_t seq_{0};
  std::vector<Entry> entries_;
};

}  // namespace

SearchResult run(const SearchConfig& config, const std::vector<Task>& batch,
                 std::vector<SimDuration> base_loads, SimTime delivery_time,
                 const machine::Interconnect& net,
                 std::uint64_t vertex_budget) {
  SearchResult result;
  if (batch.empty() || vertex_budget == 0) return result;

  const auto n = static_cast<std::uint32_t>(batch.size());
  const std::uint32_t m = net.num_workers();
  const std::vector<std::uint32_t> order =
      task_consideration_order(batch, config.task_order);

  ReferencePartialSchedule ps(&batch, std::move(base_loads), delivery_time,
                              &net);

  std::vector<Node> arena;
  arena.reserve(std::min<std::uint64_t>(vertex_budget, 1u << 20));
  CandidateList cl(config.strategy);

  SearchStats& stats = result.stats;
  std::uint64_t budget_left = vertex_budget;

  std::int32_t current = -1;
  std::int32_t best_node = -1;
  std::uint32_t best_depth = 0;
  SimDuration best_ce = SimDuration::max();

  const auto node_depth = [&](std::int32_t id) -> std::uint32_t {
    return id < 0 ? 0u : arena[std::size_t(id)].depth;
  };

  const auto make_candidate = [&](const Assignment& a,
                                  std::uint32_t branch_index) {
    Candidate c;
    c.assignment = a;
    if (config.use_load_balance_cost) {
      c.key1 = max_duration(ps.max_ce(), a.end_offset).us;
      c.key2 = a.end_offset.us;
      c.key3 = branch_index;
    } else if (config.representation == Representation::kAssignmentOriented) {
      switch (config.processor_order) {
        case ProcessorOrder::kIndexOrder:
          c.key1 = a.worker;
          break;
        case ProcessorOrder::kMinEndOffset:
          c.key1 = a.end_offset.us;
          c.key2 = a.worker;
          break;
        case ProcessorOrder::kMinCommCost:
          c.key1 = (a.exec_cost - batch[a.task_index].processing).us;
          c.key2 = a.end_offset.us;
          c.key3 = a.worker;
          break;
      }
    } else {
      c.key1 = branch_index;
    }
    return c;
  };

  std::vector<Candidate> candidates;
  const auto expand_current = [&](std::uint32_t cursor) -> std::uint32_t {
    ++stats.expansions;
    candidates.clear();
    const std::uint32_t depth = ps.depth();
    if (config.max_depth != 0 && depth >= config.max_depth) {
      return cursor;
    }

    if (config.representation == Representation::kAssignmentOriented) {
      std::uint32_t scan = cursor;
      while (scan < n) {
        while (scan < n && ps.assigned(order[scan])) ++scan;
        if (scan == n) break;
        const std::uint32_t task = order[scan];
        for (std::uint32_t k = 0; k < m; ++k) {
          if (budget_left == 0) {
            stats.budget_exhausted = true;
            break;
          }
          --budget_left;
          ++stats.vertices_generated;
          if (auto a = ps.evaluate(task, k)) {
            candidates.push_back(make_candidate(*a, k));
            if (config.max_successors != 0 &&
                candidates.size() >= config.max_successors) {
              break;
            }
          }
        }
        if (!candidates.empty() || stats.budget_exhausted ||
            !config.skip_unplaceable_tasks) {
          break;
        }
        ++scan;
      }
      cursor = scan;
    } else {
      std::vector<ProcessorId> level_order(m);
      for (std::uint32_t k = 0; k < m; ++k) {
        level_order[k] = (depth + k) % m;
      }
      if (config.level_processor_order == LevelProcessorOrder::kLeastLoaded) {
        std::stable_sort(level_order.begin(), level_order.end(),
                         [&](ProcessorId a, ProcessorId b) {
                           return ps.ce(a) < ps.ce(b);
                         });
      }
      const std::uint32_t max_rotations =
          config.skip_saturated_processors ? m : 1;
      for (std::uint32_t rot = 0; rot < max_rotations; ++rot) {
        const ProcessorId worker = level_order[rot];
        std::uint32_t branch = 0;
        for (std::uint32_t i : order) {
          if (ps.assigned(i)) continue;
          if (budget_left == 0) {
            stats.budget_exhausted = true;
            break;
          }
          --budget_left;
          ++stats.vertices_generated;
          if (auto a = ps.evaluate(i, worker)) {
            candidates.push_back(make_candidate(*a, branch));
            if (config.max_successors != 0 &&
                candidates.size() >= config.max_successors) {
              break;
            }
          }
          ++branch;
        }
        if (!candidates.empty() || stats.budget_exhausted) break;
      }
    }

    std::stable_sort(candidates.begin(), candidates.end());
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      Node node;
      node.parent = current;
      node.depth = ps.depth() + 1;
      node.order_cursor = cursor;
      node.assignment = it->assignment;
      arena.push_back(node);
      cl.push(*it, static_cast<std::int32_t>(arena.size() - 1));
    }
    return cursor;
  };

  std::vector<const Assignment*> chain;
  const auto switch_to = [&](std::int32_t target) {
    chain.clear();
    std::int32_t a = current;
    std::int32_t b = target;
    while (node_depth(b) > node_depth(a)) {
      chain.push_back(&arena[std::size_t(b)].assignment);
      b = arena[std::size_t(b)].parent;
    }
    while (node_depth(a) > node_depth(b)) {
      ps.pop();
      a = arena[std::size_t(a)].parent;
    }
    while (a != b) {
      ps.pop();
      a = arena[std::size_t(a)].parent;
      chain.push_back(&arena[std::size_t(b)].assignment);
      b = arena[std::size_t(b)].parent;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      ps.push(**it);
    }
    current = target;
  };

  while (true) {
    if (budget_left == 0) {
      stats.budget_exhausted = true;
      break;
    }
    expand_current(current < 0 ? 0u
                               : arena[std::size_t(current)].order_cursor);
    if (cl.empty()) {
      if (!ps.complete()) stats.dead_end = true;
      break;
    }
    const std::int32_t next = cl.pop();
    if (arena[std::size_t(next)].parent != current) ++stats.backtracks;
    switch_to(next);

    if (ps.depth() > stats.max_depth) stats.max_depth = ps.depth();
    const bool deeper = ps.depth() > best_depth;
    const bool same_depth_better =
        ps.depth() == best_depth && ps.max_ce() < best_ce;
    if (best_node == -1 || deeper || same_depth_better) {
      best_node = current;
      best_depth = ps.depth();
      best_ce = ps.max_ce();
    }

    if (ps.complete()) {
      stats.reached_leaf = true;
      break;
    }
  }

  const std::int32_t chosen = config.return_deepest ? best_node : current;
  std::vector<Assignment> out;
  for (std::int32_t v = chosen; v >= 0; v = arena[std::size_t(v)].parent) {
    out.push_back(arena[std::size_t(v)].assignment);
  }
  std::reverse(out.begin(), out.end());
  result.schedule = std::move(out);
  return result;
}

}  // namespace rtds::search::reference
