// Frozen pre-optimization snapshot of the search engine.
//
// This is the SearchEngine + PartialSchedule implementation exactly as it
// stood before the hot-path overhaul (O(m) max_ce rescan on pop,
// std::vector<bool> assigned map with a linear unassigned scan, per-expansion
// heap allocations, std::stable_sort per successor group, std::push_heap
// per best-first insertion). It exists for two reasons:
//
//   1. It is the *golden oracle* for the equivalence suite: the optimized
//      engine must return a bit-identical SearchResult (schedule, stats,
//      budget accounting) on every input, so any behavioral drift in the
//      fast path shows up as a hard test failure, not a subtly different
//      figure.
//   2. It is the *perf baseline* for bench_search_throughput: both engines
//      are compiled into the same binary and run on the same batches, so
//      BENCH_SEARCH.json records a true before/after trajectory instead of
//      numbers measured on different machines or commits.
//
// Do not "fix" or optimize this file — its value is that it does not move.
// The only intentional delta from the historic code is that evaluation also
// fills Assignment::prev_max_ce (a field added by the overhaul), computed
// from this engine's own state, so results remain field-for-field
// comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "machine/interconnect.h"
#include "search/engine.h"
#include "tasks/task.h"

namespace rtds::search::reference {

/// Runs one scheduling-phase search with the pre-optimization engine.
/// Same contract as SearchEngine::run.
[[nodiscard]] SearchResult run(const SearchConfig& config,
                               const std::vector<Task>& batch,
                               std::vector<SimDuration> base_loads,
                               SimTime delivery_time,
                               const machine::Interconnect& net,
                               std::uint64_t vertex_budget);

}  // namespace rtds::search::reference
