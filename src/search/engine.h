// The scheduling-as-search engine (Sec. 3 and 4.1).
//
// Schedule construction is an incremental depth-first search in the
// task-space tree G. Vertices are task-to-processor assignments; a path from
// the root is a feasible partial schedule. The engine maintains:
//   * an arena of generated vertices (parent links give paths);
//   * the candidate list CL: feasible successors are sorted by
//     heuristic/cost value and added to the FRONT of CL; each iteration
//     removes the first vertex of CL and expands it (LIFO => depth-first,
//     with sorted-group insertion exactly as described in Sec. 4.1);
//   * the current partial schedule, kept in sync with the vertex being
//     expanded via lowest-common-ancestor path switching (backtracking).
//
// The two search representations of Sec. 3:
//   * assignment-oriented (Fig. 2, used by RT-SADS): each level selects the
//     next TASK (by the task-order heuristic) and branches over all m
//     processors;
//   * sequence-oriented (Fig. 1, used by D-COLS): each level selects the
//     next PROCESSOR round-robin and branches over all unassigned tasks.
//
// Every *generated* vertex — feasible or not — consumes one unit of the
// phase's vertex budget, because generation includes evaluation and the
// feasibility test (Sec. 4.1). The budget is Q_s(j) divided by the
// per-vertex scheduling cost, which is how scheduling overhead is charged
// on the simulated clock.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "machine/interconnect.h"
#include "search/partial_schedule.h"
#include "tasks/task.h"

namespace rtds::search {

/// Which search representation to use (Sec. 3).
enum class Representation {
  kAssignmentOriented,  ///< Fig. 2 — RT-SADS
  kSequenceOriented,    ///< Fig. 1 — D-COLS
};

/// How the candidate list is consumed. The paper's algorithms are
/// depth-first (sorted successors are added to the FRONT of CL); the
/// best-first alternative always expands the globally cheapest candidate.
/// Because the load-balancing cost CE only grows with depth, best-first
/// degenerates toward breadth-first under a vertex budget — the ablation
/// ABL-STRAT quantifies why the paper is right to dive.
enum class SearchStrategy {
  kDepthFirst,
  kBestFirst,
};

/// Order in which tasks are considered (the task-selection heuristic).
enum class TaskOrder {
  kBatchOrder,        ///< arrival/merge order, no heuristic
  kEarliestDeadline,  ///< EDF — the classic real-time heuristic
  kMinSlack,          ///< least-laxity (d - p)
};

/// How the sequence-oriented representation picks the processor for each
/// level. The paper shows round-robin in Fig. 1 but notes "a heuristic
/// function can be applied to affect this order".
enum class LevelProcessorOrder {
  kRoundRobin,   ///< P_(depth mod m), Fig. 1
  kLeastLoaded,  ///< smallest current ce_k first — a load-aware D-COLS
};

/// Order in which processors are considered for one task
/// (assignment-oriented successor sorting, when the load-balancing cost
/// function is disabled).
enum class ProcessorOrder {
  kIndexOrder,    ///< P_0, P_1, ... — no heuristic
  kMinEndOffset,  ///< earliest completion of the task (greedy)
  kMinCommCost,   ///< affine processors first, then earliest completion
};

/// Engine configuration. Defaults correspond to RT-SADS as evaluated in the
/// paper: assignment-oriented, EDF task order, load-balancing cost function
/// enabled.
struct SearchConfig {
  Representation representation{Representation::kAssignmentOriented};
  SearchStrategy strategy{SearchStrategy::kDepthFirst};
  TaskOrder task_order{TaskOrder::kEarliestDeadline};
  ProcessorOrder processor_order{ProcessorOrder::kMinEndOffset};

  /// When true, feasible successors are sorted by the resulting
  /// load-balancing cost CE (Sec. 4.4), tie-broken by end offset. When
  /// false, `processor_order` (assignment-oriented) or `task_order`
  /// (sequence-oriented) alone decides.
  bool use_load_balance_cost{true};

  /// Pruning heuristics the paper lists for dynamic algorithms (Sec. 3):
  /// a cap on successors generated per expansion (0 = unlimited) and a cap
  /// on search depth (0 = unlimited).
  std::uint32_t max_successors{0};
  std::uint32_t max_depth{0};

  /// Assignment-oriented only. When true (default), a task whose every
  /// processor placement is infeasible at the current vertex is skipped and
  /// the next task in heuristic order is selected instead of declaring the
  /// level a dead-end. Skipping is sound and cheap to inherit: queue
  /// offsets ce_k only grow along a path, so a task infeasible on every
  /// worker stays infeasible in the entire subtree and is never
  /// re-evaluated below the vertex that proved it (the generated vertices
  /// are still charged against the budget once). Without this, one stuck
  /// tight task would stall whole scheduling phases. Disable to get the
  /// strict reading of the paper's Sec. 3 expansion rule (ablation ABL-H).
  bool skip_unplaceable_tasks{true};

  /// Sequence-oriented only: the level's processor selection rule.
  LevelProcessorOrder level_processor_order{LevelProcessorOrder::kRoundRobin};

  /// Sequence-oriented only. When true (default), a level whose round-robin
  /// processor admits no feasible task advances to the next processor
  /// (trying at most m processors per level, all evaluations charged)
  /// instead of dead-ending the branch. The paper notes the processor order
  /// "can be affected by a heuristic function"; a continuous scheduler that
  /// dies forever once P_0 saturates would be a strawman comparator.
  /// Disable for the strict round-robin reading (ablation ABL-H).
  bool skip_saturated_processors{true};

  /// When true (default), the engine returns the deepest feasible path seen
  /// during the search; when false it returns the current path at
  /// termination (strict reading of the paper). Deeper = more tasks
  /// scheduled this phase.
  bool return_deepest{true};
};

/// Counters describing one search run.
struct SearchStats {
  std::uint64_t vertices_generated{0};
  std::uint64_t expansions{0};
  std::uint64_t backtracks{0};
  std::uint32_t max_depth{0};
  bool reached_leaf{false};
  bool dead_end{false};
  bool budget_exhausted{false};
};

/// Result of one scheduling-phase search: a feasible (partial or complete)
/// schedule plus statistics.
struct SearchResult {
  std::vector<Assignment> schedule;  ///< path order
  SearchStats stats;
};

/// Hard structural ceiling on one phase batch, checked with InvalidArgument
/// (it bounds the 32-bit depth/cursor fields of the wide node header; the
/// narrow 16-bit header is selected automatically below 65536 tasks —
/// docs/ARCHITECTURE.md, "Search hot path").
inline constexpr std::uint32_t kMaxBatchTasks = 1u << 30;

/// Bytes currently retained by the calling thread's search workspace (the
/// pooled narrow/wide node arenas plus candidate scratch). For the bench
/// memory column; cheap enough to call between runs.
[[nodiscard]] std::size_t thread_workspace_bytes();

/// High-water mark of thread_workspace_bytes() on the calling thread (the
/// pool trims itself after oversized runs, so the current value can
/// understate what a big batch actually used).
[[nodiscard]] std::size_t thread_workspace_peak_bytes();

/// Depth-first search over the task-space tree. Stateless between runs;
/// one engine can be reused across phases.
class SearchEngine {
 public:
  explicit SearchEngine(SearchConfig config);

  [[nodiscard]] const SearchConfig& config() const { return config_; }

  /// Runs one scheduling phase's search.
  ///
  /// `batch`          — snapshot of Batch(j) (tasks to schedule); at most
  ///                    kMaxBatchTasks tasks (InvalidArgument beyond).
  ///                    Batches up to 65535 tasks use the packed 16-byte
  ///                    node header; larger ones promote to the wide
  ///                    header automatically;
  /// `base_loads`     — per-worker residual load at delivery time,
  ///                    max(0, Load_k(j-1) - Q_s(j));
  /// `delivery_time`  — t_s + Q_s(j);
  /// `net`            — interconnect pricing c_lk;
  /// `vertex_budget`  — maximum number of vertices to generate (>= 1).
  ///
  /// Thread-safe: per-thread scratch buffers are reused across calls (node
  /// arenas grow in pooled chunks and are retained between runs), so the
  /// search loop performs no steady-state heap allocation
  /// (docs/ARCHITECTURE.md, "Search hot path").
  [[nodiscard]] SearchResult run(const std::vector<Task>& batch,
                                 const std::vector<SimDuration>& base_loads,
                                 SimTime delivery_time,
                                 const machine::Interconnect& net,
                                 std::uint64_t vertex_budget) const;

 private:
  SearchConfig config_;
};

/// Precomputes the static task consideration order for a batch under the
/// given heuristic (deadlines and slacks do not change during a phase, so
/// the order is computed once). Exposed for tests.
std::vector<std::uint32_t> task_consideration_order(
    const std::vector<Task>& batch, TaskOrder order);

/// Allocation-reusing core of task_consideration_order: fills `out` with
/// the permutation (capacity retained across phases). kBatchOrder yields
/// the identity permutation; the engine skips the vector entirely in that
/// case and callers that only need identity semantics may do the same.
void task_consideration_order_into(const std::vector<Task>& batch,
                                   TaskOrder order,
                                   std::vector<std::uint32_t>& out);

}  // namespace rtds::search
