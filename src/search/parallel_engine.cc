#include "search/parallel_engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.h"
#include "search/expand_core.h"
#include "search/partial_schedule.h"

namespace rtds::search {

namespace {

// The candidate machinery (Candidate, sort_candidates, make_candidate, the
// expansion loop itself) is shared with the sequential engine through
// search/expand_core.h — one copy, so the bit-identical-results contract
// between the engines is structural. `expand_mirror` below is the local
// name for it: shard workers call it with an effectively unlimited budget
// and a scratch stats object (charge = budget consumed); the replay calls
// it with the real remaining budget whenever the memo cache cannot answer.
using detail::Candidate;

std::uint32_t expand_mirror(const SearchConfig& config, PartialSchedule& ps,
                            const std::vector<Task>& batch, std::uint32_t m,
                            std::uint32_t cursor, std::uint64_t& budget_left,
                            SearchStats& stats, std::vector<Candidate>& out,
                            std::vector<ProcessorId>& level_order,
                            std::vector<std::uint32_t>& task_ids) {
  return detail::expand_vertex(config, ps, batch, m, cursor, budget_left,
                               stats, out, level_order, task_ids);
}

// ------------------------------------------------------------------------
// Packed node ids and the per-shard chunked arena.
// ------------------------------------------------------------------------

constexpr std::uint64_t kInvalidId = ~std::uint64_t{0};
constexpr std::uint64_t kRootId = kInvalidId - 1;
constexpr std::uint32_t kShardShift = 56;
constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << kShardShift) - 1;

constexpr std::uint32_t kChunkShift = 12;  // 4096 nodes per chunk
constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
constexpr std::uint32_t kMaxChunks = 1u << 14;  // 64M nodes per shard

constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};
constexpr std::int64_t kClaimChunk = 1024;

/// One memoized vertex. Core fields (parent..key3) are written by the
/// creating shard before the id is published through its deque/heap, so
/// any thread that learned the id through a steal reads them safely.
/// Expansion fields (charge..expanded) are written by whichever worker wins
/// the claim and are read only by the post-round replay (rounds and replay
/// are separated by the pool's condition-variable barrier).
struct PNode {
  std::uint64_t parent{kRootId};
  Assignment assignment;
  std::int64_t key1{0};  ///< CL sort key recorded at creation
  std::int64_t key2{0};
  std::uint32_t key3{0};
  std::uint32_t depth{0};
  std::uint32_t order_cursor{0};
  // -- expansion record (valid when expanded != 0) --
  std::uint64_t charge{0};       ///< unconstrained budget charge
  std::uint32_t child_count{0};
  std::uint64_t child_begin{0};  ///< offset into child_shard's child pool
  std::uint16_t child_shard{0};
  std::uint8_t expanded{0};
  /// Exactly-once expansion: 0 -> 1 via exchange. Racing thieves holding
  /// duplicate copies all lose the exchange and drop theirs.
  std::atomic<std::uint8_t> claim{0};
};

// ------------------------------------------------------------------------
// Chase-Lev work-stealing deque (Le et al., CGO'13 C11 formulation) over a
// fixed ring of packed node ids. The owner pushes/pops at the bottom,
// thieves steal at the top (oldest entry = shallowest unexplored subtree).
// A full ring spills to the owner's private overflow stack instead of
// growing: spilled subtrees simply cannot be stolen, which only affects
// load balance — the deterministic replay fixes the result regardless.
// ------------------------------------------------------------------------

class WsDeque {
 public:
  static constexpr std::uint32_t kCapacity = 1u << 16;

  WsDeque() : buf_(new std::atomic<std::uint64_t>[kCapacity]) {}

  /// Owner only. False when full (caller spills to its overflow stack).
  bool push(std::uint64_t v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    buf_[static_cast<std::uint64_t>(b) & (kCapacity - 1)].store(
        v, std::memory_order_relaxed);
    // Release store (not the classic relaxed-after-fence) so the pushed
    // node's plain fields are published to thieves in a way TSan's
    // happens-before machinery models directly.
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only.
  bool pop(std::uint64_t& v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    v = buf_[static_cast<std::uint64_t>(b) & (kCapacity - 1)].load(
        std::memory_order_relaxed);
    if (t != b) return true;  // more than one entry left
    // Last entry: race the thieves for it.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won;
  }

  /// Any thread. Takes the oldest entry.
  bool steal(std::uint64_t& v) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    v = buf_[static_cast<std::uint64_t>(t) & (kCapacity - 1)].load(
        std::memory_order_relaxed);
    return top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
  }

  /// Between rounds/runs only (all workers parked).
  void reset() {
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> buf_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

/// Best-first frontier entry (exploration side). The tiebreak here is the
/// node id, not the sequential engine's push sequence — exploration order
/// is a heuristic, only the replay's pop order is contractual.
struct HeapEntry {
  std::int64_t k1;
  std::int64_t k2;
  std::uint32_t k3;
  std::uint64_t id;

  bool operator<(const HeapEntry& o) const {
    return std::tie(k1, k2, k3, id) < std::tie(o.k1, o.k2, o.k3, o.id);
  }
};

/// Replay-side candidate list: the sequential engine's CandidateList with
/// node ids instead of arena indices. Same 4-ary heap, same strictly total
/// (k1, k2, k3, seq) order, so the pop sequence is identical.
class ReplayList {
 public:
  struct Entry {
    std::int64_t k1;
    std::int64_t k2;
    std::uint32_t k3;
    std::uint64_t seq;
    std::uint64_t id;
  };

  void reset(SearchStrategy strategy) {
    strategy_ = strategy;
    entries_.clear();
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  void push(const Entry& e) {
    entries_.push_back(e);
    if (strategy_ == SearchStrategy::kBestFirst) sift_up(entries_.size() - 1);
  }

  std::uint64_t pop() {
    RTDS_ASSERT(!entries_.empty());
    if (strategy_ != SearchStrategy::kBestFirst) {
      const std::uint64_t id = entries_.back().id;
      entries_.pop_back();
      return id;
    }
    const std::uint64_t id = entries_.front().id;
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    return id;
  }

 private:
  static bool less(const Entry& a, const Entry& b) {
    return std::tie(a.k1, a.k2, a.k3, a.seq) <
           std::tie(b.k1, b.k2, b.k3, b.seq);
  }

  void sift_up(std::size_t i) {
    Entry e = entries_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!less(e, entries_[parent])) break;
      entries_[i] = entries_[parent];
      i = parent;
    }
    entries_[i] = e;
  }

  void sift_down(std::size_t i) {
    const std::size_t size = entries_.size();
    Entry e = entries_[i];
    while (true) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= size) break;
      const std::size_t last_child = std::min(first_child + 4, size);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (less(entries_[c], entries_[best])) best = c;
      }
      if (!less(entries_[best], e)) break;
      entries_[i] = entries_[best];
      i = best;
    }
    entries_[i] = e;
  }

  SearchStrategy strategy_{SearchStrategy::kDepthFirst};
  std::vector<Entry> entries_;
};

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// One shard: a worker thread's private arena, frontier, and scratch.
struct Shard {
  std::uint32_t index{0};

  // -- frontier --
  WsDeque deque;                       // depth-first, stealable
  std::vector<std::uint64_t> spill;    // owner-only deque overflow
  std::mutex heap_mu;                  // best-first
  std::vector<HeapEntry> heap;
  std::atomic<std::int64_t> heap_min_k1{
      std::numeric_limits<std::int64_t>::max()};

  // -- arena --
  std::unique_ptr<std::atomic<PNode*>[]> chunks;
  std::uint32_t allocated_chunks{0};
  std::uint64_t node_count{0};
  std::vector<std::uint64_t> child_pool;  // successor id lists, owner-append

  // -- per-run working state --
  std::unique_ptr<PartialSchedule> ps;
  std::uint64_t current{kRootId};
  std::vector<Candidate> cands;
  std::vector<ProcessorId> level_order;
  std::vector<std::uint32_t> task_ids;  // simd task-mask lane scratch
  std::vector<std::uint64_t> chain;
  std::int64_t claim_balance{0};
  std::uint64_t rng_state{1};

  // -- counters (merged into ParallelRunStats post-run) --
  std::uint64_t spec_vertices{0};
  std::uint64_t expansions{0};
  std::uint64_t steals{0};

  Shard() : chunks(new std::atomic<PNode*>[kMaxChunks]) {
    for (std::uint32_t i = 0; i < kMaxChunks; ++i) {
      chunks[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  ~Shard() {
    for (std::uint32_t i = 0; i < allocated_chunks; ++i) {
      delete[] chunks[i].load(std::memory_order_relaxed);
    }
  }
};

}  // namespace

// ------------------------------------------------------------------------
// Engine implementation.
// ------------------------------------------------------------------------

struct ParallelSearchEngine::Impl {
  const SearchConfig config;
  const std::uint32_t K;
  const std::uint64_t base_seed;

  std::mutex run_mu;  ///< serializes run() per engine instance

  // -- persistent pool (spawned lazily, parked between rounds) --
  std::vector<std::thread> pool;
  std::mutex pool_mu;
  std::condition_variable cv_start, cv_done;
  std::uint64_t epoch{0};
  std::uint32_t running{0};
  bool stop{false};

  std::vector<std::unique_ptr<Shard>> shards;

  // -- per-run shared inputs (written before the round, read-only inside
  //    it; the round barrier orders every transition) --
  const std::vector<Task>* batch{nullptr};
  const machine::Interconnect* net{nullptr};
  std::uint32_t n{0};
  std::uint32_t m{0};
  std::vector<std::uint32_t> order_storage;
  const std::uint32_t* order{nullptr};
  std::uint64_t claim_cap{0};

  // -- round-shared mutable state --
  std::atomic<std::uint64_t> open{0};        ///< published, unconsumed copies
  std::atomic<std::uint64_t> claimed{0};     ///< speculation claims drawn
  std::atomic<bool> round_stop{false};       ///< DFS: a leaf was reached
  std::atomic<bool> claims_exhausted{false};
  /// Best-first incumbent watermark: the smallest k1 of any complete leaf
  /// found. Frontier entries with k1 strictly above it can never precede
  /// the sequential engine's first leaf pop, so shards skip inserting them
  /// (insert-side prune only: a pruned vertex the replay turns out to need
  /// is simply expanded inline by the replay itself).
  std::atomic<std::int64_t> incumbent_k1{
      std::numeric_limits<std::int64_t>::max()};

  // -- the root's expansion record --
  std::atomic<std::uint8_t> root_claim{0};
  std::uint8_t root_expanded{0};
  std::uint64_t root_charge{0};
  std::uint16_t root_child_shard{0};
  std::uint64_t root_child_begin{0};
  std::uint32_t root_child_count{0};

  // -- replay state (coordinator only, after the round barrier) --
  ReplayList rcl;
  std::unique_ptr<PartialSchedule> replay_ps;
  std::uint64_t replay_current{kRootId};
  std::vector<Candidate> replay_cands;
  std::vector<ProcessorId> replay_level_order;
  std::vector<std::uint32_t> replay_task_ids;
  std::vector<std::uint64_t> replay_chain;

  ParallelRunStats last_stats;

  Impl(SearchConfig cfg, std::uint32_t threads, std::uint64_t seed)
      : config(cfg), K(threads), base_seed(seed) {
    shards.reserve(K);
    for (std::uint32_t i = 0; i < K; ++i) {
      shards.push_back(std::make_unique<Shard>());
      shards.back()->index = i;
    }
  }

  ~Impl() {
    if (!pool.empty()) {
      {
        std::lock_guard<std::mutex> lk(pool_mu);
        stop = true;
      }
      cv_start.notify_all();
      for (std::thread& t : pool) t.join();
    }
  }

  // ---------------------------------------------------------- node access

  PNode* resolve(std::uint64_t id) const {
    const auto shard = static_cast<std::uint32_t>(id >> kShardShift);
    const std::uint64_t idx = id & kIndexMask;
    PNode* chunk = shards[shard]->chunks[idx >> kChunkShift].load(
        std::memory_order_relaxed);
    return &chunk[idx & (kChunkSize - 1)];
  }

  std::uint32_t depth_of(std::uint64_t id) const {
    return id == kRootId ? 0u : resolve(id)->depth;
  }
  std::uint64_t parent_of(std::uint64_t id) const {
    return resolve(id)->parent;
  }
  std::atomic<std::uint8_t>& claim_of(std::uint64_t id) {
    return id == kRootId ? root_claim : resolve(id)->claim;
  }
  bool expanded_of(std::uint64_t id) const {
    return id == kRootId ? root_expanded != 0 : resolve(id)->expanded != 0;
  }
  std::uint32_t cursor_of(std::uint64_t id) const {
    return id == kRootId ? 0u : resolve(id)->order_cursor;
  }

  /// Allocates one node in `sh`'s arena; returns its packed id. Owner only.
  std::uint64_t create_node(Shard& sh) {
    const std::uint64_t idx = sh.node_count++;
    RTDS_REQUIRE(idx < std::uint64_t{kMaxChunks} * kChunkSize,
                 "ParallelSearchEngine: shard arena exhausted");
    const auto c = static_cast<std::uint32_t>(idx >> kChunkShift);
    if (c >= sh.allocated_chunks) {
      sh.chunks[c].store(new PNode[kChunkSize], std::memory_order_release);
      sh.allocated_chunks = c + 1;
    }
    return (std::uint64_t{sh.index} << kShardShift) | idx;
  }

  // ------------------------------------------------------------- frontier

  /// Owner-side publish of an already-counted copy.
  void push_local(Shard& sh, std::uint64_t id) {
    if (!sh.deque.push(id)) sh.spill.push_back(id);
  }

  bool pop_local(Shard& sh, std::uint64_t& id) {
    if (sh.deque.pop(id)) return true;
    if (!sh.spill.empty()) {
      id = sh.spill.back();
      sh.spill.pop_back();
      return true;
    }
    return false;
  }

  bool steal_dfs(Shard& sh, std::uint64_t& id) {
    // Randomized victim order — the shard's derive_seed substream, so runs
    // with a fixed seed visit victims in a replayable order.
    const std::uint64_t r = xorshift(sh.rng_state);
    const auto start = static_cast<std::uint32_t>(r % (K - 1));
    for (std::uint32_t j = 0; j < K - 1; ++j) {
      const std::uint32_t v = (sh.index + 1 + ((start + j) % (K - 1))) % K;
      if (v == sh.index) continue;
      if (shards[v]->deque.steal(id)) {
        ++sh.steals;
        return true;
      }
    }
    return false;
  }

  void heap_insert(Shard& sh, const HeapEntry& e) {
    std::lock_guard<std::mutex> lk(sh.heap_mu);
    sh.heap.push_back(e);
    std::push_heap(sh.heap.begin(), sh.heap.end(),
                   [](const HeapEntry& a, const HeapEntry& b) { return b < a; });
    sh.heap_min_k1.store(sh.heap.front().k1, std::memory_order_relaxed);
  }

  bool heap_pop(Shard& sh, HeapEntry& e) {
    std::lock_guard<std::mutex> lk(sh.heap_mu);
    if (sh.heap.empty()) return false;
    std::pop_heap(sh.heap.begin(), sh.heap.end(),
                  [](const HeapEntry& a, const HeapEntry& b) { return b < a; });
    e = sh.heap.back();
    sh.heap.pop_back();
    sh.heap_min_k1.store(sh.heap.empty()
                             ? std::numeric_limits<std::int64_t>::max()
                             : sh.heap.front().k1,
                         std::memory_order_relaxed);
    return true;
  }

  /// Best-bound steal: raid the shard currently advertising the lowest
  /// frontier key (the periodic best-bound exchange — each owner refreshes
  /// its advertised minimum on every push/pop).
  bool steal_bf(Shard& sh, HeapEntry& e) {
    std::uint32_t best = K;
    std::int64_t best_k1 = std::numeric_limits<std::int64_t>::max();
    for (std::uint32_t v = 0; v < K; ++v) {
      if (v == sh.index) continue;
      const std::int64_t k1 =
          shards[v]->heap_min_k1.load(std::memory_order_relaxed);
      if (k1 < best_k1) {
        best_k1 = k1;
        best = v;
      }
    }
    if (best == K) return false;
    if (!heap_pop(*shards[best], e)) return false;
    ++sh.steals;
    return true;
  }

  // ------------------------------------------------------------ budgeting

  /// Draws a chunk of the shared speculation-claim counter. Claims throttle
  /// how far the shards can run ahead; they are NOT the accounting of
  /// record — the replay charges the real vertex budget exactly. A shard
  /// may overdraft by one expansion.
  bool refill_claims(Shard& sh) {
    std::uint64_t cur = claimed.load(std::memory_order_relaxed);
    while (cur < claim_cap) {
      const std::uint64_t take =
          std::min<std::uint64_t>(kClaimChunk, claim_cap - cur);
      if (claimed.compare_exchange_weak(cur, cur + take,
                                        std::memory_order_relaxed)) {
        sh.claim_balance += static_cast<std::int64_t>(take);
        return true;
      }
    }
    return false;
  }

  // ----------------------------------------------------------- expansion

  /// Moves `ps` (currently at `current`) to `target` via the lowest common
  /// ancestor, exactly like the sequential engine's switch_to.
  void switch_schedule(PartialSchedule& ps, std::uint64_t& current,
                       std::vector<std::uint64_t>& chain,
                       std::uint64_t target) {
    chain.clear();
    std::uint64_t a = current;
    std::uint64_t b = target;
    while (depth_of(b) > depth_of(a)) {
      chain.push_back(b);
      b = parent_of(b);
    }
    while (depth_of(a) > depth_of(b)) {
      ps.pop();
      a = parent_of(a);
    }
    while (a != b) {
      ps.pop();
      a = parent_of(a);
      chain.push_back(b);
      b = parent_of(b);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      ps.push(resolve(*it)->assignment);
    }
    current = target;
  }

  /// Expands one claimed vertex on shard `sh`: full (budget-free)
  /// expansion, memoized into the node record, successors created in
  /// `sh`'s arena and published to its frontier.
  void expand_node(Shard& sh, std::uint64_t id) {
    switch_schedule(*sh.ps, sh.current, sh.chain, id);

    std::uint64_t unlimited = kUnlimited;
    SearchStats scratch;
    const std::uint32_t out_cursor =
        expand_mirror(config, *sh.ps, *batch, m, cursor_of(id), unlimited,
                      scratch, sh.cands, sh.level_order, sh.task_ids);
    const std::uint64_t charge = kUnlimited - unlimited;
    sh.spec_vertices += charge;
    ++sh.expansions;
    sh.claim_balance -= static_cast<std::int64_t>(charge);

    // Materialize successor records (sorted, best first — the order the
    // replay reconstructs the sequential push sequence from).
    const std::uint64_t child_begin = sh.child_pool.size();
    const auto count = static_cast<std::uint32_t>(sh.cands.size());
    const std::uint32_t depth = sh.ps->depth() + 1;
    const std::int64_t watermark =
        incumbent_k1.load(std::memory_order_relaxed);
    for (const Candidate& c : sh.cands) {
      const std::uint64_t cid = create_node(sh);
      PNode* nd = resolve(cid);
      nd->parent = id;
      nd->assignment = c.assignment;
      nd->key1 = c.key1;
      nd->key2 = c.key2;
      nd->key3 = c.key3;
      nd->depth = depth;
      nd->order_cursor = out_cursor;
      nd->charge = 0;
      nd->child_count = 0;
      nd->expanded = 0;
      nd->claim.store(0, std::memory_order_relaxed);
      sh.child_pool.push_back(cid);
    }

    // Record the expansion on the node itself (read post-round only).
    if (id == kRootId) {
      root_charge = charge;
      root_child_shard = static_cast<std::uint16_t>(sh.index);
      root_child_begin = child_begin;
      root_child_count = count;
      root_expanded = 1;
    } else {
      PNode* nd = resolve(id);
      nd->charge = charge;
      nd->child_shard = static_cast<std::uint16_t>(sh.index);
      nd->child_begin = child_begin;
      nd->child_count = count;
      nd->expanded = 1;
    }

    // Publish successors to the frontier. Depth-first pushes worst first so
    // the best candidate ends on top of the owner's stack (and thieves
    // steal the shallowest/oldest); best-first inserts into the local heap,
    // skipping entries the incumbent watermark already rules out.
    if (config.strategy == SearchStrategy::kDepthFirst) {
      if (count > 0) {
        open.fetch_add(count, std::memory_order_relaxed);
        for (std::uint32_t i = count; i-- > 0;) {
          push_local(sh, sh.child_pool[child_begin + i]);
        }
      }
    } else {
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t cid = sh.child_pool[child_begin + i];
        const PNode* nd = resolve(cid);
        if (nd->key1 > watermark) continue;  // insert-side prune
        open.fetch_add(1, std::memory_order_relaxed);
        heap_insert(sh, HeapEntry{nd->key1, nd->key2, nd->key3, cid});
      }
    }
  }

  /// Consumes one frontier copy of `id`: claim, expand or handle as leaf,
  /// then retire the copy from the open count.
  void process(Shard& sh, std::uint64_t id) {
    if (claim_of(id).exchange(1, std::memory_order_acq_rel) != 0) {
      open.fetch_sub(1, std::memory_order_relaxed);  // duplicate copy
      return;
    }
    const std::uint32_t depth = depth_of(id);
    if (depth == n) {
      // A complete leaf. The sequential engine never expands leaves; for
      // depth-first the round can stop (the replay decides whether this is
      // THE leaf), for best-first it tightens the incumbent watermark.
      if (config.strategy == SearchStrategy::kDepthFirst) {
        round_stop.store(true, std::memory_order_relaxed);
      } else {
        const std::int64_t k1 = resolve(id)->key1;
        std::int64_t cur = incumbent_k1.load(std::memory_order_relaxed);
        while (k1 < cur && !incumbent_k1.compare_exchange_weak(
                               cur, k1, std::memory_order_relaxed)) {
        }
      }
      open.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    if (sh.claim_balance <= 0 && !refill_claims(sh)) {
      // Speculation cap reached: wind the round down. The copy is dropped
      // (not repushed) — anything left unexplored is expanded inline by
      // the replay at exactly sequential cost.
      claim_of(id).store(0, std::memory_order_relaxed);
      open.fetch_sub(1, std::memory_order_relaxed);
      claims_exhausted.store(true, std::memory_order_relaxed);
      return;
    }
    expand_node(sh, id);
    open.fetch_sub(1, std::memory_order_relaxed);
  }

  // ---------------------------------------------------------------- round

  /// One worker's share of the exploration round. Exits on: round stop
  /// (DFS found a leaf), claim exhaustion, a drained frontier, or bounded
  /// idleness. The idle bound makes termination unconditional — whatever
  /// speculation is missing, the replay supplies inline.
  void round(Shard& sh) {
    constexpr int kIdleLimit = 256;
    int idle = 0;
    if (config.strategy == SearchStrategy::kDepthFirst) {
      for (;;) {
        if (round_stop.load(std::memory_order_relaxed)) break;
        if (claims_exhausted.load(std::memory_order_relaxed)) break;
        std::uint64_t id;
        if (pop_local(sh, id) || steal_dfs(sh, id)) {
          process(sh, id);
          idle = 0;
          continue;
        }
        if (open.load(std::memory_order_acquire) == 0) break;
        if (++idle > kIdleLimit) break;
        std::this_thread::yield();
      }
    } else {
      for (;;) {
        if (claims_exhausted.load(std::memory_order_relaxed)) break;
        HeapEntry e;
        if (heap_pop(sh, e) || steal_bf(sh, e)) {
          process(sh, e.id);
          idle = 0;
          continue;
        }
        if (open.load(std::memory_order_acquire) == 0) break;
        if (++idle > kIdleLimit) break;
        std::this_thread::yield();
      }
    }
  }

  void ensure_pool() {
    if (!pool.empty()) return;
    pool.reserve(K - 1);
    for (std::uint32_t i = 1; i < K; ++i) {
      pool.emplace_back([this, i] {
        std::unique_lock<std::mutex> lk(pool_mu);
        std::uint64_t seen = 0;
        for (;;) {
          cv_start.wait(lk, [&] { return stop || epoch != seen; });
          if (stop) return;
          seen = epoch;
          lk.unlock();
          round(*shards[i]);
          lk.lock();
          if (--running == 0) cv_done.notify_all();
        }
      });
    }
  }

  /// Runs the speculative exploration round across all K shards (the
  /// caller's thread works shard 0) and blocks until every worker has
  /// parked. The pool mutex hand-off makes all shard writes visible to the
  /// replay.
  void run_round() {
    ensure_pool();
    {
      std::lock_guard<std::mutex> lk(pool_mu);
      running = K - 1;
      ++epoch;
    }
    cv_start.notify_all();
    round(*shards[0]);
    std::unique_lock<std::mutex> lk(pool_mu);
    cv_done.wait(lk, [&] { return running == 0; });
  }

  // --------------------------------------------------------------- replay

  /// Pushes `id`'s recorded children onto the replay list exactly as the
  /// sequential engine pushes a sorted successor group: reverse order
  /// (worst first), one seq number per push.
  void replay_push_children(std::uint64_t id, std::uint64_t& seq) {
    const Shard* sh;
    std::uint64_t begin;
    std::uint32_t count;
    if (id == kRootId) {
      sh = shards[root_child_shard].get();
      begin = root_child_begin;
      count = root_child_count;
    } else {
      const PNode* nd = resolve(id);
      sh = shards[nd->child_shard].get();
      begin = nd->child_begin;
      count = nd->child_count;
    }
    for (std::uint32_t i = count; i-- > 0;) {
      const std::uint64_t cid = sh->child_pool[begin + i];
      const PNode* c = resolve(cid);
      rcl.push(ReplayList::Entry{c->key1, c->key2, c->key3, seq++, cid});
    }
  }

  /// Inline expansion for a vertex the memo cache cannot answer — either
  /// never expanded by the shards, or recorded with a charge above the
  /// remaining budget (the budget-death vertex, whose expansion must be
  /// budget-interleaved). The replay's own PartialSchedule is already AT
  /// the vertex, so this is literally the sequential engine's expansion:
  /// real budget, real stats, fresh successor nodes in shard 0's arena
  /// (safe — all workers are parked).
  void replay_expand_inline(std::uint64_t id, std::uint64_t& budget_left,
                            SearchStats& stats, std::uint64_t& seq) {
    const std::uint32_t out_cursor = expand_mirror(
        config, *replay_ps, *batch, m, cursor_of(id), budget_left, stats,
        replay_cands, replay_level_order, replay_task_ids);
    ++last_stats.replay_fills;

    Shard& sh0 = *shards[0];
    const std::uint32_t depth = replay_ps->depth() + 1;
    for (auto it = replay_cands.rbegin(); it != replay_cands.rend(); ++it) {
      const std::uint64_t cid = create_node(sh0);
      PNode* nd = resolve(cid);
      nd->parent = id;
      nd->assignment = it->assignment;
      nd->key1 = it->key1;
      nd->key2 = it->key2;
      nd->key3 = it->key3;
      nd->depth = depth;
      nd->order_cursor = out_cursor;
      nd->charge = 0;
      nd->child_count = 0;
      nd->expanded = 0;
      nd->claim.store(1, std::memory_order_relaxed);  // replay-owned
      rcl.push(ReplayList::Entry{it->key1, it->key2, it->key3, seq++, cid});
    }
  }

  /// Deterministic replay: re-executes the sequential engine's main loop,
  /// substituting each expansion with its memoized record when the record
  /// is usable (expanded, and recorded charge <= remaining budget — in
  /// which case the budgeted expansion provably equals the unconstrained
  /// one) and expanding inline otherwise. Structurally this IS
  /// SearchEngine::run with a cache in front of expand_current, which is
  /// why the result is bit-identical for every budget.
  void replay(const std::vector<SimDuration>& base_loads,
              SimTime delivery_time, std::uint64_t vertex_budget,
              SearchResult& result) {
    SearchStats& stats = result.stats;
    std::uint64_t budget_left = vertex_budget;
    rcl.reset(config.strategy);
    std::uint64_t seq = 0;

    replay_ps = std::make_unique<PartialSchedule>(batch, base_loads,
                                                  delivery_time, net);
    replay_ps->set_consideration_order(order);
    replay_current = kRootId;

    std::uint64_t current = kRootId;
    std::uint64_t best = kInvalidId;
    std::uint32_t best_depth = 0;
    SimDuration best_ce = SimDuration::max();

    while (true) {
      if (budget_left == 0) {
        stats.budget_exhausted = true;
        break;
      }
      if (expanded_of(current)) {
        const std::uint64_t charge =
            current == kRootId ? root_charge : resolve(current)->charge;
        if (charge <= budget_left) {
          budget_left -= charge;
          stats.vertices_generated += charge;
          ++stats.expansions;
          replay_push_children(current, seq);
        } else {
          replay_expand_inline(current, budget_left, stats, seq);
        }
      } else {
        replay_expand_inline(current, budget_left, stats, seq);
      }

      if (rcl.empty()) {
        if (!replay_ps->complete()) stats.dead_end = true;
        break;
      }
      const std::uint64_t next = rcl.pop();
      if (parent_of(next) != current) ++stats.backtracks;
      switch_schedule(*replay_ps, replay_current, replay_chain, next);
      current = next;

      if (replay_ps->depth() > stats.max_depth) {
        stats.max_depth = replay_ps->depth();
      }
      const bool deeper = replay_ps->depth() > best_depth;
      const bool same_depth_better = replay_ps->depth() == best_depth &&
                                     replay_ps->max_ce() < best_ce;
      if (best == kInvalidId || deeper || same_depth_better) {
        best = current;
        best_depth = replay_ps->depth();
        best_ce = replay_ps->max_ce();
      }

      if (replay_ps->complete()) {
        stats.reached_leaf = true;
        break;
      }
    }

    const std::uint64_t chosen = config.return_deepest ? best : current;
    std::vector<Assignment> out;
    if (chosen != kInvalidId) {
      for (std::uint64_t v = chosen; v != kRootId; v = parent_of(v)) {
        out.push_back(resolve(v)->assignment);
      }
    }
    std::reverse(out.begin(), out.end());
    result.schedule = std::move(out);
    replay_ps.reset();
  }
};

// ------------------------------------------------------------------------
// Public surface.
// ------------------------------------------------------------------------

ParallelSearchEngine::ParallelSearchEngine(SearchConfig config,
                                           std::uint32_t threads,
                                           std::uint64_t base_seed)
    : config_(config), threads_(threads), sequential_(config) {
  RTDS_REQUIRE(threads_ >= 1 && threads_ <= 64,
               "ParallelSearchEngine: threads must be in [1, 64]");
  if (threads_ > 1) {
    impl_ = std::make_unique<Impl>(config, threads_, base_seed);
  }
}

ParallelSearchEngine::~ParallelSearchEngine() = default;

const ParallelRunStats& ParallelSearchEngine::last_run_stats() const {
  static const ParallelRunStats kEmpty;
  return impl_ ? impl_->last_stats : kEmpty;
}

SearchResult ParallelSearchEngine::run(
    const std::vector<Task>& batch,
    const std::vector<SimDuration>& base_loads, SimTime delivery_time,
    const machine::Interconnect& net, std::uint64_t vertex_budget) const {
  if (threads_ == 1) {
    return sequential_.run(batch, base_loads, delivery_time, net,
                           vertex_budget);
  }
  Impl& im = *impl_;
  std::lock_guard<std::mutex> run_lock(im.run_mu);

  SearchResult result;
  if (batch.empty() || vertex_budget == 0) return result;
  RTDS_REQUIRE(batch.size() <= kMaxBatchTasks,
               "ParallelSearchEngine: phase batch above kMaxBatchTasks");

  // -- per-run setup ------------------------------------------------------
  im.batch = &batch;
  im.net = &net;
  im.n = static_cast<std::uint32_t>(batch.size());
  im.m = net.num_workers();
  if (config_.task_order == TaskOrder::kBatchOrder) {
    im.order_storage.clear();
  } else {
    task_consideration_order_into(batch, config_.task_order,
                                  im.order_storage);
  }
  im.order = im.order_storage.empty() ? nullptr : im.order_storage.data();

  // Speculation cap: generous enough that the round usually covers the
  // sequential engine's budgeted prefix despite thieves speculating past
  // it. Saturating arithmetic — "unconstrained" callers pass huge budgets.
  const std::uint64_t slack = vertex_budget / 2 +
                              std::uint64_t(im.K) * kClaimChunk;
  im.claim_cap = vertex_budget > kUnlimited - slack ? kUnlimited
                                                    : vertex_budget + slack;

  im.open.store(0, std::memory_order_relaxed);
  im.claimed.store(0, std::memory_order_relaxed);
  im.round_stop.store(false, std::memory_order_relaxed);
  im.claims_exhausted.store(false, std::memory_order_relaxed);
  im.incumbent_k1.store(std::numeric_limits<std::int64_t>::max(),
                        std::memory_order_relaxed);
  im.root_claim.store(0, std::memory_order_relaxed);
  im.root_expanded = 0;
  im.root_charge = 0;
  im.root_child_count = 0;
  im.last_stats = ParallelRunStats{};

  for (std::uint32_t i = 0; i < im.K; ++i) {
    Shard& sh = *im.shards[i];
    sh.node_count = 0;
    sh.child_pool.clear();
    sh.deque.reset();
    sh.spill.clear();
    sh.heap.clear();
    sh.heap_min_k1.store(std::numeric_limits<std::int64_t>::max(),
                         std::memory_order_relaxed);
    sh.ps = std::make_unique<PartialSchedule>(&batch, base_loads,
                                              delivery_time, &net);
    sh.ps->set_consideration_order(im.order);
    sh.current = kRootId;
    sh.claim_balance = 0;
    sh.rng_state = parallel_shard_seed(im.base_seed, i) | 1;
    sh.spec_vertices = 0;
    sh.expansions = 0;
    sh.steals = 0;
  }

  // Seed the root on shard 0, speculate in parallel, then merge by replay.
  im.open.fetch_add(1, std::memory_order_relaxed);
  if (config_.strategy == SearchStrategy::kDepthFirst) {
    im.push_local(*im.shards[0], kRootId);
  } else {
    im.heap_insert(*im.shards[0],
                   HeapEntry{std::numeric_limits<std::int64_t>::min(),
                             std::numeric_limits<std::int64_t>::min(), 0,
                             kRootId});
  }
  im.run_round();
  im.last_stats.rounds = 1;
  im.replay(base_loads, delivery_time, vertex_budget, result);

  // Per-shard arenas pool their chunks across runs (steady-state
  // allocation-free), but a capacity run can grow a shard to hundreds of
  // MB — record the footprint for diagnostics, then trim the pool back.
  constexpr std::uint64_t kShardRetainBytes = std::uint64_t{64} << 20;
  constexpr std::uint64_t kChunkBytes =
      std::uint64_t{kChunkSize} * sizeof(PNode);
  for (std::uint32_t i = 0; i < im.K; ++i) {
    Shard& sh = *im.shards[i];
    im.last_stats.speculative_vertices += sh.spec_vertices;
    im.last_stats.nodes_expanded += sh.expansions;
    im.last_stats.steals += sh.steals;
    im.last_stats.arena_bytes +=
        std::uint64_t{sh.allocated_chunks} * kChunkBytes +
        sh.child_pool.capacity() * sizeof(std::uint64_t);
    while (sh.allocated_chunks > 0 &&
           std::uint64_t{sh.allocated_chunks} * kChunkBytes >
               kShardRetainBytes) {
      delete[] sh.chunks[--sh.allocated_chunks].load(
          std::memory_order_relaxed);
      sh.chunks[sh.allocated_chunks].store(nullptr,
                                           std::memory_order_relaxed);
    }
    sh.ps.reset();
  }
  im.batch = nullptr;
  im.net = nullptr;
  return result;
}

}  // namespace rtds::search
