#include "search/partial_schedule.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace rtds::search {

PartialSchedule::PartialSchedule(const std::vector<Task>* batch,
                                 std::vector<SimDuration> base_loads,
                                 SimTime delivery_time,
                                 const machine::Interconnect* net)
    : batch_(batch),
      net_(net),
      delivery_time_(delivery_time),
      base_loads_(std::move(base_loads)) {
  RTDS_REQUIRE(batch_ != nullptr && net_ != nullptr,
               "PartialSchedule: null batch or interconnect");
  RTDS_REQUIRE(base_loads_.size() == net_->num_workers(),
               "PartialSchedule: base_loads size != worker count");
  for (SimDuration d : base_loads_) {
    RTDS_REQUIRE(!d.is_negative(), "PartialSchedule: negative base load");
  }
  ce_ = base_loads_;
  max_ce_ = SimDuration::zero();
  for (SimDuration d : ce_) max_ce_ = max_duration(max_ce_, d);

  cut_through_ = net_->model() == machine::RoutingModel::kCutThrough;
  comm_us_ = net_->link_cost().us;

  const std::size_t n = batch_->size();
  constants_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = (*batch_)[i];
    TaskConstants& tc = constants_[i];
    tc.processing_us = t.processing.us;
    tc.es_off_us = t.earliest_start > delivery_time_
                       ? (t.earliest_start - delivery_time_).us
                       : 0;
    tc.d_off_us = (t.deadline - delivery_time_).us;
    tc.affinity_bits = t.affinity.raw();
    RTDS_REQUIRE(t.workers_required >= 1,
                 "PartialSchedule: workers_required must be >= 1");
    tc.workers_required = t.workers_required;
  }

  unassigned_.resize((n + 63) / 64);
  reset_unassigned_bits();
  path_.reserve(n);
}

void PartialSchedule::reset_unassigned_bits() {
  const std::size_t n = batch_->size();
  std::fill(unassigned_.begin(), unassigned_.end(), ~std::uint64_t{0});
  if (n % 64 != 0 && !unassigned_.empty()) {
    unassigned_.back() = (std::uint64_t{1} << (n % 64)) - 1;
  }
}

void PartialSchedule::set_consideration_order(const std::uint32_t* order) {
  RTDS_REQUIRE(path_.empty(),
               "set_consideration_order: schedule already has assignments");
  order_ = order;
  pos_of_task_.clear();
  if (order != nullptr) {
    const auto n = static_cast<std::uint32_t>(batch_->size());
    pos_of_task_.assign(n, n);  // sentinel: not yet seen
    for (std::uint32_t pos = 0; pos < n; ++pos) {
      const std::uint32_t task = order[pos];
      RTDS_REQUIRE(task < n && pos_of_task_[task] == n,
                   "set_consideration_order: not a permutation of the batch");
      pos_of_task_[task] = pos;
    }
  }
  reset_unassigned_bits();
}

std::uint32_t PartialSchedule::first_unassigned_at_or_after(
    std::uint32_t pos) const {
  const auto n = static_cast<std::uint32_t>(batch_->size());
  if (pos >= n) return n;
  std::size_t word = pos >> 6;
  // Mask off positions below `pos` in the first word.
  std::uint64_t bits = unassigned_[word] & (~std::uint64_t{0} << (pos & 63));
  while (bits == 0) {
    if (++word == unassigned_.size()) return n;
    bits = unassigned_[word];
  }
  return static_cast<std::uint32_t>((word << 6) +
                                    std::uint32_t(std::countr_zero(bits)));
}

SimDuration PartialSchedule::min_ce() const {
  SimDuration lo = ce_[0];
  for (std::size_t k = 1; k < ce_.size(); ++k) lo = min_duration(lo, ce_[k]);
  return lo;
}

std::optional<Assignment> PartialSchedule::evaluate(
    std::uint32_t task_index, ProcessorId worker) const {
  RTDS_REQUIRE(task_index < batch_->size(), "evaluate: bad task index");
  RTDS_REQUIRE(worker < net_->num_workers(), "evaluate: bad worker id");
  RTDS_REQUIRE(!assigned(task_index), "evaluate: task already assigned");

  Assignment a;
  if (!evaluate_fast(task_index, worker, a)) return std::nullopt;
  return a;
}

bool PartialSchedule::evaluate_fast(std::uint32_t task_index,
                                    ProcessorId worker,
                                    Assignment& out) const {
  const TaskConstants& tc = constants_[task_index];

  std::int64_t comm_us;
  if ((tc.affinity_bits >> worker) & 1u) {
    comm_us = 0;
  } else if (cut_through_) {
    // Same contract as Interconnect::comm_cost: a task with no data holder
    // anywhere is a caller bug.
    RTDS_REQUIRE(tc.affinity_bits != 0, "comm_cost: task has no data holder");
    comm_us = comm_us_;
  } else {
    comm_us = net_->comm_cost((*batch_)[task_index].affinity, worker).us;
  }

  const std::int64_t prev_ce_us = ce_[worker].us;
  // A k-worker gang claims the contiguous block [worker, worker+k): it can
  // start only once EVERY block member's queue has drained, and a block
  // running past worker m-1 is no placement at all. k == 1 (the common
  // case) skips the block scan entirely.
  std::int64_t block_ce_us = prev_ce_us;
  if (tc.workers_required > 1) {
    if (std::size_t{worker} + tc.workers_required > ce_.size()) return false;
    for (std::uint32_t j = 1; j < tc.workers_required; ++j) {
      block_ce_us = std::max(block_ce_us, ce_[worker + j].us);
    }
  }
  // Execution cannot start before the task's start-time constraint; the
  // worker idles until then (footnote 1 task model).
  const std::int64_t start_us =
      block_ce_us > tc.es_off_us ? block_ce_us : tc.es_off_us;
  const std::int64_t end_us = start_us + tc.processing_us + comm_us;

  // Fig. 4: t_c + RQ_s(j) + se_lk <= d_l, with t_c + RQ_s == delivery_time.
  if (end_us > tc.d_off_us) return false;

  out.task_index = task_index;
  out.worker = worker;
  out.exec_cost = SimDuration{tc.processing_us + comm_us};
  out.prev_ce = SimDuration{prev_ce_us};
  out.prev_max_ce = max_ce_;
  out.start_offset = SimDuration{start_us};
  out.end_offset = SimDuration{end_us};
  return true;
}

void PartialSchedule::push(const Assignment& a) {
  RTDS_ASSERT(!assigned(a.task_index));
  RTDS_ASSERT(std::size_t{a.worker} +
                  constants_[a.task_index].workers_required <=
              ce_.size());
  // Integrity: the assignment must have been evaluated at this exact state.
  RTDS_ASSERT(ce_[a.worker] == a.prev_ce);
  RTDS_ASSERT(max_ce_ == a.prev_max_ce);
  const std::uint32_t pos = pos_of(a.task_index);
  unassigned_[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
  // A gang charges its whole worker block to the same end offset; the
  // siblings' pre-push offsets go on the side undo stack (the lead's is
  // Assignment::prev_ce).
  const std::uint32_t k = constants_[a.task_index].workers_required;
  for (std::uint32_t j = 1; j < k; ++j) {
    gang_undo_.push_back(ce_[a.worker + j]);
    ce_[a.worker + j] = a.end_offset;
  }
  ce_[a.worker] = a.end_offset;
  max_ce_ = max_duration(max_ce_, a.end_offset);
  path_.push_back(a);
}

void PartialSchedule::pop() {
  RTDS_REQUIRE(!path_.empty(), "pop: empty path");
  const Assignment& a = path_.back();
  const std::uint32_t pos = pos_of(a.task_index);
  unassigned_[pos >> 6] |= std::uint64_t{1} << (pos & 63);
  const std::uint32_t k = constants_[a.task_index].workers_required;
  for (std::uint32_t j = k; j-- > 1;) {
    ce_[a.worker + j] = gang_undo_.back();
    gang_undo_.pop_back();
  }
  ce_[a.worker] = a.prev_ce;
  // LIFO discipline means the pre-push CE recorded on the assignment is
  // exactly the post-pop CE — no rescan needed.
  max_ce_ = a.prev_max_ce;
  path_.pop_back();
}

}  // namespace rtds::search
