#include "search/partial_schedule.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace rtds::search {

PartialSchedule::PartialSchedule(const std::vector<Task>* batch,
                                 std::vector<SimDuration> base_loads,
                                 SimTime delivery_time,
                                 const machine::Interconnect* net)
    : batch_(batch),
      net_(net),
      delivery_time_(delivery_time),
      base_loads_(std::move(base_loads)) {
  RTDS_REQUIRE(batch_ != nullptr && net_ != nullptr,
               "PartialSchedule: null batch or interconnect");
  RTDS_REQUIRE(base_loads_.size() == net_->num_workers(),
               "PartialSchedule: base_loads size != worker count");
  for (SimDuration d : base_loads_) {
    RTDS_REQUIRE(!d.is_negative(), "PartialSchedule: negative base load");
  }
  ce_us_.resize(base_loads_.size());
  max_ce_us_ = 0;
  for (std::size_t k = 0; k < base_loads_.size(); ++k) {
    ce_us_[k] = base_loads_[k].us;
    max_ce_us_ = std::max(max_ce_us_, ce_us_[k]);
  }

  cut_through_ = net_->model() == machine::RoutingModel::kCutThrough;
  comm_us_ = net_->link_cost().us;

  const std::size_t n = batch_->size();
  p_us_.resize(n);
  es_us_.resize(n);
  d_us_.resize(n);
  aff_bits_.resize(n);
  width_.resize(n);
  has_gangs_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Task& t = (*batch_)[i];
    p_us_[i] = t.processing.us;
    es_us_[i] = t.earliest_start > delivery_time_
                    ? (t.earliest_start - delivery_time_).us
                    : 0;
    d_us_[i] = (t.deadline - delivery_time_).us;
    aff_bits_[i] = t.affinity.raw();
    RTDS_REQUIRE(t.workers_required >= 1,
                 "PartialSchedule: workers_required must be >= 1");
    width_[i] = t.workers_required;
    has_gangs_ = has_gangs_ || t.workers_required > 1;
  }

  unassigned_.resize((n + 63) / 64);
  reset_unassigned_bits();
  path_.reserve(n);
}

void PartialSchedule::reset_unassigned_bits() {
  const std::size_t n = batch_->size();
  std::fill(unassigned_.begin(), unassigned_.end(), ~std::uint64_t{0});
  if (n % 64 != 0 && !unassigned_.empty()) {
    unassigned_.back() = (std::uint64_t{1} << (n % 64)) - 1;
  }
}

void PartialSchedule::set_consideration_order(const std::uint32_t* order) {
  RTDS_REQUIRE(path_.empty(),
               "set_consideration_order: schedule already has assignments");
  order_ = order;
  pos_of_task_.clear();
  if (order != nullptr) {
    const auto n = static_cast<std::uint32_t>(batch_->size());
    pos_of_task_.assign(n, n);  // sentinel: not yet seen
    for (std::uint32_t pos = 0; pos < n; ++pos) {
      const std::uint32_t task = order[pos];
      RTDS_REQUIRE(task < n && pos_of_task_[task] == n,
                   "set_consideration_order: not a permutation of the batch");
      pos_of_task_[task] = pos;
    }
  }
  reset_unassigned_bits();
}

std::uint32_t PartialSchedule::first_unassigned_at_or_after(
    std::uint32_t pos) const {
  const auto n = static_cast<std::uint32_t>(batch_->size());
  if (pos >= n) return n;
  std::size_t word = pos >> 6;
  // Mask off positions below `pos` in the first word.
  std::uint64_t bits = unassigned_[word] & (~std::uint64_t{0} << (pos & 63));
  while (bits == 0) {
    if (++word == unassigned_.size()) return n;
    bits = unassigned_[word];
  }
  return static_cast<std::uint32_t>((word << 6) +
                                    std::uint32_t(std::countr_zero(bits)));
}

std::uint64_t PartialSchedule::feasible_tasks_mask(
    ProcessorId worker, const std::uint32_t* tasks, std::uint32_t count) const {
  RTDS_ASSERT(tasks_mask_eligible());
#ifndef RTDS_DISABLE_ASSERTS
  for (std::uint32_t j = 0; j < count; ++j) {
    // evaluate_fast would REQUIRE on an empty affinity (no data holder);
    // the mask path must not silently compute past that caller bug.
    RTDS_ASSERT(aff_bits_[tasks[j]] != 0);
  }
#endif
  return simd::feasible_tasks_mask(tasks, count, ce_us_[worker], worker,
                                   p_us_.data(), es_us_.data(), d_us_.data(),
                                   aff_bits_.data(), comm_us_);
}

std::optional<Assignment> PartialSchedule::evaluate(
    std::uint32_t task_index, ProcessorId worker) const {
  RTDS_REQUIRE(task_index < batch_->size(), "evaluate: bad task index");
  RTDS_REQUIRE(worker < net_->num_workers(), "evaluate: bad worker id");
  RTDS_REQUIRE(!assigned(task_index), "evaluate: task already assigned");

  Assignment a;
  if (!evaluate_fast(task_index, worker, a)) return std::nullopt;
  return a;
}

bool PartialSchedule::evaluate_fast(std::uint32_t task_index,
                                    ProcessorId worker,
                                    Assignment& out) const {
  std::int64_t comm_us;
  if ((aff_bits_[task_index] >> worker) & 1u) {
    comm_us = 0;
  } else if (cut_through_) {
    // Same contract as Interconnect::comm_cost: a task with no data holder
    // anywhere is a caller bug.
    RTDS_REQUIRE(aff_bits_[task_index] != 0,
                 "comm_cost: task has no data holder");
    comm_us = comm_us_;
  } else {
    comm_us = net_->comm_cost((*batch_)[task_index].affinity, worker).us;
  }

  const std::int64_t prev_ce_us = ce_us_[worker];
  // A k-worker gang claims the contiguous block [worker, worker+k): it can
  // start only once EVERY block member's queue has drained, and a block
  // running past worker m-1 is no placement at all. k == 1 (the common
  // case) skips the block scan entirely.
  std::int64_t block_ce_us = prev_ce_us;
  const std::uint32_t width = width_[task_index];
  if (width > 1) {
    if (std::size_t{worker} + width > ce_us_.size()) return false;
    for (std::uint32_t j = 1; j < width; ++j) {
      block_ce_us = std::max(block_ce_us, ce_us_[worker + j]);
    }
  }
  // Execution cannot start before the task's start-time constraint; the
  // worker idles until then (footnote 1 task model).
  const std::int64_t es_us = es_us_[task_index];
  const std::int64_t start_us = block_ce_us > es_us ? block_ce_us : es_us;
  const std::int64_t end_us = start_us + p_us_[task_index] + comm_us;

  // Fig. 4: t_c + RQ_s(j) + se_lk <= d_l, with t_c + RQ_s == delivery_time.
  if (end_us > d_us_[task_index]) return false;

  out.task_index = task_index;
  out.worker = worker;
  out.exec_cost = SimDuration{p_us_[task_index] + comm_us};
  out.prev_ce = SimDuration{prev_ce_us};
  out.prev_max_ce = SimDuration{max_ce_us_};
  out.start_offset = SimDuration{start_us};
  out.end_offset = SimDuration{end_us};
  return true;
}

void PartialSchedule::push(const Assignment& a) {
  RTDS_ASSERT(!assigned(a.task_index));
  RTDS_ASSERT(std::size_t{a.worker} + width_[a.task_index] <= ce_us_.size());
  // Integrity: the assignment must have been evaluated at this exact state.
  RTDS_ASSERT(ce_us_[a.worker] == a.prev_ce.us);
  RTDS_ASSERT(max_ce_us_ == a.prev_max_ce.us);
  const std::uint32_t pos = pos_of(a.task_index);
  unassigned_[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
  // A gang charges its whole worker block to the same end offset; the
  // siblings' pre-push offsets go on the side undo stack (the lead's is
  // Assignment::prev_ce).
  const std::uint32_t k = width_[a.task_index];
  for (std::uint32_t j = 1; j < k; ++j) {
    gang_undo_.push_back(SimDuration{ce_us_[a.worker + j]});
    ce_us_[a.worker + j] = a.end_offset.us;
  }
  ce_us_[a.worker] = a.end_offset.us;
  max_ce_us_ = std::max(max_ce_us_, a.end_offset.us);
  path_.push_back(a);
}

void PartialSchedule::pop() {
  RTDS_REQUIRE(!path_.empty(), "pop: empty path");
  const Assignment& a = path_.back();
  const std::uint32_t pos = pos_of(a.task_index);
  unassigned_[pos >> 6] |= std::uint64_t{1} << (pos & 63);
  const std::uint32_t k = width_[a.task_index];
  for (std::uint32_t j = k; j-- > 1;) {
    ce_us_[a.worker + j] = gang_undo_.back().us;
    gang_undo_.pop_back();
  }
  ce_us_[a.worker] = a.prev_ce.us;
  // LIFO discipline means the pre-push CE recorded on the assignment is
  // exactly the post-pop CE — no rescan needed.
  max_ce_us_ = a.prev_max_ce.us;
  path_.pop_back();
}

std::size_t PartialSchedule::footprint_bytes() const {
  const auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(v[0]);
  };
  return vec_bytes(base_loads_) + vec_bytes(ce_us_) + vec_bytes(p_us_) +
         vec_bytes(es_us_) + vec_bytes(d_us_) + vec_bytes(aff_bits_) +
         vec_bytes(width_) + vec_bytes(unassigned_) +
         vec_bytes(pos_of_task_) + vec_bytes(path_) + vec_bytes(gang_undo_);
}

}  // namespace rtds::search
