#include "search/partial_schedule.h"

#include <algorithm>

#include "common/error.h"

namespace rtds::search {

PartialSchedule::PartialSchedule(const std::vector<Task>* batch,
                                 std::vector<SimDuration> base_loads,
                                 SimTime delivery_time,
                                 const machine::Interconnect* net)
    : batch_(batch),
      net_(net),
      delivery_time_(delivery_time),
      base_loads_(std::move(base_loads)),
      assigned_(batch->size(), false) {
  RTDS_REQUIRE(batch_ != nullptr && net_ != nullptr,
               "PartialSchedule: null batch or interconnect");
  RTDS_REQUIRE(base_loads_.size() == net_->num_workers(),
               "PartialSchedule: base_loads size != worker count");
  for (SimDuration d : base_loads_) {
    RTDS_REQUIRE(!d.is_negative(), "PartialSchedule: negative base load");
  }
  ce_ = base_loads_;
  max_ce_ = SimDuration::zero();
  for (SimDuration d : ce_) max_ce_ = max_duration(max_ce_, d);
  path_.reserve(batch->size());
}

std::optional<Assignment> PartialSchedule::evaluate(
    std::uint32_t task_index, ProcessorId worker) const {
  RTDS_REQUIRE(task_index < batch_->size(), "evaluate: bad task index");
  RTDS_REQUIRE(worker < net_->num_workers(), "evaluate: bad worker id");
  RTDS_REQUIRE(!assigned_[task_index], "evaluate: task already assigned");

  const Task& t = (*batch_)[task_index];
  Assignment a;
  a.task_index = task_index;
  a.worker = worker;
  a.exec_cost = t.processing + net_->comm_cost(t.affinity, worker);
  a.prev_ce = ce_[worker];
  // Execution cannot start before the task's start-time constraint; the
  // worker idles until then (footnote 1 task model).
  a.start_offset = a.prev_ce;
  if (t.earliest_start > delivery_time_) {
    a.start_offset =
        max_duration(a.start_offset, t.earliest_start - delivery_time_);
  }
  a.end_offset = a.start_offset + a.exec_cost;

  // Fig. 4: t_c + RQ_s(j) + se_lk <= d_l, with t_c + RQ_s == delivery_time.
  if (delivery_time_ + a.end_offset > t.deadline) return std::nullopt;
  return a;
}

void PartialSchedule::push(const Assignment& a) {
  RTDS_ASSERT(!assigned_[a.task_index]);
  RTDS_ASSERT(a.worker < ce_.size());
  // Integrity: the assignment must have been evaluated at this exact state.
  RTDS_ASSERT(ce_[a.worker] == a.prev_ce);
  assigned_[a.task_index] = true;
  ce_[a.worker] = a.end_offset;
  max_ce_ = max_duration(max_ce_, ce_[a.worker]);
  path_.push_back(a);
}

void PartialSchedule::pop() {
  RTDS_REQUIRE(!path_.empty(), "pop: empty path");
  const Assignment a = path_.back();
  path_.pop_back();
  assigned_[a.task_index] = false;
  ce_[a.worker] = a.prev_ce;
  // max_ce must be recomputed: the popped assignment may have defined it.
  max_ce_ = SimDuration::zero();
  for (SimDuration d : ce_) max_ce_ = max_duration(max_ce_, d);
}

}  // namespace rtds::search
