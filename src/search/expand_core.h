// The single source of truth for vertex expansion — shared by the
// sequential engine (engine.cc) and the parallel engine's shard/replay
// paths (parallel_engine.cc), which historically carried byte-for-byte
// copies of this loop. One copy means the bit-identical-results contract
// between the two engines is structural, not test-pinned.
//
// expand_vertex() is the exact budget-interleaved successor generation of
// the original SearchEngine::run: every generated vertex (feasible or not)
// charges the budget, unplaceable tasks charge min(m, budget_left) in bulk,
// mid-loop budget death sets budget_exhausted, max_successors caps the
// group, and the returned order cursor is what children inherit
// (assignment-oriented only). Candidates come back sorted by the CL key.
//
// SIMD batching (search/simd.h) rides inside under exactness gates: the
// mask kernels are taken only when their verdicts provably equal the scalar
// loop's AND the batched budget accounting equals the interleaved one —
//   * whole-task batches (assignment-oriented) need budget_left >= m and no
//     max_successors cap, plus PartialSchedule::workers_mask_eligible;
//   * per-word batches (sequence-oriented) need budget_left >= popcount of
//     the word and no cap, plus PartialSchedule::tasks_mask_eligible.
// Outside the gates the scalar loop runs unchanged, so SearchResults stay
// bit-identical to the pre-SIMD engine in every configuration.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/error.h"
#include "search/engine.h"
#include "search/partial_schedule.h"

namespace rtds::search::detail {

/// A feasible successor awaiting insertion into CL, with its sort key.
/// Lower keys are higher priority (front of CL). Within one successor group
/// the key tuple is a strict total order (the last significant component is
/// the branch index or worker id, unique per candidate), so any comparison
/// sort produces the historical stable_sort permutation.
struct Candidate {
  Assignment assignment;
  std::int64_t key1{0};
  std::int64_t key2{0};
  std::uint32_t key3{0};

  bool operator<(const Candidate& o) const {
    return std::tie(key1, key2, key3) < std::tie(o.key1, o.key2, o.key3);
  }
};

/// Stable in-place insertion sort; O(k) on the nearly-sorted groups the
/// heuristics produce, and no temp-buffer allocation (std::stable_sort
/// allocates one per call in libstdc++). Falls back to std::sort for large
/// groups — safe because candidate keys are strictly totally ordered within
/// a group, so every comparison sort yields the same permutation.
inline void sort_candidates(std::vector<Candidate>& c) {
  if (c.size() > 48) {
    std::sort(c.begin(), c.end());
    return;
  }
  for (std::size_t i = 1; i < c.size(); ++i) {
    Candidate tmp = c[i];
    std::size_t j = i;
    for (; j > 0 && tmp < c[j - 1]; --j) c[j] = c[j - 1];
    c[j] = tmp;
  }
}

/// Computes the CL sort key for a feasible assignment at the current CPS.
inline Candidate make_candidate(const SearchConfig& config,
                                const PartialSchedule& ps,
                                const std::vector<Task>& batch,
                                const Assignment& a,
                                std::uint32_t branch_index) {
  Candidate c;
  c.assignment = a;
  if (config.use_load_balance_cost) {
    // Resulting CE of the extended schedule (Sec. 4.4), tie-broken by the
    // task's own completion and the branch order.
    c.key1 = max_duration(ps.max_ce(), a.end_offset).us;
    c.key2 = a.end_offset.us;
    c.key3 = branch_index;
  } else if (config.representation == Representation::kAssignmentOriented) {
    switch (config.processor_order) {
      case ProcessorOrder::kIndexOrder:
        c.key1 = a.worker;
        break;
      case ProcessorOrder::kMinEndOffset:
        c.key1 = a.end_offset.us;
        c.key2 = a.worker;
        break;
      case ProcessorOrder::kMinCommCost:
        c.key1 = (a.exec_cost - batch[a.task_index].processing).us;
        c.key2 = a.end_offset.us;
        c.key3 = a.worker;
        break;
    }
  } else {
    // Sequence-oriented: tasks were generated in heuristic order already.
    c.key1 = branch_index;
  }
  return c;
}

/// One expansion of the vertex `ps` currently ends at. Appends the sorted
/// feasible successors to `out` and returns the order cursor children
/// inherit. `level_order` and `task_ids` are caller-owned scratch (reused
/// across calls; task_ids feeds the simd task-mask lanes).
inline std::uint32_t expand_vertex(const SearchConfig& config,
                                   PartialSchedule& ps,
                                   const std::vector<Task>& batch,
                                   std::uint32_t m, std::uint32_t cursor,
                                   std::uint64_t& budget_left,
                                   SearchStats& stats,
                                   std::vector<Candidate>& out,
                                   std::vector<ProcessorId>& level_order,
                                   std::vector<std::uint32_t>& task_ids) {
  ++stats.expansions;
  out.clear();
  const auto n = static_cast<std::uint32_t>(batch.size());
  const std::uint32_t depth = ps.depth();
  if (config.max_depth != 0 && depth >= config.max_depth) {
    return cursor;  // depth-pruned: no successors
  }

  if (config.representation == Representation::kAssignmentOriented) {
    // Select the next task by the (static) task-order heuristic, branch
    // over every processor (Fig. 2). Tasks with no feasible placement
    // are skipped (see SearchConfig::skip_unplaceable_tasks) — their
    // infeasibility holds for the whole subtree, so children resume the
    // scan at the cursor this expansion returns.
    //
    // Queue offsets are fixed during one expansion, so min_ce is hoisted
    // and feeds the bulk lower-bound test: when even the least-loaded
    // worker cannot meet the deadline, all m placements are infeasible
    // and the budget is charged in one step (identical accounting to
    // evaluating each) without touching the queues.
    const SimDuration lo = ps.min_ce();
    std::uint32_t scan = cursor;
    while (scan < n) {
      // Find the next unassigned task at or after `scan`.
      scan = ps.first_unassigned_at_or_after(scan);
      if (scan == n) break;
      const std::uint32_t task = ps.task_at(scan);
      if (ps.task_unplaceable(task, lo)) {
        const std::uint64_t charged = std::min<std::uint64_t>(m, budget_left);
        budget_left -= charged;
        stats.vertices_generated += charged;
        if (charged < m) stats.budget_exhausted = true;
      } else if (config.max_successors == 0 && budget_left >= m &&
                 ps.workers_mask_eligible(task)) {
        // Batched Fig. 4 test across all m workers at once. The gates make
        // the accounting equal to the interleaved loop: the full group is
        // charged (no mid-task budget death possible) and no successor cap
        // can cut the group short. Feasible placements are re-evaluated
        // scalar to build the Assignment — single-sourced arithmetic.
        budget_left -= m;
        stats.vertices_generated += m;
        std::uint64_t bits = ps.feasible_workers_mask(task);
        Assignment a;
        while (bits != 0) {
          const auto k =
              static_cast<std::uint32_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const bool ok = ps.evaluate_fast(task, k, a);
          RTDS_ASSERT(ok);
          (void)ok;
          out.push_back(make_candidate(config, ps, batch, a, k));
        }
      } else {
        Assignment a;
        for (std::uint32_t k = 0; k < m; ++k) {
          if (budget_left == 0) {
            stats.budget_exhausted = true;
            break;
          }
          --budget_left;
          ++stats.vertices_generated;
          if (ps.evaluate_fast(task, k, a)) {
            out.push_back(make_candidate(config, ps, batch, a, k));
            if (config.max_successors != 0 &&
                out.size() >= config.max_successors) {
              break;
            }
          }
        }
      }
      if (!out.empty() || stats.budget_exhausted ||
          !config.skip_unplaceable_tasks) {
        break;
      }
      ++scan;  // task unplaceable in this whole subtree: skip it
    }
    cursor = scan;
  } else {
    // Select the level's processor (round-robin per Fig. 1, or the
    // least-loaded-first heuristic the paper allows), branch over every
    // unassigned task in heuristic order. When the level's processor
    // admits no feasible task, skip_saturated_processors moves on to the
    // next processor in the same order (every evaluation still charged).
    level_order.resize(m);
    for (std::uint32_t k = 0; k < m; ++k) {
      level_order[k] = (depth + k) % m;
    }
    if (config.level_processor_order == LevelProcessorOrder::kLeastLoaded) {
      // Stable insertion sort (m is small; no stable_sort temp buffer).
      for (std::uint32_t i = 1; i < m; ++i) {
        const ProcessorId tmp = level_order[i];
        std::uint32_t j = i;
        for (; j > 0 && ps.ce(tmp) < ps.ce(level_order[j - 1]); --j) {
          level_order[j] = level_order[j - 1];
        }
        level_order[j] = tmp;
      }
    }
    const std::uint32_t max_rotations =
        config.skip_saturated_processors ? m : 1;
    const bool batchable =
        config.max_successors == 0 && ps.tasks_mask_eligible();
    const std::vector<std::uint64_t>& words = ps.unassigned_words();
    for (std::uint32_t rot = 0; rot < max_rotations; ++rot) {
      const ProcessorId worker = level_order[rot];
      std::uint32_t branch = 0;
      Assignment a;
      bool stop = false;
      // Iterate unassigned tasks in consideration order straight off the
      // bitset words (set bit = unassigned position).
      for (std::size_t w = 0; w < words.size() && !stop; ++w) {
        std::uint64_t bits = words[w];
        if (bits == 0) continue;
        const auto count =
            static_cast<std::uint32_t>(std::popcount(bits));
        if (batchable && budget_left >= count) {
          // Batched Fig. 4 test for this whole bitset word against the
          // level's worker: up to 64 candidate tasks per kernel call. Same
          // gates as the worker-mask path — the word is charged whole, so
          // accounting matches the interleaved loop exactly; the j-th set
          // bit carries branch index branch+j, exactly what the scalar
          // loop would have assigned it.
          task_ids.clear();
          std::uint64_t scan_bits = bits;
          while (scan_bits != 0) {
            const auto pos = static_cast<std::uint32_t>(
                (w << 6) + std::uint32_t(std::countr_zero(scan_bits)));
            scan_bits &= scan_bits - 1;
            task_ids.push_back(ps.task_at(pos));
          }
          budget_left -= count;
          stats.vertices_generated += count;
          std::uint64_t feasible =
              ps.feasible_tasks_mask(worker, task_ids.data(), count);
          while (feasible != 0) {
            const auto j =
                static_cast<std::uint32_t>(std::countr_zero(feasible));
            feasible &= feasible - 1;
            const bool ok = ps.evaluate_fast(task_ids[j], worker, a);
            RTDS_ASSERT(ok);
            (void)ok;
            out.push_back(
                make_candidate(config, ps, batch, a, branch + j));
          }
          branch += count;
          continue;
        }
        while (bits != 0) {
          const auto pos = static_cast<std::uint32_t>(
              (w << 6) + std::uint32_t(std::countr_zero(bits)));
          bits &= bits - 1;
          const std::uint32_t i = ps.task_at(pos);
          if (budget_left == 0) {
            stats.budget_exhausted = true;
            stop = true;
            break;
          }
          --budget_left;
          ++stats.vertices_generated;
          if (ps.evaluate_fast(i, worker, a)) {
            out.push_back(make_candidate(config, ps, batch, a, branch));
            if (config.max_successors != 0 &&
                out.size() >= config.max_successors) {
              stop = true;
              break;
            }
          }
          ++branch;
        }
      }
      if (!out.empty() || stats.budget_exhausted) break;
    }
  }

  sort_candidates(out);
  return cursor;
}

}  // namespace rtds::search::detail
