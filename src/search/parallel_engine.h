// Parallel sharded search over the task-space tree (ROADMAP: "Shard the
// scheduler itself").
//
// K worker threads speculatively explore the tree, each owning a private
// shard: a chunked node arena, a Chase-Lev work-stealing deque of packed
// 64-bit node ids (depth-first), or a 4-ary heap over its slice of the
// frontier (best-first) with a relaxed-atomic incumbent watermark for
// pruning. Every expansion's outcome — charge, successor records, sort
// keys — is memoized in the expanding shard's arena.
//
// The merge is a *deterministic replay*: after the shards quiesce, a
// sequential walk re-executes the sequential engine's exact loop (same
// candidate-list order, same budget charging, same best-path
// tie-breaking) with a memo cache in front of the expansion step. A
// vertex whose record is usable (explored, and its recorded charge fits
// the remaining budget) replays at pointer-chasing cost; any other vertex
// — unexplored, pruned away, or the one where the budget dies
// mid-expansion — is expanded inline by the replay itself, which is by
// construction exactly what the sequential engine would do there. The
// returned SearchResult is therefore bit-identical to SearchEngine::run
// for every vertex budget, independent of K and of thread timing:
// exploration order, steals, and victim randomization affect only how
// much of the replay is a cache hit, never the result
// (docs/ARCHITECTURE.md, "Parallel search").
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "search/engine.h"

namespace rtds::search {

/// Exploration-side counters for the most recent run. These describe the
/// speculative work the shards performed and are NOT part of the
/// deterministic contract (the SearchResult's SearchStats are reconstructed
/// by the replay); they exist for benchmarking and diagnostics.
struct ParallelRunStats {
  /// Vertices evaluated by the shards (>= the budgeted vertices_generated:
  /// speculation past the sequential frontier is wasted-but-harmless work).
  std::uint64_t speculative_vertices{0};
  std::uint64_t nodes_expanded{0};
  std::uint64_t steals{0};
  /// Exploration rounds run (1 per parallel run; 0 when threads == 1
  /// delegated to the sequential engine).
  std::uint64_t rounds{0};
  /// Expansions the replay performed inline because the memo cache could
  /// not answer (vertex unexplored/pruned, or the budget-death vertex).
  /// 0 means the round covered the sequential prefix entirely.
  std::uint64_t replay_fills{0};
  /// Bytes held by the shard node arenas and child pools at the end of the
  /// run, before the chunk pool self-trims (the bench memory column).
  std::uint64_t arena_bytes{0};
};

/// RNG substream for shard-local randomized tie handling (steal-victim
/// order). Derivation is pinned by tests so shard behaviour is replayable.
inline constexpr std::uint64_t kParallelShardStream =
    stream_id("search.parallel.shard");

[[nodiscard]] inline std::uint64_t parallel_shard_seed(std::uint64_t base_seed,
                                                       std::uint32_t shard) {
  return derive_seed(base_seed, kParallelShardStream, shard);
}

/// Parallel drop-in for SearchEngine. threads == 1 delegates to the
/// sequential engine outright. One engine owns one persistent thread pool
/// (spawned lazily on the first parallel run); run() is serialized per
/// instance but distinct instances are independent.
class ParallelSearchEngine {
 public:
  /// `threads` in [1, 64]. `base_seed` seeds the per-shard RNG substreams
  /// via parallel_shard_seed (results never depend on it — see header
  /// comment — so the default is fine for all production use).
  explicit ParallelSearchEngine(SearchConfig config, std::uint32_t threads,
                                std::uint64_t base_seed = 0);
  ~ParallelSearchEngine();

  ParallelSearchEngine(const ParallelSearchEngine&) = delete;
  ParallelSearchEngine& operator=(const ParallelSearchEngine&) = delete;

  [[nodiscard]] const SearchConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t threads() const { return threads_; }

  /// Same contract as SearchEngine::run, bit-identical results for every
  /// budget. Thread-safe via internal serialization.
  [[nodiscard]] SearchResult run(const std::vector<Task>& batch,
                                 const std::vector<SimDuration>& base_loads,
                                 SimTime delivery_time,
                                 const machine::Interconnect& net,
                                 std::uint64_t vertex_budget) const;

  /// Exploration counters for the most recent run() on this engine. Not
  /// synchronized with concurrent run() calls; read from the calling thread
  /// after run() returns.
  [[nodiscard]] const ParallelRunStats& last_run_stats() const;

 private:
  struct Impl;
  SearchConfig config_;
  std::uint32_t threads_;
  SearchEngine sequential_;  ///< threads == 1 delegation path
  std::unique_ptr<Impl> impl_;
};

}  // namespace rtds::search
