#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rtds {

Histogram::Histogram(double lo, double hi, std::size_t num_buckets)
    : lo_(lo), hi_(hi), buckets_(num_buckets, 0) {
  RTDS_REQUIRE(lo < hi, "Histogram: lo must be < hi");
  RTDS_REQUIRE(num_buckets >= 1, "Histogram: need >= 1 bucket");
  width_ = (hi - lo) / double(num_buckets);
}

void Histogram::add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = std::min(
      buckets_.size() - 1, std::size_t((x - lo_) / width_));
  ++buckets_[idx];
}

double Histogram::quantile(double q) const {
  RTDS_REQUIRE(count_ > 0, "quantile: empty histogram");
  RTDS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q outside [0,1]");
  const double rank = q * double(count_);
  // Ranks inside the underflow mass report lo_ (the histogram cannot see
  // below its range). Rank 0 with no underflow must NOT: the smallest
  // recorded value lives in the first non-empty bucket, whose lower edge
  // the loop below returns (frac == 0), not lo_.
  double seen = double(underflow_);
  if (underflow_ > 0 && rank <= seen) return lo_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;  // empty runs carry no mass
    const double next = seen + double(buckets_[i]);
    if (rank <= next) {
      const double frac =
          rank > seen ? (rank - seen) / double(buckets_[i]) : 0.0;
      return bucket_lo(i) + frac * width_;
    }
    seen = next;
  }
  // Remaining mass is overflow: everything >= hi_ is reported as hi_.
  return hi_;
}

std::string Histogram::render(std::size_t max_bar) const {
  std::uint64_t peak = std::max<std::uint64_t>(
      {underflow_, overflow_,
       buckets_.empty() ? 0
                        : *std::max_element(buckets_.begin(),
                                            buckets_.end())});
  if (peak == 0) peak = 1;
  std::ostringstream os;
  const auto bar = [&](std::uint64_t c) {
    return std::string(std::size_t(std::llround(
                           double(c) / double(peak) * double(max_bar))),
                       '#');
  };
  if (underflow_ > 0) {
    os << "  < " << lo_ << ": " << underflow_ << " " << bar(underflow_)
       << "\n";
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    os << "  [" << bucket_lo(i) << ", " << bucket_hi(i) << "): "
       << buckets_[i] << " " << bar(buckets_[i]) << "\n";
  }
  if (overflow_ > 0) {
    os << " >= " << hi_ << ": " << overflow_ << " " << bar(overflow_)
       << "\n";
  }
  return os.str();
}

}  // namespace rtds
