#include "common/stats.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace rtds {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  RTDS_REQUIRE(n_ > 0, "mean() of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / double(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  RTDS_REQUIRE(n_ > 0, "min() of empty sample");
  return min_;
}

double RunningStats::max() const {
  RTDS_REQUIRE(n_ > 0, "max() of empty sample");
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = double(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * double(n_) * double(other.n_) / n;
  mean_ += delta * double(other.n_) / n;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  n_ += other.n_;
}

double regularized_incomplete_beta(double a, double b, double x) {
  RTDS_REQUIRE(a > 0 && b > 0, "incomplete beta: a, b must be positive");
  RTDS_REQUIRE(x >= 0 && x <= 1, "incomplete beta: x outside [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) so the continued fraction
  // converges quickly.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
  }

  const double ln_beta =
      std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - ln_beta) / a;

  // Lentz's algorithm for the continued fraction.
  const double tiny = 1e-300;
  double f = 1.0, c = 1.0, d = 0.0;
  for (int i = 0; i <= 400; ++i) {
    const int m = i / 2;
    double numerator;
    if (i == 0) {
      numerator = 1.0;
    } else if (i % 2 == 0) {
      numerator = (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
    } else {
      numerator =
          -((a + m) * (a + b + m) * x) / ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
    }
    d = 1.0 + numerator * d;
    if (std::fabs(d) < tiny) d = tiny;
    d = 1.0 / d;
    c = 1.0 + numerator / c;
    if (std::fabs(c) < tiny) c = tiny;
    const double cd = c * d;
    f *= cd;
    if (std::fabs(1.0 - cd) < 1e-12) break;
  }
  return front * (f - 1.0);
}

namespace {

/// Two-tailed p-value for a Student-t statistic with df degrees of freedom:
/// P(|T| > |t|) = I_{df/(df+t^2)}(df/2, 1/2).
double student_t_two_tailed_p(double t, double df) {
  const double x = df / (df + t * t);
  return regularized_incomplete_beta(df / 2.0, 0.5, x);
}

}  // namespace

WelchResult welch_t_test(const RunningStats& a, const RunningStats& b) {
  RTDS_REQUIRE(a.count() >= 2 && b.count() >= 2,
               "welch_t_test: need >= 2 observations per sample");
  const double va = a.variance() / double(a.count());
  const double vb = b.variance() / double(b.count());
  WelchResult r;
  if (va + vb == 0.0) {
    // Identical constants on both sides: no evidence of a difference unless
    // the means differ, in which case the difference is exact.
    r.t_statistic = (a.mean() == b.mean())
                        ? 0.0
                        : std::numeric_limits<double>::infinity();
    r.degrees_of_freedom = double(a.count() + b.count() - 2);
    r.p_value = (a.mean() == b.mean()) ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = (a.mean() - b.mean()) / std::sqrt(va + vb);
  const double num = (va + vb) * (va + vb);
  const double den = va * va / double(a.count() - 1) +
                     vb * vb / double(b.count() - 1);
  r.degrees_of_freedom = num / den;
  r.p_value = student_t_two_tailed_p(r.t_statistic, r.degrees_of_freedom);
  return r;
}

double student_t_critical(double df, double alpha) {
  RTDS_REQUIRE(df > 0, "student_t_critical: df must be positive");
  RTDS_REQUIRE(alpha > 0 && alpha < 1, "student_t_critical: bad alpha");
  // Bisection on the two-tailed p-value; monotone decreasing in t.
  double lo = 0.0, hi = 1.0;
  while (student_t_two_tailed_p(hi, df) > alpha) {
    hi *= 2.0;
    if (hi > 1e8) break;
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_two_tailed_p(mid, df) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double confidence_interval(const RunningStats& s, double confidence) {
  if (s.count() < 2) return 0.0;
  const double alpha = 1.0 - confidence;
  const double t = student_t_critical(double(s.count() - 1), alpha);
  return t * s.stddev() / std::sqrt(double(s.count()));
}

Summary summarize(const std::vector<double>& xs) {
  Summary out;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  out.n = rs.count();
  if (out.n == 0) return out;
  out.mean = rs.mean();
  out.stddev = rs.stddev();
  out.min = rs.min();
  out.max = rs.max();
  out.ci99 = confidence_interval(rs, 0.99);
  return out;
}

}  // namespace rtds
