// Statistics used by the experiment harness.
//
// The paper's protocol (Sec. 5.1): every experiment is run 10 times, the
// mean is plotted, and a two-tailed difference-of-means test at the 0.01
// significance level establishes that the RT-SADS/D-COLS gaps are real.
// `RunningStats` accumulates the per-run observations, `welch_t_test`
// implements the unequal-variance difference-of-means test, and
// `confidence_interval` produces the mean ± margin used in the tables.
#pragma once

#include <cstddef>
#include <vector>

namespace rtds {

/// Numerically stable (Welford) accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator). Zero for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Result of a two-tailed Welch difference-of-means test.
struct WelchResult {
  double t_statistic{0.0};
  double degrees_of_freedom{0.0};
  /// Two-tailed p-value, computed from the Student-t distribution via the
  /// regularized incomplete beta function.
  double p_value{1.0};
  /// Convenience: p_value < alpha.
  [[nodiscard]] bool significant(double alpha = 0.01) const {
    return p_value < alpha;
  }
};

/// Welch's unequal-variance t-test on two accumulated samples.
/// Requires at least two observations on each side.
WelchResult welch_t_test(const RunningStats& a, const RunningStats& b);

/// Two-sided confidence interval half-width for the mean of `s` at the
/// given confidence level (e.g. 0.99), using the Student-t distribution.
/// Returns 0 for fewer than two samples.
double confidence_interval(const RunningStats& s, double confidence = 0.99);

/// Student-t two-tailed critical value for `df` degrees of freedom at the
/// given tail probability alpha (e.g. 0.01 -> 99% two-sided interval).
double student_t_critical(double df, double alpha);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// implementation (Numerical-Recipes style). Exposed for testing.
double regularized_incomplete_beta(double a, double b, double x);

/// Simple descriptive summary of a raw sample vector.
struct Summary {
  std::size_t n{0};
  double mean{0.0};
  double stddev{0.0};
  double min{0.0};
  double max{0.0};
  double ci99{0.0};  ///< 99% confidence half-width
};

Summary summarize(const std::vector<double>& xs);

}  // namespace rtds
