// Simulated-time types used throughout the library.
//
// All quantities from the paper (processing times p_i, communication cost C,
// scheduling quanta Q_s, deadlines d_i) are expressed on the discrete-event
// simulator's clock in integer microseconds. Integer ticks keep every
// experiment bit-for-bit reproducible; doubles would make event ordering
// depend on summation order.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace rtds {

/// A duration on the simulated clock, in microseconds. Plain strong typedef:
/// arithmetic is explicit through the helpers below to avoid unit mistakes.
struct SimDuration {
  std::int64_t us{0};

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return {us + o.us}; }
  constexpr SimDuration operator-(SimDuration o) const { return {us - o.us}; }
  constexpr SimDuration& operator+=(SimDuration o) {
    us += o.us;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    us -= o.us;
    return *this;
  }
  constexpr SimDuration operator*(std::int64_t k) const { return {us * k}; }
  constexpr std::int64_t operator/(SimDuration o) const { return us / o.us; }
  constexpr SimDuration operator/(std::int64_t k) const { return {us / k}; }
  constexpr SimDuration operator-() const { return {-us}; }

  [[nodiscard]] constexpr bool is_zero() const { return us == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return us < 0; }
  [[nodiscard]] constexpr double seconds() const { return double(us) * 1e-6; }
  [[nodiscard]] constexpr double millis() const { return double(us) * 1e-3; }

  static constexpr SimDuration zero() { return {0}; }
  static constexpr SimDuration max() {
    return {std::numeric_limits<std::int64_t>::max()};
  }
};

/// An instant on the simulated clock (microseconds since simulation start).
struct SimTime {
  std::int64_t us{0};

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return {us + d.us}; }
  constexpr SimTime operator-(SimDuration d) const { return {us - d.us}; }
  constexpr SimDuration operator-(SimTime o) const { return {us - o.us}; }
  constexpr SimTime& operator+=(SimDuration d) {
    us += d.us;
    return *this;
  }

  static constexpr SimTime zero() { return {0}; }
  static constexpr SimTime max() {
    return {std::numeric_limits<std::int64_t>::max()};
  }
};

constexpr SimDuration usec(std::int64_t v) { return {v}; }
constexpr SimDuration msec(std::int64_t v) { return {v * 1000}; }
constexpr SimDuration sec(std::int64_t v) { return {v * 1'000'000}; }

constexpr SimDuration max_duration(SimDuration a, SimDuration b) {
  return a < b ? b : a;
}
constexpr SimDuration min_duration(SimDuration a, SimDuration b) {
  return a < b ? a : b;
}
constexpr SimDuration clamp_duration(SimDuration v, SimDuration lo,
                                     SimDuration hi) {
  return v < lo ? lo : (hi < v ? hi : v);
}

inline std::string to_string(SimDuration d) {
  return std::to_string(d.us) + "us";
}
inline std::string to_string(SimTime t) {
  return "t+" + std::to_string(t.us) + "us";
}

}  // namespace rtds
