// Deterministic random number generation.
//
// Every stochastic choice in the library (workload generation, database
// population, replication placement) flows from one of these generators so
// that the paper's 10-run experiment protocol is reproducible bit-for-bit:
// run i of an experiment uses a seed derived from (base_seed, i) via
// SplitMix64, which is the recommended seeding procedure for xoshiro.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/time.h"

namespace rtds {

/// SplitMix64 — tiny, full-period 64-bit generator used to expand seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the library's workhorse generator. Fast, high quality,
/// and trivially seedable from a single 64-bit value.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Uniform duration in [lo, hi] (inclusive, microsecond granularity).
  SimDuration uniform_duration(SimDuration lo, SimDuration hi);

  /// Picks k distinct indices out of [0, n) uniformly (partial
  /// Fisher-Yates). Requires k <= n. Result order is the shuffle order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, std::int64_t(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks one element of a non-empty vector uniformly.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    RTDS_REQUIRE(!v.empty(), "pick() from empty vector");
    return v[static_cast<std::size_t>(
        uniform_int(0, std::int64_t(v.size()) - 1))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives a per-run seed from an experiment's base seed and the run index.
/// The paper runs every experiment 10 times and averages; this makes each
/// run independent but reproducible.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t run_index);

/// FNV-1a hash of a short name — the canonical way to pick the `stream`
/// argument of the three-argument derive_seed below. Constexpr so stream
/// ids can live in headers as compile-time constants.
constexpr std::uint64_t stream_id(const char* name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*p));
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Named-substream seed derivation: one base seed fans out into mutually
/// independent (stream, index) substreams. This is THE seed-derivation
/// helper for every consumer that needs more than the paper's flat
/// 10-repetition protocol — benches, the fuzz subsystem and experiments all
/// derive from here instead of inventing per-binary magic base constants,
/// so two consumers can never collide on the same xoshiro stream.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream,
                          std::uint64_t run_index);

}  // namespace rtds
