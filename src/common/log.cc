#include "common/log.h"

#include <iostream>

namespace rtds {

std::mutex Log::mutex_;
LogLevel Log::level_ = LogLevel::kWarn;

void Log::set_level(LogLevel level) {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Log::level() {
  std::lock_guard lock(mutex_);
  return level_;
}

void Log::write(LogLevel level, const std::string& message) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN",
                                           "ERROR"};
  std::lock_guard lock(mutex_);
  std::cerr << "[" << kNames[static_cast<int>(level)] << "] " << message
            << "\n";
}

}  // namespace rtds
