// Fixed-capacity ring buffer.
//
// Used by the threaded runtime's mailboxes (bounded, no allocation after
// construction) and by the simulator's trace recorder.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.h"

namespace rtds {

/// Single-threaded bounded FIFO. Capacity is fixed at construction; push on
/// a full buffer fails rather than reallocating, which keeps the threaded
/// runtime's memory behaviour predictable.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity + 1) {
    RTDS_REQUIRE(capacity > 0, "RingBuffer capacity must be positive");
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size() - 1; }
  [[nodiscard]] std::size_t size() const {
    return (tail_ + slots_.size() - head_) % slots_.size();
  }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const {
    return (tail_ + 1) % slots_.size() == head_;
  }

  /// Returns false (and leaves the buffer unchanged) when full.
  bool push(T value) {
    if (full()) return false;
    slots_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % slots_.size();
    return true;
  }

  /// Pops the oldest element, or nullopt when empty.
  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    return out;
  }

  /// Oldest element without removing it.
  [[nodiscard]] const T& front() const {
    RTDS_REQUIRE(!empty(), "front() of empty RingBuffer");
    return slots_[head_];
  }

  /// Empties the buffer AND value-resets the occupied slots: a cleared
  /// buffer must not keep moved-in elements (and whatever they own) alive
  /// until the slot happens to be overwritten.
  void clear() {
    for (; head_ != tail_; head_ = (head_ + 1) % slots_.size()) {
      slots_[head_] = T{};
    }
    head_ = tail_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_{0};
  std::size_t tail_{0};
};

}  // namespace rtds
