#include "common/rng.h"

#include <cmath>

#ifdef __SIZEOF_INT128__
using uint128 = unsigned __int128;
#else
#error "128-bit integer support required"
#endif

namespace rtds {

std::int64_t Xoshiro256ss::uniform_int(std::int64_t lo, std::int64_t hi) {
  RTDS_REQUIRE(lo <= hi, "uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Lemire's method: multiply-shift with rejection to remove bias.
  std::uint64_t x = next();
  uint128 m = uint128(x) * uint128(range);
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t t = (0 - range) % range;
    while (l < t) {
      x = next();
      m = uint128(x) * uint128(range);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Xoshiro256ss::uniform_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return double(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256ss::uniform_double(double lo, double hi) {
  RTDS_REQUIRE(lo <= hi, "uniform_double: lo > hi");
  return lo + (hi - lo) * uniform_double();
}

bool Xoshiro256ss::bernoulli(double p) {
  RTDS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return uniform_double() < p;
}

double Xoshiro256ss::exponential(double mean) {
  RTDS_REQUIRE(mean > 0.0, "exponential: mean must be positive");
  double u = uniform_double();
  // Guard against log(0); uniform_double() can return exactly 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

SimDuration Xoshiro256ss::uniform_duration(SimDuration lo, SimDuration hi) {
  return SimDuration{uniform_int(lo.us, hi.us)};
}

std::vector<std::size_t> Xoshiro256ss::sample_indices(std::size_t n,
                                                      std::size_t k) {
  RTDS_REQUIRE(k <= n, "sample_indices: k > n");
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(std::int64_t(i), std::int64_t(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t run_index) {
  SplitMix64 sm(base_seed ^ (0xa0761d6478bd642fULL * (run_index + 1)));
  sm.next();
  return sm.next();
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t stream,
                          std::uint64_t run_index) {
  // Chain two SplitMix64 expansions: first isolate the stream, then the
  // run index within it. Keeping the two-argument overload as the inner
  // step preserves the historic (base, index) seeds for stream 0 consumers
  // such as exp::run_repeated (the figure numbers are pinned by tests).
  SplitMix64 sm(base_seed ^ stream);
  const std::uint64_t stream_base = stream == 0 ? base_seed : sm.next();
  return derive_seed(stream_base, run_index);
}

}  // namespace rtds
