// Fixed-bucket histogram for latency-style distributions.
//
// Used by the analysis module for lateness/tardiness distributions; linear
// buckets over [lo, hi) with underflow/overflow counters, plus approximate
// quantiles by bucket interpolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace rtds {

class Histogram {
 public:
  /// `num_buckets` linear buckets spanning [lo, hi).
  Histogram(double lo, double hi, std::size_t num_buckets);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const {
    return lo_ + width_ * double(i);
  }
  [[nodiscard]] double bucket_hi(std::size_t i) const {
    return lo_ + width_ * double(i + 1);
  }

  /// Approximate q-quantile (q in [0,1]) by linear interpolation within the
  /// bucket containing the rank. Ranks inside the underflow mass map to lo,
  /// ranks inside the overflow mass to hi; with no underflow, q = 0 is the
  /// lower edge of the first non-empty bucket (and symmetrically, with no
  /// overflow q = 1 is the upper edge of the last non-empty bucket), so
  /// empty leading/trailing bucket runs never distort the extremes.
  /// Requires a non-empty histogram.
  [[nodiscard]] double quantile(double q) const;

  /// Compact one-line-per-nonempty-bucket rendering with `#` bars.
  [[nodiscard]] std::string render(std::size_t max_bar = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t count_{0};
};

}  // namespace rtds
