// Error handling primitives.
//
// The library throws `rtds::Error` for violated preconditions in public APIs
// and uses RTDS_ASSERT for internal invariants. Three tiers:
//   * RTDS_REQUIRE    — public-API precondition, always on, InvalidArgument.
//   * RTDS_CHECK_MSG  — load-bearing invariant whose violation must never be
//                       silent (e.g. the task-conservation ledger), always
//                       on in every build type, InvariantViolation.
//   * RTDS_ASSERT[_MSG] — debug invariant on the hot path; compiled out
//                       when RTDS_DISABLE_ASSERTS is defined (the Release
//                       perf configuration, see the release-fast CI job).
//                       The disabled form still parses the expression
//                       ((void)sizeof) so asserts cannot hide bit-rot or
//                       side effects the build depends on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rtds {

/// Base exception for the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a public API precondition is violated.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in this library).
class InvariantViolation : public Error {
 public:
  explicit InvariantViolation(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace rtds

#define RTDS_CHECK_MSG(expr, msg)                                    \
  do {                                                               \
    if (!(expr))                                                     \
      ::rtds::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef RTDS_DISABLE_ASSERTS
#define RTDS_ASSERT(expr) \
  do {                    \
    (void)sizeof(expr);   \
  } while (0)
#define RTDS_ASSERT_MSG(expr, msg) \
  do {                             \
    (void)sizeof(expr);            \
  } while (0)
#else
#define RTDS_ASSERT(expr)                                            \
  do {                                                               \
    if (!(expr)) ::rtds::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define RTDS_ASSERT_MSG(expr, msg)                                   \
  do {                                                               \
    if (!(expr))                                                     \
      ::rtds::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
#endif

#define RTDS_REQUIRE(expr, msg)                        \
  do {                                                 \
    if (!(expr)) throw ::rtds::InvalidArgument((msg)); \
  } while (0)
