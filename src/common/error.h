// Error handling primitives.
//
// The library throws `rtds::Error` for violated preconditions in public APIs
// and uses RTDS_ASSERT for internal invariants (enabled in all build types —
// the simulations are cheap enough that we never want silent corruption).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rtds {

/// Base exception for the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a public API precondition is violated.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in this library).
class InvariantViolation : public Error {
 public:
  explicit InvariantViolation(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace rtds

#define RTDS_ASSERT(expr)                                            \
  do {                                                               \
    if (!(expr)) ::rtds::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define RTDS_ASSERT_MSG(expr, msg)                                   \
  do {                                                               \
    if (!(expr))                                                     \
      ::rtds::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define RTDS_REQUIRE(expr, msg)                        \
  do {                                                 \
    if (!(expr)) throw ::rtds::InvalidArgument((msg)); \
  } while (0)
