// Minimal leveled logger.
//
// Used by the simulation and the threaded runtime for trace output during
// debugging and the examples. Off (Level::kWarn) by default so tests and
// benchmarks stay quiet.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace rtds {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Process-wide logger. Thread-safe; a single mutex serializes output, which
/// is fine because logging is only enabled for debugging and demos.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level) { return level >= Log::level(); }

  /// Writes one line (with level prefix) to stderr.
  static void write(LogLevel level, const std::string& message);

 private:
  static std::mutex mutex_;
  static LogLevel level_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rtds

#define RTDS_LOG(level)                         \
  if (!::rtds::Log::enabled(level)) {           \
  } else                                        \
    ::rtds::detail::LogLine(level)

#define RTDS_TRACE RTDS_LOG(::rtds::LogLevel::kTrace)
#define RTDS_DEBUG RTDS_LOG(::rtds::LogLevel::kDebug)
#define RTDS_INFO RTDS_LOG(::rtds::LogLevel::kInfo)
#define RTDS_WARN RTDS_LOG(::rtds::LogLevel::kWarn)
#define RTDS_ERROR RTDS_LOG(::rtds::LogLevel::kError)
