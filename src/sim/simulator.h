// Deterministic discrete-event simulation engine.
//
// This is the substrate that stands in for the paper's Intel Paragon: the
// machine model (src/machine) and the schedulers (src/sched) run as event
// handlers on this clock. Determinism guarantees:
//   * time never goes backwards;
//   * events at equal timestamps fire in scheduling (FIFO) order;
//   * a cancelled event never fires.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/error.h"
#include "common/time.h"

namespace rtds::sim {

/// Handle to a scheduled event; allows cancellation. Cheap to copy.
/// A default-constructed handle refers to no event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const { return record_ && !record_->done; }

  /// Cancels the event if it is still pending. Idempotent.
  void cancel() {
    if (record_) record_->done = true;
  }

 private:
  friend class Simulator;
  struct Record {
    bool done{false};
  };
  explicit EventHandle(std::shared_ptr<Record> r) : record_(std::move(r)) {}
  std::shared_ptr<Record> record_;
};

/// The simulator: a clock plus a time-ordered event queue.
///
/// Handlers are plain callables; they may schedule further events (including
/// at the current time, which fire after all previously scheduled
/// current-time events — FIFO tie-break by sequence number).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  using Handler = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events still pending (cancelled events may be counted until
  /// they surface at the queue head).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Schedules `handler` at absolute time `t`. Requires t >= now().
  EventHandle schedule_at(SimTime t, Handler handler);

  /// Schedules `handler` `delay` after the current time. Requires delay >= 0.
  EventHandle schedule_after(SimDuration delay, Handler handler);

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events fired by this call.
  std::uint64_t run(std::uint64_t max_events = kDefaultMaxEvents);

  /// Runs events with time <= `until`. The clock is advanced to `until` at
  /// the end even if no event lands exactly there. Returns events fired.
  std::uint64_t run_until(SimTime until,
                          std::uint64_t max_events = kDefaultMaxEvents);

  /// True when no live events remain.
  [[nodiscard]] bool idle();

  static constexpr std::uint64_t kDefaultMaxEvents = 500'000'000;

 private:
  struct QueuedEvent {
    SimTime time;
    std::uint64_t seq;
    Handler handler;
    std::shared_ptr<EventHandle::Record> record;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;  // FIFO among equal timestamps
    }
  };

  /// Pops cancelled events off the queue head.
  void drop_cancelled();
  /// Fires the head event. Requires a live head.
  void fire_head();

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later> queue_;
};

}  // namespace rtds::sim
