#include "sim/simulator.h"

namespace rtds::sim {

EventHandle Simulator::schedule_at(SimTime t, Handler handler) {
  RTDS_REQUIRE(t >= now_, "schedule_at: cannot schedule in the past");
  RTDS_REQUIRE(static_cast<bool>(handler), "schedule_at: empty handler");
  auto record = std::make_shared<EventHandle::Record>();
  queue_.push(QueuedEvent{t, next_seq_++, std::move(handler), record});
  return EventHandle{std::move(record)};
}

EventHandle Simulator::schedule_after(SimDuration delay, Handler handler) {
  RTDS_REQUIRE(!delay.is_negative(), "schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(handler));
}

void Simulator::drop_cancelled() {
  while (!queue_.empty() && queue_.top().record->done) {
    queue_.pop();
  }
}

void Simulator::fire_head() {
  // Move the event out before firing: the handler may schedule new events,
  // which mutates the queue.
  QueuedEvent ev = queue_.top();
  queue_.pop();
  RTDS_ASSERT(ev.time >= now_);
  now_ = ev.time;
  ev.record->done = true;
  ++executed_;
  ev.handler();
}

bool Simulator::idle() {
  drop_cancelled();
  return queue_.empty();
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events) {
    drop_cancelled();
    if (queue_.empty()) break;
    fire_head();
    ++fired;
  }
  return fired;
}

std::uint64_t Simulator::run_until(SimTime until, std::uint64_t max_events) {
  RTDS_REQUIRE(until >= now_, "run_until: target time in the past");
  std::uint64_t fired = 0;
  while (fired < max_events) {
    drop_cancelled();
    if (queue_.empty() || until < queue_.top().time) break;
    fire_head();
    ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

}  // namespace rtds::sim
