#include "tasks/workload.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace rtds::tasks {

void validate_task_body_config(const WorkloadConfig& cfg) {
  RTDS_REQUIRE(cfg.num_processors >= 1, "workload: need >= 1 processor");
  RTDS_REQUIRE(cfg.num_processors <= AffinitySet::kMaxProcessors,
               "workload: too many processors");
  RTDS_REQUIRE(cfg.processing_min > SimDuration::zero() &&
                   cfg.processing_min <= cfg.processing_max,
               "workload: bad processing time range");
  RTDS_REQUIRE(cfg.affinity_degree >= 0.0 && cfg.affinity_degree <= 1.0,
               "workload: affinity degree outside [0,1]");
  RTDS_REQUIRE(cfg.laxity_min > 0.0 && cfg.laxity_min <= cfg.laxity_max,
               "workload: bad laxity range");
  RTDS_REQUIRE(!cfg.max_start_offset.is_negative(),
               "workload: negative start offset");
  RTDS_REQUIRE(cfg.actual_fraction_min > 0.0 &&
                   cfg.actual_fraction_min <= cfg.actual_fraction_max &&
                   cfg.actual_fraction_max <= 1.0,
               "workload: bad actual-cost fraction range");
  RTDS_REQUIRE(cfg.gang_fraction >= 0.0 && cfg.gang_fraction <= 1.0,
               "workload: gang fraction outside [0,1]");
  RTDS_REQUIRE(cfg.gang_fraction == 0.0 ||
                   (cfg.gang_max_workers >= 2 &&
                    cfg.gang_max_workers <= cfg.num_processors),
               "workload: gang_max_workers must be in [2, num_processors]");
  RTDS_REQUIRE(cfg.num_releases >= 1, "workload: need >= 1 release");
  RTDS_REQUIRE(cfg.num_releases == 1 ||
                   cfg.release_period > SimDuration::zero(),
               "workload: repeated releases need a positive period");
}

Task draw_task_body(const WorkloadConfig& cfg, TaskId id, SimTime arrival,
                    Xoshiro256ss& rng) {
  Task t;
  t.id = id;
  t.arrival = arrival;

  t.processing =
      rng.uniform_duration(cfg.processing_min, cfg.processing_max);

  // Bernoulli affinity per processor; force at least one affine
  // processor so the task is executable without communication somewhere.
  for (ProcessorId p = 0; p < cfg.num_processors; ++p) {
    if (rng.bernoulli(cfg.affinity_degree)) t.affinity.add(p);
  }
  if (t.affinity.empty()) {
    t.affinity.add(static_cast<ProcessorId>(
        rng.uniform_int(0, std::int64_t(cfg.num_processors) - 1)));
  }

  if (cfg.actual_fraction_max < 1.0 ||
      cfg.actual_fraction_min < cfg.actual_fraction_max) {
    const double fraction = rng.uniform_double(cfg.actual_fraction_min,
                                               cfg.actual_fraction_max);
    t.actual_processing = SimDuration{std::max<std::int64_t>(
        1, std::int64_t(std::llround(fraction * double(t.processing.us))))};
  }

  t.earliest_start = t.arrival;
  if (cfg.max_start_offset > SimDuration::zero()) {
    t.earliest_start =
        t.arrival +
        rng.uniform_duration(SimDuration::zero(), cfg.max_start_offset);
  }

  const double laxity = rng.uniform_double(cfg.laxity_min, cfg.laxity_max);
  t.deadline =
      t.earliest_start +
      SimDuration{std::int64_t(std::llround(laxity * double(t.processing.us)))};

  // Gang width draw comes last and only when the dial is on, so legacy
  // configs consume exactly the historic rng stream.
  if (cfg.gang_fraction > 0.0 && rng.bernoulli(cfg.gang_fraction)) {
    const auto hi = std::int64_t(
        std::min(cfg.gang_max_workers, cfg.num_processors));
    t.workers_required =
        static_cast<std::uint32_t>(rng.uniform_int(2, std::max<std::int64_t>(2, hi)));
  }
  return t;
}

std::vector<Task> generate_workload(const WorkloadConfig& cfg,
                                    Xoshiro256ss& rng) {
  validate_task_body_config(cfg);
  if (cfg.arrival == ArrivalPattern::kPeriodicBurst) {
    RTDS_REQUIRE(cfg.burst_size >= 1, "workload: burst size must be >= 1");
    RTDS_REQUIRE(cfg.burst_interval > SimDuration::zero(),
                 "workload: burst interval must be positive");
  }

  std::vector<Task> out;
  out.reserve(std::size_t{cfg.num_tasks} * cfg.num_releases);

  SimTime arrival_cursor = cfg.start;
  for (std::uint32_t i = 0; i < cfg.num_tasks; ++i) {
    SimTime arrival = cfg.start;
    switch (cfg.arrival) {
      case ArrivalPattern::kBursty:
        break;
      case ArrivalPattern::kPoisson: {
        const double gap =
            rng.exponential(double(cfg.mean_interarrival.us));
        arrival_cursor += SimDuration{std::int64_t(std::llround(gap))};
        arrival = arrival_cursor;
        break;
      }
      case ArrivalPattern::kPeriodicBurst:
        arrival =
            cfg.start + cfg.burst_interval * std::int64_t(i / cfg.burst_size);
        break;
    }
    // One body draw per logical task; releases are time-shifted copies
    // with fresh deadlines (periodic task model). Release r of logical
    // task i gets id first_id + i*num_releases + r, so ids stay unique
    // and attributable to their logical task.
    const Task body = draw_task_body(
        cfg, cfg.first_id + i * cfg.num_releases, arrival, rng);
    out.push_back(body);
    for (std::uint32_t r = 1; r < cfg.num_releases; ++r) {
      Task rel = body;
      const SimDuration shift = cfg.release_period * std::int64_t(r);
      rel.id = body.id + r;
      rel.arrival = body.arrival + shift;
      rel.earliest_start = body.earliest_start + shift;
      rel.deadline = body.deadline + shift;
      out.push_back(rel);
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Task& a, const Task& b) {
                     return a.arrival < b.arrival;
                   });
  return out;
}

std::vector<Task> arrivals_in_window(const std::vector<Task>& sorted_tasks,
                                     SimTime from, SimTime to) {
  std::vector<Task> out;
  for (const Task& t : sorted_tasks) {
    if (t.arrival >= from && t.arrival < to) out.push_back(t);
    if (t.arrival >= to) break;
  }
  return out;
}

}  // namespace rtds::tasks
