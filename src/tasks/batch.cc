#include "tasks/batch.h"

#include <algorithm>

#include "common/error.h"

namespace rtds::tasks {

std::size_t Batch::merge_arrivals(const std::vector<Task>& arrived) {
  std::size_t merged = 0;
  for (const Task& t : arrived) {
    if (readmit(t)) ++merged;
  }
  return merged;
}

bool Batch::readmit(const Task& task) {
  if (!ids_.insert(task.id).second) return false;  // already pending
  tasks_.push_back(task);
  return true;
}

void Batch::remove_scheduled(const std::unordered_set<TaskId>& scheduled_ids) {
  if (scheduled_ids.empty()) return;
  // Erase from ids_ inside the predicate: after remove_if the tail range
  // holds shifted-up copies of the KEPT elements, so reading removed ids
  // from it would unregister the wrong tasks.
  auto removed = std::remove_if(tasks_.begin(), tasks_.end(),
                                [&](const Task& t) {
                                  if (scheduled_ids.count(t.id) == 0) {
                                    return false;
                                  }
                                  ids_.erase(t.id);
                                  return true;
                                });
  tasks_.erase(removed, tasks_.end());
}

std::vector<Task> Batch::cull_missed(SimTime t) {
  std::vector<Task> culled;
  auto keep_end = std::stable_partition(
      tasks_.begin(), tasks_.end(),
      [&](const Task& task) { return !task.deadline_unreachable(t); });
  culled.assign(keep_end, tasks_.end());
  for (const Task& task : culled) ids_.erase(task.id);
  tasks_.erase(keep_end, tasks_.end());
  return culled;
}

SimDuration Batch::min_slack(SimTime t) const {
  RTDS_REQUIRE(!tasks_.empty(), "min_slack of empty batch");
  SimDuration best = SimDuration::max();
  for (const Task& task : tasks_) {
    best = min_duration(best, task.slack_at(t));
  }
  return best;
}

SimDuration Batch::total_processing() const {
  SimDuration total = SimDuration::zero();
  for (const Task& task : tasks_) total += task.processing;
  return total;
}

}  // namespace rtds::tasks
