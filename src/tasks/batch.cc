#include "tasks/batch.h"

#include <algorithm>

#include "common/error.h"

namespace rtds::tasks {

void Batch::merge_arrivals(const std::vector<Task>& arrived) {
  for (const Task& t : arrived) {
    const bool inserted = ids_.insert(t.id).second;
    RTDS_REQUIRE(inserted, "Batch: duplicate task id merged");
    tasks_.push_back(t);
  }
}

void Batch::remove_scheduled(const std::unordered_set<TaskId>& scheduled_ids) {
  if (scheduled_ids.empty()) return;
  auto removed = std::remove_if(tasks_.begin(), tasks_.end(),
                                [&](const Task& t) {
                                  return scheduled_ids.count(t.id) > 0;
                                });
  for (auto it = removed; it != tasks_.end(); ++it) ids_.erase(it->id);
  tasks_.erase(removed, tasks_.end());
}

std::vector<Task> Batch::cull_missed(SimTime t) {
  std::vector<Task> culled;
  auto keep_end = std::stable_partition(
      tasks_.begin(), tasks_.end(),
      [&](const Task& task) { return !task.deadline_unreachable(t); });
  culled.assign(keep_end, tasks_.end());
  for (const Task& task : culled) ids_.erase(task.id);
  tasks_.erase(keep_end, tasks_.end());
  return culled;
}

SimDuration Batch::min_slack(SimTime t) const {
  RTDS_REQUIRE(!tasks_.empty(), "min_slack of empty batch");
  SimDuration best = SimDuration::max();
  for (const Task& task : tasks_) {
    best = min_duration(best, task.slack_at(t));
  }
  return best;
}

SimDuration Batch::total_processing() const {
  SimDuration total = SimDuration::zero();
  for (const Task& task : tasks_) total += task.processing;
  return total;
}

}  // namespace rtds::tasks
