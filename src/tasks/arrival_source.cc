#include "tasks/arrival_source.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace rtds::tasks {

namespace {

constexpr std::uint64_t kArrivalStream = stream_id("stream.arrival");
constexpr std::uint64_t kBodyStream = stream_id("stream.body");

SimDuration round_gap(double gap_us) {
  return SimDuration{std::max<std::int64_t>(0, std::int64_t(std::llround(gap_us)))};
}

}  // namespace

VectorArrivalSource::VectorArrivalSource(std::vector<Task> tasks)
    : tasks_(std::move(tasks)) {
  RTDS_REQUIRE(std::is_sorted(tasks_.begin(), tasks_.end(),
                              [](const Task& a, const Task& b) {
                                return a.arrival < b.arrival;
                              }),
               "VectorArrivalSource: workload must be sorted by arrival");
}

std::optional<SimTime> VectorArrivalSource::peek() {
  if (cursor_ >= tasks_.size()) return std::nullopt;
  return tasks_[cursor_].arrival;
}

Task VectorArrivalSource::next() {
  RTDS_REQUIRE(cursor_ < tasks_.size(),
               "VectorArrivalSource: next() past the end");
  return std::move(tasks_[cursor_++]);
}

GeneratedArrivalSource::GeneratedArrivalSource(const StreamConfig& config)
    : config_(config),
      arrival_rng_(derive_seed(config.seed, kArrivalStream, 0)),
      body_rng_(derive_seed(config.seed, kBodyStream, 0)),
      cursor_(config.start) {
  validate_task_body_config(config_.body);
}

void GeneratedArrivalSource::refill() {
  if (primed_ || emitted_ >= config_.max_tasks) return;
  cursor_ += draw_gap(arrival_rng_);
  pending_ = draw_task_body(config_.body, config_.body.first_id + emitted_,
                            cursor_, body_rng_);
  emitted_ += 1;
  primed_ = true;
}

std::optional<SimTime> GeneratedArrivalSource::peek() {
  refill();
  if (!primed_) return std::nullopt;
  return pending_->arrival;
}

Task GeneratedArrivalSource::next() {
  refill();
  RTDS_REQUIRE(primed_, "GeneratedArrivalSource: next() on exhausted source");
  primed_ = false;
  return *std::move(pending_);
}

PoissonArrivalSource::PoissonArrivalSource(const StreamConfig& config,
                                           SimDuration mean_gap)
    : GeneratedArrivalSource(config), mean_gap_(mean_gap) {
  RTDS_REQUIRE(mean_gap > SimDuration::zero(),
               "PoissonArrivalSource: mean gap must be positive");
}

SimDuration PoissonArrivalSource::draw_gap(Xoshiro256ss& rng) {
  return round_gap(rng.exponential(double(mean_gap_.us)));
}

OnOffArrivalSource::OnOffArrivalSource(const StreamConfig& config,
                                       SimDuration on_gap,
                                       std::uint32_t burst_len,
                                       SimDuration off_gap)
    : GeneratedArrivalSource(config),
      on_gap_(on_gap),
      burst_len_(burst_len),
      off_gap_(off_gap) {
  RTDS_REQUIRE(!on_gap.is_negative(),
               "OnOffArrivalSource: ON gap must be >= 0");
  RTDS_REQUIRE(burst_len >= 1, "OnOffArrivalSource: burst length must be >= 1");
  RTDS_REQUIRE(off_gap > SimDuration::zero(),
               "OnOffArrivalSource: OFF gap must be positive");
}

SimDuration OnOffArrivalSource::draw_gap(Xoshiro256ss&) {
  // First task of a burst pays the OFF silence (the very first burst starts
  // one OFF period after `start`, so an idle lead-in is part of the model);
  // the rest of the burst is spaced at the ON gap.
  if (in_burst_ == 0) {
    in_burst_ = burst_len_ - 1;
    return off_gap_;
  }
  in_burst_ -= 1;
  return on_gap_;
}

PeriodicArrivalSource::PeriodicArrivalSource(const StreamConfig& config,
                                             SimDuration period,
                                             SimDuration jitter)
    : GeneratedArrivalSource(config), period_(period), jitter_(jitter) {
  RTDS_REQUIRE(period > SimDuration::zero(),
               "PeriodicArrivalSource: period must be positive");
  RTDS_REQUIRE(!jitter.is_negative() && jitter <= period,
               "PeriodicArrivalSource: jitter must be in [0, period]");
}

SimDuration PeriodicArrivalSource::draw_gap(Xoshiro256ss& rng) {
  // Release k is at start + k*period + J_k, so the gap from release k-1 is
  // period + J_k - J_{k-1}; jitter <= period keeps it >= 0. The very first
  // release also lands one period after `start`, matching the other
  // sources (first arrival = start + one drawn gap).
  if (jitter_.is_zero()) return period_;
  const SimDuration j =
      rng.uniform_duration(SimDuration::zero(), jitter_);
  const SimDuration gap = period_ + j - prev_jitter_;
  prev_jitter_ = j;
  return gap;
}

SporadicArrivalSource::SporadicArrivalSource(const StreamConfig& config,
                                             SimDuration min_gap,
                                             SimDuration mean_extra_gap)
    : GeneratedArrivalSource(config),
      min_gap_(min_gap),
      mean_extra_gap_(mean_extra_gap) {
  RTDS_REQUIRE(min_gap > SimDuration::zero(),
               "SporadicArrivalSource: min gap must be positive");
  RTDS_REQUIRE(mean_extra_gap > SimDuration::zero(),
               "SporadicArrivalSource: mean extra gap must be positive");
}

SimDuration SporadicArrivalSource::draw_gap(Xoshiro256ss& rng) {
  return min_gap_ + round_gap(rng.exponential(double(mean_extra_gap_.us)));
}

}  // namespace rtds::tasks
