// Open-arrival task sources for the streaming service mode.
//
// A closed run drains a fixed, fully-known workload vector; the paper's
// Sec. 4.4 phase pipelining is designed for an OPEN system where Batch(j+1)
// forms from tasks that arrive while S_j executes. An ArrivalSource is the
// open-system counterpart of a workload vector: the pipeline pulls tasks
// incrementally (peek the next arrival instant, consume when the clock
// reaches it) instead of requiring the whole future up front, so a source
// can in principle run forever — in practice every generator is bounded by
// `max_tasks` so runs terminate and conservation can be checked at drain.
//
// Four arrival processes are provided, spanning the open-workload models
// of the real-time literature:
//
//   PoissonArrivalSource   memoryless gaps, Exp(mean) — the classic open
//                          service-system model (M/·/m)
//   OnOffArrivalSource     bursty ON-OFF: bursts of `burst_len` tasks at
//                          `on_gap` spacing separated by `off_gap` silences
//                          (markets open, sensors sync, caches flush)
//   SporadicArrivalSource  minimum inter-arrival enforcement: gap =
//                          min_gap + Exp(mean_extra_gap), the sporadic
//                          task model (arXiv:1809.04355) where min_gap is
//                          the contracted rate limit
//   PeriodicArrivalSource  the canonical periodic task model
//                          (arXiv:1001.4115): release k at start +
//                          k*period + U[0, jitter], max_tasks bounding
//                          the hyperperiod
//
// Task BODIES (processing, affinity, deadline laxity, start offsets,
// reclaimable slack) are drawn by tasks::draw_task_body from the same
// WorkloadConfig distribution the closed generator uses, off a dedicated
// named rng substream — the same seed therefore reproduces the exact task
// stream, which is what makes streaming runs replayable and benchable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "tasks/task.h"
#include "tasks/workload.h"

namespace rtds::tasks {

/// Incremental task feed for the open-system pipeline entry point.
///
/// Contract: peek() returns the arrival instant of the next task without
/// consuming it (nullopt when exhausted); next() consumes and returns that
/// task, whose `arrival` equals the peeked instant. Arrival instants are
/// non-decreasing across next() calls — the stream is sorted by
/// construction, exactly as closed workload vectors are required to be.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Arrival time of the next task, or nullopt when the source is done.
  [[nodiscard]] virtual std::optional<SimTime> peek() = 0;

  /// Consumes the next task. Requires peek() != nullopt.
  virtual Task next() = 0;
};

/// Adapts a fixed workload vector (sorted by arrival) to the ArrivalSource
/// interface — the closed drain is the degenerate open system, which is how
/// PhasePipeline::run funnels into the same phase loop as run_stream.
class VectorArrivalSource final : public ArrivalSource {
 public:
  /// Throws InvalidArgument unless `tasks` is sorted by arrival.
  explicit VectorArrivalSource(std::vector<Task> tasks);

  [[nodiscard]] std::optional<SimTime> peek() override;
  Task next() override;

 private:
  std::vector<Task> tasks_;
  std::size_t cursor_{0};
};

/// Shape of a generated open stream: the arrival process is chosen by the
/// concrete source class; everything here is common to all three.
struct StreamConfig {
  /// Seed of the stream. Arrival gaps and task bodies draw from two
  /// independent named substreams ("stream.arrival" / "stream.body") via
  /// derive_seed, so the arrival process can be swapped without changing
  /// the task population and vice versa.
  std::uint64_t seed{1};

  /// Tasks the source emits before reporting exhaustion. Bounds every run.
  std::uint32_t max_tasks{1000};

  /// First arrival is at `start` + one drawn gap.
  SimTime start{SimTime::zero()};

  /// Task-body distribution (processing, affinity, laxity, offsets,
  /// reclaimable slack). Arrival-pattern fields of the config are ignored
  /// — the source IS the arrival pattern. Ids are sequential from
  /// `body.first_id`.
  WorkloadConfig body;
};

/// Common machinery of the generated sources: two rng substreams, id
/// assignment, lazy one-task lookahead. Subclasses implement draw_gap().
class GeneratedArrivalSource : public ArrivalSource {
 public:
  [[nodiscard]] std::optional<SimTime> peek() final;
  Task next() final;

 protected:
  explicit GeneratedArrivalSource(const StreamConfig& config);

  /// Gap between the previous arrival instant and the next (>= 0).
  virtual SimDuration draw_gap(Xoshiro256ss& rng) = 0;

 private:
  void refill();

  StreamConfig config_;
  Xoshiro256ss arrival_rng_;
  Xoshiro256ss body_rng_;
  SimTime cursor_;
  std::uint32_t emitted_{0};
  std::optional<Task> pending_;
  bool primed_{false};
};

/// Memoryless arrivals: gap ~ Exp(mean_gap).
class PoissonArrivalSource final : public GeneratedArrivalSource {
 public:
  PoissonArrivalSource(const StreamConfig& config, SimDuration mean_gap);

 protected:
  SimDuration draw_gap(Xoshiro256ss& rng) override;

 private:
  SimDuration mean_gap_;
};

/// Bursty ON-OFF arrivals: `burst_len` tasks spaced `on_gap` apart, then an
/// `off_gap` silence, repeating. Deterministic in everything but the task
/// bodies — the burst structure itself is the model, not noise.
class OnOffArrivalSource final : public GeneratedArrivalSource {
 public:
  OnOffArrivalSource(const StreamConfig& config, SimDuration on_gap,
                     std::uint32_t burst_len, SimDuration off_gap);

 protected:
  SimDuration draw_gap(Xoshiro256ss& rng) override;

 private:
  SimDuration on_gap_;
  std::uint32_t burst_len_;
  SimDuration off_gap_;
  std::uint32_t in_burst_{0};
};

/// Periodic releases with bounded jitter: arrival k lands at
/// start + k*period + J_k with J_k ~ U[0, jitter] (jitter == 0 is the
/// strictly periodic train). Gaps stay >= 0 because jitter <= period is
/// enforced, so the source honors the sorted-arrival contract. `max_tasks`
/// is the hyperperiod bound: the caller chooses how many releases fit the
/// horizon under study.
class PeriodicArrivalSource final : public GeneratedArrivalSource {
 public:
  PeriodicArrivalSource(const StreamConfig& config, SimDuration period,
                        SimDuration jitter = SimDuration::zero());

 protected:
  SimDuration draw_gap(Xoshiro256ss& rng) override;

 private:
  SimDuration period_;
  SimDuration jitter_;
  SimDuration prev_jitter_{SimDuration::zero()};
};

/// Sporadic arrivals with minimum inter-arrival enforcement: gap = min_gap
/// + Exp(mean_extra_gap). min_gap is the sporadic model's rate-limit
/// contract; the exponential tail makes the source genuinely aperiodic.
class SporadicArrivalSource final : public GeneratedArrivalSource {
 public:
  SporadicArrivalSource(const StreamConfig& config, SimDuration min_gap,
                        SimDuration mean_extra_gap);

 protected:
  SimDuration draw_gap(Xoshiro256ss& rng) override;

 private:
  SimDuration min_gap_;
  SimDuration mean_extra_gap_;
};

}  // namespace rtds::tasks
