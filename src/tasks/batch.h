// Batch maintenance (Sec. 4).
//
// The input to each scheduling phase j is Batch(j). At the end of phase j,
// Batch(j+1) is formed by removing from Batch(j) the tasks that were
// scheduled and the tasks whose deadlines were missed, and by adding the
// tasks that arrived during phase j. Scheduled tasks never re-enter a later
// batch (they are delivered to worker ready queues instead).
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "tasks/task.h"

namespace rtds::tasks {

/// Mutable batch of pending tasks between scheduling phases.
///
/// Order is preserved across operations (arrival order, then merge order)
/// so that schedulers see a deterministic candidate ordering.
class Batch {
 public:
  Batch() = default;

  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  /// Appends newly arrived tasks. An id already pending is skipped instead
  /// of aborting the host — a readmitted task may race a same-id arrival.
  /// Returns the number of tasks actually merged.
  std::size_t merge_arrivals(const std::vector<Task>& arrived);

  /// Returns a task to the batch after its delivery was refused (the
  /// readmission path of the overload-robustness layer). No-op returning
  /// false when the id is already pending — which is the common case, since
  /// the pipeline only retires tasks the backend actually accepted.
  bool readmit(const Task& task);

  /// Removes tasks that were scheduled in the phase that just ended.
  /// Ids not present are ignored (they may have been culled already).
  void remove_scheduled(const std::unordered_set<TaskId>& scheduled_ids);

  /// Culls tasks whose deadlines can no longer be met at time t
  /// (p_i + t_c > d_i, Sec. 4.1). Returns the culled tasks (the experiment
  /// harness counts them as deadline misses).
  std::vector<Task> cull_missed(SimTime t);

  /// Minimum slack over the batch at time t (Min_Slack in Fig. 3).
  /// Requires a non-empty batch.
  [[nodiscard]] SimDuration min_slack(SimTime t) const;

  /// Total processing demand of the batch (used by ablation benches).
  [[nodiscard]] SimDuration total_processing() const;

  void clear() {
    tasks_.clear();
    ids_.clear();
  }

 private:
  std::vector<Task> tasks_;
  std::unordered_set<TaskId> ids_;  // duplicate detection
};

}  // namespace rtds::tasks
