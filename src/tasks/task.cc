#include "tasks/task.h"

#include <sstream>

namespace rtds::tasks {

std::vector<ProcessorId> AffinitySet::to_vector() const {
  std::vector<ProcessorId> out;
  out.reserve(count());
  std::uint64_t b = bits_;
  while (b) {
    const auto p = static_cast<ProcessorId>(__builtin_ctzll(b));
    out.push_back(p);
    b &= b - 1;
  }
  return out;
}

std::string Task::to_string() const {
  std::ostringstream os;
  os << "T" << id << "{a=" << arrival.us << "us, p=" << processing.us
     << "us, d=" << deadline.us << "us, affinity=0x" << std::hex
     << affinity.raw() << std::dec;
  if (workers_required > 1) os << ", gang=" << workers_required;
  os << "}";
  return os.str();
}

}  // namespace rtds::tasks
