// Synthetic workload generation.
//
// The paper's evaluation drives the schedulers with database transactions
// (src/db provides that adapter); this module provides the equivalent
// synthetic task workloads used by the unit/property tests, the ablation
// benches, and the quickstart example: bursty or Poisson arrivals, uniform
// processing times, probabilistic task-to-processor affinity (the "degree
// of affinity" parameter of Sec. 2) and proportional deadlines.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "tasks/task.h"

namespace rtds::tasks {

/// How task arrival times are drawn.
enum class ArrivalPattern {
  kBursty,         ///< all tasks arrive at `start` simultaneously (Sec. 5.1)
  kPoisson,        ///< exponential inter-arrival times with the given mean
  kPeriodicBurst,  ///< bursts of `burst_size` tasks every `burst_interval`
};

/// Parameters of a synthetic workload.
struct WorkloadConfig {
  std::uint32_t num_tasks{100};
  std::uint32_t num_processors{4};  ///< worker count (affinity domain)

  ArrivalPattern arrival{ArrivalPattern::kBursty};
  SimTime start{SimTime::zero()};
  SimDuration mean_interarrival{msec(1)};  ///< Poisson only
  std::uint32_t burst_size{10};            ///< periodic bursts only
  SimDuration burst_interval{msec(20)};    ///< periodic bursts only

  SimDuration processing_min{msec(1)};
  SimDuration processing_max{msec(10)};

  /// Degree of affinity (Sec. 2): probability that a task has affinity with
  /// any given processor. Each task is guaranteed at least one affine
  /// processor (a task with data on no processor cannot execute).
  double affinity_degree{0.3};

  /// Deadline = arrival + laxity_factor * processing, with laxity_factor
  /// drawn uniformly from [laxity_min, laxity_max]. The paper's SF maps to
  /// laxity via Deadline = SF * 10 * cost; use laxity_min == laxity_max ==
  /// 10*SF to reproduce that exactly.
  double laxity_min{10.0};
  double laxity_max{10.0};

  /// Start-time constraints (footnote 1 task model): each task's earliest
  /// start is arrival + U[0, max_start_offset]. Zero (default) disables
  /// the constraint. Deadlines are measured from the earliest start so the
  /// generated tasks remain individually schedulable.
  SimDuration max_start_offset{SimDuration::zero()};

  /// Resource-reclaiming extension: actual execution demand is drawn as
  /// processing * U[actual_fraction_min, actual_fraction_max]. With both at
  /// 1.0 (default) tasks have no reclaimable slack and actual_processing is
  /// left unset.
  double actual_fraction_min{1.0};
  double actual_fraction_max{1.0};

  /// Gang/moldable jobs (arXiv:0805.3237): each task is independently a
  /// gang with probability `gang_fraction`; a gang's width is drawn
  /// uniformly from [2, min(gang_max_workers, num_processors)]. With
  /// gang_fraction == 0 (default) no gang draws are made at all, so legacy
  /// rng streams are byte-identical.
  double gang_fraction{0.0};
  std::uint32_t gang_max_workers{2};

  /// Periodic releases (the canonical real-time task model): each of the
  /// `num_tasks` logical tasks re-releases `num_releases` times, every
  /// `release_period` (so the generated workload holds
  /// num_tasks * num_releases jobs). Release r of a logical task is a copy
  /// of its body with arrival / earliest start / deadline shifted by
  /// r * release_period — fresh deadlines per release. The caller bounds
  /// the horizon (hyperperiod) by choosing num_releases. With
  /// num_releases == 1 (default) generation is byte-identical to the
  /// one-shot model.
  SimDuration release_period{SimDuration::zero()};
  std::uint32_t num_releases{1};

  /// First task id to assign (ids are sequential from here).
  TaskId first_id{0};
};

/// Generates `cfg.num_tasks * cfg.num_releases` tasks, sorted by arrival
/// time. All randomness comes from `rng` (deterministic given the seed).
std::vector<Task> generate_workload(const WorkloadConfig& cfg,
                                    Xoshiro256ss& rng);

/// Draws the non-arrival fields of one task (processing, affinity,
/// reclaimable slack, start-time offset, deadline) with exactly the rng
/// draw order generate_workload uses per task. This is the shared task-body
/// distribution: the open-arrival sources (tasks/arrival_source.h) pair it
/// with their own arrival processes, so a streamed task population is
/// statistically identical to a generated closed workload with the same
/// config. Does not validate `cfg` (generate_workload and the sources do).
Task draw_task_body(const WorkloadConfig& cfg, TaskId id, SimTime arrival,
                    Xoshiro256ss& rng);

/// Throws InvalidArgument unless the task-body fields of `cfg` (processing
/// range, affinity degree, laxity range, start offset, actual fractions,
/// processor count) are valid. Shared by generate_workload and the
/// open-arrival sources.
void validate_task_body_config(const WorkloadConfig& cfg);

/// Splits a workload (sorted by arrival) into the sub-vector of tasks with
/// arrival in the half-open window [from, to). Used by the phase loop to
/// collect arrivals during a scheduling phase.
std::vector<Task> arrivals_in_window(const std::vector<Task>& sorted_tasks,
                                     SimTime from, SimTime to);

}  // namespace rtds::tasks
