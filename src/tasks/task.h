// The real-time task model of Sec. 2.
//
// A task T_i is aperiodic, non-preemptable and independent, characterized by
// an arrival time a_i, a processing time p_i, a deadline d_i, and a
// communication cost c_ij toward each processor P_j. In the paper's
// cut-through (wormhole) cost model c_ij is 0 when T_i has affinity with P_j
// (its referenced data lives in P_j's local memory) and a constant C
// otherwise; affinity is therefore represented as a per-task processor set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/time.h"

namespace rtds::tasks {

using TaskId = std::uint32_t;
using ProcessorId = std::uint32_t;

/// Set of worker processors a task has affinity with. Bitmask over worker
/// ids; supports up to 64 workers, far above the paper's 2..10 range.
class AffinitySet {
 public:
  static constexpr std::uint32_t kMaxProcessors = 64;

  AffinitySet() = default;

  static AffinitySet all(std::uint32_t num_processors) {
    check_count(num_processors);
    AffinitySet s;
    s.bits_ = (num_processors == kMaxProcessors)
                  ? ~std::uint64_t{0}
                  : ((std::uint64_t{1} << num_processors) - 1);
    return s;
  }

  static AffinitySet none() { return AffinitySet{}; }

  static AffinitySet single(ProcessorId p) {
    AffinitySet s;
    s.add(p);
    return s;
  }

  void add(ProcessorId p) {
    check_id(p);
    bits_ |= (std::uint64_t{1} << p);
  }
  void remove(ProcessorId p) {
    check_id(p);
    bits_ &= ~(std::uint64_t{1} << p);
  }
  [[nodiscard]] bool contains(ProcessorId p) const {
    check_id(p);
    return (bits_ >> p) & 1u;
  }
  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(__builtin_popcountll(bits_));
  }
  [[nodiscard]] std::uint64_t raw() const { return bits_; }

  [[nodiscard]] AffinitySet intersect(AffinitySet o) const {
    AffinitySet s;
    s.bits_ = bits_ & o.bits_;
    return s;
  }
  [[nodiscard]] AffinitySet unite(AffinitySet o) const {
    AffinitySet s;
    s.bits_ = bits_ | o.bits_;
    return s;
  }

  /// Worker ids in ascending order.
  [[nodiscard]] std::vector<ProcessorId> to_vector() const;

  bool operator==(const AffinitySet&) const = default;

 private:
  static void check_id(ProcessorId p) {
    RTDS_REQUIRE(p < kMaxProcessors, "AffinitySet: processor id out of range");
  }
  static void check_count(std::uint32_t n) {
    RTDS_REQUIRE(n <= kMaxProcessors, "AffinitySet: too many processors");
  }
  std::uint64_t bits_{0};
};

/// One real-time task (Sec. 2). Value type; immutable after generation.
struct Task {
  TaskId id{0};
  SimTime arrival{SimTime::zero()};       ///< a_i
  SimDuration processing{SimDuration::zero()};  ///< p_i (worst case)
  SimTime deadline{SimTime::zero()};      ///< d_i (absolute)
  AffinitySet affinity;                   ///< processors with c_ij == 0

  /// Earliest permissible execution start (footnote 1 of the paper: the
  /// uniprocessor ancestor of this model carries both deadline and
  /// start-time constraints, which is what makes sequencing NP-complete).
  /// Zero means "no constraint beyond arrival". A worker may not begin the
  /// task before this instant; the search's feasibility test accounts for
  /// the induced idling.
  SimTime earliest_start{SimTime::zero()};

  /// Actual execution demand, when known to be below the worst case the
  /// scheduler plans with. Zero means "equal to `processing`". Used by the
  /// resource-reclaiming extension (Shen/Ramamritham/Stankovic, the
  /// paper's ref [3]): schedulers always plan with `processing`; a
  /// reclaiming cluster executes `actual_processing` and starts the next
  /// queued task early. Must never exceed `processing`.
  SimDuration actual_processing{SimDuration::zero()};

  /// Gang width (job parallelism, arXiv:0805.3237): the task occupies this
  /// many workers simultaneously for its whole execution. The scheduler
  /// places the *lead* worker w and the job then claims the contiguous
  /// block [w, w+workers_required); communication cost is priced against
  /// the lead's affinity only. 1 (the default) is the paper's sequential
  /// task model.
  std::uint32_t workers_required{1};

  /// The demand a worker actually executes.
  [[nodiscard]] SimDuration effective_processing() const {
    return actual_processing.is_zero() ? processing : actual_processing;
  }

  /// Communication cost c_ij for executing on worker p, given the machine's
  /// constant cut-through cost C.
  [[nodiscard]] SimDuration comm_cost(ProcessorId p,
                                      SimDuration constant_c) const {
    return affinity.contains(p) ? SimDuration::zero() : constant_c;
  }

  /// Total execution cost p_i + c_ij on worker p.
  [[nodiscard]] SimDuration execution_cost(ProcessorId p,
                                           SimDuration constant_c) const {
    return processing + comm_cost(p, constant_c);
  }

  /// Slack at time t: the maximum delay before execution must start for
  /// the deadline to hold (footnote in Sec. 4.2): d_i - t - p_i, where t
  /// is pushed forward to any start-time constraint. Can be negative once
  /// the deadline is no longer reachable.
  [[nodiscard]] SimDuration slack_at(SimTime t) const {
    const SimTime effective = earliest_start > t ? earliest_start : t;
    return (deadline - effective) - processing;
  }

  /// The paper culls tasks whose deadline can no longer be met even with
  /// immediate execution: p_i + t_c > d_i (with t_c pushed forward to the
  /// start-time constraint).
  [[nodiscard]] bool deadline_unreachable(SimTime t) const {
    const SimTime effective = earliest_start > t ? earliest_start : t;
    return effective + processing > deadline;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace rtds::tasks
