// The distributed relational database of Sec. 5.
//
// A global database of r tuples is divided into d sub-databases; each
// sub-database holds `records_per_subdb` records with `num_attributes`
// attributes whose value domains are DISJOINT across sub-databases (the
// paper's simplification). A value therefore identifies its owning
// sub-database, which is the "hashing function" the paper uses to locate
// tuples. Sub-databases are indexed on a key attribute (attribute #0 here,
// "attribute #1" in the paper); the host processor keeps the global index
// file and uses it to estimate worst-case transaction execution costs:
//
//   Execution_Cost(q) = k * ( frequency of the matching key value,  if the
//                             key attribute is among q's predicates;
//                             r/d (a full sub-database scan) otherwise )
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace rtds::db {

/// Encoded attribute value. The encoding ((subdb * A + attr) * domain + off)
/// keeps domains disjoint across sub-databases and attributes, and makes
/// value -> owning-sub-database lookup a constant-time division.
using AttrValue = std::uint32_t;

/// One tuple: one value per attribute.
using Record = std::vector<AttrValue>;

/// Shape of the database (defaults are the paper's experiment design).
struct DatabaseConfig {
  std::uint32_t num_subdbs{10};
  std::uint32_t records_per_subdb{1000};
  std::uint32_t num_attributes{10};
  /// Distinct values per (sub-database, attribute) domain. Values are drawn
  /// uniformly, so a key value matches ~records_per_subdb/domain_size
  /// tuples on average.
  std::uint32_t domain_size{100};
  /// k — processing time of one checking iteration (one tuple inspected).
  SimDuration check_cost{usec(20)};

  [[nodiscard]] std::uint64_t total_records() const {
    return std::uint64_t(num_subdbs) * records_per_subdb;
  }
};

/// The key attribute sub-databases are indexed on.
inline constexpr std::uint32_t kKeyAttribute = 0;

/// One equality predicate of a read-only transaction.
struct Predicate {
  std::uint32_t attribute{0};
  AttrValue value{0};
};

/// A read-only select transaction (Sec. 5): locate the tuples matching a
/// conjunction of attribute-value predicates. Domains are disjoint across
/// sub-databases, so all predicate values of a well-formed transaction
/// belong to one sub-database.
struct Transaction {
  std::uint32_t id{0};
  std::uint32_t subdb{0};  ///< owning sub-database of the predicate values
  std::vector<Predicate> predicates;

  [[nodiscard]] bool references_key() const {
    for (const Predicate& p : predicates) {
      if (p.attribute == kKeyAttribute) return true;
    }
    return false;
  }
};

/// Matching semantics for transaction execution.
enum class QueryMode {
  kAllMatches,  ///< check every candidate tuple (worst case == actual)
  kFirstMatch,  ///< stop at the first satisfying tuple (point lookup);
                ///< actual checked count can be far below the worst case,
                ///< which is what makes resource reclaiming profitable
};

/// Result of actually executing a transaction against a sub-database.
struct QueryResult {
  std::uint32_t matched{0};  ///< tuples satisfying every predicate
  std::uint32_t checked{0};  ///< tuples inspected (the real cost driver)
};

/// One partition: records plus a key-attribute index.
class SubDatabase {
 public:
  SubDatabase(std::uint32_t subdb_id, const DatabaseConfig& config,
              Xoshiro256ss& rng);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const std::vector<Record>& records() const {
    return records_;
  }

  /// Rows whose key attribute equals `value` (index probe).
  [[nodiscard]] std::vector<std::uint32_t> key_lookup(AttrValue value) const;

  /// Executes a transaction: uses the key index when the transaction
  /// constrains the key attribute, otherwise scans all records, checking
  /// every predicate ("iterating a checking process among the tuples").
  /// kFirstMatch stops at the first satisfying tuple.
  [[nodiscard]] QueryResult execute(
      const Transaction& txn, QueryMode mode = QueryMode::kAllMatches) const;

 private:
  std::uint32_t id_;
  std::vector<Record> records_;
  std::unordered_map<AttrValue, std::vector<std::uint32_t>> key_index_;
};

/// The partitioned global database plus the host's global index file.
class GlobalDatabase {
 public:
  /// Populates every sub-database; all randomness comes from `rng`.
  GlobalDatabase(DatabaseConfig config, Xoshiro256ss& rng);

  [[nodiscard]] const DatabaseConfig& config() const { return config_; }
  [[nodiscard]] const SubDatabase& subdb(std::uint32_t s) const;
  [[nodiscard]] std::uint32_t num_subdbs() const {
    return config_.num_subdbs;
  }

  // -- value encoding ------------------------------------------------------
  [[nodiscard]] AttrValue encode(std::uint32_t subdb, std::uint32_t attribute,
                                 std::uint32_t offset) const;
  [[nodiscard]] std::uint32_t owner_subdb(AttrValue value) const;
  [[nodiscard]] std::uint32_t attribute_of(AttrValue value) const;

  // -- host-side estimation (Sec. 5) ---------------------------------------
  /// Frequency of `value` in the global key index (0 if absent).
  [[nodiscard]] std::uint32_t key_frequency(AttrValue value) const;

  /// The paper's worst-case cost estimate for a transaction. Never zero:
  /// even a transaction on an absent key value costs one checking
  /// iteration to discover that.
  [[nodiscard]] SimDuration estimate_cost(const Transaction& txn) const;

  /// Executes `txn` against its sub-database (ground truth for tests:
  /// estimate_cost / check_cost must upper-bound QueryResult::checked).
  [[nodiscard]] QueryResult execute(
      const Transaction& txn, QueryMode mode = QueryMode::kAllMatches) const;

  /// Actual execution cost of `txn` under the given semantics:
  /// checked-tuple count (at least one) times the per-check cost. Always
  /// <= estimate_cost(txn).
  [[nodiscard]] SimDuration actual_cost(
      const Transaction& txn, QueryMode mode = QueryMode::kAllMatches) const;

 private:
  DatabaseConfig config_;
  std::vector<SubDatabase> subdbs_;
  /// Global key-index file kept by the host (value -> frequency). Values
  /// are disjoint across sub-databases, so aggregation is a plain merge.
  std::unordered_map<AttrValue, std::uint32_t> global_key_index_;
};

}  // namespace rtds::db
