#include "db/database.h"

#include "common/error.h"

namespace rtds::db {

namespace {

void validate(const DatabaseConfig& c) {
  RTDS_REQUIRE(c.num_subdbs >= 1, "DatabaseConfig: need >= 1 sub-database");
  RTDS_REQUIRE(c.records_per_subdb >= 1, "DatabaseConfig: need records");
  RTDS_REQUIRE(c.num_attributes >= 1, "DatabaseConfig: need attributes");
  RTDS_REQUIRE(c.domain_size >= 1, "DatabaseConfig: need a domain");
  RTDS_REQUIRE(c.check_cost > SimDuration::zero(),
               "DatabaseConfig: check cost must be positive");
  // The encoding must fit in 32 bits.
  const std::uint64_t top = std::uint64_t(c.num_subdbs) * c.num_attributes *
                            c.domain_size;
  RTDS_REQUIRE(top <= std::uint64_t{1} << 32,
               "DatabaseConfig: value encoding overflows 32 bits");
}

}  // namespace

SubDatabase::SubDatabase(std::uint32_t subdb_id, const DatabaseConfig& config,
                         Xoshiro256ss& rng)
    : id_(subdb_id) {
  records_.reserve(config.records_per_subdb);
  for (std::uint32_t r = 0; r < config.records_per_subdb; ++r) {
    Record rec(config.num_attributes);
    for (std::uint32_t a = 0; a < config.num_attributes; ++a) {
      const auto offset = static_cast<std::uint32_t>(
          rng.uniform_int(0, std::int64_t(config.domain_size) - 1));
      rec[a] = (std::uint32_t(subdb_id) * config.num_attributes + a) *
                   config.domain_size +
               offset;
    }
    key_index_[rec[kKeyAttribute]].push_back(r);
    records_.push_back(std::move(rec));
  }
}

std::vector<std::uint32_t> SubDatabase::key_lookup(AttrValue value) const {
  auto it = key_index_.find(value);
  if (it == key_index_.end()) return {};
  return it->second;
}

QueryResult SubDatabase::execute(const Transaction& txn,
                                 QueryMode mode) const {
  QueryResult result;
  const auto matches = [&](const Record& rec) {
    for (const Predicate& p : txn.predicates) {
      RTDS_REQUIRE(p.attribute < rec.size(),
                   "execute: predicate attribute out of range");
      if (rec[p.attribute] != p.value) return false;
    }
    return true;
  };
  const auto check = [&](const Record& rec) {
    ++result.checked;
    if (matches(rec)) {
      ++result.matched;
      return mode == QueryMode::kFirstMatch;  // stop on first hit
    }
    return false;
  };

  if (txn.references_key()) {
    // Index probe on the key predicate, then verify remaining predicates.
    AttrValue key_value = 0;
    for (const Predicate& p : txn.predicates) {
      if (p.attribute == kKeyAttribute) {
        key_value = p.value;
        break;
      }
    }
    for (std::uint32_t row : key_lookup(key_value)) {
      if (check(records_[row])) break;
    }
  } else {
    for (const Record& rec : records_) {
      if (check(rec)) break;
    }
  }
  return result;
}

GlobalDatabase::GlobalDatabase(DatabaseConfig config, Xoshiro256ss& rng)
    : config_(config) {
  validate(config_);
  subdbs_.reserve(config_.num_subdbs);
  for (std::uint32_t s = 0; s < config_.num_subdbs; ++s) {
    subdbs_.emplace_back(s, config_, rng);
    // Merge this partition's key index into the host's global index file.
    for (const Record& rec : subdbs_.back().records()) {
      ++global_key_index_[rec[kKeyAttribute]];
    }
  }
}

const SubDatabase& GlobalDatabase::subdb(std::uint32_t s) const {
  RTDS_REQUIRE(s < subdbs_.size(), "subdb: id out of range");
  return subdbs_[s];
}

AttrValue GlobalDatabase::encode(std::uint32_t subdb, std::uint32_t attribute,
                                 std::uint32_t offset) const {
  RTDS_REQUIRE(subdb < config_.num_subdbs, "encode: bad sub-database");
  RTDS_REQUIRE(attribute < config_.num_attributes, "encode: bad attribute");
  RTDS_REQUIRE(offset < config_.domain_size, "encode: bad domain offset");
  return (subdb * config_.num_attributes + attribute) * config_.domain_size +
         offset;
}

std::uint32_t GlobalDatabase::owner_subdb(AttrValue value) const {
  const std::uint32_t s =
      value / (config_.num_attributes * config_.domain_size);
  RTDS_REQUIRE(s < config_.num_subdbs, "owner_subdb: value out of range");
  return s;
}

std::uint32_t GlobalDatabase::attribute_of(AttrValue value) const {
  return (value / config_.domain_size) % config_.num_attributes;
}

std::uint32_t GlobalDatabase::key_frequency(AttrValue value) const {
  auto it = global_key_index_.find(value);
  return it == global_key_index_.end() ? 0 : it->second;
}

SimDuration GlobalDatabase::estimate_cost(const Transaction& txn) const {
  RTDS_REQUIRE(!txn.predicates.empty(),
               "estimate_cost: transaction with no predicates");
  std::uint64_t iterations = config_.records_per_subdb;  // r/d
  if (txn.references_key()) {
    for (const Predicate& p : txn.predicates) {
      if (p.attribute == kKeyAttribute) {
        iterations = key_frequency(p.value);
        break;
      }
    }
    if (iterations == 0) iterations = 1;  // discovering absence costs a probe
  }
  return config_.check_cost * std::int64_t(iterations);
}

QueryResult GlobalDatabase::execute(const Transaction& txn,
                                    QueryMode mode) const {
  RTDS_REQUIRE(txn.subdb < subdbs_.size(), "execute: bad sub-database id");
  return subdbs_[txn.subdb].execute(txn, mode);
}

SimDuration GlobalDatabase::actual_cost(const Transaction& txn,
                                        QueryMode mode) const {
  const QueryResult r = execute(txn, mode);
  const std::uint32_t checks = r.checked == 0 ? 1 : r.checked;
  const SimDuration cost = config_.check_cost * std::int64_t(checks);
  return min_duration(cost, estimate_cost(txn));
}

}  // namespace rtds::db
