// Replication placement (Sec. 5.1).
//
// Based on the replication rate R, sub-databases are copied into the local
// memories of the processing nodes: each sub-database gets
// copies(R, m) = clamp(round(R * m), 1, m) replicas. At R = 10% with m = 10
// every sub-database lives on exactly one worker; at R = 100% every worker
// holds the whole global database. Replication rate and task-to-processor
// affinity are the same dial: a transaction's affinity set is exactly the
// holder set of its sub-database.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tasks/task.h"

namespace rtds::db {

using tasks::AffinitySet;
using tasks::ProcessorId;

class Placement {
 public:
  /// Deterministic rotation placement: copy c of sub-database s goes to
  /// worker (s + c) mod m. Spreads primaries and replicas evenly, as a
  /// striped database layout would.
  static Placement rotation(std::uint32_t num_subdbs,
                            std::uint32_t num_workers,
                            double replication_rate);

  /// Randomized placement: each sub-database's holders are a uniform
  /// random sample of copies(R, m) workers. Used to check the results do
  /// not depend on the rotation layout.
  static Placement random(std::uint32_t num_subdbs, std::uint32_t num_workers,
                          double replication_rate, Xoshiro256ss& rng);

  [[nodiscard]] std::uint32_t num_subdbs() const {
    return static_cast<std::uint32_t>(holders_.size());
  }
  [[nodiscard]] std::uint32_t num_workers() const { return num_workers_; }
  [[nodiscard]] std::uint32_t copies() const { return copies_; }
  [[nodiscard]] double replication_rate() const { return rate_; }

  /// Workers holding sub-database `subdb` in local memory.
  [[nodiscard]] const AffinitySet& holders(std::uint32_t subdb) const;

  /// Number of sub-databases worker `w` holds (for layout diagnostics).
  [[nodiscard]] std::uint32_t held_by(ProcessorId w) const;

  static std::uint32_t copies_for(std::uint32_t num_workers,
                                  double replication_rate);

 private:
  Placement(std::uint32_t num_workers, double rate, std::uint32_t copies,
            std::vector<AffinitySet> holders);

  std::uint32_t num_workers_;
  double rate_;
  std::uint32_t copies_;
  std::vector<AffinitySet> holders_;
};

}  // namespace rtds::db
