#include "db/transaction.h"

#include <cmath>

#include "common/error.h"

namespace rtds::db {

std::vector<Transaction> generate_transactions(
    const GlobalDatabase& database, const TransactionWorkloadConfig& config,
    Xoshiro256ss& rng) {
  const DatabaseConfig& db = database.config();
  const std::uint32_t max_preds =
      config.max_predicates == 0 ? db.num_attributes : config.max_predicates;
  RTDS_REQUIRE(max_preds <= db.num_attributes,
               "generate_transactions: more predicates than attributes");

  std::vector<Transaction> out;
  out.reserve(config.num_transactions);
  for (std::uint32_t i = 0; i < config.num_transactions; ++i) {
    Transaction txn;
    txn.id = i;
    txn.subdb = static_cast<std::uint32_t>(
        rng.uniform_int(0, std::int64_t(db.num_subdbs) - 1));

    const auto num_preds = static_cast<std::uint32_t>(
        rng.uniform_int(1, std::int64_t(max_preds)));
    for (std::size_t attr : rng.sample_indices(db.num_attributes, num_preds)) {
      Predicate p;
      p.attribute = static_cast<std::uint32_t>(attr);
      const auto offset = static_cast<std::uint32_t>(
          rng.uniform_int(0, std::int64_t(db.domain_size) - 1));
      p.value = database.encode(txn.subdb, p.attribute, offset);
      txn.predicates.push_back(p);
    }
    out.push_back(std::move(txn));
  }
  return out;
}

Task to_task(const Transaction& txn, const GlobalDatabase& database,
             const Placement& placement,
             const TransactionWorkloadConfig& config, tasks::TaskId id) {
  RTDS_REQUIRE(config.scaling_factor > 0.0, "to_task: SF must be positive");
  RTDS_REQUIRE(config.deadline_multiplier > 0.0,
               "to_task: deadline multiplier must be positive");
  Task t;
  t.id = id;
  t.arrival = config.burst_arrival;
  t.processing = database.estimate_cost(txn);
  const double window = config.scaling_factor * config.deadline_multiplier *
                        double(t.processing.us);
  t.deadline = t.arrival + SimDuration{std::int64_t(std::llround(window))};
  t.affinity = placement.holders(txn.subdb);
  RTDS_ASSERT_MSG(!t.affinity.empty(), "sub-database with no holder");
  if (config.fill_actual_costs) {
    t.actual_processing = database.actual_cost(txn, config.query_mode);
    RTDS_ASSERT(t.actual_processing <= t.processing);
  }
  return t;
}

std::vector<Task> to_tasks(const std::vector<Transaction>& txns,
                           const GlobalDatabase& database,
                           const Placement& placement,
                           const TransactionWorkloadConfig& config) {
  std::vector<Task> out;
  out.reserve(txns.size());
  tasks::TaskId id = config.first_task_id;
  for (const Transaction& txn : txns) {
    out.push_back(to_task(txn, database, placement, config, id++));
  }
  return out;
}

}  // namespace rtds::db
