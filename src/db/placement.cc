#include "db/placement.h"

#include <cmath>

#include "common/error.h"

namespace rtds::db {

Placement::Placement(std::uint32_t num_workers, double rate,
                     std::uint32_t copies, std::vector<AffinitySet> holders)
    : num_workers_(num_workers),
      rate_(rate),
      copies_(copies),
      holders_(std::move(holders)) {}

std::uint32_t Placement::copies_for(std::uint32_t num_workers,
                                    double replication_rate) {
  RTDS_REQUIRE(num_workers >= 1, "Placement: need >= 1 worker");
  RTDS_REQUIRE(replication_rate > 0.0 && replication_rate <= 1.0,
               "Placement: replication rate outside (0,1]");
  const auto copies = static_cast<std::uint32_t>(
      std::llround(replication_rate * double(num_workers)));
  return std::max<std::uint32_t>(1, std::min(copies, num_workers));
}

Placement Placement::rotation(std::uint32_t num_subdbs,
                              std::uint32_t num_workers,
                              double replication_rate) {
  RTDS_REQUIRE(num_subdbs >= 1, "Placement: need >= 1 sub-database");
  const std::uint32_t copies = copies_for(num_workers, replication_rate);
  std::vector<AffinitySet> holders(num_subdbs);
  for (std::uint32_t s = 0; s < num_subdbs; ++s) {
    for (std::uint32_t c = 0; c < copies; ++c) {
      holders[s].add((s + c) % num_workers);
    }
  }
  return Placement(num_workers, replication_rate, copies, std::move(holders));
}

Placement Placement::random(std::uint32_t num_subdbs,
                            std::uint32_t num_workers,
                            double replication_rate, Xoshiro256ss& rng) {
  RTDS_REQUIRE(num_subdbs >= 1, "Placement: need >= 1 sub-database");
  const std::uint32_t copies = copies_for(num_workers, replication_rate);
  std::vector<AffinitySet> holders(num_subdbs);
  for (std::uint32_t s = 0; s < num_subdbs; ++s) {
    for (std::size_t w : rng.sample_indices(num_workers, copies)) {
      holders[s].add(static_cast<ProcessorId>(w));
    }
  }
  return Placement(num_workers, replication_rate, copies, std::move(holders));
}

const AffinitySet& Placement::holders(std::uint32_t subdb) const {
  RTDS_REQUIRE(subdb < holders_.size(), "holders: bad sub-database id");
  return holders_[subdb];
}

std::uint32_t Placement::held_by(ProcessorId w) const {
  std::uint32_t count = 0;
  for (const AffinitySet& h : holders_) {
    if (h.contains(w)) ++count;
  }
  return count;
}

}  // namespace rtds::db
