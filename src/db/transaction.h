// Transaction workload generation and the transaction -> real-time-task
// adapter (Sec. 5.1).
//
// The paper's experiment design: 1000 transactions arrive in a single burst
// at the host. Each transaction carries a uniformly distributed number of
// attribute-value predicates, values picked equiprobably from their domains
// (all from one sub-database, since domains are disjoint across
// sub-databases). Deadlines are proportional to the estimated worst-case
// processing time:
//     Deadline(q) = SF * 10 * Estimated_Cost(q),   SF in [1, 3]
// and the task's affinity set is the replica holder set of the
// transaction's sub-database.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "db/database.h"
#include "db/placement.h"
#include "tasks/task.h"

namespace rtds::db {

using tasks::Task;

/// Parameters for generating the transaction stream.
struct TransactionWorkloadConfig {
  std::uint32_t num_transactions{1000};

  /// Upper bound on the number of predicates per transaction; the count is
  /// uniform in [1, max_predicates]. 0 means "number of attributes".
  std::uint32_t max_predicates{0};

  /// SF — the paper's laxity / deadline scaling factor (1 = tight,
  /// 3 = loose).
  double scaling_factor{1.0};

  /// The fixed 10x in the paper's deadline formula.
  double deadline_multiplier{10.0};

  /// All transactions arrive in one burst at this time (Sec. 5.1).
  SimTime burst_arrival{SimTime::zero()};

  /// Resource-reclaiming extension: when true, each task also carries its
  /// ACTUAL execution cost (obtained by executing the transaction under
  /// `query_mode`), which a ReclaimMode::kReclaim cluster uses to start
  /// queued work early. Schedulers always plan with the worst case.
  bool fill_actual_costs{false};
  QueryMode query_mode{QueryMode::kFirstMatch};

  std::uint32_t first_task_id{0};
};

/// Generates the transaction stream. Predicate attributes are a distinct
/// uniform sample; values are uniform over the chosen sub-database's
/// domains.
std::vector<Transaction> generate_transactions(
    const GlobalDatabase& database, const TransactionWorkloadConfig& config,
    Xoshiro256ss& rng);

/// Converts one transaction into a schedulable real-time task:
/// p = Estimated_Cost(q), d = arrival + SF * 10 * Estimated_Cost(q),
/// affinity = holders of q's sub-database.
Task to_task(const Transaction& txn, const GlobalDatabase& database,
             const Placement& placement,
             const TransactionWorkloadConfig& config, tasks::TaskId id);

/// Converts the whole stream, sorted by arrival (all equal for a burst).
std::vector<Task> to_tasks(const std::vector<Transaction>& txns,
                           const GlobalDatabase& database,
                           const Placement& placement,
                           const TransactionWorkloadConfig& config);

}  // namespace rtds::db
