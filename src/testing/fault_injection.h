// Deterministic delivery-refusal fault injection.
//
// FaultInjectingBackend decorates any ExecutionBackend and refuses every
// Nth assignment handed to deliver(), regardless of what the inner backend
// would have done. Refusals are exactly what a bounded mailbox produces
// under overload, so the pipeline's readmission / rejection / backpressure
// machinery is driven through the SAME code paths — but deterministically,
// on every backend including the DES ones, which makes the resulting runs
// replayable bit-for-bit from a scenario token (a real threaded overflow
// depends on wall-clock races and is not).
//
// The decorator forwards everything else untouched, so wrapping a
// SimBackend and a PartitionedBackend host with the same period keeps them
// in exact metric parity: both see the identical refusal sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/backend.h"

namespace rtds::testing {

class FaultInjectingBackend final : public sched::ExecutionBackend {
 public:
  /// Refuses every `refusal_period`-th assignment (counted across the whole
  /// run); 0 disables injection. The inner backend must outlive this.
  FaultInjectingBackend(sched::ExecutionBackend& inner,
                        std::uint32_t refusal_period)
      : inner_(inner), refusal_period_(refusal_period) {}

  [[nodiscard]] std::uint32_t num_workers() const override {
    return inner_.num_workers();
  }
  [[nodiscard]] const machine::Interconnect& interconnect() const override {
    return inner_.interconnect();
  }
  [[nodiscard]] SimTime now() const override { return inner_.now(); }
  [[nodiscard]] SimDuration load(std::uint32_t worker,
                                 SimTime t) const override {
    return inner_.load(worker, t);
  }
  void wait_until(SimTime t) override { inner_.wait_until(t); }
  void advance(SimDuration host_busy) override { inner_.advance(host_busy); }

  sched::DeliveryResult deliver(
      const std::vector<machine::ScheduledAssignment>& schedule) override {
    if (refusal_period_ == 0) return inner_.deliver(schedule);
    std::vector<machine::ScheduledAssignment> pass;
    sched::DeliveryResult out;
    pass.reserve(schedule.size());
    for (const machine::ScheduledAssignment& sa : schedule) {
      if (++delivery_counter_ % refusal_period_ == 0) {
        out.undelivered.push_back(sa);
        ++injected_refusals_;
      } else {
        pass.push_back(sa);
      }
    }
    sched::DeliveryResult inner_result = inner_.deliver(pass);
    out.accepted = inner_result.accepted;
    for (machine::ScheduledAssignment& sa : inner_result.undelivered) {
      out.undelivered.push_back(std::move(sa));
    }
    return out;
  }

  sched::BackendStats drain() override { return inner_.drain(); }
  void bind_ledger(sched::TaskLedger* ledger) override {
    inner_.bind_ledger(ledger);
  }

  [[nodiscard]] std::uint64_t injected_refusals() const {
    return injected_refusals_;
  }

 private:
  sched::ExecutionBackend& inner_;
  std::uint32_t refusal_period_;
  std::uint64_t delivery_counter_{0};
  std::uint64_t injected_refusals_{0};
};

}  // namespace rtds::testing
