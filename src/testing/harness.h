// Cross-backend differential fuzz harness.
//
// run_scenario() drives ONE Scenario through the three ExecutionBackend
// deployments of the phase pipeline and evaluates the oracle registry
// (testing/oracles.h) over everything observable:
//
//   sim          SimBackend (DES) — ledger + phase trace + execution-log
//                validation; fault injection via FaultInjectingBackend
//   partitioned  PartitionedBackend single host — must match the sim run
//                field-for-field (metric-parity oracle); the same injected
//                refusal sequence is applied so overload paths stay in
//                lockstep. When the scenario shards > 1, an additional
//                multi-shard run_partitioned() audits per-shard theorem +
//                cross-shard conservation.
//   threaded     runtime::ThreadedBackend — real threads, wall clock;
//                conservation always, count parity on parity-class
//                scenarios (deadlines far beyond wall-clock jitter)
//
// Open scenarios (Scenario::open_arrival != 0) drive every backend through
// PhasePipeline::run_stream instead: each run pulls the identical
// deterministic task stream from its own ArrivalSource, admission control
// applies scenario.max_pending, and the schedule-latency digest is checked
// by the stream-accounting oracle (and sample-for-sample DES parity).
//
// Any InvariantViolation thrown inside the library (the pipeline's own
// asserts, the ledger's transition checks) is caught and reported as a
// violation of that backend's run rather than aborting the sweep, so the
// shrinker can minimize crashing scenarios too.
//
// HarnessOptions::mutation deliberately corrupts the observed state AFTER a
// run — it exists so the test suite can prove the oracles actually fire and
// the shrinker actually minimizes (a fuzzer whose failure path is never
// exercised is worse than none).
#pragma once

#include <string>
#include <vector>

#include "testing/oracles.h"
#include "testing/scenario.h"

namespace rtds::testing {

/// Self-test fault injection: corrupts observed run state before the
/// oracles see it, simulating the bug class each oracle exists to catch.
enum class Mutation {
  kNone,
  /// Silently lose one deadline hit from the sim run's books — the PR-1
  /// mailbox-overflow bug class. Caught by the conservation oracle.
  kLoseHit,
  /// Inflate one phase's recorded Q_s — caught by the quantum-bound oracle.
  kCorruptQuantum,
  /// Hand the gang-occupancy oracle a doctored workload whose executed gang
  /// tasks declare one worker more than they were given — the split-gang
  /// bug class. Fires ONLY when a gang actually executed, which is what
  /// makes it the seed for the shrinker's gang-preservation test: a shrink
  /// candidate that drops the gang dial also drops the failure, so the
  /// minimal scenario must keep a gang.
  kCorruptGangWidth,
};

struct HarnessOptions {
  bool run_threaded{true};
  /// Wall-clock compression for the threaded backend (execution sleeps are
  /// scaled by this; the DES figures are unaffected).
  double threaded_time_scale{0.02};
  Mutation mutation{Mutation::kNone};
};

/// Outcome of one scenario across all backends.
struct ScenarioResult {
  Scenario scenario;
  std::string token;  ///< replay token (encode_token(scenario))
  std::vector<std::string> violations;

  BackendRun sim;
  BackendRun partitioned;
  BackendRun threaded;
  std::vector<BackendRun> shard_runs;  ///< multi-shard audit (shards > 1)
  bool threaded_ran{false};

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

ScenarioResult run_scenario(const Scenario& scenario,
                            const HarnessOptions& options = {});

}  // namespace rtds::testing
