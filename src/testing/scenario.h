// Fuzz scenarios: the seed-driven input domain of the stress subsystem.
//
// A Scenario is the COMPLETE description of one adversarial run — workload
// shape (count, arrival burstiness, processing spread, affinity, laxity/SF,
// start-time offsets, reclaimable slack), machine shape (workers, shards,
// interconnect cost), pipeline knobs (vertex cost, phase overhead, delivery
// budget, backpressure), quantum policy, algorithm under test, and the
// fault-injection dials (deterministic delivery refusal, tiny threaded
// mailboxes). Every field is an integer so a scenario serializes exactly:
// encode_token() emits a one-line replay token and decode_token() restores
// the scenario bit-for-bit, which is what makes any CI fuzz failure
// reproducible with `rtds_fuzz --replay <token>`.
//
// generate_scenario(base_seed, index) draws a scenario from the fuzz
// distribution — deterministic in (base_seed, index) via the common/rng
// substream helpers, so the CI sweep is itself a pure function of one seed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tasks/arrival_source.h"
#include "tasks/task.h"
#include "tasks/workload.h"

namespace rtds::testing {

/// Arrival pattern codes (mirrors tasks::ArrivalPattern; integral so the
/// replay token stays a flat list of numbers).
enum : std::uint32_t {
  kArrivalBursty = 0,
  kArrivalPoisson = 1,
  kArrivalPeriodicBurst = 2,
};

/// Open-arrival codes (Scenario::open_arrival): 0 keeps the classic closed
/// run; anything else replaces the workload vector with a streaming
/// ArrivalSource of that shape, driven through PhasePipeline::run_stream.
enum : std::uint32_t {
  kOpenClosed = 0,
  kOpenPoisson = 1,
  kOpenOnOff = 2,
  kOpenSporadic = 3,
  /// Periodic release train from release_period_us / release_jitter_us
  /// (NOT the stream_* gap fields, whose ranges could violate the
  /// jitter <= period contract).
  kOpenPeriodic = 4,
};

/// One complete fuzz case. Defaults form a small valid scenario; the
/// generator overwrites every field. Durations in integer microseconds,
/// ratios in permille / centi so the token encoding is exact; the one
/// string field (the algorithm spec) is hex-encoded in the token.
struct Scenario {
  std::uint64_t seed{1};  ///< workload randomness (independent substream)

  // -- machine ---------------------------------------------------------------
  std::uint32_t workers{4};
  std::uint32_t num_shards{1};  ///< divides workers; >1 adds a sharded run
  std::int64_t comm_cost_us{2000};
  std::uint32_t reclaim{0};  ///< 1 = ReclaimMode::kReclaim

  // -- workload --------------------------------------------------------------
  std::uint32_t num_tasks{80};
  std::uint32_t arrival_kind{kArrivalBursty};
  std::int64_t mean_interarrival_us{300};
  std::uint32_t burst_size{8};
  std::int64_t burst_interval_us{5000};
  std::int64_t processing_min_us{200};
  std::int64_t processing_max_us{2000};
  std::uint32_t affinity_permille{500};
  std::uint32_t laxity_min_centi{300};  ///< laxity = centi / 100 (SF sweeps)
  std::uint32_t laxity_max_centi{800};
  std::int64_t max_start_offset_us{0};
  std::uint32_t actual_fraction_min_permille{1000};
  std::uint32_t actual_fraction_max_permille{1000};

  // -- pipeline --------------------------------------------------------------
  std::int64_t vertex_cost_us{10};
  std::int64_t phase_overhead_us{50};
  std::uint32_t max_delivery_attempts{8};
  std::int64_t backpressure_us{200};

  // -- quantum policy --------------------------------------------------------
  std::uint32_t quantum_kind{0};  ///< 0 self-adjusting, 1 fixed
  std::int64_t min_quantum_us{200};
  std::int64_t max_quantum_us{10000};
  std::int64_t fixed_quantum_us{2000};

  // -- algorithm -------------------------------------------------------------
  /// Registry spec of the algorithm under test (sched/registry.h). Any
  /// portfolio member can be fuzzed; the oracles (correction theorem,
  /// conservation, schedule validity, parity) hold for all of them.
  std::string algo_spec{"rt_sads"};

  // -- fault injection -------------------------------------------------------
  /// Deterministically refuse every Nth delivered assignment (0 = off).
  /// Works on every backend via FaultInjectingBackend, so the readmission /
  /// rejection / backpressure machinery is exercised even on the DES.
  std::uint32_t refusal_period{0};
  std::uint32_t mailbox_capacity{64};  ///< threaded ready-queue depth
  std::uint32_t delivery_retries{1};   ///< threaded push retries when full

  // -- open arrivals ---------------------------------------------------------
  /// kOpenClosed, or the streaming source shape (kOpenPoisson / kOpenOnOff /
  /// kOpenSporadic). Open scenarios run the same `num_tasks` task bodies
  /// through run_stream instead of run; the oracle suite applies unchanged.
  std::uint32_t open_arrival{kOpenClosed};
  std::int64_t stream_mean_gap_us{300};  ///< Poisson mean / ON gap / sporadic extra
  std::int64_t stream_min_gap_us{100};   ///< sporadic minimum inter-arrival
  std::uint32_t stream_burst_len{6};     ///< ON-OFF tasks per burst
  std::int64_t stream_off_us{3000};      ///< ON-OFF silence between bursts
  /// StreamOptions::max_pending admission bound (0 = no admission control).
  std::uint32_t max_pending{0};

  // -- task models (rtds4) ---------------------------------------------------
  /// Gang/moldable jobs: each task is a gang with probability
  /// gang_permille/1000, width uniform in [2, gang_max_workers]. Gang
  /// scenarios are single-shard by construction (a gang wider than a shard
  /// could never be placed).
  std::uint32_t gang_permille{0};
  std::uint32_t gang_max_workers{2};
  /// Periodic releases: each logical task re-releases num_releases times
  /// every release_period_us with fresh deadlines (closed runs), and
  /// kOpenPeriodic streams release trains of this period with per-release
  /// jitter uniform in [0, release_jitter_us] (jitter <= period).
  std::int64_t release_period_us{0};
  std::uint32_t num_releases{1};
  std::int64_t release_jitter_us{0};

  // -- capacity (rtds5) ------------------------------------------------------
  /// Big-batch capacity dial: 1 marks a scenario drawn from (or forced
  /// into) the capacity profile — one closed burst of 65536..200000 tasks
  /// through the wide-header search path (DES only, single shard, no
  /// gangs/releases/faults, generous laxity so the batch is schedulable).
  /// The flag itself is informational; the profile lives in the field
  /// overrides apply_big_batch_profile() makes.
  std::uint32_t big_batch{0};

  // -- harness shape ---------------------------------------------------------
  std::uint32_t run_threaded{1};
  /// Parity-eligible construction: bursty arrivals, laxity far beyond
  /// wall-clock jitter, no fault injection, roomy mailboxes — the regime in
  /// which the threaded backend must agree with the DES on scheduled /
  /// culled / hit counts (see docs/FUZZING.md).
  std::uint32_t parity_class{0};

  bool operator==(const Scenario&) const = default;

  [[nodiscard]] tasks::WorkloadConfig workload_config() const;
  [[nodiscard]] std::string to_string() const;
};

/// Materializes the scenario's workload (deterministic in scenario.seed).
std::vector<tasks::Task> make_workload(const Scenario& scenario);

/// Builds the scenario's streaming source (deterministic in scenario.seed;
/// every call returns an identical task stream). Requires an open scenario.
std::unique_ptr<tasks::ArrivalSource> make_stream_source(
    const Scenario& scenario);

/// The full task stream an open scenario will emit, sorted by arrival —
/// for oracles (schedule validity) that need the offered task population.
std::vector<tasks::Task> make_stream_tasks(const Scenario& scenario);

/// Draws scenario `index` of the sweep rooted at `base_seed`.
Scenario generate_scenario(std::uint64_t base_seed, std::uint64_t index);

/// Reshapes `s` into the big-batch capacity profile (Scenario::big_batch):
/// one closed burst of 65536..200000 single-width tasks, DES only, generous
/// laxity, a large quantum, and a search-family algorithm — the fuzz-side
/// regression for the lifted 65535-task cap. Used by the generator's
/// capacity slice and by `rtds_fuzz --big-batch`; draws come from `rng`.
void apply_big_batch_profile(Scenario& s, Xoshiro256ss& rng);

/// One-line replay token ("rtds5.<fields>.c<checksum>"; integer fields are
/// decimal, string fields are "x"-prefixed lowercase hex bytes).
std::string encode_token(const Scenario& scenario);

/// Parses a replay token; nullopt on malformed input, wrong version or
/// checksum mismatch.
std::optional<Scenario> decode_token(const std::string& token);

}  // namespace rtds::testing
