#include "testing/harness.h"

#include <memory>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "machine/cluster.h"
#include "machine/interconnect.h"
#include "runtime/threaded_backend.h"
#include "sched/backend.h"
#include "sched/partitioned.h"
#include "sched/pipeline.h"
#include "sched/quantum.h"
#include "sched/registry.h"
#include "sim/simulator.h"
#include "testing/fault_injection.h"

namespace rtds::testing {
namespace {

std::unique_ptr<sched::PhaseAlgorithm> make_algorithm(const Scenario& s) {
  // A malformed spec throws InvalidArgument, which run_scenario surfaces as
  // a harness violation — a fuzz token naming a bad algorithm fails loudly.
  return sched::AlgorithmRegistry::builtin().make(s.algo_spec);
}

std::unique_ptr<sched::QuantumPolicy> make_quantum(const Scenario& s) {
  if (s.quantum_kind == 1) {
    return sched::make_fixed_quantum(usec(s.fixed_quantum_us));
  }
  return sched::make_self_adjusting_quantum(usec(s.min_quantum_us),
                                            usec(s.max_quantum_us));
}

sched::PipelineConfig pipeline_config(const Scenario& s, bool threaded) {
  sched::PipelineConfig cfg;
  cfg.vertex_generation_cost = usec(s.vertex_cost_us);
  // The threaded backend pays its per-phase cost in real wall time; charging
  // a synthetic overhead on top would double-count it (see pipeline.h).
  cfg.phase_overhead =
      threaded ? SimDuration::zero() : usec(s.phase_overhead_us);
  cfg.max_delivery_attempts = s.max_delivery_attempts;
  cfg.delivery_backpressure = usec(s.backpressure_us);
  return cfg;
}

/// Runs the pipeline over `backend`, filling `run`. Open scenarios run the
/// streaming entry point (a fresh deterministic source per backend, so every
/// backend sees the identical task stream) and capture the latency digest.
/// An InvariantViolation from anywhere inside the library is itself an
/// oracle failure (the whole point of the sweep), reported under the
/// pseudo-oracle "harness".
bool run_pipeline(const Scenario& scenario,
                  const sched::PhaseAlgorithm& algorithm,
                  const sched::QuantumPolicy& quantum,
                  const sched::PipelineConfig& config,
                  const std::vector<tasks::Task>& workload,
                  sched::ExecutionBackend& backend, BackendRun& run,
                  std::vector<std::string>& violations) {
  const sched::PhasePipeline pipeline(algorithm, quantum, config);
  sched::PhaseTraceRecorder trace;
  sched::TaskLedger ledger;
  try {
    if (scenario.open_arrival != kOpenClosed) {
      const std::unique_ptr<tasks::ArrivalSource> source =
          make_stream_source(scenario);
      sched::StreamOptions sopts;
      sopts.max_pending = scenario.max_pending;
      sched::StreamStats stats(sopts);
      run.metrics = pipeline.run_stream(*source, backend, sopts, &stats,
                                        &trace, &ledger);
      run.has_latency = true;
      run.latency_count = stats.schedule_latency.count();
      run.latency_underflow = stats.schedule_latency.underflow();
      run.latency_overflow = stats.schedule_latency.overflow();
      run.latency_buckets = stats.schedule_latency.buckets();
    } else {
      run.metrics = pipeline.run(workload, backend, &trace, &ledger);
    }
  } catch (const Error& e) {
    violations.push_back("harness(" + run.name +
                         "): exception: " + e.what());
    return false;
  }
  run.ledger = ledger.counts();
  run.phases = trace.records();
  run.has_ledger = true;
  run.has_phases = true;
  return true;
}

/// Deliberate post-run corruption for the oracle self-test (harness_test).
void apply_mutation(Mutation mutation, BackendRun& run) {
  switch (mutation) {
    case Mutation::kNone:
      return;
    case Mutation::kLoseHit:
      // A task executed and hit, but the books never heard about it — the
      // silent-loss bug class. Mutate metrics AND ledger consistently so
      // only the conservation balance (not a trivial field mismatch) can
      // catch it.
      if (run.metrics.deadline_hits > 0) {
        --run.metrics.deadline_hits;
        if (run.has_ledger) --run.ledger.deadline_hits;
      }
      return;
    case Mutation::kCorruptQuantum:
      if (run.has_phases && !run.phases.empty()) {
        sched::PhaseRecord& r = run.phases.back();
        r.quantum = usec(r.quantum.us + 1);
      }
      return;
    case Mutation::kCorruptGangWidth:
      // Handled in run_scenario: this mutation doctors the workload copy
      // the gang-occupancy oracle sees, not the BackendRun.
      return;
  }
}

/// kCorruptGangWidth: every gang task claims one worker more than it was
/// actually given, so the oracle's declared-vs-executed width cross-check
/// fires iff a gang task executed.
std::vector<tasks::Task> doctor_gang_widths(std::vector<tasks::Task> tasks) {
  for (tasks::Task& t : tasks) {
    if (t.workers_required >= 2) ++t.workers_required;
  }
  return tasks;
}

void summarize(std::ostringstream& os, const BackendRun& run) {
  const sched::RunMetrics& m = run.metrics;
  os << "  " << run.name << ": tasks " << m.total_tasks << " hits "
     << m.deadline_hits << " exec_misses " << m.exec_misses << " culled "
     << m.culled << " rejected " << m.rejected << " phases " << m.phases
     << " readmissions " << m.readmissions << " overflow "
     << m.overflow_drops << "\n";
}

}  // namespace

std::string ScenarioResult::to_string() const {
  std::ostringstream os;
  os << "token " << token << "\n" << scenario.to_string() << "\n";
  summarize(os, sim);
  summarize(os, partitioned);
  if (threaded_ran) summarize(os, threaded);
  for (const BackendRun& run : shard_runs) summarize(os, run);
  if (violations.empty()) {
    os << "  all oracles passed";
  } else {
    for (const std::string& v : violations) os << "  VIOLATION " << v;
  }
  return os.str();
}

ScenarioResult run_scenario(const Scenario& scenario,
                            const HarnessOptions& options) {
  ScenarioResult result;
  result.scenario = scenario;
  result.token = encode_token(scenario);

  // Open scenarios have no workload vector to drive the pipeline with; the
  // materialized stream is still needed by the validity oracle (the offered
  // task population) and the sharded routing audit guard below.
  const bool open = scenario.open_arrival != kOpenClosed;
  const std::vector<tasks::Task> workload =
      open ? make_stream_tasks(scenario) : make_workload(scenario);
  const machine::ReclaimMode reclaim = scenario.reclaim != 0
                                           ? machine::ReclaimMode::kReclaim
                                           : machine::ReclaimMode::kWorstCase;
  const SimDuration comm = usec(scenario.comm_cost_us);
  std::unique_ptr<sched::PhaseAlgorithm> algorithm;
  try {
    algorithm = make_algorithm(scenario);
  } catch (const Error& e) {
    // A replayed token can name a spec this build's registry rejects
    // (typo'd by hand, or from a different version) — report, don't crash.
    result.violations.push_back(std::string("harness(algorithm): ") +
                                e.what());
    return result;
  }
  const auto quantum = make_quantum(scenario);
  const sched::PipelineConfig des_config = pipeline_config(scenario, false);
  // The workload the gang-occupancy oracle audits against — identical to
  // the real one unless the self-test mutation doctors the declared widths.
  const std::vector<tasks::Task> oracle_workload =
      options.mutation == Mutation::kCorruptGangWidth
          ? doctor_gang_widths(workload)
          : workload;

  // -- sim: the reference run ------------------------------------------------
  machine::Cluster sim_cluster(
      scenario.workers,
      machine::Interconnect::cut_through(scenario.workers, comm), reclaim);
  sim::Simulator simulator;
  sched::SimBackend sim_inner(sim_cluster, simulator);
  FaultInjectingBackend sim_backend(sim_inner, scenario.refusal_period);
  result.sim.name = "sim";
  const bool sim_ok = run_pipeline(scenario, *algorithm, *quantum, des_config,
                                   workload, sim_backend, result.sim,
                                   result.violations);
  if (sim_ok) {
    apply_mutation(options.mutation, result.sim);
    oracle_correction_theorem(result.sim, result.violations);
    oracle_conservation(result.sim, result.violations);
    oracle_quantum_bound(scenario, result.sim, result.violations);
    oracle_schedule_validity("sim", sim_cluster, workload, result.violations);
    oracle_gang_occupancy("sim", sim_cluster, oracle_workload,
                          result.violations);
    oracle_stream_accounting(result.sim, result.violations);
  }

  // -- partitioned, single host: must be the same machine --------------------
  // Wrapped in an identical fault injector, so both runs see the exact same
  // refusal sequence and stay in field-for-field parity even under
  // readmission / rejection / backpressure churn.
  sched::PartitionedBackend part(1, scenario.workers, comm, reclaim);
  FaultInjectingBackend part_backend(part.host(0), scenario.refusal_period);
  result.partitioned.name = "partitioned";
  const bool part_ok = run_pipeline(scenario, *algorithm, *quantum,
                                    des_config, workload, part_backend,
                                    result.partitioned, result.violations);
  if (part_ok) {
    oracle_correction_theorem(result.partitioned, result.violations);
    oracle_conservation(result.partitioned, result.violations);
    oracle_quantum_bound(scenario, result.partitioned, result.violations);
    oracle_schedule_validity("partitioned", part.cluster(0), workload,
                             result.violations);
    oracle_gang_occupancy("partitioned", part.cluster(0), oracle_workload,
                          result.violations);
    oracle_stream_accounting(result.partitioned, result.violations);
    if (sim_ok) {
      oracle_metric_parity(result.sim, result.partitioned,
                           result.violations);
    }
  }

  // -- multi-shard audit (scenario.num_shards > 1) ---------------------------
  // run_partitioned owns its hosts, so refusal injection cannot be threaded
  // through; the sharded run audits routing + per-shard guarantees instead.
  if (scenario.num_shards > 1 && !open) {
    sched::PartitionedConfig pcfg;
    pcfg.num_shards = scenario.num_shards;
    pcfg.total_workers = scenario.workers;
    pcfg.comm_cost = comm;
    pcfg.reclaim = reclaim;
    pcfg.driver = des_config;
    try {
      const sched::PartitionedMetrics pm = sched::run_partitioned(
          *algorithm, *quantum, pcfg, workload);
      std::uint64_t routed = 0;
      for (std::size_t s = 0; s < pm.shards.size(); ++s) {
        BackendRun run;
        run.name = "shard[" + std::to_string(s) + "]";
        run.metrics = pm.shards[s];
        routed += run.metrics.total_tasks;
        oracle_correction_theorem(run, result.violations);
        oracle_conservation(run, result.violations);
        result.shard_runs.push_back(std::move(run));
      }
      if (routed != workload.size()) {
        result.violations.push_back(
            "conservation(sharded): routing lost tasks: " +
            std::to_string(routed) + " routed of " +
            std::to_string(workload.size()));
      }
      if (!pm.conserved()) {
        result.violations.push_back(
            "conservation(sharded): cross-shard totals do not balance");
      }
    } catch (const Error& e) {
      result.violations.push_back(std::string("harness(sharded): exception: ") +
                                  e.what());
    }
  }

  // -- threaded: real threads, wall clock ------------------------------------
  if (options.run_threaded && scenario.run_threaded != 0) {
    result.threaded_ran = true;
    runtime::RuntimeConfig rcfg;
    rcfg.num_workers = scenario.workers;
    rcfg.comm_cost = comm;
    rcfg.vertex_cost = usec(scenario.vertex_cost_us);
    rcfg.time_scale = options.threaded_time_scale;
    rcfg.mailbox_capacity = scenario.mailbox_capacity;
    rcfg.delivery_retries = scenario.delivery_retries;
    const sched::PipelineConfig thr_config = pipeline_config(scenario, true);
    runtime::ThreadedBackend thr_inner(rcfg);
    FaultInjectingBackend thr_backend(thr_inner, scenario.refusal_period);
    result.threaded.name = "threaded";
    const bool thr_ok = run_pipeline(scenario, *algorithm, *quantum,
                                     thr_config, workload, thr_backend,
                                     result.threaded, result.violations);
    if (thr_ok) {
      // No correction-theorem / timing oracle here: deadlines are judged
      // against wall-clock jitter. Conservation, the quantum audit and the
      // latency sample accounting are clock-independent; count parity holds
      // on parity-class scenarios whose laxity dwarfs any jitter.
      oracle_conservation(result.threaded, result.violations);
      oracle_stream_accounting(result.threaded, result.violations);
      Scenario thr_scenario = scenario;
      thr_scenario.phase_overhead_us = 0;
      oracle_quantum_bound(thr_scenario, result.threaded, result.violations);
      if (scenario.parity_class != 0 && sim_ok) {
        oracle_threaded_parity(result.sim, result.threaded,
                               result.violations);
      }
    }
  }

  return result;
}

}  // namespace rtds::testing
