#include "testing/scenario.h"

#include <charconv>
#include <sstream>
#include <type_traits>

#include "common/error.h"

namespace rtds::testing {
namespace {

constexpr char kTokenPrefix[] = "rtds5";
constexpr std::uint64_t kWorkloadStream = stream_id("fuzz.workload");
constexpr std::uint64_t kScenarioStream = stream_id("fuzz.scenario");

/// Visits every Scenario field in the fixed token order. Adding a field
/// means bumping kTokenPrefix — old tokens must not silently decode into a
/// differently-shaped scenario.
template <typename S, typename F>
void visit_fields(S& s, F&& f) {
  f(s.seed);
  f(s.workers);
  f(s.num_shards);
  f(s.comm_cost_us);
  f(s.reclaim);
  f(s.num_tasks);
  f(s.arrival_kind);
  f(s.mean_interarrival_us);
  f(s.burst_size);
  f(s.burst_interval_us);
  f(s.processing_min_us);
  f(s.processing_max_us);
  f(s.affinity_permille);
  f(s.laxity_min_centi);
  f(s.laxity_max_centi);
  f(s.max_start_offset_us);
  f(s.actual_fraction_min_permille);
  f(s.actual_fraction_max_permille);
  f(s.vertex_cost_us);
  f(s.phase_overhead_us);
  f(s.max_delivery_attempts);
  f(s.backpressure_us);
  f(s.quantum_kind);
  f(s.min_quantum_us);
  f(s.max_quantum_us);
  f(s.fixed_quantum_us);
  f(s.algo_spec);
  f(s.refusal_period);
  f(s.mailbox_capacity);
  f(s.delivery_retries);
  f(s.run_threaded);
  f(s.parity_class);
  // rtds3 additions (appended, prefix bumped from rtds2).
  f(s.open_arrival);
  f(s.stream_mean_gap_us);
  f(s.stream_min_gap_us);
  f(s.stream_burst_len);
  f(s.stream_off_us);
  f(s.max_pending);
  // rtds4 additions: gang and periodic task-model dials.
  f(s.gang_permille);
  f(s.gang_max_workers);
  f(s.release_period_us);
  f(s.num_releases);
  f(s.release_jitter_us);
  // rtds5 addition: big-batch capacity dial.
  f(s.big_batch);
}

/// Exhaustive kind labels for Scenario::to_string. Returning nullptr for an
/// unlisted value makes a forgotten new kind print as "unknown(N)" instead
/// of silently borrowing the last label (the old nested ternaries mislabeled
/// every kind beyond the ones they spelled out).
const char* arrival_kind_name(std::uint32_t kind) {
  switch (kind) {
    case kArrivalBursty:
      return "bursty";
    case kArrivalPoisson:
      return "poisson";
    case kArrivalPeriodicBurst:
      return "periodic-burst";
  }
  return nullptr;
}

const char* open_kind_name(std::uint32_t kind) {
  switch (kind) {
    case kOpenClosed:
      return "closed";
    case kOpenPoisson:
      return "poisson";
    case kOpenOnOff:
      return "on-off";
    case kOpenSporadic:
      return "sporadic";
    case kOpenPeriodic:
      return "periodic";
  }
  return nullptr;
}

std::string kind_label(const char* name, std::uint32_t kind) {
  return name != nullptr ? std::string(name)
                         : "unknown(" + std::to_string(kind) + ")";
}

std::uint64_t fnv1a(const std::string& payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : payload) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

tasks::WorkloadConfig Scenario::workload_config() const {
  tasks::WorkloadConfig wc;
  wc.num_tasks = num_tasks;
  wc.num_processors = workers;
  switch (arrival_kind) {
    case kArrivalPoisson:
      wc.arrival = tasks::ArrivalPattern::kPoisson;
      break;
    case kArrivalPeriodicBurst:
      wc.arrival = tasks::ArrivalPattern::kPeriodicBurst;
      break;
    default:
      wc.arrival = tasks::ArrivalPattern::kBursty;
      break;
  }
  wc.mean_interarrival = SimDuration{mean_interarrival_us};
  wc.burst_size = burst_size;
  wc.burst_interval = SimDuration{burst_interval_us};
  wc.processing_min = SimDuration{processing_min_us};
  wc.processing_max = SimDuration{processing_max_us};
  wc.affinity_degree = double(affinity_permille) / 1000.0;
  wc.laxity_min = double(laxity_min_centi) / 100.0;
  wc.laxity_max = double(laxity_max_centi) / 100.0;
  wc.max_start_offset = SimDuration{max_start_offset_us};
  wc.actual_fraction_min = double(actual_fraction_min_permille) / 1000.0;
  wc.actual_fraction_max = double(actual_fraction_max_permille) / 1000.0;
  wc.gang_fraction = double(gang_permille) / 1000.0;
  wc.gang_max_workers = gang_max_workers;
  wc.release_period = SimDuration{release_period_us};
  wc.num_releases = num_releases;
  return wc;
}

std::vector<tasks::Task> make_workload(const Scenario& scenario) {
  Xoshiro256ss rng(derive_seed(scenario.seed, kWorkloadStream, 0));
  return tasks::generate_workload(scenario.workload_config(), rng);
}

std::unique_ptr<tasks::ArrivalSource> make_stream_source(
    const Scenario& scenario) {
  RTDS_REQUIRE(scenario.open_arrival != kOpenClosed,
               "make_stream_source: scenario is closed (open_arrival = 0)");
  tasks::StreamConfig cfg;
  cfg.seed = scenario.seed;
  cfg.max_tasks = scenario.num_tasks;
  cfg.body = scenario.workload_config();
  switch (scenario.open_arrival) {
    case kOpenOnOff:
      return std::make_unique<tasks::OnOffArrivalSource>(
          cfg, SimDuration{scenario.stream_mean_gap_us},
          scenario.stream_burst_len, SimDuration{scenario.stream_off_us});
    case kOpenSporadic:
      return std::make_unique<tasks::SporadicArrivalSource>(
          cfg, SimDuration{scenario.stream_min_gap_us},
          SimDuration{scenario.stream_mean_gap_us});
    case kOpenPeriodic:
      return std::make_unique<tasks::PeriodicArrivalSource>(
          cfg, SimDuration{scenario.release_period_us},
          SimDuration{scenario.release_jitter_us});
    default:
      return std::make_unique<tasks::PoissonArrivalSource>(
          cfg, SimDuration{scenario.stream_mean_gap_us});
  }
}

std::vector<tasks::Task> make_stream_tasks(const Scenario& scenario) {
  const std::unique_ptr<tasks::ArrivalSource> source =
      make_stream_source(scenario);
  std::vector<tasks::Task> out;
  out.reserve(scenario.num_tasks);
  while (source->peek().has_value()) out.push_back(source->next());
  return out;
}

Scenario generate_scenario(std::uint64_t base_seed, std::uint64_t index) {
  Xoshiro256ss rng(derive_seed(base_seed, kScenarioStream, index));
  Scenario s;
  s.seed = rng.next();

  // -- machine ---------------------------------------------------------------
  s.workers = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
  std::vector<std::uint32_t> divisors;
  for (std::uint32_t d = 1; d <= s.workers; ++d) {
    if (s.workers % d == 0) divisors.push_back(d);
  }
  s.num_shards = rng.bernoulli(0.6) ? 1 : divisors[size_t(rng.uniform_int(
                                              0, int64_t(divisors.size()) - 1))];
  static constexpr std::int64_t kCommChoices[] = {0, 500, 1000, 2000, 5000};
  s.comm_cost_us = kCommChoices[rng.uniform_int(0, 4)];
  s.reclaim = rng.bernoulli(0.25) ? 1 : 0;

  // -- workload --------------------------------------------------------------
  s.num_tasks = rng.bernoulli(0.02)
                    ? 0
                    : static_cast<std::uint32_t>(rng.uniform_int(1, 160));
  const double arrival_roll = rng.uniform_double();
  s.arrival_kind = arrival_roll < 0.4    ? kArrivalBursty
                   : arrival_roll < 0.8  ? kArrivalPoisson
                                         : kArrivalPeriodicBurst;
  s.mean_interarrival_us = rng.uniform_int(50, 500);
  s.burst_size = static_cast<std::uint32_t>(rng.uniform_int(4, 16));
  s.burst_interval_us = rng.uniform_int(1000, 5000);
  s.processing_min_us = rng.uniform_int(100, 1000);
  s.processing_max_us = rng.uniform_int(s.processing_min_us, 3000);
  s.affinity_permille = static_cast<std::uint32_t>(rng.uniform_int(100, 1000));
  // SF sweep: laxity from 0.5 (instantly unreachable — cull path) to 40.
  s.laxity_min_centi = static_cast<std::uint32_t>(rng.uniform_int(50, 2000));
  s.laxity_max_centi = static_cast<std::uint32_t>(
      rng.uniform_int(s.laxity_min_centi, s.laxity_min_centi + 2000));
  s.max_start_offset_us = rng.bernoulli(0.7) ? 0 : rng.uniform_int(0, 2000);
  if (s.reclaim == 1) {
    s.actual_fraction_min_permille =
        static_cast<std::uint32_t>(rng.uniform_int(300, 1000));
    s.actual_fraction_max_permille = static_cast<std::uint32_t>(
        rng.uniform_int(s.actual_fraction_min_permille, 1000));
  }

  // -- pipeline --------------------------------------------------------------
  static constexpr std::int64_t kVertexChoices[] = {2, 5, 10};
  static constexpr std::int64_t kOverheadChoices[] = {0, 20, 50, 100};
  static constexpr std::uint32_t kAttemptChoices[] = {0, 1, 2, 8};
  static constexpr std::int64_t kBackpressureChoices[] = {0, 100, 200, 1000};
  s.vertex_cost_us = kVertexChoices[rng.uniform_int(0, 2)];
  s.phase_overhead_us = kOverheadChoices[rng.uniform_int(0, 3)];
  s.max_delivery_attempts = kAttemptChoices[rng.uniform_int(0, 3)];
  s.backpressure_us = kBackpressureChoices[rng.uniform_int(0, 3)];

  // -- quantum ---------------------------------------------------------------
  s.quantum_kind = rng.bernoulli(0.15) ? 1 : 0;
  s.min_quantum_us = rng.uniform_int(100, 500);
  s.max_quantum_us = rng.uniform_int(2000, 20000);
  s.fixed_quantum_us = rng.uniform_int(200, 20000);

  // -- algorithm -------------------------------------------------------------
  // Weighted portfolio mix: the paper's two search schedulers keep most of
  // the probability mass, the partitioned and greedy entrants share the
  // rest so every registry family is continuously enrolled in the oracles.
  // Two slices run the parallel sharded engine (bit-identical to
  // sequential), keeping it continuously under every oracle and both
  // backends.
  const double algo_roll = rng.uniform_double();
  s.algo_spec = algo_roll < 0.22   ? "rt_sads"
                : algo_roll < 0.30 ? "rt_sads?threads=4"
                : algo_roll < 0.38 ? "d_cols"
                : algo_roll < 0.45 ? "search?threads=2"
                : algo_roll < 0.52 ? "d_cols?max_successors=4"
                : algo_roll < 0.62 ? "packing"
                : algo_roll < 0.69 ? "packing?fit=best&order=lpt"
                : algo_roll < 0.79 ? "multicrit"
                : algo_roll < 0.86 ? "multicrit?sort=min_slack&fit=worst"
                : algo_roll < 0.91 ? "multicrit?sort=lpt&fit=next"
                : algo_roll < 0.95 ? "edf_ff"
                : algo_roll < 0.98 ? "edf_bf"
                                   : "myopic?window=3";

  // -- fault injection -------------------------------------------------------
  s.refusal_period = rng.bernoulli(0.7)
                         ? 0
                         : static_cast<std::uint32_t>(rng.uniform_int(2, 5));
  static constexpr std::uint32_t kMailboxChoices[] = {1, 2, 4, 16, 1024};
  s.mailbox_capacity = kMailboxChoices[rng.uniform_int(0, 4)];
  static constexpr std::uint32_t kRetryChoices[] = {0, 1, 3};
  s.delivery_retries = kRetryChoices[rng.uniform_int(0, 2)];
  s.run_threaded = 1;

  // -- open arrivals ---------------------------------------------------------
  // A slice of the sweep exercises the streaming service mode: the same
  // task-body dials, but pulled through run_stream from a generated source,
  // with admission control engaged half the time. Single-shard only: the
  // multi-shard audit routes a materialized workload vector, which an open
  // run deliberately does not have.
  const double open_roll = rng.uniform_double();
  s.open_arrival = open_roll < 0.70   ? kOpenClosed
                   : open_roll < 0.80 ? kOpenPoisson
                   : open_roll < 0.88 ? kOpenOnOff
                   : open_roll < 0.94 ? kOpenSporadic
                                      : kOpenPeriodic;
  s.stream_mean_gap_us = rng.uniform_int(50, 1000);
  s.stream_min_gap_us = rng.uniform_int(20, 300);
  s.stream_burst_len = static_cast<std::uint32_t>(rng.uniform_int(2, 12));
  s.stream_off_us = rng.uniform_int(1000, 10000);
  s.max_pending = rng.bernoulli(0.5)
                      ? 0
                      : static_cast<std::uint32_t>(rng.uniform_int(4, 64));
  if (s.open_arrival != kOpenClosed) s.num_shards = 1;

  // -- task models -----------------------------------------------------------
  // Gang/moldable jobs: ~25% of multi-worker scenarios mix in gangs, a
  // sub-slice going all-gang. Gang scenarios collapse to a single shard: a
  // gang wider than its shard could never be placed, and shards partition
  // the workers.
  if (s.workers >= 2 && rng.bernoulli(0.25)) {
    s.gang_permille = rng.bernoulli(0.3)
                          ? 1000
                          : static_cast<std::uint32_t>(
                                rng.uniform_int(100, 600));
    s.gang_max_workers =
        static_cast<std::uint32_t>(rng.uniform_int(2, s.workers));
    s.num_shards = 1;
  }
  // Periodic releases: the period/jitter pair feeds both the closed
  // replication dial (num_releases > 1) and the kOpenPeriodic stream.
  s.release_period_us = rng.uniform_int(2000, 20000);
  s.release_jitter_us =
      rng.bernoulli(0.5) ? 0 : rng.uniform_int(0, s.release_period_us);
  if (s.open_arrival == kOpenClosed && rng.bernoulli(0.2)) {
    s.num_releases = static_cast<std::uint32_t>(rng.uniform_int(2, 5));
    // Keep the total job count in the usual fuzz band.
    if (s.num_tasks > 40) s.num_tasks = 40;
  }

  // -- parity class ----------------------------------------------------------
  // A slice of the sweep is constructed so the threaded backend MUST agree
  // with the DES on scheduled/culled/hit counts: one bursty batch at t=0,
  // deadlines minutes beyond any wall-clock jitter, no injected faults, no
  // start-time offsets (the threaded workers do not model them), mailboxes
  // far deeper than the workload.
  s.parity_class = rng.bernoulli(0.15) ? 1 : 0;
  if (s.parity_class == 1) {
    // Parity scenarios are closed by construction: the count-parity
    // argument needs one bursty batch at t=0, not a timed stream.
    s.open_arrival = kOpenClosed;
    s.arrival_kind = kArrivalBursty;
    s.num_tasks = s.num_tasks == 0
                      ? 0
                      : static_cast<std::uint32_t>(rng.uniform_int(1, 40));
    s.workers = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
    s.num_shards = 1;
    s.laxity_min_centi =
        static_cast<std::uint32_t>(rng.uniform_int(5'000'000, 10'000'000));
    s.laxity_max_centi = s.laxity_min_centi;
    s.max_start_offset_us = 0;
    s.reclaim = 0;
    s.actual_fraction_min_permille = 1000;
    s.actual_fraction_max_permille = 1000;
    s.refusal_period = 0;
    s.mailbox_capacity = 1024;
    s.delivery_retries = 3;
    // Gangs stay allowed in the parity class (the count-parity argument is
    // width-agnostic), but the width dial must respect the redrawn worker
    // count; repeated releases would spread the batch over time, so parity
    // keeps the one-shot model.
    if (s.workers < 2) {
      s.gang_permille = 0;
      s.gang_max_workers = 2;
    } else if (s.gang_max_workers > s.workers) {
      s.gang_max_workers = s.workers;
    }
    s.num_releases = 1;
  }

  // -- big-batch capacity slice ----------------------------------------------
  // A thin slice (~0.4%) of the sweep pushes one burst of 65536..200000
  // tasks through the wide-header search path, keeping the lifted task cap
  // continuously enrolled in the oracles without dominating CI time. Drawn
  // last so replaying any pre-capacity scenario shape is unaffected by the
  // profile's redraws.
  if (rng.bernoulli(0.004)) {
    apply_big_batch_profile(s, rng);
  }
  return s;
}

void apply_big_batch_profile(Scenario& s, Xoshiro256ss& rng) {
  s.big_batch = 1;
  // One closed burst at t=0: all tasks land in a single phase batch, the
  // shape that forces the engine onto the wide node header.
  s.num_tasks =
      static_cast<std::uint32_t>(rng.uniform_int(65'536, 200'000));
  s.arrival_kind = kArrivalBursty;
  s.burst_size = s.num_tasks;
  s.mean_interarrival_us = 50;
  s.open_arrival = kOpenClosed;
  s.num_shards = 1;
  s.workers = static_cast<std::uint32_t>(rng.uniform_int(4, 12));
  // Generous laxity: the batch must be schedulable, not a cull stampede —
  // capacity bugs hide in the feasible path.
  s.laxity_min_centi =
      static_cast<std::uint32_t>(rng.uniform_int(500'000, 1'000'000));
  s.laxity_max_centi = s.laxity_min_centi;
  s.processing_min_us = 100;
  s.processing_max_us = 500;
  s.max_start_offset_us = 0;
  s.reclaim = 0;
  s.actual_fraction_min_permille = 1000;
  s.actual_fraction_max_permille = 1000;
  // A big quantum and cheap vertices give the search a budget deep enough
  // to walk far past the 65535-depth line.
  s.quantum_kind = 0;
  s.max_quantum_us = 200'000;
  s.vertex_cost_us = 2;
  // Search family only (the capacity machinery under test), with a slice
  // on the parallel engine's widened replay.
  s.algo_spec = rng.bernoulli(0.3) ? "search?threads=2" : "rt_sads";
  // DES only — the threaded backend replays wall-clock time and would
  // dominate the slice; no faults, gangs, or releases (orthogonal dials).
  s.run_threaded = 0;
  s.parity_class = 0;
  s.refusal_period = 0;
  s.mailbox_capacity = 1024;
  s.gang_permille = 0;
  s.gang_max_workers = 2;
  s.num_releases = 1;
}

std::string encode_token(const Scenario& scenario) {
  std::ostringstream os;
  visit_fields(scenario, [&os](const auto& field) {
    if constexpr (std::is_same_v<std::decay_t<decltype(field)>,
                                 std::string>) {
      // String fields become "x" + lowercase hex bytes: the segment starts
      // with 'x' (never a digit, never 'c'), so it cannot be confused with
      // a numeric field or the ".c<checksum>" suffix.
      os << ".x";
      static constexpr char kHex[] = "0123456789abcdef";
      for (const char c : field) {
        const auto b = static_cast<unsigned char>(c);
        os << kHex[b >> 4] << kHex[b & 0xF];
      }
    } else {
      os << '.' << static_cast<std::uint64_t>(field);
    }
  });
  const std::string payload = os.str();
  std::ostringstream token;
  token << kTokenPrefix << payload << ".c" << std::hex
        << (fnv1a(payload) & 0xffffffffULL);
  return token.str();
}

std::optional<Scenario> decode_token(const std::string& token) {
  const std::string prefix = std::string(kTokenPrefix) + ".";
  if (token.rfind(prefix, 0) != 0) return std::nullopt;
  const std::size_t checksum_at = token.rfind(".c");
  if (checksum_at == std::string::npos || checksum_at < prefix.size() - 1) {
    return std::nullopt;
  }
  const std::string payload =
      token.substr(sizeof(kTokenPrefix) - 1,
                   checksum_at - (sizeof(kTokenPrefix) - 1));
  std::uint64_t checksum = 0;
  {
    const char* begin = token.data() + checksum_at + 2;
    const char* end = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, checksum, 16);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
  }
  if ((fnv1a(payload) & 0xffffffffULL) != checksum) return std::nullopt;

  Scenario s;
  std::size_t pos = 0;
  bool ok = true;
  const auto hex_nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  visit_fields(s, [&](auto& field) {
    if (!ok) return;
    if (pos >= payload.size() || payload[pos] != '.') {
      ok = false;
      return;
    }
    ++pos;
    if constexpr (std::is_same_v<std::decay_t<decltype(field)>,
                                 std::string>) {
      if (pos >= payload.size() || payload[pos] != 'x') {
        ok = false;
        return;
      }
      ++pos;
      std::string value;
      while (pos < payload.size() && payload[pos] != '.') {
        if (pos + 1 >= payload.size()) {
          ok = false;  // odd hex digit count
          return;
        }
        const int hi = hex_nibble(payload[pos]);
        const int lo = hex_nibble(payload[pos + 1]);
        if (hi < 0 || lo < 0) {
          ok = false;
          return;
        }
        value.push_back(static_cast<char>((hi << 4) | lo));
        pos += 2;
      }
      field = std::move(value);
    } else {
      std::uint64_t value = 0;
      const char* begin = payload.data() + pos;
      const char* end = payload.data() + payload.size();
      const auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec != std::errc{} || ptr == begin) {
        ok = false;
        return;
      }
      pos = static_cast<std::size_t>(ptr - payload.data());
      field = static_cast<std::remove_reference_t<decltype(field)>>(value);
    }
  });
  if (!ok || pos != payload.size()) return std::nullopt;
  return s;
}

std::string Scenario::to_string() const {
  std::ostringstream os;
  os << "scenario{seed=" << seed << " workers=" << workers
     << " shards=" << num_shards << " tasks=" << num_tasks << " arrival="
     << kind_label(arrival_kind_name(arrival_kind), arrival_kind)
     << " laxity=[" << laxity_min_centi / 100.0 << ","
     << laxity_max_centi / 100.0 << "]"
     << " proc=[" << processing_min_us << "," << processing_max_us << "]us"
     << " comm=" << comm_cost_us << "us"
     << " algo=" << algo_spec
     << " quantum=" << (quantum_kind == 1 ? "fixed" : "self-adjusting")
     << " attempts=" << max_delivery_attempts
     << " refuse_every=" << refusal_period << " mailbox=" << mailbox_capacity
     << (reclaim == 1 ? " reclaim" : "")
     << (parity_class == 1 ? " parity" : "")
     << (big_batch != 0 ? " big-batch" : "");
  if (gang_permille > 0) {
    os << " gang=" << gang_permille << "pm<=" << gang_max_workers << "w";
  }
  if (num_releases > 1) {
    os << " releases=" << num_releases << "x" << release_period_us << "us";
  }
  if (open_arrival != kOpenClosed) {
    os << " open=" << kind_label(open_kind_name(open_arrival), open_arrival);
    if (open_arrival == kOpenPeriodic) {
      os << " period=" << release_period_us
         << "us jitter=" << release_jitter_us << "us";
    } else {
      os << " gap=" << stream_mean_gap_us << "us";
    }
    os << " max_pending=" << max_pending;
  }
  os << "}";
  return os.str();
}

}  // namespace rtds::testing
