#include "testing/oracles.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace rtds::testing {
namespace {

void violation(std::vector<std::string>& out, const std::string& oracle,
               const std::string& backend, const std::string& detail) {
  out.push_back(oracle + "(" + backend + "): " + detail);
}

template <typename T>
void expect_eq(std::vector<std::string>& out, const std::string& oracle,
               const std::string& backend, const char* what, T actual,
               T expected) {
  if (actual == expected) return;
  std::ostringstream os;
  os << what << " = " << actual << ", expected " << expected;
  violation(out, oracle, backend, os.str());
}

}  // namespace

const std::vector<std::string>& oracle_names() {
  static const std::vector<std::string> names = {
      "correction-theorem", "conservation",    "schedule-validity",
      "quantum-bound",      "metric-parity",   "threaded-parity",
      "stream-accounting",  "gang-occupancy",
  };
  return names;
}

void oracle_correction_theorem(const BackendRun& run,
                               std::vector<std::string>& out) {
  if (run.metrics.exec_misses != 0) {
    std::ostringstream os;
    os << run.metrics.exec_misses << " task(s) missed their deadline DURING "
       << "execution — a committed schedule must never miss (Sec. 4.3)";
    violation(out, "correction-theorem", run.name, os.str());
  }
  if (run.has_ledger && run.ledger.exec_misses != 0) {
    std::ostringstream os;
    os << "ledger records " << run.ledger.exec_misses << " exec misses";
    violation(out, "correction-theorem", run.name, os.str());
  }
}

void oracle_conservation(const BackendRun& run,
                         std::vector<std::string>& out) {
  const sched::RunMetrics& m = run.metrics;
  const char* oracle = "conservation";
  expect_eq(out, oracle, run.name,
            "hits + exec_misses + culled + rejected + admission_rejected",
            m.deadline_hits + m.exec_misses + m.culled + m.rejected +
                m.admission_rejected,
            m.total_tasks);
  expect_eq(out, oracle, run.name, "deadline_hits + exec_misses",
            m.deadline_hits + m.exec_misses, m.scheduled);
  if (!run.has_ledger) return;
  const sched::LedgerCounts& l = run.ledger;
  if (!l.conserved()) {
    std::ostringstream os;
    os << "ledger not conserved: total " << l.total << " hits "
       << l.deadline_hits << " exec_misses " << l.exec_misses << " culled "
       << l.culled << " rejected " << l.rejected << " admission_rejected "
       << l.admission_rejected << " in_flight " << l.in_flight;
    violation(out, oracle, run.name, os.str());
  }
  expect_eq(out, oracle, run.name, "ledger total", l.total, m.total_tasks);
  expect_eq(out, oracle, run.name, "ledger hits", l.deadline_hits,
            m.deadline_hits);
  expect_eq(out, oracle, run.name, "ledger exec_misses", l.exec_misses,
            m.exec_misses);
  expect_eq(out, oracle, run.name, "ledger culled", l.culled, m.culled);
  expect_eq(out, oracle, run.name, "ledger rejected", l.rejected, m.rejected);
  expect_eq(out, oracle, run.name, "ledger admission_rejected",
            l.admission_rejected, m.admission_rejected);
  // Transition-event cross-checks: every schedule() either delivered,
  // dropped (readmission) or rejected — and the pipeline's aggregate
  // counters must agree with the per-task lifecycle event counts.
  expect_eq(out, oracle, run.name, "ledger delivery_events",
            l.delivery_events, m.scheduled);
  expect_eq(out, oracle, run.name, "ledger drop_events", l.drop_events,
            m.readmissions);
  expect_eq(out, oracle, run.name,
            "delivery_events + drop_events + rejected",
            l.delivery_events + l.drop_events + l.rejected,
            l.schedule_events);
}

void oracle_schedule_validity(const std::string& name,
                              const machine::Cluster& cluster,
                              const std::vector<tasks::Task>& workload,
                              std::vector<std::string>& out) {
  const machine::ValidationReport report =
      machine::validate_execution(cluster, workload);
  for (const std::string& v : report.violations) {
    violation(out, "schedule-validity", name, v);
  }
}

void oracle_quantum_bound(const Scenario& scenario, const BackendRun& run,
                          std::vector<std::string>& out) {
  if (!run.has_phases) return;
  const char* oracle = "quantum-bound";
  const SimDuration floor =
      SimDuration{scenario.phase_overhead_us + scenario.vertex_cost_us};
  std::uint64_t overrides_seen = 0;
  for (const sched::PhaseRecord& r : run.phases) {
    if (r.quantum_floor_override) {
      ++overrides_seen;
      // The floor is applied verbatim, never padded.
      if (r.quantum != floor) {
        std::ostringstream os;
        os << "phase " << r.index << ": override quantum "
           << to_string(r.quantum) << " != progress floor "
           << to_string(floor);
        violation(out, oracle, run.name, os.str());
      }
      continue;
    }
    const SimDuration expected =
        scenario.quantum_kind == 1
            ? SimDuration{scenario.fixed_quantum_us}
            : clamp_duration(max_duration(r.min_slack, r.min_load),
                             SimDuration{scenario.min_quantum_us},
                             SimDuration{scenario.max_quantum_us});
    if (r.quantum != expected) {
      std::ostringstream os;
      os << "phase " << r.index << ": Q_s " << to_string(r.quantum)
         << " != policy allocation " << to_string(expected) << " (Min_Slack "
         << to_string(r.min_slack) << ", Min_Load " << to_string(r.min_load)
         << ")";
      violation(out, oracle, run.name, os.str());
    }
    // The paper's bound (Fig. 3): Q_s(j) <= max(Min_Slack, Min_Load),
    // binding whenever the bound itself is above the minimum-progress
    // clamp.
    const SimDuration bound = max_duration(r.min_slack, r.min_load);
    if (scenario.quantum_kind == 0 &&
        bound >= SimDuration{scenario.min_quantum_us} && r.quantum > bound) {
      std::ostringstream os;
      os << "phase " << r.index << ": Q_s " << to_string(r.quantum)
         << " exceeds max(Min_Slack, Min_Load) = " << to_string(bound);
      violation(out, oracle, run.name, os.str());
    }
  }
  expect_eq(out, oracle, run.name, "quantum_floor_overrides",
            run.metrics.quantum_floor_overrides, overrides_seen);
  expect_eq(out, oracle, run.name, "phases", run.metrics.phases,
            std::uint64_t(run.phases.size()));
}

void oracle_metric_parity(const BackendRun& a, const BackendRun& b,
                          std::vector<std::string>& out) {
  const std::string pair = a.name + " vs " + b.name;
  const sched::RunMetrics& x = a.metrics;
  const sched::RunMetrics& y = b.metrics;
  const char* oracle = "metric-parity";
  expect_eq(out, oracle, pair, "algorithm", x.algorithm, y.algorithm);
  expect_eq(out, oracle, pair, "threads", x.threads, y.threads);
  expect_eq(out, oracle, pair, "total_tasks", x.total_tasks, y.total_tasks);
  expect_eq(out, oracle, pair, "scheduled", x.scheduled, y.scheduled);
  expect_eq(out, oracle, pair, "deadline_hits", x.deadline_hits,
            y.deadline_hits);
  expect_eq(out, oracle, pair, "exec_misses", x.exec_misses, y.exec_misses);
  expect_eq(out, oracle, pair, "culled", x.culled, y.culled);
  expect_eq(out, oracle, pair, "rejected", x.rejected, y.rejected);
  expect_eq(out, oracle, pair, "admission_rejected", x.admission_rejected,
            y.admission_rejected);
  expect_eq(out, oracle, pair, "overflow_drops", x.overflow_drops,
            y.overflow_drops);
  expect_eq(out, oracle, pair, "readmissions", x.readmissions,
            y.readmissions);
  expect_eq(out, oracle, pair, "backpressure_waits", x.backpressure_waits,
            y.backpressure_waits);
  expect_eq(out, oracle, pair, "quantum_floor_overrides",
            x.quantum_floor_overrides, y.quantum_floor_overrides);
  expect_eq(out, oracle, pair, "phases", x.phases, y.phases);
  expect_eq(out, oracle, pair, "vertices_generated", x.vertices_generated,
            y.vertices_generated);
  expect_eq(out, oracle, pair, "expansions", x.expansions, y.expansions);
  expect_eq(out, oracle, pair, "backtracks", x.backtracks, y.backtracks);
  expect_eq(out, oracle, pair, "dead_ends", x.dead_ends, y.dead_ends);
  expect_eq(out, oracle, pair, "leaves", x.leaves, y.leaves);
  expect_eq(out, oracle, pair, "budget_exhaustions", x.budget_exhaustions,
            y.budget_exhaustions);
  expect_eq(out, oracle, pair, "finish_time.us", x.finish_time.us,
            y.finish_time.us);
  expect_eq(out, oracle, pair, "scheduling_time.us", x.scheduling_time.us,
            y.scheduling_time.us);
  expect_eq(out, oracle, pair, "allocated_quantum.us", x.allocated_quantum.us,
            y.allocated_quantum.us);
  expect_eq(out, oracle, pair, "min_quantum_seen.us", x.min_quantum_seen.us,
            y.min_quantum_seen.us);
  expect_eq(out, oracle, pair, "max_quantum_seen.us", x.max_quantum_seen.us,
            y.max_quantum_seen.us);
  // Streaming runs also expose a latency digest; two deterministic DES
  // backends must agree on it sample-for-sample.
  expect_eq(out, oracle, pair, "has_latency", a.has_latency, b.has_latency);
  if (a.has_latency && b.has_latency) {
    expect_eq(out, oracle, pair, "latency_count", a.latency_count,
              b.latency_count);
    expect_eq(out, oracle, pair, "latency_underflow", a.latency_underflow,
              b.latency_underflow);
    expect_eq(out, oracle, pair, "latency_overflow", a.latency_overflow,
              b.latency_overflow);
    if (a.latency_buckets != b.latency_buckets) {
      violation(out, oracle, pair, "latency histogram buckets differ");
    }
  }
}

void oracle_stream_accounting(const BackendRun& run,
                              std::vector<std::string>& out) {
  if (!run.has_latency) return;
  expect_eq(out, "stream-accounting", run.name,
            "latency samples (one per accepted delivery)", run.latency_count,
            run.metrics.scheduled);
}

void oracle_gang_occupancy(const std::string& name,
                           const machine::Cluster& cluster,
                           const std::vector<tasks::Task>& workload,
                           std::vector<std::string>& out) {
  const char* oracle = "gang-occupancy";
  const std::uint32_t m = cluster.num_workers();

  std::unordered_map<tasks::TaskId, std::uint32_t> declared_width;
  declared_width.reserve(workload.size());
  for (const tasks::Task& t : workload) {
    declared_width.emplace(t.id, t.workers_required);
  }

  // Expanded per-worker-slot intervals: one (start, end, task) triple per
  // occupied worker, derived only from the record's lead + width.
  struct Slot {
    std::int64_t start_us;
    std::int64_t end_us;
    tasks::TaskId task;
  };
  std::vector<std::vector<Slot>> per_worker(m);

  for (const machine::CompletionRecord& rec : cluster.log()) {
    if (rec.width < 1 || rec.worker >= m || rec.width > m - rec.worker) {
      std::ostringstream os;
      os << "task " << rec.task << ": block [" << rec.worker << ", "
         << rec.worker + rec.width << ") exceeds the " << m
         << "-worker machine — a gang must never be split or truncated";
      violation(out, oracle, name, os.str());
      continue;
    }
    if (const auto it = declared_width.find(rec.task);
        it != declared_width.end() && rec.width != it->second) {
      std::ostringstream os;
      os << "task " << rec.task << ": executed with width " << rec.width
         << " but the workload declares workers_required = " << it->second;
      violation(out, oracle, name, os.str());
    }
    for (std::uint32_t j = 0; j < rec.width; ++j) {
      per_worker[rec.worker + j].push_back(
          Slot{rec.start.us, rec.end.us, rec.task});
    }
  }

  // Per-worker-slot serialization: with blocks expanded, no worker may run
  // two tasks at once ([start, end) intervals must not overlap).
  for (std::uint32_t w = 0; w < m; ++w) {
    auto& slots = per_worker[w];
    std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
      return a.start_us != b.start_us ? a.start_us < b.start_us
                                      : a.end_us < b.end_us;
    });
    for (std::size_t i = 1; i < slots.size(); ++i) {
      if (slots[i].start_us < slots[i - 1].end_us) {
        std::ostringstream os;
        os << "worker " << w << ": task " << slots[i].task << " starts at "
           << slots[i].start_us << "us before task " << slots[i - 1].task
           << " ends at " << slots[i - 1].end_us << "us";
        violation(out, oracle, name, os.str());
      }
    }
  }

  // Machine-wide sweep: at no instant may more than m worker-slots be
  // occupied. Ends sort before starts at the same instant because the
  // intervals are half-open.
  struct Event {
    std::int64_t t_us;
    std::int32_t delta;  // +width at start, -width at end
  };
  std::vector<Event> events;
  events.reserve(2 * cluster.log().size());
  for (const machine::CompletionRecord& rec : cluster.log()) {
    if (rec.worker >= m || rec.width > m - rec.worker) continue;  // reported
    events.push_back(Event{rec.start.us, static_cast<std::int32_t>(rec.width)});
    events.push_back(Event{rec.end.us, -static_cast<std::int32_t>(rec.width)});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t_us != b.t_us ? a.t_us < b.t_us : a.delta < b.delta;
  });
  std::int64_t occupied = 0;
  for (const Event& e : events) {
    occupied += e.delta;
    if (occupied > static_cast<std::int64_t>(m)) {
      std::ostringstream os;
      os << occupied << " worker-slots occupied at " << e.t_us
         << "us on a " << m << "-worker machine";
      violation(out, oracle, name, os.str());
      break;  // one breach is enough; later counts are all derived from it
    }
  }
}

void oracle_threaded_parity(const BackendRun& sim, const BackendRun& threaded,
                            std::vector<std::string>& out) {
  const char* oracle = "threaded-parity";
  expect_eq(out, oracle, threaded.name, "scheduled",
            threaded.metrics.scheduled, sim.metrics.scheduled);
  expect_eq(out, oracle, threaded.name, "culled", threaded.metrics.culled,
            sim.metrics.culled);
  expect_eq(out, oracle, threaded.name, "deadline_hits",
            threaded.metrics.deadline_hits, sim.metrics.deadline_hits);
  expect_eq(out, oracle, threaded.name, "overflow_drops",
            threaded.metrics.overflow_drops, std::uint64_t{0});
  expect_eq(out, oracle, threaded.name, "rejected", threaded.metrics.rejected,
            std::uint64_t{0});
}

}  // namespace rtds::testing
