#include "testing/oracles.h"

#include <sstream>

namespace rtds::testing {
namespace {

void violation(std::vector<std::string>& out, const std::string& oracle,
               const std::string& backend, const std::string& detail) {
  out.push_back(oracle + "(" + backend + "): " + detail);
}

template <typename T>
void expect_eq(std::vector<std::string>& out, const std::string& oracle,
               const std::string& backend, const char* what, T actual,
               T expected) {
  if (actual == expected) return;
  std::ostringstream os;
  os << what << " = " << actual << ", expected " << expected;
  violation(out, oracle, backend, os.str());
}

}  // namespace

const std::vector<std::string>& oracle_names() {
  static const std::vector<std::string> names = {
      "correction-theorem", "conservation",    "schedule-validity",
      "quantum-bound",      "metric-parity",   "threaded-parity",
      "stream-accounting",
  };
  return names;
}

void oracle_correction_theorem(const BackendRun& run,
                               std::vector<std::string>& out) {
  if (run.metrics.exec_misses != 0) {
    std::ostringstream os;
    os << run.metrics.exec_misses << " task(s) missed their deadline DURING "
       << "execution — a committed schedule must never miss (Sec. 4.3)";
    violation(out, "correction-theorem", run.name, os.str());
  }
  if (run.has_ledger && run.ledger.exec_misses != 0) {
    std::ostringstream os;
    os << "ledger records " << run.ledger.exec_misses << " exec misses";
    violation(out, "correction-theorem", run.name, os.str());
  }
}

void oracle_conservation(const BackendRun& run,
                         std::vector<std::string>& out) {
  const sched::RunMetrics& m = run.metrics;
  const char* oracle = "conservation";
  expect_eq(out, oracle, run.name,
            "hits + exec_misses + culled + rejected + admission_rejected",
            m.deadline_hits + m.exec_misses + m.culled + m.rejected +
                m.admission_rejected,
            m.total_tasks);
  expect_eq(out, oracle, run.name, "deadline_hits + exec_misses",
            m.deadline_hits + m.exec_misses, m.scheduled);
  if (!run.has_ledger) return;
  const sched::LedgerCounts& l = run.ledger;
  if (!l.conserved()) {
    std::ostringstream os;
    os << "ledger not conserved: total " << l.total << " hits "
       << l.deadline_hits << " exec_misses " << l.exec_misses << " culled "
       << l.culled << " rejected " << l.rejected << " admission_rejected "
       << l.admission_rejected << " in_flight " << l.in_flight;
    violation(out, oracle, run.name, os.str());
  }
  expect_eq(out, oracle, run.name, "ledger total", l.total, m.total_tasks);
  expect_eq(out, oracle, run.name, "ledger hits", l.deadline_hits,
            m.deadline_hits);
  expect_eq(out, oracle, run.name, "ledger exec_misses", l.exec_misses,
            m.exec_misses);
  expect_eq(out, oracle, run.name, "ledger culled", l.culled, m.culled);
  expect_eq(out, oracle, run.name, "ledger rejected", l.rejected, m.rejected);
  expect_eq(out, oracle, run.name, "ledger admission_rejected",
            l.admission_rejected, m.admission_rejected);
  // Transition-event cross-checks: every schedule() either delivered,
  // dropped (readmission) or rejected — and the pipeline's aggregate
  // counters must agree with the per-task lifecycle event counts.
  expect_eq(out, oracle, run.name, "ledger delivery_events",
            l.delivery_events, m.scheduled);
  expect_eq(out, oracle, run.name, "ledger drop_events", l.drop_events,
            m.readmissions);
  expect_eq(out, oracle, run.name,
            "delivery_events + drop_events + rejected",
            l.delivery_events + l.drop_events + l.rejected,
            l.schedule_events);
}

void oracle_schedule_validity(const std::string& name,
                              const machine::Cluster& cluster,
                              const std::vector<tasks::Task>& workload,
                              std::vector<std::string>& out) {
  const machine::ValidationReport report =
      machine::validate_execution(cluster, workload);
  for (const std::string& v : report.violations) {
    violation(out, "schedule-validity", name, v);
  }
}

void oracle_quantum_bound(const Scenario& scenario, const BackendRun& run,
                          std::vector<std::string>& out) {
  if (!run.has_phases) return;
  const char* oracle = "quantum-bound";
  const SimDuration floor =
      SimDuration{scenario.phase_overhead_us + scenario.vertex_cost_us};
  std::uint64_t overrides_seen = 0;
  for (const sched::PhaseRecord& r : run.phases) {
    if (r.quantum_floor_override) {
      ++overrides_seen;
      // The floor is applied verbatim, never padded.
      if (r.quantum != floor) {
        std::ostringstream os;
        os << "phase " << r.index << ": override quantum "
           << to_string(r.quantum) << " != progress floor "
           << to_string(floor);
        violation(out, oracle, run.name, os.str());
      }
      continue;
    }
    const SimDuration expected =
        scenario.quantum_kind == 1
            ? SimDuration{scenario.fixed_quantum_us}
            : clamp_duration(max_duration(r.min_slack, r.min_load),
                             SimDuration{scenario.min_quantum_us},
                             SimDuration{scenario.max_quantum_us});
    if (r.quantum != expected) {
      std::ostringstream os;
      os << "phase " << r.index << ": Q_s " << to_string(r.quantum)
         << " != policy allocation " << to_string(expected) << " (Min_Slack "
         << to_string(r.min_slack) << ", Min_Load " << to_string(r.min_load)
         << ")";
      violation(out, oracle, run.name, os.str());
    }
    // The paper's bound (Fig. 3): Q_s(j) <= max(Min_Slack, Min_Load),
    // binding whenever the bound itself is above the minimum-progress
    // clamp.
    const SimDuration bound = max_duration(r.min_slack, r.min_load);
    if (scenario.quantum_kind == 0 &&
        bound >= SimDuration{scenario.min_quantum_us} && r.quantum > bound) {
      std::ostringstream os;
      os << "phase " << r.index << ": Q_s " << to_string(r.quantum)
         << " exceeds max(Min_Slack, Min_Load) = " << to_string(bound);
      violation(out, oracle, run.name, os.str());
    }
  }
  expect_eq(out, oracle, run.name, "quantum_floor_overrides",
            run.metrics.quantum_floor_overrides, overrides_seen);
  expect_eq(out, oracle, run.name, "phases", run.metrics.phases,
            std::uint64_t(run.phases.size()));
}

void oracle_metric_parity(const BackendRun& a, const BackendRun& b,
                          std::vector<std::string>& out) {
  const std::string pair = a.name + " vs " + b.name;
  const sched::RunMetrics& x = a.metrics;
  const sched::RunMetrics& y = b.metrics;
  const char* oracle = "metric-parity";
  expect_eq(out, oracle, pair, "algorithm", x.algorithm, y.algorithm);
  expect_eq(out, oracle, pair, "threads", x.threads, y.threads);
  expect_eq(out, oracle, pair, "total_tasks", x.total_tasks, y.total_tasks);
  expect_eq(out, oracle, pair, "scheduled", x.scheduled, y.scheduled);
  expect_eq(out, oracle, pair, "deadline_hits", x.deadline_hits,
            y.deadline_hits);
  expect_eq(out, oracle, pair, "exec_misses", x.exec_misses, y.exec_misses);
  expect_eq(out, oracle, pair, "culled", x.culled, y.culled);
  expect_eq(out, oracle, pair, "rejected", x.rejected, y.rejected);
  expect_eq(out, oracle, pair, "admission_rejected", x.admission_rejected,
            y.admission_rejected);
  expect_eq(out, oracle, pair, "overflow_drops", x.overflow_drops,
            y.overflow_drops);
  expect_eq(out, oracle, pair, "readmissions", x.readmissions,
            y.readmissions);
  expect_eq(out, oracle, pair, "backpressure_waits", x.backpressure_waits,
            y.backpressure_waits);
  expect_eq(out, oracle, pair, "quantum_floor_overrides",
            x.quantum_floor_overrides, y.quantum_floor_overrides);
  expect_eq(out, oracle, pair, "phases", x.phases, y.phases);
  expect_eq(out, oracle, pair, "vertices_generated", x.vertices_generated,
            y.vertices_generated);
  expect_eq(out, oracle, pair, "expansions", x.expansions, y.expansions);
  expect_eq(out, oracle, pair, "backtracks", x.backtracks, y.backtracks);
  expect_eq(out, oracle, pair, "dead_ends", x.dead_ends, y.dead_ends);
  expect_eq(out, oracle, pair, "leaves", x.leaves, y.leaves);
  expect_eq(out, oracle, pair, "budget_exhaustions", x.budget_exhaustions,
            y.budget_exhaustions);
  expect_eq(out, oracle, pair, "finish_time.us", x.finish_time.us,
            y.finish_time.us);
  expect_eq(out, oracle, pair, "scheduling_time.us", x.scheduling_time.us,
            y.scheduling_time.us);
  expect_eq(out, oracle, pair, "allocated_quantum.us", x.allocated_quantum.us,
            y.allocated_quantum.us);
  expect_eq(out, oracle, pair, "min_quantum_seen.us", x.min_quantum_seen.us,
            y.min_quantum_seen.us);
  expect_eq(out, oracle, pair, "max_quantum_seen.us", x.max_quantum_seen.us,
            y.max_quantum_seen.us);
  // Streaming runs also expose a latency digest; two deterministic DES
  // backends must agree on it sample-for-sample.
  expect_eq(out, oracle, pair, "has_latency", a.has_latency, b.has_latency);
  if (a.has_latency && b.has_latency) {
    expect_eq(out, oracle, pair, "latency_count", a.latency_count,
              b.latency_count);
    expect_eq(out, oracle, pair, "latency_underflow", a.latency_underflow,
              b.latency_underflow);
    expect_eq(out, oracle, pair, "latency_overflow", a.latency_overflow,
              b.latency_overflow);
    if (a.latency_buckets != b.latency_buckets) {
      violation(out, oracle, pair, "latency histogram buckets differ");
    }
  }
}

void oracle_stream_accounting(const BackendRun& run,
                              std::vector<std::string>& out) {
  if (!run.has_latency) return;
  expect_eq(out, "stream-accounting", run.name,
            "latency samples (one per accepted delivery)", run.latency_count,
            run.metrics.scheduled);
}

void oracle_threaded_parity(const BackendRun& sim, const BackendRun& threaded,
                            std::vector<std::string>& out) {
  const char* oracle = "threaded-parity";
  expect_eq(out, oracle, threaded.name, "scheduled",
            threaded.metrics.scheduled, sim.metrics.scheduled);
  expect_eq(out, oracle, threaded.name, "culled", threaded.metrics.culled,
            sim.metrics.culled);
  expect_eq(out, oracle, threaded.name, "deadline_hits",
            threaded.metrics.deadline_hits, sim.metrics.deadline_hits);
  expect_eq(out, oracle, threaded.name, "overflow_drops",
            threaded.metrics.overflow_drops, std::uint64_t{0});
  expect_eq(out, oracle, threaded.name, "rejected", threaded.metrics.rejected,
            std::uint64_t{0});
}

}  // namespace rtds::testing
