// Invariant oracles for the stress/fuzz harness.
//
// Each oracle re-derives one guarantee of the system from observable run
// state and appends a human-readable violation line on any breach. They are
// deliberately independent of the code that produced the state (the
// machine::Validator re-prices every execution record from first
// principles; the conservation oracle re-balances the ledger against the
// aggregate metrics) so a bookkeeping bug cannot validate itself.
//
// Registry (see docs/FUZZING.md):
//   correction-theorem  exec_misses == 0 on the DES backends — a committed
//                       task never misses during execution (Sec. 4.3)
//   conservation        total == hits + exec_misses + culled + rejected,
//                       ledger terminal states, and the transition-event
//                       cross-checks (schedule = deliver + drop + reject)
//   schedule-validity   machine::Validator over the full execution log
//   quantum-bound       Q_s(j) == clamp(max(Min_Slack, Min_Load)) per phase
//                       unless the progress floor bound it — and the
//                       quantum_floor_overrides counter matches exactly
//   metric-parity       field-for-field RunMetrics equality between two
//                       deterministic backends driving the same workload
//   threaded-parity     scheduled/culled/hit agreement between the DES and
//                       the threaded backend on parity-class scenarios
//   stream-accounting   streaming runs: one schedule-latency sample per
//                       accepted delivery (histogram count == scheduled)
//   gang-occupancy      gang jobs occupy exactly their contiguous worker
//                       block, are never split, and no instant commits
//                       more worker-slots than the machine has
#pragma once

#include <string>
#include <vector>

#include "machine/cluster.h"
#include "machine/validator.h"
#include "sched/ledger.h"
#include "sched/pipeline.h"
#include "sched/trace.h"
#include "testing/scenario.h"

namespace rtds::testing {

/// Everything one backend run exposes to the oracles.
struct BackendRun {
  std::string name;  ///< "sim", "partitioned", "shard[2]", "threaded"
  sched::RunMetrics metrics;
  sched::LedgerCounts ledger;
  std::vector<sched::PhaseRecord> phases;
  bool has_ledger{false};
  bool has_phases{false};

  // Schedule-latency digest of a streaming run (open scenarios only): the
  // full bucket vector plus the edge counters, so two DES runs can be
  // compared sample-for-sample and the total cross-checked against the
  // delivery count.
  bool has_latency{false};
  std::uint64_t latency_count{0};
  std::uint64_t latency_underflow{0};
  std::uint64_t latency_overflow{0};
  std::vector<std::uint64_t> latency_buckets;
};

/// The names above, in evaluation order (for the driver's summary).
const std::vector<std::string>& oracle_names();

/// exec_misses == 0: the correction theorem, on backends with a virtual
/// clock (the threaded backend is judged against wall-clock jitter and is
/// exempt — see docs/FUZZING.md).
void oracle_correction_theorem(const BackendRun& run,
                               std::vector<std::string>& out);

/// Task conservation + ledger/metrics agreement + transition-event
/// cross-checks.
void oracle_conservation(const BackendRun& run,
                         std::vector<std::string>& out);

/// machine::Validator over the cluster's execution log.
void oracle_schedule_validity(const std::string& name,
                              const machine::Cluster& cluster,
                              const std::vector<tasks::Task>& workload,
                              std::vector<std::string>& out);

/// Per-phase Q_s audit against the scenario's quantum policy, plus exact
/// agreement of the floor-override counter.
void oracle_quantum_bound(const Scenario& scenario, const BackendRun& run,
                          std::vector<std::string>& out);

/// Field-for-field RunMetrics equality (deterministic backends only).
void oracle_metric_parity(const BackendRun& a, const BackendRun& b,
                          std::vector<std::string>& out);

/// scheduled / culled / deadline_hits agreement for parity-class scenarios.
void oracle_threaded_parity(const BackendRun& sim, const BackendRun& threaded,
                            std::vector<std::string>& out);

/// Streaming bookkeeping: every accepted delivery contributed exactly one
/// schedule-latency sample (histogram count == RunMetrics::scheduled), on
/// any backend. No-op for runs without a latency digest.
void oracle_stream_accounting(const BackendRun& run,
                              std::vector<std::string>& out);

/// Gang/moldable occupancy, re-derived from the execution log alone: each
/// record's block [worker, worker+width) must fit the machine with the
/// width the workload declares (a gang is never split); per-worker
/// intervals must not overlap once blocks are expanded; and a sweep over
/// start/end events must never find more than num_workers occupied
/// worker-slots at any instant.
void oracle_gang_occupancy(const std::string& name,
                           const machine::Cluster& cluster,
                           const std::vector<tasks::Task>& workload,
                           std::vector<std::string>& out);

}  // namespace rtds::testing
