#include "testing/shrink.h"

#include <utility>
#include <vector>

namespace rtds::testing {
namespace {

/// Simplification candidates, most-reductive first. Each is `s` with one
/// aspect moved toward the trivial scenario; no-ops are skipped so the
/// greedy loop terminates (every accepted candidate strictly simplifies).
std::vector<Scenario> candidates(const Scenario& s) {
  std::vector<Scenario> out;
  const auto push = [&out, &s](const Scenario& c) {
    if (!(c == s)) out.push_back(c);
  };
  if (s.num_tasks > 1) {
    Scenario c = s;
    c.num_tasks = s.num_tasks / 2;
    push(c);
  }
  if (s.num_tasks > 0) {
    Scenario c = s;
    c.num_tasks -= 1;
    push(c);
  }
  {
    Scenario c = s;
    c.run_threaded = 0;  // a sim-only repro is far cheaper to replay
    push(c);
  }
  {
    Scenario c = s;
    c.num_shards = 1;
    push(c);
  }
  if (s.workers > 1) {
    Scenario c = s;
    c.workers = s.workers / 2;
    c.num_shards = 1;  // keep the shards-divide-workers invariant
    // ...and the gang-fits-the-machine invariant.
    if (c.workers < 2) c.gang_permille = 0;
    if (c.gang_max_workers > c.workers && c.workers >= 2) {
      c.gang_max_workers = c.workers;
    }
    push(c);
  }
  if (s.gang_permille > 0) {
    Scenario c = s;
    c.gang_permille = 0;
    push(c);
  }
  if (s.gang_max_workers > 2) {
    Scenario c = s;
    c.gang_max_workers = 2;
    push(c);
  }
  if (s.num_releases > 1) {
    Scenario c = s;
    c.num_releases = 1;
    push(c);
  }
  if (s.release_jitter_us > 0) {
    Scenario c = s;
    c.release_jitter_us = 0;
    push(c);
  }
  {
    Scenario c = s;
    c.refusal_period = 0;
    push(c);
  }
  {
    Scenario c = s;
    c.arrival_kind = kArrivalBursty;
    c.max_start_offset_us = 0;
    push(c);
  }
  {
    Scenario c = s;
    c.reclaim = 0;
    c.actual_fraction_min_permille = 1000;
    c.actual_fraction_max_permille = 1000;
    push(c);
  }
  {
    Scenario c = s;
    c.comm_cost_us = 0;
    push(c);
  }
  {
    Scenario c = s;
    c.mailbox_capacity = 1024;
    c.delivery_retries = 3;
    push(c);
  }
  {
    Scenario c = s;
    c.max_delivery_attempts = 8;
    c.backpressure_us = 200;
    push(c);
  }
  {
    Scenario c = s;
    c.quantum_kind = 0;
    push(c);
  }
  {
    Scenario c = s;
    c.vertex_cost_us = 10;
    c.phase_overhead_us = 50;
    push(c);
  }
  {
    Scenario c = s;
    const std::int64_t mid = (s.processing_min_us + s.processing_max_us) / 2;
    c.processing_min_us = mid;
    c.processing_max_us = mid;
    push(c);
  }
  {
    Scenario c = s;
    const std::uint32_t mid = (s.laxity_min_centi + s.laxity_max_centi) / 2;
    c.laxity_min_centi = mid;
    c.laxity_max_centi = mid;
    push(c);
  }
  {
    Scenario c = s;
    c.algo_spec = "rt_sads";
    push(c);
  }
  {
    Scenario c = s;
    c.parity_class = 0;
    push(c);
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const Scenario& failing, const HarnessOptions& options,
                    std::uint32_t max_runs) {
  ShrinkResult r;
  r.minimal = failing;
  r.result = run_scenario(failing, options);
  ++r.runs;
  if (r.result.ok()) return r;

  bool progress = true;
  while (progress && r.runs < max_runs) {
    progress = false;
    for (const Scenario& c : candidates(r.minimal)) {
      if (r.runs >= max_runs) break;
      ScenarioResult cr = run_scenario(c, options);
      ++r.runs;
      if (!cr.ok()) {
        r.minimal = c;
        r.result = std::move(cr);
        progress = true;
        break;  // re-derive candidates from the new, simpler scenario
      }
    }
  }
  return r;
}

}  // namespace rtds::testing
