// Greedy scenario shrinking: turn a failing fuzz case into the smallest
// scenario that still violates an oracle, so the replay token attached to a
// CI failure reproduces the bug in milliseconds instead of re-running the
// original adversarial blob.
//
// The shrinker proposes one simplification at a time (halve the task count,
// drop fault injection, collapse to one worker, zero the comm cost, ...),
// keeps a candidate only if the harness still reports a violation, and
// repeats to a fixpoint under a hard budget of harness runs. Greedy is
// enough here: scenarios are small flat structs and every transformation is
// monotone toward the default scenario.
#pragma once

#include <cstdint>

#include "testing/harness.h"
#include "testing/scenario.h"

namespace rtds::testing {

struct ShrinkResult {
  Scenario minimal;       ///< smallest still-failing scenario found
  ScenarioResult result;  ///< harness outcome of `minimal`
  std::uint32_t runs{0};  ///< harness invocations spent (<= max_runs)
};

/// Shrinks `failing` to a fixpoint or until `max_runs` harness invocations.
/// If `failing` does not actually fail under `options`, returns it
/// unchanged with result.ok() == true.
ShrinkResult shrink(const Scenario& failing, const HarnessOptions& options,
                    std::uint32_t max_runs = 200);

}  // namespace rtds::testing
