// Interconnect cost model (Sec. 2).
//
// The paper assumes cut-through (wormhole) routing, as on the Intel
// Paragon: inter-processor communication cost is independent of distance,
// so c_ij is either 0 (task has affinity with the processor) or a constant
// C. We implement that model, plus a store-and-forward 2D-mesh alternative
// (cost proportional to Manhattan hops to the nearest data holder) used by
// an ablation bench to show how sensitive the results are to the
// constant-cost assumption.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "tasks/task.h"

namespace rtds::machine {

using tasks::AffinitySet;
using tasks::ProcessorId;

enum class RoutingModel {
  kCutThrough,     ///< paper model: constant C for any non-affine placement
  kStoreAndForward ///< ablation: C_hop * Manhattan hops to nearest holder
};

/// Computes communication costs c_ij between a task's data holders
/// (its affinity set) and a candidate execution processor.
class Interconnect {
 public:
  /// Cut-through interconnect with constant cost `constant_cost`.
  static Interconnect cut_through(std::uint32_t num_workers,
                                  SimDuration constant_cost);

  /// Store-and-forward 2D mesh: workers are laid out row-major on a
  /// near-square grid; cost is `per_hop_cost` times the Manhattan distance
  /// to the nearest processor holding the task's data.
  static Interconnect mesh(std::uint32_t num_workers,
                           SimDuration per_hop_cost);

  [[nodiscard]] std::uint32_t num_workers() const { return num_workers_; }
  [[nodiscard]] RoutingModel model() const { return model_; }

  /// The model's cost constant: C under cut-through, the per-hop cost under
  /// store-and-forward. Exposed so the search can inline the cut-through
  /// pricing (0 or C) without a call per evaluation.
  [[nodiscard]] SimDuration link_cost() const { return cost_; }

  /// Communication cost c_ij of running a task whose data holders are
  /// `affinity` on worker `target`. Zero when target is a holder.
  /// An empty affinity set is a caller bug (a task must have data
  /// somewhere).
  [[nodiscard]] SimDuration comm_cost(const AffinitySet& affinity,
                                      ProcessorId target) const;

 private:
  Interconnect(RoutingModel model, std::uint32_t num_workers,
               SimDuration cost);

  [[nodiscard]] std::uint32_t manhattan(ProcessorId a, ProcessorId b) const;

  RoutingModel model_;
  std::uint32_t num_workers_;
  SimDuration cost_;        ///< C (cut-through) or per-hop cost (mesh)
  std::uint32_t mesh_cols_{1};
};

}  // namespace rtds::machine
