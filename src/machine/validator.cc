#include "machine/validator.h"

#include <sstream>
#include <unordered_map>

namespace rtds::machine {

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const std::string& v : violations) os << v << "\n";
  return os.str();
}

ValidationReport validate_execution(
    const Cluster& cluster, const std::vector<tasks::Task>& workload) {
  ValidationReport report;
  const auto violate = [&](const std::string& what) {
    report.violations.push_back(what);
  };

  std::unordered_map<tasks::TaskId, const tasks::Task*> by_id;
  for (const tasks::Task& t : workload) {
    if (!by_id.emplace(t.id, &t).second) {
      violate("workload has duplicate task id " + std::to_string(t.id));
    }
  }

  std::unordered_map<tasks::TaskId, int> executions;
  std::vector<SimTime> worker_cursor(cluster.num_workers(),
                                     SimTime::zero());
  std::vector<SimDuration> worker_busy(cluster.num_workers(),
                                       SimDuration::zero());

  for (const CompletionRecord& rec : cluster.log()) {
    ++report.records_checked;
    const std::string tag = "task " + std::to_string(rec.task) + ": ";

    const auto it = by_id.find(rec.task);
    if (it == by_id.end()) {
      violate(tag + "executed but not in the workload");
      continue;
    }
    const tasks::Task& task = *it->second;

    if (++executions[rec.task] > 1) {
      violate(tag + "executed more than once");
    }
    if (rec.worker >= cluster.num_workers()) {
      violate(tag + "bad worker id");
      continue;
    }

    // Gang occupancy: the logged width must match the task's declared gang
    // size, and the whole contiguous block must fit in the machine (a gang
    // is never split or truncated).
    if (rec.width != task.workers_required) {
      violate(tag + "logged gang width " + std::to_string(rec.width) +
              " != workers_required " +
              std::to_string(task.workers_required));
    }
    if (rec.width < 1 ||
        rec.width > cluster.num_workers() - rec.worker) {
      violate(tag + "gang block exceeds the machine");
      continue;
    }

    // Causality.
    if (rec.start < rec.delivered) {
      violate(tag + "started before its schedule was delivered");
    }
    if (rec.delivered < task.arrival) {
      violate(tag + "scheduled before it arrived");
    }
    if (rec.start < task.earliest_start) {
      violate(tag + "started before its start-time constraint");
    }

    // Communication pricing.
    const SimDuration comm =
        cluster.interconnect().comm_cost(task.affinity, rec.worker);
    if (comm != rec.comm_cost) {
      violate(tag + "communication cost mismatch: log " +
              std::to_string(rec.comm_cost.us) + "us, interconnect " +
              std::to_string(comm.us) + "us");
    }

    // Demand (non-preemptive: end - start is exactly demand + comm).
    const SimDuration demand =
        cluster.reclaim_mode() == ReclaimMode::kReclaim
            ? task.effective_processing()
            : task.processing;
    // Non-preemptive execution: the span is exactly demand + comm once the
    // task starts (start-time constraints insert idling BEFORE the start).
    if (rec.end - rec.start != demand + comm) {
      violate(tag + "execution span != demand + comm");
    }

    // Per-worker serialization in log order, across the whole gang block:
    // every occupied worker must be free at the start, and every one is
    // held (and charged busy time) until the end.
    for (std::uint32_t j = 0; j < rec.width; ++j) {
      if (rec.start < worker_cursor[rec.worker + j]) {
        violate(tag + "overlaps the previous task on worker " +
                std::to_string(rec.worker + j));
      }
      worker_cursor[rec.worker + j] = rec.end;
      worker_busy[rec.worker + j] += demand + comm;
    }

    // Deadline outcome.
    if (rec.met_deadline() != (rec.end <= task.deadline)) {
      violate(tag + "deadline flag inconsistent with task deadline");
    }
    if (rec.deadline != task.deadline) {
      violate(tag + "logged deadline differs from the task's");
    }
  }

  // Aggregate accounting.
  for (std::uint32_t k = 0; k < cluster.num_workers(); ++k) {
    if (cluster.busy_time(k) != worker_busy[k]) {
      violate("worker " + std::to_string(k) +
              " busy-time accounting mismatch");
    }
    if (cluster.busy_until(k) != worker_cursor[k] &&
        worker_cursor[k] != SimTime::zero()) {
      violate("worker " + std::to_string(k) + " busy-until mismatch");
    }
  }
  const auto& stats = cluster.stats();
  if (stats.executed != report.records_checked) {
    violate("stats.executed != log size");
  }
  std::uint64_t hits = 0;
  for (const CompletionRecord& rec : cluster.log()) {
    if (rec.met_deadline()) ++hits;
  }
  if (stats.deadline_hits != hits ||
      stats.deadline_misses != report.records_checked - hits) {
    violate("hit/miss counters inconsistent with the log");
  }
  return report;
}

}  // namespace rtds::machine
