#include "machine/interconnect.h"

#include <cmath>

#include "common/error.h"

namespace rtds::machine {

Interconnect::Interconnect(RoutingModel model, std::uint32_t num_workers,
                           SimDuration cost)
    : model_(model), num_workers_(num_workers), cost_(cost) {
  RTDS_REQUIRE(num_workers >= 1, "Interconnect: need >= 1 worker");
  RTDS_REQUIRE(num_workers <= AffinitySet::kMaxProcessors,
               "Interconnect: too many workers");
  RTDS_REQUIRE(!cost.is_negative(), "Interconnect: negative cost");
  if (model_ == RoutingModel::kStoreAndForward) {
    mesh_cols_ = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(double(num_workers))));
  }
}

Interconnect Interconnect::cut_through(std::uint32_t num_workers,
                                       SimDuration constant_cost) {
  return Interconnect(RoutingModel::kCutThrough, num_workers, constant_cost);
}

Interconnect Interconnect::mesh(std::uint32_t num_workers,
                                SimDuration per_hop_cost) {
  return Interconnect(RoutingModel::kStoreAndForward, num_workers,
                      per_hop_cost);
}

std::uint32_t Interconnect::manhattan(ProcessorId a, ProcessorId b) const {
  const auto ax = a % mesh_cols_, ay = a / mesh_cols_;
  const auto bx = b % mesh_cols_, by = b / mesh_cols_;
  const auto dx = ax > bx ? ax - bx : bx - ax;
  const auto dy = ay > by ? ay - by : by - ay;
  return dx + dy;
}

SimDuration Interconnect::comm_cost(const AffinitySet& affinity,
                                    ProcessorId target) const {
  RTDS_REQUIRE(target < num_workers_, "comm_cost: worker id out of range");
  RTDS_REQUIRE(!affinity.empty(), "comm_cost: task has no data holder");
  if (affinity.contains(target)) return SimDuration::zero();
  switch (model_) {
    case RoutingModel::kCutThrough:
      return cost_;
    case RoutingModel::kStoreAndForward: {
      std::uint32_t best = ~std::uint32_t{0};
      for (ProcessorId holder : affinity.to_vector()) {
        best = std::min(best, manhattan(holder, target));
      }
      return cost_ * std::int64_t(best);
    }
  }
  RTDS_ASSERT_MSG(false, "unreachable routing model");
  return SimDuration::zero();
}

}  // namespace rtds::machine
