// Independent validation oracle for executed schedules.
//
// Re-derives, from first principles, everything the Cluster's execution log
// claims: single execution per task, non-preemption, per-worker serial
// order, correct communication pricing, correct demand (worst-case or
// reclaimed), arrival/delivery causality, and deadline outcomes. The test
// suite runs it after end-to-end scheduling runs so that an accounting bug
// in Cluster cannot silently validate itself.
#pragma once

#include <string>
#include <vector>

#include "machine/cluster.h"

namespace rtds::machine {

struct ValidationReport {
  std::vector<std::string> violations;
  std::uint64_t records_checked{0};

  [[nodiscard]] bool ok() const { return violations.empty(); }

  /// All violations joined with newlines (for test failure messages).
  [[nodiscard]] std::string to_string() const;
};

/// Validates `cluster`'s execution log against the task definitions in
/// `workload` (the source of truth for arrival, demand, affinity and
/// deadline). Tasks in the workload that never executed are fine (culled
/// or unscheduled); log entries without a workload task are violations.
ValidationReport validate_execution(const Cluster& cluster,
                                    const std::vector<tasks::Task>& workload);

}  // namespace rtds::machine
