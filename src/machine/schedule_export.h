// Exports a cluster's execution log for offline inspection/plotting.
#pragma once

#include <iosfwd>

#include "machine/cluster.h"

namespace rtds::machine {

/// Writes one CSV row per executed task: worker, timing, deadline outcome.
/// Rows are in delivery order (the order the cluster recorded them), which
/// is also per-worker execution order. Suitable for building Gantt charts.
void write_completion_csv(const Cluster& cluster, std::ostream& os);

/// Per-worker utilization summary over [0, horizon]: busy time, share of
/// the horizon, and tasks executed. Plain text.
void write_utilization_summary(const Cluster& cluster, SimTime horizon,
                               std::ostream& os);

}  // namespace rtds::machine
