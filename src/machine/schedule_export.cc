#include "machine/schedule_export.h"

#include <iomanip>
#include <ostream>
#include <vector>

#include "common/error.h"

namespace rtds::machine {

void write_completion_csv(const Cluster& cluster, std::ostream& os) {
  os << "task,worker,delivered_us,start_us,end_us,deadline_us,comm_us,hit\n";
  for (const CompletionRecord& r : cluster.log()) {
    os << r.task << ',' << r.worker << ',' << r.delivered.us << ','
       << r.start.us << ',' << r.end.us << ',' << r.deadline.us << ','
       << r.comm_cost.us << ',' << (r.met_deadline() ? 1 : 0) << '\n';
  }
}

void write_utilization_summary(const Cluster& cluster, SimTime horizon,
                               std::ostream& os) {
  RTDS_REQUIRE(horizon > SimTime::zero(),
               "write_utilization_summary: horizon must be positive");
  std::vector<std::uint64_t> executed(cluster.num_workers(), 0);
  for (const CompletionRecord& r : cluster.log()) {
    ++executed[r.worker];
  }
  os << "worker  busy(ms)  util%   tasks\n";
  for (std::uint32_t k = 0; k < cluster.num_workers(); ++k) {
    const SimDuration busy = cluster.busy_time(k);
    const double util =
        100.0 * double(busy.us) / double((horizon - SimTime::zero()).us);
    os << std::left << std::setw(8) << k << std::setw(10) << std::fixed
       << std::setprecision(1) << busy.millis() << std::setw(8) << util
       << executed[k] << "\n";
  }
}

}  // namespace rtds::machine
