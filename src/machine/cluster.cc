#include "machine/cluster.h"

#include "common/error.h"

namespace rtds::machine {

Cluster::Cluster(std::uint32_t num_workers, Interconnect interconnect,
                 ReclaimMode reclaim)
    : num_workers_(num_workers),
      interconnect_(interconnect),
      reclaim_(reclaim),
      workers_(num_workers) {
  RTDS_REQUIRE(num_workers >= 1, "Cluster: need >= 1 worker");
  RTDS_REQUIRE(interconnect.num_workers() == num_workers,
               "Cluster: interconnect sized for a different worker count");
}

void Cluster::deliver(const std::vector<ScheduledAssignment>& schedule,
                      SimTime now) {
  for (const ScheduledAssignment& sa : schedule) {
    const std::uint32_t k = sa.task.workers_required;
    RTDS_REQUIRE(k >= 1, "deliver: workers_required must be >= 1");
    RTDS_REQUIRE(sa.worker < num_workers_ && k <= num_workers_ - sa.worker,
                 "deliver: gang block exceeds the machine");
    RTDS_REQUIRE(sa.task.effective_processing() <= sa.task.processing,
                 "deliver: actual cost exceeds the worst-case estimate");
    const SimDuration comm =
        interconnect_.comm_cost(sa.task.affinity, sa.worker);
    const SimDuration demand = reclaim_ == ReclaimMode::kReclaim
                                   ? sa.task.effective_processing()
                                   : sa.task.processing;
    reclaimed_ += sa.task.processing - demand;
    // A gang job is handed to its whole block atomically: it starts once
    // every block member's queue has drained, and occupies all of them
    // until it ends. Communication is priced against the lead's affinity.
    SimTime start = now;
    for (std::uint32_t j = 0; j < k; ++j) {
      const SimTime horizon = workers_[sa.worker + j].busy_until;
      if (horizon > start) start = horizon;
    }
    if (sa.task.earliest_start > start) start = sa.task.earliest_start;
    const SimTime end = start + demand + comm;
    for (std::uint32_t j = 0; j < k; ++j) {
      Worker& w = workers_[sa.worker + j];
      w.busy_until = end;
      w.busy_time += demand + comm;
    }

    CompletionRecord rec;
    rec.task = sa.task.id;
    rec.worker = sa.worker;
    rec.delivered = now;
    rec.start = start;
    rec.end = end;
    rec.deadline = sa.task.deadline;
    rec.comm_cost = comm;
    rec.width = k;
    log_.push_back(rec);

    ++stats_.executed;
    if (rec.met_deadline()) {
      ++stats_.deadline_hits;
    } else {
      ++stats_.deadline_misses;
    }
  }
}

SimDuration Cluster::load(ProcessorId worker, SimTime t) const {
  RTDS_REQUIRE(worker < num_workers_, "load: bad worker id");
  const SimTime horizon = workers_[worker].busy_until;
  return horizon <= t ? SimDuration::zero() : horizon - t;
}

SimDuration Cluster::min_load(SimTime t) const {
  SimDuration best = SimDuration::max();
  for (ProcessorId k = 0; k < num_workers_; ++k) {
    best = min_duration(best, load(k, t));
  }
  return best;
}

SimTime Cluster::busy_until(ProcessorId worker) const {
  RTDS_REQUIRE(worker < num_workers_, "busy_until: bad worker id");
  return workers_[worker].busy_until;
}

SimTime Cluster::makespan() const {
  SimTime latest = SimTime::zero();
  for (const Worker& w : workers_) {
    if (w.busy_until > latest) latest = w.busy_until;
  }
  return latest;
}

SimDuration Cluster::busy_time(ProcessorId worker) const {
  RTDS_REQUIRE(worker < num_workers_, "busy_time: bad worker id");
  return workers_[worker].busy_time;
}

}  // namespace rtds::machine
