// The distributed-memory multiprocessor model.
//
// One dedicated host processor runs the scheduler (src/sched); the m worker
// processors execute scheduled tasks from their ready queues, one at a time,
// non-preemptably (Sec. 2 / Sec. 4). Because workers only ever drain FIFO
// ready queues of non-preemptable tasks, execution is analytically
// deterministic: when a schedule is delivered we can compute every start and
// end time immediately, keeping only a per-worker `busy_until` horizon. The
// DES clock (src/sim) orders schedule deliveries against task arrivals.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "machine/interconnect.h"
#include "tasks/task.h"

namespace rtds::machine {

using tasks::ProcessorId;
using tasks::Task;
using tasks::TaskId;

/// One task-to-processor assignment within a delivered schedule, in
/// schedule order for its worker. For a gang task (workers_required == k),
/// `worker` is the LEAD of the contiguous block [worker, worker+k): the
/// whole block executes the job simultaneously.
struct ScheduledAssignment {
  Task task;
  ProcessorId worker{0};
};

/// Completion record for one executed task. A k-worker gang produces ONE
/// record (the lead's) with width == k; the siblings' occupancy is implied
/// by the contiguous-block rule.
struct CompletionRecord {
  TaskId task{0};
  ProcessorId worker{0};
  SimTime delivered{SimTime::zero()};  ///< when the schedule reached the queue
  SimTime start{SimTime::zero()};
  SimTime end{SimTime::zero()};
  SimTime deadline{SimTime::zero()};
  SimDuration comm_cost{SimDuration::zero()};
  std::uint32_t width{1};  ///< workers occupied: [worker, worker+width)
  [[nodiscard]] bool met_deadline() const { return end <= deadline; }
};

/// Aggregate execution statistics.
struct ExecutionStats {
  std::uint64_t executed{0};
  std::uint64_t deadline_hits{0};
  /// Misses *during execution* — the correction theorem says schedulers
  /// using the predictive feasibility test keep this at zero.
  std::uint64_t deadline_misses{0};
};

/// How workers treat the gap between a task's worst-case and actual cost.
enum class ReclaimMode {
  /// Execute the worst-case estimate the scheduler planned with (paper).
  kWorstCase,
  /// Resource reclaiming (the paper's ref [3]): execute the actual demand
  /// and start the next queued task early. Sound for the correction
  /// theorem: actual <= worst case, so completions only move earlier.
  kReclaim,
};

/// The cluster: m workers + interconnect + execution bookkeeping.
class Cluster {
 public:
  Cluster(std::uint32_t num_workers, Interconnect interconnect,
          ReclaimMode reclaim = ReclaimMode::kWorstCase);

  [[nodiscard]] ReclaimMode reclaim_mode() const { return reclaim_; }

  /// Total execution time saved by reclaiming so far (zero in kWorstCase).
  [[nodiscard]] SimDuration reclaimed_time() const { return reclaimed_; }

  [[nodiscard]] std::uint32_t num_workers() const { return num_workers_; }
  [[nodiscard]] const Interconnect& interconnect() const {
    return interconnect_;
  }

  /// Total execution cost p + c of `task` on `worker`.
  [[nodiscard]] SimDuration execution_cost(const Task& task,
                                           ProcessorId worker) const {
    return task.processing + interconnect_.comm_cost(task.affinity, worker);
  }

  /// Delivers a schedule to the worker ready queues at time `now`
  /// (assignments are appended in order). Start/end times are computed
  /// immediately; completion records accumulate in the log.
  void deliver(const std::vector<ScheduledAssignment>& schedule, SimTime now);

  /// Remaining work on `worker` at time t: Load_k in the paper's quantum
  /// criterion (Fig. 3).
  [[nodiscard]] SimDuration load(ProcessorId worker, SimTime t) const;

  /// Min over workers of load(k, t): Min_Load in Fig. 3.
  [[nodiscard]] SimDuration min_load(SimTime t) const;

  /// Per-worker committed-completion horizon (absolute time).
  [[nodiscard]] SimTime busy_until(ProcessorId worker) const;

  /// Latest completion over all workers (simulation makespan so far).
  [[nodiscard]] SimTime makespan() const;

  /// Total busy time accumulated on `worker` (for utilization metrics).
  [[nodiscard]] SimDuration busy_time(ProcessorId worker) const;

  [[nodiscard]] const std::vector<CompletionRecord>& log() const {
    return log_;
  }
  [[nodiscard]] const ExecutionStats& stats() const { return stats_; }

 private:
  struct Worker {
    SimTime busy_until{SimTime::zero()};
    SimDuration busy_time{SimDuration::zero()};
  };

  std::uint32_t num_workers_;
  Interconnect interconnect_;
  ReclaimMode reclaim_;
  SimDuration reclaimed_{SimDuration::zero()};
  std::vector<Worker> workers_;
  std::vector<CompletionRecord> log_;
  ExecutionStats stats_;
};

}  // namespace rtds::machine
