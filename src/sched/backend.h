// Execution backends for the phase pipeline.
//
// The scheduling phase of Sec. 4 (Batch(j) -> Q_s(j) -> search -> deliver
// S_j) is pure algorithm: the only things it needs from the world are a
// clock, the residual load of each worker, and a way to hand a schedule to
// the worker ready queues. ExecutionBackend captures exactly that surface,
// so ONE PhasePipeline (sched/pipeline.h) drives every deployment:
//
//   SimBackend         — machine::Cluster on the DES clock (the paper's
//                        instrument; all figures run here)
//   ThreadedBackend    — std::thread workers + mailboxes on the wall clock
//                        (src/runtime/threaded_backend.h)
//   PartitionedBackend — K scheduling hosts, each owning a shard of the
//                        workers on its own DES clock (multi-host runs)
//
// A new deployment (async batching, work stealing, remote workers) is one
// new backend file; the phase logic is never duplicated again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "machine/cluster.h"
#include "machine/interconnect.h"
#include "sched/ledger.h"
#include "sim/simulator.h"

namespace rtds::sched {

/// Terminal accounting a backend reports once all delivered work has run.
struct BackendStats {
  std::uint64_t deadline_hits{0};
  std::uint64_t exec_misses{0};
  SimTime finish_time{SimTime::zero()};  ///< all delivered work drained
};

/// Outcome of one deliver() call. A backend with bounded ready queues may
/// refuse part of the schedule; the refused assignments are returned by
/// identity (not just counted) so the pipeline can readmit the tasks into
/// the next batch instead of losing them.
struct DeliveryResult {
  std::size_t accepted{0};
  std::vector<machine::ScheduledAssignment> undelivered;
};

/// The machine surface the phase pipeline schedules against.
///
/// Time flows differently per backend: the DES backends advance their clock
/// only when told (advance/wait_until), while the threaded backend's wall
/// clock runs by itself (its advance is a no-op — the real search already
/// consumed real time). The pipeline only ever observes time through now().
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  [[nodiscard]] virtual std::uint32_t num_workers() const = 0;
  [[nodiscard]] virtual const machine::Interconnect& interconnect() const = 0;

  /// Current time on this backend's clock.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Residual committed work on `worker` at time t (Load_k in Fig. 3).
  [[nodiscard]] virtual SimDuration load(std::uint32_t worker,
                                         SimTime t) const = 0;

  /// Blocks (or advances the simulated clock) until time t; no-op if t has
  /// already passed.
  virtual void wait_until(SimTime t) = 0;

  /// Charges `host_busy` scheduling time: the host processor was occupied
  /// generating vertices and delivering S_j for this long.
  virtual void advance(SimDuration host_busy) = 0;

  /// Appends the schedule to the worker ready queues. Backends with bounded
  /// queues report the assignments they refused (counted by the pipeline as
  /// overflow drops and readmitted into the next batch); DES backends accept
  /// everything.
  virtual DeliveryResult deliver(
      const std::vector<machine::ScheduledAssignment>& schedule) = 0;

  /// Waits for every delivered task to finish executing and reports the
  /// terminal counts. Called exactly once, after the last phase.
  virtual BackendStats drain() = 0;

  /// Attaches the pipeline's task ledger. A bound backend must report the
  /// per-task terminal outcome (hit or miss) of every accepted delivery via
  /// ledger->execute() before drain() returns; the pipeline binds the
  /// ledger before the first phase and detaches it (nullptr) after drain.
  /// The ledger is only ever touched from the host thread.
  virtual void bind_ledger(TaskLedger* ledger) = 0;
};

/// DES backend: machine::Cluster for execution, sim::Simulator for time.
/// Both are borrowed and left in their final state so callers can inspect
/// the completion log; hit/miss counts are reported as deltas against the
/// construction-time snapshot (clusters may be reused across runs).
class SimBackend final : public ExecutionBackend {
 public:
  SimBackend(machine::Cluster& cluster, sim::Simulator& sim);

  [[nodiscard]] std::uint32_t num_workers() const override;
  [[nodiscard]] const machine::Interconnect& interconnect() const override;
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] SimDuration load(std::uint32_t worker,
                                 SimTime t) const override;
  void wait_until(SimTime t) override;
  void advance(SimDuration host_busy) override;
  DeliveryResult deliver(
      const std::vector<machine::ScheduledAssignment>& schedule) override;
  BackendStats drain() override;
  void bind_ledger(TaskLedger* ledger) override;

 private:
  machine::Cluster& cluster_;
  sim::Simulator& sim_;
  machine::ExecutionStats initial_;
  std::size_t initial_log_size_;
  TaskLedger* ledger_{nullptr};
};

/// K scheduling hosts, each owning an equal shard of the workers with its
/// own cluster and DES clock (the shards are independent machines; there is
/// no cross-shard migration). host(s) is the ExecutionBackend the phase
/// pipeline runs against for shard s.
class PartitionedBackend {
 public:
  PartitionedBackend(std::uint32_t num_hosts, std::uint32_t workers_per_host,
                     SimDuration comm_cost, machine::ReclaimMode reclaim);

  [[nodiscard]] std::uint32_t num_hosts() const {
    return static_cast<std::uint32_t>(hosts_.size());
  }
  [[nodiscard]] ExecutionBackend& host(std::uint32_t h);
  [[nodiscard]] const machine::Cluster& cluster(std::uint32_t h) const;

 private:
  struct Host {
    Host(std::uint32_t workers, SimDuration comm_cost,
         machine::ReclaimMode reclaim);
    machine::Cluster cluster;
    sim::Simulator sim;
    SimBackend backend;
  };
  std::vector<std::unique_ptr<Host>> hosts_;
};

}  // namespace rtds::sched
