#include "sched/registry.h"

#include <algorithm>
#include <charconv>

#include "common/error.h"
#include "sched/portfolio.h"
#include "search/engine.h"

namespace rtds::sched {

namespace {

bool valid_word(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- spec ----

std::optional<AlgorithmSpec> AlgorithmSpec::parse(const std::string& text) {
  AlgorithmSpec spec;
  const std::size_t qmark = text.find('?');
  spec.key = text.substr(0, qmark);
  if (!valid_word(spec.key)) return std::nullopt;
  if (qmark == std::string::npos) return spec;

  // `key?` with nothing after it, `a=1&&b=2`, `a=`, `=1`, and a repeated
  // parameter name are all malformed.
  std::size_t pos = qmark + 1;
  while (pos <= text.size()) {
    std::size_t amp = text.find('&', pos);
    if (amp == std::string::npos) amp = text.size();
    const std::string item = text.substr(pos, amp - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string name = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (!valid_word(name) || value.empty()) return std::nullopt;
    if (value.find('=') != std::string::npos) return std::nullopt;
    if (spec.find(name) != nullptr) return std::nullopt;
    spec.params.emplace_back(name, value);
    pos = amp + 1;
  }
  return spec;
}

std::string AlgorithmSpec::to_string() const {
  std::string out = key;
  char sep = '?';
  for (const auto& [name, value] : params) {
    out += sep;
    out += name;
    out += '=';
    out += value;
    sep = '&';
  }
  return out;
}

const std::string* AlgorithmSpec::find(const std::string& name) const {
  for (const auto& [n, v] : params) {
    if (n == name) return &v;
  }
  return nullptr;
}

// -------------------------------------------------------------- params ----

AlgorithmParams::AlgorithmParams(AlgorithmSpec spec)
    : spec_(std::move(spec)), consumed_(spec_.params.size(), false) {}

const std::string* AlgorithmParams::consume(const std::string& name) {
  for (std::size_t i = 0; i < spec_.params.size(); ++i) {
    if (spec_.params[i].first == name) {
      consumed_[i] = true;
      return &spec_.params[i].second;
    }
  }
  return nullptr;
}

std::uint32_t AlgorithmParams::u32(const std::string& name,
                                   std::uint32_t default_value) {
  const std::string* raw = consume(name);
  if (raw == nullptr) return default_value;
  std::uint32_t value = 0;
  const char* begin = raw->data();
  const char* end = begin + raw->size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  RTDS_REQUIRE(ec == std::errc{} && ptr == end,
               "algorithm spec '" + spec_.key + "': parameter '" + name +
                   "' wants an unsigned integer, got '" + *raw + "'");
  if (value != default_value) {
    canonical_.emplace_back(name, std::to_string(value));
  }
  return value;
}

std::size_t AlgorithmParams::choice(const std::string& name,
                                    const std::string& default_value,
                                    const std::vector<std::string>& allowed) {
  const std::string* raw = consume(name);
  const std::string& value = raw != nullptr ? *raw : default_value;
  const auto it = std::find(allowed.begin(), allowed.end(), value);
  if (it == allowed.end()) {
    std::string domain;
    for (const std::string& a : allowed) {
      if (!domain.empty()) domain += "|";
      domain += a;
    }
    RTDS_REQUIRE(false, "algorithm spec '" + spec_.key + "': parameter '" +
                            name + "' must be one of " + domain + ", got '" +
                            value + "'");
  }
  if (value != default_value) canonical_.emplace_back(name, value);
  return static_cast<std::size_t>(it - allowed.begin());
}

std::string AlgorithmParams::canonical_name() const {
  AlgorithmSpec canon;
  canon.key = spec_.key;
  canon.params = canonical_;
  return canon.to_string();
}

std::vector<std::string> AlgorithmParams::unconsumed() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < spec_.params.size(); ++i) {
    if (!consumed_[i]) out.push_back(spec_.params[i].first);
  }
  return out;
}

// ------------------------------------------------------------ registry ----

void AlgorithmRegistry::add(std::string key, std::string summary,
                            Factory factory) {
  RTDS_REQUIRE(valid_word(key), "registry key must be [a-z0-9_]+: " + key);
  RTDS_REQUIRE(find(key) == nullptr, "duplicate registry key: " + key);
  entries_.emplace_back(std::move(key),
                        Entry{std::move(summary), std::move(factory)});
}

bool AlgorithmRegistry::contains(const std::string& key) const {
  return find(key) != nullptr;
}

std::vector<std::string> AlgorithmRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

const std::string& AlgorithmRegistry::summary(const std::string& key) const {
  const Entry* e = find(key);
  RTDS_REQUIRE(e != nullptr, "unknown algorithm key: " + key);
  return e->summary;
}

const AlgorithmRegistry::Entry* AlgorithmRegistry::find(
    const std::string& key) const {
  for (const auto& [k, entry] : entries_) {
    if (k == key) return &entry;
  }
  return nullptr;
}

std::unique_ptr<PhaseAlgorithm> AlgorithmRegistry::make(
    const std::string& spec) const {
  const auto parsed = AlgorithmSpec::parse(spec);
  RTDS_REQUIRE(parsed.has_value(), "malformed algorithm spec: '" + spec +
                                       "' (want key?param=value&...)");
  const Entry* entry = find(parsed->key);
  RTDS_REQUIRE(entry != nullptr,
               "unknown algorithm key '" + parsed->key + "' in spec '" +
                   spec + "'");
  AlgorithmParams params(*parsed);
  auto algorithm = entry->factory(params);
  const std::vector<std::string> leftover = params.unconsumed();
  RTDS_REQUIRE(leftover.empty(), "algorithm spec '" + spec +
                                     "': unknown parameter '" +
                                     (leftover.empty() ? "" : leftover[0]) +
                                     "'");
  return algorithm;
}

std::optional<std::string> AlgorithmRegistry::canonicalize(
    const std::string& spec) const {
  try {
    return make(spec)->name();
  } catch (const Error&) {
    return std::nullopt;
  }
}

// ------------------------------------------------------------ builtins ----

const AlgorithmRegistry& AlgorithmRegistry::builtin() {
  static const AlgorithmRegistry* const registry = [] {
    using search::LevelProcessorOrder;
    using search::ProcessorOrder;
    using search::Representation;
    using search::SearchConfig;
    using search::SearchStrategy;
    using search::TaskOrder;
    auto* r = new AlgorithmRegistry();

    // Shared `threads=K` parameter for the tree-search entries: K worker
    // threads per phase on the parallel sharded engine (results are
    // bit-identical to K=1 for every budget).
    const auto consume_threads = [](AlgorithmParams& p) -> std::uint32_t {
      const std::uint32_t threads = p.u32("threads", 1);
      RTDS_REQUIRE(threads >= 1 && threads <= 64,
                   "algorithm spec: parameter 'threads' must be in [1, 64], "
                   "got " + std::to_string(threads));
      return threads;
    };

    r->add("rt_sads",
           "assignment-oriented tree search (Sec. 4); cost=on|off, "
           "order=min_end|index|min_comm, threads=K",
           [consume_threads](AlgorithmParams& p)
               -> std::unique_ptr<PhaseAlgorithm> {
             SearchConfig cfg;
             cfg.representation = Representation::kAssignmentOriented;
             cfg.task_order = TaskOrder::kEarliestDeadline;
             cfg.use_load_balance_cost =
                 p.choice("cost", "on", {"on", "off"}) == 0;
             switch (p.choice("order", "min_end",
                              {"min_end", "index", "min_comm"})) {
               case 0:
                 cfg.processor_order = ProcessorOrder::kMinEndOffset;
                 break;
               case 1:
                 cfg.processor_order = ProcessorOrder::kIndexOrder;
                 break;
               default:
                 cfg.processor_order = ProcessorOrder::kMinCommCost;
                 break;
             }
             const std::uint32_t threads = consume_threads(p);
             return std::make_unique<TreeSearchAlgorithm>(p.canonical_name(),
                                                          cfg, threads);
           });

    r->add("d_cols",
           "sequence-oriented tree search (Sec. 5.2); max_successors=N, "
           "level_order=round_robin|least_loaded, threads=K",
           [consume_threads](AlgorithmParams& p)
               -> std::unique_ptr<PhaseAlgorithm> {
             SearchConfig cfg;
             cfg.representation = Representation::kSequenceOriented;
             cfg.task_order = TaskOrder::kEarliestDeadline;
             cfg.use_load_balance_cost = false;
             cfg.max_successors = p.u32("max_successors", 0);
             cfg.level_processor_order =
                 p.choice("level_order", "round_robin",
                          {"round_robin", "least_loaded"}) == 0
                     ? LevelProcessorOrder::kRoundRobin
                     : LevelProcessorOrder::kLeastLoaded;
             const std::uint32_t threads = consume_threads(p);
             return std::make_unique<TreeSearchAlgorithm>(p.canonical_name(),
                                                          cfg, threads);
           });

    r->add("search",
           "generic tree search over the full config space; "
           "repr=assign|seq, strategy=dfs|best, cost=on|off, "
           "max_successors=N, threads=K",
           [consume_threads](AlgorithmParams& p)
               -> std::unique_ptr<PhaseAlgorithm> {
             SearchConfig cfg;
             cfg.representation =
                 p.choice("repr", "assign", {"assign", "seq"}) == 0
                     ? Representation::kAssignmentOriented
                     : Representation::kSequenceOriented;
             cfg.task_order = TaskOrder::kEarliestDeadline;
             cfg.strategy = p.choice("strategy", "dfs", {"dfs", "best"}) == 0
                                ? SearchStrategy::kDepthFirst
                                : SearchStrategy::kBestFirst;
             cfg.use_load_balance_cost =
                 p.choice("cost", "on", {"on", "off"}) == 0;
             cfg.max_successors = p.u32("max_successors", 0);
             const std::uint32_t threads = consume_threads(p);
             return std::make_unique<TreeSearchAlgorithm>(p.canonical_name(),
                                                          cfg, threads);
           });

    r->add("edf_ff", "greedy EDF first-fit baseline",
           [](AlgorithmParams& p) -> std::unique_ptr<PhaseAlgorithm> {
             return std::make_unique<GreedyAlgorithm>(
                 GreedyKind::kEdfFirstFit, 5, p.canonical_name());
           });

    r->add("edf_bf", "greedy EDF best-fit baseline",
           [](AlgorithmParams& p) -> std::unique_ptr<PhaseAlgorithm> {
             return std::make_unique<GreedyAlgorithm>(GreedyKind::kEdfBestFit,
                                                      5, p.canonical_name());
           });

    r->add("myopic",
           "Ramamritham-Stankovic window scheduler; window=W (>= 1)",
           [](AlgorithmParams& p) -> std::unique_ptr<PhaseAlgorithm> {
             const std::uint32_t window = p.u32("window", 5);
             RTDS_REQUIRE(window >= 1,
                          "algorithm spec 'myopic': window must be >= 1");
             return std::make_unique<GreedyAlgorithm>(
                 GreedyKind::kMyopic, window, p.canonical_name());
           });

    r->add("packing",
           "packing partitioned scheduler (arXiv:1809.04355); "
           "fit=first|best, order=edf|lpt",
           [](AlgorithmParams& p) -> std::unique_ptr<PhaseAlgorithm> {
             PartitionConfig cfg;
             cfg.fit = p.choice("fit", "first", {"first", "best"}) == 0
                           ? PartitionFit::kFirstFit
                           : PartitionFit::kBestFit;
             cfg.sort = p.choice("order", "edf", {"edf", "lpt"}) == 0
                            ? PartitionSort::kDeadline
                            : PartitionSort::kLpt;
             return std::make_unique<PartitionScheduler>(p.canonical_name(),
                                                         cfg);
           });

    r->add("multicrit",
           "multi-criteria partitioner (arXiv:1004.3715); "
           "sort=density|edf|min_slack|lpt, fit=first|best|worst|next",
           [](AlgorithmParams& p) -> std::unique_ptr<PhaseAlgorithm> {
             PartitionConfig cfg;
             switch (p.choice("sort", "density",
                              {"density", "edf", "min_slack", "lpt"})) {
               case 0:
                 cfg.sort = PartitionSort::kDensity;
                 break;
               case 1:
                 cfg.sort = PartitionSort::kDeadline;
                 break;
               case 2:
                 cfg.sort = PartitionSort::kMinSlack;
                 break;
               default:
                 cfg.sort = PartitionSort::kLpt;
                 break;
             }
             switch (p.choice("fit", "first",
                              {"first", "best", "worst", "next"})) {
               case 0:
                 cfg.fit = PartitionFit::kFirstFit;
                 break;
               case 1:
                 cfg.fit = PartitionFit::kBestFit;
                 break;
               case 2:
                 cfg.fit = PartitionFit::kWorstFit;
                 break;
               default:
                 cfg.fit = PartitionFit::kNextFit;
                 break;
             }
             return std::make_unique<PartitionScheduler>(p.canonical_name(),
                                                         cfg);
           });

    return r;
  }();
  return *registry;
}

}  // namespace rtds::sched
