#include "sched/backend.h"

#include "common/error.h"

namespace rtds::sched {

SimBackend::SimBackend(machine::Cluster& cluster, sim::Simulator& sim)
    : cluster_(cluster),
      sim_(sim),
      initial_(cluster.stats()),
      initial_log_size_(cluster.log().size()) {}

std::uint32_t SimBackend::num_workers() const {
  return cluster_.num_workers();
}

const machine::Interconnect& SimBackend::interconnect() const {
  return cluster_.interconnect();
}

SimTime SimBackend::now() const { return sim_.now(); }

SimDuration SimBackend::load(std::uint32_t worker, SimTime t) const {
  return cluster_.load(worker, t);
}

void SimBackend::wait_until(SimTime t) {
  if (t > sim_.now()) sim_.run_until(t);
}

void SimBackend::advance(SimDuration host_busy) {
  sim_.run_until(sim_.now() + host_busy);
}

DeliveryResult SimBackend::deliver(
    const std::vector<machine::ScheduledAssignment>& schedule) {
  cluster_.deliver(schedule, sim_.now());
  return DeliveryResult{schedule.size(), {}};  // unbounded queues: no refusals
}

BackendStats SimBackend::drain() {
  sim_.run();  // fire any events a caller scheduled alongside the pipeline
  if (ledger_ != nullptr) {
    // Per-task terminal outcomes: everything the cluster executed during
    // this run (clusters may be reused; skip pre-existing log entries).
    const auto& log = cluster_.log();
    for (std::size_t i = initial_log_size_; i < log.size(); ++i) {
      ledger_->execute(log[i].task, log[i].met_deadline());
    }
  }
  const machine::ExecutionStats finals = cluster_.stats();
  BackendStats out;
  out.deadline_hits = finals.deadline_hits - initial_.deadline_hits;
  out.exec_misses = finals.deadline_misses - initial_.deadline_misses;
  out.finish_time =
      cluster_.makespan() > sim_.now() ? cluster_.makespan() : sim_.now();
  return out;
}

void SimBackend::bind_ledger(TaskLedger* ledger) { ledger_ = ledger; }

PartitionedBackend::Host::Host(std::uint32_t workers, SimDuration comm_cost,
                               machine::ReclaimMode reclaim)
    : cluster(workers, machine::Interconnect::cut_through(workers, comm_cost),
              reclaim),
      backend(cluster, sim) {}

PartitionedBackend::PartitionedBackend(std::uint32_t num_hosts,
                                       std::uint32_t workers_per_host,
                                       SimDuration comm_cost,
                                       machine::ReclaimMode reclaim) {
  RTDS_REQUIRE(num_hosts >= 1, "PartitionedBackend: need >= 1 host");
  RTDS_REQUIRE(workers_per_host >= 1,
               "PartitionedBackend: need >= 1 worker per host");
  hosts_.reserve(num_hosts);
  for (std::uint32_t h = 0; h < num_hosts; ++h) {
    hosts_.push_back(
        std::make_unique<Host>(workers_per_host, comm_cost, reclaim));
  }
}

ExecutionBackend& PartitionedBackend::host(std::uint32_t h) {
  RTDS_REQUIRE(h < hosts_.size(), "PartitionedBackend: bad host id");
  return hosts_[h]->backend;
}

const machine::Cluster& PartitionedBackend::cluster(std::uint32_t h) const {
  RTDS_REQUIRE(h < hosts_.size(), "PartitionedBackend: bad host id");
  return hosts_[h]->cluster;
}

}  // namespace rtds::sched
