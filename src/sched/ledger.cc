#include "sched/ledger.h"

#include <sstream>

#include "common/error.h"

namespace rtds::sched {

const char* to_string(TaskState state) {
  switch (state) {
    case TaskState::kArrived: return "arrived";
    case TaskState::kBatched: return "batched";
    case TaskState::kScheduled: return "scheduled";
    case TaskState::kDelivered: return "delivered";
    case TaskState::kDeadlineHit: return "deadline_hit";
    case TaskState::kExecMiss: return "exec_miss";
    case TaskState::kCulled: return "culled";
    case TaskState::kRejected: return "rejected";
    case TaskState::kAdmissionRejected: return "admission_rejected";
  }
  return "unknown";
}

void TaskLedger::arrive(tasks::TaskId id) {
  const bool inserted = states_.emplace(id, TaskState::kArrived).second;
  RTDS_CHECK_MSG(inserted, "TaskLedger: task arrived twice");
  ++counts_.total;
  ++counts_.in_flight;
}

void TaskLedger::admit(tasks::TaskId id) {
  transition(id, TaskState::kArrived, TaskState::kBatched);
}

void TaskLedger::schedule(tasks::TaskId id) {
  transition(id, TaskState::kBatched, TaskState::kScheduled);
  ++counts_.schedule_events;
}

void TaskLedger::deliver(tasks::TaskId id) {
  transition(id, TaskState::kScheduled, TaskState::kDelivered);
  ++counts_.delivery_events;
}

void TaskLedger::drop(tasks::TaskId id) {
  transition(id, TaskState::kScheduled, TaskState::kBatched);
  ++counts_.drop_events;
}

void TaskLedger::cull(tasks::TaskId id) {
  transition(id, TaskState::kBatched, TaskState::kCulled);
  ++counts_.culled;
  --counts_.in_flight;
}

void TaskLedger::reject(tasks::TaskId id) {
  transition(id, TaskState::kScheduled, TaskState::kRejected);
  ++counts_.rejected;
  --counts_.in_flight;
}

void TaskLedger::reject_admission(tasks::TaskId id) {
  transition(id, TaskState::kArrived, TaskState::kAdmissionRejected);
  ++counts_.admission_rejected;
  --counts_.in_flight;
}

void TaskLedger::execute(tasks::TaskId id, bool hit) {
  transition(id, TaskState::kDelivered,
             hit ? TaskState::kDeadlineHit : TaskState::kExecMiss);
  if (hit) {
    ++counts_.deadline_hits;
  } else {
    ++counts_.exec_misses;
  }
  --counts_.in_flight;
}

bool TaskLedger::known(tasks::TaskId id) const {
  return states_.count(id) > 0;
}

TaskState TaskLedger::state(tasks::TaskId id) const {
  const auto it = states_.find(id);
  RTDS_CHECK_MSG(it != states_.end(), "TaskLedger: unknown task id");
  return it->second;
}

void TaskLedger::check_conserved() const {
  if (counts_.conserved()) return;
  std::ostringstream os;
  os << "task conservation violated: total " << counts_.total
     << " != deadline_hits " << counts_.deadline_hits << " + exec_misses "
     << counts_.exec_misses << " + culled " << counts_.culled
     << " + rejected " << counts_.rejected << " + admission_rejected "
     << counts_.admission_rejected << " (in flight " << counts_.in_flight
     << ")";
  RTDS_CHECK_MSG(false, os.str());
}

void TaskLedger::clear() {
  states_.clear();
  counts_ = LedgerCounts{};
}

void TaskLedger::transition(tasks::TaskId id, TaskState from, TaskState to) {
  const auto it = states_.find(id);
  RTDS_CHECK_MSG(it != states_.end(), "TaskLedger: unknown task id");
  if (it->second != from) {
    std::ostringstream os;
    os << "TaskLedger: task " << id << " is " << to_string(it->second)
       << ", cannot move " << to_string(from) << " -> " << to_string(to);
    RTDS_CHECK_MSG(false, os.str());
  }
  it->second = to;
}

}  // namespace rtds::sched
