#include "sched/algorithm.h"

#include <algorithm>

#include "common/error.h"
#include "search/partial_schedule.h"

namespace rtds::sched {

using search::Assignment;
using search::PartialSchedule;

TreeSearchAlgorithm::TreeSearchAlgorithm(std::string name,
                                         search::SearchConfig config,
                                         std::uint32_t threads)
    : name_(std::move(name)), engine_(config, threads) {}

SearchResult TreeSearchAlgorithm::schedule_phase(
    const std::vector<Task>& batch,
    const std::vector<SimDuration>& base_loads, SimTime delivery_time,
    const machine::Interconnect& net, std::uint64_t vertex_budget) const {
  return engine_.run(batch, base_loads, delivery_time, net, vertex_budget);
}

GreedyAlgorithm::GreedyAlgorithm(GreedyKind kind, std::uint32_t window,
                                 std::string name)
    : kind_(kind), window_(window), name_(std::move(name)) {
  RTDS_REQUIRE(window_ >= 1, "GreedyAlgorithm: window must be >= 1");
}

std::string GreedyAlgorithm::name() const {
  if (!name_.empty()) return name_;
  switch (kind_) {
    case GreedyKind::kEdfFirstFit:
      return "edf-first-fit";
    case GreedyKind::kEdfBestFit:
      return "edf-best-fit";
    case GreedyKind::kMyopic:
      return "myopic[W=" + std::to_string(window_) + "]";
  }
  return "greedy";
}

SearchResult GreedyAlgorithm::schedule_phase(
    const std::vector<Task>& batch,
    const std::vector<SimDuration>& base_loads, SimTime delivery_time,
    const machine::Interconnect& net, std::uint64_t vertex_budget) const {
  SearchResult result;
  if (batch.empty() || vertex_budget == 0) return result;

  const std::uint32_t m = net.num_workers();
  PartialSchedule ps(&batch, base_loads, delivery_time, &net);
  const std::vector<std::uint32_t> order = search::task_consideration_order(
      batch, search::TaskOrder::kEarliestDeadline);

  std::uint64_t budget_left = vertex_budget;
  auto& stats = result.stats;

  const auto charge = [&]() -> bool {
    if (budget_left == 0) {
      stats.budget_exhausted = true;
      return false;
    }
    --budget_left;
    ++stats.vertices_generated;
    return true;
  };

  if (kind_ == GreedyKind::kMyopic) {
    // Repeatedly: look at the W unassigned tasks with the earliest
    // deadlines, evaluate each on every processor, commit the pair with the
    // earliest finish. Tasks with no feasible placement are skipped (and
    // retried while they remain in the window).
    std::vector<bool> hopeless(batch.size(), false);
    while (!ps.complete() && !stats.budget_exhausted) {
      std::optional<Assignment> best;
      std::uint32_t inspected = 0;
      for (std::uint32_t i : order) {
        if (ps.assigned(i) || hopeless[i]) continue;
        if (inspected == window_) break;
        ++inspected;
        bool any = false;
        for (std::uint32_t k = 0; k < m && charge(); ++k) {
          if (auto a = ps.evaluate(i, k)) {
            any = true;
            if (!best || a->end_offset < best->end_offset) best = *a;
          }
        }
        if (!any && !stats.budget_exhausted) hopeless[i] = true;
        if (stats.budget_exhausted) break;
      }
      if (!best) break;  // nothing in the window fits
      ps.push(*best);
      ++stats.expansions;
    }
  } else {
    // One EDF pass; infeasible tasks are skipped rather than ending the
    // phase (greedy baselines have no notion of a dead-end).
    for (std::uint32_t i : order) {
      if (stats.budget_exhausted) break;
      std::optional<Assignment> best;
      for (std::uint32_t k = 0; k < m; ++k) {
        if (!charge()) break;
        if (auto a = ps.evaluate(i, k)) {
          if (kind_ == GreedyKind::kEdfFirstFit) {
            best = *a;
            break;
          }
          if (!best || a->end_offset < best->end_offset) best = *a;
        }
      }
      if (best) {
        ps.push(*best);
        ++stats.expansions;
      }
    }
  }

  stats.max_depth = ps.depth();
  stats.reached_leaf = ps.complete();
  result.schedule = ps.path();
  return result;
}

}  // namespace rtds::sched
