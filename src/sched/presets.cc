#include "sched/presets.h"

namespace rtds::sched {

using search::Representation;
using search::SearchConfig;
using search::TaskOrder;

std::unique_ptr<PhaseAlgorithm> make_rt_sads() {
  SearchConfig cfg;
  cfg.representation = Representation::kAssignmentOriented;
  cfg.task_order = TaskOrder::kEarliestDeadline;
  cfg.use_load_balance_cost = true;
  return std::make_unique<TreeSearchAlgorithm>("RT-SADS", cfg);
}

std::unique_ptr<PhaseAlgorithm> make_rt_sads_no_cost_function(
    search::ProcessorOrder order) {
  SearchConfig cfg;
  cfg.representation = Representation::kAssignmentOriented;
  cfg.task_order = TaskOrder::kEarliestDeadline;
  cfg.use_load_balance_cost = false;
  cfg.processor_order = order;
  const char* suffix = "";
  switch (order) {
    case search::ProcessorOrder::kIndexOrder:
      suffix = "index";
      break;
    case search::ProcessorOrder::kMinEndOffset:
      suffix = "min-end";
      break;
    case search::ProcessorOrder::kMinCommCost:
      suffix = "min-comm";
      break;
  }
  return std::make_unique<TreeSearchAlgorithm>(
      std::string("RT-SADS/no-cost-") + suffix, cfg);
}

std::unique_ptr<PhaseAlgorithm> make_d_cols() {
  SearchConfig cfg;
  cfg.representation = Representation::kSequenceOriented;
  cfg.task_order = TaskOrder::kEarliestDeadline;
  // The sequence-oriented comparator orders branches by the EDF heuristic
  // alone (the cost function of Sec. 4.4 is an RT-SADS feature).
  cfg.use_load_balance_cost = false;
  return std::make_unique<TreeSearchAlgorithm>("D-COLS", cfg);
}

std::unique_ptr<PhaseAlgorithm> make_d_cols_pruned(
    std::uint32_t max_successors) {
  SearchConfig cfg;
  cfg.representation = Representation::kSequenceOriented;
  cfg.task_order = TaskOrder::kEarliestDeadline;
  cfg.use_load_balance_cost = false;
  cfg.max_successors = max_successors;
  return std::make_unique<TreeSearchAlgorithm>(
      "D-COLS/b" + std::to_string(max_successors), cfg);
}

std::unique_ptr<PhaseAlgorithm> make_d_cols_least_loaded() {
  SearchConfig cfg;
  cfg.representation = Representation::kSequenceOriented;
  cfg.task_order = TaskOrder::kEarliestDeadline;
  cfg.use_load_balance_cost = false;
  cfg.level_processor_order = search::LevelProcessorOrder::kLeastLoaded;
  return std::make_unique<TreeSearchAlgorithm>("D-COLS/least-loaded", cfg);
}

std::unique_ptr<PhaseAlgorithm> make_edf_first_fit() {
  return std::make_unique<GreedyAlgorithm>(GreedyKind::kEdfFirstFit);
}

std::unique_ptr<PhaseAlgorithm> make_edf_best_fit() {
  return std::make_unique<GreedyAlgorithm>(GreedyKind::kEdfBestFit);
}

std::unique_ptr<PhaseAlgorithm> make_myopic(std::uint32_t window) {
  return std::make_unique<GreedyAlgorithm>(GreedyKind::kMyopic, window);
}

}  // namespace rtds::sched
