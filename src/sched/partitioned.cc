#include "sched/partitioned.h"

#include "common/error.h"
#include "sched/backend.h"
#include "sched/pipeline.h"

namespace rtds::sched {

std::uint64_t PartitionedMetrics::total_tasks() const {
  std::uint64_t n = 0;
  for (const RunMetrics& m : shards) n += m.total_tasks;
  return n;
}

std::uint64_t PartitionedMetrics::deadline_hits() const {
  std::uint64_t n = 0;
  for (const RunMetrics& m : shards) n += m.deadline_hits;
  return n;
}

std::uint64_t PartitionedMetrics::exec_misses() const {
  std::uint64_t n = 0;
  for (const RunMetrics& m : shards) n += m.exec_misses;
  return n;
}

std::uint64_t PartitionedMetrics::culled() const {
  std::uint64_t n = 0;
  for (const RunMetrics& m : shards) n += m.culled;
  return n;
}

std::uint64_t PartitionedMetrics::rejected() const {
  std::uint64_t n = 0;
  for (const RunMetrics& m : shards) n += m.rejected;
  return n;
}

double PartitionedMetrics::hit_ratio() const {
  const std::uint64_t total = total_tasks();
  return total == 0 ? 1.0 : double(deadline_hits()) / double(total);
}

SimTime PartitionedMetrics::finish_time() const {
  SimTime latest = SimTime::zero();
  for (const RunMetrics& m : shards) {
    if (m.finish_time > latest) latest = m.finish_time;
  }
  return latest;
}

std::uint32_t route_shard(const tasks::Task& task, std::uint32_t num_shards,
                          std::uint32_t workers_per_shard,
                          const std::vector<std::uint64_t>& shard_counts) {
  std::uint32_t best = 0;
  std::uint32_t best_affine = 0;
  bool first = true;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    std::uint32_t affine = 0;
    for (std::uint32_t w = 0; w < workers_per_shard; ++w) {
      if (task.affinity.contains(s * workers_per_shard + w)) ++affine;
    }
    const bool better =
        first || affine > best_affine ||
        (affine == best_affine && shard_counts[s] < shard_counts[best]);
    if (better) {
      best = s;
      best_affine = affine;
      first = false;
    }
  }
  return best;
}

PartitionedMetrics run_partitioned(const PhaseAlgorithm& algorithm,
                                   const QuantumPolicy& quantum,
                                   const PartitionedConfig& config,
                                   const std::vector<tasks::Task>& workload,
                                   PhaseObserver* observer) {
  RTDS_REQUIRE(config.num_shards >= 1, "run_partitioned: need >= 1 shard");
  RTDS_REQUIRE(config.total_workers >= config.num_shards,
               "run_partitioned: fewer workers than shards");
  RTDS_REQUIRE(config.total_workers % config.num_shards == 0,
               "run_partitioned: total_workers must divide evenly");
  const std::uint32_t per_shard = config.total_workers / config.num_shards;
  RTDS_REQUIRE(per_shard <= tasks::AffinitySet::kMaxProcessors,
               "run_partitioned: shard too large");

  // Route tasks; remap affinity into shard-local worker ids.
  std::vector<std::vector<tasks::Task>> shard_workloads(config.num_shards);
  std::vector<std::uint64_t> shard_counts(config.num_shards, 0);
  for (const tasks::Task& task : workload) {
    const std::uint32_t s =
        route_shard(task, config.num_shards, per_shard, shard_counts);
    tasks::Task local = task;
    local.affinity = tasks::AffinitySet::none();
    for (std::uint32_t w = 0; w < per_shard; ++w) {
      if (task.affinity.contains(s * per_shard + w)) local.affinity.add(w);
    }
    if (local.affinity.empty()) {
      // Data lives entirely on other shards: every local worker is equally
      // remote. Model the single cross-shard fetch by folding C into the
      // processing demand and treating all shard workers as holders
      // afterwards (the fetched copy is local for the execution).
      local.affinity = tasks::AffinitySet::all(per_shard);
      local.processing += config.comm_cost;
      if (!local.actual_processing.is_zero()) {
        local.actual_processing += config.comm_cost;
      }
    }
    shard_workloads[s].push_back(local);
    ++shard_counts[s];
  }

  // One pipeline, K scheduling hosts: each shard runs the SAME phase loop
  // (sched/pipeline.cc) against its own host backend.
  PartitionedMetrics out;
  out.shards.reserve(config.num_shards);
  const PhasePipeline pipeline(algorithm, quantum, config.driver);
  PartitionedBackend backend(config.num_shards, per_shard, config.comm_cost,
                             config.reclaim);
  for (std::uint32_t s = 0; s < config.num_shards; ++s) {
    out.shards.push_back(
        pipeline.run(shard_workloads[s], backend.host(s), observer));
  }
  return out;
}

}  // namespace rtds::sched
