// Partitioned schedulers: the portfolio's non-search entrants.
//
// Both algorithms here follow the classic two-pass partitioned structure —
// decide task-to-worker placement ONCE per phase, then sequence each
// worker's share by EDF — instead of interleaving placement and sequencing
// the way the tree searches do:
//   * `packing` — first-fit/best-fit packing partitioned scheduling in the
//     style of Chen & Bansal (arXiv:1809.04355): tasks are packed onto
//     workers by a bin-packing fit rule over estimated queue loads.
//   * `multicrit` — the multi-criteria partitioning matrix of Lupu et al.
//     (arXiv:1004.3715): a configurable task-sort criterion (density, EDF,
//     min-slack, LPT) crossed with a fit criterion (first/best/worst/next).
//
// Both passes run against the same delivery-relative arithmetic as the
// search algorithms: the partition pass estimates queue end offsets with
// the exact Fig. 4 quantities (PartialSchedule::TaskConstants and the
// interconnect's c_lk), and the sequencing pass commits every assignment
// through PartialSchedule::evaluate — the predictive feasibility test
// itself — so the correction theorem (scheduled tasks never miss their
// deadlines) holds for these entrants exactly as it does for RT-SADS.
// Every placement probe in either pass charges one unit of the vertex
// budget: a partitioned scheduler pays for its scheduling work on the
// simulated clock like everyone else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/algorithm.h"

namespace rtds::sched {

/// Global order tasks are fed to the partitioner in.
enum class PartitionSort {
  kDensity,   ///< p / (d - es) descending — densest (hardest to place) first
  kDeadline,  ///< EDF — earliest deadline first
  kMinSlack,  ///< least laxity (d - es - p) first
  kLpt,       ///< longest processing time first (classic packing order)
};

/// Which worker a task is packed onto, among those passing the fit test.
enum class PartitionFit {
  kFirstFit,  ///< lowest-index feasible worker
  kBestFit,   ///< feasible worker with the earliest estimated finish
  kWorstFit,  ///< least-loaded feasible worker (spreads load)
  kNextFit,   ///< first feasible worker at or after a rolling cursor
};

struct PartitionConfig {
  PartitionSort sort{PartitionSort::kDeadline};
  PartitionFit fit{PartitionFit::kFirstFit};
};

/// Partition-then-sequence phase scheduler (see file comment). The
/// `packing` and `multicrit` registry entries are both instances of this
/// class; they differ only in which corner of the sort × fit matrix the
/// spec exposes. `name` is reported verbatim (the registry passes the
/// canonical spec).
class PartitionScheduler final : public PhaseAlgorithm {
 public:
  PartitionScheduler(std::string name, PartitionConfig config);

  [[nodiscard]] SearchResult schedule_phase(
      const std::vector<Task>& batch,
      const std::vector<SimDuration>& base_loads, SimTime delivery_time,
      const machine::Interconnect& net,
      std::uint64_t vertex_budget) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] const PartitionConfig& config() const { return config_; }

 private:
  std::string name_;
  PartitionConfig config_;
};

}  // namespace rtds::sched
