// Task-conservation ledger: exact accounting of every offered task.
//
// PR 1 made mailbox delivery non-blocking, which introduced a loss channel
// the metrics could not see: an assignment refused by a full mailbox was
// retired from the batch as if it had been delivered, so it was never
// executed, never re-scheduled, and never counted — a silent violation of
// the correction theorem's promise under overload. The ledger closes that
// hole by tracking every task through an explicit lifecycle:
//
//   arrived → batched → scheduled → delivered → {deadline_hit, exec_miss}
//      │         │           │
//      │         │           ├─ dropped (delivery refused) → batched again
//      │         │           └─ rejected (delivery attempts exhausted)
//      │         └─ culled   (deadline unreachable before scheduling)
//      └─ admission_rejected (open-system admission control turned the
//                             task away at the door; never batched)
//
// and enforcing the conservation invariant at drain time:
//
//   total_tasks == deadline_hits + exec_misses + culled + rejected
//                  + admission_rejected
//
// The pipeline (sched/pipeline.cc) drives the pre-delivery transitions;
// each ExecutionBackend reports the per-task terminal outcome (hit/miss)
// when it drains. Illegal transitions throw InvariantViolation — a task
// can never be double-counted or skipped a state.
//
// The ledger is host-thread-only: backends with worker threads buffer
// outcomes internally and flush them after joining (see ThreadedBackend).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "tasks/task.h"

namespace rtds::sched {

/// Lifecycle state of one task. kDeadlineHit, kExecMiss, kCulled,
/// kRejected and kAdmissionRejected are terminal; everything else is in
/// flight.
enum class TaskState : std::uint8_t {
  kArrived,      ///< offered to the pipeline, not yet in a batch
  kBatched,      ///< pending in the current batch (also after a drop)
  kScheduled,    ///< assigned by the search, delivery in progress
  kDelivered,    ///< accepted into a worker ready queue
  kDeadlineHit,  ///< executed and met its deadline
  kExecMiss,     ///< executed but missed (theorem: 0 on the DES)
  kCulled,       ///< dropped from a batch, deadline unreachable
  kRejected,     ///< delivery refused max_delivery_attempts times
  kAdmissionRejected,  ///< turned away at admission (open system, full queue)
};

[[nodiscard]] const char* to_string(TaskState state);

/// Aggregate view of a ledger; conserved() is the drain-time invariant.
struct LedgerCounts {
  std::uint64_t total{0};
  std::uint64_t deadline_hits{0};
  std::uint64_t exec_misses{0};
  std::uint64_t culled{0};
  std::uint64_t rejected{0};
  /// Open-system admission control turned the task away before it entered
  /// any batch. Always 0 in closed (whole-workload) runs.
  std::uint64_t admission_rejected{0};
  std::uint64_t in_flight{0};  ///< tasks not yet in a terminal state

  // Transition event counters (a task can contribute several). They exist
  // for external oracles (src/testing) to cross-check the pipeline's
  // aggregate metrics against the per-task lifecycle:
  //   schedule_events == delivery_events + drop_events + rejected
  //   delivery_events == RunMetrics::scheduled
  //   drop_events     == RunMetrics::readmissions
  std::uint64_t schedule_events{0};  ///< batched → scheduled transitions
  std::uint64_t delivery_events{0};  ///< scheduled → delivered transitions
  std::uint64_t drop_events{0};      ///< scheduled → batched (readmissions)

  /// Every offered task reached exactly one terminal state.
  [[nodiscard]] bool conserved() const {
    return in_flight == 0 &&
           total == deadline_hits + exec_misses + culled + rejected +
                        admission_rejected;
  }
};

/// Tracks the lifecycle state of every task in one pipeline run.
class TaskLedger {
 public:
  TaskLedger() = default;

  // -- transitions (each validates the source state) ------------------------
  void arrive(tasks::TaskId id);             ///< (new) → arrived
  void admit(tasks::TaskId id);              ///< arrived → batched
  void schedule(tasks::TaskId id);           ///< batched → scheduled
  void deliver(tasks::TaskId id);            ///< scheduled → delivered
  void drop(tasks::TaskId id);               ///< scheduled → batched (readmit)
  void cull(tasks::TaskId id);               ///< batched → culled
  void reject(tasks::TaskId id);             ///< scheduled → rejected
  void reject_admission(tasks::TaskId id);   ///< arrived → admission_rejected
  void execute(tasks::TaskId id, bool hit);  ///< delivered → hit | miss

  // -- inspection -----------------------------------------------------------
  [[nodiscard]] bool known(tasks::TaskId id) const;
  [[nodiscard]] TaskState state(tasks::TaskId id) const;
  [[nodiscard]] const LedgerCounts& counts() const { return counts_; }
  [[nodiscard]] std::size_t size() const { return states_.size(); }
  [[nodiscard]] const std::unordered_map<tasks::TaskId, TaskState>& states()
      const {
    return states_;
  }

  /// Throws InvariantViolation unless counts().conserved().
  void check_conserved() const;

  void clear();

 private:
  void transition(tasks::TaskId id, TaskState from, TaskState to);

  std::unordered_map<tasks::TaskId, TaskState> states_;
  LedgerCounts counts_;
};

}  // namespace rtds::sched
