// Allocation of scheduling time (Sec. 4.2, Fig. 3).
//
// RT-SADS self-adjusts the duration Q_s(j) of each scheduling phase:
//     Q_s(j) <= max(Min_Slack, Min_Load)
// where Min_Slack is the smallest slack over the batch (so no pending task's
// deadline is violated by scheduling cost alone) and Min_Load is the
// smallest residual load over the working processors (if every pending task
// would have to wait at least Min_Load anyway, scheduling may run that long
// without making anything worse, buying optimization time; conversely when a
// worker is about to go idle the quantum shrinks to feed it sooner).
//
// The paper leaves the lower bound implicit; a quantum of zero would let a
// phase generate zero vertices and make no progress, so implementations
// clamp Q_s to [min_quantum, max_quantum].
#pragma once

#include <memory>
#include <string>

#include "common/time.h"

namespace rtds::sched {

/// Strategy deciding the duration of each scheduling phase.
class QuantumPolicy {
 public:
  virtual ~QuantumPolicy() = default;

  /// Returns Q_s(j) given the phase inputs: Min_Slack over Batch(j) at the
  /// phase start and Min_Load over the workers at the phase start.
  /// `min_slack` is never negative (unreachable tasks are culled first).
  [[nodiscard]] virtual SimDuration allocate(SimDuration min_slack,
                                             SimDuration min_load) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's self-adjusting criterion (Fig. 3), clamped to
/// [min_quantum, max_quantum].
class SelfAdjustingQuantum final : public QuantumPolicy {
 public:
  SelfAdjustingQuantum(SimDuration min_quantum, SimDuration max_quantum);

  [[nodiscard]] SimDuration allocate(SimDuration min_slack,
                                     SimDuration min_load) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] SimDuration min_quantum() const { return min_quantum_; }
  [[nodiscard]] SimDuration max_quantum() const { return max_quantum_; }

 private:
  SimDuration min_quantum_;
  SimDuration max_quantum_;
};

/// Ablation baseline: a fixed quantum regardless of slack or load.
class FixedQuantum final : public QuantumPolicy {
 public:
  explicit FixedQuantum(SimDuration quantum);

  [[nodiscard]] SimDuration allocate(SimDuration min_slack,
                                     SimDuration min_load) const override;
  [[nodiscard]] std::string name() const override;

 private:
  SimDuration quantum_;
};

std::unique_ptr<QuantumPolicy> make_self_adjusting_quantum(
    SimDuration min_quantum = msec(1), SimDuration max_quantum = msec(100));
std::unique_ptr<QuantumPolicy> make_fixed_quantum(SimDuration quantum);

}  // namespace rtds::sched
