#include "sched/portfolio.h"

#include <algorithm>
#include <cstdint>

#include "common/error.h"
#include "search/partial_schedule.h"

namespace rtds::sched {

using search::Assignment;
using search::PartialSchedule;

namespace {

/// Density compare without division: p_a/span_a > p_b/span_b as a
/// cross-multiplication in 128-bit (microsecond magnitudes squared can
/// exceed 63 bits on long-horizon workloads).
bool denser(std::int64_t p_a, std::int64_t span_a, std::int64_t p_b,
            std::int64_t span_b) {
  return static_cast<__int128>(p_a) * span_b >
         static_cast<__int128>(p_b) * span_a;
}

}  // namespace

PartitionScheduler::PartitionScheduler(std::string name,
                                       PartitionConfig config)
    : name_(std::move(name)), config_(config) {}

SearchResult PartitionScheduler::schedule_phase(
    const std::vector<Task>& batch,
    const std::vector<SimDuration>& base_loads, SimTime delivery_time,
    const machine::Interconnect& net, std::uint64_t vertex_budget) const {
  SearchResult result;
  if (batch.empty() || vertex_budget == 0) return result;

  const std::uint32_t m = net.num_workers();
  const std::uint32_t n = static_cast<std::uint32_t>(batch.size());
  PartialSchedule ps(&batch, base_loads, delivery_time, &net);

  std::uint64_t budget_left = vertex_budget;
  auto& stats = result.stats;
  const auto charge = [&]() -> bool {
    if (budget_left == 0) {
      stats.budget_exhausted = true;
      return false;
    }
    --budget_left;
    ++stats.vertices_generated;
    return true;
  };

  // ---- Pass 1: partition tasks to workers over ESTIMATED queue loads. ----
  // The estimate uses the same delivery-relative arithmetic as the Fig. 4
  // test (start = max(load, es), end = start + p + c_lk, feasible iff
  // end <= d), so a pass-1 placement is exactly the assignment the
  // sequencing pass would commit if the worker's queue were consumed in
  // partition order. EDF re-sequencing in pass 2 can only shuffle a
  // worker's internal order, so the final commit re-checks feasibility.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  const auto span_of = [&](std::uint32_t i) -> std::int64_t {
    const auto& tc = ps.constants(i);
    const std::int64_t span = tc.d_off_us - tc.es_off_us;
    return span > 1 ? span : 1;
  };
  switch (config_.sort) {
    case PartitionSort::kDensity:
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const auto& ta = ps.constants(a);
                  const auto& tb = ps.constants(b);
                  if (denser(ta.processing_us, span_of(a), tb.processing_us,
                             span_of(b)))
                    return true;
                  if (denser(tb.processing_us, span_of(b), ta.processing_us,
                             span_of(a)))
                    return false;
                  return a < b;
                });
      break;
    case PartitionSort::kDeadline:
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const std::int64_t da = ps.constants(a).d_off_us;
                  const std::int64_t db = ps.constants(b).d_off_us;
                  return da != db ? da < db : a < b;
                });
      break;
    case PartitionSort::kMinSlack:
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const auto& ta = ps.constants(a);
                  const auto& tb = ps.constants(b);
                  const std::int64_t sa =
                      ta.d_off_us - ta.es_off_us - ta.processing_us;
                  const std::int64_t sb =
                      tb.d_off_us - tb.es_off_us - tb.processing_us;
                  return sa != sb ? sa < sb : a < b;
                });
      break;
    case PartitionSort::kLpt:
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const std::int64_t pa = ps.constants(a).processing_us;
                  const std::int64_t pb = ps.constants(b).processing_us;
                  return pa != pb ? pa > pb : a < b;
                });
      break;
  }

  constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;
  std::vector<std::uint32_t> home(n, kUnassigned);
  std::vector<std::int64_t> est(m);
  for (std::uint32_t k = 0; k < m; ++k) est[k] = base_loads[k].us;

  // Estimated end offset of placing task i on worker k, or -1 when the
  // placement fails the deadline-capacity fit test. Charges one budget
  // unit per probe (a fit test is a candidate evaluation, Sec. 4.1). For a
  // gang, k is the lead of the block [k, k+workers_required): the block
  // must fit in the machine and the estimate starts at the block's max
  // load, matching PartialSchedule's occupancy rule so pass 2 can commit.
  const auto probe = [&](std::uint32_t i, std::uint32_t k) -> std::int64_t {
    const auto& tc = ps.constants(i);
    if (std::size_t{k} + tc.workers_required > m) return -1;
    const std::int64_t comm = net.comm_cost(batch[i].affinity, k).us;
    std::int64_t load = est[k];
    for (std::uint32_t j = 1; j < tc.workers_required; ++j) {
      load = std::max(load, est[k + j]);
    }
    const std::int64_t start = load > tc.es_off_us ? load : tc.es_off_us;
    const std::int64_t end = start + tc.processing_us + comm;
    return end <= tc.d_off_us ? end : -1;
  };

  std::uint32_t cursor = 0;  // kNextFit's rolling worker cursor
  for (std::uint32_t i : order) {
    if (stats.budget_exhausted) break;
    std::uint32_t chosen = kUnassigned;
    std::int64_t chosen_end = 0;
    switch (config_.fit) {
      case PartitionFit::kFirstFit:
        for (std::uint32_t k = 0; k < m && charge(); ++k) {
          if (const std::int64_t end = probe(i, k); end >= 0) {
            chosen = k;
            chosen_end = end;
            break;
          }
        }
        break;
      case PartitionFit::kBestFit:
        for (std::uint32_t k = 0; k < m && charge(); ++k) {
          if (const std::int64_t end = probe(i, k); end >= 0) {
            if (chosen == kUnassigned || end < chosen_end) {
              chosen = k;
              chosen_end = end;
            }
          }
        }
        break;
      case PartitionFit::kWorstFit:
        for (std::uint32_t k = 0; k < m && charge(); ++k) {
          if (const std::int64_t end = probe(i, k); end >= 0) {
            if (chosen == kUnassigned || est[k] < est[chosen]) {
              chosen = k;
              chosen_end = end;
            }
          }
        }
        break;
      case PartitionFit::kNextFit:
        for (std::uint32_t step = 0; step < m && charge(); ++step) {
          const std::uint32_t k = (cursor + step) % m;
          if (const std::int64_t end = probe(i, k); end >= 0) {
            chosen = k;
            chosen_end = end;
            cursor = (k + 1) % m;
            break;
          }
        }
        break;
    }
    if (chosen != kUnassigned && !stats.budget_exhausted) {
      home[i] = chosen;
      // A gang charges its estimated end to every worker in its block.
      const std::uint32_t width = ps.constants(i).workers_required;
      for (std::uint32_t j = 0; j < width; ++j) {
        est[chosen + j] = chosen_end;
      }
    }
  }

  // ---- Pass 2: sequence each worker's share by EDF and commit through ----
  // the predictive feasibility test. A task whose pass-1 estimate no
  // longer holds after EDF re-ordering is skipped, never scheduled late —
  // this is what keeps the correction theorem intact.
  std::vector<std::uint32_t> share(order.begin(), order.end());
  std::sort(share.begin(), share.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (home[a] != home[b]) return home[a] < home[b];
              const std::int64_t da = ps.constants(a).d_off_us;
              const std::int64_t db = ps.constants(b).d_off_us;
              return da != db ? da < db : a < b;
            });
  for (std::uint32_t i : share) {
    if (home[i] == kUnassigned) continue;  // sorted last; rest are too
    if (!charge()) break;
    if (const auto a = ps.evaluate(i, home[i])) {
      ps.push(*a);
      ++stats.expansions;
    }
  }

  stats.max_depth = ps.depth();
  stats.reached_leaf = ps.complete();
  result.schedule = ps.path();
  return result;
}

}  // namespace rtds::sched
