// Phase-level observability for the scheduling pipeline.
//
// A PhaseObserver receives one PhaseRecord per scheduling phase: the batch
// state, the Fig. 3 quantum inputs and allocation, the vertex budget, the
// search statistics and the outcome. PhaseTraceRecorder keeps them all and
// can render a CSV trace; it is how the examples and the EXPERIMENTS
// notebook look inside a run without recompiling the driver.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/time.h"
#include "search/engine.h"

namespace rtds::sched {

/// Everything that happened in one scheduling phase.
struct PhaseRecord {
  /// Canonical spec of the algorithm that ran this phase (constant across a
  /// run; repeated per record so a trace file is self-describing even when
  /// traces from several runs are concatenated).
  std::string algorithm;
  /// Worker threads the phase algorithm ran with (constant across a run).
  std::uint32_t threads{1};

  std::uint64_t index{0};
  SimTime start{SimTime::zero()};
  SimTime end{SimTime::zero()};

  std::uint64_t batch_size{0};  ///< after merge + cull, before scheduling
  std::uint64_t arrivals{0};    ///< tasks merged at this phase start
  std::uint64_t culled{0};      ///< tasks dropped as unreachable
  /// Arrivals turned away by open-system admission control at this phase
  /// start (always 0 in closed runs; excluded from `arrivals`).
  std::uint64_t admission_rejected{0};

  SimDuration min_slack{SimDuration::zero()};  ///< Min_Slack (Fig. 3)
  SimDuration min_load{SimDuration::zero()};   ///< Min_Load (Fig. 3)
  SimDuration quantum{SimDuration::zero()};    ///< Q_s(j), after clamping
  std::uint64_t vertex_budget{0};
  /// The progress floor (phase_overhead + vertex_cost) raised Q_s above the
  /// policy allocation, possibly past the Fig. 3 bound.
  bool quantum_floor_override{false};

  search::SearchStats search;
  /// Host wall-clock nanoseconds the phase spent inside the search (real
  /// time, not simulated — nondeterministic across runs).
  std::uint64_t search_wall_ns{0};
  std::uint64_t scheduled{0};   ///< assignments produced by the search
  std::uint64_t delivered{0};   ///< assignments accepted by the backend
  std::uint64_t overflow_drops{0};  ///< delivery refusals this phase
  std::uint64_t readmitted{0};  ///< refused tasks returned to the batch
  std::uint64_t rejected{0};    ///< refused tasks retired (attempts spent)
};

/// Callback interface; implementations must not throw.
class PhaseObserver {
 public:
  virtual ~PhaseObserver() = default;
  virtual void on_phase(const PhaseRecord& record) = 0;
};

/// Accumulating observer with CSV export.
class PhaseTraceRecorder final : public PhaseObserver {
 public:
  void on_phase(const PhaseRecord& record) override;

  [[nodiscard]] const std::vector<PhaseRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// One CSV row per phase (header included).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<PhaseRecord> records_;
};

}  // namespace rtds::sched
