// The dynamic scheduling pipeline (Sec. 4).
//
// A dedicated host processor runs scheduling phases back to back while the
// m working processors execute previously delivered schedules:
//
//   phase j:  t_s = now
//     Batch(j)  = Batch(j-1) - scheduled - missed + arrivals during j-1
//     Q_s(j)    = quantum policy (Fig. 3), from Min_Slack and Min_Load
//     search    = phase algorithm with vertex budget Q_s / vertex_cost
//     t_e       = t_s + vertices_generated * vertex_cost   (<= t_s + Q_s)
//     S_j is delivered to the worker ready queues at t_e; phase j+1 starts.
//
// Scheduling overhead is thus charged on the simulated clock exactly as the
// paper charges physical time on the Paragon's host processor: every
// generated vertex costs `vertex_generation_cost`, and the predictive
// feasibility test inside the search already accounted for the full quantum,
// so delivering early can only improve timeliness (correction theorem).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "machine/cluster.h"
#include "sched/algorithm.h"
#include "sched/trace.h"
#include "sched/quantum.h"
#include "sim/simulator.h"
#include "tasks/batch.h"
#include "tasks/task.h"

namespace rtds::sched {

using machine::Cluster;
using tasks::Task;

/// End-to-end metrics of one scheduling run.
struct RunMetrics {
  std::uint64_t total_tasks{0};
  std::uint64_t scheduled{0};        ///< delivered to a worker
  std::uint64_t deadline_hits{0};    ///< executed and met deadline
  std::uint64_t exec_misses{0};      ///< executed but missed (theorem: 0)
  std::uint64_t culled{0};           ///< dropped from a batch, unreachable

  std::uint64_t phases{0};
  std::uint64_t vertices_generated{0};
  std::uint64_t expansions{0};
  std::uint64_t backtracks{0};
  std::uint64_t dead_ends{0};
  std::uint64_t leaves{0};           ///< phases reaching a complete schedule
  std::uint64_t budget_exhaustions{0};

  SimTime finish_time{SimTime::zero()};       ///< all work drained
  SimDuration scheduling_time{SimDuration::zero()};  ///< host busy time
  SimDuration allocated_quantum{SimDuration::zero()};  ///< sum of Q_s(j)
  /// Smallest and largest Q_s(j) allocated across phases — the spread shows
  /// the self-adjusting criterion at work (equal for a fixed quantum).
  SimDuration min_quantum_seen{SimDuration::max()};
  SimDuration max_quantum_seen{SimDuration::zero()};

  /// Deadline compliance: fraction of all offered tasks that completed by
  /// their deadline (the paper's primary metric).
  [[nodiscard]] double hit_ratio() const {
    return total_tasks == 0
               ? 1.0
               : double(deadline_hits) / double(total_tasks);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return exec_misses + culled + (total_tasks - scheduled - culled);
  }
};

/// Configuration of the pipeline itself (algorithm- and machine-independent).
struct DriverConfig {
  /// Simulated cost of generating + evaluating one vertex on the host
  /// processor (Sec. 4.1's definition of vertex generation).
  SimDuration vertex_generation_cost{usec(10)};

  /// Fixed per-phase cost: batch maintenance (merge/cull) plus delivering
  /// S_j to the worker ready queues over the interconnect. Without it,
  /// infinitely short phases would be free, which no real pipeline offers
  /// — this is what makes the Sec. 4.2 quantum criterion a genuine
  /// trade-off. Charged inside the quantum: the vertex budget of phase j
  /// is (Q_s(j) - phase_overhead) / vertex_generation_cost, so the
  /// correction theorem's bound t_e <= t_s + Q_s still holds.
  SimDuration phase_overhead{usec(50)};
};

/// Drives a PhaseAlgorithm + QuantumPolicy over a Cluster on a Simulator.
class PhaseScheduler {
 public:
  /// All three dependencies must outlive the scheduler.
  PhaseScheduler(const PhaseAlgorithm& algorithm,
                 const QuantumPolicy& quantum, DriverConfig config = {});

  /// Runs the pipeline until every task has been executed or culled.
  /// `workload` must be sorted by arrival time. Uses `sim` for time and
  /// `cluster` for execution; both are left in their final state so callers
  /// can inspect logs. An optional observer receives one PhaseRecord per
  /// scheduling phase (it must outlive the call).
  RunMetrics run(const std::vector<Task>& workload, Cluster& cluster,
                 sim::Simulator& sim,
                 PhaseObserver* observer = nullptr) const;

 private:
  const PhaseAlgorithm& algorithm_;
  const QuantumPolicy& quantum_;
  DriverConfig config_;
};

}  // namespace rtds::sched
