// DES deployment of the scheduling pipeline (Sec. 4).
//
// A dedicated host processor runs scheduling phases back to back while the
// m working processors execute previously delivered schedules. The phase
// logic itself lives in sched/pipeline.h (PhasePipeline) — this header
// keeps the historic simulation-facing entry point: PhaseScheduler binds
// the pipeline to a machine::Cluster + sim::Simulator pair through a
// SimBackend (sched/backend.h).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "machine/cluster.h"
#include "sched/algorithm.h"
#include "sched/pipeline.h"
#include "sched/quantum.h"
#include "sched/trace.h"
#include "sim/simulator.h"
#include "tasks/task.h"

namespace rtds::sched {

using machine::Cluster;

/// Convenience facade: PhasePipeline over a SimBackend.
class PhaseScheduler {
 public:
  /// All three dependencies must outlive the scheduler.
  PhaseScheduler(const PhaseAlgorithm& algorithm,
                 const QuantumPolicy& quantum, DriverConfig config = {});

  /// Runs the pipeline until every task has been executed or culled.
  /// `workload` must be sorted by arrival time. Uses `sim` for time and
  /// `cluster` for execution; both are left in their final state so callers
  /// can inspect logs. An optional observer receives one PhaseRecord per
  /// scheduling phase (it must outlive the call).
  RunMetrics run(const std::vector<Task>& workload, Cluster& cluster,
                 sim::Simulator& sim,
                 PhaseObserver* observer = nullptr) const;

 private:
  PhasePipeline pipeline_;
};

}  // namespace rtds::sched
