// The backend-agnostic scheduling pipeline (Sec. 4).
//
// One implementation of the self-adjusting scheduling phase drives every
// deployment of the system:
//
//   phase j:  t_s = backend.now()
//     Batch(j)  = Batch(j-1) - scheduled - missed + arrivals during j-1
//     Q_s(j)    = quantum policy (Fig. 3), from Min_Slack and Min_Load
//     search    = phase algorithm with vertex budget
//                 (Q_s - phase_overhead) / vertex_cost
//     t_e       = t_s + vertices_generated * vertex_cost + phase_overhead
//     S_j is delivered to the worker ready queues at t_e; phase j+1 starts.
//
// Scheduling overhead is charged on the backend's clock exactly as the
// paper charges physical time on the Paragon's host processor: every
// generated vertex costs `vertex_generation_cost`, and the predictive
// feasibility test inside the search already accounted for the full
// quantum, so delivering early can only improve timeliness (correction
// theorem). On the DES backends the charge advances the simulated clock;
// on the threaded backend the wall clock paid for the search as it ran.
//
// Batch maintenance, quantum computation, vertex budgeting, feasibility
// snapshotting and metrics/trace emission all live HERE and only here; the
// backends (sched/backend.h) supply time, worker loads and delivery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"
#include "sched/algorithm.h"
#include "sched/backend.h"
#include "sched/ledger.h"
#include "sched/quantum.h"
#include "sched/trace.h"
#include "tasks/arrival_source.h"
#include "tasks/task.h"

namespace rtds::sched {

using tasks::Task;

/// End-to-end metrics of one scheduling run — the ONE metrics struct shared
/// by the DES, threaded and partitioned deployments, so runs are directly
/// comparable across backends.
struct RunMetrics {
  /// Canonical spec of the algorithm that produced this run (the
  /// PhaseAlgorithm's name()) — every run is attributable by name, and the
  /// cross-backend parity oracles compare it like any other field.
  std::string algorithm;
  /// Worker threads the algorithm used per phase (PhaseAlgorithm::threads;
  /// 1 for every sequential algorithm). Parity-checked across backends:
  /// parallel search is bit-identical to sequential, so the thread count
  /// never changes any other field.
  std::uint32_t threads{1};

  std::uint64_t total_tasks{0};
  std::uint64_t scheduled{0};        ///< delivered to a worker
  std::uint64_t deadline_hits{0};    ///< executed and met deadline
  std::uint64_t exec_misses{0};      ///< executed but missed (theorem: 0)
  std::uint64_t culled{0};           ///< dropped from a batch, unreachable
  /// Tasks retired explicitly after delivery was refused
  /// `max_delivery_attempts` times (bounded-mailbox backends only).
  std::uint64_t rejected{0};
  /// Arrivals turned away at the door by open-system admission control
  /// (run_stream with StreamOptions::max_pending; always 0 in closed runs).
  /// Admission-rejected tasks are counted in total_tasks but never batched.
  std::uint64_t admission_rejected{0};
  /// Delivery refusals by a full ready queue (bounded-mailbox backends;
  /// always 0 on the DES backends). An event counter: one task dropped and
  /// readmitted n times contributes n. Counted loudly, never blocks the
  /// host — refused tasks re-enter the next batch (see `readmissions`).
  std::uint64_t overflow_drops{0};
  /// Tasks returned to the batch after a refused delivery (each readmission
  /// of the same task counts once).
  std::uint64_t readmissions{0};
  /// Phases that ended in a backpressure pause because part of their
  /// schedule was refused.
  std::uint64_t backpressure_waits{0};
  /// Phases where the progress floor (phase_overhead + vertex_cost) raised
  /// Q_s above the policy allocation — such a quantum may exceed both
  /// max_quantum and the paper's Q_s <= max(Min_Slack, Min_Load) bound.
  std::uint64_t quantum_floor_overrides{0};

  std::uint64_t phases{0};
  std::uint64_t vertices_generated{0};
  std::uint64_t expansions{0};
  std::uint64_t backtracks{0};
  std::uint64_t dead_ends{0};
  std::uint64_t leaves{0};           ///< phases reaching a complete schedule
  std::uint64_t budget_exhaustions{0};

  SimTime finish_time{SimTime::zero()};       ///< all work drained
  SimDuration scheduling_time{SimDuration::zero()};  ///< host busy time
  /// Real (host wall-clock) nanoseconds spent inside the phase algorithm's
  /// search across all phases — the scheduling-processor utilization the
  /// DES and threaded backends report. Unlike every other field this is
  /// measured, not simulated: it varies run to run and is deliberately
  /// excluded from the cross-backend parity oracles.
  std::uint64_t search_wall_ns{0};
  SimDuration allocated_quantum{SimDuration::zero()};  ///< sum of Q_s(j)
  /// Smallest and largest Q_s(j) allocated across phases — the spread shows
  /// the self-adjusting criterion at work (equal for a fixed quantum).
  SimDuration min_quantum_seen{SimDuration::max()};
  SimDuration max_quantum_seen{SimDuration::zero()};

  /// Deadline compliance: fraction of all offered tasks that completed by
  /// their deadline (the paper's primary metric).
  [[nodiscard]] double hit_ratio() const {
    return total_tasks == 0
               ? 1.0
               : double(deadline_hits) / double(total_tasks);
  }
  /// Tasks that did not hit their deadline. Under the conservation
  /// invariant (total == hits + exec_misses + culled + rejected +
  /// admission_rejected) this is exactly total_tasks - deadline_hits.
  [[nodiscard]] std::uint64_t misses() const {
    return exec_misses + culled + rejected + admission_rejected;
  }
};

/// Configuration of the pipeline itself (algorithm- and machine-independent).
struct PipelineConfig {
  /// Simulated cost of generating + evaluating one vertex on the host
  /// processor (Sec. 4.1's definition of vertex generation).
  SimDuration vertex_generation_cost{usec(10)};

  /// Fixed per-phase cost: batch maintenance (merge/cull) plus delivering
  /// S_j to the worker ready queues over the interconnect. Without it,
  /// infinitely short phases would be free, which no real pipeline offers
  /// — this is what makes the Sec. 4.2 quantum criterion a genuine
  /// trade-off. Charged inside the quantum: the vertex budget of phase j
  /// is (Q_s(j) - phase_overhead) / vertex_generation_cost, so the
  /// correction theorem's bound t_e <= t_s + Q_s still holds. The threaded
  /// backend runs with zero overhead: its per-phase cost is real wall time.
  SimDuration phase_overhead{usec(50)};

  /// How often the pipeline will offer the same task to a backend before
  /// retiring it as `rejected`. Refused deliveries re-enter the next batch
  /// (readmission) until this budget is spent. 0 means unbounded: the task
  /// is readmitted until delivered or culled. 1 disables readmission
  /// (every refused delivery is rejected immediately, as PR 1 effectively
  /// behaved — except the loss is now explicit, not silent).
  std::uint32_t max_delivery_attempts{8};

  /// Minimum backpressure pause after a phase whose delivery was partially
  /// refused: the host waits before rescheduling instead of burning
  /// delivery attempts in a hot loop. The actual pause stretches to the
  /// residual load of the least-loaded refused worker (when larger) and is
  /// capped by the batch's min slack so waiting alone never makes a
  /// pending task unreachable. Zero disables backpressure.
  SimDuration delivery_backpressure{usec(200)};
};

/// Historic name from when this struct configured PhaseScheduler only.
using DriverConfig = PipelineConfig;

/// Open-system service knobs for PhasePipeline::run_stream.
struct StreamOptions {
  /// Admission control: an arrival is turned away — counted as
  /// admission_rejected, never batched — when the pending batch already
  /// holds this many tasks. This is what bounds the host's memory when the
  /// offered rate exceeds what the cluster can drain: without it an
  /// overloaded open system grows its batch (and its per-phase search
  /// input) without limit. 0 disables admission control.
  std::size_t max_pending{0};

  /// Shape of the schedule-latency histogram (arrival → delivery
  /// acceptance, microseconds) run_stream records into StreamStats.
  double latency_lo_us{0.0};
  double latency_hi_us{1.0e6};
  std::size_t latency_buckets{200};
};

/// Streaming-only outputs of a run. Closed runs have no schedule latency:
/// with the whole workload present up front, arrival → delivery time is an
/// artifact of batch order, not service behavior.
struct StreamStats {
  explicit StreamStats(const StreamOptions& options)
      : schedule_latency(options.latency_lo_us, options.latency_hi_us,
                         options.latency_buckets) {}

  /// Per-task arrival → delivery-acceptance latency, recorded at t_e for
  /// every assignment the backend accepted. A readmitted task is recorded
  /// once, at the delivery that finally succeeded — the refused attempts
  /// are part of its latency, not separate samples.
  Histogram schedule_latency;
};

/// Drives a PhaseAlgorithm + QuantumPolicy over an ExecutionBackend.
class PhasePipeline {
 public:
  /// The algorithm and quantum policy must outlive the pipeline.
  PhasePipeline(const PhaseAlgorithm& algorithm, const QuantumPolicy& quantum,
                PipelineConfig config = {});

  /// Runs the pipeline until every task has been executed, culled or
  /// rejected. `workload` must be sorted by arrival time. The backend is
  /// left in its final state so callers can inspect logs. An optional
  /// observer receives one PhaseRecord per scheduling phase (it must
  /// outlive the call). An optional ledger records every task's lifecycle
  /// (a run always keeps one internally when none is supplied); the
  /// conservation invariant total == hits + exec_misses + culled + rejected
  /// is enforced at drain time either way.
  RunMetrics run(const std::vector<Task>& workload, ExecutionBackend& backend,
                 PhaseObserver* observer = nullptr,
                 TaskLedger* ledger = nullptr) const;

  /// Open-system entry point: pulls arrivals incrementally from `source`
  /// instead of requiring the whole workload up front, applies
  /// `options.max_pending` admission control, and (when `stats` is non-null)
  /// records per-task schedule latency into `stats->schedule_latency`.
  /// Everything else — phase loop, quantum policy, readmission, ledger
  /// conservation — is byte-for-byte the closed pipeline: run() is this
  /// entry point over a VectorArrivalSource with admission control off.
  /// Runs until the source is exhausted AND every admitted task reached a
  /// terminal state.
  RunMetrics run_stream(tasks::ArrivalSource& source,
                        ExecutionBackend& backend,
                        const StreamOptions& options = {},
                        StreamStats* stats = nullptr,
                        PhaseObserver* observer = nullptr,
                        TaskLedger* ledger = nullptr) const;

 private:
  RunMetrics run_core(tasks::ArrivalSource& source, ExecutionBackend& backend,
                      const StreamOptions& options, StreamStats* stats,
                      PhaseObserver* observer, TaskLedger* ledger) const;

  const PhaseAlgorithm& algorithm_;
  const QuantumPolicy& quantum_;
  PipelineConfig config_;
};

}  // namespace rtds::sched
