#include "sched/trace.h"

#include <ostream>

namespace rtds::sched {

void PhaseTraceRecorder::on_phase(const PhaseRecord& record) {
  records_.push_back(record);
}

void PhaseTraceRecorder::write_csv(std::ostream& os) const {
  os << "phase,start_us,end_us,batch,arrivals,culled,admission_rejected,"
        "min_slack_us,"
        "min_load_us,quantum_us,budget,floor_override,vertices,expansions,"
        "backtracks,max_depth,dead_end,leaf,budget_exhausted,scheduled,"
        "delivered,overflow_drops,readmitted,rejected,search_wall_ns,"
        "threads,algorithm\n";
  for (const PhaseRecord& r : records_) {
    os << r.index << ',' << r.start.us << ',' << r.end.us << ','
       << r.batch_size << ',' << r.arrivals << ',' << r.culled << ','
       << r.admission_rejected << ','
       << r.min_slack.us << ',' << r.min_load.us << ',' << r.quantum.us
       << ',' << r.vertex_budget << ','
       << (r.quantum_floor_override ? 1 : 0) << ','
       << r.search.vertices_generated << ','
       << r.search.expansions << ',' << r.search.backtracks << ','
       << r.search.max_depth << ',' << (r.search.dead_end ? 1 : 0) << ','
       << (r.search.reached_leaf ? 1 : 0) << ','
       << (r.search.budget_exhausted ? 1 : 0) << ',' << r.scheduled << ','
       << r.delivered << ',' << r.overflow_drops << ',' << r.readmitted
       << ',' << r.rejected << ',' << r.search_wall_ns << ','
       << r.threads << ',' << r.algorithm << '\n';
  }
}

}  // namespace rtds::sched
