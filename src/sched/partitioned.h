// Multi-host partitioned scheduling (extension).
//
// The Figure-5 experiments show the single dedicated scheduling processor
// becoming the bottleneck: past the point where the host can evaluate
// candidates fast enough, adding workers stops helping (D-COLS hits this
// within the paper's 2..10 range; RT-SADS hits it at larger m). The
// natural "scalability to the high-end" step is to shard the machine:
// H scheduling hosts, each owning m/H workers and running the full
// RT-SADS pipeline over the tasks routed to its shard.
//
// Routing: every task goes to the shard holding the largest share of its
// affinity set (ties broken by current task count, then shard id). Within
// a shard the task's affinity is intersected with the shard's workers; a
// task whose affinity lies wholly elsewhere keeps all shard workers as
// remote (non-affine) candidates, exactly as the single-host scheduler
// would treat a non-affine placement.
//
// This is deliberately simple — no task migration between shards and no
// global rebalancing — so the measured benefit is purely "more scheduling
// throughput", the quantity the paper's bottleneck analysis is about.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "machine/cluster.h"
#include "sched/pipeline.h"

namespace rtds::sched {

struct PartitionedConfig {
  std::uint32_t num_shards{2};
  std::uint32_t total_workers{16};
  SimDuration comm_cost{msec(5)};
  machine::ReclaimMode reclaim{machine::ReclaimMode::kWorstCase};
  DriverConfig driver;
};

/// Combined outcome: per-shard metrics plus the totals that matter.
struct PartitionedMetrics {
  std::vector<RunMetrics> shards;

  [[nodiscard]] std::uint64_t total_tasks() const;
  [[nodiscard]] std::uint64_t deadline_hits() const;
  [[nodiscard]] std::uint64_t exec_misses() const;
  [[nodiscard]] std::uint64_t culled() const;
  [[nodiscard]] std::uint64_t rejected() const;
  [[nodiscard]] double hit_ratio() const;
  [[nodiscard]] SimTime finish_time() const;

  /// Cross-shard task conservation: no shard lost a task silently.
  [[nodiscard]] bool conserved() const {
    return total_tasks() ==
           deadline_hits() + exec_misses() + culled() + rejected();
  }
};

/// Routes `workload` across shards and runs the shared PhasePipeline once
/// per shard against a PartitionedBackend host (sched/backend.h). Workers
/// [s * (total/H), (s+1) * (total/H)) belong to shard s; requires
/// total_workers % num_shards == 0. The algorithm and quantum policy are
/// shared (they are stateless between phases). An optional observer sees
/// every shard's phases (shards run sequentially, in shard order) — the
/// fuzz oracles use it to audit Q_s against the Fig. 3 bound per shard.
PartitionedMetrics run_partitioned(const PhaseAlgorithm& algorithm,
                                   const QuantumPolicy& quantum,
                                   const PartitionedConfig& config,
                                   const std::vector<tasks::Task>& workload,
                                   PhaseObserver* observer = nullptr);

/// Exposed for tests: shard choice for one task under the routing rule.
std::uint32_t route_shard(const tasks::Task& task, std::uint32_t num_shards,
                          std::uint32_t workers_per_shard,
                          const std::vector<std::uint64_t>& shard_counts);

}  // namespace rtds::sched
