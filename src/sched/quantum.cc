#include "sched/quantum.h"

#include "common/error.h"

namespace rtds::sched {

SelfAdjustingQuantum::SelfAdjustingQuantum(SimDuration min_quantum,
                                           SimDuration max_quantum)
    : min_quantum_(min_quantum), max_quantum_(max_quantum) {
  RTDS_REQUIRE(min_quantum > SimDuration::zero(),
               "SelfAdjustingQuantum: min_quantum must be positive");
  RTDS_REQUIRE(min_quantum <= max_quantum,
               "SelfAdjustingQuantum: min_quantum > max_quantum");
}

SimDuration SelfAdjustingQuantum::allocate(SimDuration min_slack,
                                           SimDuration min_load) const {
  return clamp_duration(max_duration(min_slack, min_load), min_quantum_,
                        max_quantum_);
}

std::string SelfAdjustingQuantum::name() const {
  return "self-adjusting[" + std::to_string(min_quantum_.us) + "us," +
         std::to_string(max_quantum_.us) + "us]";
}

FixedQuantum::FixedQuantum(SimDuration quantum) : quantum_(quantum) {
  RTDS_REQUIRE(quantum > SimDuration::zero(),
               "FixedQuantum: quantum must be positive");
}

SimDuration FixedQuantum::allocate(SimDuration /*min_slack*/,
                                   SimDuration /*min_load*/) const {
  return quantum_;
}

std::string FixedQuantum::name() const {
  return "fixed[" + std::to_string(quantum_.us) + "us]";
}

std::unique_ptr<QuantumPolicy> make_self_adjusting_quantum(
    SimDuration min_quantum, SimDuration max_quantum) {
  return std::make_unique<SelfAdjustingQuantum>(min_quantum, max_quantum);
}

std::unique_ptr<QuantumPolicy> make_fixed_quantum(SimDuration quantum) {
  return std::make_unique<FixedQuantum>(quantum);
}

}  // namespace rtds::sched
