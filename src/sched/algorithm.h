// Per-phase scheduling algorithms.
//
// A PhaseAlgorithm turns a batch snapshot into a feasible (partial or
// complete) schedule under a vertex budget — the unit of scheduling cost
// charged against Q_s(j). Implementations:
//   * TreeSearchAlgorithm — wraps search::SearchEngine; this is RT-SADS
//     (assignment-oriented) and D-COLS (sequence-oriented) depending on the
//     SearchConfig;
//   * GreedyAlgorithm — non-search baselines used to situate the two
//     search schedulers: EDF first-fit, EDF best-fit, and a myopic
//     window scheduler à la Ramamritham-Stankovic ([6] in the paper).
// All algorithms apply the SAME predictive feasibility test (Fig. 4), so
// the correction theorem (scheduled tasks never miss deadlines) holds for
// every baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "machine/interconnect.h"
#include "search/engine.h"
#include "search/parallel_engine.h"
#include "tasks/task.h"

namespace rtds::sched {

using search::SearchResult;
using tasks::Task;

/// Interface for one scheduling phase's decision procedure.
class PhaseAlgorithm {
 public:
  virtual ~PhaseAlgorithm() = default;

  /// Produces a feasible schedule for `batch`.
  ///
  /// `base_loads[k]` — residual worker load at delivery time (borrowed for
  ///                   the duration of the call; implementations snapshot
  ///                   what they need, so backends reuse one buffer across
  ///                   phases instead of copying per phase);
  /// `delivery_time` — when the schedule will reach the ready queues
  ///                   (t_s + Q_s);
  /// `vertex_budget` — maximum candidate evaluations allowed.
  [[nodiscard]] virtual SearchResult schedule_phase(
      const std::vector<Task>& batch,
      const std::vector<SimDuration>& base_loads, SimTime delivery_time,
      const machine::Interconnect& net,
      std::uint64_t vertex_budget) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Worker threads the algorithm uses per phase. 1 for every sequential
  /// algorithm; parallel tree search reports its shard count. Surfaced in
  /// RunMetrics / the trace CSV so experiment rows record their compute
  /// shape.
  [[nodiscard]] virtual std::uint32_t threads() const { return 1; }
};

/// Tree-search scheduler (RT-SADS / D-COLS, per the SearchConfig).
/// `threads > 1` runs each phase on the parallel sharded engine — results
/// stay bit-identical to the sequential engine for every budget, so the
/// thread count is a pure throughput knob (search/parallel_engine.h).
class TreeSearchAlgorithm final : public PhaseAlgorithm {
 public:
  TreeSearchAlgorithm(std::string name, search::SearchConfig config,
                      std::uint32_t threads = 1);

  [[nodiscard]] SearchResult schedule_phase(
      const std::vector<Task>& batch,
      const std::vector<SimDuration>& base_loads, SimTime delivery_time,
      const machine::Interconnect& net,
      std::uint64_t vertex_budget) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint32_t threads() const override {
    return engine_.threads();
  }

  [[nodiscard]] const search::SearchConfig& search_config() const {
    return engine_.config();
  }

 private:
  std::string name_;
  search::ParallelSearchEngine engine_;
};

/// Non-search greedy baselines.
enum class GreedyKind {
  kEdfFirstFit,  ///< EDF task order; first feasible processor in index order
  kEdfBestFit,   ///< EDF task order; feasible processor with earliest finish
  kMyopic,       ///< among the W earliest-deadline pending tasks, pick the
                 ///< (task, processor) pair with the earliest finish
};

class GreedyAlgorithm final : public PhaseAlgorithm {
 public:
  /// `window` is the myopic feasibility-window size W (ignored by the EDF
  /// variants). A non-empty `name` overrides the kind-derived default —
  /// the registry passes the canonical spec so name() round-trips.
  explicit GreedyAlgorithm(GreedyKind kind, std::uint32_t window = 5,
                           std::string name = "");

  [[nodiscard]] SearchResult schedule_phase(
      const std::vector<Task>& batch,
      const std::vector<SimDuration>& base_loads, SimTime delivery_time,
      const machine::Interconnect& net,
      std::uint64_t vertex_budget) const override;
  [[nodiscard]] std::string name() const override;

 private:
  GreedyKind kind_;
  std::uint32_t window_;
  std::string name_;
};

}  // namespace rtds::sched
