#include "sched/pipeline.h"

#include <chrono>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.h"
#include "tasks/batch.h"

namespace rtds::sched {

PhasePipeline::PhasePipeline(const PhaseAlgorithm& algorithm,
                             const QuantumPolicy& quantum,
                             PipelineConfig config)
    : algorithm_(algorithm), quantum_(quantum), config_(config) {
  RTDS_REQUIRE(config_.vertex_generation_cost > SimDuration::zero(),
               "PhasePipeline: vertex cost must be positive");
  RTDS_REQUIRE(!config_.phase_overhead.is_negative(),
               "PhasePipeline: negative phase overhead");
  RTDS_REQUIRE(!config_.delivery_backpressure.is_negative(),
               "PhasePipeline: negative delivery backpressure");
}

RunMetrics PhasePipeline::run(const std::vector<Task>& workload,
                              ExecutionBackend& backend,
                              PhaseObserver* observer,
                              TaskLedger* external_ledger) const {
  for (std::size_t i = 1; i < workload.size(); ++i) {
    RTDS_REQUIRE(workload[i - 1].arrival <= workload[i].arrival,
                 "PhasePipeline: workload must be sorted by arrival");
  }
  tasks::VectorArrivalSource source(workload);
  // Closed run == open run over the exhaustible vector source, with
  // admission control off and no latency accounting.
  return run_core(source, backend, StreamOptions{}, nullptr, observer,
                  external_ledger);
}

RunMetrics PhasePipeline::run_stream(tasks::ArrivalSource& source,
                                     ExecutionBackend& backend,
                                     const StreamOptions& options,
                                     StreamStats* stats,
                                     PhaseObserver* observer,
                                     TaskLedger* external_ledger) const {
  return run_core(source, backend, options, stats, observer, external_ledger);
}

RunMetrics PhasePipeline::run_core(tasks::ArrivalSource& source,
                                   ExecutionBackend& backend,
                                   const StreamOptions& options,
                                   StreamStats* stats,
                                   PhaseObserver* observer,
                                   TaskLedger* external_ledger) const {
  RunMetrics metrics;
  metrics.algorithm = algorithm_.name();
  metrics.threads = algorithm_.threads();

  const std::optional<SimTime> first_arrival = source.peek();
  if (!first_arrival.has_value()) {
    metrics.finish_time = backend.now();
    return metrics;
  }

  // Every run keeps a ledger — conservation is enforced, not opt-in.
  TaskLedger local_ledger;
  TaskLedger& ledger = external_ledger ? *external_ledger : local_ledger;
  backend.bind_ledger(&ledger);

  tasks::Batch batch;
  const SimDuration vcost = config_.vertex_generation_cost;
  const std::uint32_t num_workers = backend.num_workers();
  // Reused across phases: schedule_phase borrows it by const reference.
  std::vector<SimDuration> base_loads(num_workers);
  // Deliveries refused so far, per PENDING task: a task whose budget is
  // spent is retired as rejected instead of readmitted. Entries are erased
  // as tasks reach terminal states — under open arrivals this map would
  // otherwise grow with every task ever refused, for the whole run.
  std::unordered_map<tasks::TaskId, std::uint32_t> delivery_attempts;

  // Nothing to do before the first arrival.
  backend.wait_until(*first_arrival);

  while (true) {
    const SimTime t = backend.now();

    // Form Batch(j): pull tasks that arrived up to now from the source
    // (through admission control), merge them, cull unreachable.
    std::vector<Task> arrived;
    std::uint64_t admission_rejected_now = 0;
    while (true) {
      const std::optional<SimTime> next_arrival = source.peek();
      if (!next_arrival.has_value() || *next_arrival > t) break;
      Task task = source.next();
      ledger.arrive(task.id);
      metrics.total_tasks += 1;
      if (options.max_pending != 0 &&
          batch.size() + arrived.size() >= options.max_pending) {
        // Full house: turn the task away at the door. Rejecting the NEW
        // arrival (rather than evicting a pending task) keeps admission
        // decisions final — no admitted task is ever un-admitted.
        ledger.reject_admission(task.id);
        metrics.admission_rejected += 1;
        admission_rejected_now += 1;
        continue;
      }
      ledger.admit(task.id);
      arrived.push_back(std::move(task));
    }
    batch.merge_arrivals(arrived);
    const std::vector<Task> culled_tasks = batch.cull_missed(t);
    for (const Task& task : culled_tasks) {
      ledger.cull(task.id);
      delivery_attempts.erase(task.id);  // culled == terminal
    }
    metrics.culled += culled_tasks.size();

    PhaseRecord record;
    record.algorithm = metrics.algorithm;
    record.threads = metrics.threads;
    record.index = metrics.phases;
    record.start = t;
    record.arrivals = arrived.size();
    record.culled = culled_tasks.size();
    record.admission_rejected = admission_rejected_now;
    record.batch_size = batch.size();

    if (batch.empty()) {
      const std::optional<SimTime> next_arrival = source.peek();
      if (!next_arrival.has_value()) break;  // pipeline drained
      // Sleep until the next arrival.
      backend.wait_until(*next_arrival);
      continue;
    }

    // Q_s(j) from the Fig. 3 criterion (or the fixed-quantum ablation).
    const SimDuration min_slack = batch.min_slack(t);
    RTDS_ASSERT_MSG(!min_slack.is_negative(),
                    "unreachable task survived culling");
    SimDuration min_load = SimDuration::max();
    for (std::uint32_t k = 0; k < num_workers; ++k) {
      min_load = min_duration(min_load, backend.load(k, t));
    }
    SimDuration quantum = quantum_.allocate(min_slack, min_load);
    // The quantum must cover the fixed per-phase overhead plus at least one
    // vertex generation, or the phase could make no progress. Raising it
    // can push Q_s past max_quantum and past the paper's
    // Q_s <= max(Min_Slack, Min_Load) bound, so the override is counted
    // and surfaced in the trace rather than applied silently.
    const SimDuration quantum_floor = config_.phase_overhead + vcost;
    const bool floor_override = quantum < quantum_floor;
    if (floor_override) {
      quantum = quantum_floor;
      metrics.quantum_floor_overrides += 1;
    }
    const std::uint64_t budget = static_cast<std::uint64_t>(
        (quantum - config_.phase_overhead) / vcost);

    // Worker loads as seen at the planned delivery time t_s + Q_s: the
    // workers drain previous schedules while this phase runs (Sec. 4.4).
    const SimTime planned_delivery = t + quantum;
    for (std::uint32_t k = 0; k < num_workers; ++k) {
      const SimDuration load = backend.load(k, t);
      base_loads[k] =
          load <= quantum ? SimDuration::zero() : load - quantum;
    }

    const auto search_start = std::chrono::steady_clock::now();
    const SearchResult result = algorithm_.schedule_phase(
        batch.tasks(), base_loads, planned_delivery, backend.interconnect(),
        budget);
    const auto search_wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - search_start)
            .count());
    metrics.search_wall_ns += search_wall_ns;

    // The host was busy for the vertices it generated plus the fixed
    // turnover/delivery overhead.
    SimDuration spent = vcost * std::int64_t(result.stats.vertices_generated);
    if (spent.is_zero()) spent = vcost;  // defensive: always advance time
    spent += config_.phase_overhead;
    RTDS_ASSERT(spent <= quantum);
    const SimTime phase_end = t + spent;

    metrics.phases += 1;
    metrics.vertices_generated += result.stats.vertices_generated;
    metrics.expansions += result.stats.expansions;
    metrics.backtracks += result.stats.backtracks;
    metrics.dead_ends += result.stats.dead_end ? 1 : 0;
    metrics.leaves += result.stats.reached_leaf ? 1 : 0;
    metrics.budget_exhaustions += result.stats.budget_exhausted ? 1 : 0;
    metrics.scheduling_time += spent;
    metrics.allocated_quantum += quantum;
    metrics.min_quantum_seen = min_duration(metrics.min_quantum_seen, quantum);
    metrics.max_quantum_seen = max_duration(metrics.max_quantum_seen, quantum);

    // Materialize S_j against the batch snapshot. The scheduled tasks are
    // retired from the batch only after deliver() reports which of them the
    // backend actually accepted — a refused assignment must not disappear.
    std::vector<machine::ScheduledAssignment> delivery;
    delivery.reserve(result.schedule.size());
    std::unordered_set<tasks::TaskId> scheduled_ids;
    for (const search::Assignment& a : result.schedule) {
      const Task& task = batch.tasks()[a.task_index];
      delivery.push_back({task, a.worker});
      scheduled_ids.insert(task.id);
      ledger.schedule(task.id);
    }

    // Charge the host time, then deliver S_j at t_e and start phase j+1.
    backend.advance(spent);
    const DeliveryResult delivered = backend.deliver(delivery);
    metrics.scheduled += delivered.accepted;
    metrics.overflow_drops += delivered.undelivered.size();

    // Retire from the batch exactly the tasks that left the pipeline:
    // accepted deliveries and tasks whose delivery budget is spent. A
    // refused task with attempts remaining stays pending — that is the
    // readmission path — so a later phase schedules it again.
    std::unordered_set<tasks::TaskId> retired_ids = scheduled_ids;
    std::uint64_t readmitted_now = 0;
    std::uint64_t rejected_now = 0;
    SimDuration min_refused_load = SimDuration::max();
    for (const machine::ScheduledAssignment& refused :
         delivered.undelivered) {
      const std::uint32_t attempts = ++delivery_attempts[refused.task.id];
      if (config_.max_delivery_attempts != 0 &&
          attempts >= config_.max_delivery_attempts) {
        delivery_attempts.erase(refused.task.id);  // rejected == terminal
        ledger.reject(refused.task.id);
        metrics.rejected += 1;
        rejected_now += 1;
        continue;  // stays in retired_ids: leaves the pipeline for good
      }
      ledger.drop(refused.task.id);
      batch.readmit(refused.task);  // no-op when still pending (the rule)
      retired_ids.erase(refused.task.id);
      metrics.readmissions += 1;
      readmitted_now += 1;
      min_refused_load = min_duration(
          min_refused_load, backend.load(refused.worker, backend.now()));
    }
    // Everything scheduled this phase that was neither readmitted nor
    // rejected was accepted by the backend. The accepted deliveries are
    // where schedule latency is measured: the clock now reads t_e, the
    // instant S_j landed in the worker ready queues.
    std::unordered_set<tasks::TaskId> refused_ids;
    for (const machine::ScheduledAssignment& refused : delivered.undelivered)
      refused_ids.insert(refused.task.id);
    for (const machine::ScheduledAssignment& accepted : delivery) {
      if (refused_ids.count(accepted.task.id) != 0) continue;
      ledger.deliver(accepted.task.id);
      delivery_attempts.erase(accepted.task.id);  // delivered == terminal
      if (stats != nullptr) {
        stats->schedule_latency.add(
            double((backend.now() - accepted.task.arrival).us));
      }
    }
    batch.remove_scheduled(retired_ids);

    if (observer != nullptr) {
      record.end = phase_end;
      record.min_slack = min_slack;
      record.min_load = min_load;
      record.quantum = quantum;
      record.vertex_budget = budget;
      record.quantum_floor_override = floor_override;
      record.search = result.stats;
      record.search_wall_ns = search_wall_ns;
      record.scheduled = result.schedule.size();
      record.delivered = delivered.accepted;
      record.overflow_drops = delivered.undelivered.size();
      record.readmitted = readmitted_now;
      record.rejected = rejected_now;
      observer->on_phase(record);
    }

    // Backpressure: when delivery was refused, pause before rescheduling so
    // the saturated workers drain instead of the host burning the refused
    // tasks' delivery budgets in a hot loop. Wait at least the configured
    // floor, at most until the least-loaded refused worker would be idle,
    // and never longer than the batch's min slack (waiting must not by
    // itself make a pending task unreachable).
    if (readmitted_now > 0 && !config_.delivery_backpressure.is_zero()) {
      // Floor first, slack cap last: the cap is the safety bound and must
      // win when the configured floor exceeds the batch's min slack.
      SimDuration pause =
          max_duration(min_refused_load, config_.delivery_backpressure);
      if (!batch.empty()) {
        pause = min_duration(pause, batch.min_slack(backend.now()));
      }
      backend.wait_until(backend.now() + pause);
      metrics.backpressure_waits += 1;
    }
  }

  const BackendStats finals = backend.drain();
  backend.bind_ledger(nullptr);
  metrics.deadline_hits = finals.deadline_hits;
  metrics.exec_misses = finals.exec_misses;
  metrics.finish_time = finals.finish_time;
  RTDS_ASSERT(metrics.scheduled ==
              metrics.deadline_hits + metrics.exec_misses);

  // Task conservation: every offered task is in exactly one terminal state
  // and the ledger agrees with the aggregate metrics.
  RTDS_CHECK_MSG(delivery_attempts.empty(),
                 "delivery_attempts retained entries for terminal tasks at "
                 "drain (leak under open arrivals)");
  ledger.check_conserved();
  const LedgerCounts& counts = ledger.counts();
  RTDS_ASSERT(counts.total == metrics.total_tasks);
  RTDS_ASSERT(counts.deadline_hits == metrics.deadline_hits);
  RTDS_ASSERT(counts.exec_misses == metrics.exec_misses);
  RTDS_ASSERT(counts.culled == metrics.culled);
  RTDS_ASSERT(counts.rejected == metrics.rejected);
  RTDS_ASSERT(counts.admission_rejected == metrics.admission_rejected);
  RTDS_ASSERT(metrics.total_tasks ==
              metrics.deadline_hits + metrics.exec_misses + metrics.culled +
                  metrics.rejected + metrics.admission_rejected);
  return metrics;
}

}  // namespace rtds::sched
