#include "sched/pipeline.h"

#include <unordered_set>
#include <utility>

#include "common/error.h"
#include "tasks/batch.h"

namespace rtds::sched {

PhasePipeline::PhasePipeline(const PhaseAlgorithm& algorithm,
                             const QuantumPolicy& quantum,
                             PipelineConfig config)
    : algorithm_(algorithm), quantum_(quantum), config_(config) {
  RTDS_REQUIRE(config_.vertex_generation_cost > SimDuration::zero(),
               "PhasePipeline: vertex cost must be positive");
  RTDS_REQUIRE(!config_.phase_overhead.is_negative(),
               "PhasePipeline: negative phase overhead");
}

RunMetrics PhasePipeline::run(const std::vector<Task>& workload,
                              ExecutionBackend& backend,
                              PhaseObserver* observer) const {
  for (std::size_t i = 1; i < workload.size(); ++i) {
    RTDS_REQUIRE(workload[i - 1].arrival <= workload[i].arrival,
                 "PhasePipeline: workload must be sorted by arrival");
  }

  RunMetrics metrics;
  metrics.total_tasks = workload.size();
  if (workload.empty()) {
    metrics.finish_time = backend.now();
    return metrics;
  }

  tasks::Batch batch;
  std::size_t cursor = 0;
  const SimDuration vcost = config_.vertex_generation_cost;
  const std::uint32_t num_workers = backend.num_workers();

  // Nothing to do before the first arrival.
  backend.wait_until(workload.front().arrival);

  while (true) {
    const SimTime t = backend.now();

    // Form Batch(j): merge tasks that arrived up to now, cull unreachable.
    std::vector<Task> arrived;
    while (cursor < workload.size() && workload[cursor].arrival <= t) {
      arrived.push_back(workload[cursor]);
      ++cursor;
    }
    batch.merge_arrivals(arrived);
    const std::size_t culled_now = batch.cull_missed(t).size();
    metrics.culled += culled_now;

    PhaseRecord record;
    record.index = metrics.phases;
    record.start = t;
    record.arrivals = arrived.size();
    record.culled = culled_now;
    record.batch_size = batch.size();

    if (batch.empty()) {
      if (cursor >= workload.size()) break;  // pipeline drained
      // Sleep until the next arrival.
      backend.wait_until(workload[cursor].arrival);
      continue;
    }

    // Q_s(j) from the Fig. 3 criterion (or the fixed-quantum ablation).
    const SimDuration min_slack = batch.min_slack(t);
    RTDS_ASSERT_MSG(!min_slack.is_negative(),
                    "unreachable task survived culling");
    SimDuration min_load = SimDuration::max();
    for (std::uint32_t k = 0; k < num_workers; ++k) {
      min_load = min_duration(min_load, backend.load(k, t));
    }
    SimDuration quantum = quantum_.allocate(min_slack, min_load);
    // The quantum must cover the fixed per-phase overhead plus at least one
    // vertex generation, or the phase could make no progress.
    quantum = max_duration(quantum, config_.phase_overhead + vcost);
    const std::uint64_t budget = static_cast<std::uint64_t>(
        (quantum - config_.phase_overhead) / vcost);

    // Worker loads as seen at the planned delivery time t_s + Q_s: the
    // workers drain previous schedules while this phase runs (Sec. 4.4).
    const SimTime planned_delivery = t + quantum;
    std::vector<SimDuration> base_loads(num_workers);
    for (std::uint32_t k = 0; k < num_workers; ++k) {
      const SimDuration load = backend.load(k, t);
      base_loads[k] =
          load <= quantum ? SimDuration::zero() : load - quantum;
    }

    const SearchResult result = algorithm_.schedule_phase(
        batch.tasks(), std::move(base_loads), planned_delivery,
        backend.interconnect(), budget);

    // The host was busy for the vertices it generated plus the fixed
    // turnover/delivery overhead.
    SimDuration spent = vcost * std::int64_t(result.stats.vertices_generated);
    if (spent.is_zero()) spent = vcost;  // defensive: always advance time
    spent += config_.phase_overhead;
    RTDS_ASSERT(spent <= quantum);
    const SimTime phase_end = t + spent;

    metrics.phases += 1;
    metrics.vertices_generated += result.stats.vertices_generated;
    metrics.expansions += result.stats.expansions;
    metrics.backtracks += result.stats.backtracks;
    metrics.dead_ends += result.stats.dead_end ? 1 : 0;
    metrics.leaves += result.stats.reached_leaf ? 1 : 0;
    metrics.budget_exhaustions += result.stats.budget_exhausted ? 1 : 0;
    metrics.scheduling_time += spent;
    metrics.allocated_quantum += quantum;
    metrics.min_quantum_seen = min_duration(metrics.min_quantum_seen, quantum);
    metrics.max_quantum_seen = max_duration(metrics.max_quantum_seen, quantum);

    if (observer != nullptr) {
      record.end = phase_end;
      record.min_slack = min_slack;
      record.min_load = min_load;
      record.quantum = quantum;
      record.vertex_budget = budget;
      record.search = result.stats;
      record.scheduled = result.schedule.size();
      observer->on_phase(record);
    }

    // Materialize S_j against the batch snapshot, then retire the
    // scheduled tasks from the batch: they never re-enter later batches.
    std::vector<machine::ScheduledAssignment> delivery;
    delivery.reserve(result.schedule.size());
    std::unordered_set<tasks::TaskId> scheduled_ids;
    for (const search::Assignment& a : result.schedule) {
      const Task& task = batch.tasks()[a.task_index];
      delivery.push_back({task, a.worker});
      scheduled_ids.insert(task.id);
    }
    batch.remove_scheduled(scheduled_ids);

    // Charge the host time, then deliver S_j at t_e and start phase j+1.
    backend.advance(spent);
    const std::size_t delivered = backend.deliver(delivery);
    metrics.scheduled += delivered;
    metrics.overflow_drops += delivery.size() - delivered;
  }

  const BackendStats finals = backend.drain();
  metrics.deadline_hits = finals.deadline_hits;
  metrics.exec_misses = finals.exec_misses;
  metrics.finish_time = finals.finish_time;
  RTDS_ASSERT(metrics.scheduled ==
              metrics.deadline_hits + metrics.exec_misses);
  return metrics;
}

}  // namespace rtds::sched
