// Ready-made algorithm configurations matching the paper's evaluation.
//
//   * rt_sads()  — Sec. 4: assignment-oriented search, EDF task selection,
//     load-balancing cost function (Sec. 4.4).
//   * d_cols()   — Sec. 5.2: the sequence-oriented comparator, reconstructed
//     from the paper's description of [2]: round-robin processor selection
//     per level, EDF-ordered task branching, same feasibility test. Both
//     algorithms receive the same quantum (the paper stresses this), so the
//     only difference is the search representation.
//   * the greedy baselines — not in the paper's figures, provided to
//     situate the search schedulers (bench_baselines).
#pragma once

#include <memory>

#include "sched/algorithm.h"

namespace rtds::sched {

/// RT-SADS phase algorithm (assignment-oriented representation, Fig. 2).
std::unique_ptr<PhaseAlgorithm> make_rt_sads();

/// RT-SADS variant without the load-balancing cost function: successors
/// ordered by the processor-order heuristic only (ablation ABL-H).
std::unique_ptr<PhaseAlgorithm> make_rt_sads_no_cost_function(
    search::ProcessorOrder order = search::ProcessorOrder::kMinEndOffset);

/// D-COLS phase algorithm (sequence-oriented representation, Fig. 1).
std::unique_ptr<PhaseAlgorithm> make_d_cols();

/// D-COLS variant with a successor cap (the "limited backtracking" pruning
/// the paper says dynamic sequence-oriented algorithms are forced to use).
std::unique_ptr<PhaseAlgorithm> make_d_cols_pruned(
    std::uint32_t max_successors);

/// D-COLS variant whose level processor is the least-loaded worker instead
/// of round-robin (the paper's "heuristic function can be applied to
/// affect this order"); ablation ABL-H.
std::unique_ptr<PhaseAlgorithm> make_d_cols_least_loaded();

std::unique_ptr<PhaseAlgorithm> make_edf_first_fit();
std::unique_ptr<PhaseAlgorithm> make_edf_best_fit();
std::unique_ptr<PhaseAlgorithm> make_myopic(std::uint32_t window = 5);

}  // namespace rtds::sched
