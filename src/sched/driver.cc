#include "sched/driver.h"

#include "sched/backend.h"

namespace rtds::sched {

PhaseScheduler::PhaseScheduler(const PhaseAlgorithm& algorithm,
                               const QuantumPolicy& quantum,
                               DriverConfig config)
    : pipeline_(algorithm, quantum, config) {}

RunMetrics PhaseScheduler::run(const std::vector<Task>& workload,
                               Cluster& cluster, sim::Simulator& sim,
                               PhaseObserver* observer) const {
  SimBackend backend(cluster, sim);
  return pipeline_.run(workload, backend, observer);
}

}  // namespace rtds::sched
