// String-keyed algorithm construction: the portfolio seam.
//
// Every deployment of the system (driver, experiments, fuzz harness, bench
// binaries, CLI) used to hard-code presets.h factory calls; the registry
// replaces those call sites with one string surface so a run is
// attributable and replayable by name:
//
//   auto algo = AlgorithmRegistry::builtin().make("d_cols?max_successors=8");
//   algo->name()  == "d_cols?max_successors=8"   // canonical spec
//
// A spec is `key` or `key?param=value&param=value`. Construction
// canonicalizes it: parameters equal to the entry's defaults are dropped,
// values are normalized (no leading zeros, declared enum spellings), and
// the surviving parameters keep the entry's declared order — so
// make(spec)->name() is a fixpoint: make(name)->name() == name. Unknown
// keys, unknown or duplicate parameters, and out-of-domain values all
// throw InvalidArgument (a replay token naming an algorithm must either
// reconstruct it exactly or fail loudly).
//
// Built-in entries (AlgorithmRegistry::builtin()):
//   rt_sads    assignment-oriented tree search (Sec. 4); params
//              cost=on|off (load-balance cost function),
//              order=min_end|index|min_comm (successor order when cost=off)
//   d_cols     sequence-oriented tree search (Sec. 5.2); params
//              max_successors=N (0 = unlimited pruning cap),
//              level_order=round_robin|least_loaded
//   edf_ff     greedy EDF first-fit baseline
//   edf_bf     greedy EDF best-fit baseline
//   myopic     Ramamritham-Stankovic window scheduler; param window=W
//   packing    first-fit/best-fit packing partitioned scheduler
//              (arXiv:1809.04355); params fit=first|best, order=edf|lpt
//   multicrit  multi-criteria partitioner (arXiv:1004.3715); params
//              sort=density|edf|min_slack|lpt, fit=first|best|worst|next
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sched/algorithm.h"

namespace rtds::sched {

/// Parsed `key?param=value&...` spec. Parameters keep their textual order;
/// parse() rejects syntactic garbage (empty key/param/value, duplicate
/// parameters, stray separators) but knows nothing about which keys or
/// parameters exist — that is the registry's job.
struct AlgorithmSpec {
  std::string key;
  std::vector<std::pair<std::string, std::string>> params;

  [[nodiscard]] static std::optional<AlgorithmSpec> parse(
      const std::string& text);
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] const std::string* find(const std::string& name) const;
};

/// Typed parameter accessor handed to entry factories. Reading a parameter
/// consumes it and, when the value differs from the declared default,
/// appends `name=value` (normalized) to the canonical spec — so the
/// canonical name falls out of the reads the factory performs, in the order
/// it performs them. Reads throw InvalidArgument on unparseable or
/// out-of-domain values; AlgorithmRegistry::make() throws afterwards if any
/// provided parameter was never consumed (unknown parameter).
class AlgorithmParams {
 public:
  explicit AlgorithmParams(AlgorithmSpec spec);

  /// Unsigned integer parameter.
  [[nodiscard]] std::uint32_t u32(const std::string& name,
                                  std::uint32_t default_value);

  /// Enumerated parameter: the value must be one of `allowed`;
  /// `allowed.front()` need not be the default. Returns the INDEX into
  /// `allowed` so factories switch on it without string compares.
  [[nodiscard]] std::size_t choice(const std::string& name,
                                   const std::string& default_value,
                                   const std::vector<std::string>& allowed);

  /// Canonical spec accumulated by the reads so far.
  [[nodiscard]] std::string canonical_name() const;

  /// Parameters provided in the spec but never read by the factory.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  AlgorithmSpec spec_;
  std::vector<bool> consumed_;
  std::vector<std::pair<std::string, std::string>> canonical_;

  [[nodiscard]] const std::string* consume(const std::string& name);
};

/// The string-keyed algorithm factory registry.
class AlgorithmRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<PhaseAlgorithm>(AlgorithmParams&)>;

  /// The process-wide registry holding every built-in portfolio member.
  [[nodiscard]] static const AlgorithmRegistry& builtin();

  AlgorithmRegistry() = default;

  /// Registers an entry. `summary` is a one-line human description used by
  /// listings (rtds_fuzz --list-algos, rtds_cli usage).
  void add(std::string key, std::string summary, Factory factory);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> keys() const;  ///< sorted
  [[nodiscard]] const std::string& summary(const std::string& key) const;

  /// Parses, validates and builds `spec`. The returned algorithm's name()
  /// is the canonical spec. Throws InvalidArgument on malformed specs,
  /// unknown keys, unknown/duplicate parameters or out-of-domain values.
  [[nodiscard]] std::unique_ptr<PhaseAlgorithm> make(
      const std::string& spec) const;

  /// make() without construction: the canonical spec `spec` would produce,
  /// or nullopt when make() would throw. Cheap validation for arg parsing.
  [[nodiscard]] std::optional<std::string> canonicalize(
      const std::string& spec) const;

 private:
  struct Entry {
    std::string summary;
    Factory factory;
  };
  std::vector<std::pair<std::string, Entry>> entries_;

  [[nodiscard]] const Entry* find(const std::string& key) const;
};

}  // namespace rtds::sched
