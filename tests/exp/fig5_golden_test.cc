// Golden regression pin for the Figure-5 headline cell.
//
// The paper's flagship comparison (Sec. 5.1, Figure 5): m = 10 workers,
// R = 30% replication, SF = 1, 1000 bursty transactions, 10 repetitions.
// This reproduction lands RT-SADS at 15.3% deadline compliance and D-COLS
// at 8.4% — the roughly-2x separation the paper reports ("RT-SADS
// outperforms by as much as 60%" and keeps scaling with m where D-COLS
// flattens). The experiment is fully deterministic (seeds derive from
// ExperimentConfig::base_seed via common/rng), so genuine drift here means
// a behavioral change in the scheduler, workload generator or seed
// derivation — not noise. Tolerances are one bench-observed 99% CI wide so
// a legitimate refactor has headroom but a regression that moves the
// result by more than its own confidence interval fails loudly.
//
// If a deliberate algorithm change moves these numbers, re-run
// bench_fig5_scalability, verify the SHAPE (RT-SADS rises with m, D-COLS
// stays flat, gap significant at 0.01) and re-pin.
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "sched/presets.h"

namespace rtds::exp {
namespace {

ExperimentConfig fig5_m10_config() {
  ExperimentConfig cfg;
  cfg.num_workers = 10;
  cfg.replication_rate = 0.3;
  cfg.scaling_factor = 1.0;
  cfg.num_transactions = 1000;
  cfg.repetitions = 10;
  return cfg;
}

TEST(Fig5GoldenTest, HeadlineCellMatchesPinnedNumbers) {
  const ExperimentConfig cfg = fig5_m10_config();
  const auto rt_sads = sched::make_rt_sads();
  const auto d_cols = sched::make_d_cols();
  const Aggregate rt = run_repeated(cfg, *rt_sads);
  const Aggregate dc = run_repeated(cfg, *d_cols);

  // Pinned means in percent; tolerance = the bench's 99% CI half-width.
  EXPECT_NEAR(rt.hit_ratio.mean() * 100.0, 15.3, 0.8)
      << "RT-SADS m=10 headline moved";
  EXPECT_NEAR(dc.hit_ratio.mean() * 100.0, 8.4, 0.5)
      << "D-COLS m=10 headline moved";

  // The qualitative claims behind the figure.
  EXPECT_GT(rt.hit_ratio.mean(), dc.hit_ratio.mean() * 1.5)
      << "the ~2x RT-SADS advantage at m=10 collapsed";
  const WelchResult welch = compare_hit_ratios(rt, dc);
  EXPECT_TRUE(welch.significant(0.01))
      << "difference no longer significant at the paper's 0.01 level "
      << "(p = " << welch.p_value << ")";

  // Correction theorem holds across every repetition of both cells.
  EXPECT_EQ(rt.exec_misses.mean(), 0.0);
  EXPECT_EQ(dc.exec_misses.mean(), 0.0);
}

TEST(Fig5GoldenTest, ScalabilityShapeRtSadsGainsFromM2ToM10) {
  // The figure's other load-bearing property: adding processors helps
  // RT-SADS substantially more than D-COLS (the scheduling-host bottleneck
  // analysis of Sec. 5.1). Pin the m=2 -> m=10 gains with wide bands.
  ExperimentConfig cfg = fig5_m10_config();
  cfg.num_workers = 2;
  const auto rt_sads = sched::make_rt_sads();
  const auto d_cols = sched::make_d_cols();
  const Aggregate rt2 = run_repeated(cfg, *rt_sads);
  const Aggregate dc2 = run_repeated(cfg, *d_cols);
  cfg.num_workers = 10;
  const Aggregate rt10 = run_repeated(cfg, *rt_sads);
  const Aggregate dc10 = run_repeated(cfg, *d_cols);

  const double rt_gain = (rt10.hit_ratio.mean() - rt2.hit_ratio.mean()) * 100;
  const double dc_gain = (dc10.hit_ratio.mean() - dc2.hit_ratio.mean()) * 100;
  EXPECT_GT(rt_gain, 5.0) << "RT-SADS stopped scaling with m";
  EXPECT_GT(rt_gain, dc_gain + 2.0)
      << "RT-SADS no longer out-scales D-COLS (rt +" << rt_gain << "pp, dc +"
      << dc_gain << "pp)";
}

}  // namespace
}  // namespace rtds::exp
