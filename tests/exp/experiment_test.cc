#include "exp/experiment.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sched/presets.h"

namespace rtds::exp {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.num_workers = 4;
  cfg.num_transactions = 120;
  cfg.database.num_subdbs = 4;
  cfg.database.records_per_subdb = 100;
  cfg.database.domain_size = 20;
  cfg.database.check_cost = usec(20);
  cfg.replication_rate = 0.5;
  cfg.repetitions = 3;
  return cfg;
}

TEST(ExperimentConfigTest, QuantumFactoryMatchesKind) {
  ExperimentConfig cfg = tiny_config();
  cfg.quantum = QuantumKind::kSelfAdjusting;
  cfg.min_quantum = msec(1);
  cfg.max_quantum = msec(4);
  auto q = cfg.make_quantum();
  EXPECT_EQ(q->allocate(msec(2), msec(3)), msec(3));
  EXPECT_EQ(q->allocate(sec(1), sec(1)), msec(4));

  cfg.quantum = QuantumKind::kFixed;
  cfg.fixed_quantum = msec(7);
  q = cfg.make_quantum();
  EXPECT_EQ(q->allocate(msec(1), msec(1)), msec(7));
}

TEST(RunOnceTest, ProducesConsistentMetrics) {
  const ExperimentConfig cfg = tiny_config();
  const auto algo = sched::make_rt_sads();
  const auto m = run_once(cfg, *algo, /*seed=*/123);
  EXPECT_EQ(m.total_tasks, 120u);
  EXPECT_EQ(m.exec_misses, 0u);  // correction theorem
  EXPECT_EQ(m.deadline_hits + m.exec_misses, m.scheduled);
  EXPECT_LE(m.scheduled + m.culled, m.total_tasks);
  EXPECT_GT(m.phases, 0u);
}

TEST(RunOnceTest, DeterministicForSeed) {
  const ExperimentConfig cfg = tiny_config();
  const auto algo = sched::make_rt_sads();
  const auto a = run_once(cfg, *algo, 77);
  const auto b = run_once(cfg, *algo, 77);
  EXPECT_EQ(a.deadline_hits, b.deadline_hits);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.vertices_generated, b.vertices_generated);
  EXPECT_EQ(a.finish_time, b.finish_time);
}

TEST(RunOnceTest, DifferentSeedsDiffer) {
  const ExperimentConfig cfg = tiny_config();
  const auto algo = sched::make_rt_sads();
  const auto a = run_once(cfg, *algo, 1);
  const auto b = run_once(cfg, *algo, 2);
  // Workloads differ, so at least one counter should differ.
  EXPECT_TRUE(a.vertices_generated != b.vertices_generated ||
              a.deadline_hits != b.deadline_hits ||
              a.finish_time != b.finish_time);
}

TEST(RunRepeatedTest, AggregatesRepetitions) {
  const ExperimentConfig cfg = tiny_config();
  const auto algo = sched::make_rt_sads();
  const Aggregate agg = run_repeated(cfg, *algo);
  EXPECT_EQ(agg.algorithm, "RT-SADS");
  EXPECT_EQ(agg.hit_ratio.count(), 3u);
  EXPECT_GE(agg.hit_ratio.min(), 0.0);
  EXPECT_LE(agg.hit_ratio.max(), 1.0);
  EXPECT_DOUBLE_EQ(agg.exec_misses.max(), 0.0);
  EXPECT_GT(agg.phases.mean(), 0.0);
}

TEST(RunRepeatedTest, ValidatesRepetitions) {
  ExperimentConfig cfg = tiny_config();
  cfg.repetitions = 0;
  const auto algo = sched::make_rt_sads();
  EXPECT_THROW(run_repeated(cfg, *algo), InvalidArgument);
}

TEST(CompareHitRatiosTest, WiredToWelch) {
  ExperimentConfig cfg = tiny_config();
  cfg.repetitions = 4;
  const auto rt = sched::make_rt_sads();
  const auto ff = sched::make_edf_first_fit();
  const Aggregate a = run_repeated(cfg, *rt);
  const Aggregate b = run_repeated(cfg, *ff);
  const WelchResult w = compare_hit_ratios(a, b);
  EXPECT_GE(w.p_value, 0.0);
  EXPECT_LE(w.p_value, 1.0);
}

TEST(ReplicationEffectTest, HigherReplicationDoesNotHurtRtSads) {
  // Coarse sanity on the Fig. 6 mechanism at tiny scale: more replication
  // means weakly better compliance for RT-SADS.
  ExperimentConfig low = tiny_config();
  low.replication_rate = 0.25;
  ExperimentConfig high = tiny_config();
  high.replication_rate = 1.0;
  const auto algo = sched::make_rt_sads();
  const double lo = run_repeated(low, *algo).hit_ratio.mean();
  const double hi = run_repeated(high, *algo).hit_ratio.mean();
  EXPECT_GE(hi + 0.05, lo);  // allow small noise
}

}  // namespace
}  // namespace rtds::exp
