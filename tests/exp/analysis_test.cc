#include "exp/analysis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "machine/validator.h"
#include "sched/driver.h"
#include "sched/presets.h"
#include "sim/simulator.h"
#include "tasks/workload.h"

namespace rtds::exp {
namespace {

machine::CompletionRecord rec(SimTime end, SimTime deadline) {
  machine::CompletionRecord r;
  r.end = end;
  r.deadline = deadline;
  return r;
}

TEST(LatenessSummaryTest, EmptyLog) {
  const LatenessSummary s = lateness_summary({});
  EXPECT_EQ(s.executed, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(LatenessSummaryTest, SplitsHitsAndMisses) {
  std::vector<machine::CompletionRecord> log{
      rec(SimTime{1000}, SimTime{5000}),   // +4ms margin
      rec(SimTime{5000}, SimTime{5000}),   // exactly on time -> hit
      rec(SimTime{9000}, SimTime{5000}),   // 4ms tardy
  };
  const LatenessSummary s = lateness_summary(log);
  EXPECT_EQ(s.executed, 3u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_NEAR(s.margin_ms.mean(), 0.0, 1e-9);  // +4, 0, -4
  EXPECT_NEAR(s.tardiness_ms.mean(), 4.0, 1e-9);
  EXPECT_NE(s.to_string().find("hits 2"), std::string::npos);
}

TEST(MarginHistogramTest, CentersOnZero) {
  std::vector<machine::CompletionRecord> log{
      rec(SimTime{1000}, SimTime{5000}),   // margin +4ms
      rec(SimTime{9000}, SimTime{5000}),   // margin -4ms
  };
  const Histogram h = margin_histogram(log, 10.0, 10);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(BalanceSummaryTest, PerfectBalance) {
  machine::Cluster cl(2, machine::Interconnect::cut_through(2, msec(0)));
  tasks::Task t;
  t.processing = msec(4);
  t.deadline = SimTime{1000000};
  t.affinity = tasks::AffinitySet::all(2);
  t.id = 1;
  machine::ScheduledAssignment a{t, 0};
  t.id = 2;
  machine::ScheduledAssignment b{t, 1};
  cl.deliver({a, b}, SimTime::zero());
  const BalanceSummary s = balance_summary(cl);
  EXPECT_DOUBLE_EQ(s.imbalance, 0.0);
  EXPECT_EQ(s.idle_workers, 0u);
  EXPECT_DOUBLE_EQ(s.busy_ms.mean(), 4.0);
}

TEST(BalanceSummaryTest, DetectsIdleWorkers) {
  machine::Cluster cl(3, machine::Interconnect::cut_through(3, msec(0)));
  tasks::Task t;
  t.id = 1;
  t.processing = msec(4);
  t.deadline = SimTime{1000000};
  t.affinity = tasks::AffinitySet::all(3);
  cl.deliver({{t, 0}}, SimTime::zero());
  const BalanceSummary s = balance_summary(cl);
  EXPECT_EQ(s.idle_workers, 2u);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
}

TEST(AnalysisIntegrationTest, EndToEndRunValidatesAndAnalyzes) {
  // Full pipeline -> oracle validation + analysis, for both schedulers.
  for (const auto& factory : {sched::make_rt_sads, sched::make_d_cols}) {
    const auto algo = factory();
    machine::Cluster cluster(4,
                             machine::Interconnect::cut_through(4, msec(2)));
    sim::Simulator sim;
    const auto quantum = sched::make_self_adjusting_quantum(usec(100),
                                                            msec(10));
    tasks::WorkloadConfig wc;
    wc.num_tasks = 150;
    wc.num_processors = 4;
    wc.laxity_min = 3.0;
    wc.laxity_max = 10.0;
    Xoshiro256ss rng(7);
    const auto wl = tasks::generate_workload(wc, rng);
    const sched::PhaseScheduler scheduler(*algo, *quantum);
    const sched::RunMetrics m = scheduler.run(wl, cluster, sim);

    const machine::ValidationReport vr =
        machine::validate_execution(cluster, wl);
    EXPECT_TRUE(vr.ok()) << algo->name() << ":\n" << vr.to_string();

    const LatenessSummary ls = lateness_summary(cluster.log());
    EXPECT_EQ(ls.executed, m.scheduled);
    EXPECT_EQ(ls.hits, m.deadline_hits);
    EXPECT_EQ(ls.misses, m.exec_misses);
    // Correction theorem: the margin distribution never goes negative.
    if (ls.executed > 0) {
      EXPECT_GE(ls.margin_ms.min(), 0.0);
    }
  }
}

TEST(PeriodicBurstWorkloadTest, BurstsAtRegularIntervals) {
  tasks::WorkloadConfig wc;
  wc.num_tasks = 35;
  wc.num_processors = 2;
  wc.arrival = tasks::ArrivalPattern::kPeriodicBurst;
  wc.burst_size = 10;
  wc.burst_interval = msec(5);
  Xoshiro256ss rng(8);
  const auto wl = tasks::generate_workload(wc, rng);
  ASSERT_EQ(wl.size(), 35u);
  for (std::size_t i = 0; i < wl.size(); ++i) {
    EXPECT_EQ(wl[i].arrival, SimTime::zero() + msec(5) * std::int64_t(i / 10));
  }
}

TEST(PeriodicBurstWorkloadTest, Validation) {
  tasks::WorkloadConfig wc;
  wc.num_tasks = 10;
  wc.num_processors = 2;
  wc.arrival = tasks::ArrivalPattern::kPeriodicBurst;
  wc.burst_size = 0;
  Xoshiro256ss rng(9);
  EXPECT_THROW(tasks::generate_workload(wc, rng), InvalidArgument);
  wc.burst_size = 5;
  wc.burst_interval = SimDuration::zero();
  EXPECT_THROW(tasks::generate_workload(wc, rng), InvalidArgument);
}

}  // namespace
}  // namespace rtds::exp
