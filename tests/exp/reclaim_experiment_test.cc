// Integration tests for the resource-reclaiming extension through the full
// experiment harness (workload, scheduler, cluster).
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "sched/presets.h"
#include "tasks/workload.h"

namespace rtds::exp {
namespace {

ExperimentConfig tiny(bool reclaim) {
  ExperimentConfig cfg;
  cfg.num_workers = 4;
  cfg.num_transactions = 200;
  cfg.database.num_subdbs = 4;
  cfg.database.records_per_subdb = 100;
  cfg.database.domain_size = 20;
  cfg.replication_rate = 0.5;
  cfg.repetitions = 3;
  cfg.reclaim_actual_costs = reclaim;
  return cfg;
}

TEST(ReclaimExperimentTest, TheoremHoldsUnderReclaiming) {
  for (const auto& factory :
       {sched::make_rt_sads, sched::make_d_cols, sched::make_edf_best_fit}) {
    const auto algo = factory();
    const Aggregate agg = run_repeated(tiny(true), *algo);
    EXPECT_DOUBLE_EQ(agg.exec_misses.max(), 0.0) << algo->name();
  }
}

TEST(ReclaimExperimentTest, ReclaimingNeverHurtsCompliance) {
  for (const auto& factory : {sched::make_rt_sads, sched::make_d_cols}) {
    const auto algo = factory();
    const double worst = run_repeated(tiny(false), *algo).hit_ratio.mean();
    const double reclaim = run_repeated(tiny(true), *algo).hit_ratio.mean();
    // Reclaiming can shift which tasks are chosen in later phases, so allow
    // tiny regressions from scheduling noise, but the trend must be up.
    EXPECT_GE(reclaim + 0.02, worst) << algo->name();
  }
}

TEST(ReclaimExperimentTest, DeterministicWithReclaiming) {
  const auto algo = sched::make_rt_sads();
  const auto a = run_once(tiny(true), *algo, 9);
  const auto b = run_once(tiny(true), *algo, 9);
  EXPECT_EQ(a.deadline_hits, b.deadline_hits);
  EXPECT_EQ(a.finish_time, b.finish_time);
}

TEST(SyntheticReclaimWorkloadTest, ActualFractionsApplied) {
  tasks::WorkloadConfig wc;
  wc.num_tasks = 200;
  wc.num_processors = 4;
  wc.actual_fraction_min = 0.3;
  wc.actual_fraction_max = 0.7;
  Xoshiro256ss rng(1);
  for (const tasks::Task& t : tasks::generate_workload(wc, rng)) {
    EXPECT_FALSE(t.actual_processing.is_zero());
    const double frac = double(t.actual_processing.us) /
                        double(t.processing.us);
    EXPECT_GE(frac, 0.29);
    EXPECT_LE(frac, 0.71);
  }
}

TEST(SyntheticReclaimWorkloadTest, DefaultLeavesActualUnset) {
  tasks::WorkloadConfig wc;
  wc.num_tasks = 50;
  wc.num_processors = 2;
  Xoshiro256ss rng(2);
  for (const tasks::Task& t : tasks::generate_workload(wc, rng)) {
    EXPECT_TRUE(t.actual_processing.is_zero());
  }
}

TEST(SyntheticReclaimWorkloadTest, ValidatesFractionRange) {
  tasks::WorkloadConfig wc;
  wc.num_tasks = 10;
  wc.num_processors = 2;
  wc.actual_fraction_min = 0.0;
  Xoshiro256ss rng(3);
  EXPECT_THROW(tasks::generate_workload(wc, rng), InvalidArgument);
  wc.actual_fraction_min = 0.8;
  wc.actual_fraction_max = 0.5;
  EXPECT_THROW(tasks::generate_workload(wc, rng), InvalidArgument);
  wc.actual_fraction_min = 0.5;
  wc.actual_fraction_max = 1.2;
  EXPECT_THROW(tasks::generate_workload(wc, rng), InvalidArgument);
}

}  // namespace
}  // namespace rtds::exp
