#include "exp/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace rtds::exp {
namespace {

TEST(TextTableTest, RejectsEmptyHeaderAndRaggedRows) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTableTest, PrintsAlignedColumns) {
  TextTable t({"P", "hit"});
  t.add_row({"2", "0.50"});
  t.add_row({"10", "0.95"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("P"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("0.95"), std::string::npos);
  // Header line and rows share the column offset of column 2.
  std::istringstream in(out);
  std::string header, rule, row1;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row1);
  EXPECT_EQ(header.find("hit"), row1.find("0.50"));
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTableTest, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(FormattersTest, Fmt) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_pm(1.5, 0.25, 2), "1.50 ± 0.25");
  EXPECT_EQ(fmt_pct(0.734), "73.4%");
  EXPECT_EQ(fmt_pct(1.0), "100.0%");
}

}  // namespace
}  // namespace rtds::exp
