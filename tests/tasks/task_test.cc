#include "tasks/task.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::tasks {
namespace {

TEST(AffinitySetTest, EmptyByDefault) {
  AffinitySet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(0));
}

TEST(AffinitySetTest, AddRemoveContains) {
  AffinitySet s;
  s.add(3);
  s.add(10);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(10));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.count(), 2u);
  s.remove(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.count(), 1u);
  s.remove(3);  // idempotent
  EXPECT_EQ(s.count(), 1u);
}

TEST(AffinitySetTest, AllAndSingleFactories) {
  const AffinitySet all = AffinitySet::all(5);
  EXPECT_EQ(all.count(), 5u);
  for (ProcessorId p = 0; p < 5; ++p) EXPECT_TRUE(all.contains(p));
  EXPECT_FALSE(all.contains(5));

  const AffinitySet one = AffinitySet::single(7);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_TRUE(one.contains(7));

  const AffinitySet none = AffinitySet::none();
  EXPECT_TRUE(none.empty());
}

TEST(AffinitySetTest, FullWidthAll) {
  const AffinitySet all = AffinitySet::all(64);
  EXPECT_EQ(all.count(), 64u);
  EXPECT_TRUE(all.contains(63));
}

TEST(AffinitySetTest, BoundsChecked) {
  AffinitySet s;
  EXPECT_THROW(s.add(64), InvalidArgument);
  EXPECT_THROW(static_cast<void>(s.contains(64)), InvalidArgument);
  EXPECT_THROW(AffinitySet::all(65), InvalidArgument);
}

TEST(AffinitySetTest, SetOperations) {
  AffinitySet a;
  a.add(1);
  a.add(2);
  AffinitySet b;
  b.add(2);
  b.add(3);
  const AffinitySet inter = a.intersect(b);
  EXPECT_EQ(inter.count(), 1u);
  EXPECT_TRUE(inter.contains(2));
  const AffinitySet uni = a.unite(b);
  EXPECT_EQ(uni.count(), 3u);
}

TEST(AffinitySetTest, ToVectorAscending) {
  AffinitySet s;
  s.add(9);
  s.add(0);
  s.add(42);
  const auto v = s.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 9u);
  EXPECT_EQ(v[2], 42u);
}

TEST(TaskTest, CommAndExecutionCost) {
  Task t;
  t.processing = msec(4);
  t.affinity.add(1);
  const SimDuration c = msec(2);
  EXPECT_EQ(t.comm_cost(1, c), SimDuration::zero());
  EXPECT_EQ(t.comm_cost(0, c), msec(2));
  EXPECT_EQ(t.execution_cost(1, c), msec(4));
  EXPECT_EQ(t.execution_cost(0, c), msec(6));
}

TEST(TaskTest, SlackComputation) {
  Task t;
  t.processing = msec(3);
  t.deadline = SimTime::zero() + msec(10);
  EXPECT_EQ(t.slack_at(SimTime::zero()), msec(7));
  EXPECT_EQ(t.slack_at(SimTime::zero() + msec(7)), SimDuration::zero());
  EXPECT_TRUE(t.slack_at(SimTime::zero() + msec(8)).is_negative());
}

TEST(TaskTest, DeadlineUnreachable) {
  Task t;
  t.processing = msec(3);
  t.deadline = SimTime::zero() + msec(10);
  EXPECT_FALSE(t.deadline_unreachable(SimTime::zero()));
  EXPECT_FALSE(t.deadline_unreachable(SimTime::zero() + msec(7)));
  EXPECT_TRUE(t.deadline_unreachable(SimTime::zero() + msec(8)));
}

TEST(TaskTest, ToStringMentionsFields) {
  Task t;
  t.id = 12;
  t.processing = usec(77);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("T12"), std::string::npos);
  EXPECT_NE(s.find("77"), std::string::npos);
}

}  // namespace
}  // namespace rtds::tasks
