// Open-arrival sources: determinism, sortedness, burst structure, the
// sporadic rate-limit contract, and substream independence.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "tasks/arrival_source.h"

namespace rtds::tasks {
namespace {

std::vector<Task> drain(ArrivalSource& source) {
  std::vector<Task> out;
  while (source.peek().has_value()) {
    const SimTime at = *source.peek();
    Task t = source.next();
    EXPECT_EQ(t.arrival, at);  // peek's contract: next() returns that instant
    out.push_back(std::move(t));
  }
  return out;
}

StreamConfig small_config(std::uint64_t seed, std::uint32_t n = 64) {
  StreamConfig cfg;
  cfg.seed = seed;
  cfg.max_tasks = n;
  cfg.body.num_processors = 3;
  return cfg;
}

TEST(ArrivalSourceTest, PoissonStreamIsDeterministicSortedAndBounded) {
  PoissonArrivalSource a(small_config(42), usec(300));
  PoissonArrivalSource b(small_config(42), usec(300));
  const auto sa = drain(a);
  const auto sb = drain(b);
  ASSERT_EQ(sa.size(), 64u);
  ASSERT_EQ(sb.size(), 64u);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].id, sb[i].id);
    EXPECT_EQ(sa[i].arrival, sb[i].arrival);
    EXPECT_EQ(sa[i].processing, sb[i].processing);
    EXPECT_EQ(sa[i].deadline, sb[i].deadline);
    EXPECT_EQ(sa[i].id, TaskId(i));  // sequential from body.first_id
    if (i > 0) {
      EXPECT_GE(sa[i].arrival, sa[i - 1].arrival);
    }
  }
  // Exhausted for good.
  EXPECT_FALSE(a.peek().has_value());
}

TEST(ArrivalSourceTest, DifferentSeedsGiveDifferentStreams) {
  PoissonArrivalSource a(small_config(1), usec(300));
  PoissonArrivalSource b(small_config(2), usec(300));
  const auto sa = drain(a);
  const auto sb = drain(b);
  bool any_diff = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    any_diff = any_diff || sa[i].arrival != sb[i].arrival ||
               !(sa[i].processing == sb[i].processing);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ArrivalSourceTest, BodySubstreamIsIndependentOfArrivalProcess) {
  // Same seed, different arrival process: the task bodies (drawn off the
  // dedicated "stream.body" substream) must be identical draw-for-draw.
  PoissonArrivalSource poisson(small_config(7), usec(300));
  SporadicArrivalSource sporadic(small_config(7), usec(100), usec(250));
  const auto sp = drain(poisson);
  const auto ss = drain(sporadic);
  ASSERT_EQ(sp.size(), ss.size());
  bool arrivals_differ = false;
  for (std::size_t i = 0; i < sp.size(); ++i) {
    EXPECT_EQ(sp[i].processing, ss[i].processing);
    EXPECT_EQ(sp[i].affinity, ss[i].affinity);
    arrivals_differ = arrivals_differ || sp[i].arrival != ss[i].arrival;
  }
  EXPECT_TRUE(arrivals_differ);
}

TEST(ArrivalSourceTest, OnOffEmitsBurstsSeparatedBySilences) {
  StreamConfig cfg = small_config(3, 12);
  OnOffArrivalSource source(cfg, usec(100), 4, msec(5));
  const auto stream = drain(source);
  ASSERT_EQ(stream.size(), 12u);
  // Burst k starts one off_gap after the previous arrival; within a burst
  // the spacing is exactly on_gap. Gap pattern: off, on, on, on, off, ...
  for (std::size_t i = 1; i < stream.size(); ++i) {
    const SimDuration gap = stream[i].arrival - stream[i - 1].arrival;
    if (i % 4 == 0) {
      EXPECT_EQ(gap, msec(5)) << "task " << i;
    } else {
      EXPECT_EQ(gap, usec(100)) << "task " << i;
    }
  }
  EXPECT_EQ(stream[0].arrival, cfg.start + msec(5));
}

TEST(ArrivalSourceTest, SporadicEnforcesMinimumInterArrival) {
  SporadicArrivalSource source(small_config(9, 200), usec(150), usec(400));
  const auto stream = drain(source);
  ASSERT_EQ(stream.size(), 200u);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GE(stream[i].arrival - stream[i - 1].arrival, usec(150));
  }
}

TEST(ArrivalSourceTest, PeriodicWithoutJitterIsAnExactReleaseTrain) {
  PeriodicArrivalSource a(small_config(5, 32), msec(2));
  PeriodicArrivalSource b(small_config(5, 32), msec(2));
  const auto sa = drain(a);
  const auto sb = drain(b);
  ASSERT_EQ(sa.size(), 32u);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].arrival, sb[i].arrival);
    // Release k lands exactly at start + (k+1) * period.
    EXPECT_EQ(sa[i].arrival, SimTime::zero() + msec(2) * std::int64_t(i + 1));
  }
}

TEST(ArrivalSourceTest, PeriodicJitterStaysWithinOnePeriodOfNominal) {
  // With jitter J ~ U[0, j], release k arrives at k*period + J_k, so gaps
  // vary but each arrival stays within [k*period, k*period + j] and the
  // stream never goes backwards (J <= period by the constructor contract).
  PeriodicArrivalSource source(small_config(6, 128), msec(2), msec(1));
  const auto stream = drain(source);
  ASSERT_EQ(stream.size(), 128u);
  bool any_jitter = false;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const SimTime nominal = SimTime::zero() + msec(2) * std::int64_t(i + 1);
    EXPECT_GE(stream[i].arrival, nominal);
    EXPECT_LE(stream[i].arrival, nominal + msec(1));
    if (i > 0) EXPECT_GE(stream[i].arrival, stream[i - 1].arrival);
    any_jitter = any_jitter || stream[i].arrival != nominal;
  }
  EXPECT_TRUE(any_jitter);
}

TEST(ArrivalSourceTest, PeriodicValidatesPeriodAndJitter) {
  const StreamConfig cfg = small_config(1);
  EXPECT_THROW(PeriodicArrivalSource(cfg, SimDuration::zero()),
               InvalidArgument);
  EXPECT_THROW(PeriodicArrivalSource(cfg, msec(1), usec(-1)),
               InvalidArgument);
  // Jitter beyond the period could reorder releases: rejected up front.
  EXPECT_THROW(PeriodicArrivalSource(cfg, msec(1), msec(2)),
               InvalidArgument);
}

TEST(ArrivalSourceTest, VectorSourceDrainsInOrderAndRejectsUnsorted) {
  Task early;
  early.id = 0;
  early.arrival = SimTime{100};
  Task late;
  late.id = 1;
  late.arrival = SimTime{200};
  VectorArrivalSource ok({early, late});
  const auto stream = drain(ok);
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].id, 0u);
  EXPECT_EQ(stream[1].id, 1u);
  EXPECT_THROW(VectorArrivalSource({late, early}), InvalidArgument);
}

TEST(ArrivalSourceTest, ConstructorsValidateParameters) {
  const StreamConfig cfg = small_config(1);
  EXPECT_THROW(PoissonArrivalSource(cfg, SimDuration::zero()),
               InvalidArgument);
  EXPECT_THROW(OnOffArrivalSource(cfg, usec(100), 0, msec(1)),
               InvalidArgument);
  EXPECT_THROW(OnOffArrivalSource(cfg, usec(100), 4, SimDuration::zero()),
               InvalidArgument);
  EXPECT_THROW(SporadicArrivalSource(cfg, SimDuration::zero(), usec(100)),
               InvalidArgument);
  // Invalid task-body distribution is rejected at construction, not at the
  // first draw.
  StreamConfig bad = cfg;
  bad.body.processing_min = msec(10);
  bad.body.processing_max = msec(1);
  EXPECT_THROW(PoissonArrivalSource(bad, usec(300)), InvalidArgument);
}

}  // namespace
}  // namespace rtds::tasks
