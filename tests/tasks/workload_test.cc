#include "tasks/workload.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::tasks {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.num_tasks = 200;
  cfg.num_processors = 8;
  cfg.processing_min = msec(1);
  cfg.processing_max = msec(10);
  cfg.affinity_degree = 0.3;
  cfg.laxity_min = 5.0;
  cfg.laxity_max = 10.0;
  return cfg;
}

TEST(WorkloadTest, GeneratesRequestedCount) {
  Xoshiro256ss rng(1);
  const auto tasks = generate_workload(base_config(), rng);
  EXPECT_EQ(tasks.size(), 200u);
}

TEST(WorkloadTest, SequentialIdsFromFirstId) {
  WorkloadConfig cfg = base_config();
  cfg.first_id = 1000;
  Xoshiro256ss rng(1);
  const auto tasks = generate_workload(cfg, rng);
  // Bursty arrivals: stable sort preserves generation order.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].id, 1000 + i);
  }
}

TEST(WorkloadTest, BurstyArrivalsAllAtStart) {
  WorkloadConfig cfg = base_config();
  cfg.start = SimTime{500};
  Xoshiro256ss rng(2);
  for (const Task& t : generate_workload(cfg, rng)) {
    EXPECT_EQ(t.arrival, SimTime{500});
  }
}

TEST(WorkloadTest, PoissonArrivalsSortedAndIncreasing) {
  WorkloadConfig cfg = base_config();
  cfg.arrival = ArrivalPattern::kPoisson;
  cfg.mean_interarrival = msec(2);
  Xoshiro256ss rng(3);
  const auto tasks = generate_workload(cfg, rng);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_LE(tasks[i - 1].arrival, tasks[i].arrival);
  }
  EXPECT_GT(tasks.back().arrival, cfg.start);
}

TEST(WorkloadTest, PoissonMeanGapRoughlyMatches) {
  WorkloadConfig cfg = base_config();
  cfg.num_tasks = 5000;
  cfg.arrival = ArrivalPattern::kPoisson;
  cfg.mean_interarrival = msec(2);
  Xoshiro256ss rng(4);
  const auto tasks = generate_workload(cfg, rng);
  const double total_us = double((tasks.back().arrival - cfg.start).us);
  EXPECT_NEAR(total_us / double(cfg.num_tasks), 2000.0, 200.0);
}

TEST(WorkloadTest, ProcessingTimesWithinBounds) {
  Xoshiro256ss rng(5);
  for (const Task& t : generate_workload(base_config(), rng)) {
    EXPECT_GE(t.processing, msec(1));
    EXPECT_LE(t.processing, msec(10));
  }
}

TEST(WorkloadTest, EveryTaskHasAtLeastOneAffineProcessor) {
  WorkloadConfig cfg = base_config();
  cfg.affinity_degree = 0.0;  // forces the fallback path
  Xoshiro256ss rng(6);
  for (const Task& t : generate_workload(cfg, rng)) {
    EXPECT_EQ(t.affinity.count(), 1u);
  }
}

TEST(WorkloadTest, FullAffinityDegreeCoversAllProcessors) {
  WorkloadConfig cfg = base_config();
  cfg.affinity_degree = 1.0;
  Xoshiro256ss rng(7);
  for (const Task& t : generate_workload(cfg, rng)) {
    EXPECT_EQ(t.affinity.count(), cfg.num_processors);
  }
}

TEST(WorkloadTest, AffinityDegreeMatchesProbability) {
  WorkloadConfig cfg = base_config();
  cfg.num_tasks = 5000;
  cfg.affinity_degree = 0.4;
  Xoshiro256ss rng(8);
  const auto tasks = generate_workload(cfg, rng);
  double total = 0;
  for (const Task& t : tasks) total += t.affinity.count();
  const double mean_degree =
      total / double(tasks.size()) / double(cfg.num_processors);
  // The at-least-one fallback biases slightly upward; allow for it.
  EXPECT_NEAR(mean_degree, 0.4, 0.03);
}

TEST(WorkloadTest, DeadlinesRespectLaxityRange) {
  Xoshiro256ss rng(9);
  for (const Task& t : generate_workload(base_config(), rng)) {
    const double window = double((t.deadline - t.arrival).us);
    const double p = double(t.processing.us);
    EXPECT_GE(window, 5.0 * p - 1.0);
    EXPECT_LE(window, 10.0 * p + 1.0);
  }
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  Xoshiro256ss rng1(10), rng2(10);
  const auto a = generate_workload(base_config(), rng1);
  const auto b = generate_workload(base_config(), rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].processing, b[i].processing);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].affinity.raw(), b[i].affinity.raw());
  }
}

TEST(WorkloadTest, ValidatesConfig) {
  Xoshiro256ss rng(11);
  WorkloadConfig cfg = base_config();
  cfg.num_processors = 0;
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.processing_min = msec(10);
  cfg.processing_max = msec(1);
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.affinity_degree = 1.5;
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.laxity_min = 0.0;
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
}

TEST(ArrivalsInWindowTest, SelectsHalfOpenRange) {
  WorkloadConfig cfg = base_config();
  cfg.arrival = ArrivalPattern::kPoisson;
  cfg.mean_interarrival = msec(1);
  Xoshiro256ss rng(12);
  const auto tasks = generate_workload(cfg, rng);
  const SimTime mid = tasks[100].arrival;
  const auto window = arrivals_in_window(tasks, SimTime::zero(), mid);
  for (const Task& t : window) {
    EXPECT_LT(t.arrival, mid);
  }
  const auto rest = arrivals_in_window(tasks, mid, SimTime::max());
  EXPECT_EQ(window.size() + rest.size(), tasks.size());
}

}  // namespace
}  // namespace rtds::tasks
