#include "tasks/workload.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::tasks {
namespace {

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.num_tasks = 200;
  cfg.num_processors = 8;
  cfg.processing_min = msec(1);
  cfg.processing_max = msec(10);
  cfg.affinity_degree = 0.3;
  cfg.laxity_min = 5.0;
  cfg.laxity_max = 10.0;
  return cfg;
}

TEST(WorkloadTest, GeneratesRequestedCount) {
  Xoshiro256ss rng(1);
  const auto tasks = generate_workload(base_config(), rng);
  EXPECT_EQ(tasks.size(), 200u);
}

TEST(WorkloadTest, SequentialIdsFromFirstId) {
  WorkloadConfig cfg = base_config();
  cfg.first_id = 1000;
  Xoshiro256ss rng(1);
  const auto tasks = generate_workload(cfg, rng);
  // Bursty arrivals: stable sort preserves generation order.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].id, 1000 + i);
  }
}

TEST(WorkloadTest, BurstyArrivalsAllAtStart) {
  WorkloadConfig cfg = base_config();
  cfg.start = SimTime{500};
  Xoshiro256ss rng(2);
  for (const Task& t : generate_workload(cfg, rng)) {
    EXPECT_EQ(t.arrival, SimTime{500});
  }
}

TEST(WorkloadTest, PoissonArrivalsSortedAndIncreasing) {
  WorkloadConfig cfg = base_config();
  cfg.arrival = ArrivalPattern::kPoisson;
  cfg.mean_interarrival = msec(2);
  Xoshiro256ss rng(3);
  const auto tasks = generate_workload(cfg, rng);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    EXPECT_LE(tasks[i - 1].arrival, tasks[i].arrival);
  }
  EXPECT_GT(tasks.back().arrival, cfg.start);
}

TEST(WorkloadTest, PoissonMeanGapRoughlyMatches) {
  WorkloadConfig cfg = base_config();
  cfg.num_tasks = 5000;
  cfg.arrival = ArrivalPattern::kPoisson;
  cfg.mean_interarrival = msec(2);
  Xoshiro256ss rng(4);
  const auto tasks = generate_workload(cfg, rng);
  const double total_us = double((tasks.back().arrival - cfg.start).us);
  EXPECT_NEAR(total_us / double(cfg.num_tasks), 2000.0, 200.0);
}

TEST(WorkloadTest, ProcessingTimesWithinBounds) {
  Xoshiro256ss rng(5);
  for (const Task& t : generate_workload(base_config(), rng)) {
    EXPECT_GE(t.processing, msec(1));
    EXPECT_LE(t.processing, msec(10));
  }
}

TEST(WorkloadTest, EveryTaskHasAtLeastOneAffineProcessor) {
  WorkloadConfig cfg = base_config();
  cfg.affinity_degree = 0.0;  // forces the fallback path
  Xoshiro256ss rng(6);
  for (const Task& t : generate_workload(cfg, rng)) {
    EXPECT_EQ(t.affinity.count(), 1u);
  }
}

TEST(WorkloadTest, FullAffinityDegreeCoversAllProcessors) {
  WorkloadConfig cfg = base_config();
  cfg.affinity_degree = 1.0;
  Xoshiro256ss rng(7);
  for (const Task& t : generate_workload(cfg, rng)) {
    EXPECT_EQ(t.affinity.count(), cfg.num_processors);
  }
}

TEST(WorkloadTest, AffinityDegreeMatchesProbability) {
  WorkloadConfig cfg = base_config();
  cfg.num_tasks = 5000;
  cfg.affinity_degree = 0.4;
  Xoshiro256ss rng(8);
  const auto tasks = generate_workload(cfg, rng);
  double total = 0;
  for (const Task& t : tasks) total += t.affinity.count();
  const double mean_degree =
      total / double(tasks.size()) / double(cfg.num_processors);
  // The at-least-one fallback biases slightly upward; allow for it.
  EXPECT_NEAR(mean_degree, 0.4, 0.03);
}

TEST(WorkloadTest, DeadlinesRespectLaxityRange) {
  Xoshiro256ss rng(9);
  for (const Task& t : generate_workload(base_config(), rng)) {
    const double window = double((t.deadline - t.arrival).us);
    const double p = double(t.processing.us);
    EXPECT_GE(window, 5.0 * p - 1.0);
    EXPECT_LE(window, 10.0 * p + 1.0);
  }
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  Xoshiro256ss rng1(10), rng2(10);
  const auto a = generate_workload(base_config(), rng1);
  const auto b = generate_workload(base_config(), rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].processing, b[i].processing);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].affinity.raw(), b[i].affinity.raw());
  }
}

TEST(WorkloadTest, ValidatesConfig) {
  Xoshiro256ss rng(11);
  WorkloadConfig cfg = base_config();
  cfg.num_processors = 0;
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.processing_min = msec(10);
  cfg.processing_max = msec(1);
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.affinity_degree = 1.5;
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.laxity_min = 0.0;
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
}

TEST(WorkloadTest, GangFractionDrawsBoundedWidths) {
  WorkloadConfig cfg = base_config();
  cfg.num_processors = 4;
  cfg.gang_fraction = 0.6;
  cfg.gang_max_workers = 3;
  Xoshiro256ss rng(20);
  const auto wl = generate_workload(cfg, rng);
  std::uint32_t gangs = 0;
  for (const Task& t : wl) {
    EXPECT_GE(t.workers_required, 1u);
    EXPECT_LE(t.workers_required, 3u);
    EXPECT_NE(t.workers_required, 0u);
    if (t.workers_required > 1) ++gangs;
  }
  // 0.6 of 200 tasks: overwhelmingly unlikely to see none (or all).
  EXPECT_GT(gangs, 0u);
  EXPECT_LT(gangs, wl.size());
}

TEST(WorkloadTest, GangWidthClampedToMachine) {
  WorkloadConfig cfg = base_config();
  cfg.num_processors = 2;
  cfg.gang_fraction = 1.0;
  cfg.gang_max_workers = 2;
  Xoshiro256ss rng(21);
  const auto wl = generate_workload(cfg, rng);
  for (const Task& t : wl) EXPECT_EQ(t.workers_required, 2u);
}

TEST(WorkloadTest, PeriodicReleasesReplicateBodiesWithShiftedWindows) {
  WorkloadConfig cfg = base_config();
  cfg.num_tasks = 30;
  cfg.num_releases = 3;
  cfg.release_period = msec(5);
  cfg.first_id = 100;
  Xoshiro256ss rng(22);
  const auto wl = generate_workload(cfg, rng);
  ASSERT_EQ(wl.size(), 90u);
  // Regenerate the one-shot bodies from the same seed: release r of logical
  // task i must be that body with id +r and its whole window shifted by
  // r * period.
  WorkloadConfig one_shot = cfg;
  one_shot.num_releases = 1;
  one_shot.release_period = SimDuration::zero();
  Xoshiro256ss rng2(22);
  const auto bodies = generate_workload(one_shot, rng2);
  ASSERT_EQ(bodies.size(), 30u);
  std::uint32_t matched = 0;
  for (const Task& t : wl) {
    const std::uint32_t logical =
        static_cast<std::uint32_t>((t.id - cfg.first_id) / cfg.num_releases);
    const std::uint32_t release =
        static_cast<std::uint32_t>((t.id - cfg.first_id) % cfg.num_releases);
    ASSERT_LT(logical, bodies.size());
    // One-shot ids are first_id + i; the replicated scheme strides them.
    const Task& body = bodies[logical];
    const SimDuration shift = cfg.release_period * std::int64_t(release);
    EXPECT_EQ(t.processing, body.processing);
    EXPECT_EQ(t.affinity.raw(), body.affinity.raw());
    EXPECT_EQ(t.arrival, body.arrival + shift);
    EXPECT_EQ(t.deadline, body.deadline + shift);
    EXPECT_EQ(t.earliest_start, body.earliest_start + shift);
    ++matched;
  }
  EXPECT_EQ(matched, 90u);
  // Still sorted by arrival.
  for (std::size_t i = 1; i < wl.size(); ++i) {
    EXPECT_GE(wl[i].arrival, wl[i - 1].arrival);
  }
}

TEST(WorkloadTest, ValidatesGangAndReleaseConfig) {
  Xoshiro256ss rng(23);
  WorkloadConfig cfg = base_config();
  cfg.gang_fraction = 1.5;
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.gang_fraction = 0.5;
  cfg.gang_max_workers = 1;  // a "gang" of one is a contradiction
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.gang_fraction = 0.5;
  cfg.gang_max_workers = cfg.num_processors + 1;  // wider than the machine
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.num_releases = 0;
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
  cfg = base_config();
  cfg.num_releases = 2;  // replication needs a positive period
  EXPECT_THROW(generate_workload(cfg, rng), InvalidArgument);
}

TEST(ArrivalsInWindowTest, SelectsHalfOpenRange) {
  WorkloadConfig cfg = base_config();
  cfg.arrival = ArrivalPattern::kPoisson;
  cfg.mean_interarrival = msec(1);
  Xoshiro256ss rng(12);
  const auto tasks = generate_workload(cfg, rng);
  const SimTime mid = tasks[100].arrival;
  const auto window = arrivals_in_window(tasks, SimTime::zero(), mid);
  for (const Task& t : window) {
    EXPECT_LT(t.arrival, mid);
  }
  const auto rest = arrivals_in_window(tasks, mid, SimTime::max());
  EXPECT_EQ(window.size() + rest.size(), tasks.size());
}

}  // namespace
}  // namespace rtds::tasks
