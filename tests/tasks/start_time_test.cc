// Tests of the start-time-constraint task model (footnote 1 of the paper).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "machine/cluster.h"
#include "machine/validator.h"
#include "search/engine.h"
#include "sched/driver.h"
#include "sched/presets.h"
#include "sim/simulator.h"
#include "tasks/workload.h"

namespace rtds::tasks {
namespace {

TEST(StartTimeTaskTest, SlackAndReachabilityUseEffectiveStart) {
  Task t;
  t.processing = msec(3);
  t.deadline = SimTime::zero() + msec(10);
  t.earliest_start = SimTime::zero() + msec(5);
  // Before the constraint, slack is measured from the constraint.
  EXPECT_EQ(t.slack_at(SimTime::zero()), msec(2));
  EXPECT_EQ(t.slack_at(SimTime::zero() + msec(6)), msec(1));
  EXPECT_FALSE(t.deadline_unreachable(SimTime::zero()));
  // At t=8ms: start at 8, 8+3 > 10 -> unreachable.
  EXPECT_TRUE(t.deadline_unreachable(SimTime::zero() + msec(8)));
}

TEST(StartTimeSearchTest, FeasibilityAccountsForIdleGap) {
  // Worker idle at delivery, but the task may not start until 8ms; with
  // deadline 10ms and p=3ms the assignment is infeasible even though the
  // queue is empty.
  std::vector<Task> batch(1);
  batch[0].id = 0;
  batch[0].processing = msec(3);
  batch[0].deadline = SimTime::zero() + msec(10);
  batch[0].earliest_start = SimTime::zero() + msec(8);
  batch[0].affinity.add(0);
  const auto net = machine::Interconnect::cut_through(1, SimDuration::zero());
  search::PartialSchedule ps(&batch, {SimDuration::zero()},
                             SimTime::zero() + msec(1), &net);
  EXPECT_FALSE(ps.evaluate(0, 0).has_value());

  // Relax the constraint to 7ms: 7 + 3 = 10 <= 10, feasible, and the
  // start/end offsets reflect the idle gap from the 1ms delivery. Task
  // parameters are snapshotted when the PartialSchedule is built (the
  // search hot path precomputes per-task constants), so evaluate through a
  // fresh schedule.
  batch[0].earliest_start = SimTime::zero() + msec(7);
  search::PartialSchedule relaxed(&batch, {SimDuration::zero()},
                                  SimTime::zero() + msec(1), &net);
  const auto a = relaxed.evaluate(0, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->start_offset, msec(6));  // idles 6ms past delivery
  EXPECT_EQ(a->end_offset, msec(9));
}

TEST(StartTimeSearchTest, PushPopRestoreAcrossIdleGaps) {
  // The undo value must restore the pre-gap queue offset exactly.
  std::vector<Task> batch(2);
  for (std::uint32_t i = 0; i < 2; ++i) {
    batch[i].id = i;
    batch[i].processing = msec(2);
    batch[i].deadline = SimTime::zero() + msec(50);
    batch[i].affinity.add(0);
  }
  batch[0].earliest_start = SimTime::zero() + msec(10);
  const auto net = machine::Interconnect::cut_through(1, SimDuration::zero());
  search::PartialSchedule ps(&batch, {msec(1)}, SimTime::zero() + msec(1),
                             &net);
  const auto a = ps.evaluate(0, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->start_offset, msec(9));  // gap: queue had only 1ms
  ps.push(*a);
  EXPECT_EQ(ps.ce(0), msec(11));
  ps.pop();
  EXPECT_EQ(ps.ce(0), msec(1));  // not 11 - 2
}

TEST(StartTimeClusterTest, WorkerIdlesUntilConstraint) {
  machine::Cluster cl(1,
                      machine::Interconnect::cut_through(1, SimDuration::zero()));
  Task t;
  t.id = 1;
  t.processing = msec(2);
  t.deadline = SimTime::zero() + msec(50);
  t.earliest_start = SimTime::zero() + msec(10);
  t.affinity.add(0);
  cl.deliver({{t, 0}}, SimTime::zero() + msec(1));
  ASSERT_EQ(cl.log().size(), 1u);
  EXPECT_EQ(cl.log()[0].start, SimTime::zero() + msec(10));
  EXPECT_EQ(cl.log()[0].end, SimTime::zero() + msec(12));
  // Busy time excludes the idle gap.
  EXPECT_EQ(cl.busy_time(0), msec(2));
}

TEST(StartTimeEndToEndTest, TheoremAndValidatorHoldWithConstraints) {
  for (const auto& factory : {sched::make_rt_sads, sched::make_d_cols}) {
    const auto algo = factory();
    machine::Cluster cluster(4,
                             machine::Interconnect::cut_through(4, msec(2)));
    sim::Simulator sim;
    const auto quantum = sched::make_self_adjusting_quantum(usec(100),
                                                            msec(10));
    WorkloadConfig wc;
    wc.num_tasks = 200;
    wc.num_processors = 4;
    wc.max_start_offset = msec(20);
    wc.laxity_min = 3.0;
    wc.laxity_max = 10.0;
    Xoshiro256ss rng(5);
    const auto wl = generate_workload(wc, rng);
    // The generator must actually emit constraints.
    bool any_constrained = false;
    for (const Task& t : wl) {
      if (t.earliest_start > t.arrival) any_constrained = true;
    }
    ASSERT_TRUE(any_constrained);

    const sched::PhaseScheduler scheduler(*algo, *quantum);
    const sched::RunMetrics m = scheduler.run(wl, cluster, sim);
    EXPECT_EQ(m.exec_misses, 0u) << algo->name();
    const machine::ValidationReport vr =
        machine::validate_execution(cluster, wl);
    EXPECT_TRUE(vr.ok()) << algo->name() << ":\n" << vr.to_string();
    EXPECT_GT(m.deadline_hits, 0u);
  }
}

TEST(StartTimeWorkloadTest, OffsetsWithinRangeAndDeadlinesAfterStart) {
  WorkloadConfig wc;
  wc.num_tasks = 300;
  wc.num_processors = 4;
  wc.max_start_offset = msec(15);
  Xoshiro256ss rng(6);
  for (const Task& t : generate_workload(wc, rng)) {
    EXPECT_GE(t.earliest_start, t.arrival);
    EXPECT_LE(t.earliest_start - t.arrival, msec(15));
    EXPECT_GT(t.deadline, t.earliest_start);
  }
}

}  // namespace
}  // namespace rtds::tasks
