#include "tasks/batch.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::tasks {
namespace {

Task make_task(TaskId id, SimDuration p, SimTime d) {
  Task t;
  t.id = id;
  t.processing = p;
  t.deadline = d;
  t.affinity.add(0);
  return t;
}

TEST(BatchTest, StartsEmpty) {
  Batch b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_THROW(static_cast<void>(b.min_slack(SimTime::zero())), InvalidArgument);
}

TEST(BatchTest, MergePreservesOrder) {
  Batch b;
  b.merge_arrivals({make_task(1, msec(1), SimTime{100000}),
                    make_task(2, msec(1), SimTime{100000})});
  b.merge_arrivals({make_task(3, msec(1), SimTime{100000})});
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.tasks()[0].id, 1u);
  EXPECT_EQ(b.tasks()[1].id, 2u);
  EXPECT_EQ(b.tasks()[2].id, 3u);
}

TEST(BatchTest, MergeSkipsDuplicateIdsInsteadOfAborting) {
  // A readmitted task racing a same-id arrival must not crash the host:
  // the duplicate is skipped and the pending copy wins.
  Batch b;
  EXPECT_EQ(b.merge_arrivals({make_task(1, msec(1), SimTime{100000})}), 1u);
  EXPECT_EQ(b.merge_arrivals({make_task(1, msec(9), SimTime{100000})}), 0u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.tasks()[0].processing, msec(1));  // first copy kept
}

TEST(BatchTest, ReadmitInsertsOnlyWhenAbsent) {
  Batch b;
  const Task t = make_task(5, msec(2), SimTime{100000});
  EXPECT_TRUE(b.readmit(t));    // not pending: inserted
  EXPECT_FALSE(b.readmit(t));   // already pending: no-op
  EXPECT_EQ(b.size(), 1u);
  b.remove_scheduled({5});
  EXPECT_TRUE(b.readmit(t));    // removed, so readmission re-inserts
  EXPECT_EQ(b.size(), 1u);
}

TEST(BatchTest, ReadmittedTaskKeepsBatchOrder) {
  Batch b;
  b.merge_arrivals({make_task(1, msec(1), SimTime{100000}),
                    make_task(2, msec(1), SimTime{100000})});
  b.remove_scheduled({1});
  EXPECT_TRUE(b.readmit(make_task(1, msec(1), SimTime{100000})));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.tasks()[0].id, 2u);  // readmission appends
  EXPECT_EQ(b.tasks()[1].id, 1u);
}

TEST(BatchTest, RemoveScheduledDropsOnlyListed) {
  Batch b;
  b.merge_arrivals({make_task(1, msec(1), SimTime{100000}),
                    make_task(2, msec(1), SimTime{100000}),
                    make_task(3, msec(1), SimTime{100000})});
  b.remove_scheduled({1, 3});
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.tasks()[0].id, 2u);
  // Unknown ids are ignored.
  b.remove_scheduled({42});
  EXPECT_EQ(b.size(), 1u);
}

TEST(BatchTest, RemoveScheduledUnregistersExactlyTheRemovedIds) {
  // Regression: the id index used to be updated from the remove_if tail
  // range, which holds shifted copies of the KEPT elements — so removing
  // {1,3} from [1,2,3] unregistered 2 and 3 and left a ghost id 1 that
  // blocked readmission forever.
  Batch b;
  b.merge_arrivals({make_task(1, msec(1), SimTime{100000}),
                    make_task(2, msec(1), SimTime{100000}),
                    make_task(3, msec(1), SimTime{100000})});
  b.remove_scheduled({1, 3});
  EXPECT_FALSE(b.readmit(make_task(2, msec(1), SimTime{100000})));  // pending
  EXPECT_TRUE(b.readmit(make_task(1, msec(1), SimTime{100000})));
  EXPECT_TRUE(b.readmit(make_task(3, msec(1), SimTime{100000})));
  EXPECT_EQ(b.size(), 3u);
}

TEST(BatchTest, RemovedIdsCanReappearAsNewTasks) {
  // After a task leaves the batch its id is free again (the driver never
  // reuses ids, but the container must not keep ghosts).
  Batch b;
  b.merge_arrivals({make_task(1, msec(1), SimTime{100000})});
  b.remove_scheduled({1});
  EXPECT_TRUE(b.empty());
  b.merge_arrivals({make_task(1, msec(2), SimTime{100000})});
  EXPECT_EQ(b.size(), 1u);
}

TEST(BatchTest, CullMissedRemovesUnreachable) {
  Batch b;
  // Task 1 reachable at t=0; task 2 unreachable (p=5ms, d=2ms).
  b.merge_arrivals({make_task(1, msec(1), SimTime::zero() + msec(10)),
                    make_task(2, msec(5), SimTime::zero() + msec(2))});
  const auto culled = b.cull_missed(SimTime::zero());
  ASSERT_EQ(culled.size(), 1u);
  EXPECT_EQ(culled[0].id, 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.tasks()[0].id, 1u);
}

TEST(BatchTest, CullMissedIsTimeSensitive) {
  Batch b;
  b.merge_arrivals({make_task(1, msec(2), SimTime::zero() + msec(10))});
  EXPECT_TRUE(b.cull_missed(SimTime::zero() + msec(8)).empty());
  EXPECT_EQ(b.cull_missed(SimTime::zero() + msec(9)).size(), 1u);
  EXPECT_TRUE(b.empty());
}

TEST(BatchTest, CulledTaskIdIsReleased) {
  Batch b;
  b.merge_arrivals({make_task(7, msec(5), SimTime::zero() + msec(1))});
  EXPECT_EQ(b.cull_missed(SimTime::zero()).size(), 1u);
  b.merge_arrivals({make_task(7, msec(1), SimTime::zero() + msec(100))});
  EXPECT_EQ(b.size(), 1u);
}

TEST(BatchTest, MinSlackFindsTightestTask) {
  Batch b;
  b.merge_arrivals({make_task(1, msec(2), SimTime::zero() + msec(20)),
                    make_task(2, msec(5), SimTime::zero() + msec(9)),
                    make_task(3, msec(1), SimTime::zero() + msec(30))});
  // Slacks at t=0: 18ms, 4ms, 29ms.
  EXPECT_EQ(b.min_slack(SimTime::zero()), msec(4));
  // At t = 2ms: 16, 2, 27.
  EXPECT_EQ(b.min_slack(SimTime::zero() + msec(2)), msec(2));
}

TEST(BatchTest, TotalProcessingSums) {
  Batch b;
  b.merge_arrivals({make_task(1, msec(2), SimTime{1000000}),
                    make_task(2, msec(3), SimTime{1000000})});
  EXPECT_EQ(b.total_processing(), msec(5));
}

TEST(BatchTest, ClearEmptiesEverything) {
  Batch b;
  b.merge_arrivals({make_task(1, msec(2), SimTime{1000000})});
  b.clear();
  EXPECT_TRUE(b.empty());
}

TEST(BatchTest, ReadmitAfterPartialDelivery) {
  // A phase schedules {1,2,3}, the backend accepts only {1,3}: the pipeline
  // removes all three as scheduled, then readmits the refused task 2. The
  // batch must end with exactly the refused task pending, once.
  Batch b;
  const Task t1 = make_task(1, msec(1), SimTime{1000000});
  const Task t2 = make_task(2, msec(2), SimTime{1000000});
  const Task t3 = make_task(3, msec(3), SimTime{1000000});
  b.merge_arrivals({t1, t2, t3});
  b.remove_scheduled({1, 2, 3});
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.readmit(t2));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.tasks()[0].id, 2u);
  // A second refusal of the same task in a later phase is a no-op while the
  // first readmission is still pending.
  EXPECT_FALSE(b.readmit(t2));
  EXPECT_EQ(b.size(), 1u);
}

TEST(BatchTest, ReadmittedTaskMergesWithDuplicateIdArrival) {
  // The readmitted copy is already pending when an arrival with the same id
  // shows up: the merge must skip the duplicate (pending copy wins) and
  // report 1 merged task, and the id index must stay consistent — after the
  // pending copy is scheduled away, the id is admissible again.
  Batch b;
  const Task refused = make_task(7, msec(2), SimTime{1000000});
  EXPECT_TRUE(b.readmit(refused));
  const Task same_id = make_task(7, msec(9), SimTime{2000000});
  const Task fresh = make_task(8, msec(1), SimTime{2000000});
  EXPECT_EQ(b.merge_arrivals({same_id, fresh}), 1u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.tasks()[0].id, 7u);
  EXPECT_EQ(b.tasks()[0].processing, msec(2));  // the readmitted copy won
  b.remove_scheduled({7});
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.readmit(refused));
  EXPECT_EQ(b.size(), 2u);
}

TEST(BatchTest, RemoveScheduledReadmitInterleaving) {
  // Several rounds of schedule-everything / readmit-the-refused must keep
  // the task set and the duplicate-detection index in lockstep.
  Batch b;
  std::vector<Task> all;
  for (TaskId id = 0; id < 6; ++id) {
    all.push_back(make_task(id, msec(1 + std::int64_t(id)), SimTime{5000000}));
  }
  b.merge_arrivals(all);
  for (int round = 0; round < 4; ++round) {
    // Schedule the whole batch...
    std::unordered_set<TaskId> scheduled;
    for (const Task& t : b.tasks()) scheduled.insert(t.id);
    b.remove_scheduled(scheduled);
    EXPECT_TRUE(b.empty());
    // ...and readmit every other task, as a partial refusal would.
    std::size_t readmitted = 0;
    for (const Task& t : all) {
      if ((t.id + std::uint64_t(round)) % 2 == 0 && scheduled.count(t.id)) {
        EXPECT_TRUE(b.readmit(t));
        ++readmitted;
      }
    }
    EXPECT_EQ(b.size(), readmitted);
    all.assign(b.tasks().begin(), b.tasks().end());
  }
}

TEST(BatchTest, RemoveScheduledIgnoresAbsentIds) {
  Batch b;
  b.merge_arrivals({make_task(1, msec(1), SimTime{1000000})});
  b.remove_scheduled({1, 99});  // 99 was culled elsewhere: ignored
  EXPECT_TRUE(b.empty());
  // And the absent id did not poison the index.
  EXPECT_TRUE(b.readmit(make_task(99, msec(1), SimTime{1000000})));
}

}  // namespace
}  // namespace rtds::tasks
