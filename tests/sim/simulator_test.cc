#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace rtds::sim {
namespace {

TEST(SimulatorTest, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(SimulatorTest, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime{30}, [&] { fired.push_back(3); });
  sim.schedule_at(SimTime{10}, [&] { fired.push_back(1); });
  sim.schedule_at(SimTime{20}, [&] { fired.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime{30});
}

TEST(SimulatorTest, EqualTimestampsFireFifo) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime{5}, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[std::size_t(i)], i);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime observed = SimTime::zero();
  sim.schedule_at(SimTime{100}, [&] {
    sim.schedule_after(usec(50), [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, SimTime{150});
}

TEST(SimulatorTest, HandlerCanScheduleAtCurrentTime) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime{5}, [&] {
    fired.push_back(1);
    sim.schedule_at(sim.now(), [&] { fired.push_back(2); });
  });
  sim.schedule_at(SimTime{5}, [&] { fired.push_back(3); });
  sim.run();
  // The nested same-time event fires after already-queued time-5 events.
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 2}));
}

TEST(SimulatorTest, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(SimTime{10}, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime{5}, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_after(usec(-1), [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_at(SimTime{20}, Simulator::Handler{}),
               InvalidArgument);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(SimTime{10}, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelIsIdempotentAndPostFireSafe) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_at(SimTime{10}, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op after firing
  h.cancel();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime{10}, [&] { fired.push_back(1); });
  sim.schedule_at(SimTime{20}, [&] { fired.push_back(2); });
  sim.schedule_at(SimTime{30}, [&] { fired.push_back(3); });
  EXPECT_EQ(sim.run_until(SimTime{20}), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime{20});
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(SimTime{500}), 0u);
  EXPECT_EQ(sim.now(), SimTime{500});
  EXPECT_THROW(sim.run_until(SimTime{400}), InvalidArgument);
}

TEST(SimulatorTest, MaxEventsBudgetStopsRun) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime{i}, [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(/*max_events=*/4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.run(), 6u);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(SimTime{i}, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, SelfReschedulingChain) {
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) sim.schedule_after(usec(10), hop);
  };
  sim.schedule_at(SimTime::zero(), hop);
  sim.run();
  EXPECT_EQ(hops, 100);
  EXPECT_EQ(sim.now(), SimTime{990});
}

TEST(SimulatorTest, CancelledEventsDropFromPendingCount) {
  Simulator sim;
  EventHandle h1 = sim.schedule_at(SimTime{1}, [] {});
  sim.schedule_at(SimTime{2}, [] {});
  h1.cancel();
  EXPECT_FALSE(sim.idle());  // one live event remains
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace rtds::sim
