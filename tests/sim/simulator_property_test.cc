// Randomized property tests of the discrete-event engine.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace rtds::sim {
namespace {

TEST(SimulatorPropertyTest, ArbitraryInsertionFiresInTimeThenFifoOrder) {
  Xoshiro256ss rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    Simulator sim;
    struct Fired {
      std::int64_t time;
      int seq;
    };
    std::vector<Fired> fired;
    const int kEvents = 200;
    for (int i = 0; i < kEvents; ++i) {
      const std::int64_t t = rng.uniform_int(0, 50);  // many collisions
      sim.schedule_at(SimTime{t}, [&fired, t, i] {
        fired.push_back({t, i});
      });
    }
    sim.run();
    ASSERT_EQ(fired.size(), std::size_t(kEvents));
    for (std::size_t i = 1; i < fired.size(); ++i) {
      ASSERT_LE(fired[i - 1].time, fired[i].time);
      if (fired[i - 1].time == fired[i].time) {
        // FIFO among equal timestamps: scheduling order is firing order.
        ASSERT_LT(fired[i - 1].seq, fired[i].seq);
      }
    }
  }
}

TEST(SimulatorPropertyTest, RandomCancellationNeverFiresCancelled) {
  Xoshiro256ss rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    Simulator sim;
    const int kEvents = 100;
    std::vector<EventHandle> handles;
    std::vector<bool> fired(kEvents, false);
    handles.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      const std::int64_t t = rng.uniform_int(0, 1000);
      handles.push_back(
          sim.schedule_at(SimTime{t}, [&fired, i] { fired[std::size_t(i)] = true; }));
    }
    std::vector<bool> cancelled(kEvents, false);
    for (int i = 0; i < kEvents; ++i) {
      if (rng.bernoulli(0.4)) {
        handles[std::size_t(i)].cancel();
        cancelled[std::size_t(i)] = true;
      }
    }
    sim.run();
    for (int i = 0; i < kEvents; ++i) {
      ASSERT_EQ(fired[std::size_t(i)], !cancelled[std::size_t(i)]);
    }
  }
}

TEST(SimulatorPropertyTest, NestedSchedulingKeepsClockMonotone) {
  Xoshiro256ss rng(3);
  Simulator sim;
  SimTime last = SimTime::zero();
  int remaining = 500;
  std::function<void()> handler = [&] {
    ASSERT_GE(sim.now(), last);
    last = sim.now();
    if (--remaining > 0) {
      sim.schedule_after(SimDuration{rng.uniform_int(0, 100)}, handler);
    }
  };
  sim.schedule_at(SimTime::zero(), handler);
  sim.run();
  EXPECT_EQ(remaining, 0);
}

TEST(SimulatorPropertyTest, RunUntilPartitionsExactlyOnce) {
  // Running in random chunks fires every event exactly once, in the same
  // order as one big run.
  Xoshiro256ss rng(4);
  std::vector<std::pair<std::int64_t, int>> plan;
  for (int i = 0; i < 300; ++i) {
    plan.emplace_back(rng.uniform_int(0, 5000), i);
  }

  const auto run_with_chunks = [&](bool chunked) {
    Simulator sim;
    std::vector<int> fired;
    for (const auto& [t, id] : plan) {
      sim.schedule_at(SimTime{t}, [&fired, id = id] { fired.push_back(id); });
    }
    if (chunked) {
      SimTime cursor = SimTime::zero();
      Xoshiro256ss chunk_rng(5);
      while (!sim.idle()) {
        cursor += SimDuration{chunk_rng.uniform_int(1, 700)};
        sim.run_until(cursor);
      }
    } else {
      sim.run();
    }
    return fired;
  };

  EXPECT_EQ(run_with_chunks(true), run_with_chunks(false));
}

}  // namespace
}  // namespace rtds::sim
