// Determinism: the same scenario replayed twice yields identical results —
// the property every replay token and every CI failure report depends on.
//
// The DES backends must agree field-for-field (RunMetrics is compared via
// the metric-parity oracle, so any drift names the exact field). The
// threaded backend runs on the wall clock, so only its clock-independent
// counts are required to be stable, and only on parity-class workloads
// whose laxity dwarfs scheduling jitter (see docs/FUZZING.md).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/harness.h"
#include "testing/oracles.h"
#include "testing/scenario.h"

namespace rtds::testing {
namespace {

TEST(DeterminismTest, SameScenarioSameMetricsOnDesBackends) {
  HarnessOptions opts;
  opts.run_threaded = false;
  for (const std::uint64_t index : {0ULL, 7ULL, 23ULL, 41ULL}) {
    const Scenario s = generate_scenario(0xD5EED, index);
    const ScenarioResult r1 = run_scenario(s, opts);
    const ScenarioResult r2 = run_scenario(s, opts);
    EXPECT_EQ(r1.token, r2.token);
    std::vector<std::string> diffs;
    oracle_metric_parity(r1.sim, r2.sim, diffs);
    oracle_metric_parity(r1.partitioned, r2.partitioned, diffs);
    EXPECT_TRUE(diffs.empty()) << "scenario " << index << " drifted:\n  "
                               << diffs.front();
    EXPECT_EQ(r1.violations, r2.violations);
  }
}

TEST(DeterminismTest, OpenScenarioReplaysIdenticallyOnDesBackends) {
  // Streaming runs must replay like closed ones: same seed + rate + algo
  // spec gives the identical phase trace AND the identical schedule-latency
  // histogram (compared bucket-for-bucket by the metric-parity oracle).
  HarnessOptions opts;
  opts.run_threaded = false;
  for (const std::uint32_t kind : {kOpenPoisson, kOpenOnOff, kOpenSporadic}) {
    Scenario s = generate_scenario(0x0D5EED, 3);
    s.open_arrival = kind;
    s.num_shards = 1;
    s.max_pending = 8;
    const ScenarioResult r1 = run_scenario(s, opts);
    const ScenarioResult r2 = run_scenario(s, opts);
    EXPECT_TRUE(r1.ok()) << r1.to_string();
    ASSERT_TRUE(r1.sim.has_latency);
    std::vector<std::string> diffs;
    oracle_metric_parity(r1.sim, r2.sim, diffs);
    oracle_metric_parity(r1.partitioned, r2.partitioned, diffs);
    EXPECT_TRUE(diffs.empty()) << "open kind " << kind << " drifted:\n  "
                               << diffs.front();
    EXPECT_EQ(r1.violations, r2.violations);
    ASSERT_EQ(r1.sim.phases.size(), r2.sim.phases.size());
    for (std::size_t i = 0; i < r1.sim.phases.size(); ++i) {
      EXPECT_EQ(r1.sim.phases[i].start, r2.sim.phases[i].start);
      EXPECT_EQ(r1.sim.phases[i].quantum, r2.sim.phases[i].quantum);
      EXPECT_EQ(r1.sim.phases[i].arrivals, r2.sim.phases[i].arrivals);
      EXPECT_EQ(r1.sim.phases[i].admission_rejected,
                r2.sim.phases[i].admission_rejected);
    }
  }
}

TEST(DeterminismTest, ThreadedStreamingCountsStableOnForgivingWorkload) {
  // The threaded backend pulls the same deterministic task stream; with
  // laxity far beyond wall-clock jitter its terminal counts are stable and
  // the latency digest stays one-sample-per-delivery (stream-accounting
  // oracle, enforced inside run_scenario).
  Scenario s;
  s.open_arrival = kOpenOnOff;
  s.num_tasks = 24;
  s.workers = 4;
  s.num_shards = 1;
  s.stream_mean_gap_us = 200;
  s.stream_burst_len = 6;
  s.stream_off_us = 3000;
  s.max_pending = 0;
  s.max_start_offset_us = 0;
  s.reclaim = 0;
  s.laxity_min_centi = 5'000'000;
  s.laxity_max_centi = 5'000'000;
  s.refusal_period = 0;
  s.mailbox_capacity = 1024;
  s.delivery_retries = 3;

  const ScenarioResult r1 = run_scenario(s, HarnessOptions{});
  const ScenarioResult r2 = run_scenario(s, HarnessOptions{});
  ASSERT_TRUE(r1.threaded_ran);
  ASSERT_TRUE(r2.threaded_ran);
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  EXPECT_TRUE(r2.ok()) << r2.to_string();
  ASSERT_TRUE(r1.threaded.has_latency);
  EXPECT_EQ(r1.threaded.latency_count, r1.threaded.metrics.scheduled);
  EXPECT_EQ(r1.threaded.metrics.scheduled, r2.threaded.metrics.scheduled);
  EXPECT_EQ(r1.threaded.metrics.culled, r2.threaded.metrics.culled);
  EXPECT_EQ(r1.threaded.metrics.deadline_hits,
            r2.threaded.metrics.deadline_hits);
  EXPECT_EQ(r1.threaded.metrics.total_tasks, s.num_tasks);
}

TEST(DeterminismTest, ThreadedCountsStableOnParityWorkload) {
  Scenario s;
  s.parity_class = 1;
  s.num_tasks = 24;
  s.workers = 4;
  s.num_shards = 1;
  s.arrival_kind = kArrivalBursty;
  s.max_start_offset_us = 0;
  s.reclaim = 0;
  // Laxity in the tens of seconds: deadlines sit far beyond any plausible
  // wall-clock jitter, so scheduled/culled/hit counts are deterministic.
  s.laxity_min_centi = 5'000'000;
  s.laxity_max_centi = 5'000'000;
  s.refusal_period = 0;
  s.mailbox_capacity = 1024;
  s.delivery_retries = 3;

  const ScenarioResult r1 = run_scenario(s, HarnessOptions{});
  const ScenarioResult r2 = run_scenario(s, HarnessOptions{});
  ASSERT_TRUE(r1.threaded_ran);
  ASSERT_TRUE(r2.threaded_ran);
  // ok() already enforces threaded-parity against the sim run; here we
  // additionally pin run-to-run stability of the threaded counts.
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  EXPECT_TRUE(r2.ok()) << r2.to_string();
  EXPECT_EQ(r1.threaded.metrics.scheduled, r2.threaded.metrics.scheduled);
  EXPECT_EQ(r1.threaded.metrics.culled, r2.threaded.metrics.culled);
  EXPECT_EQ(r1.threaded.metrics.deadline_hits,
            r2.threaded.metrics.deadline_hits);
  // Phase COUNT is deliberately not compared: arrivals land on the wall
  // clock, so phase boundaries may fall differently between runs even
  // though every task ends in the same terminal state.
}

}  // namespace
}  // namespace rtds::testing
