// Shrinking a gang-dependent failure: the kCorruptGangWidth mutation only
// fires when a gang actually executes, so every shrink candidate that drops
// the gang dial (gang_permille = 0) passes and must be REJECTED. The
// minimal scenario therefore keeps a gang while everything incidental —
// task count, width ceiling, fault injection — collapses to the floor.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "testing/harness.h"
#include "testing/scenario.h"
#include "testing/shrink.h"

namespace rtds::testing {
namespace {

bool any_violation_contains(const ScenarioResult& r, const std::string& what) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const std::string& v) {
                       return v.find(what) != std::string::npos;
                     });
}

TEST(ShrinkGangTest, GangFailureShrinksButKeepsTheGang) {
  HarnessOptions opts;
  opts.run_threaded = false;
  opts.mutation = Mutation::kCorruptGangWidth;

  Scenario s;
  s.workers = 4;
  s.num_shards = 1;
  s.num_tasks = 40;
  s.gang_permille = 1000;  // all-gang: the mutation fires on the first record
  s.gang_max_workers = 4;
  s.refusal_period = 3;  // incidental noise the shrinker should strip
  s.run_threaded = 0;
  ASSERT_FALSE(run_scenario(s, opts).ok());

  const ShrinkResult shrunk = shrink(s, opts, /*max_runs=*/150);
  ASSERT_FALSE(shrunk.result.ok());
  EXPECT_TRUE(any_violation_contains(shrunk.result, "gang-occupancy"))
      << shrunk.result.to_string();

  // The failure needs a gang: the gang_permille -> 0 candidate passed and
  // was rejected, so the minimal scenario still schedules gangs...
  EXPECT_GT(shrunk.minimal.gang_permille, 0u);
  EXPECT_GE(shrunk.minimal.workers, 2u);
  // ...while the incidental dials collapsed: pairs are the narrowest gang,
  // and a handful of tasks suffice to execute one.
  EXPECT_EQ(shrunk.minimal.gang_max_workers, 2u);
  EXPECT_LE(shrunk.minimal.num_tasks, 10u)
      << "shrinker left " << shrunk.minimal.num_tasks << " tasks after "
      << shrunk.runs << " runs";
  EXPECT_EQ(shrunk.minimal.refusal_period, 0u);

  // The minimal scenario replays from its token alone, and passes cleanly
  // without the injected mutation (the bug lived in the doctored widths).
  const auto decoded = decode_token(shrunk.result.token);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, shrunk.minimal);
  ASSERT_FALSE(run_scenario(*decoded, opts).ok());
  HarnessOptions clean;
  clean.run_threaded = false;
  EXPECT_TRUE(run_scenario(*decoded, clean).ok());
}

}  // namespace
}  // namespace rtds::testing
