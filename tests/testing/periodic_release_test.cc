// Periodic releases as a first-class scenario axis: closed release trains
// (num_releases x release_period_us) and the open kOpenPeriodic stream must
// replay identically on the DES backends, survive the threaded backend with
// balanced books, and one golden scenario pins its exact ledger counts so a
// silent change to release replication shows up as a diff, not a drift.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/harness.h"
#include "testing/oracles.h"
#include "testing/scenario.h"

namespace rtds::testing {
namespace {

// Golden counts for GoldenPeriodicScenarioLedgerCounts (see that test).
constexpr std::uint64_t kGoldenScheduled = 98;
constexpr std::uint64_t kGoldenHits = 98;
constexpr std::uint64_t kGoldenCulled = 2;
constexpr std::size_t kGoldenPhases = 50;

TEST(PeriodicReleaseTest, ClosedReleaseTrainReplaysIdenticallyOnDes) {
  HarnessOptions opts;
  opts.run_threaded = false;
  Scenario s;
  s.num_tasks = 30;
  s.num_releases = 3;
  s.release_period_us = 6000;
  const ScenarioResult r1 = run_scenario(s, opts);
  const ScenarioResult r2 = run_scenario(s, opts);
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  // The replicated workload is what every backend saw: 30 bodies x 3.
  EXPECT_EQ(r1.sim.metrics.total_tasks, 90u);
  std::vector<std::string> diffs;
  oracle_metric_parity(r1.sim, r2.sim, diffs);
  oracle_metric_parity(r1.partitioned, r2.partitioned, diffs);
  EXPECT_TRUE(diffs.empty()) << diffs.front();
  EXPECT_EQ(r1.violations, r2.violations);
}

TEST(PeriodicReleaseTest, OpenPeriodicReplaysIdenticallyOnDes) {
  // The jittered release train is drawn from the scenario seed, so two runs
  // see the same arrivals to the microsecond: phase traces and latency
  // digests must match exactly, like the other open kinds.
  HarnessOptions opts;
  opts.run_threaded = false;
  Scenario s = generate_scenario(0x9E10D1C, 3);
  s.open_arrival = kOpenPeriodic;
  s.release_period_us = 2500;
  s.release_jitter_us = 800;
  s.num_shards = 1;
  s.max_pending = 8;
  const ScenarioResult r1 = run_scenario(s, opts);
  const ScenarioResult r2 = run_scenario(s, opts);
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  ASSERT_TRUE(r1.sim.has_latency);
  std::vector<std::string> diffs;
  oracle_metric_parity(r1.sim, r2.sim, diffs);
  oracle_metric_parity(r1.partitioned, r2.partitioned, diffs);
  EXPECT_TRUE(diffs.empty()) << diffs.front();
  EXPECT_EQ(r1.violations, r2.violations);
  ASSERT_EQ(r1.sim.phases.size(), r2.sim.phases.size());
  for (std::size_t i = 0; i < r1.sim.phases.size(); ++i) {
    EXPECT_EQ(r1.sim.phases[i].start, r2.sim.phases[i].start);
    EXPECT_EQ(r1.sim.phases[i].arrivals, r2.sim.phases[i].arrivals);
  }
}

TEST(PeriodicReleaseTest, ThreadedPeriodicCountsStableOnForgivingWorkload) {
  // Same contract as the other open kinds: with laxity far beyond
  // wall-clock jitter the threaded backend's terminal counts are stable
  // run to run, and the books balance (enforced by ok()).
  Scenario s;
  s.open_arrival = kOpenPeriodic;
  s.num_tasks = 24;
  s.workers = 4;
  s.num_shards = 1;
  s.release_period_us = 400;
  s.release_jitter_us = 100;
  s.max_pending = 0;
  s.max_start_offset_us = 0;
  s.reclaim = 0;
  s.laxity_min_centi = 5'000'000;
  s.laxity_max_centi = 5'000'000;
  s.refusal_period = 0;
  s.mailbox_capacity = 1024;
  s.delivery_retries = 3;
  const ScenarioResult r1 = run_scenario(s, HarnessOptions{});
  const ScenarioResult r2 = run_scenario(s, HarnessOptions{});
  ASSERT_TRUE(r1.threaded_ran);
  EXPECT_TRUE(r1.ok()) << r1.to_string();
  EXPECT_TRUE(r2.ok()) << r2.to_string();
  EXPECT_EQ(r1.threaded.metrics.scheduled, r2.threaded.metrics.scheduled);
  EXPECT_EQ(r1.threaded.metrics.culled, r2.threaded.metrics.culled);
  EXPECT_EQ(r1.threaded.metrics.deadline_hits,
            r2.threaded.metrics.deadline_hits);
  EXPECT_EQ(r1.threaded.metrics.total_tasks, s.num_tasks);
}

TEST(PeriodicReleaseTest, GoldenPeriodicScenarioLedgerCounts) {
  // One pinned release-train scenario: these exact counts were captured
  // from the DES at the introduction of the periodic axis. Any change is a
  // semantic change to release replication or scheduling, and must be
  // reviewed (and this golden re-recorded), never absorbed silently.
  HarnessOptions opts;
  opts.run_threaded = false;
  Scenario s;  // defaults: 4 workers, rt_sads, self-adjusting quantum
  s.seed = 99;
  s.num_tasks = 25;
  s.num_releases = 4;
  s.release_period_us = 8000;
  const ScenarioResult r = run_scenario(s, opts);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.sim.metrics.total_tasks, 100u);
  EXPECT_EQ(r.sim.metrics.scheduled, kGoldenScheduled);
  EXPECT_EQ(r.sim.metrics.deadline_hits, kGoldenHits);
  EXPECT_EQ(r.sim.metrics.culled, kGoldenCulled);
  EXPECT_EQ(r.sim.metrics.exec_misses, 0u);
  EXPECT_EQ(r.sim.phases.size(), kGoldenPhases);
}

}  // namespace
}  // namespace rtds::testing
