// Oracle sweeps pinned to each non-default portfolio member.
//
// fuzz_smoke already sweeps the mixed portfolio; these tests pin the
// algorithm so every greedy baseline and both partitioned entrants each get
// a dedicated pass through the full oracle registry (correction theorem,
// conservation ledger, schedule validity, quantum bound, sim/partitioned
// metric parity). The threaded backend is left off: its wall-clock runs are
// algorithm-independent plumbing and fuzz_smoke covers them.
#include <gtest/gtest.h>

#include <string>

#include "testing/harness.h"
#include "testing/scenario.h"

namespace rtds::testing {
namespace {

void sweep_pinned(const std::string& spec) {
  HarnessOptions options;
  options.run_threaded = false;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Scenario scenario = generate_scenario(0xA160, i);
    scenario.algo_spec = spec;
    const ScenarioResult result = run_scenario(scenario, options);
    EXPECT_TRUE(result.ok()) << result.to_string();
  }
}

TEST(PortfolioFuzzTest, EdfFirstFitPassesAllOracles) { sweep_pinned("edf_ff"); }

TEST(PortfolioFuzzTest, EdfBestFitPassesAllOracles) { sweep_pinned("edf_bf"); }

TEST(PortfolioFuzzTest, MyopicPassesAllOracles) {
  sweep_pinned("myopic?window=3");
}

TEST(PortfolioFuzzTest, PackingPassesAllOracles) {
  sweep_pinned("packing");
  sweep_pinned("packing?fit=best&order=lpt");
}

TEST(PortfolioFuzzTest, MulticritPassesAllOracles) {
  sweep_pinned("multicrit");
  sweep_pinned("multicrit?sort=min_slack&fit=worst");
  sweep_pinned("multicrit?sort=lpt&fit=next");
}

TEST(PortfolioFuzzTest, InvalidPinnedSpecIsAViolationNotACrash) {
  Scenario scenario = generate_scenario(0xA160, 0);
  scenario.algo_spec = "no_such_algo?x=1";
  HarnessOptions options;
  options.run_threaded = false;
  const ScenarioResult result = run_scenario(scenario, options);
  ASSERT_FALSE(result.ok());
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations.front().find("harness(algorithm)"),
            std::string::npos)
      << result.violations.front();
}

}  // namespace
}  // namespace rtds::testing
