// Scenario generation and replay-token serialization.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/scenario.h"

namespace rtds::testing {
namespace {

TEST(ScenarioTest, TokenRoundTripsEveryGeneratedScenario) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Scenario s = generate_scenario(0xABCDEF, i);
    const std::string token = encode_token(s);
    const auto decoded = decode_token(token);
    ASSERT_TRUE(decoded.has_value()) << token;
    EXPECT_EQ(*decoded, s) << token;
  }
}

TEST(ScenarioTest, TokenRoundTripsDefaultScenario) {
  const Scenario s;
  const auto decoded = decode_token(encode_token(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(ScenarioTest, DecodeRejectsTamperedToken) {
  std::string token = encode_token(generate_scenario(1, 0));
  token.back() = token.back() == '0' ? '1' : '0';
  EXPECT_FALSE(decode_token(token).has_value());
}

TEST(ScenarioTest, DecodeRejectsWrongVersionAndGarbage) {
  std::string token = encode_token(Scenario{});
  ASSERT_EQ(token.substr(0, 5), "rtds3");
  // rtds1/rtds2 tokens predate the algo_spec string field and the
  // open-arrival fields respectively: they must be rejected, never silently
  // decoded into a differently-shaped scenario.
  EXPECT_FALSE(decode_token("rtds1" + token.substr(5)).has_value());
  EXPECT_FALSE(decode_token("rtds2" + token.substr(5)).has_value());
  EXPECT_FALSE(decode_token("rtds9" + token.substr(5)).has_value());
  EXPECT_FALSE(decode_token("").has_value());
  EXPECT_FALSE(decode_token("rtds3").has_value());
  EXPECT_FALSE(decode_token("not a token at all").has_value());
  // Truncated field list.
  EXPECT_FALSE(decode_token(token.substr(0, token.size() / 2)).has_value());
}

TEST(ScenarioTest, TokenRoundTripsArbitraryAlgoSpecStrings) {
  // The string field is hex-encoded, so any spec text — including '?', '&',
  // '=' and characters the registry would reject — survives the token.
  for (const char* spec :
       {"rt_sads", "d_cols?max_successors=8", "multicrit?sort=lpt&fit=next",
        "", "weird spec with spaces", "x.c.x"}) {
    Scenario s;
    s.algo_spec = spec;
    const auto decoded = decode_token(encode_token(s));
    ASSERT_TRUE(decoded.has_value()) << spec;
    EXPECT_EQ(decoded->algo_spec, spec);
    EXPECT_EQ(*decoded, s);
  }
}

TEST(ScenarioTest, GeneratorKeepsScenariosValid) {
  for (std::uint64_t i = 0; i < 256; ++i) {
    const Scenario s = generate_scenario(0x5EED, i);
    EXPECT_GE(s.workers, 1u);
    EXPECT_LE(s.workers, 8u);
    EXPECT_GE(s.num_shards, 1u);
    EXPECT_EQ(s.workers % s.num_shards, 0u)
        << "shards must divide workers (scenario " << i << ")";
    EXPECT_LE(s.processing_min_us, s.processing_max_us);
    EXPECT_LE(s.laxity_min_centi, s.laxity_max_centi);
    EXPECT_LE(s.actual_fraction_min_permille, s.actual_fraction_max_permille);
    EXPECT_GT(s.vertex_cost_us, 0);
    EXPECT_GT(s.min_quantum_us, 0);
    EXPECT_LE(s.min_quantum_us, s.max_quantum_us);
    if (s.parity_class != 0) {
      // Parity-class scenarios must sit in the regime where the threaded
      // backend provably agrees with the DES (see docs/FUZZING.md).
      EXPECT_EQ(s.refusal_period, 0u);
      EXPECT_EQ(s.max_start_offset_us, 0);
      EXPECT_EQ(s.reclaim, 0u);
      EXPECT_EQ(s.num_shards, 1u);
      EXPECT_GE(s.laxity_min_centi, 1'000'000u);
    }
  }
}

TEST(ScenarioTest, GenerationIsDeterministic) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(generate_scenario(42, i), generate_scenario(42, i));
  }
  // Different indices of the same sweep differ (no stuck substream).
  EXPECT_NE(generate_scenario(42, 0), generate_scenario(42, 1));
}

TEST(ScenarioTest, WorkloadIsDeterministicAndSized) {
  const Scenario s = generate_scenario(7, 3);
  const auto a = make_workload(s);
  const auto b = make_workload(s);
  EXPECT_EQ(a.size(), s.num_tasks);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].processing, b[i].processing);
  }
  // The workload substream is independent of the scenario substream: a
  // different seed yields a different workload.
  Scenario other = s;
  other.seed = s.seed + 1;
  const auto c = make_workload(other);
  ASSERT_EQ(c.size(), a.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || !(a[i].processing == c[i].processing) ||
               !(a[i].arrival == c[i].arrival);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace rtds::testing
