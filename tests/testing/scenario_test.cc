// Scenario generation and replay-token serialization.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/scenario.h"

namespace rtds::testing {
namespace {

TEST(ScenarioTest, TokenRoundTripsEveryGeneratedScenario) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Scenario s = generate_scenario(0xABCDEF, i);
    const std::string token = encode_token(s);
    const auto decoded = decode_token(token);
    ASSERT_TRUE(decoded.has_value()) << token;
    EXPECT_EQ(*decoded, s) << token;
  }
}

TEST(ScenarioTest, TokenRoundTripsDefaultScenario) {
  const Scenario s;
  const auto decoded = decode_token(encode_token(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(ScenarioTest, DecodeRejectsTamperedToken) {
  std::string token = encode_token(generate_scenario(1, 0));
  token.back() = token.back() == '0' ? '1' : '0';
  EXPECT_FALSE(decode_token(token).has_value());
}

TEST(ScenarioTest, DecodeRejectsWrongVersionAndGarbage) {
  std::string token = encode_token(Scenario{});
  ASSERT_EQ(token.substr(0, 5), "rtds5");
  // rtds1..rtds4 tokens predate the algo_spec string field, the
  // open-arrival fields, the task-model (gang / periodic-release) fields
  // and the big-batch capacity dial respectively: they must be rejected,
  // never silently decoded into a differently-shaped scenario.
  EXPECT_FALSE(decode_token("rtds1" + token.substr(5)).has_value());
  EXPECT_FALSE(decode_token("rtds2" + token.substr(5)).has_value());
  EXPECT_FALSE(decode_token("rtds3" + token.substr(5)).has_value());
  EXPECT_FALSE(decode_token("rtds4" + token.substr(5)).has_value());
  EXPECT_FALSE(decode_token("rtds9" + token.substr(5)).has_value());
  EXPECT_FALSE(decode_token("").has_value());
  EXPECT_FALSE(decode_token("rtds5").has_value());
  EXPECT_FALSE(decode_token("not a token at all").has_value());
  // Truncated field list.
  EXPECT_FALSE(decode_token(token.substr(0, token.size() / 2)).has_value());
}

TEST(ScenarioTest, TokenRoundTripsArbitraryAlgoSpecStrings) {
  // The string field is hex-encoded, so any spec text — including '?', '&',
  // '=' and characters the registry would reject — survives the token.
  for (const char* spec :
       {"rt_sads", "d_cols?max_successors=8", "multicrit?sort=lpt&fit=next",
        "", "weird spec with spaces", "x.c.x"}) {
    Scenario s;
    s.algo_spec = spec;
    const auto decoded = decode_token(encode_token(s));
    ASSERT_TRUE(decoded.has_value()) << spec;
    EXPECT_EQ(decoded->algo_spec, spec);
    EXPECT_EQ(*decoded, s);
  }
}

TEST(ScenarioTest, GeneratorKeepsScenariosValid) {
  for (std::uint64_t i = 0; i < 256; ++i) {
    const Scenario s = generate_scenario(0x5EED, i);
    EXPECT_GE(s.workers, 1u);
    // The big-batch capacity profile widens the machine to up to 12
    // workers; every other scenario stays in the classic 1..8 band.
    EXPECT_LE(s.workers, s.big_batch != 0 ? 12u : 8u);
    EXPECT_GE(s.num_shards, 1u);
    EXPECT_EQ(s.workers % s.num_shards, 0u)
        << "shards must divide workers (scenario " << i << ")";
    EXPECT_LE(s.processing_min_us, s.processing_max_us);
    EXPECT_LE(s.laxity_min_centi, s.laxity_max_centi);
    EXPECT_LE(s.actual_fraction_min_permille, s.actual_fraction_max_permille);
    EXPECT_GT(s.vertex_cost_us, 0);
    EXPECT_GT(s.min_quantum_us, 0);
    EXPECT_LE(s.min_quantum_us, s.max_quantum_us);
    // Task-model dial validity (rtds4): a gang must fit the machine and
    // never straddle a shard; a release train needs a positive period and a
    // jitter within it.
    EXPECT_LE(s.gang_permille, 1000u);
    if (s.gang_permille > 0) {
      EXPECT_GE(s.workers, 2u);
      EXPECT_GE(s.gang_max_workers, 2u);
      EXPECT_LE(s.gang_max_workers, s.workers);
      EXPECT_EQ(s.num_shards, 1u);
    }
    EXPECT_GE(s.num_releases, 1u);
    if (s.num_releases > 1) {
      EXPECT_GT(s.release_period_us, 0);
      EXPECT_EQ(s.open_arrival, kOpenClosed);
    }
    if (s.open_arrival == kOpenPeriodic) {
      EXPECT_GT(s.release_period_us, 0);
      EXPECT_GE(s.release_jitter_us, 0);
      EXPECT_LE(s.release_jitter_us, s.release_period_us);
    }
    if (s.big_batch != 0) {
      // Capacity scenarios: one closed single-shard burst past the old
      // 65535-task cap, DES only, schedulable by construction.
      EXPECT_GE(s.num_tasks, 65'536u);
      EXPECT_LE(s.num_tasks, 200'000u);
      EXPECT_EQ(s.open_arrival, kOpenClosed);
      EXPECT_EQ(s.num_shards, 1u);
      EXPECT_EQ(s.run_threaded, 0u);
      EXPECT_EQ(s.parity_class, 0u);
      EXPECT_EQ(s.gang_permille, 0u);
      EXPECT_EQ(s.num_releases, 1u);
      EXPECT_EQ(s.refusal_period, 0u);
      EXPECT_EQ(s.burst_size, s.num_tasks);
      EXPECT_GE(s.laxity_min_centi, 500'000u);
    }
    if (s.parity_class != 0) {
      EXPECT_EQ(s.num_releases, 1u);
      // Parity-class scenarios must sit in the regime where the threaded
      // backend provably agrees with the DES (see docs/FUZZING.md).
      EXPECT_EQ(s.refusal_period, 0u);
      EXPECT_EQ(s.max_start_offset_us, 0);
      EXPECT_EQ(s.reclaim, 0u);
      EXPECT_EQ(s.num_shards, 1u);
      EXPECT_GE(s.laxity_min_centi, 1'000'000u);
    }
  }
}

TEST(ScenarioTest, DescribeLabelsEveryArrivalAndOpenKind) {
  // to_string must name every enumerator exactly — the old nested ternaries
  // mislabeled any kind beyond the ones they spelled out, so a periodic
  // stream described itself as sporadic in fuzz failure reports.
  Scenario s;
  const auto described_arrival = [&](std::uint32_t kind) {
    Scenario c = s;
    c.arrival_kind = kind;
    return c.to_string();
  };
  EXPECT_NE(described_arrival(kArrivalBursty).find("arrival=bursty"),
            std::string::npos);
  EXPECT_NE(described_arrival(kArrivalPoisson).find("arrival=poisson"),
            std::string::npos);
  EXPECT_NE(
      described_arrival(kArrivalPeriodicBurst).find("arrival=periodic-burst"),
      std::string::npos);
  // A kind the switch does not know prints as unknown(N), never as a
  // borrowed neighbor's label.
  EXPECT_NE(described_arrival(99).find("arrival=unknown(99)"),
            std::string::npos);

  const auto described_open = [&](std::uint32_t kind) {
    Scenario c = s;
    c.open_arrival = kind;
    if (kind == kOpenPeriodic) {
      c.release_period_us = 4000;
      c.release_jitter_us = 500;
    }
    return c.to_string();
  };
  EXPECT_EQ(described_open(kOpenClosed).find("open="), std::string::npos);
  EXPECT_NE(described_open(kOpenPoisson).find("open=poisson"),
            std::string::npos);
  EXPECT_NE(described_open(kOpenOnOff).find("open=on-off"),
            std::string::npos);
  EXPECT_NE(described_open(kOpenSporadic).find("open=sporadic"),
            std::string::npos);
  const std::string periodic = described_open(kOpenPeriodic);
  EXPECT_NE(periodic.find("open=periodic"), std::string::npos);
  EXPECT_NE(periodic.find("period=4000us jitter=500us"), std::string::npos);
  EXPECT_EQ(periodic.find("gap="), std::string::npos)
      << "periodic streams draw from release_period_us, not stream gaps";
  EXPECT_NE(described_open(77).find("open=unknown(77)"), std::string::npos);

  // Task-model dials only appear when armed.
  EXPECT_EQ(s.to_string().find("gang="), std::string::npos);
  EXPECT_EQ(s.to_string().find("releases="), std::string::npos);
  Scenario gang = s;
  gang.gang_permille = 400;
  gang.gang_max_workers = 3;
  EXPECT_NE(gang.to_string().find("gang=400pm<=3w"), std::string::npos);
  Scenario releases = s;
  releases.num_releases = 3;
  releases.release_period_us = 7000;
  EXPECT_NE(releases.to_string().find("releases=3x7000us"),
            std::string::npos);
}

TEST(ScenarioTest, BigBatchProfileShapesAndRoundTrips) {
  // The profile the generator's capacity slice and `rtds_fuzz --big-batch`
  // share: deterministic in its rng, one closed wide-header burst, and the
  // resulting scenario still serializes exactly.
  Xoshiro256ss rng(0xB16B47C4ULL);
  Xoshiro256ss rng_again(0xB16B47C4ULL);
  Scenario s = generate_scenario(0xFEED, 0);
  Scenario t = generate_scenario(0xFEED, 0);
  apply_big_batch_profile(s, rng);
  apply_big_batch_profile(t, rng_again);
  EXPECT_EQ(s, t);
  EXPECT_EQ(s.big_batch, 1u);
  EXPECT_GE(s.num_tasks, 65'536u);
  EXPECT_LE(s.num_tasks, 200'000u);
  EXPECT_EQ(s.burst_size, s.num_tasks);
  EXPECT_EQ(s.open_arrival, kOpenClosed);
  EXPECT_EQ(s.num_shards, 1u);
  EXPECT_EQ(s.run_threaded, 0u);
  EXPECT_EQ(s.gang_permille, 0u);
  EXPECT_TRUE(s.algo_spec == "rt_sads" || s.algo_spec == "search?threads=2")
      << s.algo_spec;
  EXPECT_NE(s.to_string().find(" big-batch"), std::string::npos);
  const auto decoded = decode_token(encode_token(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(ScenarioTest, GenerationIsDeterministic) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(generate_scenario(42, i), generate_scenario(42, i));
  }
  // Different indices of the same sweep differ (no stuck substream).
  EXPECT_NE(generate_scenario(42, 0), generate_scenario(42, 1));
}

TEST(ScenarioTest, WorkloadIsDeterministicAndSized) {
  const Scenario s = generate_scenario(7, 3);
  const auto a = make_workload(s);
  const auto b = make_workload(s);
  EXPECT_EQ(a.size(), std::size_t{s.num_tasks} * s.num_releases);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].processing, b[i].processing);
  }
  // The workload substream is independent of the scenario substream: a
  // different seed yields a different workload.
  Scenario other = s;
  other.seed = s.seed + 1;
  const auto c = make_workload(other);
  ASSERT_EQ(c.size(), a.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || !(a[i].processing == c[i].processing) ||
               !(a[i].arrival == c[i].arrival);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace rtds::testing
