// The harness self-test: clean scenarios pass every oracle, deliberately
// injected bugs are caught, and the shrinker reduces a failing case to a
// replayable minimal scenario. A fuzzer whose failure path is never
// exercised proves nothing — this suite is the evidence the oracles fire.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "testing/harness.h"
#include "testing/scenario.h"
#include "testing/shrink.h"

namespace rtds::testing {
namespace {

bool any_violation_contains(const ScenarioResult& r, const std::string& what) {
  return std::any_of(r.violations.begin(), r.violations.end(),
                     [&](const std::string& v) {
                       return v.find(what) != std::string::npos;
                     });
}

HarnessOptions des_only() {
  HarnessOptions opts;
  opts.run_threaded = false;
  return opts;
}

TEST(HarnessTest, DefaultScenarioPassesAllOracles) {
  const Scenario s;
  const ScenarioResult r = run_scenario(s, des_only());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.sim.metrics.total_tasks, s.num_tasks);
  EXPECT_GT(r.sim.metrics.deadline_hits, 0u);
  EXPECT_TRUE(r.sim.has_ledger);
  EXPECT_TRUE(r.sim.has_phases);
  EXPECT_EQ(r.token, encode_token(s));
}

TEST(HarnessTest, FaultInjectionExercisesReadmissionAndStaysConserved) {
  Scenario s;
  s.refusal_period = 2;  // refuse every 2nd delivery on every backend
  const ScenarioResult r = run_scenario(s, des_only());
  EXPECT_TRUE(r.ok()) << r.to_string();
  // The injected refusals must actually drive the overload machinery —
  // and sim/partitioned stay in exact parity through it (checked by ok()).
  EXPECT_GT(r.sim.metrics.overflow_drops, 0u);
  EXPECT_GT(r.sim.metrics.readmissions + r.sim.metrics.rejected, 0u);
}

TEST(HarnessTest, MultiShardScenarioRunsShardAudit) {
  Scenario s;
  s.workers = 4;
  s.num_shards = 2;
  const ScenarioResult r = run_scenario(s, des_only());
  EXPECT_TRUE(r.ok()) << r.to_string();
  ASSERT_EQ(r.shard_runs.size(), 2u);
  EXPECT_EQ(r.shard_runs[0].metrics.total_tasks +
                r.shard_runs[1].metrics.total_tasks,
            s.num_tasks);
}

TEST(HarnessTest, LedgerMutationIsCaughtByConservationOracle) {
  HarnessOptions opts = des_only();
  opts.mutation = Mutation::kLoseHit;
  const ScenarioResult r = run_scenario(Scenario{}, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(any_violation_contains(r, "conservation(sim)"))
      << r.to_string();
}

TEST(HarnessTest, QuantumMutationIsCaughtByQuantumOracle) {
  HarnessOptions opts = des_only();
  opts.mutation = Mutation::kCorruptQuantum;
  const ScenarioResult r = run_scenario(Scenario{}, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(any_violation_contains(r, "quantum-bound(sim)"))
      << r.to_string();
}

TEST(HarnessTest, CleanGangScenarioPassesAllOracles) {
  Scenario s;
  s.gang_permille = 600;
  s.gang_max_workers = 3;
  const ScenarioResult r = run_scenario(s, des_only());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.sim.metrics.deadline_hits, 0u);
}

TEST(HarnessTest, GangWidthMutationIsCaughtByGangOccupancyOracle) {
  // The mutation inflates every executed gang's declared width by one, so
  // the log shows blocks narrower than the workload demands — exactly the
  // bug class (a backend splitting a gang) this oracle exists to catch.
  HarnessOptions opts = des_only();
  opts.mutation = Mutation::kCorruptGangWidth;
  Scenario s;
  s.gang_permille = 1000;  // every task a gang: the mutation must fire
  s.gang_max_workers = 3;
  const ScenarioResult r = run_scenario(s, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(any_violation_contains(r, "gang-occupancy(sim)"))
      << r.to_string();
}

TEST(HarnessTest, InjectedBugShrinksToMinimalReplayableScenario) {
  // The acceptance-criteria scenario: a deliberately injected ledger bug
  // must be caught AND shrunk to a minimal scenario whose replay token
  // round-trips. The mutation loses one deadline hit, so the true minimal
  // repro is a single task that hits — the shrinker must get close.
  HarnessOptions opts = des_only();
  opts.mutation = Mutation::kLoseHit;
  Scenario s = generate_scenario(0xB06, 4);
  s.num_tasks = std::max(s.num_tasks, 40u);
  s.run_threaded = 0;

  const ShrinkResult shrunk = shrink(s, opts, /*max_runs=*/150);
  ASSERT_FALSE(shrunk.result.ok());
  EXPECT_TRUE(any_violation_contains(shrunk.result, "conservation"));
  EXPECT_LE(shrunk.minimal.num_tasks, 2u)
      << "shrinker left " << shrunk.minimal.num_tasks << " tasks after "
      << shrunk.runs << " runs";
  EXPECT_EQ(shrunk.minimal.refusal_period, 0u);
  EXPECT_LE(shrunk.runs, 150u);

  // The minimal scenario replays from its token alone...
  const auto decoded = decode_token(shrunk.result.token);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, shrunk.minimal);
  ASSERT_FALSE(run_scenario(*decoded, opts).ok());
  // ...and passes cleanly without the injected mutation: the bug lived in
  // the books, not in the scheduler.
  EXPECT_TRUE(run_scenario(*decoded, des_only()).ok());
}

TEST(HarnessTest, ShrinkOnPassingScenarioIsANoOp) {
  const Scenario s;
  const ShrinkResult r = shrink(s, des_only(), 50);
  EXPECT_TRUE(r.result.ok());
  EXPECT_EQ(r.minimal, s);
  EXPECT_EQ(r.runs, 1u);
}

TEST(HarnessTest, ThreadedBackendRunsAndStaysConserved) {
  Scenario s;
  s.num_tasks = 24;
  s.mailbox_capacity = 2;  // force real overflow churn on the wall clock
  s.delivery_retries = 0;
  const ScenarioResult r = run_scenario(s, HarnessOptions{});
  EXPECT_TRUE(r.threaded_ran);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.threaded.metrics.total_tasks, s.num_tasks);
}

}  // namespace
}  // namespace rtds::testing
