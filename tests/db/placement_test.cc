#include "db/placement.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::db {
namespace {

TEST(CopiesForTest, MatchesPaperEndpoints) {
  // R = 10%, m = 10 -> one copy; R = 100% -> every worker.
  EXPECT_EQ(Placement::copies_for(10, 0.10), 1u);
  EXPECT_EQ(Placement::copies_for(10, 1.00), 10u);
  EXPECT_EQ(Placement::copies_for(10, 0.30), 3u);
  EXPECT_EQ(Placement::copies_for(10, 0.55), 6u);  // round to nearest
  // Never zero even when R*m rounds down.
  EXPECT_EQ(Placement::copies_for(4, 0.05), 1u);
  EXPECT_THROW(static_cast<void>(Placement::copies_for(10, 0.0)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(Placement::copies_for(10, 1.5)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(Placement::copies_for(0, 0.5)), InvalidArgument);
}

TEST(RotationPlacementTest, EverySubDbHasExactlyCopiesHolders) {
  const Placement p = Placement::rotation(10, 10, 0.3);
  EXPECT_EQ(p.copies(), 3u);
  for (std::uint32_t s = 0; s < 10; ++s) {
    EXPECT_EQ(p.holders(s).count(), 3u);
  }
  EXPECT_THROW(static_cast<void>(p.holders(10)), InvalidArgument);
}

TEST(RotationPlacementTest, RotationLayoutIsContiguousModulo) {
  const Placement p = Placement::rotation(4, 6, 0.5);  // 3 copies
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(p.holders(s).contains((s + c) % 6));
    }
  }
}

TEST(RotationPlacementTest, BalancedWhenSubDbsMultipleOfWorkers) {
  const Placement p = Placement::rotation(10, 10, 0.3);
  for (tasks::ProcessorId w = 0; w < 10; ++w) {
    EXPECT_EQ(p.held_by(w), 3u);
  }
}

TEST(RotationPlacementTest, FullReplicationGivesGlobalDatabaseEverywhere) {
  const Placement p = Placement::rotation(10, 8, 1.0);
  for (std::uint32_t s = 0; s < 10; ++s) {
    EXPECT_EQ(p.holders(s).count(), 8u);
  }
  for (tasks::ProcessorId w = 0; w < 8; ++w) {
    EXPECT_EQ(p.held_by(w), 10u);
  }
}

TEST(RotationPlacementTest, MinimalReplicationPinsEachSubDbOnce) {
  const Placement p = Placement::rotation(10, 10, 0.1);
  for (std::uint32_t s = 0; s < 10; ++s) {
    EXPECT_EQ(p.holders(s).count(), 1u);
    EXPECT_TRUE(p.holders(s).contains(s));
  }
}

TEST(RandomPlacementTest, RespectsCopyCountAndBounds) {
  Xoshiro256ss rng(9);
  const Placement p = Placement::random(10, 6, 0.5, rng);
  EXPECT_EQ(p.copies(), 3u);
  for (std::uint32_t s = 0; s < 10; ++s) {
    EXPECT_EQ(p.holders(s).count(), 3u);
    for (tasks::ProcessorId w : p.holders(s).to_vector()) {
      EXPECT_LT(w, 6u);
    }
  }
}

TEST(RandomPlacementTest, DeterministicGivenSeed) {
  Xoshiro256ss rng1(10), rng2(10);
  const Placement a = Placement::random(6, 8, 0.4, rng1);
  const Placement b = Placement::random(6, 8, 0.4, rng2);
  for (std::uint32_t s = 0; s < 6; ++s) {
    EXPECT_EQ(a.holders(s), b.holders(s));
  }
}

TEST(PlacementAccessorsTest, ReportConfiguration) {
  const Placement p = Placement::rotation(5, 7, 0.6);
  EXPECT_EQ(p.num_subdbs(), 5u);
  EXPECT_EQ(p.num_workers(), 7u);
  EXPECT_DOUBLE_EQ(p.replication_rate(), 0.6);
}

}  // namespace
}  // namespace rtds::db
