#include "db/database.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace rtds::db {
namespace {

DatabaseConfig small_config() {
  DatabaseConfig cfg;
  cfg.num_subdbs = 4;
  cfg.records_per_subdb = 200;
  cfg.num_attributes = 5;
  cfg.domain_size = 20;
  cfg.check_cost = usec(10);
  return cfg;
}

TEST(DatabaseConfigTest, Validation) {
  Xoshiro256ss rng(1);
  DatabaseConfig cfg = small_config();
  cfg.num_subdbs = 0;
  EXPECT_THROW(GlobalDatabase(cfg, rng), InvalidArgument);
  cfg = small_config();
  cfg.check_cost = SimDuration::zero();
  EXPECT_THROW(GlobalDatabase(cfg, rng), InvalidArgument);
}

TEST(GlobalDatabaseTest, PopulatesAllSubDatabases) {
  Xoshiro256ss rng(2);
  const GlobalDatabase db(small_config(), rng);
  EXPECT_EQ(db.num_subdbs(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(db.subdb(s).id(), s);
    EXPECT_EQ(db.subdb(s).records().size(), 200u);
    for (const Record& rec : db.subdb(s).records()) {
      EXPECT_EQ(rec.size(), 5u);
    }
  }
  EXPECT_THROW(static_cast<void>(db.subdb(4)), InvalidArgument);
}

TEST(GlobalDatabaseTest, EncodingRoundTrips) {
  Xoshiro256ss rng(3);
  const GlobalDatabase db(small_config(), rng);
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t a = 0; a < 5; ++a) {
      for (std::uint32_t off : {0u, 7u, 19u}) {
        const AttrValue v = db.encode(s, a, off);
        EXPECT_EQ(db.owner_subdb(v), s);
        EXPECT_EQ(db.attribute_of(v), a);
      }
    }
  }
  EXPECT_THROW(static_cast<void>(db.encode(4, 0, 0)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(db.encode(0, 5, 0)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(db.encode(0, 0, 20)), InvalidArgument);
}

TEST(GlobalDatabaseTest, DomainsAreDisjointAcrossSubDatabases) {
  // The paper's simplification: a value identifies its sub-database.
  Xoshiro256ss rng(4);
  const GlobalDatabase db(small_config(), rng);
  std::set<AttrValue> seen_values[4];
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (const Record& rec : db.subdb(s).records()) {
      for (AttrValue v : rec) {
        EXPECT_EQ(db.owner_subdb(v), s);
        seen_values[s].insert(v);
      }
    }
  }
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t t = s + 1; t < 4; ++t) {
      for (AttrValue v : seen_values[s]) {
        EXPECT_EQ(seen_values[t].count(v), 0u);
      }
    }
  }
}

TEST(GlobalDatabaseTest, RecordValuesMatchDeclaredAttribute) {
  Xoshiro256ss rng(5);
  const GlobalDatabase db(small_config(), rng);
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (const Record& rec : db.subdb(s).records()) {
      for (std::uint32_t a = 0; a < rec.size(); ++a) {
        EXPECT_EQ(db.attribute_of(rec[a]), a);
      }
    }
  }
}

TEST(GlobalDatabaseTest, GlobalIndexMatchesActualFrequencies) {
  Xoshiro256ss rng(6);
  const GlobalDatabase db(small_config(), rng);
  // Recount key frequencies by scanning and compare with the index.
  std::unordered_map<AttrValue, std::uint32_t> recount;
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (const Record& rec : db.subdb(s).records()) {
      ++recount[rec[kKeyAttribute]];
    }
  }
  for (const auto& [value, freq] : recount) {
    EXPECT_EQ(db.key_frequency(value), freq);
  }
  // Absent value: frequency 0.
  EXPECT_EQ(db.key_frequency(db.encode(0, 1, 0)), 0u);
}

TEST(SubDatabaseTest, KeyLookupAgreesWithScan) {
  Xoshiro256ss rng(7);
  const GlobalDatabase db(small_config(), rng);
  const SubDatabase& sd = db.subdb(1);
  for (std::uint32_t off = 0; off < 20; ++off) {
    const AttrValue key = db.encode(1, kKeyAttribute, off);
    const auto rows = sd.key_lookup(key);
    std::uint32_t scanned = 0;
    for (const Record& rec : sd.records()) {
      if (rec[kKeyAttribute] == key) ++scanned;
    }
    EXPECT_EQ(rows.size(), scanned);
    for (std::uint32_t r : rows) {
      EXPECT_EQ(sd.records()[r][kKeyAttribute], key);
    }
  }
}

TEST(SubDatabaseTest, ExecuteWithKeyUsesIndexPath) {
  Xoshiro256ss rng(8);
  const GlobalDatabase db(small_config(), rng);
  const SubDatabase& sd = db.subdb(0);
  // Find a key value that actually occurs.
  const AttrValue key = sd.records()[0][kKeyAttribute];
  Transaction txn;
  txn.subdb = 0;
  txn.predicates = {{kKeyAttribute, key}};
  const QueryResult r = sd.execute(txn);
  EXPECT_EQ(r.checked, sd.key_lookup(key).size());
  EXPECT_EQ(r.matched, r.checked);  // single key predicate: all match
}

TEST(SubDatabaseTest, ExecuteWithoutKeyScansEverything) {
  Xoshiro256ss rng(9);
  const GlobalDatabase db(small_config(), rng);
  const SubDatabase& sd = db.subdb(2);
  Transaction txn;
  txn.subdb = 2;
  txn.predicates = {{1u, db.encode(2, 1, 3)}};
  const QueryResult r = sd.execute(txn);
  EXPECT_EQ(r.checked, 200u);
  // Matched count equals a hand scan.
  std::uint32_t expect = 0;
  for (const Record& rec : sd.records()) {
    if (rec[1] == txn.predicates[0].value) ++expect;
  }
  EXPECT_EQ(r.matched, expect);
}

TEST(SubDatabaseTest, ConjunctionNarrowsMatches) {
  Xoshiro256ss rng(10);
  const GlobalDatabase db(small_config(), rng);
  const SubDatabase& sd = db.subdb(0);
  const Record& probe = sd.records()[5];
  Transaction one;
  one.subdb = 0;
  one.predicates = {{kKeyAttribute, probe[kKeyAttribute]}};
  Transaction both;
  both.subdb = 0;
  both.predicates = {{kKeyAttribute, probe[kKeyAttribute]}, {2u, probe[2]}};
  EXPECT_GE(sd.execute(one).matched, sd.execute(both).matched);
  EXPECT_GE(sd.execute(both).matched, 1u);  // probe row itself matches
}

TEST(EstimateCostTest, KeyTransactionUsesFrequency) {
  Xoshiro256ss rng(11);
  const GlobalDatabase db(small_config(), rng);
  const AttrValue key = db.subdb(0).records()[0][kKeyAttribute];
  Transaction txn;
  txn.subdb = 0;
  txn.predicates = {{kKeyAttribute, key}};
  const SimDuration expected =
      small_config().check_cost * std::int64_t(db.key_frequency(key));
  EXPECT_EQ(db.estimate_cost(txn), expected);
}

TEST(EstimateCostTest, NonKeyTransactionCostsFullSubScan) {
  Xoshiro256ss rng(12);
  const GlobalDatabase db(small_config(), rng);
  Transaction txn;
  txn.subdb = 1;
  txn.predicates = {{3u, db.encode(1, 3, 0)}};
  EXPECT_EQ(db.estimate_cost(txn), usec(10) * 200);
}

TEST(EstimateCostTest, AbsentKeyValueCostsOneProbe) {
  Xoshiro256ss rng(13);
  DatabaseConfig cfg = small_config();
  cfg.domain_size = 10000;  // nearly all key values unused
  const GlobalDatabase db(cfg, rng);
  AttrValue absent = 0;
  bool found = false;
  for (std::uint32_t off = 0; off < cfg.domain_size && !found; ++off) {
    absent = db.encode(0, kKeyAttribute, off);
    found = db.key_frequency(absent) == 0;
  }
  ASSERT_TRUE(found);
  Transaction txn;
  txn.subdb = 0;
  txn.predicates = {{kKeyAttribute, absent}};
  EXPECT_EQ(db.estimate_cost(txn), cfg.check_cost);
  EXPECT_THROW(static_cast<void>(db.estimate_cost(Transaction{})), InvalidArgument);
}

TEST(EstimateCostTest, EstimateUpperBoundsActualCheckedTuples) {
  // The estimator is a worst case: checked tuples never exceed it.
  Xoshiro256ss rng(14);
  const GlobalDatabase db(small_config(), rng);
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t off = 0; off < 20; ++off) {
      Transaction with_key;
      with_key.subdb = s;
      with_key.predicates = {{kKeyAttribute, db.encode(s, kKeyAttribute, off)},
                             {1u, db.encode(s, 1, off)}};
      const auto iters_bound =
          db.estimate_cost(with_key) / small_config().check_cost;
      EXPECT_LE(db.execute(with_key).checked, std::uint64_t(iters_bound));
    }
  }
}

TEST(GlobalDatabaseTest, DeterministicForSeed) {
  Xoshiro256ss rng1(15), rng2(15);
  const GlobalDatabase a(small_config(), rng1);
  const GlobalDatabase b(small_config(), rng2);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.subdb(s).records(), b.subdb(s).records());
  }
}

}  // namespace
}  // namespace rtds::db
