// Tests of first-match query semantics and actual-cost derivation — the
// database side of the resource-reclaiming extension.
#include <gtest/gtest.h>

#include "db/database.h"
#include "db/placement.h"
#include "db/transaction.h"

namespace rtds::db {
namespace {

DatabaseConfig small_config() {
  DatabaseConfig cfg;
  cfg.num_subdbs = 4;
  cfg.records_per_subdb = 200;
  cfg.num_attributes = 5;
  cfg.domain_size = 20;
  cfg.check_cost = usec(10);
  return cfg;
}

TEST(QueryModeTest, FirstMatchStopsAtFirstHit) {
  Xoshiro256ss rng(1);
  const GlobalDatabase db(small_config(), rng);
  const SubDatabase& sd = db.subdb(0);
  // A key value with multiple rows: first-match checks fewer tuples.
  AttrValue key = 0;
  for (std::uint32_t off = 0; off < 20; ++off) {
    key = db.encode(0, kKeyAttribute, off);
    if (db.key_frequency(key) >= 3) break;
  }
  ASSERT_GE(db.key_frequency(key), 3u);
  Transaction txn;
  txn.subdb = 0;
  txn.predicates = {{kKeyAttribute, key}};
  const QueryResult all = sd.execute(txn, QueryMode::kAllMatches);
  const QueryResult first = sd.execute(txn, QueryMode::kFirstMatch);
  EXPECT_EQ(first.matched, 1u);
  EXPECT_EQ(first.checked, 1u);  // key rows all match a pure key predicate
  EXPECT_GT(all.matched, first.matched);
}

TEST(QueryModeTest, FirstMatchEqualsAllWhenNothingMatches) {
  Xoshiro256ss rng(2);
  const GlobalDatabase db(small_config(), rng);
  // Conjunction unlikely to be satisfied: key + 3 specific attributes.
  Transaction txn;
  txn.subdb = 1;
  txn.predicates = {{1u, db.encode(1, 1, 0)},
                    {2u, db.encode(1, 2, 1)},
                    {3u, db.encode(1, 3, 2)},
                    {4u, db.encode(1, 4, 3)}};
  const QueryResult all = db.execute(txn, QueryMode::kAllMatches);
  const QueryResult first = db.execute(txn, QueryMode::kFirstMatch);
  if (all.matched == 0) {
    EXPECT_EQ(first.checked, all.checked);  // scanned everything either way
  } else {
    EXPECT_LE(first.checked, all.checked);
  }
}

TEST(QueryModeTest, FirstMatchNeverChecksMore) {
  Xoshiro256ss rng(3);
  const GlobalDatabase db(small_config(), rng);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 300;
  for (const Transaction& txn : generate_transactions(db, cfg, rng)) {
    const QueryResult all = db.execute(txn, QueryMode::kAllMatches);
    const QueryResult first = db.execute(txn, QueryMode::kFirstMatch);
    EXPECT_LE(first.checked, all.checked);
    EXPECT_LE(first.matched, 1u);
  }
}

TEST(ActualCostTest, BoundedByEstimateAndPositive) {
  Xoshiro256ss rng(4);
  const GlobalDatabase db(small_config(), rng);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 300;
  for (const Transaction& txn : generate_transactions(db, cfg, rng)) {
    for (QueryMode mode : {QueryMode::kAllMatches, QueryMode::kFirstMatch}) {
      const SimDuration actual = db.actual_cost(txn, mode);
      EXPECT_GT(actual, SimDuration::zero());
      EXPECT_LE(actual, db.estimate_cost(txn));
    }
  }
}

TEST(ActualCostTest, ToTaskFillsActualWhenRequested) {
  Xoshiro256ss rng(5);
  const GlobalDatabase db(small_config(), rng);
  const Placement placement = Placement::rotation(4, 4, 0.5);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 100;
  const auto txns = generate_transactions(db, cfg, rng);

  const auto plain = to_tasks(txns, db, placement, cfg);
  for (const tasks::Task& t : plain) {
    EXPECT_TRUE(t.actual_processing.is_zero());
    EXPECT_EQ(t.effective_processing(), t.processing);
  }

  TransactionWorkloadConfig filled_cfg = cfg;
  filled_cfg.fill_actual_costs = true;
  const auto filled = to_tasks(txns, db, placement, filled_cfg);
  bool any_cheaper = false;
  for (std::size_t i = 0; i < filled.size(); ++i) {
    EXPECT_LE(filled[i].effective_processing(), filled[i].processing);
    EXPECT_EQ(filled[i].actual_processing,
              db.actual_cost(txns[i], QueryMode::kFirstMatch));
    if (filled[i].effective_processing() < filled[i].processing) {
      any_cheaper = true;
    }
  }
  EXPECT_TRUE(any_cheaper);  // first-match must save somewhere
}

}  // namespace
}  // namespace rtds::db
