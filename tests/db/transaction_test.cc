#include "db/transaction.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace rtds::db {
namespace {

DatabaseConfig paper_config() {
  DatabaseConfig cfg;  // defaults are the paper's: 10 x 1000 x 10
  cfg.check_cost = usec(20);
  return cfg;
}

TEST(GenerateTransactionsTest, CountAndIds) {
  Xoshiro256ss rng(1);
  const GlobalDatabase db(paper_config(), rng);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 250;
  const auto txns = generate_transactions(db, cfg, rng);
  ASSERT_EQ(txns.size(), 250u);
  for (std::uint32_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(txns[i].id, i);
  }
}

TEST(GenerateTransactionsTest, PredicatesWellFormed) {
  Xoshiro256ss rng(2);
  const GlobalDatabase db(paper_config(), rng);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 500;
  for (const Transaction& txn : generate_transactions(db, cfg, rng)) {
    EXPECT_GE(txn.predicates.size(), 1u);
    EXPECT_LE(txn.predicates.size(), 10u);
    std::set<std::uint32_t> attrs;
    for (const Predicate& p : txn.predicates) {
      EXPECT_LT(p.attribute, 10u);
      EXPECT_TRUE(attrs.insert(p.attribute).second);  // distinct attributes
      // Values belong to the transaction's sub-database and attribute.
      EXPECT_EQ(db.owner_subdb(p.value), txn.subdb);
      EXPECT_EQ(db.attribute_of(p.value), p.attribute);
    }
  }
}

TEST(GenerateTransactionsTest, SubDatabasesRoughlyUniform) {
  Xoshiro256ss rng(3);
  const GlobalDatabase db(paper_config(), rng);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 5000;
  std::vector<int> counts(10, 0);
  for (const Transaction& txn : generate_transactions(db, cfg, rng)) {
    ++counts[txn.subdb];
  }
  for (int c : counts) EXPECT_NEAR(c, 500, 120);
}

TEST(GenerateTransactionsTest, MaxPredicatesHonored) {
  Xoshiro256ss rng(4);
  const GlobalDatabase db(paper_config(), rng);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 200;
  cfg.max_predicates = 2;
  for (const Transaction& txn : generate_transactions(db, cfg, rng)) {
    EXPECT_LE(txn.predicates.size(), 2u);
  }
  cfg.max_predicates = 11;
  EXPECT_THROW(generate_transactions(db, cfg, rng), InvalidArgument);
}

TEST(ToTaskTest, DeadlineFollowsPaperFormula) {
  Xoshiro256ss rng(5);
  const GlobalDatabase db(paper_config(), rng);
  const Placement placement = Placement::rotation(10, 10, 0.3);
  TransactionWorkloadConfig cfg;
  cfg.scaling_factor = 2.0;
  cfg.deadline_multiplier = 10.0;
  cfg.burst_arrival = SimTime::zero() + msec(7);
  const auto txns = generate_transactions(db, cfg, rng);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const tasks::Task t = to_task(txns[i], db, placement, cfg, i);
    EXPECT_EQ(t.processing, db.estimate_cost(txns[i]));
    EXPECT_EQ(t.arrival, cfg.burst_arrival);
    // Deadline window = SF * 10 * cost.
    EXPECT_EQ((t.deadline - t.arrival).us, 20 * t.processing.us);
    EXPECT_EQ(t.affinity, placement.holders(txns[i].subdb));
  }
}

TEST(ToTaskTest, ValidatesConfig) {
  Xoshiro256ss rng(6);
  const GlobalDatabase db(paper_config(), rng);
  const Placement placement = Placement::rotation(10, 4, 0.5);
  TransactionWorkloadConfig cfg;
  const auto txns = generate_transactions(db, cfg, rng);
  cfg.scaling_factor = 0.0;
  EXPECT_THROW(to_task(txns[0], db, placement, cfg, 0), InvalidArgument);
  cfg.scaling_factor = 1.0;
  cfg.deadline_multiplier = -1.0;
  EXPECT_THROW(to_task(txns[0], db, placement, cfg, 0), InvalidArgument);
}

TEST(ToTasksTest, SequentialIdsAndSizes) {
  Xoshiro256ss rng(7);
  const GlobalDatabase db(paper_config(), rng);
  const Placement placement = Placement::rotation(10, 6, 0.5);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 100;
  cfg.first_task_id = 500;
  const auto txns = generate_transactions(db, cfg, rng);
  const auto tasks = to_tasks(txns, db, placement, cfg);
  ASSERT_EQ(tasks.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tasks[i].id, 500 + i);
  }
}

TEST(ToTasksTest, KeyTransactionsAreCheaperThanScans) {
  Xoshiro256ss rng(8);
  const GlobalDatabase db(paper_config(), rng);
  const Placement placement = Placement::rotation(10, 10, 0.3);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 1000;
  const auto txns = generate_transactions(db, cfg, rng);
  const auto tasks = to_tasks(txns, db, placement, cfg);
  double key_total = 0, scan_total = 0;
  std::uint32_t key_n = 0, scan_n = 0;
  for (std::uint32_t i = 0; i < txns.size(); ++i) {
    if (txns[i].references_key()) {
      key_total += double(tasks[i].processing.us);
      ++key_n;
    } else {
      scan_total += double(tasks[i].processing.us);
      ++scan_n;
    }
  }
  ASSERT_GT(key_n, 0u);
  ASSERT_GT(scan_n, 0u);
  EXPECT_LT(key_total / key_n, scan_total / scan_n / 10.0);
  // Every scan transaction costs exactly r/d checks.
  for (std::uint32_t i = 0; i < txns.size(); ++i) {
    if (!txns[i].references_key()) {
      EXPECT_EQ(tasks[i].processing, usec(20) * 1000);
    }
  }
}

TEST(TransactionExecutionTest, EstimateBoundsActualWorkAcrossStream) {
  // End-to-end property over a large stream: worst-case estimate >= actual
  // checked tuples, and executing the transaction touches only its subdb.
  Xoshiro256ss rng(9);
  const GlobalDatabase db(paper_config(), rng);
  TransactionWorkloadConfig cfg;
  cfg.num_transactions = 500;
  for (const Transaction& txn : generate_transactions(db, cfg, rng)) {
    const QueryResult qr = db.execute(txn);
    const auto bound = db.estimate_cost(txn) / paper_config().check_cost;
    EXPECT_LE(qr.checked, std::uint64_t(bound));
  }
}

}  // namespace
}  // namespace rtds::db
