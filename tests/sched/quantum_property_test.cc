// Property tests for the Sec. 4.2 quantum criterion (Fig. 3):
//
//   (1) allocate(Min_Slack, Min_Load) is exactly
//       clamp(max(Min_Slack, Min_Load), min_quantum, max_quantum) —
//       randomized over the input domain, not just a few points;
//   (2) in a full pipeline run, every phase's Q_s(j) respects the paper's
//       bound Q_s <= max(Min_Slack, Min_Load) whenever the bound is above
//       the minimum-progress clamp;
//   (3) the quantum_floor_overrides counter fires exactly when the progress
//       floor (phase_overhead + vertex_cost) binds — no over- or
//       under-counting, cross-checked phase by phase against the trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "machine/cluster.h"
#include "sched/backend.h"
#include "sched/pipeline.h"
#include "sched/presets.h"
#include "sched/quantum.h"
#include "sched/trace.h"
#include "sim/simulator.h"
#include "tasks/task.h"
#include "tasks/workload.h"

namespace rtds {
namespace {

using sched::RunMetrics;

TEST(QuantumPropertyTest, AllocateIsClampOfMaxSlackLoad) {
  Xoshiro256ss rng(derive_seed(0xA10C, stream_id("quantum.property"), 0));
  for (int i = 0; i < 2000; ++i) {
    const SimDuration min_q = usec(rng.uniform_int(0, 5000));
    const SimDuration max_q = min_q + usec(rng.uniform_int(0, 50000));
    const sched::SelfAdjustingQuantum policy(min_q, max_q);
    const SimDuration slack = usec(rng.uniform_int(0, 100000));
    const SimDuration load = usec(rng.uniform_int(0, 100000));
    const SimDuration got = policy.allocate(slack, load);
    const SimDuration bound = std::max(slack, load);
    const SimDuration expected = std::clamp(bound, min_q, max_q);
    ASSERT_EQ(got, expected)
        << "slack " << slack.us << "us load " << load.us << "us clamp ["
        << min_q.us << ", " << max_q.us << "]us";
    // The paper's inequality, in the regime where the clamp is not binding.
    if (bound >= min_q) {
      ASSERT_LE(got.us, bound.us);
    }
  }
}

/// Runs a generated workload through the pipeline and returns the trace +
/// metrics for phase-by-phase auditing.
std::pair<std::vector<sched::PhaseRecord>, RunMetrics> traced_run(
    const sched::QuantumPolicy& quantum, const sched::PipelineConfig& config,
    std::uint64_t seed) {
  constexpr std::uint32_t kWorkers = 4;
  tasks::WorkloadConfig wc;
  wc.num_tasks = 60;
  wc.num_processors = kWorkers;
  wc.laxity_min = 2.0;
  wc.laxity_max = 10.0;
  Xoshiro256ss rng(seed);
  const auto wl = tasks::generate_workload(wc, rng);

  const auto algo = sched::make_rt_sads();
  machine::Cluster cluster(
      kWorkers, machine::Interconnect::cut_through(kWorkers, msec(1)));
  sim::Simulator sim;
  sched::SimBackend backend(cluster, sim);
  sched::PhaseTraceRecorder trace;
  const sched::PhasePipeline pipeline(*algo, quantum, config);
  const RunMetrics m = pipeline.run(wl, backend, &trace);
  return {trace.records(), m};
}

TEST(QuantumPropertyTest, PipelineQuantaRespectPaperBound) {
  const SimDuration min_q = usec(200);
  const SimDuration max_q = msec(10);
  const auto quantum = sched::make_self_adjusting_quantum(min_q, max_q);
  sched::PipelineConfig config;  // defaults: floor = 50us + 10us << min_q
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const auto [phases, metrics] = traced_run(
        *quantum, config, derive_seed(0xB0B0, stream_id("quantum.bound"), rep));
    ASSERT_FALSE(phases.empty());
    for (const sched::PhaseRecord& r : phases) {
      const SimDuration bound = std::max(r.min_slack, r.min_load);
      ASSERT_EQ(r.quantum, std::clamp(bound, min_q, max_q))
          << "phase " << r.index;
      if (!r.quantum_floor_override && bound >= min_q) {
        ASSERT_LE(r.quantum.us, bound.us) << "phase " << r.index;
      }
    }
    EXPECT_EQ(metrics.quantum_floor_overrides, 0u)
        << "floor cannot bind when min_quantum exceeds it";
  }
}

TEST(QuantumPropertyTest, FloorOverrideCounterFiresExactlyWhenFloorBinds) {
  // A fixed quantum BELOW the progress floor forces the override on every
  // phase; the counter and the per-phase flags must agree exactly.
  sched::PipelineConfig config;
  config.vertex_generation_cost = usec(10);
  config.phase_overhead = usec(50);
  const SimDuration floor =
      config.phase_overhead + config.vertex_generation_cost;
  const auto tiny = sched::make_fixed_quantum(usec(20));  // 20us < 60us floor
  const auto [phases, metrics] = traced_run(
      *tiny, config, derive_seed(0xF10, stream_id("quantum.floor"), 0));
  ASSERT_FALSE(phases.empty());
  std::uint64_t overrides = 0;
  for (const sched::PhaseRecord& r : phases) {
    ASSERT_TRUE(r.quantum_floor_override) << "phase " << r.index;
    ASSERT_EQ(r.quantum, floor) << "phase " << r.index;
    ++overrides;
  }
  EXPECT_EQ(metrics.quantum_floor_overrides, overrides);
  EXPECT_EQ(metrics.quantum_floor_overrides, metrics.phases);

  // And a fixed quantum above the floor never fires it.
  const auto roomy = sched::make_fixed_quantum(msec(2));
  const auto [phases2, metrics2] = traced_run(
      *roomy, config, derive_seed(0xF10, stream_id("quantum.floor"), 1));
  EXPECT_EQ(metrics2.quantum_floor_overrides, 0u);
  for (const sched::PhaseRecord& r : phases2) {
    ASSERT_FALSE(r.quantum_floor_override) << "phase " << r.index;
  }
}

TEST(QuantumPropertyTest, SelfAdjustingFloorOverrideUnderStarvedClamp) {
  // Self-adjusting policy with max_quantum below the floor: every phase's
  // allocation is raised to the floor and flagged.
  sched::PipelineConfig config;
  config.vertex_generation_cost = usec(10);
  config.phase_overhead = usec(100);
  const SimDuration floor =
      config.phase_overhead + config.vertex_generation_cost;
  const auto starved = sched::make_self_adjusting_quantum(usec(1), usec(40));
  const auto [phases, metrics] = traced_run(
      *starved, config, derive_seed(0xF10, stream_id("quantum.floor"), 2));
  ASSERT_FALSE(phases.empty());
  for (const sched::PhaseRecord& r : phases) {
    ASSERT_TRUE(r.quantum_floor_override) << "phase " << r.index;
    ASSERT_EQ(r.quantum, floor) << "phase " << r.index;
  }
  EXPECT_EQ(metrics.quantum_floor_overrides, metrics.phases);
}

}  // namespace
}  // namespace rtds
