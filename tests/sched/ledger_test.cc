#include "sched/ledger.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::sched {
namespace {

TEST(TaskLedgerTest, FullLifecycleToDeadlineHit) {
  TaskLedger ledger;
  ledger.arrive(1);
  EXPECT_EQ(ledger.state(1), TaskState::kArrived);
  ledger.admit(1);
  ledger.schedule(1);
  ledger.deliver(1);
  ledger.execute(1, /*hit=*/true);
  EXPECT_EQ(ledger.state(1), TaskState::kDeadlineHit);
  EXPECT_TRUE(ledger.counts().conserved());
  EXPECT_EQ(ledger.counts().deadline_hits, 1u);
}

TEST(TaskLedgerTest, DropReturnsTaskToBatchedForAnotherRound) {
  TaskLedger ledger;
  ledger.arrive(7);
  ledger.admit(7);
  ledger.schedule(7);
  ledger.drop(7);  // delivery refused: readmitted
  EXPECT_EQ(ledger.state(7), TaskState::kBatched);
  ledger.schedule(7);
  ledger.deliver(7);
  ledger.execute(7, /*hit=*/false);
  EXPECT_EQ(ledger.state(7), TaskState::kExecMiss);
  EXPECT_TRUE(ledger.counts().conserved());
  EXPECT_EQ(ledger.counts().exec_misses, 1u);
}

TEST(TaskLedgerTest, CullAndRejectAreTerminal) {
  TaskLedger ledger;
  ledger.arrive(1);
  ledger.admit(1);
  ledger.cull(1);
  ledger.arrive(2);
  ledger.admit(2);
  ledger.schedule(2);
  ledger.reject(2);
  EXPECT_EQ(ledger.state(1), TaskState::kCulled);
  EXPECT_EQ(ledger.state(2), TaskState::kRejected);
  const LedgerCounts& c = ledger.counts();
  EXPECT_TRUE(c.conserved());
  EXPECT_EQ(c.culled, 1u);
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_EQ(c.total, 2u);
}

TEST(TaskLedgerTest, IllegalTransitionsThrow) {
  TaskLedger ledger;
  ledger.arrive(1);
  EXPECT_THROW(ledger.schedule(1), InvariantViolation);  // not batched yet
  ledger.admit(1);
  EXPECT_THROW(ledger.deliver(1), InvariantViolation);   // not scheduled
  EXPECT_THROW(ledger.execute(1, true), InvariantViolation);
  ledger.schedule(1);
  ledger.deliver(1);
  ledger.execute(1, true);
  EXPECT_THROW(ledger.execute(1, true), InvariantViolation);  // double count
  EXPECT_THROW(ledger.arrive(1), InvariantViolation);         // re-offered
  EXPECT_THROW(ledger.admit(99), InvariantViolation);         // unknown id
}

TEST(TaskLedgerTest, ConservationCheckFlagsInFlightTasks) {
  TaskLedger ledger;
  ledger.arrive(1);
  ledger.admit(1);
  EXPECT_FALSE(ledger.counts().conserved());
  EXPECT_EQ(ledger.counts().in_flight, 1u);
  EXPECT_THROW(ledger.check_conserved(), InvariantViolation);
  ledger.cull(1);
  ledger.check_conserved();  // no throw
}

TEST(TaskLedgerTest, ClearResets) {
  TaskLedger ledger;
  ledger.arrive(1);
  ledger.clear();
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_FALSE(ledger.known(1));
  EXPECT_EQ(ledger.counts().total, 0u);
  EXPECT_TRUE(ledger.counts().conserved());  // vacuously
}

TEST(TaskLedgerTest, StateNamesAreStable) {
  EXPECT_STREQ(to_string(TaskState::kRejected), "rejected");
  EXPECT_STREQ(to_string(TaskState::kDeadlineHit), "deadline_hit");
}

}  // namespace
}  // namespace rtds::sched
