#include "sched/quantum.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::sched {
namespace {

TEST(SelfAdjustingQuantumTest, TakesMaxOfSlackAndLoad) {
  const SelfAdjustingQuantum q(usec(1), sec(10));
  EXPECT_EQ(q.allocate(msec(5), msec(2)), msec(5));
  EXPECT_EQ(q.allocate(msec(2), msec(5)), msec(5));
  EXPECT_EQ(q.allocate(msec(3), msec(3)), msec(3));
}

TEST(SelfAdjustingQuantumTest, ShrinksWhenSlackShrinksAndWorkersIdle) {
  // The motivation of Sec. 4.2: small slack + idle workers -> short phase.
  const SelfAdjustingQuantum q(usec(50), sec(10));
  const SimDuration tight = q.allocate(usec(200), SimDuration::zero());
  const SimDuration loose = q.allocate(msec(50), SimDuration::zero());
  EXPECT_LT(tight, loose);
  EXPECT_EQ(tight, usec(200));
}

TEST(SelfAdjustingQuantumTest, ExtendsToLoadWhenWorkersBusy) {
  // Tasks must wait for workers anyway: use the wait for optimization.
  const SelfAdjustingQuantum q(usec(50), sec(10));
  EXPECT_EQ(q.allocate(usec(200), msec(30)), msec(30));
}

TEST(SelfAdjustingQuantumTest, ClampsToBounds) {
  const SelfAdjustingQuantum q(msec(1), msec(20));
  EXPECT_EQ(q.allocate(usec(10), SimDuration::zero()), msec(1));
  EXPECT_EQ(q.allocate(sec(5), sec(5)), msec(20));
  EXPECT_EQ(q.min_quantum(), msec(1));
  EXPECT_EQ(q.max_quantum(), msec(20));
}

TEST(SelfAdjustingQuantumTest, ValidatesBounds) {
  EXPECT_THROW(SelfAdjustingQuantum(SimDuration::zero(), msec(1)),
               InvalidArgument);
  EXPECT_THROW(SelfAdjustingQuantum(msec(2), msec(1)), InvalidArgument);
}

TEST(SelfAdjustingQuantumTest, NameMentionsBounds) {
  const SelfAdjustingQuantum q(msec(1), msec(20));
  EXPECT_NE(q.name().find("self-adjusting"), std::string::npos);
  EXPECT_NE(q.name().find("1000us"), std::string::npos);
}

TEST(FixedQuantumTest, IgnoresInputs) {
  const FixedQuantum q(msec(7));
  EXPECT_EQ(q.allocate(usec(1), usec(1)), msec(7));
  EXPECT_EQ(q.allocate(sec(100), sec(100)), msec(7));
  EXPECT_THROW(FixedQuantum(SimDuration::zero()), InvalidArgument);
  EXPECT_NE(q.name().find("fixed"), std::string::npos);
}

TEST(QuantumFactoriesTest, ProduceCorrectTypes) {
  const auto sa = make_self_adjusting_quantum(msec(1), msec(10));
  EXPECT_EQ(sa->allocate(msec(4), msec(2)), msec(4));
  const auto fx = make_fixed_quantum(msec(3));
  EXPECT_EQ(fx->allocate(msec(4), msec(2)), msec(3));
}

}  // namespace
}  // namespace rtds::sched
