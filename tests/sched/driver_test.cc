#include "sched/driver.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sched/presets.h"
#include "tasks/workload.h"

namespace rtds::sched {
namespace {

using tasks::AffinitySet;

Task make_task(std::uint32_t id, SimTime arrival, SimDuration p, SimTime d,
               AffinitySet affinity) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.processing = p;
  t.deadline = d;
  t.affinity = affinity;
  return t;
}

struct Fixture {
  explicit Fixture(std::uint32_t workers, SimDuration comm = msec(2))
      : cluster(workers,
                machine::Interconnect::cut_through(workers, comm)) {}
  machine::Cluster cluster;
  sim::Simulator sim;
};

TEST(PhaseSchedulerTest, EmptyWorkload) {
  Fixture f(2);
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum();
  const PhaseScheduler sched(*algo, *q);
  const RunMetrics m = sched.run({}, f.cluster, f.sim);
  EXPECT_EQ(m.total_tasks, 0u);
  EXPECT_EQ(m.phases, 0u);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 1.0);
}

TEST(PhaseSchedulerTest, RejectsUnsortedWorkload) {
  Fixture f(2);
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum();
  const PhaseScheduler sched(*algo, *q);
  std::vector<Task> wl{
      make_task(0, SimTime{100}, msec(1), SimTime{100000},
                AffinitySet::all(2)),
      make_task(1, SimTime{50}, msec(1), SimTime{100000},
                AffinitySet::all(2))};
  EXPECT_THROW(sched.run(wl, f.cluster, f.sim), InvalidArgument);
}

TEST(PhaseSchedulerTest, ValidatesVertexCost) {
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum();
  DriverConfig cfg;
  cfg.vertex_generation_cost = SimDuration::zero();
  EXPECT_THROW(PhaseScheduler(*algo, *q, cfg), InvalidArgument);
}

TEST(PhaseSchedulerTest, SingleTaskIsScheduledAndHits) {
  Fixture f(2);
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  const PhaseScheduler sched(*algo, *q);
  const std::vector<Task> wl{make_task(
      0, SimTime::zero(), msec(5), SimTime::zero() + msec(60),
      AffinitySet::single(1))};
  const RunMetrics m = sched.run(wl, f.cluster, f.sim);
  EXPECT_EQ(m.scheduled, 1u);
  EXPECT_EQ(m.deadline_hits, 1u);
  EXPECT_EQ(m.exec_misses, 0u);
  EXPECT_EQ(m.culled, 0u);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 1.0);
  // The task ran on its affine worker (comm cost would still fit, but the
  // cost function prefers the cheaper placement).
  ASSERT_EQ(f.cluster.log().size(), 1u);
  EXPECT_EQ(f.cluster.log()[0].worker, 1u);
}

TEST(PhaseSchedulerTest, SchedulingOverheadDelaysExecution) {
  // The first delivery cannot happen before one phase has been paid for.
  Fixture f(1, SimDuration::zero());
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  DriverConfig cfg;
  cfg.vertex_generation_cost = usec(10);
  const PhaseScheduler sched(*algo, *q, cfg);
  const std::vector<Task> wl{make_task(0, SimTime::zero(), msec(1),
                                       SimTime::zero() + msec(50),
                                       AffinitySet::single(0))};
  const RunMetrics m = sched.run(wl, f.cluster, f.sim);
  EXPECT_EQ(m.deadline_hits, 1u);
  ASSERT_EQ(f.cluster.log().size(), 1u);
  EXPECT_GT(f.cluster.log()[0].start, SimTime::zero());
  EXPECT_EQ(m.scheduling_time,
            cfg.vertex_generation_cost *
                    std::int64_t(m.vertices_generated) +
                cfg.phase_overhead * std::int64_t(m.phases));
}

TEST(PhaseSchedulerTest, UnreachableTaskIsCulledNotExecuted) {
  Fixture f(2);
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  const PhaseScheduler sched(*algo, *q);
  // Deadline < processing: unreachable from the start.
  const std::vector<Task> wl{make_task(0, SimTime::zero(), msec(10),
                                       SimTime::zero() + msec(2),
                                       AffinitySet::all(2))};
  const RunMetrics m = sched.run(wl, f.cluster, f.sim);
  EXPECT_EQ(m.culled, 1u);
  EXPECT_EQ(m.scheduled, 0u);
  EXPECT_EQ(f.cluster.stats().executed, 0u);
}

TEST(PhaseSchedulerTest, TaskInfeasibleOnlyByCommCostGetsAffineWorker) {
  // Tight deadline, huge C: only the affine worker works.
  Fixture f(4, sec(10));
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(5));
  const PhaseScheduler sched(*algo, *q);
  const std::vector<Task> wl{make_task(0, SimTime::zero(), msec(5),
                                       SimTime::zero() + msec(60),
                                       AffinitySet::single(3))};
  const RunMetrics m = sched.run(wl, f.cluster, f.sim);
  EXPECT_EQ(m.deadline_hits, 1u);
  EXPECT_EQ(f.cluster.log()[0].worker, 3u);
}

TEST(PhaseSchedulerTest, LateArrivalsWakeTheScheduler) {
  Fixture f(2);
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  const PhaseScheduler sched(*algo, *q);
  std::vector<Task> wl;
  wl.push_back(make_task(0, SimTime::zero(), msec(2),
                         SimTime::zero() + msec(40), AffinitySet::all(2)));
  wl.push_back(make_task(1, SimTime::zero() + msec(100), msec(2),
                         SimTime::zero() + msec(140), AffinitySet::all(2)));
  const RunMetrics m = sched.run(wl, f.cluster, f.sim);
  EXPECT_EQ(m.deadline_hits, 2u);
  // Second task cannot start before it arrives.
  ASSERT_EQ(f.cluster.log().size(), 2u);
  EXPECT_GE(f.cluster.log()[1].start, SimTime::zero() + msec(100));
}

TEST(PhaseSchedulerTest, ScheduledTasksNeverReenterBatches) {
  // If a task were double-delivered the executed count would exceed the
  // scheduled count; run a busy workload and check the books balance.
  Fixture f(3);
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(5));
  const PhaseScheduler sched(*algo, *q);
  tasks::WorkloadConfig wc;
  wc.num_tasks = 150;
  wc.num_processors = 3;
  wc.processing_min = usec(500);
  wc.processing_max = msec(3);
  wc.laxity_min = 4.0;
  wc.laxity_max = 12.0;
  Xoshiro256ss rng(5);
  const auto wl = tasks::generate_workload(wc, rng);
  const RunMetrics m = sched.run(wl, f.cluster, f.sim);
  EXPECT_EQ(f.cluster.stats().executed, m.scheduled);
  EXPECT_LE(m.scheduled + m.culled, m.total_tasks);
  EXPECT_EQ(m.scheduled, m.deadline_hits + m.exec_misses);
}

TEST(PhaseSchedulerTest, MetricsAreDeltasOnReusedCluster) {
  Fixture f(2);
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  const PhaseScheduler sched(*algo, *q);
  const std::vector<Task> wl1{make_task(0, SimTime::zero(), msec(2),
                                        SimTime::zero() + msec(40),
                                        AffinitySet::all(2))};
  const RunMetrics m1 = sched.run(wl1, f.cluster, f.sim);
  EXPECT_EQ(m1.deadline_hits, 1u);
  // Second run on the same cluster/sim: its own hit counts only.
  const std::vector<Task> wl2{
      make_task(10, f.sim.now(), msec(2), f.sim.now() + msec(40),
                AffinitySet::all(2)),
      make_task(11, f.sim.now(), msec(2), f.sim.now() + msec(40),
                AffinitySet::all(2))};
  const RunMetrics m2 = sched.run(wl2, f.cluster, f.sim);
  EXPECT_EQ(m2.total_tasks, 2u);
  EXPECT_EQ(m2.deadline_hits, 2u);
}

TEST(PhaseSchedulerTest, FixedQuantumAlsoDrivesPipeline) {
  Fixture f(2);
  const auto algo = make_rt_sads();
  const auto q = make_fixed_quantum(msec(2));
  const PhaseScheduler sched(*algo, *q);
  tasks::WorkloadConfig wc;
  wc.num_tasks = 40;
  wc.num_processors = 2;
  wc.laxity_min = 6.0;
  wc.laxity_max = 10.0;
  Xoshiro256ss rng(6);
  const auto wl = tasks::generate_workload(wc, rng);
  const RunMetrics m = sched.run(wl, f.cluster, f.sim);
  EXPECT_GT(m.phases, 0u);
  EXPECT_EQ(m.exec_misses, 0u);
  // Each phase's allocation is exactly the fixed quantum.
  EXPECT_EQ(m.allocated_quantum, msec(2) * std::int64_t(m.phases));
}

TEST(PhaseSchedulerTest, GreedyBaselinesRunToCompletion) {
  for (const auto& factory :
       {make_edf_first_fit, make_edf_best_fit}) {
    Fixture f(3);
    const auto algo = factory();
    const auto q = make_self_adjusting_quantum(usec(100), msec(5));
    const PhaseScheduler sched(*algo, *q);
    tasks::WorkloadConfig wc;
    wc.num_tasks = 100;
    wc.num_processors = 3;
    wc.laxity_min = 3.0;
    wc.laxity_max = 10.0;
    Xoshiro256ss rng(7);
    const auto wl = tasks::generate_workload(wc, rng);
    const RunMetrics m = sched.run(wl, f.cluster, f.sim);
    EXPECT_EQ(m.exec_misses, 0u);
    EXPECT_EQ(m.scheduled + m.culled, m.total_tasks);
  }
}

TEST(PhaseSchedulerTest, HitRatioBetweenZeroAndOne) {
  Fixture f(4);
  const auto algo = make_d_cols();
  const auto q = make_self_adjusting_quantum(usec(100), msec(5));
  const PhaseScheduler sched(*algo, *q);
  tasks::WorkloadConfig wc;
  wc.num_tasks = 120;
  wc.num_processors = 4;
  wc.laxity_min = 2.0;
  wc.laxity_max = 6.0;
  Xoshiro256ss rng(8);
  const auto wl = tasks::generate_workload(wc, rng);
  const RunMetrics m = sched.run(wl, f.cluster, f.sim);
  EXPECT_GE(m.hit_ratio(), 0.0);
  EXPECT_LE(m.hit_ratio(), 1.0);
  EXPECT_EQ(m.misses() + m.deadline_hits, m.total_tasks);
}

}  // namespace
}  // namespace rtds::sched
