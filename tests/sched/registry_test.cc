// String-keyed algorithm registry: spec parsing, canonical-name fixpoint,
// malformed-spec rejection, and config equivalence with the presets the
// FIG5/FIG6 goldens are pinned to.
#include "sched/registry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "sched/algorithm.h"
#include "sched/portfolio.h"
#include "sched/presets.h"

namespace rtds::sched {
namespace {

const AlgorithmRegistry& reg() { return AlgorithmRegistry::builtin(); }

TEST(RegistryTest, ListsThePortfolio) {
  const std::vector<std::string> expected = {
      "d_cols", "edf_bf", "edf_ff", "multicrit", "myopic", "packing",
      "rt_sads", "search"};
  EXPECT_EQ(reg().keys(), expected);
  for (const std::string& key : expected) {
    EXPECT_TRUE(reg().contains(key));
    EXPECT_FALSE(reg().summary(key).empty());
  }
  EXPECT_FALSE(reg().contains("no_such_algo"));
  EXPECT_THROW((void)reg().summary("no_such_algo"), InvalidArgument);
}

TEST(RegistryTest, CanonicalNameIsAFixpoint) {
  // make(spec)->name() is the canonical spec; feeding it back must
  // reproduce itself exactly (spec -> algorithm -> name() -> spec).
  for (const char* spec : {
           "rt_sads", "rt_sads?cost=off", "rt_sads?order=min_comm",
           "rt_sads?cost=off&order=index", "d_cols",
           "d_cols?max_successors=8", "d_cols?level_order=least_loaded",
           "edf_ff", "edf_bf", "myopic", "myopic?window=3", "packing",
           "packing?fit=best", "packing?fit=best&order=lpt", "multicrit",
           "multicrit?sort=min_slack&fit=worst",
           "multicrit?sort=lpt&fit=next", "search", "search?threads=2",
           "search?repr=seq&strategy=best&cost=off", "rt_sads?threads=4",
           "d_cols?max_successors=4&threads=8"}) {
    const std::string name = reg().make(spec)->name();
    EXPECT_EQ(reg().make(name)->name(), name) << "spec " << spec;
  }
}

TEST(RegistryTest, CanonicalizationNormalizesSpecs) {
  // Default-valued parameters are dropped, numbers are normalized, and
  // surviving parameters appear in the factory's read order.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"rt_sads", "rt_sads"},
      {"rt_sads?cost=on", "rt_sads"},
      {"rt_sads?order=min_end&cost=on", "rt_sads"},
      {"rt_sads?order=index&cost=off", "rt_sads?cost=off&order=index"},
      {"d_cols?max_successors=0", "d_cols"},
      {"d_cols?max_successors=008", "d_cols?max_successors=8"},
      {"myopic?window=5", "myopic"},
      {"packing?order=edf&fit=first", "packing"},
      {"packing?order=lpt&fit=best", "packing?fit=best&order=lpt"},
      {"multicrit?fit=next&sort=lpt", "multicrit?sort=lpt&fit=next"},
      {"multicrit?sort=density", "multicrit"},
      {"rt_sads?threads=1", "rt_sads"},
      {"rt_sads?threads=04", "rt_sads?threads=4"},
      {"search?repr=assign&strategy=dfs&cost=on&threads=1", "search"},
      {"search?threads=2&strategy=best", "search?strategy=best&threads=2"},
  };
  for (const auto& [input, canonical] : cases) {
    const auto result = reg().canonicalize(input);
    ASSERT_TRUE(result.has_value()) << input;
    EXPECT_EQ(*result, canonical) << input;
    EXPECT_EQ(reg().make(input)->name(), canonical) << input;
  }
}

TEST(RegistryTest, RejectsMalformedSpecs) {
  for (const char* spec : {
           "",                         // empty key
           "RT_SADS",                  // uppercase is not a valid word
           "rt-sads",                  // hyphens are not a valid word
           "no_such_algo",             // unknown key
           "rt_sads?",                 // dangling '?'
           "rt_sads?cost",             // parameter without '='
           "rt_sads?cost=",            // empty value
           "rt_sads?=on",              // empty name
           "rt_sads?cost=on&",         // dangling '&'
           "rt_sads?cost=on&&order=index",  // empty parameter item
           "rt_sads?cost=on&cost=off",      // duplicate parameter
           "rt_sads?cost=on=off",           // '=' inside a value
           "rt_sads?bogus=1",               // unknown parameter
           "rt_sads?cost=maybe",            // out-of-domain choice
           "d_cols?max_successors=abc",     // non-numeric u32
           "d_cols?max_successors=-1",      // negative u32
           "myopic?window=0",               // below the domain floor
           "packing?fit=worst",   // worst-fit is multicrit-only
           "packing?sort=lpt",    // packing spells the axis 'order'
           "rt_sads?threads=0",   // zero threads is meaningless
           "search?threads=0",
           "search?threads=65",   // above the engine's shard ceiling
           "search?threads=abc",  // non-numeric u32
           "d_cols?threads=-1",   // negative u32
           "search?repr=tree",    // out-of-domain representation
           "edf_ff?threads=2",    // threads is a tree-search-only knob
       }) {
    EXPECT_THROW((void)reg().make(spec), InvalidArgument) << spec;
    EXPECT_FALSE(reg().canonicalize(spec).has_value()) << spec;
  }
}

TEST(RegistryTest, SearchEntrantsMatchThePresetConfigs) {
  // The FIG5/FIG6 goldens pin the preset-built RT-SADS and D-COLS; the
  // registry entries must build byte-equal SearchConfigs or the goldens
  // and the registry would silently diverge.
  const auto config_of = [](const PhaseAlgorithm& a) {
    const auto* ts = dynamic_cast<const TreeSearchAlgorithm*>(&a);
    EXPECT_NE(ts, nullptr);
    return ts->search_config();
  };
  const auto expect_same = [&](const PhaseAlgorithm& a,
                               const PhaseAlgorithm& b) {
    const auto ca = config_of(a);
    const auto cb = config_of(b);
    EXPECT_EQ(ca.representation, cb.representation);
    EXPECT_EQ(ca.strategy, cb.strategy);
    EXPECT_EQ(ca.task_order, cb.task_order);
    EXPECT_EQ(ca.processor_order, cb.processor_order);
    EXPECT_EQ(ca.level_processor_order, cb.level_processor_order);
    EXPECT_EQ(ca.use_load_balance_cost, cb.use_load_balance_cost);
    EXPECT_EQ(ca.max_successors, cb.max_successors);
  };
  expect_same(*reg().make("rt_sads"), *make_rt_sads());
  expect_same(*reg().make("d_cols"), *make_d_cols());
  expect_same(*reg().make("d_cols?max_successors=3"), *make_d_cols_pruned(3));
  // The generic `search` key defaults to the RT-SADS configuration, and a
  // thread count never changes the search config (parallel results are
  // bit-identical to sequential).
  expect_same(*reg().make("search"), *make_rt_sads());
  expect_same(*reg().make("search?threads=4"), *reg().make("search"));
  expect_same(*reg().make("rt_sads?threads=4"), *make_rt_sads());
}

TEST(RegistryTest, ThreadsParameterReachesTheAlgorithm) {
  EXPECT_EQ(reg().make("rt_sads")->threads(), 1u);
  EXPECT_EQ(reg().make("edf_ff")->threads(), 1u);
  EXPECT_EQ(reg().make("rt_sads?threads=4")->threads(), 4u);
  EXPECT_EQ(reg().make("search?threads=2")->threads(), 2u);
  EXPECT_EQ(reg().make("d_cols?threads=64")->threads(), 64u);
}

TEST(RegistryTest, PartitionEntrantsWireTheConfigMatrix) {
  const auto config_of = [](const std::string& spec) {
    const auto algo = reg().make(spec);
    const auto* p = dynamic_cast<const PartitionScheduler*>(algo.get());
    EXPECT_NE(p, nullptr) << spec;
    return p->config();
  };
  EXPECT_EQ(config_of("packing").sort, PartitionSort::kDeadline);
  EXPECT_EQ(config_of("packing").fit, PartitionFit::kFirstFit);
  EXPECT_EQ(config_of("packing?fit=best&order=lpt").sort, PartitionSort::kLpt);
  EXPECT_EQ(config_of("packing?fit=best&order=lpt").fit,
            PartitionFit::kBestFit);
  EXPECT_EQ(config_of("multicrit").sort, PartitionSort::kDensity);
  EXPECT_EQ(config_of("multicrit?sort=min_slack&fit=worst").sort,
            PartitionSort::kMinSlack);
  EXPECT_EQ(config_of("multicrit?sort=min_slack&fit=worst").fit,
            PartitionFit::kWorstFit);
  EXPECT_EQ(config_of("multicrit?sort=edf&fit=next").fit,
            PartitionFit::kNextFit);
}

}  // namespace
}  // namespace rtds::sched
