// Property tests for the paper's correction theorem (Sec. 4.3):
//
//   "The tasks scheduled by RT-SADS are guaranteed to meet their deadlines,
//    once executed."
//
// The theorem only needs the predictive feasibility test and the bound
// t_e(j) <= t_c + RQ_s(j), both of which every algorithm in this library
// shares — so we sweep RT-SADS, D-COLS and the greedy baselines across a
// randomized parameter grid and require exec_misses == 0 everywhere.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "machine/cluster.h"
#include "sched/driver.h"
#include "sched/presets.h"
#include "sim/simulator.h"
#include "tasks/workload.h"

namespace rtds::sched {
namespace {

enum class Algo { kRtSads, kDCols, kEdfBestFit, kMyopic };

std::unique_ptr<PhaseAlgorithm> make_algo(Algo a) {
  switch (a) {
    case Algo::kRtSads:
      return make_rt_sads();
    case Algo::kDCols:
      return make_d_cols();
    case Algo::kEdfBestFit:
      return make_edf_best_fit();
    case Algo::kMyopic:
      return make_myopic();
  }
  return nullptr;
}

std::string algo_name(Algo a) {
  switch (a) {
    case Algo::kRtSads:
      return "RtSads";
    case Algo::kDCols:
      return "DCols";
    case Algo::kEdfBestFit:
      return "EdfBestFit";
    case Algo::kMyopic:
      return "Myopic";
  }
  return "?";
}

// (algorithm, workers, affinity degree, laxity, bursty?)
using TheoremParam = std::tuple<Algo, std::uint32_t, double, double, bool>;

class CorrectionTheoremTest : public ::testing::TestWithParam<TheoremParam> {
};

TEST_P(CorrectionTheoremTest, NoScheduledTaskMissesItsDeadline) {
  const auto [algo_kind, workers, affinity, laxity, bursty] = GetParam();
  const auto algo = make_algo(algo_kind);
  const auto quantum = make_self_adjusting_quantum(usec(100), msec(20));

  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    machine::Cluster cluster(
        workers, machine::Interconnect::cut_through(workers, msec(3)));
    sim::Simulator sim;

    tasks::WorkloadConfig wc;
    wc.num_tasks = 200;
    wc.num_processors = workers;
    wc.arrival = bursty ? tasks::ArrivalPattern::kBursty
                        : tasks::ArrivalPattern::kPoisson;
    wc.mean_interarrival = usec(500);
    wc.processing_min = usec(200);
    wc.processing_max = msec(5);
    wc.affinity_degree = affinity;
    wc.laxity_min = laxity;
    wc.laxity_max = laxity * 2.0;
    Xoshiro256ss rng(seed);
    const auto wl = tasks::generate_workload(wc, rng);

    const PhaseScheduler sched(*algo, *quantum);
    const RunMetrics m = sched.run(wl, cluster, sim);

    EXPECT_EQ(m.exec_misses, 0u)
        << "theorem violated: algo=" << algo_name(algo_kind)
        << " workers=" << workers << " affinity=" << affinity
        << " laxity=" << laxity << " bursty=" << bursty << " seed=" << seed;
    // And the cluster agrees with the metrics.
    EXPECT_EQ(cluster.stats().deadline_misses, 0u);
    for (const machine::CompletionRecord& rec : cluster.log()) {
      EXPECT_LE(rec.end, rec.deadline);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CorrectionTheoremTest,
    ::testing::Combine(
        ::testing::Values(Algo::kRtSads, Algo::kDCols, Algo::kEdfBestFit,
                          Algo::kMyopic),
        ::testing::Values(2u, 5u, 10u),
        ::testing::Values(0.1, 0.5, 1.0),
        ::testing::Values(2.0, 8.0),
        ::testing::Values(true, false)),
    [](const ::testing::TestParamInfo<TheoremParam>& info) {
      return algo_name(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_aff" +
             std::to_string(int(std::get<2>(info.param) * 100)) + "_lax" +
             std::to_string(int(std::get<3>(info.param))) +
             (std::get<4>(info.param) ? "_burst" : "_poisson");
    });

// The theorem's premise is the feasibility test, not luck: with the test
// weakened (delivery assumed at phase start instead of t_s + Q_s), misses
// appear. This guards against the test silently passing because the
// workloads were too easy.
TEST(CorrectionTheoremNegativeControl, WorkloadsWouldMissWithoutTheBound) {
  // Run the same workloads and count how many tasks are scheduled with
  // slack smaller than the quantum — i.e. tasks that would have missed had
  // the scheduling time not been charged. If this is zero the sweep above
  // proves nothing.
  machine::Cluster cluster(4,
                           machine::Interconnect::cut_through(4, msec(3)));
  sim::Simulator sim;
  tasks::WorkloadConfig wc;
  wc.num_tasks = 300;
  wc.num_processors = 4;
  wc.processing_min = usec(200);
  wc.processing_max = msec(5);
  wc.affinity_degree = 0.4;
  wc.laxity_min = 1.2;
  wc.laxity_max = 3.0;
  Xoshiro256ss rng(44);
  const auto wl = tasks::generate_workload(wc, rng);
  const auto algo = make_rt_sads();
  const auto quantum = make_self_adjusting_quantum(usec(100), msec(20));
  const PhaseScheduler sched(*algo, *quantum);
  const RunMetrics m = sched.run(wl, cluster, sim);
  ASSERT_EQ(m.exec_misses, 0u);
  // Some tasks must have finished close to their deadlines: the margin
  // distribution should reach below the max quantum, showing the bound was
  // load-bearing.
  std::uint64_t tight_finishes = 0;
  for (const machine::CompletionRecord& rec : cluster.log()) {
    if (rec.deadline - rec.end < msec(20)) ++tight_finishes;
  }
  EXPECT_GT(tight_finishes, 0u);
}

}  // namespace
}  // namespace rtds::sched
