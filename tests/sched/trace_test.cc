#include "sched/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "machine/cluster.h"
#include "sched/driver.h"
#include "sched/presets.h"
#include "sim/simulator.h"
#include "tasks/workload.h"

namespace rtds::sched {
namespace {

struct TracedRun {
  RunMetrics metrics;
  PhaseTraceRecorder trace;
};

TracedRun run_traced(std::uint32_t num_tasks, std::uint64_t seed) {
  TracedRun out;
  machine::Cluster cluster(3,
                           machine::Interconnect::cut_through(3, msec(2)));
  sim::Simulator sim;
  const auto algo = make_rt_sads();
  const auto quantum = make_self_adjusting_quantum(usec(200), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = num_tasks;
  wc.num_processors = 3;
  wc.processing_min = usec(500);
  wc.processing_max = msec(3);
  wc.laxity_min = 4.0;
  wc.laxity_max = 12.0;
  Xoshiro256ss rng(seed);
  const auto wl = tasks::generate_workload(wc, rng);
  const PhaseScheduler sched(*algo, *quantum);
  out.metrics = sched.run(wl, cluster, sim, &out.trace);
  return out;
}

TEST(PhaseTraceTest, OneRecordPerPhase) {
  const TracedRun r = run_traced(100, 1);
  EXPECT_EQ(r.trace.records().size(), r.metrics.phases);
  EXPECT_FALSE(r.trace.empty());
}

TEST(PhaseTraceTest, RecordsAggregateToRunMetrics) {
  const TracedRun r = run_traced(120, 2);
  std::uint64_t vertices = 0, scheduled = 0, culled = 0, dead_ends = 0;
  SimDuration quantum_sum = SimDuration::zero();
  for (const PhaseRecord& rec : r.trace.records()) {
    vertices += rec.search.vertices_generated;
    scheduled += rec.scheduled;
    culled += rec.culled;
    dead_ends += rec.search.dead_end ? 1 : 0;
    quantum_sum += rec.quantum;
  }
  EXPECT_EQ(vertices, r.metrics.vertices_generated);
  EXPECT_EQ(scheduled, r.metrics.scheduled);
  // Culls can also happen on wake-up phases that end up empty, which do not
  // produce a record; the recorded culls are a lower bound.
  EXPECT_LE(culled, r.metrics.culled);
  EXPECT_EQ(dead_ends, r.metrics.dead_ends);
  EXPECT_EQ(quantum_sum, r.metrics.allocated_quantum);
}

TEST(PhaseTraceTest, PhasesAreContiguousAndIndexed) {
  const TracedRun r = run_traced(80, 3);
  const auto& recs = r.trace.records();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].index, i);
    EXPECT_LT(recs[i].start, recs[i].end);
    if (i > 0) {
      EXPECT_GE(recs[i].start, recs[i - 1].end);
    }
  }
}

TEST(PhaseTraceTest, QuantumRespectsFig3Inputs) {
  const TracedRun r = run_traced(150, 4);
  for (const PhaseRecord& rec : r.trace.records()) {
    // Q_s <= max(Min_Slack, Min_Load) up to the driver's floor clamp.
    const SimDuration criterion =
        max_duration(rec.min_slack, rec.min_load);
    const SimDuration floor = usec(200);  // policy min_quantum
    EXPECT_LE(rec.quantum,
              max_duration(max_duration(criterion, floor),
                           usec(50) + usec(10) /*overhead + vertex*/));
  }
}

TEST(PhaseTraceTest, CsvHasHeaderAndOneLinePerPhase) {
  const TracedRun r = run_traced(60, 5);
  std::ostringstream os;
  r.trace.write_csv(os);
  const std::string out = os.str();
  EXPECT_EQ(std::size_t(std::count(out.begin(), out.end(), '\n')),
            r.trace.records().size() + 1);
  EXPECT_NE(out.find("phase,start_us"), std::string::npos);
  EXPECT_NE(out.find("threads,algorithm"), std::string::npos);
}

TEST(PhaseTraceTest, ClearResets) {
  TracedRun r = run_traced(40, 6);
  r.trace.clear();
  EXPECT_TRUE(r.trace.empty());
}

TEST(PhaseTraceTest, NullObserverIsFine) {
  machine::Cluster cluster(2,
                           machine::Interconnect::cut_through(2, msec(2)));
  sim::Simulator sim;
  const auto algo = make_rt_sads();
  const auto quantum = make_self_adjusting_quantum(usec(200), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 30;
  wc.num_processors = 2;
  Xoshiro256ss rng(7);
  const auto wl = tasks::generate_workload(wc, rng);
  const PhaseScheduler sched(*algo, *quantum);
  const RunMetrics m = sched.run(wl, cluster, sim, nullptr);
  EXPECT_GT(m.phases, 0u);
}

}  // namespace
}  // namespace rtds::sched
