#include "sched/partitioned.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sched/backend.h"
#include "sched/presets.h"
#include "sched/quantum.h"
#include "tasks/workload.h"

namespace rtds::sched {
namespace {

tasks::Task affine_task(tasks::TaskId id, std::vector<std::uint32_t> workers) {
  tasks::Task t;
  t.id = id;
  t.processing = msec(2);
  t.deadline = SimTime::zero() + msec(200);
  for (std::uint32_t w : workers) t.affinity.add(w);
  return t;
}

TEST(RouteShardTest, PicksShardWithMostAffinity) {
  // 2 shards x 4 workers: task affine to {0, 1, 5} -> shard 0 (2 vs 1).
  const std::vector<std::uint64_t> counts{0, 0};
  EXPECT_EQ(route_shard(affine_task(1, {0, 1, 5}), 2, 4, counts), 0u);
  EXPECT_EQ(route_shard(affine_task(2, {4, 5, 3}), 2, 4, counts), 1u);
}

TEST(RouteShardTest, TieBreaksOnShardCount) {
  // Equal affinity on both shards: the emptier shard wins.
  const std::vector<std::uint64_t> counts{10, 2};
  EXPECT_EQ(route_shard(affine_task(1, {0, 4}), 2, 4, counts), 1u);
  const std::vector<std::uint64_t> counts2{2, 10};
  EXPECT_EQ(route_shard(affine_task(1, {0, 4}), 2, 4, counts2), 0u);
}

TEST(RouteShardTest, NoLocalAffinityStillRoutesSomewhere) {
  const std::vector<std::uint64_t> counts{0, 3};
  // Affinity only on shard 1's workers.
  EXPECT_EQ(route_shard(affine_task(1, {6, 7}), 2, 4, counts), 1u);
}

TEST(RunPartitionedTest, ValidatesConfiguration) {
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum();
  PartitionedConfig cfg;
  cfg.num_shards = 3;
  cfg.total_workers = 8;  // does not divide
  EXPECT_THROW(run_partitioned(*algo, *q, cfg, {}), InvalidArgument);
  cfg.num_shards = 0;
  EXPECT_THROW(run_partitioned(*algo, *q, cfg, {}), InvalidArgument);
  cfg.num_shards = 9;
  cfg.total_workers = 8;
  EXPECT_THROW(run_partitioned(*algo, *q, cfg, {}), InvalidArgument);
}

TEST(RunPartitionedTest, SingleShardMatchesSimBackendExactly) {
  // K=1 partitioned-vs-sim parity: the partitioned path must be the SAME
  // pipeline over an equivalent host, so every RunMetrics field agrees.
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 150;
  wc.num_processors = 4;
  wc.laxity_min = 4.0;
  wc.laxity_max = 12.0;
  Xoshiro256ss rng(3);
  const auto wl = tasks::generate_workload(wc, rng);

  PartitionedConfig cfg;
  cfg.num_shards = 1;
  cfg.total_workers = 4;
  cfg.comm_cost = msec(2);
  const PartitionedMetrics pm = run_partitioned(*algo, *q, cfg, wl);

  machine::Cluster cluster(4, machine::Interconnect::cut_through(4, msec(2)));
  sim::Simulator sim;
  const PhasePipeline pipeline(*algo, *q, cfg.driver);
  SimBackend backend(cluster, sim);
  const RunMetrics m = pipeline.run(wl, backend);

  ASSERT_EQ(pm.shards.size(), 1u);
  const RunMetrics& s = pm.shards[0];
  EXPECT_EQ(s.total_tasks, m.total_tasks);
  EXPECT_EQ(s.scheduled, m.scheduled);
  EXPECT_EQ(s.deadline_hits, m.deadline_hits);
  EXPECT_EQ(s.exec_misses, m.exec_misses);
  EXPECT_EQ(s.culled, m.culled);
  EXPECT_EQ(s.overflow_drops, m.overflow_drops);
  EXPECT_EQ(s.phases, m.phases);
  EXPECT_EQ(s.vertices_generated, m.vertices_generated);
  EXPECT_EQ(s.expansions, m.expansions);
  EXPECT_EQ(s.backtracks, m.backtracks);
  EXPECT_EQ(s.dead_ends, m.dead_ends);
  EXPECT_EQ(s.leaves, m.leaves);
  EXPECT_EQ(s.budget_exhaustions, m.budget_exhaustions);
  EXPECT_EQ(s.finish_time, m.finish_time);
  EXPECT_EQ(s.scheduling_time, m.scheduling_time);
  EXPECT_EQ(s.allocated_quantum, m.allocated_quantum);
  EXPECT_EQ(s.min_quantum_seen, m.min_quantum_seen);
  EXPECT_EQ(s.max_quantum_seen, m.max_quantum_seen);
}

TEST(RunPartitionedTest, TheoremHoldsAcrossShards) {
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 400;
  wc.num_processors = 8;
  wc.affinity_degree = 0.25;
  wc.laxity_min = 3.0;
  wc.laxity_max = 9.0;
  Xoshiro256ss rng(4);
  const auto wl = tasks::generate_workload(wc, rng);

  PartitionedConfig cfg;
  cfg.num_shards = 2;
  cfg.total_workers = 8;
  const PartitionedMetrics pm = run_partitioned(*algo, *q, cfg, wl);
  EXPECT_EQ(pm.exec_misses(), 0u);
  EXPECT_EQ(pm.total_tasks(), 400u);
  EXPECT_EQ(pm.shards.size(), 2u);
  // Routing sends work to both shards with this affinity spread.
  EXPECT_GT(pm.shards[0].total_tasks, 0u);
  EXPECT_GT(pm.shards[1].total_tasks, 0u);
}

TEST(RunPartitionedTest, CrossShardTasksPayCommOnce) {
  // One task affine only to shard 1 but forced to shard 0 via counts is
  // not directly constructible through the public API; instead check the
  // aggregate: tasks with affinity entirely on one shard execute there
  // (no shard gets a foreign task when routing is free to choose).
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  std::vector<tasks::Task> wl;
  for (std::uint32_t i = 0; i < 20; ++i) {
    tasks::Task t = affine_task(i, {i % 2 == 0 ? 0u : 4u});
    t.deadline = SimTime::zero() + msec(500);
    wl.push_back(t);
  }
  PartitionedConfig cfg;
  cfg.num_shards = 2;
  cfg.total_workers = 8;
  const PartitionedMetrics pm = run_partitioned(*algo, *q, cfg, wl);
  EXPECT_EQ(pm.shards[0].total_tasks, 10u);
  EXPECT_EQ(pm.shards[1].total_tasks, 10u);
  EXPECT_EQ(pm.deadline_hits(), 20u);
}

TEST(RunPartitionedTest, ShardingHelpsWhenHostBound) {
  // A large bursty workload on many workers: two hosts beat one.
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(20));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 2000;
  wc.num_processors = 24;
  wc.affinity_degree = 0.2;
  wc.laxity_min = 8.0;
  wc.laxity_max = 15.0;
  Xoshiro256ss rng(5);
  const auto wl = tasks::generate_workload(wc, rng);

  PartitionedConfig one;
  one.num_shards = 1;
  one.total_workers = 24;
  one.driver.vertex_generation_cost = usec(2);
  PartitionedConfig two = one;
  two.num_shards = 2;
  const double h1 = run_partitioned(*algo, *q, one, wl).hit_ratio();
  const double h2 = run_partitioned(*algo, *q, two, wl).hit_ratio();
  EXPECT_GT(h2, h1);
}

}  // namespace
}  // namespace rtds::sched
