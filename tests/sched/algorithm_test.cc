#include "sched/algorithm.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "sched/presets.h"

namespace rtds::sched {
namespace {

using search::Assignment;
using tasks::AffinitySet;

Task make_task(std::uint32_t id, SimDuration p, SimTime d,
               AffinitySet affinity) {
  Task t;
  t.id = id;
  t.processing = p;
  t.deadline = d;
  t.affinity = affinity;
  return t;
}

std::vector<Task> uniform_batch(std::uint32_t n, std::uint32_t m,
                                SimDuration p, SimDuration window) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < n; ++i) {
    batch.push_back(
        make_task(i, p, SimTime::zero() + window, AffinitySet::all(m)));
  }
  return batch;
}

TEST(PresetsTest, NamesIdentifyAlgorithms) {
  EXPECT_EQ(make_rt_sads()->name(), "RT-SADS");
  EXPECT_EQ(make_d_cols()->name(), "D-COLS");
  EXPECT_EQ(make_d_cols_pruned(3)->name(), "D-COLS/b3");
  EXPECT_EQ(make_edf_first_fit()->name(), "edf-first-fit");
  EXPECT_EQ(make_edf_best_fit()->name(), "edf-best-fit");
  EXPECT_EQ(make_myopic(7)->name(), "myopic[W=7]");
}

TEST(PresetsTest, RtSadsUsesAssignmentRepresentation) {
  const auto algo = make_rt_sads();
  const auto* ts = dynamic_cast<const TreeSearchAlgorithm*>(algo.get());
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->search_config().representation,
            search::Representation::kAssignmentOriented);
  EXPECT_TRUE(ts->search_config().use_load_balance_cost);
}

TEST(PresetsTest, DColsUsesSequenceRepresentation) {
  const auto algo = make_d_cols();
  const auto* ts = dynamic_cast<const TreeSearchAlgorithm*>(algo.get());
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->search_config().representation,
            search::Representation::kSequenceOriented);
}

TEST(GreedyTest, EdfBestFitBalancesIdenticalTasks) {
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  const auto batch = uniform_batch(8, m, msec(2), msec(100));
  const auto r = GreedyAlgorithm(GreedyKind::kEdfBestFit)
                     .schedule_phase(batch, std::vector<SimDuration>(m, SimDuration{}),
                                     SimTime::zero() + msec(1), net, 100000);
  ASSERT_EQ(r.schedule.size(), 8u);
  std::vector<int> per_worker(m, 0);
  for (const Assignment& a : r.schedule) ++per_worker[a.worker];
  for (int c : per_worker) EXPECT_EQ(c, 2);
}

TEST(GreedyTest, EdfFirstFitPilesOnFirstFeasibleWorker) {
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  const auto batch = uniform_batch(4, m, msec(2), msec(100));
  const auto r = GreedyAlgorithm(GreedyKind::kEdfFirstFit)
                     .schedule_phase(batch, std::vector<SimDuration>(m, SimDuration{}),
                                     SimTime::zero() + msec(1), net, 100000);
  ASSERT_EQ(r.schedule.size(), 4u);
  for (const Assignment& a : r.schedule) EXPECT_EQ(a.worker, 0u);
}

TEST(GreedyTest, SkipsInfeasibleTasksWithoutDeadEnding) {
  const std::uint32_t m = 2;
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  std::vector<Task> batch;
  // Infeasible task (deadline before delivery) between two feasible ones.
  batch.push_back(make_task(0, msec(1), SimTime::zero() + msec(100),
                            AffinitySet::all(m)));
  batch.push_back(
      make_task(1, msec(1), SimTime::zero() + usec(1), AffinitySet::all(m)));
  batch.push_back(make_task(2, msec(1), SimTime::zero() + msec(100),
                            AffinitySet::all(m)));
  for (GreedyKind kind : {GreedyKind::kEdfFirstFit, GreedyKind::kEdfBestFit,
                          GreedyKind::kMyopic}) {
    const auto r = GreedyAlgorithm(kind).schedule_phase(
        batch, std::vector<SimDuration>(m, SimDuration{}), SimTime::zero() + msec(1),
        net, 100000);
    std::set<std::uint32_t> ids;
    for (const Assignment& a : r.schedule) {
      ids.insert(batch[a.task_index].id);
    }
    EXPECT_EQ(ids.count(1u), 0u);
    EXPECT_EQ(ids.size(), 2u) << "kind " << int(kind);
  }
}

TEST(GreedyTest, RespectsVertexBudget) {
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  const auto batch = uniform_batch(50, m, msec(1), msec(500));
  for (GreedyKind kind : {GreedyKind::kEdfFirstFit, GreedyKind::kEdfBestFit,
                          GreedyKind::kMyopic}) {
    const auto r = GreedyAlgorithm(kind).schedule_phase(
        batch, std::vector<SimDuration>(m, SimDuration{}), SimTime::zero() + msec(1),
        net, 20);
    EXPECT_LE(r.stats.vertices_generated, 20u);
    EXPECT_TRUE(r.stats.budget_exhausted);
    EXPECT_LT(r.schedule.size(), 50u);
  }
}

TEST(GreedyTest, MyopicPrefersGloballyEarliestFinishInWindow) {
  const std::uint32_t m = 2;
  // C huge: only affine placements feasible.
  const auto net = machine::Interconnect::cut_through(m, sec(10));
  std::vector<Task> batch;
  // Task 0: earliest deadline, long processing, affine worker 0.
  batch.push_back(
      make_task(0, msec(8), SimTime::zero() + msec(20), AffinitySet::single(0)));
  // Task 1: later deadline, short processing, affine worker 1.
  batch.push_back(
      make_task(1, msec(1), SimTime::zero() + msec(30), AffinitySet::single(1)));
  const auto r = GreedyAlgorithm(GreedyKind::kMyopic, /*window=*/2)
                     .schedule_phase(batch, std::vector<SimDuration>(m, SimDuration{}),
                                     SimTime::zero() + msec(1), net, 100000);
  ASSERT_EQ(r.schedule.size(), 2u);
  // Myopic commits the short task (earliest finish) first, unlike pure EDF.
  EXPECT_EQ(batch[r.schedule[0].task_index].id, 1u);
}

TEST(GreedyTest, ProducesOnlyFeasibleSchedules) {
  Xoshiro256ss rng(3);
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, msec(3));
  for (GreedyKind kind : {GreedyKind::kEdfFirstFit, GreedyKind::kEdfBestFit,
                          GreedyKind::kMyopic}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<Task> batch;
      for (std::uint32_t i = 0; i < 30; ++i) {
        Task t;
        t.id = i;
        t.processing = rng.uniform_duration(usec(200), msec(4));
        t.deadline =
            SimTime::zero() + rng.uniform_duration(msec(3), msec(30));
        t.affinity.add(i % m);
        if (rng.bernoulli(0.3)) t.affinity.add((i + 1) % m);
        batch.push_back(t);
      }
      const SimTime delivery = SimTime::zero() + msec(2);
      const auto r = GreedyAlgorithm(kind).schedule_phase(
          batch, std::vector<SimDuration>(m, SimDuration{}), delivery, net, 10000);
      std::vector<SimTime> horizon(m, delivery);
      for (const Assignment& a : r.schedule) {
        const Task& t = batch[a.task_index];
        horizon[a.worker] +=
            t.processing + net.comm_cost(t.affinity, a.worker);
        ASSERT_LE(horizon[a.worker], t.deadline);
      }
    }
  }
}

TEST(GreedyTest, ValidatesWindow) {
  EXPECT_THROW(GreedyAlgorithm(GreedyKind::kMyopic, 0),
               rtds::InvalidArgument);
}

}  // namespace
}  // namespace rtds::sched
