// Open-system streaming entry point: run_stream over ArrivalSources,
// admission control, schedule-latency accounting, and the two latent
// pipeline bugs the open mode exposed (backpressure clamp order, the
// delivery_attempts leak).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "machine/cluster.h"
#include "machine/interconnect.h"
#include "sched/backend.h"
#include "sched/pipeline.h"
#include "sched/presets.h"
#include "sched/trace.h"
#include "sim/simulator.h"
#include "tasks/arrival_source.h"
#include "tasks/workload.h"
#include "testing/fault_injection.h"

namespace rtds::sched {
namespace {

using tasks::AffinitySet;

Task make_task(std::uint32_t id, SimTime arrival, SimDuration p, SimTime d,
               AffinitySet affinity) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.processing = p;
  t.deadline = d;
  t.affinity = affinity;
  return t;
}

struct Fixture {
  explicit Fixture(std::uint32_t workers, SimDuration comm = msec(2))
      : cluster(workers,
                machine::Interconnect::cut_through(workers, comm)) {}
  machine::Cluster cluster;
  sim::Simulator sim;
};

/// Refuses the first `n` assignments handed to deliver(), then forwards
/// everything. FaultInjectingBackend can only express periodic refusal;
/// the backpressure regression below needs "refuse exactly phase 1's
/// schedule, accept everything after".
class RefuseFirstN final : public ExecutionBackend {
 public:
  RefuseFirstN(ExecutionBackend& inner, std::uint64_t n)
      : inner_(inner), remaining_(n) {}

  [[nodiscard]] std::uint32_t num_workers() const override {
    return inner_.num_workers();
  }
  [[nodiscard]] const machine::Interconnect& interconnect() const override {
    return inner_.interconnect();
  }
  [[nodiscard]] SimTime now() const override { return inner_.now(); }
  [[nodiscard]] SimDuration load(std::uint32_t worker,
                                 SimTime t) const override {
    return inner_.load(worker, t);
  }
  void wait_until(SimTime t) override { inner_.wait_until(t); }
  void advance(SimDuration host_busy) override { inner_.advance(host_busy); }

  DeliveryResult deliver(
      const std::vector<machine::ScheduledAssignment>& schedule) override {
    std::vector<machine::ScheduledAssignment> pass;
    DeliveryResult out;
    for (const machine::ScheduledAssignment& sa : schedule) {
      if (remaining_ > 0) {
        --remaining_;
        out.undelivered.push_back(sa);
      } else {
        pass.push_back(sa);
      }
    }
    DeliveryResult inner_result = inner_.deliver(pass);
    out.accepted = inner_result.accepted;
    for (machine::ScheduledAssignment& sa : inner_result.undelivered) {
      out.undelivered.push_back(std::move(sa));
    }
    return out;
  }

  BackendStats drain() override { return inner_.drain(); }
  void bind_ledger(TaskLedger* ledger) override { inner_.bind_ledger(ledger); }

 private:
  ExecutionBackend& inner_;
  std::uint64_t remaining_;
};

TEST(StreamingTest, EmptySourceReturnsCleanMetrics) {
  Fixture f(2);
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum();
  const PhasePipeline pipeline(*algo, *q);
  SimBackend backend(f.cluster, f.sim);
  tasks::VectorArrivalSource source(std::vector<Task>{});
  const RunMetrics m = pipeline.run_stream(source, backend);
  EXPECT_EQ(m.total_tasks, 0u);
  EXPECT_EQ(m.phases, 0u);
  EXPECT_EQ(m.admission_rejected, 0u);
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 1.0);
}

TEST(StreamingTest, ClosedRunAndVectorStreamAreFieldForFieldEqual) {
  // run() is documented as run_stream over a VectorArrivalSource with
  // admission control off — prove it on a busy workload.
  tasks::WorkloadConfig wc;
  wc.num_tasks = 150;
  wc.num_processors = 3;
  wc.arrival = tasks::ArrivalPattern::kPoisson;
  wc.mean_interarrival = usec(400);
  wc.laxity_min = 3.0;
  wc.laxity_max = 10.0;
  Xoshiro256ss rng(11);
  const auto wl = tasks::generate_workload(wc, rng);

  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(5));
  const PhasePipeline pipeline(*algo, *q);

  Fixture closed(3);
  SimBackend closed_backend(closed.cluster, closed.sim);
  const RunMetrics a = pipeline.run(wl, closed_backend);

  Fixture open(3);
  SimBackend open_backend(open.cluster, open.sim);
  tasks::VectorArrivalSource source(wl);
  StreamStats stats{StreamOptions{}};
  const RunMetrics b =
      pipeline.run_stream(source, open_backend, StreamOptions{}, &stats);

  EXPECT_EQ(a.total_tasks, b.total_tasks);
  EXPECT_EQ(a.scheduled, b.scheduled);
  EXPECT_EQ(a.deadline_hits, b.deadline_hits);
  EXPECT_EQ(a.exec_misses, b.exec_misses);
  EXPECT_EQ(a.culled, b.culled);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(b.admission_rejected, 0u);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.vertices_generated, b.vertices_generated);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.scheduling_time, b.scheduling_time);
  // The stream run additionally produced one latency sample per delivery.
  EXPECT_EQ(stats.schedule_latency.count(), b.scheduled);
}

TEST(StreamingTest, PoissonStreamIsDeterministicForFixedSeed) {
  tasks::StreamConfig cfg;
  cfg.seed = 0xFEED;
  cfg.max_tasks = 120;
  cfg.body.num_processors = 2;
  cfg.body.laxity_min = 4.0;
  cfg.body.laxity_max = 12.0;

  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(5));
  const PhasePipeline pipeline(*algo, *q);

  auto run_once = [&](RunMetrics& m, StreamStats& stats,
                      std::vector<PhaseRecord>& phases) {
    Fixture f(2);
    SimBackend backend(f.cluster, f.sim);
    tasks::PoissonArrivalSource source(cfg, usec(500));
    PhaseTraceRecorder trace;
    m = pipeline.run_stream(source, backend, StreamOptions{}, &stats, &trace);
    phases = trace.records();
  };

  RunMetrics m1, m2;
  StreamStats s1{StreamOptions{}}, s2{StreamOptions{}};
  std::vector<PhaseRecord> p1, p2;
  run_once(m1, s1, p1);
  run_once(m2, s2, p2);

  EXPECT_EQ(m1.total_tasks, cfg.max_tasks);
  EXPECT_EQ(m1.total_tasks, m2.total_tasks);
  EXPECT_EQ(m1.deadline_hits, m2.deadline_hits);
  EXPECT_EQ(m1.culled, m2.culled);
  EXPECT_EQ(m1.phases, m2.phases);
  EXPECT_EQ(m1.finish_time, m2.finish_time);
  EXPECT_EQ(s1.schedule_latency.count(), s2.schedule_latency.count());
  EXPECT_EQ(s1.schedule_latency.buckets(), s2.schedule_latency.buckets());
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].start, p2[i].start);
    EXPECT_EQ(p1[i].quantum, p2[i].quantum);
    EXPECT_EQ(p1[i].batch_size, p2[i].batch_size);
    EXPECT_EQ(p1[i].arrivals, p2[i].arrivals);
    EXPECT_EQ(p1[i].admission_rejected, p2[i].admission_rejected);
  }
}

TEST(StreamingTest, AdmissionControlTurnsArrivalsAwayAndBooksBalance) {
  // One slow worker, arrivals every ~200us, tasks of 1-10ms: the offered
  // rate dwarfs the service rate, so a bounded pending batch must reject.
  tasks::StreamConfig cfg;
  cfg.seed = 21;
  cfg.max_tasks = 150;
  cfg.body.num_processors = 1;
  cfg.body.laxity_min = 30.0;
  cfg.body.laxity_max = 60.0;

  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(5));
  const PhasePipeline pipeline(*algo, *q);

  Fixture f(1);
  SimBackend backend(f.cluster, f.sim);
  tasks::PoissonArrivalSource source(cfg, usec(200));
  StreamOptions opts;
  opts.max_pending = 4;
  StreamStats stats(opts);
  PhaseTraceRecorder trace;
  TaskLedger ledger;
  const RunMetrics m =
      pipeline.run_stream(source, backend, opts, &stats, &trace, &ledger);

  EXPECT_EQ(m.total_tasks, cfg.max_tasks);
  EXPECT_GT(m.admission_rejected, 0u);
  EXPECT_GT(m.deadline_hits, 0u);
  EXPECT_EQ(m.deadline_hits + m.exec_misses + m.culled + m.rejected +
                m.admission_rejected,
            m.total_tasks);
  EXPECT_EQ(ledger.counts().admission_rejected, m.admission_rejected);
  EXPECT_EQ(stats.schedule_latency.count(), m.scheduled);
  // The per-phase trace column sums to the aggregate counter.
  std::uint64_t traced = 0;
  for (const PhaseRecord& r : trace.records()) traced += r.admission_rejected;
  EXPECT_EQ(traced, m.admission_rejected);
}

TEST(StreamingTest, BackpressurePauseIsCappedByBatchMinSlack) {
  // Regression for the clamp-order bug: the configured backpressure floor
  // was applied AFTER the min-slack cap, so a floor larger than the batch's
  // min slack stretched the pause past the point where pending tasks were
  // still reachable. Three tasks on one worker, all refused once in phase 1:
  //   A: 5ms work, 2000ms deadline (huge slack — never at risk)
  //   B: 5ms work,   55ms deadline (defines min_slack ~ 50ms)
  //   C: 5ms work,  205ms deadline (reachable iff the pause respects the
  //      min-slack cap; dead if the 500ms floor wins)
  // Fixed order (floor first, cap last): pause ~ 50ms, only B expires.
  // Buggy order: pause = 500ms, B AND C expire — culled == 2, hits == 1.
  Fixture f(1, SimDuration::zero());
  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(10));
  PipelineConfig cfg;
  cfg.delivery_backpressure = msec(500);
  const PhasePipeline pipeline(*algo, *q, cfg);
  SimBackend inner(f.cluster, f.sim);
  RefuseFirstN backend(inner, 3);
  const std::vector<Task> wl{
      make_task(0, SimTime::zero(), msec(5), SimTime::zero() + msec(2000),
                AffinitySet::all(1)),
      make_task(1, SimTime::zero(), msec(5), SimTime::zero() + msec(55),
                AffinitySet::all(1)),
      make_task(2, SimTime::zero(), msec(5), SimTime::zero() + msec(205),
                AffinitySet::all(1))};
  const RunMetrics m = pipeline.run(wl, backend);
  EXPECT_GE(m.backpressure_waits, 1u);
  EXPECT_EQ(m.culled, 1u);
  EXPECT_EQ(m.deadline_hits, 2u);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.exec_misses, 0u);
}

TEST(StreamingTest, RefusalHeavyStreamRetiresEveryAttemptEntry) {
  // Regression for the delivery_attempts leak: entries were only erased on
  // the rejected path, so delivered/culled tasks that had ever been refused
  // kept their counters forever. The pipeline now asserts the map is empty
  // at drain (RTDS_CHECK_MSG) — this run exercises all three terminal
  // paths for previously-refused tasks and must complete cleanly.
  tasks::StreamConfig cfg;
  cfg.seed = 33;
  cfg.max_tasks = 100;
  cfg.body.num_processors = 2;
  cfg.body.laxity_min = 2.0;
  cfg.body.laxity_max = 8.0;

  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(5));
  PipelineConfig pcfg;
  pcfg.max_delivery_attempts = 2;
  const PhasePipeline pipeline(*algo, *q, pcfg);

  Fixture f(2);
  SimBackend inner(f.cluster, f.sim);
  testing::FaultInjectingBackend backend(inner, 2);  // refuse every 2nd
  tasks::PoissonArrivalSource source(cfg, usec(300));
  StreamStats stats{StreamOptions{}};
  const RunMetrics m =
      pipeline.run_stream(source, backend, StreamOptions{}, &stats);

  EXPECT_EQ(m.total_tasks, cfg.max_tasks);
  EXPECT_GT(m.readmissions, 0u);
  EXPECT_GT(m.rejected, 0u);
  EXPECT_GT(m.deadline_hits, 0u);
  EXPECT_EQ(m.deadline_hits + m.exec_misses + m.culled + m.rejected +
                m.admission_rejected,
            m.total_tasks);
  EXPECT_EQ(stats.schedule_latency.count(), m.scheduled);
}

TEST(StreamingTest, LatencyHistogramBoundsAreConfigurable) {
  // A tiny window forces overflow samples; the digest still accounts for
  // every delivery (count includes the out-of-range edges).
  tasks::StreamConfig cfg;
  cfg.seed = 5;
  cfg.max_tasks = 40;
  cfg.body.num_processors = 2;
  cfg.body.laxity_min = 10.0;
  cfg.body.laxity_max = 20.0;

  const auto algo = make_rt_sads();
  const auto q = make_self_adjusting_quantum(usec(100), msec(5));
  const PhasePipeline pipeline(*algo, *q);

  Fixture f(2);
  SimBackend backend(f.cluster, f.sim);
  tasks::PoissonArrivalSource source(cfg, usec(500));
  StreamOptions opts;
  opts.latency_lo_us = 0.0;
  opts.latency_hi_us = 1.0;  // ~every sample overflows
  opts.latency_buckets = 4;
  StreamStats stats(opts);
  const RunMetrics m = pipeline.run_stream(source, backend, opts, &stats);
  EXPECT_EQ(stats.schedule_latency.count(), m.scheduled);
  EXPECT_GT(stats.schedule_latency.overflow(), 0u);
}

}  // namespace
}  // namespace rtds::sched
