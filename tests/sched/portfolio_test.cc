// PartitionScheduler (the `packing` and `multicrit` registry entrants):
// placement behavior of the fit matrix, budget accounting, and the
// correction-theorem feasibility of every emitted assignment.
#include "sched/portfolio.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "sched/registry.h"

namespace rtds::sched {
namespace {

using search::Assignment;
using tasks::AffinitySet;

Task make_task(std::uint32_t id, SimDuration p, SimTime d,
               AffinitySet affinity) {
  Task t;
  t.id = id;
  t.processing = p;
  t.deadline = d;
  t.affinity = affinity;
  return t;
}

std::vector<Task> uniform_batch(std::uint32_t n, std::uint32_t m,
                                SimDuration p, SimDuration window) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < n; ++i) {
    batch.push_back(
        make_task(i, p, SimTime::zero() + window, AffinitySet::all(m)));
  }
  return batch;
}

SearchResult run(PartitionConfig config, const std::vector<Task>& batch,
                 std::uint32_t m, std::uint64_t budget = 100000) {
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  return PartitionScheduler("test", config)
      .schedule_phase(batch, std::vector<SimDuration>(m, SimDuration{}),
                      SimTime::zero() + msec(1), net, budget);
}

std::vector<int> per_worker_counts(const SearchResult& r, std::uint32_t m) {
  std::vector<int> counts(m, 0);
  for (const Assignment& a : r.schedule) ++counts[a.worker];
  return counts;
}

TEST(PartitionTest, FirstFitPilesOnFirstFeasibleWorker) {
  const auto batch = uniform_batch(8, 4, msec(2), msec(100));
  const auto r = run({PartitionSort::kDeadline, PartitionFit::kFirstFit},
                     batch, 4);
  ASSERT_EQ(r.schedule.size(), 8u);
  for (const Assignment& a : r.schedule) EXPECT_EQ(a.worker, 0u);
}

TEST(PartitionTest, BestFitAndWorstFitSpreadIdenticalTasks) {
  const auto batch = uniform_batch(8, 4, msec(2), msec(100));
  for (const PartitionFit fit :
       {PartitionFit::kBestFit, PartitionFit::kWorstFit}) {
    const auto r = run({PartitionSort::kDeadline, fit}, batch, 4);
    ASSERT_EQ(r.schedule.size(), 8u) << int(fit);
    for (int c : per_worker_counts(r, 4)) EXPECT_EQ(c, 2) << int(fit);
  }
}

TEST(PartitionTest, NextFitRotatesTheCursor) {
  const auto batch = uniform_batch(8, 4, msec(2), msec(100));
  const auto r = run({PartitionSort::kDeadline, PartitionFit::kNextFit},
                     batch, 4);
  ASSERT_EQ(r.schedule.size(), 8u);
  // The cursor advances past every successful placement, so identical
  // feasible-everywhere tasks land round-robin: two per worker.
  for (int c : per_worker_counts(r, 4)) EXPECT_EQ(c, 2);
}

TEST(PartitionTest, LptLetsTheLongTaskSurviveTightCapacity) {
  // One worker, 8ms of capacity (deadline 9ms, delivery 1ms), a 1ms and an
  // 8ms task. Whichever is packed first consumes the capacity: LPT packs
  // the long task and keeps it; EDF order (equal deadlines, index
  // tie-break) packs the short one first and the long task never fits.
  std::vector<Task> batch;
  batch.push_back(
      make_task(0, msec(1), SimTime::zero() + msec(9), AffinitySet::all(1)));
  batch.push_back(
      make_task(1, msec(8), SimTime::zero() + msec(9), AffinitySet::all(1)));
  const auto net = machine::Interconnect::cut_through(1, msec(1));
  const auto schedule_with = [&](PartitionSort sort) {
    return PartitionScheduler("test", {sort, PartitionFit::kFirstFit})
        .schedule_phase(batch, {SimDuration{}}, SimTime::zero() + msec(1),
                        net, 100000);
  };
  const auto lpt = schedule_with(PartitionSort::kLpt);
  ASSERT_EQ(lpt.schedule.size(), 1u);
  EXPECT_EQ(batch[lpt.schedule.front().task_index].id, 1u);
  const auto edf = schedule_with(PartitionSort::kDeadline);
  ASSERT_EQ(edf.schedule.size(), 1u);
  EXPECT_EQ(batch[edf.schedule.front().task_index].id, 0u);
}

TEST(PartitionTest, HonorsAffinityUnderExpensiveComm) {
  const std::uint32_t m = 4;
  // Comm cost larger than any laxity: only affine placement is feasible.
  const auto net = machine::Interconnect::cut_through(m, sec(10));
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 8; ++i) {
    batch.push_back(make_task(i, msec(2), SimTime::zero() + msec(100),
                              AffinitySet::single(i % m)));
  }
  for (const PartitionFit fit :
       {PartitionFit::kFirstFit, PartitionFit::kBestFit,
        PartitionFit::kWorstFit, PartitionFit::kNextFit}) {
    const auto r =
        PartitionScheduler("test", {PartitionSort::kDeadline, fit})
            .schedule_phase(batch, std::vector<SimDuration>(m, SimDuration{}),
                            SimTime::zero() + msec(1), net, 100000);
    ASSERT_EQ(r.schedule.size(), 8u) << int(fit);
    for (const Assignment& a : r.schedule) {
      EXPECT_EQ(a.worker, batch[a.task_index].id % m) << int(fit);
    }
  }
}

TEST(PartitionTest, SkipsInfeasibleTasksWithoutDeadEnding) {
  const std::uint32_t m = 2;
  std::vector<Task> batch;
  batch.push_back(make_task(0, msec(1), SimTime::zero() + msec(100),
                            AffinitySet::all(m)));
  // Deadline before delivery: unplaceable, must be skipped, not scheduled.
  batch.push_back(
      make_task(1, msec(1), SimTime::zero() + usec(1), AffinitySet::all(m)));
  batch.push_back(make_task(2, msec(1), SimTime::zero() + msec(100),
                            AffinitySet::all(m)));
  const auto r = run({PartitionSort::kDeadline, PartitionFit::kBestFit},
                     batch, m);
  std::set<std::uint32_t> ids;
  for (const Assignment& a : r.schedule) ids.insert(batch[a.task_index].id);
  EXPECT_EQ(ids.count(1u), 0u);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_FALSE(r.stats.dead_end);
}

TEST(PartitionTest, RespectsVertexBudget) {
  const auto batch = uniform_batch(50, 4, msec(1), msec(500));
  for (const PartitionFit fit :
       {PartitionFit::kFirstFit, PartitionFit::kBestFit,
        PartitionFit::kWorstFit, PartitionFit::kNextFit}) {
    const auto r = run({PartitionSort::kDeadline, fit}, batch, 4, 20);
    EXPECT_LE(r.stats.vertices_generated, 20u) << int(fit);
    EXPECT_TRUE(r.stats.budget_exhausted) << int(fit);
    EXPECT_LT(r.schedule.size(), 50u) << int(fit);
  }
}

TEST(PartitionTest, SequencesEachWorkerShareByEdf) {
  Xoshiro256ss rng(11);
  const std::uint32_t m = 3;
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 24; ++i) {
    batch.push_back(make_task(
        i, rng.uniform_duration(usec(100), msec(2)),
        SimTime::zero() + rng.uniform_duration(msec(5), msec(60)),
        AffinitySet::all(m)));
  }
  const auto r = run({PartitionSort::kLpt, PartitionFit::kBestFit}, batch, m);
  // Commits are grouped by worker, and within a worker deadlines are
  // non-decreasing (pass 2's EDF sequencing).
  std::vector<SimTime> last_deadline(m, SimTime::zero());
  for (const Assignment& a : r.schedule) {
    const SimTime d = batch[a.task_index].deadline;
    EXPECT_GE(d, last_deadline[a.worker]);
    last_deadline[a.worker] = d;
  }
}

TEST(PartitionTest, ProducesOnlyFeasibleSchedules) {
  // The correction-theorem precondition: every emitted assignment finishes
  // by its deadline when each worker consumes its share in commit order —
  // across the whole sort x fit matrix, on adversarial random batches.
  Xoshiro256ss rng(3);
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, msec(3));
  for (const PartitionSort sort :
       {PartitionSort::kDensity, PartitionSort::kDeadline,
        PartitionSort::kMinSlack, PartitionSort::kLpt}) {
    for (const PartitionFit fit :
         {PartitionFit::kFirstFit, PartitionFit::kBestFit,
          PartitionFit::kWorstFit, PartitionFit::kNextFit}) {
      for (int trial = 0; trial < 5; ++trial) {
        std::vector<Task> batch;
        for (std::uint32_t i = 0; i < 30; ++i) {
          Task t;
          t.id = i;
          t.processing = rng.uniform_duration(usec(200), msec(4));
          t.deadline =
              SimTime::zero() + rng.uniform_duration(msec(3), msec(30));
          t.affinity.add(i % m);
          if (rng.bernoulli(0.3)) t.affinity.add((i + 1) % m);
          batch.push_back(t);
        }
        const SimTime delivery = SimTime::zero() + msec(2);
        const auto r =
            PartitionScheduler("test", {sort, fit})
                .schedule_phase(batch,
                                std::vector<SimDuration>(m, SimDuration{}),
                                delivery, net, 10000);
        std::vector<SimTime> horizon(m, delivery);
        for (const Assignment& a : r.schedule) {
          const Task& t = batch[a.task_index];
          horizon[a.worker] +=
              t.processing + net.comm_cost(t.affinity, a.worker);
          ASSERT_LE(horizon[a.worker], t.deadline)
              << "sort " << int(sort) << " fit " << int(fit);
        }
      }
    }
  }
}

TEST(PartitionTest, RegistryInstanceMatchesDirectConstruction) {
  const auto batch = uniform_batch(12, 4, msec(2), msec(80));
  const auto via_registry =
      AlgorithmRegistry::builtin().make("multicrit?sort=lpt&fit=best");
  const auto direct = PartitionScheduler(
      "direct", {PartitionSort::kLpt, PartitionFit::kBestFit});
  const auto net = machine::Interconnect::cut_through(4, msec(2));
  const std::vector<SimDuration> loads(4, SimDuration{});
  const SimTime delivery = SimTime::zero() + msec(1);
  const auto a = via_registry->schedule_phase(batch, loads, delivery, net,
                                              100000);
  const auto b = direct.schedule_phase(batch, loads, delivery, net, 100000);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].task_index, b.schedule[i].task_index);
    EXPECT_EQ(a.schedule[i].worker, b.schedule[i].worker);
  }
  EXPECT_EQ(a.stats.vertices_generated, b.stats.vertices_generated);
}

}  // namespace
}  // namespace rtds::sched
