#include "machine/validator.h"

#include <gtest/gtest.h>

namespace rtds::machine {
namespace {

Task make_task(tasks::TaskId id, SimDuration p, SimTime d,
               AffinitySet affinity, SimTime arrival = SimTime::zero()) {
  Task t;
  t.id = id;
  t.arrival = arrival;
  t.processing = p;
  t.deadline = d;
  t.affinity = affinity;
  return t;
}

TEST(ValidatorTest, CleanExecutionPasses) {
  Cluster cl(2, Interconnect::cut_through(2, msec(1)));
  std::vector<tasks::Task> wl{
      make_task(1, msec(3), SimTime{100000}, AffinitySet::single(0)),
      make_task(2, msec(2), SimTime{100000}, AffinitySet::single(1)),
      make_task(3, msec(2), SimTime{100000}, AffinitySet::single(0))};
  cl.deliver({{wl[0], 0}, {wl[1], 0}}, SimTime::zero() + msec(1));
  cl.deliver({{wl[2], 1}}, SimTime::zero() + msec(2));
  const ValidationReport r = validate_execution(cl, wl);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.records_checked, 3u);
}

TEST(ValidatorTest, DetectsUnknownTask) {
  Cluster cl(1, Interconnect::cut_through(1, msec(1)));
  const tasks::Task ghost =
      make_task(99, msec(1), SimTime{100000}, AffinitySet::single(0));
  cl.deliver({{ghost, 0}}, SimTime::zero());
  const ValidationReport r = validate_execution(cl, {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("not in the workload"), std::string::npos);
}

TEST(ValidatorTest, DetectsDoubleExecution) {
  Cluster cl(1, Interconnect::cut_through(1, msec(1)));
  std::vector<tasks::Task> wl{
      make_task(1, msec(1), SimTime{100000}, AffinitySet::single(0))};
  cl.deliver({{wl[0], 0}, {wl[0], 0}}, SimTime::zero());
  const ValidationReport r = validate_execution(cl, wl);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("more than once"), std::string::npos);
}

TEST(ValidatorTest, DetectsSchedulingBeforeArrival) {
  Cluster cl(1, Interconnect::cut_through(1, msec(1)));
  std::vector<tasks::Task> wl{make_task(1, msec(1), SimTime{100000},
                                        AffinitySet::single(0),
                                        SimTime::zero() + msec(50))};
  cl.deliver({{wl[0], 0}}, SimTime::zero());  // before its arrival
  const ValidationReport r = validate_execution(cl, wl);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("before it arrived"), std::string::npos);
}

TEST(ValidatorTest, DetectsTamperedLog) {
  // White-box: validate against a workload whose definition was changed
  // after execution — processing mismatch must surface.
  Cluster cl(1, Interconnect::cut_through(1, msec(1)));
  std::vector<tasks::Task> wl{
      make_task(1, msec(5), SimTime{100000}, AffinitySet::single(0))};
  cl.deliver({{wl[0], 0}}, SimTime::zero());
  wl[0].processing = msec(4);  // tamper
  const ValidationReport r = validate_execution(cl, wl);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("demand"), std::string::npos);
}

TEST(ValidatorTest, DetectsDeadlineTampering) {
  Cluster cl(1, Interconnect::cut_through(1, msec(1)));
  std::vector<tasks::Task> wl{
      make_task(1, msec(5), SimTime{100000}, AffinitySet::single(0))};
  cl.deliver({{wl[0], 0}}, SimTime::zero());
  wl[0].deadline = SimTime{1};  // tamper: task would have missed
  const ValidationReport r = validate_execution(cl, wl);
  ASSERT_FALSE(r.ok());
}

TEST(ValidatorTest, ValidatesReclaimedExecutions) {
  Cluster cl(1, Interconnect::cut_through(1, SimDuration::zero()),
             ReclaimMode::kReclaim);
  tasks::Task t = make_task(1, msec(10), SimTime{100000},
                            AffinitySet::single(0));
  t.actual_processing = msec(3);
  cl.deliver({{t, 0}}, SimTime::zero());
  const ValidationReport r = validate_execution(cl, {t});
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(ValidatorTest, DuplicateWorkloadIdsReported) {
  Cluster cl(1, Interconnect::cut_through(1, msec(1)));
  const auto t = make_task(1, msec(1), SimTime{100000},
                           AffinitySet::single(0));
  const ValidationReport r = validate_execution(cl, {t, t});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("duplicate"), std::string::npos);
}

}  // namespace
}  // namespace rtds::machine
