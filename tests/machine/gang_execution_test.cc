// Gang execution on the cluster: a k-worker assignment holds its whole
// contiguous block [worker, worker+k) for the task's span, produces ONE
// completion record (width == k), and the validator re-derives the block
// occupancy from first principles.
#include <gtest/gtest.h>

#include "common/error.h"
#include "machine/cluster.h"
#include "machine/validator.h"

namespace rtds::machine {
namespace {

Task make_gang(tasks::TaskId id, SimDuration p, std::uint32_t width,
               std::uint32_t machine) {
  Task t;
  t.id = id;
  t.processing = p;
  t.deadline = SimTime{1000000};
  t.affinity = AffinitySet::all(machine);
  t.workers_required = width;
  return t;
}

TEST(GangClusterTest, GangHoldsWholeBlockWithOneRecord) {
  Cluster cl(3, Interconnect::cut_through(3, SimDuration::zero()));
  const Task gang = make_gang(1, msec(4), 2, 3);
  cl.deliver({{gang, 0}}, SimTime::zero() + msec(1));
  ASSERT_EQ(cl.log().size(), 1u);
  const CompletionRecord& rec = cl.log()[0];
  EXPECT_EQ(rec.width, 2u);
  EXPECT_EQ(rec.worker, 0u);
  EXPECT_EQ(rec.start, SimTime::zero() + msec(1));
  EXPECT_EQ(rec.end, SimTime::zero() + msec(5));
  // Both block members are held to the end; the outsider stays idle.
  EXPECT_EQ(cl.busy_until(0), rec.end);
  EXPECT_EQ(cl.busy_until(1), rec.end);
  EXPECT_EQ(cl.busy_until(2), SimTime::zero());
  EXPECT_EQ(cl.busy_time(0), msec(4));
  EXPECT_EQ(cl.busy_time(1), msec(4));
  EXPECT_EQ(cl.busy_time(2), SimDuration::zero());
}

TEST(GangClusterTest, GangWaitsForBusiestBlockMember) {
  Cluster cl(3, Interconnect::cut_through(3, SimDuration::zero()));
  const Task single = make_gang(1, msec(6), 1, 3);
  cl.deliver({{single, 1}}, SimTime::zero());  // worker 1 busy to 6ms
  const Task gang = make_gang(2, msec(2), 2, 3);
  cl.deliver({{gang, 0}}, SimTime::zero() + msec(1));
  ASSERT_EQ(cl.log().size(), 2u);
  const CompletionRecord& rec = cl.log()[1];
  EXPECT_EQ(rec.start, SimTime::zero() + msec(6));  // waits for worker 1
  EXPECT_EQ(rec.end, SimTime::zero() + msec(8));
  EXPECT_EQ(cl.busy_until(0), rec.end);
  EXPECT_EQ(cl.busy_until(1), rec.end);
}

TEST(GangClusterTest, RejectsBlockExceedingMachine) {
  Cluster cl(3, Interconnect::cut_through(3, msec(1)));
  const Task gang = make_gang(1, msec(1), 2, 3);
  EXPECT_THROW(cl.deliver({{gang, 2}}, SimTime::zero()), InvalidArgument);
  const Task wide = make_gang(2, msec(1), 4, 3);
  EXPECT_THROW(cl.deliver({{wide, 0}}, SimTime::zero()), InvalidArgument);
}

TEST(GangClusterTest, ValidatorAcceptsCleanGangExecution) {
  Cluster cl(4, Interconnect::cut_through(4, msec(1)));
  std::vector<tasks::Task> wl{make_gang(1, msec(3), 2, 4),
                              make_gang(2, msec(2), 1, 4),
                              make_gang(3, msec(4), 3, 4)};
  cl.deliver({{wl[0], 0}, {wl[1], 3}}, SimTime::zero() + msec(1));
  cl.deliver({{wl[2], 1}}, SimTime::zero() + msec(2));  // queues behind gang
  const ValidationReport r = validate_execution(cl, wl);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.records_checked, 3u);
}

TEST(GangClusterTest, ValidatorDetectsWidthMismatch) {
  Cluster cl(3, Interconnect::cut_through(3, msec(1)));
  Task executed = make_gang(1, msec(2), 1, 3);
  cl.deliver({{executed, 0}}, SimTime::zero());
  // The workload says this task needed two workers; the log shows one.
  std::vector<tasks::Task> wl{make_gang(1, msec(2), 2, 3)};
  const ValidationReport r = validate_execution(cl, wl);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.to_string().find("logged gang width"), std::string::npos);
}

}  // namespace
}  // namespace rtds::machine
