#include "machine/schedule_export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace rtds::machine {
namespace {

Cluster loaded_cluster() {
  Cluster cl(2, Interconnect::cut_through(2, msec(1)));
  Task t1;
  t1.id = 7;
  t1.processing = msec(4);
  t1.deadline = SimTime::zero() + msec(20);
  t1.affinity.add(0);
  Task t2 = t1;
  t2.id = 8;
  t2.deadline = SimTime::zero() + msec(2);  // will miss
  cl.deliver({{t1, 0}, {t2, 1}}, SimTime::zero());
  return cl;
}

TEST(CompletionCsvTest, OneRowPerTaskWithHeader) {
  const Cluster cl = loaded_cluster();
  std::ostringstream os;
  write_completion_csv(cl, os);
  const std::string out = os.str();
  // Header + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("task,worker,"), std::string::npos);
  // Task 7 on worker 0 hits; task 8 pays comm and misses.
  EXPECT_NE(out.find("7,0,0,0,4000,20000,0,1"), std::string::npos);
  EXPECT_NE(out.find("8,1,0,0,5000,2000,1000,0"), std::string::npos);
}

TEST(UtilizationSummaryTest, ReportsEveryWorker) {
  const Cluster cl = loaded_cluster();
  std::ostringstream os;
  write_utilization_summary(cl, SimTime::zero() + msec(10), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("worker"), std::string::npos);
  // Worker 0: 4ms busy over 10ms horizon = 40%.
  EXPECT_NE(out.find("40.0"), std::string::npos);
  // Worker 1: 5ms (4 + 1 comm) = 50%.
  EXPECT_NE(out.find("50.0"), std::string::npos);
}

TEST(UtilizationSummaryTest, RejectsZeroHorizon) {
  const Cluster cl = loaded_cluster();
  std::ostringstream os;
  EXPECT_THROW(write_utilization_summary(cl, SimTime::zero(), os),
               InvalidArgument);
}

}  // namespace
}  // namespace rtds::machine
