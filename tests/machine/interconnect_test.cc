#include "machine/interconnect.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::machine {
namespace {

TEST(CutThroughTest, ZeroForAffineConstantOtherwise) {
  const Interconnect net = Interconnect::cut_through(8, msec(3));
  AffinitySet aff;
  aff.add(2);
  aff.add(5);
  EXPECT_EQ(net.comm_cost(aff, 2), SimDuration::zero());
  EXPECT_EQ(net.comm_cost(aff, 5), SimDuration::zero());
  for (ProcessorId p : {0u, 1u, 3u, 4u, 6u, 7u}) {
    EXPECT_EQ(net.comm_cost(aff, p), msec(3));
  }
}

TEST(CutThroughTest, DistanceIndependent) {
  // The defining property of wormhole routing in the paper's model.
  const Interconnect net = Interconnect::cut_through(16, msec(1));
  const AffinitySet aff = AffinitySet::single(0);
  EXPECT_EQ(net.comm_cost(aff, 1), net.comm_cost(aff, 15));
}

TEST(CutThroughTest, ValidatesArguments) {
  EXPECT_THROW(Interconnect::cut_through(0, msec(1)), InvalidArgument);
  EXPECT_THROW(Interconnect::cut_through(4, usec(-1)), InvalidArgument);
  const Interconnect net = Interconnect::cut_through(4, msec(1));
  EXPECT_THROW(static_cast<void>(net.comm_cost(AffinitySet::single(0), 4)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(net.comm_cost(AffinitySet::none(), 0)), InvalidArgument);
}

TEST(MeshTest, ZeroForHolder) {
  const Interconnect net = Interconnect::mesh(9, usec(100));
  EXPECT_EQ(net.comm_cost(AffinitySet::single(4), 4), SimDuration::zero());
}

TEST(MeshTest, ManhattanDistanceOn3x3) {
  // Workers laid out row-major on a 3x3 grid:
  //   0 1 2
  //   3 4 5
  //   6 7 8
  const Interconnect net = Interconnect::mesh(9, usec(100));
  const AffinitySet origin = AffinitySet::single(0);
  EXPECT_EQ(net.comm_cost(origin, 1), usec(100));   // 1 hop
  EXPECT_EQ(net.comm_cost(origin, 3), usec(100));   // 1 hop
  EXPECT_EQ(net.comm_cost(origin, 4), usec(200));   // 2 hops
  EXPECT_EQ(net.comm_cost(origin, 8), usec(400));   // 4 hops
}

TEST(MeshTest, NearestHolderWins) {
  const Interconnect net = Interconnect::mesh(9, usec(100));
  AffinitySet holders;
  holders.add(0);
  holders.add(8);
  // Worker 5 is 3 hops from 0 but 1 hop from 8.
  EXPECT_EQ(net.comm_cost(holders, 5), usec(100));
}

TEST(MeshTest, ModelAccessorsReport) {
  const Interconnect ct = Interconnect::cut_through(4, msec(1));
  EXPECT_EQ(ct.model(), RoutingModel::kCutThrough);
  EXPECT_EQ(ct.num_workers(), 4u);
  const Interconnect mesh = Interconnect::mesh(4, msec(1));
  EXPECT_EQ(mesh.model(), RoutingModel::kStoreAndForward);
}

TEST(MeshTest, MeshCostExceedsOrEqualsCutThroughShape) {
  // With per-hop cost equal to the constant cost, the mesh can only be
  // more expensive than cut-through for non-adjacent placements.
  const Interconnect ct = Interconnect::cut_through(16, usec(500));
  const Interconnect mesh = Interconnect::mesh(16, usec(500));
  const AffinitySet aff = AffinitySet::single(0);
  for (ProcessorId p = 1; p < 16; ++p) {
    EXPECT_GE(mesh.comm_cost(aff, p), ct.comm_cost(aff, p));
  }
}

}  // namespace
}  // namespace rtds::machine
