// Tests of the resource-reclaiming execution mode (paper ref [3]).
#include <gtest/gtest.h>

#include "common/error.h"
#include "machine/cluster.h"

namespace rtds::machine {
namespace {

Task make_task(tasks::TaskId id, SimDuration worst, SimDuration actual,
               SimTime d) {
  Task t;
  t.id = id;
  t.processing = worst;
  t.actual_processing = actual;
  t.deadline = d;
  t.affinity.add(0);
  return t;
}

Cluster make_cluster(ReclaimMode mode) {
  return Cluster(1, Interconnect::cut_through(1, SimDuration::zero()), mode);
}

TEST(TaskEffectiveProcessingTest, ZeroMeansWorstCase) {
  Task t;
  t.processing = msec(5);
  EXPECT_EQ(t.effective_processing(), msec(5));
  t.actual_processing = msec(2);
  EXPECT_EQ(t.effective_processing(), msec(2));
}

TEST(ReclaimTest, WorstCaseModeIgnoresActualCosts) {
  Cluster cl = make_cluster(ReclaimMode::kWorstCase);
  cl.deliver({{make_task(1, msec(10), msec(2), SimTime{1000000}), 0}},
             SimTime::zero());
  EXPECT_EQ(cl.log()[0].end, SimTime::zero() + msec(10));
  EXPECT_EQ(cl.reclaimed_time(), SimDuration::zero());
  EXPECT_EQ(cl.reclaim_mode(), ReclaimMode::kWorstCase);
}

TEST(ReclaimTest, ReclaimModeExecutesActualAndStartsNextEarly) {
  Cluster cl = make_cluster(ReclaimMode::kReclaim);
  cl.deliver({{make_task(1, msec(10), msec(2), SimTime{1000000}), 0},
              {make_task(2, msec(4), msec(4), SimTime{1000000}), 0}},
             SimTime::zero());
  // Task 1 really finishes at 2ms; task 2 starts there, not at 10ms.
  EXPECT_EQ(cl.log()[0].end, SimTime::zero() + msec(2));
  EXPECT_EQ(cl.log()[1].start, SimTime::zero() + msec(2));
  EXPECT_EQ(cl.log()[1].end, SimTime::zero() + msec(6));
  EXPECT_EQ(cl.reclaimed_time(), msec(8));
}

TEST(ReclaimTest, ReclaimingOnlyMovesCompletionsEarlier) {
  // The soundness property behind the theorem: for the same delivery, every
  // completion under reclaiming is <= the worst-case completion.
  const auto run = [&](ReclaimMode mode) {
    Cluster cl = make_cluster(mode);
    std::vector<ScheduledAssignment> sched;
    for (tasks::TaskId i = 0; i < 10; ++i) {
      sched.push_back({make_task(i, msec(5), msec(1 + std::int64_t(i) % 5),
                                 SimTime{10000000}),
                       0});
    }
    cl.deliver(sched, SimTime::zero());
    return cl;
  };
  const Cluster worst = run(ReclaimMode::kWorstCase);
  const Cluster reclaim = run(ReclaimMode::kReclaim);
  for (std::size_t i = 0; i < worst.log().size(); ++i) {
    EXPECT_LE(reclaim.log()[i].end, worst.log()[i].end);
  }
  EXPECT_LE(reclaim.makespan(), worst.makespan());
}

TEST(ReclaimTest, TurnsMissIntoHit) {
  // Worst-case planning would miss; actual execution makes the deadline.
  Cluster worst = make_cluster(ReclaimMode::kWorstCase);
  Cluster reclaim = make_cluster(ReclaimMode::kReclaim);
  const std::vector<ScheduledAssignment> sched{
      {make_task(1, msec(10), msec(2), SimTime{1000000}), 0},
      {make_task(2, msec(4), msec(4), SimTime::zero() + msec(8)), 0}};
  worst.deliver(sched, SimTime::zero());
  reclaim.deliver(sched, SimTime::zero());
  EXPECT_EQ(worst.stats().deadline_misses, 1u);
  EXPECT_EQ(reclaim.stats().deadline_misses, 0u);
}

TEST(ReclaimTest, RejectsActualAboveWorstCase) {
  Cluster cl = make_cluster(ReclaimMode::kReclaim);
  EXPECT_THROW(
      cl.deliver({{make_task(1, msec(2), msec(5), SimTime{1000000}), 0}},
                 SimTime::zero()),
      InvalidArgument);
}

TEST(ReclaimTest, BusyTimeReflectsActualDemand) {
  Cluster cl = make_cluster(ReclaimMode::kReclaim);
  cl.deliver({{make_task(1, msec(10), msec(3), SimTime{1000000}), 0}},
             SimTime::zero());
  EXPECT_EQ(cl.busy_time(0), msec(3));
  EXPECT_EQ(cl.load(0, SimTime::zero()), msec(3));
}

}  // namespace
}  // namespace rtds::machine
