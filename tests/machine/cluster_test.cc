#include "machine/cluster.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace rtds::machine {
namespace {

Task make_task(tasks::TaskId id, SimDuration p, SimTime d,
               AffinitySet affinity) {
  Task t;
  t.id = id;
  t.processing = p;
  t.deadline = d;
  t.affinity = affinity;
  return t;
}

Cluster make_cluster(std::uint32_t workers, SimDuration c = msec(2)) {
  return Cluster(workers, Interconnect::cut_through(workers, c));
}

TEST(ClusterTest, StartsIdle) {
  Cluster cl = make_cluster(4);
  for (ProcessorId k = 0; k < 4; ++k) {
    EXPECT_EQ(cl.load(k, SimTime::zero()), SimDuration::zero());
    EXPECT_EQ(cl.busy_until(k), SimTime::zero());
  }
  EXPECT_EQ(cl.min_load(SimTime::zero()), SimDuration::zero());
  EXPECT_EQ(cl.makespan(), SimTime::zero());
  EXPECT_EQ(cl.stats().executed, 0u);
}

TEST(ClusterTest, ValidatesConstruction) {
  EXPECT_THROW(Cluster(0, Interconnect::cut_through(1, msec(1))),
               InvalidArgument);
  EXPECT_THROW(Cluster(4, Interconnect::cut_through(2, msec(1))),
               InvalidArgument);
}

TEST(ClusterTest, SequentialExecutionOnOneWorker) {
  Cluster cl = make_cluster(2);
  const SimTime now = SimTime::zero() + msec(1);
  cl.deliver({{make_task(1, msec(5), SimTime{100000}, AffinitySet::single(0)),
               0},
              {make_task(2, msec(3), SimTime{100000}, AffinitySet::single(0)),
               0}},
             now);
  ASSERT_EQ(cl.log().size(), 2u);
  EXPECT_EQ(cl.log()[0].start, now);
  EXPECT_EQ(cl.log()[0].end, now + msec(5));
  EXPECT_EQ(cl.log()[1].start, now + msec(5));
  EXPECT_EQ(cl.log()[1].end, now + msec(8));
  EXPECT_EQ(cl.busy_until(0), now + msec(8));
  EXPECT_EQ(cl.busy_until(1), SimTime::zero());
  EXPECT_EQ(cl.makespan(), now + msec(8));
}

TEST(ClusterTest, CommunicationCostAddedOffAffinity) {
  Cluster cl = make_cluster(2, msec(2));
  cl.deliver({{make_task(1, msec(5), SimTime{100000}, AffinitySet::single(1)),
               0}},
             SimTime::zero());
  ASSERT_EQ(cl.log().size(), 1u);
  EXPECT_EQ(cl.log()[0].comm_cost, msec(2));
  EXPECT_EQ(cl.log()[0].end, SimTime::zero() + msec(7));
  EXPECT_EQ(cl.busy_time(0), msec(7));
}

TEST(ClusterTest, DeadlineAccounting) {
  Cluster cl = make_cluster(1, msec(0));
  const AffinitySet a0 = AffinitySet::single(0);
  // Hit: 5ms work, 10ms deadline. Miss: queued behind it.
  cl.deliver({{make_task(1, msec(5), SimTime::zero() + msec(10), a0), 0},
              {make_task(2, msec(5), SimTime::zero() + msec(6), a0), 0}},
             SimTime::zero());
  EXPECT_EQ(cl.stats().executed, 2u);
  EXPECT_EQ(cl.stats().deadline_hits, 1u);
  EXPECT_EQ(cl.stats().deadline_misses, 1u);
  EXPECT_TRUE(cl.log()[0].met_deadline());
  EXPECT_FALSE(cl.log()[1].met_deadline());
}

TEST(ClusterTest, DeadlineExactlyAtEndIsHit) {
  Cluster cl = make_cluster(1, msec(0));
  cl.deliver({{make_task(1, msec(5), SimTime::zero() + msec(5),
                         AffinitySet::single(0)),
               0}},
             SimTime::zero());
  EXPECT_EQ(cl.stats().deadline_hits, 1u);
}

TEST(ClusterTest, LoadDrainsOverTime) {
  Cluster cl = make_cluster(2);
  cl.deliver({{make_task(1, msec(6), SimTime{1000000}, AffinitySet::single(0)),
               0}},
             SimTime::zero());
  EXPECT_EQ(cl.load(0, SimTime::zero()), msec(6));
  EXPECT_EQ(cl.load(0, SimTime::zero() + msec(4)), msec(2));
  EXPECT_EQ(cl.load(0, SimTime::zero() + msec(6)), SimDuration::zero());
  EXPECT_EQ(cl.load(0, SimTime::zero() + msec(9)), SimDuration::zero());
  EXPECT_EQ(cl.min_load(SimTime::zero()), SimDuration::zero());  // worker 1
}

TEST(ClusterTest, LaterDeliveryStartsAtDeliveryTime) {
  Cluster cl = make_cluster(1);
  const AffinitySet a0 = AffinitySet::single(0);
  cl.deliver({{make_task(1, msec(2), SimTime{1000000}, a0), 0}},
             SimTime::zero());
  // Worker idle from 2ms; delivery at 5ms starts at 5ms, not 2ms.
  cl.deliver({{make_task(2, msec(2), SimTime{1000000}, a0), 0}},
             SimTime::zero() + msec(5));
  EXPECT_EQ(cl.log()[1].start, SimTime::zero() + msec(5));
  EXPECT_EQ(cl.log()[1].end, SimTime::zero() + msec(7));
}

TEST(ClusterTest, DeliveryToBusyWorkerQueues) {
  Cluster cl = make_cluster(1);
  const AffinitySet a0 = AffinitySet::single(0);
  cl.deliver({{make_task(1, msec(10), SimTime{1000000}, a0), 0}},
             SimTime::zero());
  cl.deliver({{make_task(2, msec(2), SimTime{1000000}, a0), 0}},
             SimTime::zero() + msec(3));
  EXPECT_EQ(cl.log()[1].start, SimTime::zero() + msec(10));
}

TEST(ClusterTest, MultiWorkerIndependentQueues) {
  Cluster cl = make_cluster(3);
  const SimTime d = SimTime{1000000};
  cl.deliver({{make_task(1, msec(4), d, AffinitySet::single(0)), 0},
              {make_task(2, msec(2), d, AffinitySet::single(1)), 1},
              {make_task(3, msec(7), d, AffinitySet::single(2)), 2}},
             SimTime::zero());
  EXPECT_EQ(cl.busy_until(0), SimTime::zero() + msec(4));
  EXPECT_EQ(cl.busy_until(1), SimTime::zero() + msec(2));
  EXPECT_EQ(cl.busy_until(2), SimTime::zero() + msec(7));
  EXPECT_EQ(cl.makespan(), SimTime::zero() + msec(7));
  EXPECT_EQ(cl.min_load(SimTime::zero() + msec(1)), msec(1));
}

TEST(ClusterTest, RejectsBadWorkerIds) {
  Cluster cl = make_cluster(2);
  EXPECT_THROW(static_cast<void>(cl.load(2, SimTime::zero())), InvalidArgument);
  EXPECT_THROW(static_cast<void>(cl.busy_until(2)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(cl.busy_time(2)), InvalidArgument);
  EXPECT_THROW(
      cl.deliver({{make_task(1, msec(1), SimTime{10}, AffinitySet::single(0)),
                   5}},
                 SimTime::zero()),
      InvalidArgument);
}

TEST(ClusterTest, ExecutionCostHelper) {
  Cluster cl = make_cluster(2, msec(3));
  const Task t =
      make_task(1, msec(4), SimTime{1000000}, AffinitySet::single(1));
  EXPECT_EQ(cl.execution_cost(t, 1), msec(4));
  EXPECT_EQ(cl.execution_cost(t, 0), msec(7));
}

}  // namespace
}  // namespace rtds::machine
