// End-to-end integration tests: the full paper pipeline — database,
// placement, transactions, scheduling search, quantum control, simulated
// execution — wired together exactly as the benchmark harness does, with
// qualitative checks of the paper's headline claims at reduced scale.
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "sched/presets.h"

namespace rtds::exp {
namespace {

ExperimentConfig paper_like(std::uint32_t workers, double replication,
                            double sf) {
  ExperimentConfig cfg;
  cfg.num_workers = workers;
  cfg.replication_rate = replication;
  cfg.scaling_factor = sf;
  cfg.num_transactions = 300;  // reduced from 1000 to keep tests quick
  cfg.repetitions = 3;         // reduced from 10
  return cfg;
}

TEST(EndToEndTest, CorrectionTheoremHoldsOnPaperWorkload) {
  for (const auto& factory :
       {sched::make_rt_sads, sched::make_d_cols}) {
    const auto algo = factory();
    const Aggregate agg = run_repeated(paper_like(10, 0.3, 1.0), *algo);
    EXPECT_DOUBLE_EQ(agg.exec_misses.max(), 0.0) << algo->name();
  }
}

TEST(EndToEndTest, RtSadsBeatsDColsOnPaperHeadlineConfig) {
  // Figure 5's headline point: m = 10, R = 30%, SF = 1.
  const ExperimentConfig cfg = paper_like(10, 0.3, 1.0);
  const auto rt = sched::make_rt_sads();
  const auto dc = sched::make_d_cols();
  const Aggregate a = run_repeated(cfg, *rt);
  const Aggregate b = run_repeated(cfg, *dc);
  EXPECT_GT(a.hit_ratio.mean(), b.hit_ratio.mean());
}

TEST(EndToEndTest, RtSadsScalesWithProcessors) {
  // Fig. 5's RT-SADS curve: compliance rises with m.
  const auto rt = sched::make_rt_sads();
  const double at2 = run_repeated(paper_like(2, 0.3, 1.0), *rt)
                         .hit_ratio.mean();
  const double at10 = run_repeated(paper_like(10, 0.3, 1.0), *rt)
                          .hit_ratio.mean();
  EXPECT_GT(at10, at2);
}

TEST(EndToEndTest, LooserDeadlinesImproveCompliance) {
  // SF sweep direction: SF=3 is easier than SF=1 for both algorithms.
  for (const auto& factory :
       {sched::make_rt_sads, sched::make_d_cols}) {
    const auto algo = factory();
    const double tight = run_repeated(paper_like(6, 0.3, 1.0), *algo)
                             .hit_ratio.mean();
    const double loose = run_repeated(paper_like(6, 0.3, 3.0), *algo)
                             .hit_ratio.mean();
    EXPECT_GE(loose + 0.02, tight) << algo->name();
  }
}

TEST(EndToEndTest, DColsGainsMoreFromReplicationButStaysBehind) {
  // Fig. 6 mechanism: with full replication processor selection stops
  // mattering, so D-COLS catches up — but RT-SADS stays ahead or equal.
  const auto rt = sched::make_rt_sads();
  const auto dc = sched::make_d_cols();
  const ExperimentConfig low = paper_like(10, 0.1, 1.0);
  const ExperimentConfig high = paper_like(10, 1.0, 1.0);
  const double dc_low = run_repeated(low, *dc).hit_ratio.mean();
  const double dc_high = run_repeated(high, *dc).hit_ratio.mean();
  const double rt_high = run_repeated(high, *rt).hit_ratio.mean();
  EXPECT_GT(dc_high, dc_low);
  EXPECT_GE(rt_high + 0.02, dc_high);
}

TEST(EndToEndTest, SelfAdjustingQuantumAdaptsAcrossPhases) {
  // The Fig. 3 criterion must actually vary the allocation across phases
  // within a run (slack and load both move), whereas a fixed quantum is
  // constant by construction.
  ExperimentConfig cfg = paper_like(8, 0.3, 1.0);
  const auto rt = sched::make_rt_sads();
  const sched::RunMetrics adaptive = run_once(cfg, *rt, 7);
  EXPECT_LT(adaptive.min_quantum_seen, adaptive.max_quantum_seen);

  cfg.quantum = QuantumKind::kFixed;
  cfg.fixed_quantum = msec(5);
  const sched::RunMetrics fixed = run_once(cfg, *rt, 7);
  EXPECT_EQ(fixed.min_quantum_seen, fixed.max_quantum_seen);
  EXPECT_EQ(fixed.max_quantum_seen, msec(5));
}

TEST(EndToEndTest, StatisticalProtocolDetectsTheHeadlineGap) {
  // With 5 repetitions the Welch test should already separate RT-SADS from
  // D-COLS on the headline configuration at the paper's 0.01 level.
  ExperimentConfig cfg = paper_like(10, 0.3, 1.0);
  cfg.repetitions = 5;
  const auto rt = sched::make_rt_sads();
  const auto dc = sched::make_d_cols();
  const Aggregate a = run_repeated(cfg, *rt);
  const Aggregate b = run_repeated(cfg, *dc);
  const WelchResult w = compare_hit_ratios(a, b);
  EXPECT_TRUE(w.significant(0.01))
      << "p=" << w.p_value << " rt=" << a.hit_ratio.mean()
      << " dcols=" << b.hit_ratio.mean();
}

TEST(EndToEndTest, SchedulerSpreadsLoadAcrossWorkers) {
  // RT-SADS's cost function balances: on the headline config, every worker
  // should execute a non-trivial share of the transactions.
  const ExperimentConfig cfg = paper_like(10, 0.3, 1.0);
  const auto algo = sched::make_rt_sads();
  const sched::RunMetrics m = run_once(cfg, *algo, 42);
  EXPECT_GT(m.scheduled, 0u);
  EXPECT_EQ(m.exec_misses, 0u);
}

}  // namespace
}  // namespace rtds::exp
