// Cross-backend task conservation: no workload, overload or backend may
// lose a task silently. Every offered task must end in exactly one terminal
// state — deadline_hit, exec_miss, culled or rejected — and the aggregate
// metrics must balance: total == hits + exec_misses + culled + rejected.
//
// The flood test is the regression for the PR-1 overflow bug: with a
// single-slot mailbox the host used to retire refused assignments as if
// they had been delivered, so they vanished from every counter. Against
// that behavior these tests fail; with backpressure + readmission +
// ledger they pass on all three backends.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "exp/analysis.h"
#include "machine/cluster.h"
#include "runtime/threaded_backend.h"
#include "sched/backend.h"
#include "sched/ledger.h"
#include "sched/partitioned.h"
#include "sched/pipeline.h"
#include "sched/presets.h"
#include "sched/quantum.h"
#include "sim/simulator.h"
#include "tasks/workload.h"

namespace rtds {
namespace {

using sched::RunMetrics;
using sched::TaskLedger;
using sched::TaskState;

bool terminal(TaskState s) {
  return s == TaskState::kDeadlineHit || s == TaskState::kExecMiss ||
         s == TaskState::kCulled || s == TaskState::kRejected;
}

void expect_conserved(const RunMetrics& m, const TaskLedger& ledger,
                      std::size_t workload_size) {
  EXPECT_EQ(m.total_tasks, workload_size);
  EXPECT_EQ(m.deadline_hits + m.exec_misses + m.culled + m.rejected,
            m.total_tasks);
  EXPECT_TRUE(ledger.counts().conserved());
  EXPECT_EQ(ledger.size(), workload_size);
  for (const auto& [id, state] : ledger.states()) {
    EXPECT_TRUE(terminal(state))
        << "task " << id << " left in state " << sched::to_string(state);
  }
  const exp::ConservationReport report = exp::conservation_report(ledger);
  EXPECT_TRUE(report.conserved()) << report.to_string();
}

std::vector<tasks::Task> random_workload(std::uint64_t seed,
                                         std::uint32_t num_tasks,
                                         std::uint32_t workers,
                                         double laxity_min,
                                         double laxity_max) {
  tasks::WorkloadConfig wc;
  wc.num_tasks = num_tasks;
  wc.num_processors = workers;
  wc.arrival = tasks::ArrivalPattern::kPoisson;
  wc.mean_interarrival = usec(300);
  wc.processing_min = usec(200);
  wc.processing_max = msec(2);
  wc.affinity_degree = 0.5;
  wc.laxity_min = laxity_min;
  wc.laxity_max = laxity_max;
  Xoshiro256ss rng(seed);
  return tasks::generate_workload(wc, rng);
}

TEST(ConservationTest, SimBackendConservesOnRandomWorkloads) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  const sched::PhasePipeline pipeline(*algo, *q);
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    // Tight laxity so culling genuinely happens on some seeds.
    const auto wl = random_workload(seed, 120, 4, 1.5, 6.0);
    machine::Cluster cluster(4,
                             machine::Interconnect::cut_through(4, msec(1)));
    sim::Simulator sim;
    sched::SimBackend backend(cluster, sim);
    TaskLedger ledger;
    const RunMetrics m = pipeline.run(wl, backend, nullptr, &ledger);
    expect_conserved(m, ledger, wl.size());
    EXPECT_EQ(m.overflow_drops, 0u);  // DES queues are unbounded
    EXPECT_EQ(m.rejected, 0u);
  }
}

TEST(ConservationTest, PartitionedBackendConservesPerShardAndInTotal) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  sched::PartitionedConfig cfg;
  cfg.num_shards = 2;
  cfg.total_workers = 8;
  cfg.comm_cost = msec(2);
  for (std::uint64_t seed : {21u, 22u}) {
    const auto wl = random_workload(seed, 150, 8, 2.0, 8.0);
    const sched::PartitionedMetrics pm =
        sched::run_partitioned(*algo, *q, cfg, wl);
    EXPECT_EQ(pm.total_tasks(), wl.size());
    EXPECT_TRUE(pm.conserved());
    for (const RunMetrics& m : pm.shards) {
      EXPECT_EQ(m.deadline_hits + m.exec_misses + m.culled + m.rejected,
                m.total_tasks);
    }
  }
}

TEST(ConservationTest, ThreadedBackendConservesOnRandomWorkloads) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  for (std::uint64_t seed : {31u, 32u}) {
    const auto wl = random_workload(seed, 60, 3, 30.0, 60.0);
    runtime::RuntimeConfig cfg;
    cfg.num_workers = 3;
    cfg.comm_cost = msec(1);
    cfg.time_scale = 0.05;
    sched::PipelineConfig pcfg;
    pcfg.vertex_generation_cost = cfg.vertex_cost;
    pcfg.phase_overhead = SimDuration::zero();
    const sched::PhasePipeline pipeline(*algo, *q, pcfg);
    runtime::ThreadedBackend backend(cfg);
    TaskLedger ledger;
    const RunMetrics m = pipeline.run(wl, backend, nullptr, &ledger);
    expect_conserved(m, ledger, wl.size());
  }
}

TEST(ConservationTest, FloodedTinyMailboxLosesNoTask) {
  // Regression for the PR-1 silent-loss bug: a single-slot mailbox under a
  // 24-task burst forces overflow; every refused task must later be
  // executed or explicitly rejected — never unaccounted.
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  std::vector<tasks::Task> wl;
  for (std::uint32_t i = 0; i < 24; ++i) {
    tasks::Task t;
    t.id = i;
    t.arrival = SimTime::zero();
    t.processing = msec(4);
    t.deadline = SimTime::zero() + sec(120);
    t.affinity.add(i % 2);
    wl.push_back(t);
  }
  runtime::RuntimeConfig cfg;
  cfg.num_workers = 2;
  cfg.comm_cost = msec(1);
  cfg.mailbox_capacity = 1;
  sched::PipelineConfig pcfg;
  pcfg.vertex_generation_cost = cfg.vertex_cost;
  pcfg.phase_overhead = SimDuration::zero();
  pcfg.max_delivery_attempts = 0;  // readmit until delivered or culled
  const sched::PhasePipeline pipeline(*algo, *q, pcfg);
  runtime::ThreadedBackend backend(cfg);
  TaskLedger ledger;
  const RunMetrics m = pipeline.run(wl, backend, nullptr, &ledger);

  EXPECT_GT(m.overflow_drops, 0u);  // the overload genuinely happened
  EXPECT_GT(m.readmissions, 0u);
  EXPECT_GT(m.backpressure_waits, 0u);
  expect_conserved(m, ledger, wl.size());
  // With two-minute deadlines nothing should have been lost to the flood:
  // every task was eventually executed.
  EXPECT_EQ(m.scheduled, m.total_tasks);
  EXPECT_EQ(m.deadline_hits, m.total_tasks);
}

TEST(ConservationTest, BoundedAttemptsRejectInsteadOfLosing) {
  // Same flood with a delivery budget of 2: some tasks are retired as
  // explicit rejections, and the books still balance exactly.
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  std::vector<tasks::Task> wl;
  for (std::uint32_t i = 0; i < 24; ++i) {
    tasks::Task t;
    t.id = i;
    t.arrival = SimTime::zero();
    t.processing = msec(4);
    t.deadline = SimTime::zero() + sec(120);
    t.affinity.add(0);
    wl.push_back(t);
  }
  runtime::RuntimeConfig cfg;
  cfg.num_workers = 1;
  cfg.comm_cost = msec(1);
  cfg.mailbox_capacity = 1;
  cfg.delivery_retries = 0;
  sched::PipelineConfig pcfg;
  pcfg.vertex_generation_cost = cfg.vertex_cost;
  pcfg.phase_overhead = SimDuration::zero();
  pcfg.max_delivery_attempts = 2;
  pcfg.delivery_backpressure = SimDuration::zero();  // hot loop on purpose
  const sched::PhasePipeline pipeline(*algo, *q, pcfg);
  runtime::ThreadedBackend backend(cfg);
  TaskLedger ledger;
  const RunMetrics m = pipeline.run(wl, backend, nullptr, &ledger);

  EXPECT_GT(m.rejected, 0u);
  expect_conserved(m, ledger, wl.size());
  EXPECT_EQ(ledger.counts().rejected, m.rejected);
}

}  // namespace
}  // namespace rtds
