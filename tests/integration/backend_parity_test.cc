// Cross-backend parity: the ONE PhasePipeline must behave the same no
// matter which ExecutionBackend it drives.
//
//   * SimBackend vs ThreadedBackend — a deterministic workload (all tasks
//     present at t=0, laxity far beyond any wall-clock jitter, time_scale
//     << 1) must yield identical scheduled/culled counts: the phase
//     decisions depend only on the batch and the (initially idle) loads,
//     which both backends present identically.
//   * PartitionedBackend with K=1 — exactly one host owning all workers is
//     the same machine as a plain SimBackend, so the full RunMetrics must
//     match field for field (also asserted in sched/partitioned_test.cc on
//     a generated workload; here on the shared parity workload).
#include <gtest/gtest.h>

#include <vector>

#include "machine/cluster.h"
#include "runtime/threaded_runtime.h"
#include "sched/backend.h"
#include "sched/pipeline.h"
#include "sched/presets.h"
#include "sched/quantum.h"
#include "sim/simulator.h"
#include "tasks/task.h"

namespace rtds {
namespace {

using sched::RunMetrics;
using tasks::AffinitySet;
using tasks::Task;

constexpr std::uint32_t kWorkers = 3;

/// All tasks arrive at t=0 with enormous laxity: every backend sees the
/// same single initial batch, schedules everything in the first phases and
/// culls nothing, regardless of clock jitter.
std::vector<Task> parity_workload() {
  std::vector<Task> wl;
  for (std::uint32_t i = 0; i < 12; ++i) {
    Task t;
    t.id = i;
    t.arrival = SimTime::zero();
    t.processing = msec(1 + (i % 3));
    t.deadline = SimTime::zero() + sec(120);  // >> any wall-clock noise
    t.affinity = AffinitySet::single(i % kWorkers);
    wl.push_back(t);
  }
  return wl;
}

TEST(BackendParityTest, SimAndThreadedAgreeOnScheduledAndCulled) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  const std::vector<Task> wl = parity_workload();

  machine::Cluster cluster(
      kWorkers, machine::Interconnect::cut_through(kWorkers, msec(1)));
  sim::Simulator sim;
  const sched::PhasePipeline pipeline(*algo, *q);
  sched::SimBackend sim_backend(cluster, sim);
  const RunMetrics sim_m = pipeline.run(wl, sim_backend);

  runtime::RuntimeConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.comm_cost = msec(1);
  cfg.vertex_cost = usec(10);
  cfg.time_scale = 0.01;  // execute 100x faster than nominal
  const RunMetrics thr_m = runtime::run_threaded(*algo, *q, cfg, wl);

  EXPECT_EQ(sim_m.total_tasks, wl.size());
  EXPECT_EQ(sim_m.scheduled, wl.size());
  EXPECT_EQ(sim_m.culled, 0u);
  EXPECT_EQ(thr_m.scheduled, sim_m.scheduled);
  EXPECT_EQ(thr_m.culled, sim_m.culled);
  EXPECT_EQ(thr_m.overflow_drops, 0u);
  EXPECT_EQ(thr_m.readmissions, 0u);
  EXPECT_EQ(thr_m.rejected, 0u);
  // With two-minute deadlines both deployments also hit everything.
  EXPECT_EQ(sim_m.deadline_hits, wl.size());
  EXPECT_EQ(thr_m.deadline_hits, wl.size());
}

TEST(BackendParityTest, PartitionedSingleHostMatchesSimBackendExactly) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  const std::vector<Task> wl = parity_workload();
  const sched::PhasePipeline pipeline(*algo, *q);

  machine::Cluster cluster(
      kWorkers, machine::Interconnect::cut_through(kWorkers, msec(1)));
  sim::Simulator sim;
  sched::SimBackend sim_backend(cluster, sim);
  const RunMetrics sim_m = pipeline.run(wl, sim_backend);

  sched::PartitionedBackend part(1, kWorkers, msec(1),
                                 machine::ReclaimMode::kWorstCase);
  const RunMetrics part_m = pipeline.run(wl, part.host(0));

  EXPECT_EQ(part_m.total_tasks, sim_m.total_tasks);
  EXPECT_EQ(part_m.scheduled, sim_m.scheduled);
  EXPECT_EQ(part_m.deadline_hits, sim_m.deadline_hits);
  EXPECT_EQ(part_m.exec_misses, sim_m.exec_misses);
  EXPECT_EQ(part_m.culled, sim_m.culled);
  EXPECT_EQ(part_m.rejected, sim_m.rejected);
  EXPECT_EQ(part_m.overflow_drops, sim_m.overflow_drops);
  EXPECT_EQ(part_m.readmissions, sim_m.readmissions);
  EXPECT_EQ(part_m.backpressure_waits, sim_m.backpressure_waits);
  EXPECT_EQ(part_m.quantum_floor_overrides, sim_m.quantum_floor_overrides);
  EXPECT_EQ(part_m.phases, sim_m.phases);
  EXPECT_EQ(part_m.vertices_generated, sim_m.vertices_generated);
  EXPECT_EQ(part_m.expansions, sim_m.expansions);
  EXPECT_EQ(part_m.backtracks, sim_m.backtracks);
  EXPECT_EQ(part_m.dead_ends, sim_m.dead_ends);
  EXPECT_EQ(part_m.leaves, sim_m.leaves);
  EXPECT_EQ(part_m.budget_exhaustions, sim_m.budget_exhaustions);
  EXPECT_EQ(part_m.finish_time, sim_m.finish_time);
  EXPECT_EQ(part_m.scheduling_time, sim_m.scheduling_time);
  EXPECT_EQ(part_m.allocated_quantum, sim_m.allocated_quantum);
  EXPECT_EQ(part_m.min_quantum_seen, sim_m.min_quantum_seen);
  EXPECT_EQ(part_m.max_quantum_seen, sim_m.max_quantum_seen);
  // Same completion log on the underlying clusters, record for record.
  const auto& a = cluster.log();
  const auto& b = part.cluster(0).log();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].worker, b[i].worker);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(BackendParityTest, ObserverSeesPhasesOnEveryBackend) {
  // Phase tracing used to be a DES-only feature; through the unified
  // pipeline the threaded deployment reports phases identically.
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  const std::vector<Task> wl = parity_workload();

  sched::PhaseTraceRecorder sim_trace;
  machine::Cluster cluster(
      kWorkers, machine::Interconnect::cut_through(kWorkers, msec(1)));
  sim::Simulator sim;
  const sched::PhasePipeline pipeline(*algo, *q);
  sched::SimBackend sim_backend(cluster, sim);
  const RunMetrics sim_m = pipeline.run(wl, sim_backend, &sim_trace);
  EXPECT_EQ(sim_trace.records().size(), sim_m.phases);

  sched::PhaseTraceRecorder thr_trace;
  runtime::RuntimeConfig cfg;
  cfg.num_workers = kWorkers;
  cfg.comm_cost = msec(1);
  cfg.vertex_cost = usec(10);
  cfg.time_scale = 0.01;
  const RunMetrics thr_m =
      runtime::run_threaded(*algo, *q, cfg, wl, &thr_trace);
  EXPECT_EQ(thr_trace.records().size(), thr_m.phases);
  ASSERT_FALSE(thr_trace.records().empty());
  EXPECT_EQ(thr_trace.records().front().batch_size, wl.size());
}

}  // namespace
}  // namespace rtds
