#include "search/partial_schedule.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;

std::vector<Task> three_task_batch() {
  // Three tasks on a 2-worker machine, C = 2ms, delivery at t=10ms.
  std::vector<Task> batch(3);
  batch[0].id = 0;
  batch[0].processing = msec(4);
  batch[0].deadline = SimTime::zero() + msec(30);
  batch[0].affinity = AffinitySet::single(0);
  batch[1].id = 1;
  batch[1].processing = msec(2);
  batch[1].deadline = SimTime::zero() + msec(16);
  batch[1].affinity = AffinitySet::single(1);
  batch[2].id = 2;
  batch[2].processing = msec(6);
  batch[2].deadline = SimTime::zero() + msec(50);
  batch[2].affinity = AffinitySet::all(2);
  return batch;
}

machine::Interconnect net2() {
  return machine::Interconnect::cut_through(2, msec(2));
}

TEST(PartialScheduleTest, InitialState) {
  const auto batch = three_task_batch();
  const auto net = net2();
  PartialSchedule ps(&batch, {msec(1), SimDuration::zero()},
                     SimTime::zero() + msec(10), &net);
  EXPECT_EQ(ps.depth(), 0u);
  EXPECT_EQ(ps.batch_size(), 3u);
  EXPECT_FALSE(ps.complete());
  EXPECT_EQ(ps.ce(0), msec(1));
  EXPECT_EQ(ps.ce(1), SimDuration::zero());
  EXPECT_EQ(ps.max_ce(), msec(1));
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_FALSE(ps.assigned(i));
}

TEST(PartialScheduleTest, ValidatesConstruction) {
  const auto batch = three_task_batch();
  const auto net = net2();
  EXPECT_THROW(PartialSchedule(&batch, {msec(1)}, SimTime::zero(), &net),
               InvalidArgument);  // wrong base_loads size
  EXPECT_THROW(
      PartialSchedule(&batch, {msec(1), usec(-1)}, SimTime::zero(), &net),
      InvalidArgument);  // negative load
}

TEST(PartialScheduleTest, EvaluateComputesCostAndEnd) {
  const auto batch = three_task_batch();
  const auto net = net2();
  PartialSchedule ps(&batch, {SimDuration::zero(), SimDuration::zero()},
                     SimTime::zero() + msec(10), &net);
  // Task 0 on worker 0 (affine): cost 4ms, ends at offset 4ms.
  const auto a = ps.evaluate(0, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->exec_cost, msec(4));
  EXPECT_EQ(a->end_offset, msec(4));
  // Task 0 on worker 1 (remote): cost 6ms.
  const auto b = ps.evaluate(0, 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->exec_cost, msec(6));
}

TEST(PartialScheduleTest, FeasibilityTestMatchesFig4) {
  const auto batch = three_task_batch();
  const auto net = net2();
  // Task 1: p=2ms, d=16ms, affine to worker 1.
  // delivery 10ms: on worker 1 end offset 2 -> 12 <= 16 feasible.
  // on worker 0: cost 4 -> 14 <= 16 feasible.
  PartialSchedule ps(&batch, {SimDuration::zero(), SimDuration::zero()},
                     SimTime::zero() + msec(10), &net);
  EXPECT_TRUE(ps.evaluate(1, 1).has_value());
  EXPECT_TRUE(ps.evaluate(1, 0).has_value());
  // With delivery at 13ms, worker 0 gives 13+4=17 > 16: infeasible, while
  // the affine worker 1 gives 13+2=15 <= 16: still feasible.
  PartialSchedule late(&batch, {SimDuration::zero(), SimDuration::zero()},
                       SimTime::zero() + msec(13), &net);
  EXPECT_FALSE(late.evaluate(1, 0).has_value());
  EXPECT_TRUE(late.evaluate(1, 1).has_value());
}

TEST(PartialScheduleTest, FeasibilityBoundaryExactDeadlineIsFeasible) {
  const auto batch = three_task_batch();
  const auto net = net2();
  // Task 1 on worker 1: delivery 14ms + 2ms = 16ms == deadline -> feasible.
  PartialSchedule ps(&batch, {SimDuration::zero(), SimDuration::zero()},
                     SimTime::zero() + msec(14), &net);
  EXPECT_TRUE(ps.evaluate(1, 1).has_value());
  // One microsecond later it flips.
  PartialSchedule ps2(&batch, {SimDuration::zero(), SimDuration::zero()},
                      SimTime::zero() + msec(14) + usec(1), &net);
  EXPECT_FALSE(ps2.evaluate(1, 1).has_value());
}

TEST(PartialScheduleTest, BaseLoadDelaysQueue) {
  const auto batch = three_task_batch();
  const auto net = net2();
  PartialSchedule ps(&batch, {msec(5), SimDuration::zero()},
                     SimTime::zero() + msec(10), &net);
  const auto a = ps.evaluate(0, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->end_offset, msec(9));  // 5 residual + 4 processing
}

TEST(PartialSchedulePushTest, UpdatesState) {
  const auto batch = three_task_batch();
  const auto net = net2();
  PartialSchedule ps(&batch, {SimDuration::zero(), SimDuration::zero()},
                     SimTime::zero() + msec(10), &net);
  const auto a = ps.evaluate(0, 0);
  ps.push(*a);
  EXPECT_EQ(ps.depth(), 1u);
  EXPECT_TRUE(ps.assigned(0));
  EXPECT_EQ(ps.ce(0), msec(4));
  EXPECT_EQ(ps.max_ce(), msec(4));
  // Queueing: task 2 behind task 0 on worker 0.
  const auto b = ps.evaluate(2, 0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->end_offset, msec(10));
  ps.push(*b);
  EXPECT_EQ(ps.ce(0), msec(10));
  EXPECT_EQ(ps.max_ce(), msec(10));
}

TEST(PartialSchedulePushTest, CompleteAtFullDepth) {
  const auto batch = three_task_batch();
  const auto net = net2();
  PartialSchedule ps(&batch, {SimDuration::zero(), SimDuration::zero()},
                     SimTime::zero() + msec(1), &net);
  ps.push(*ps.evaluate(0, 0));
  ps.push(*ps.evaluate(1, 1));
  ps.push(*ps.evaluate(2, 1));
  EXPECT_TRUE(ps.complete());
  EXPECT_EQ(ps.path().size(), 3u);
}

TEST(PartialSchedulePushTest, EvaluateRejectsAssignedTask) {
  const auto batch = three_task_batch();
  const auto net = net2();
  PartialSchedule ps(&batch, {SimDuration::zero(), SimDuration::zero()},
                     SimTime::zero() + msec(1), &net);
  ps.push(*ps.evaluate(0, 0));
  EXPECT_THROW(static_cast<void>(ps.evaluate(0, 1)), InvalidArgument);
}

TEST(PartialSchedulePopTest, RestoresExactState) {
  const auto batch = three_task_batch();
  const auto net = net2();
  PartialSchedule ps(&batch, {msec(1), SimDuration::zero()},
                     SimTime::zero() + msec(5), &net);
  const SimDuration ce0 = ps.ce(0);
  const SimDuration max0 = ps.max_ce();
  ps.push(*ps.evaluate(2, 0));
  ps.pop();
  EXPECT_EQ(ps.depth(), 0u);
  EXPECT_FALSE(ps.assigned(2));
  EXPECT_EQ(ps.ce(0), ce0);
  EXPECT_EQ(ps.max_ce(), max0);
  EXPECT_THROW(ps.pop(), InvalidArgument);
}

TEST(PartialSchedulePopTest, MaxCeRecomputedAfterPop) {
  const auto batch = three_task_batch();
  const auto net = net2();
  PartialSchedule ps(&batch, {SimDuration::zero(), SimDuration::zero()},
                     SimTime::zero() + msec(1), &net);
  ps.push(*ps.evaluate(1, 1));            // ce1 = 2ms
  ps.push(*ps.evaluate(2, 0));            // ce0 = 6ms, max = 6ms
  EXPECT_EQ(ps.max_ce(), msec(6));
  ps.pop();                               // removes the 6ms defining max
  EXPECT_EQ(ps.max_ce(), msec(2));
}

TEST(PartialSchedulePropertyTest, RandomPushPopKeepsInvariants) {
  // Property: after any interleaving of pushes and pops, ce_k equals the
  // base load plus the sum of costs assigned to k, and max_ce is the max.
  Xoshiro256ss rng(99);
  constexpr std::uint32_t kWorkers = 4;
  const auto net = machine::Interconnect::cut_through(kWorkers, msec(1));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Task> batch(12);
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      batch[i].id = i;
      batch[i].processing = rng.uniform_duration(usec(100), msec(5));
      batch[i].deadline = SimTime::zero() + msec(200);
      batch[i].affinity.add(static_cast<tasks::ProcessorId>(
          rng.uniform_int(0, kWorkers - 1)));
    }
    PartialSchedule ps(&batch, std::vector<SimDuration>(kWorkers, usec(50)),
                       SimTime::zero() + msec(1), &net);
    std::vector<Assignment> stack;
    for (int step = 0; step < 200; ++step) {
      const bool can_push = !ps.complete();
      const bool do_push =
          can_push && (stack.empty() || rng.bernoulli(0.6));
      if (do_push) {
        // Find any unassigned task; try a random worker.
        std::uint32_t task = 0;
        while (ps.assigned(task)) ++task;
        const auto w = static_cast<tasks::ProcessorId>(
            rng.uniform_int(0, kWorkers - 1));
        if (auto a = ps.evaluate(task, w)) {
          ps.push(*a);
          stack.push_back(*a);
        }
      } else if (!stack.empty()) {
        ps.pop();
        stack.pop_back();
      }
      // Check the invariant.
      std::vector<SimDuration> expect(kWorkers, usec(50));
      for (const Assignment& a : stack) {
        expect[a.worker] += a.exec_cost;
      }
      SimDuration expect_max = SimDuration::zero();
      for (std::uint32_t k = 0; k < kWorkers; ++k) {
        ASSERT_EQ(ps.ce(k), expect[k]);
        expect_max = max_duration(expect_max, expect[k]);
      }
      ASSERT_EQ(ps.max_ce(), expect_max);
      ASSERT_EQ(ps.depth(), stack.size());
    }
  }
}

}  // namespace
}  // namespace rtds::search
