// Deterministic-merge suite for ParallelSearchEngine: the parallel engine's
// speculate-and-replay design promises a SearchResult *bit-identical* to
// the sequential SearchEngine for every vertex budget — not just
// budget-unconstrained runs — independent of thread count, steal timing,
// and shard seeds. This suite pins that promise over fuzzed scenarios
// (>= 100) x K in {2, 4, 8}, verifies same-K reproducibility under budget
// exhaustion, exercises a crafted steal-heavy dead-end mesh case, and pins
// the per-shard RNG substream derivation (common/rng.h discipline).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "machine/interconnect.h"
#include "search/engine.h"
#include "search/parallel_engine.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;
using tasks::ProcessorId;

struct Scenario {
  std::vector<Task> batch;
  std::vector<SimDuration> base_loads;
  SimTime delivery_time{SimTime::zero()};
  std::uint32_t num_workers{1};
  SimDuration comm{SimDuration::zero()};
  std::uint64_t vertex_budget{1};
};

/// Same adversarial generator shape as equivalence_test.cc: mixed
/// tight/hopeless deadlines, start-time gaps, narrow affinities, uneven
/// base loads, budgets from starved to effectively unconstrained.
Scenario make_scenario(Xoshiro256ss& rng) {
  Scenario s;
  s.num_workers = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
  s.comm = usec(rng.uniform_int(0, 8000));
  s.delivery_time = SimTime::zero() + usec(rng.uniform_int(0, 20000));

  const auto n = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
  s.batch.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Task& t = s.batch[i];
    t.id = i;
    t.processing = usec(rng.uniform_int(100, 10000));
    t.deadline = SimTime::zero() + usec(rng.uniform_int(500, 90000));
    if (rng.bernoulli(0.3)) {
      t.earliest_start = SimTime::zero() + usec(rng.uniform_int(0, 40000));
    }
    if (rng.bernoulli(0.25)) {
      t.affinity = AffinitySet::all(s.num_workers);
    } else {
      const auto holders = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
      for (std::uint32_t h = 0; h < holders; ++h) {
        t.affinity.add(static_cast<ProcessorId>(
            rng.uniform_int(0, s.num_workers - 1)));
      }
    }
    // Gang jobs flow through the same evaluate/push/pop path the parallel
    // engine shares with the serial one; mix them in so the split/merge
    // machinery is exercised under multi-worker occupancy too.
    if (s.num_workers >= 2 && rng.bernoulli(0.25)) {
      t.workers_required = static_cast<std::uint32_t>(
          rng.uniform_int(2, s.num_workers + 1));
    }
  }

  s.base_loads.resize(s.num_workers);
  for (auto& load : s.base_loads) {
    load = rng.bernoulli(0.5) ? SimDuration::zero()
                              : usec(rng.uniform_int(0, 15000));
  }

  // Starved (exhaustion mid-expansion), moderate, and effectively
  // unconstrained (leaf/dead-end termination with budget to spare).
  switch (rng.uniform_int(0, 2)) {
    case 0:
      s.vertex_budget = std::uint64_t(rng.uniform_int(1, 25));
      break;
    case 1:
      s.vertex_budget = std::uint64_t(rng.uniform_int(25, 400));
      break;
    default:
      s.vertex_budget = 30000;
      break;
  }
  return s;
}

std::string describe(const SearchConfig& c, std::uint32_t threads,
                     std::uint64_t scenario) {
  std::string out;
  out += c.representation == Representation::kAssignmentOriented ? "assign"
                                                                 : "seq";
  out += c.strategy == SearchStrategy::kDepthFirst ? "/dfs" : "/bfs";
  out += c.use_load_balance_cost ? "/ce" : "/nolb";
  out += " K=" + std::to_string(threads);
  out += " scenario " + std::to_string(scenario);
  return out;
}

void expect_identical(const SearchResult& par, const SearchResult& seq,
                      const std::string& where) {
  ASSERT_EQ(par.stats.vertices_generated, seq.stats.vertices_generated)
      << where;
  ASSERT_EQ(par.stats.expansions, seq.stats.expansions) << where;
  ASSERT_EQ(par.stats.backtracks, seq.stats.backtracks) << where;
  ASSERT_EQ(par.stats.max_depth, seq.stats.max_depth) << where;
  ASSERT_EQ(par.stats.reached_leaf, seq.stats.reached_leaf) << where;
  ASSERT_EQ(par.stats.dead_end, seq.stats.dead_end) << where;
  ASSERT_EQ(par.stats.budget_exhausted, seq.stats.budget_exhausted) << where;
  ASSERT_EQ(par.schedule.size(), seq.schedule.size()) << where;
  for (std::size_t i = 0; i < par.schedule.size(); ++i) {
    const Assignment& a = par.schedule[i];
    const Assignment& b = seq.schedule[i];
    ASSERT_EQ(a.task_index, b.task_index) << where << " depth " << i;
    ASSERT_EQ(a.worker, b.worker) << where << " depth " << i;
    ASSERT_EQ(a.exec_cost, b.exec_cost) << where << " depth " << i;
    ASSERT_EQ(a.prev_ce, b.prev_ce) << where << " depth " << i;
    ASSERT_EQ(a.prev_max_ce, b.prev_max_ce) << where << " depth " << i;
    ASSERT_EQ(a.start_offset, b.start_offset) << where << " depth " << i;
    ASSERT_EQ(a.end_offset, b.end_offset) << where << " depth " << i;
  }
}

/// Config slice covering both representations x both strategies x both
/// cost-function settings, plus the control-flow ablations that change
/// expansion structure (successor caps, strict scan, least-loaded levels).
std::vector<SearchConfig> config_slice() {
  std::vector<SearchConfig> configs;
  for (const auto representation : {Representation::kAssignmentOriented,
                                    Representation::kSequenceOriented}) {
    for (const auto strategy :
         {SearchStrategy::kDepthFirst, SearchStrategy::kBestFirst}) {
      for (const bool lb : {true, false}) {
        SearchConfig c;
        c.representation = representation;
        c.strategy = strategy;
        c.use_load_balance_cost = lb;
        configs.push_back(c);
      }
    }
  }
  SearchConfig pruned;
  pruned.max_successors = 3;
  pruned.max_depth = 8;
  configs.push_back(pruned);
  SearchConfig strict;
  strict.skip_unplaceable_tasks = false;
  configs.push_back(strict);
  SearchConfig least_loaded;
  least_loaded.representation = Representation::kSequenceOriented;
  least_loaded.level_processor_order = LevelProcessorOrder::kLeastLoaded;
  configs.push_back(least_loaded);
  return configs;
}

TEST(ParallelEquivalenceTest, BitIdenticalToSequentialAcrossFuzzScenarios) {
  // >= 100 scenarios x K in {2, 4, 8}, every budget tier included: the
  // replay contract is exact for ALL budgets, so identity is asserted on
  // exhausted runs too, and the unconstrained tier is counted to prove the
  // headline case gets real coverage.
  constexpr std::uint64_t kScenarios = 162;
  const std::vector<SearchConfig> configs = config_slice();
  Xoshiro256ss rng(0x9A7A11E1ULL);
  std::uint64_t unconstrained = 0, exhausted = 0, dead_ends = 0, leaves = 0;
  std::uint64_t gangy = 0;
  for (std::uint64_t sc = 0; sc < kScenarios; ++sc) {
    const Scenario s = make_scenario(rng);
    for (const Task& t : s.batch) {
      if (t.workers_required > 1) {
        ++gangy;
        break;
      }
    }
    const auto net =
        machine::Interconnect::cut_through(s.num_workers, s.comm);
    const SearchConfig& cfg = configs[sc % configs.size()];
    const SearchResult seq = SearchEngine(cfg).run(
        s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
    for (const std::uint32_t threads : {2u, 4u, 8u}) {
      ParallelSearchEngine par(cfg, threads, /*base_seed=*/sc);
      const SearchResult got = par.run(s.batch, s.base_loads,
                                       s.delivery_time, net, s.vertex_budget);
      expect_identical(got, seq, describe(cfg, threads, sc));
    }
    unconstrained += seq.stats.budget_exhausted ? 0 : 1;
    exhausted += seq.stats.budget_exhausted ? 1 : 0;
    dead_ends += seq.stats.dead_end ? 1 : 0;
    leaves += seq.stats.reached_leaf ? 1 : 0;
  }
  // The sweep must exercise every termination path, and the unconstrained
  // tier (the ISSUE's headline bit-identity case) must be well-populated.
  EXPECT_GT(unconstrained, 30u);
  EXPECT_GT(exhausted, 30u);
  EXPECT_GT(dead_ends, 10u);
  EXPECT_GT(leaves, 5u);
  // The gang axis must see real coverage, not a token appearance.
  EXPECT_GT(gangy, 40u);
}

TEST(ParallelEquivalenceTest, SameKReproducibleUnderBudgetExhaustion) {
  // Fixed seed + fixed K => identical results across repeated runs even
  // when the budget dies mid-expansion (the replay performs the partial
  // expansion deterministically, so this holds run-over-run regardless of
  // thread timing). Re-running on the SAME engine instance also proves the
  // arenas/frontiers reset cleanly between runs.
  Xoshiro256ss rng(0xD00DULL);
  for (std::uint64_t sc = 0; sc < 12; ++sc) {
    Scenario s = make_scenario(rng);
    // Force the exhaustion path: cap the budget below what a full search
    // would use.
    s.vertex_budget = 1 + sc * 7;
    const auto net =
        machine::Interconnect::cut_through(s.num_workers, s.comm);
    SearchConfig cfg;
    cfg.strategy = sc % 2 == 0 ? SearchStrategy::kDepthFirst
                               : SearchStrategy::kBestFirst;
    const SearchResult seq = SearchEngine(cfg).run(
        s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
    for (const std::uint32_t threads : {2u, 4u, 8u}) {
      ParallelSearchEngine par(cfg, threads, /*base_seed=*/42);
      const SearchResult first = par.run(
          s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
      const SearchResult second = par.run(
          s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
      const std::string where = describe(cfg, threads, sc) + " repro";
      expect_identical(first, second, where);
      expect_identical(first, seq, where + " vs seq");
    }
  }
}

TEST(ParallelEquivalenceTest, StealHeavyDeadEndMeshCase) {
  // Crafted worst case for the steal protocol: a store-and-forward mesh
  // with many near-hopeless tasks produces a bushy tree of shallow dead
  // ends — workers drain their stacks constantly and live off steals —
  // while a few feasible tasks keep real work interleaved. The replay must
  // still reproduce the sequential result exactly.
  Scenario s;
  s.num_workers = 6;
  s.comm = usec(4000);
  s.delivery_time = SimTime::zero() + usec(5000);
  s.batch.resize(36);
  for (std::uint32_t i = 0; i < s.batch.size(); ++i) {
    Task& t = s.batch[i];
    t.id = i;
    t.processing = usec(2000 + (i % 7) * 900);
    // Two thirds get deadlines right at the feasibility edge (dead-end
    // fodder), one third is comfortably feasible.
    t.deadline = SimTime::zero() +
                 usec(i % 3 == 0 ? 60000 : 9000 + (i % 5) * 800);
    t.affinity = AffinitySet::all(s.num_workers);
  }
  s.base_loads.assign(s.num_workers, usec(1500));

  const auto net = machine::Interconnect::mesh(s.num_workers, s.comm);
  for (const std::uint64_t budget : {50ull, 700ull, 20000ull}) {
    for (const auto strategy :
         {SearchStrategy::kDepthFirst, SearchStrategy::kBestFirst}) {
      SearchConfig cfg;
      cfg.strategy = strategy;
      const SearchResult seq = SearchEngine(cfg).run(
          s.batch, s.base_loads, s.delivery_time, net, budget);
      for (const std::uint32_t threads : {2u, 4u, 8u}) {
        ParallelSearchEngine par(cfg, threads);
        const SearchResult got =
            par.run(s.batch, s.base_loads, s.delivery_time, net, budget);
        expect_identical(got, seq,
                         describe(cfg, threads, budget) + " mesh");
      }
    }
  }
}

TEST(ParallelEquivalenceTest, ThreadsOneDelegatesToSequential) {
  Xoshiro256ss rng(0xBEEFULL);
  const Scenario s = make_scenario(rng);
  const auto net = machine::Interconnect::cut_through(s.num_workers, s.comm);
  const SearchConfig cfg;
  ParallelSearchEngine par(cfg, 1);
  const SearchResult got = par.run(s.batch, s.base_loads, s.delivery_time,
                                   net, s.vertex_budget);
  const SearchResult seq = SearchEngine(cfg).run(
      s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
  expect_identical(got, seq, "K=1 delegation");
  // K=1 performs no speculation at all.
  EXPECT_EQ(par.last_run_stats().rounds, 0u);
}

TEST(ParallelEquivalenceTest, RejectsOutOfRangeThreadCounts) {
  EXPECT_THROW(ParallelSearchEngine(SearchConfig{}, 0), InvalidArgument);
  EXPECT_THROW(ParallelSearchEngine(SearchConfig{}, 65), InvalidArgument);
}

TEST(ParallelShardSeedTest, DerivationPinned) {
  // The shard substream is derive_seed(base, stream_id("search.parallel.
  // shard"), shard). Pinned so the derivation can never silently change —
  // shard-local randomized behaviour (steal-victim order) must stay
  // replayable across versions.
  EXPECT_EQ(kParallelShardStream, 0xdf66e857f9dd685cULL);
  EXPECT_EQ(parallel_shard_seed(0, 0), 0xb955ff349f687f94ULL);
  EXPECT_EQ(parallel_shard_seed(0, 1), 0x914789b6d99f62d8ULL);
  EXPECT_EQ(parallel_shard_seed(0, 2), 0x1a3a66224609a754ULL);
  EXPECT_EQ(parallel_shard_seed(0, 7), 0x83cad4c75d2d4ff0ULL);
  EXPECT_EQ(parallel_shard_seed(0xC0FFEE, 0), 0x7e29e345880e9950ULL);
  EXPECT_EQ(parallel_shard_seed(0xC0FFEE, 7), 0x18b6edb4fa4680c1ULL);
  // Distinct shards get distinct streams; the derivation matches the
  // generic 3-arg derive_seed discipline exactly.
  EXPECT_EQ(parallel_shard_seed(99, 3),
            derive_seed(99, kParallelShardStream, 3));
}

}  // namespace
}  // namespace rtds::search
