// White-box tests of the order-cursor optimization: a task proven
// unplaceable at a vertex is never re-evaluated below it (queue offsets
// only grow along a path), and the saved evaluations show up in the vertex
// accounting.
#include <gtest/gtest.h>

#include "search/engine.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;

Task make_task(std::uint32_t id, SimDuration p, SimTime d,
               AffinitySet affinity) {
  Task t;
  t.id = id;
  t.processing = p;
  t.deadline = d;
  t.affinity = affinity;
  return t;
}

TEST(CursorTest, SkippedTaskChargedOncePerPath) {
  // One hopeless task (deadline before delivery) followed by K placeable
  // tasks on a 2-worker machine. Without cursor inheritance the hopeless
  // task would cost m vertices at EVERY level; with it, m vertices once.
  const std::uint32_t m = 2, placeable = 6;
  const auto net = machine::Interconnect::cut_through(m, SimDuration::zero());
  std::vector<Task> batch;
  // EDF-first hopeless task.
  batch.push_back(
      make_task(0, msec(1), SimTime::zero() + usec(1), AffinitySet::all(m)));
  for (std::uint32_t i = 1; i <= placeable; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + msec(100),
                              AffinitySet::all(m)));
  }
  const SearchEngine engine(SearchConfig{});
  // Budget for exactly one greedy dive IF the hopeless task is charged
  // once: m vertices for it + m per placeable level. If the engine
  // re-evaluated the hopeless task at every level, this budget would run
  // out before the dive completes and fewer tasks would be scheduled.
  const std::uint64_t dive_budget = m * (placeable + 1);
  const auto r = engine.run(batch, std::vector<SimDuration>(m, SimDuration{}),
                            SimTime::zero() + msec(1), net, dive_budget);
  EXPECT_EQ(r.schedule.size(), placeable);
  EXPECT_EQ(r.stats.vertices_generated, dive_budget);
  EXPECT_EQ(r.stats.backtracks, 0u);
}

TEST(CursorTest, StrictModeStopsAtHopelessTask) {
  const std::uint32_t m = 2;
  const auto net = machine::Interconnect::cut_through(m, SimDuration::zero());
  std::vector<Task> batch;
  batch.push_back(
      make_task(0, msec(1), SimTime::zero() + usec(1), AffinitySet::all(m)));
  batch.push_back(make_task(1, msec(1), SimTime::zero() + msec(100),
                            AffinitySet::all(m)));
  SearchConfig cfg;
  cfg.skip_unplaceable_tasks = false;
  const auto r = SearchEngine(cfg).run(
      batch, std::vector<SimDuration>(m, SimDuration{}),
      SimTime::zero() + msec(1), net, 1000000);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_TRUE(r.stats.dead_end);
  EXPECT_EQ(r.stats.vertices_generated, m);  // only the hopeless expansion
}

TEST(CursorTest, SiblingBranchesShareParentScanPosition) {
  // A hopeless EDF-first task plus two placeable tasks with conflicting
  // placements that force backtracking. The hopeless task must be charged
  // once for the root expansion only, not re-charged after the backtrack
  // (siblings share the parent's cursor).
  const std::uint32_t m = 2;
  const auto net = machine::Interconnect::cut_through(m, msec(50));
  std::vector<Task> batch;
  batch.push_back(
      make_task(0, msec(1), SimTime::zero() + usec(1), AffinitySet::all(m)));
  // t1: feasible on both workers (generous). t2: only worker 0, so tight
  // that t1 choosing worker 0 first must be undone.
  AffinitySet both = AffinitySet::all(m);
  batch.push_back(make_task(1, msec(4), SimTime::zero() + msec(30), both));
  batch.push_back(make_task(2, msec(4), SimTime::zero() + msec(6),
                            AffinitySet::single(0)));
  const SearchEngine engine(SearchConfig{});
  const auto r = engine.run(batch, std::vector<SimDuration>(m, SimDuration{}),
                            SimTime::zero() + msec(1), net, 1000000);
  // Both placeable tasks end up scheduled (t2 first by EDF, on worker 0).
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(batch[r.schedule[0].task_index].id, 2u);
  // Vertex accounting: root expansion scans hopeless t0 (2) then t2 (2);
  // each deeper expansion scans only remaining tasks. The hopeless task
  // must contribute exactly 2 vertices in total.
  EXPECT_LE(r.stats.vertices_generated, 8u);
}

TEST(CursorTest, SkipCountsTowardBudgetExhaustion) {
  // The budget can die inside the skip scan itself.
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, SimDuration::zero());
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 5; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + usec(1),
                              AffinitySet::all(m)));  // all hopeless
  }
  batch.push_back(make_task(99, msec(1), SimTime::zero() + msec(100),
                            AffinitySet::all(m)));
  const SearchEngine engine(SearchConfig{});
  // Budget covers only 2.5 hopeless tasks.
  const auto r = engine.run(batch, std::vector<SimDuration>(m, SimDuration{}),
                            SimTime::zero() + msec(1), net, 10);
  EXPECT_TRUE(r.stats.budget_exhausted);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_EQ(r.stats.vertices_generated, 10u);
}

}  // namespace
}  // namespace rtds::search
