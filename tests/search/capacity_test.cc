// Capacity regression suite for the 65535-task cap lift: the packed node
// header now widens past 16-bit depth/cursor fields, so batches beyond
// 65535 tasks must schedule correctly — proved bit-identically against the
// frozen reference engine, which never had the cap (its nodes always
// carried 32-bit cursors). Also pins the narrow->wide dispatch boundary,
// bitset word-boundary sizes, and the m=1 / m=64 simd lane-remainder
// extremes, and checks the parallel engine's replay at wide-header sizes.
//
// The structural limit itself (kMaxBatchTasks) is asserted as a constant:
// exercising the InvalidArgument path at runtime would need a 2^30-task
// vector (~70 GB of Task objects), so the guard is covered by the REQUIRE
// in SearchEngine::run and the compile-time pin below.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "common/rng.h"
#include "machine/interconnect.h"
#include "search/engine.h"
#include "search/parallel_engine.h"
#include "search/reference_engine.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;
using tasks::ProcessorId;

static_assert(kMaxBatchTasks == (std::uint32_t{1} << 30),
              "structural batch cap moved — update docs/ARCHITECTURE.md");

struct Scenario {
  std::vector<Task> batch;
  std::vector<SimDuration> base_loads;
  SimTime delivery_time{SimTime::zero()};
  std::uint32_t num_workers{1};
  SimDuration comm{SimDuration::zero()};
  std::uint64_t vertex_budget{1};
};

/// Generous capacity scenario: every task is feasible on every affinity
/// holder even if one worker absorbed the whole batch, so depth-first
/// search walks straight to a leaf at depth n with no backtracking — the
/// shape that makes an n=65536 reference run tractable (O(n * m)
/// evaluations) while still forcing depth and cursor through the wide
/// header fields.
Scenario make_capacity_scenario(Xoshiro256ss& rng, std::uint32_t n,
                                std::uint32_t m) {
  Scenario s;
  s.num_workers = m;
  s.comm = usec(200);
  s.delivery_time = SimTime::zero() + usec(5000);
  // Upper bound on any completion offset: all n tasks on one worker.
  const std::int64_t horizon_us =
      std::int64_t{n} * 1500 + 1'000'000;
  s.batch.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Task& t = s.batch[i];
    t.id = i;
    t.processing = usec(rng.uniform_int(100, 1000));
    t.deadline = s.delivery_time + usec(horizon_us);
    if (rng.bernoulli(0.2)) {
      t.earliest_start = SimTime::zero() + usec(rng.uniform_int(0, 4000));
    }
    // Mixed affinities so the worker-mask kernel sees real bit patterns,
    // not just all-ones lanes.
    if (rng.bernoulli(0.7)) {
      t.affinity = AffinitySet::all(m);
    } else {
      const auto holders = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
      for (std::uint32_t h = 0; h < holders; ++h) {
        t.affinity.add(static_cast<ProcessorId>(rng.uniform_int(0, m - 1)));
      }
    }
  }
  s.base_loads.assign(m, SimDuration::zero());
  s.vertex_budget = std::uint64_t{n} * m + 1000;
  return s;
}

/// Adversarial scenario at a pinned (n, m): the equivalence_test generator
/// reshaped to exact sizes, for word-boundary and lane-remainder sweeps.
Scenario make_sized_scenario(Xoshiro256ss& rng, std::uint32_t n,
                             std::uint32_t m) {
  Scenario s;
  s.num_workers = m;
  s.comm = usec(rng.uniform_int(0, 8000));
  s.delivery_time = SimTime::zero() + usec(rng.uniform_int(0, 20000));
  s.batch.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Task& t = s.batch[i];
    t.id = i;
    t.processing = usec(rng.uniform_int(100, 10000));
    // Straddles the feasible/hopeless boundary: dead ends, unplaceable
    // skips, and bulk budget charges all occur.
    t.deadline = SimTime::zero() + usec(rng.uniform_int(500, 90000));
    if (rng.bernoulli(0.3)) {
      t.earliest_start = SimTime::zero() + usec(rng.uniform_int(0, 40000));
    }
    if (rng.bernoulli(0.25)) {
      t.affinity = AffinitySet::all(m);
    } else {
      const auto holders = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
      for (std::uint32_t h = 0; h < holders; ++h) {
        t.affinity.add(static_cast<ProcessorId>(rng.uniform_int(0, m - 1)));
      }
    }
    if (m >= 2 && rng.bernoulli(0.2)) {
      t.workers_required =
          static_cast<std::uint32_t>(rng.uniform_int(2, m + 1));
    }
  }
  s.base_loads.resize(m);
  for (auto& load : s.base_loads) {
    load = rng.bernoulli(0.5) ? SimDuration::zero()
                              : usec(rng.uniform_int(0, 15000));
  }
  switch (rng.uniform_int(0, 2)) {
    case 0:
      s.vertex_budget = std::uint64_t(rng.uniform_int(1, 60));
      break;
    case 1:
      s.vertex_budget = std::uint64_t(rng.uniform_int(60, 2000));
      break;
    default:
      s.vertex_budget = std::uint64_t(rng.uniform_int(2000, 30000));
      break;
  }
  return s;
}

void expect_identical(const SearchResult& fast, const SearchResult& ref,
                      const std::string& where) {
  ASSERT_EQ(fast.stats.vertices_generated, ref.stats.vertices_generated)
      << where;
  ASSERT_EQ(fast.stats.expansions, ref.stats.expansions) << where;
  ASSERT_EQ(fast.stats.backtracks, ref.stats.backtracks) << where;
  ASSERT_EQ(fast.stats.max_depth, ref.stats.max_depth) << where;
  ASSERT_EQ(fast.stats.reached_leaf, ref.stats.reached_leaf) << where;
  ASSERT_EQ(fast.stats.dead_end, ref.stats.dead_end) << where;
  ASSERT_EQ(fast.stats.budget_exhausted, ref.stats.budget_exhausted) << where;
  ASSERT_EQ(fast.schedule.size(), ref.schedule.size()) << where;
  for (std::size_t i = 0; i < fast.schedule.size(); ++i) {
    const Assignment& a = fast.schedule[i];
    const Assignment& b = ref.schedule[i];
    ASSERT_EQ(a.task_index, b.task_index) << where << " depth " << i;
    ASSERT_EQ(a.worker, b.worker) << where << " depth " << i;
    ASSERT_EQ(a.exec_cost, b.exec_cost) << where << " depth " << i;
    ASSERT_EQ(a.prev_ce, b.prev_ce) << where << " depth " << i;
    ASSERT_EQ(a.prev_max_ce, b.prev_max_ce) << where << " depth " << i;
    ASSERT_EQ(a.start_offset, b.start_offset) << where << " depth " << i;
    ASSERT_EQ(a.end_offset, b.end_offset) << where << " depth " << i;
  }
}

void run_both(const SearchConfig& cfg, const Scenario& s,
              const std::string& where, bool expect_leaf = false) {
  const auto net =
      machine::Interconnect::cut_through(s.num_workers, s.comm);
  const SearchResult fast = SearchEngine(cfg).run(
      s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
  const SearchResult ref = reference::run(cfg, s.batch, s.base_loads,
                                          s.delivery_time, net,
                                          s.vertex_budget);
  expect_identical(fast, ref, where);
  if (expect_leaf) {
    ASSERT_TRUE(fast.stats.reached_leaf) << where;
    ASSERT_EQ(fast.schedule.size(), s.batch.size()) << where;
    ASSERT_EQ(fast.stats.max_depth, s.batch.size()) << where;
  }
}

TEST(SearchCapacityTest, N65536SchedulesBitIdenticalToReference) {
  // 65536 is the first size the narrow 16-bit header cannot hold: depth at
  // the leaf is 65536 and overflows uint16 to 0. The regression for the
  // lifted cap: the wide-header engine must walk to the full-depth leaf and
  // match the (never-capped) reference exactly.
  Xoshiro256ss rng(0xCAB0057ULL);
  const Scenario s = make_capacity_scenario(rng, 65536, 4);
  for (const bool lb : {true, false}) {
    SearchConfig cfg;
    cfg.strategy = SearchStrategy::kDepthFirst;
    cfg.representation = Representation::kAssignmentOriented;
    cfg.use_load_balance_cost = lb;
    run_both(cfg, s, lb ? "n65536/ce" : "n65536/nolb",
             /*expect_leaf=*/true);
  }
}

TEST(SearchCapacityTest, N65536BudgetExhaustionMatchesReference) {
  // Budget dies mid-walk long before the leaf: the wide header must charge,
  // bulk-charge, and terminate exactly like the reference.
  Xoshiro256ss rng(0xCAB0058ULL);
  Scenario s = make_capacity_scenario(rng, 65536, 4);
  s.vertex_budget = 50'000;
  SearchConfig cfg;
  run_both(cfg, s, "n65536/starved");
}

TEST(SearchCapacityTest, NarrowWideBoundaryDispatch) {
  // 65535 runs on the narrow header, 65536 on the wide one; both must be
  // bit-identical to the reference across the dispatch boundary.
  Xoshiro256ss rng(0xB0DA7ULL);
  for (const std::uint32_t n : {65535u, 65536u}) {
    const Scenario s = make_capacity_scenario(rng, n, 2);
    SearchConfig cfg;
    run_both(cfg, s, "boundary n=" + std::to_string(n),
             /*expect_leaf=*/true);
  }
}

TEST(SearchCapacityTest, WordBoundarySizesMatchReference) {
  // n exactly at unassigned-bitset word boundaries: final word full (64,
  // 128) or holding a single bit (65). The task-mask batched path and the
  // word scans must agree with the reference in both shapes.
  Xoshiro256ss rng(0x40DB0BDULL);
  SearchConfig assign_dfs;
  SearchConfig assign_bfs;
  assign_bfs.strategy = SearchStrategy::kBestFirst;
  SearchConfig seq_dfs;
  seq_dfs.representation = Representation::kSequenceOriented;
  SearchConfig pruned;
  pruned.max_successors = 3;
  pruned.max_depth = 96;
  const SearchConfig configs[] = {assign_dfs, assign_bfs, seq_dfs, pruned};
  for (const std::uint32_t n : {63u, 64u, 65u, 127u, 128u}) {
    for (std::uint32_t rep = 0; rep < 10; ++rep) {
      const Scenario s = make_sized_scenario(rng, n, 6);
      for (std::size_t c = 0; c < std::size(configs); ++c) {
        run_both(configs[c], s,
                 "word n=" + std::to_string(n) + " rep=" +
                     std::to_string(rep) + " cfg=" + std::to_string(c));
      }
    }
  }
}

TEST(SearchCapacityTest, LaneRemainderExtremesMatchReference) {
  // m=1 (single lane, pure remainder path) and m=64 (full mask width, zero
  // remainder): the simd worker-mask sweep at both ends of the lane range.
  Xoshiro256ss rng(0x1A4E5ULL);
  SearchConfig assign_dfs;
  SearchConfig seq_dfs;
  seq_dfs.representation = Representation::kSequenceOriented;
  for (const std::uint32_t m : {1u, 64u}) {
    for (std::uint32_t rep = 0; rep < 12; ++rep) {
      const Scenario s = make_sized_scenario(rng, 256, m);
      run_both(assign_dfs, s,
               "m=" + std::to_string(m) + " rep=" + std::to_string(rep) +
                   " assign");
      run_both(seq_dfs, s,
               "m=" + std::to_string(m) + " rep=" + std::to_string(rep) +
                   " seq");
    }
  }
}

TEST(SearchCapacityTest, ParallelEngineMatchesSequentialAtWideSizes) {
  // The parallel engine's PNode cursor/depth also widened to 32 bits; its
  // deterministic replay must still reproduce the sequential result at
  // wide-header sizes, and the new arena accounting must be populated.
  Xoshiro256ss rng(0x9A4A11E1ULL);
  const Scenario s = make_capacity_scenario(rng, 65536, 4);
  SearchConfig cfg;
  const SearchResult seq = SearchEngine(cfg).run(
      s.batch, s.base_loads, s.delivery_time,
      machine::Interconnect::cut_through(s.num_workers, s.comm),
      s.vertex_budget);
  ParallelSearchEngine par(cfg, 2);
  const SearchResult got = par.run(
      s.batch, s.base_loads, s.delivery_time,
      machine::Interconnect::cut_through(s.num_workers, s.comm),
      s.vertex_budget);
  expect_identical(got, seq, "parallel n65536");
  EXPECT_TRUE(got.stats.reached_leaf);
  EXPECT_GT(par.last_run_stats().arena_bytes, 0u);
}

TEST(SearchCapacityTest, WorkspacePeakTracksWideRuns) {
  // The engine reports per-thread workspace bytes for the bench memory
  // column; a wide-header run must register a nonzero, plausible peak.
  // Each gtest case is its own ctest process, so drive a run here rather
  // than relying on a sibling test having populated the counters.
  Xoshiro256ss rng(0x9A4A11E1ULL);
  const Scenario s = make_capacity_scenario(rng, 65536, 2);
  SearchConfig cfg;
  (void)SearchEngine(cfg).run(
      s.batch, s.base_loads, s.delivery_time,
      machine::Interconnect::cut_through(s.num_workers, s.comm),
      s.vertex_budget);
  EXPECT_GE(thread_workspace_peak_bytes(), thread_workspace_bytes());
  EXPECT_GT(thread_workspace_peak_bytes(), 0u);
}

}  // namespace
}  // namespace rtds::search
