#include "search/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;

Task make_task(std::uint32_t id, SimDuration p, SimTime d,
               AffinitySet affinity) {
  Task t;
  t.id = id;
  t.processing = p;
  t.deadline = d;
  t.affinity = affinity;
  return t;
}

machine::Interconnect net(std::uint32_t m, SimDuration c = msec(2)) {
  return machine::Interconnect::cut_through(m, c);
}

SearchConfig rt_sads_config() {
  SearchConfig cfg;
  cfg.representation = Representation::kAssignmentOriented;
  cfg.task_order = TaskOrder::kEarliestDeadline;
  cfg.use_load_balance_cost = true;
  return cfg;
}

SearchConfig d_cols_config() {
  SearchConfig cfg;
  cfg.representation = Representation::kSequenceOriented;
  cfg.task_order = TaskOrder::kEarliestDeadline;
  cfg.use_load_balance_cost = false;
  return cfg;
}

TEST(TaskOrderTest, BatchOrderIsIdentity) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 5; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime{std::int64_t(1000 - i)},
                              AffinitySet::single(0)));
  }
  const auto order = task_consideration_order(batch, TaskOrder::kBatchOrder);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskOrderTest, EarliestDeadlineSorts) {
  std::vector<Task> batch;
  batch.push_back(make_task(0, msec(1), SimTime{300}, AffinitySet::single(0)));
  batch.push_back(make_task(1, msec(1), SimTime{100}, AffinitySet::single(0)));
  batch.push_back(make_task(2, msec(1), SimTime{200}, AffinitySet::single(0)));
  const auto order =
      task_consideration_order(batch, TaskOrder::kEarliestDeadline);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(TaskOrderTest, MinSlackUsesDeadlineMinusProcessing) {
  std::vector<Task> batch;
  // d - p: 900, 150, 500 -> order 1, 2, 0.
  batch.push_back(
      make_task(0, usec(100), SimTime{1000}, AffinitySet::single(0)));
  batch.push_back(
      make_task(1, usec(350), SimTime{500}, AffinitySet::single(0)));
  batch.push_back(
      make_task(2, usec(200), SimTime{700}, AffinitySet::single(0)));
  const auto order = task_consideration_order(batch, TaskOrder::kMinSlack);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(SearchEngineTest, EmptyBatchOrZeroBudget) {
  const SearchEngine engine(rt_sads_config());
  const auto n = net(2);
  const auto r1 = engine.run({}, {SimDuration::zero(), SimDuration::zero()},
                             SimTime::zero(), n, 100);
  EXPECT_TRUE(r1.schedule.empty());
  EXPECT_EQ(r1.stats.vertices_generated, 0u);

  std::vector<Task> batch{
      make_task(0, msec(1), SimTime{100000}, AffinitySet::single(0))};
  const auto r2 = engine.run(batch, {SimDuration::zero(), SimDuration::zero()},
                             SimTime::zero(), n, 0);
  EXPECT_TRUE(r2.schedule.empty());
}

TEST(SearchEngineTest, SchedulesEverythingWithAmpleBudget) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 10; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + msec(100),
                              AffinitySet::all(4)));
  }
  const SearchEngine engine(rt_sads_config());
  const auto r = engine.run(batch, std::vector<SimDuration>(4, SimDuration{}),
                            SimTime::zero() + msec(1), net(4), 100000);
  EXPECT_TRUE(r.stats.reached_leaf);
  EXPECT_EQ(r.schedule.size(), 10u);
  // Every task appears exactly once.
  std::set<std::uint32_t> seen;
  for (const Assignment& a : r.schedule) seen.insert(a.task_index);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SearchEngineTest, LoadBalanceCostSpreadsTasks) {
  // 8 identical tasks, all-affine, 4 workers: the CE-sorted search should
  // round out to 2 per worker.
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 8; ++i) {
    batch.push_back(make_task(i, msec(2), SimTime::zero() + msec(100),
                              AffinitySet::all(4)));
  }
  const SearchEngine engine(rt_sads_config());
  const auto r = engine.run(batch, std::vector<SimDuration>(4, SimDuration{}),
                            SimTime::zero() + msec(1), net(4), 100000);
  ASSERT_EQ(r.schedule.size(), 8u);
  std::vector<int> per_worker(4, 0);
  for (const Assignment& a : r.schedule) ++per_worker[a.worker];
  for (int c : per_worker) EXPECT_EQ(c, 2);
}

TEST(SearchEngineTest, RespectsVertexBudgetExactly) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 20; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + msec(500),
                              AffinitySet::all(4)));
  }
  const SearchEngine engine(rt_sads_config());
  for (std::uint64_t budget : {1ull, 5ull, 13ull, 40ull}) {
    const auto r = engine.run(batch, std::vector<SimDuration>(4, SimDuration{}),
                              SimTime::zero() + msec(1), net(4), budget);
    EXPECT_LE(r.stats.vertices_generated, budget);
    if (!r.stats.reached_leaf) {
      EXPECT_TRUE(r.stats.budget_exhausted || r.stats.dead_end);
    }
  }
}

TEST(SearchEngineTest, PartialScheduleWhenBudgetTight) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 20; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + msec(500),
                              AffinitySet::all(4)));
  }
  const SearchEngine engine(rt_sads_config());
  // Budget for ~3 expansions of branching 4.
  const auto r = engine.run(batch, std::vector<SimDuration>(4, SimDuration{}),
                            SimTime::zero() + msec(1), net(4), 12);
  EXPECT_TRUE(r.stats.budget_exhausted);
  EXPECT_GT(r.schedule.size(), 0u);
  EXPECT_LT(r.schedule.size(), 20u);
}

TEST(SearchEngineTest, DeadEndWhenNothingFeasible) {
  // Deadline already violated by the delivery time: every vertex infeasible.
  std::vector<Task> batch{
      make_task(0, msec(5), SimTime::zero() + msec(3), AffinitySet::all(2))};
  const SearchEngine engine(rt_sads_config());
  const auto r = engine.run(batch, std::vector<SimDuration>(2, SimDuration{}),
                            SimTime::zero() + msec(1), net(2), 1000);
  EXPECT_TRUE(r.stats.dead_end);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_EQ(r.stats.vertices_generated, 2u);  // both workers evaluated
}

TEST(SearchEngineTest, BacktracksOutOfInfeasibleBranch) {
  // Worker 0 is attractive early (affine) but taking it makes the second
  // task infeasible; the search must backtrack and resequence.
  // t0: p=4ms, affine {0,1}; t1: p=4ms, affine {0} only, d tight.
  // delivery at 1ms, C=10ms (remote placement infeasible for t1).
  std::vector<Task> batch;
  AffinitySet both;
  both.add(0);
  both.add(1);
  batch.push_back(make_task(0, msec(4), SimTime::zero() + msec(30), both));
  batch.push_back(
      make_task(1, msec(4), SimTime::zero() + msec(6), AffinitySet::single(0)));
  SearchConfig cfg = rt_sads_config();
  const SearchEngine engine(cfg);
  const auto r = engine.run(batch, std::vector<SimDuration>(2, SimDuration{}),
                            SimTime::zero() + msec(1), net(2, msec(10)), 1000);
  // Feasible only if t1 runs first on worker 0 (EDF picks t1 first anyway).
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(batch[r.schedule[0].task_index].id, 1u);
  EXPECT_EQ(r.schedule[0].worker, 0u);
  EXPECT_TRUE(r.stats.reached_leaf);
}

TEST(SearchEngineTest, ReturnDeepestBeatsCurrentOnBudgetStop) {
  // With return_deepest the engine may not return the path it stopped on.
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 6; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + msec(7),
                              AffinitySet::all(2)));
  }
  SearchConfig deepest = rt_sads_config();
  SearchConfig current = rt_sads_config();
  current.return_deepest = false;
  const auto rd = SearchEngine(deepest).run(
      batch, std::vector<SimDuration>(2, SimDuration{}), SimTime::zero() + msec(1),
      net(2), 10000);
  const auto rc = SearchEngine(current).run(
      batch, std::vector<SimDuration>(2, SimDuration{}), SimTime::zero() + msec(1),
      net(2), 10000);
  EXPECT_GE(rd.schedule.size(), rc.schedule.size());
}

TEST(SearchEngineTest, MaxDepthLimitsSchedule) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 10; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + msec(100),
                              AffinitySet::all(2)));
  }
  SearchConfig cfg = rt_sads_config();
  cfg.max_depth = 4;
  const auto r = SearchEngine(cfg).run(batch,
                                       std::vector<SimDuration>(2, SimDuration{}),
                                       SimTime::zero() + msec(1), net(2),
                                       100000);
  EXPECT_EQ(r.schedule.size(), 4u);
  EXPECT_FALSE(r.stats.reached_leaf);
}

TEST(SearchEngineTest, MaxSuccessorsPrunesBranching) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 6; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + msec(100),
                              AffinitySet::all(8)));
  }
  SearchConfig cfg = rt_sads_config();
  cfg.max_successors = 1;  // pure greedy dive
  const auto r = SearchEngine(cfg).run(batch,
                                       std::vector<SimDuration>(8, SimDuration{}),
                                       SimTime::zero() + msec(1), net(8),
                                       100000);
  EXPECT_EQ(r.schedule.size(), 6u);
  EXPECT_EQ(r.stats.backtracks, 0u);
}

TEST(SearchEngineTest, FeasibleScheduleRespectsDeadlinesWhenSimulated) {
  // Property: simulate the returned schedule's end offsets; every task ends
  // by its deadline when delivered at the planned delivery time.
  Xoshiro256ss rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    constexpr std::uint32_t m = 4;
    std::vector<Task> batch;
    for (std::uint32_t i = 0; i < 25; ++i) {
      Task t;
      t.id = i;
      t.processing = rng.uniform_duration(usec(200), msec(4));
      t.deadline =
          SimTime::zero() + rng.uniform_duration(msec(2), msec(40));
      for (std::uint32_t k = 0; k < m; ++k) {
        if (rng.bernoulli(0.4)) t.affinity.add(k);
      }
      if (t.affinity.empty()) t.affinity.add(i % m);
      batch.push_back(t);
    }
    const SimTime delivery = SimTime::zero() + msec(2);
    const auto nw = net(m, msec(3));
    const auto r = SearchEngine(rt_sads_config())
                       .run(batch, std::vector<SimDuration>(m, SimDuration{}), delivery,
                            nw, 5000);
    std::vector<SimTime> horizon(m, delivery);
    for (const Assignment& a : r.schedule) {
      const Task& t = batch[a.task_index];
      horizon[a.worker] += t.processing + nw.comm_cost(t.affinity, a.worker);
      ASSERT_LE(horizon[a.worker], t.deadline)
          << "trial " << trial << " task " << t.id;
    }
  }
}

TEST(SearchEngineTest, DColsSchedulesAcrossProcessorsRoundRobin) {
  // Sequence-oriented: the k-th assignment lands on processor k mod m.
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 9; ++i) {
    batch.push_back(make_task(i, msec(1), SimTime::zero() + msec(100),
                              AffinitySet::all(3)));
  }
  const auto r = SearchEngine(d_cols_config())
                     .run(batch, std::vector<SimDuration>(3, SimDuration{}),
                          SimTime::zero() + msec(1), net(3), 100000);
  ASSERT_EQ(r.schedule.size(), 9u);
  for (std::size_t i = 0; i < r.schedule.size(); ++i) {
    EXPECT_EQ(r.schedule[i].worker, i % 3);
  }
}

TEST(SearchEngineTest, StrictDColsDeadEndsWhenLevelProcessorUnusable) {
  // Two tasks, both only feasible on worker 0 (remote cost blows their
  // deadline). Strict sequence-oriented search must put SOME task on
  // worker 1 at level 1 and dead-ends after scheduling just one task;
  // assignment-oriented schedules both on worker 0.
  std::vector<Task> batch;
  batch.push_back(
      make_task(0, msec(2), SimTime::zero() + msec(10), AffinitySet::single(0)));
  batch.push_back(
      make_task(1, msec(2), SimTime::zero() + msec(10), AffinitySet::single(0)));
  const auto nw = net(2, msec(50));
  SearchConfig strict = d_cols_config();
  strict.skip_saturated_processors = false;
  const auto seq = SearchEngine(strict).run(
      batch, std::vector<SimDuration>(2, SimDuration{}),
      SimTime::zero() + msec(1), nw, 100000);
  EXPECT_EQ(seq.schedule.size(), 1u);
  EXPECT_TRUE(seq.stats.dead_end);

  const auto asg = SearchEngine(rt_sads_config())
                       .run(batch, std::vector<SimDuration>(2, SimDuration{}),
                            SimTime::zero() + msec(1), nw, 100000);
  EXPECT_EQ(asg.schedule.size(), 2u);
  for (const Assignment& a : asg.schedule) EXPECT_EQ(a.worker, 0u);
}

TEST(SearchEngineTest, DColsSkipsSaturatedProcessorByDefault) {
  // Same instance: with processor skipping (default) the sequence-oriented
  // search rotates past the unusable worker 1 and schedules both tasks.
  std::vector<Task> batch;
  batch.push_back(
      make_task(0, msec(2), SimTime::zero() + msec(10), AffinitySet::single(0)));
  batch.push_back(
      make_task(1, msec(2), SimTime::zero() + msec(10), AffinitySet::single(0)));
  const auto nw = net(2, msec(50));
  const auto seq = SearchEngine(d_cols_config())
                       .run(batch, std::vector<SimDuration>(2, SimDuration{}),
                            SimTime::zero() + msec(1), nw, 100000);
  ASSERT_EQ(seq.schedule.size(), 2u);
  for (const Assignment& a : seq.schedule) EXPECT_EQ(a.worker, 0u);
  EXPECT_TRUE(seq.stats.reached_leaf);
}

TEST(SearchEngineTest, DeterministicAcrossRuns) {
  Xoshiro256ss rng(21);
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < 15; ++i) {
    Task t;
    t.id = i;
    t.processing = rng.uniform_duration(usec(100), msec(2));
    t.deadline = SimTime::zero() + rng.uniform_duration(msec(5), msec(30));
    t.affinity.add(i % 4);
    batch.push_back(t);
  }
  const SearchEngine engine(rt_sads_config());
  const auto a = engine.run(batch, std::vector<SimDuration>(4, SimDuration{}),
                            SimTime::zero() + msec(1), net(4), 500);
  const auto b = engine.run(batch, std::vector<SimDuration>(4, SimDuration{}),
                            SimTime::zero() + msec(1), net(4), 500);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].task_index, b.schedule[i].task_index);
    EXPECT_EQ(a.schedule[i].worker, b.schedule[i].worker);
  }
  EXPECT_EQ(a.stats.vertices_generated, b.stats.vertices_generated);
}

}  // namespace
}  // namespace rtds::search
