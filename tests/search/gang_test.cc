// Gang/moldable jobs in the predictive feasibility test: a k-worker task
// occupies the contiguous block [worker, worker+k), its start is bound by
// the busiest worker of the block, push charges every block member and pop
// restores them exactly — on both the optimized PartialSchedule and the
// frozen reference engine (spot-checked here; the full bit-identical sweep
// lives in equivalence_test.cc).
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "machine/interconnect.h"
#include "search/partial_schedule.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;
using tasks::ProcessorId;

/// One 2-wide gang and two singletons on a 3-worker machine, zero comm.
std::vector<Task> gang_batch() {
  std::vector<Task> batch(3);
  batch[0].id = 0;  // the gang: p=4ms, width 2
  batch[0].processing = msec(4);
  batch[0].deadline = SimTime::zero() + msec(40);
  batch[0].affinity = AffinitySet::all(3);
  batch[0].workers_required = 2;
  batch[1].id = 1;
  batch[1].processing = msec(2);
  batch[1].deadline = SimTime::zero() + msec(40);
  batch[1].affinity = AffinitySet::all(3);
  batch[2].id = 2;
  batch[2].processing = msec(6);
  batch[2].deadline = SimTime::zero() + msec(40);
  batch[2].affinity = AffinitySet::all(3);
  return batch;
}

machine::Interconnect net3() {
  return machine::Interconnect::cut_through(3, SimDuration::zero());
}

TEST(GangFeasibilityTest, StartBoundByBusiestWorkerOfBlock) {
  const auto batch = gang_batch();
  const auto net = net3();
  // Worker 1 carries 5ms of residual load; workers 0 and 2 are idle.
  PartialSchedule ps(&batch, {SimDuration::zero(), msec(5), SimDuration::zero()},
                     SimTime::zero(), &net);
  // Lead 0 occupies {0, 1}: the gang waits for worker 1 -> ends at 9ms.
  const auto a = ps.evaluate(0, 0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->start_offset, msec(5));
  EXPECT_EQ(a->end_offset, msec(9));
  // Lead 1 occupies {1, 2}: same busiest member, same end.
  const auto b = ps.evaluate(0, 1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->end_offset, msec(9));
}

TEST(GangFeasibilityTest, BlockExceedingMachineIsInfeasible) {
  const auto batch = gang_batch();
  const auto net = net3();
  PartialSchedule ps(&batch,
                     std::vector<SimDuration>(3, SimDuration::zero()),
                     SimTime::zero(), &net);
  // Width 2 with lead 2 would need worker 3: structurally infeasible.
  EXPECT_FALSE(ps.evaluate(0, 2).has_value());
  Assignment fast;
  EXPECT_FALSE(ps.evaluate_fast(0, 2, fast));
  // A width wider than the machine is infeasible everywhere.
  std::vector<Task> wide = batch;
  wide[0].workers_required = 4;
  PartialSchedule wps(&wide, std::vector<SimDuration>(3, SimDuration::zero()),
                      SimTime::zero(), &net);
  for (std::uint32_t k = 0; k < 3; ++k) {
    EXPECT_FALSE(wps.evaluate(0, k).has_value()) << "lead " << k;
  }
}

TEST(GangFeasibilityTest, DeadlineTestChargesWholeBlockOccupancy) {
  const auto batch = gang_batch();
  const auto net = net3();
  // Delivery at 37ms: the 4ms gang ends at 41 > 40 -> infeasible; the 2ms
  // singleton still fits (39 <= 40).
  PartialSchedule ps(&batch, std::vector<SimDuration>(3, SimDuration::zero()),
                     SimTime::zero() + msec(37), &net);
  EXPECT_FALSE(ps.evaluate(0, 0).has_value());
  EXPECT_TRUE(ps.evaluate(1, 0).has_value());
}

TEST(GangPushPopTest, PushChargesEveryBlockMemberAndPopRestores) {
  const auto batch = gang_batch();
  const auto net = net3();
  PartialSchedule ps(&batch, {msec(1), SimDuration::zero(), msec(2)},
                     SimTime::zero(), &net);
  const SimDuration ce0 = ps.ce(0);
  const SimDuration ce1 = ps.ce(1);
  const SimDuration ce2 = ps.ce(2);
  // Gang with lead 1 occupies {1, 2}: starts at worker 2's 2ms load.
  const auto a = ps.evaluate(0, 1);
  ASSERT_TRUE(a.has_value());
  ps.push(*a);
  EXPECT_EQ(ps.ce(1), msec(6));
  EXPECT_EQ(ps.ce(2), msec(6));  // sibling charged the same completion
  EXPECT_EQ(ps.ce(0), ce0);      // outside the block: untouched
  // A singleton queued behind the gang on the sibling worker.
  const auto b = ps.evaluate(2, 2);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->end_offset, msec(12));
  ps.push(*b);
  ps.pop();  // singleton
  ps.pop();  // gang: both block members restored
  EXPECT_EQ(ps.ce(0), ce0);
  EXPECT_EQ(ps.ce(1), ce1);
  EXPECT_EQ(ps.ce(2), ce2);
  EXPECT_EQ(ps.depth(), 0u);
  EXPECT_FALSE(ps.assigned(0));
}

TEST(GangPushPopTest, CommPricedAgainstLeadAffinityOnly) {
  // The gang's input ships to the lead; siblings never pay communication.
  std::vector<Task> batch(1);
  batch[0].id = 0;
  batch[0].processing = msec(3);
  batch[0].deadline = SimTime::zero() + msec(60);
  batch[0].affinity = AffinitySet::single(0);
  batch[0].workers_required = 2;
  const auto net = machine::Interconnect::cut_through(3, msec(2));
  PartialSchedule ps(&batch, std::vector<SimDuration>(3, SimDuration::zero()),
                     SimTime::zero(), &net);
  const auto affine = ps.evaluate(0, 0);  // lead affine: no comm
  ASSERT_TRUE(affine.has_value());
  EXPECT_EQ(affine->exec_cost, msec(3));
  const auto remote = ps.evaluate(0, 1);  // lead remote: one comm charge
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->exec_cost, msec(5));
}

TEST(GangPropertyTest, RandomGangPushPopRestoresExactState) {
  // Property: any push sequence of mixed gangs/singletons, fully popped,
  // restores every worker's ce to its base load (the gang side-stack must
  // unwind in exact LIFO order).
  Xoshiro256ss rng(0x6A16);
  constexpr std::uint32_t kWorkers = 5;
  const auto net = machine::Interconnect::cut_through(kWorkers, usec(500));
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Task> batch(10);
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      batch[i].id = i;
      batch[i].processing = rng.uniform_duration(usec(100), msec(5));
      batch[i].deadline = SimTime::zero() + msec(500);
      batch[i].affinity = AffinitySet::all(kWorkers);
      if (rng.bernoulli(0.5)) {
        batch[i].workers_required =
            static_cast<std::uint32_t>(rng.uniform_int(2, kWorkers));
      }
    }
    std::vector<SimDuration> base(kWorkers);
    for (auto& l : base) l = rng.uniform_duration(SimDuration::zero(), msec(2));
    PartialSchedule ps(&batch, base, SimTime::zero(), &net);
    std::uint32_t pushed = 0;
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      const auto lead = static_cast<ProcessorId>(
          rng.uniform_int(0, kWorkers - 1));
      if (const auto a = ps.evaluate(i, lead)) {
        ps.push(*a);
        ++pushed;
        // Invariant mid-path: every member of every pushed block has
        // ce >= that assignment's end (later pushes only grow it).
        const std::uint32_t width = batch[i].workers_required;
        for (std::uint32_t j = 0; j < width; ++j) {
          EXPECT_GE(ps.ce(lead + j), a->end_offset);
        }
        // Occasionally back out immediately and re-push: exercises the
        // undo stack at interior depths, not just full unwind.
        if (rng.bernoulli(0.25)) {
          ps.pop();
          const auto again = ps.evaluate(i, lead);
          ASSERT_TRUE(again.has_value());
          EXPECT_EQ(again->end_offset, a->end_offset);
          ps.push(*again);
        }
      }
    }
    while (ps.depth() > 0) ps.pop();
    for (std::uint32_t k = 0; k < kWorkers; ++k) {
      EXPECT_EQ(ps.ce(k), base[k]) << "trial " << trial << " worker " << k;
    }
    EXPECT_GT(pushed, 0u);
  }
}

TEST(GangConstructionTest, RejectsZeroWidth) {
  std::vector<Task> batch(1);
  batch[0].id = 0;
  batch[0].processing = msec(1);
  batch[0].deadline = SimTime::zero() + msec(10);
  batch[0].affinity = AffinitySet::single(0);
  batch[0].workers_required = 0;
  const auto net = machine::Interconnect::cut_through(2, msec(1));
  const std::vector<SimDuration> loads(2, SimDuration::zero());
  EXPECT_THROW(PartialSchedule(&batch, loads, SimTime::zero(), &net),
               InvalidArgument);
}

}  // namespace
}  // namespace rtds::search
