// Oracle tests: exhaustive brute force over task-to-worker assignments on
// tiny instances, checked against the search engine.
//
// Completeness property: if ANY complete feasible schedule exists, the
// assignment-oriented depth-first search with an ample budget finds a
// complete schedule. (Why the engine's fixed EDF task order loses nothing:
// per worker, any feasible set can be EDF-sorted and stay feasible —
// single-machine EDF optimality — and the engine's global EDF construction
// induces exactly per-worker EDF order, while backtracking covers every
// worker choice.)
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "search/engine.h"

namespace rtds::search {
namespace {

using tasks::ProcessorId;

/// Brute force: enumerate all m^n worker assignments; for each, sequence
/// every worker's set in EDF order and test feasibility against the same
/// delivery-time bound the engine uses.
bool exists_complete_schedule(const std::vector<Task>& batch,
                              const machine::Interconnect& net,
                              SimTime delivery,
                              const std::vector<SimDuration>& base) {
  const std::uint32_t n = static_cast<std::uint32_t>(batch.size());
  const std::uint32_t m = net.num_workers();
  // EDF order of the batch (stable).
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return batch[a].deadline < batch[b].deadline;
                   });

  std::vector<ProcessorId> choice(n, 0);
  std::uint64_t total = 1;
  for (std::uint32_t i = 0; i < n; ++i) total *= m;
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t c = code;
    for (std::uint32_t i = 0; i < n; ++i) {
      choice[i] = static_cast<ProcessorId>(c % m);
      c /= m;
    }
    // Feasibility with per-worker EDF sequencing.
    std::vector<SimDuration> ce = base;
    bool ok = true;
    for (std::uint32_t idx : order) {
      const Task& t = batch[idx];
      const ProcessorId w = choice[idx];
      ce[w] += t.processing + net.comm_cost(t.affinity, w);
      if (delivery + ce[w] > t.deadline) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

TEST(OracleTest, EngineFindsCompleteScheduleIffOneExists) {
  Xoshiro256ss rng(2024);
  SearchConfig cfg;  // RT-SADS defaults
  const SearchEngine engine(cfg);

  int instances_with_solution = 0;
  int instances_without = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const std::uint32_t n = 2 + std::uint32_t(rng.uniform_int(0, 4));  // 2..6
    const std::uint32_t m = 2 + std::uint32_t(rng.uniform_int(0, 1));  // 2..3
    const auto net = machine::Interconnect::cut_through(
        m, rng.uniform_duration(SimDuration::zero(), msec(4)));
    std::vector<Task> batch;
    for (std::uint32_t i = 0; i < n; ++i) {
      Task t;
      t.id = i;
      t.processing = rng.uniform_duration(msec(1), msec(4));
      // Tight-ish deadlines so both outcomes occur.
      t.deadline = SimTime::zero() +
                   rng.uniform_duration(msec(3), msec(12));
      for (std::uint32_t k = 0; k < m; ++k) {
        if (rng.bernoulli(0.5)) t.affinity.add(k);
      }
      if (t.affinity.empty()) t.affinity.add(i % m);
      batch.push_back(t);
    }
    std::vector<SimDuration> base(m);
    for (auto& b : base) {
      b = rng.uniform_duration(SimDuration::zero(), msec(2));
    }
    const SimTime delivery = SimTime::zero() + msec(1);

    const bool oracle =
        exists_complete_schedule(batch, net, delivery, base);
    const auto r = engine.run(batch, base, delivery, net, 10'000'000);

    if (oracle) {
      ++instances_with_solution;
      EXPECT_TRUE(r.stats.reached_leaf)
          << "trial " << trial << ": oracle found a complete schedule, "
          << "engine did not (n=" << n << " m=" << m << ")";
      EXPECT_EQ(r.schedule.size(), n);
    } else {
      ++instances_without;
      EXPECT_FALSE(r.stats.reached_leaf)
          << "trial " << trial << ": engine claims a complete schedule "
          << "the oracle says cannot exist";
      EXPECT_LT(r.schedule.size(), n);
    }
  }
  // The generator must actually exercise both outcomes.
  EXPECT_GT(instances_with_solution, 20);
  EXPECT_GT(instances_without, 20);
}

TEST(OracleTest, EngineScheduleAlwaysReplaysFeasibly) {
  // Independent re-check of the engine's output on the same tiny grid,
  // including partial schedules under small budgets.
  Xoshiro256ss rng(77);
  const SearchEngine engine(SearchConfig{});
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t n = 4, m = 3;
    const auto net = machine::Interconnect::cut_through(m, msec(2));
    std::vector<Task> batch;
    for (std::uint32_t i = 0; i < n; ++i) {
      Task t;
      t.id = i;
      t.processing = rng.uniform_duration(msec(1), msec(3));
      t.deadline = SimTime::zero() + rng.uniform_duration(msec(2), msec(10));
      t.affinity.add(ProcessorId(rng.uniform_int(0, m - 1)));
      batch.push_back(t);
    }
    const SimTime delivery = SimTime::zero() + msec(1);
    const auto budget = std::uint64_t(rng.uniform_int(1, 60));
    const auto r = engine.run(batch, std::vector<SimDuration>(m, SimDuration{}),
                              delivery, net, budget);
    std::vector<SimTime> horizon(m, delivery);
    for (const Assignment& a : r.schedule) {
      const Task& t = batch[a.task_index];
      horizon[a.worker] += t.processing + net.comm_cost(t.affinity, a.worker);
      ASSERT_LE(horizon[a.worker], t.deadline);
    }
  }
}

}  // namespace
}  // namespace rtds::search
