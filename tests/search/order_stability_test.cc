// Stability contract of the task consideration order: all three heuristics
// must break ties by batch position (stable sort), because the batch holds
// arrival/merge order and the paper's heuristics say nothing about equal
// keys — an unstable sort would make schedules depend on sort internals.
#include <gtest/gtest.h>

#include "search/engine.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;

std::vector<Task> tied_batch() {
  // Six tasks in three tie groups. Deadline ties: {0, 2, 4} at 20ms and
  // {1, 3, 5} at 30ms. Slack (d - p) ties pair tasks across the deadline
  // groups: 0/2/4 have p 4/4/4 (slack 16) and 1/3/5 have p 14/14/14
  // (slack 16) — every task has identical slack, so kMinSlack must return
  // pure batch order.
  std::vector<Task> batch(6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    batch[i].id = i;
    const bool late = (i % 2) == 1;
    batch[i].deadline = SimTime::zero() + msec(late ? 30 : 20);
    batch[i].processing = msec(late ? 14 : 4);
    batch[i].affinity = AffinitySet::all(2);
  }
  return batch;
}

TEST(TaskOrderStabilityTest, BatchOrderIsIdentity) {
  const auto batch = tied_batch();
  const auto order = task_consideration_order(batch, TaskOrder::kBatchOrder);
  ASSERT_EQ(order.size(), batch.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskOrderStabilityTest, EarliestDeadlineKeepsBatchOrderWithinTies) {
  const auto batch = tied_batch();
  const auto order =
      task_consideration_order(batch, TaskOrder::kEarliestDeadline);
  // 20ms group first in batch order, then the 30ms group in batch order.
  const std::vector<std::uint32_t> expected{0, 2, 4, 1, 3, 5};
  EXPECT_EQ(order, expected);
}

TEST(TaskOrderStabilityTest, MinSlackKeepsBatchOrderWhenAllSlacksTie) {
  const auto batch = tied_batch();
  const auto order = task_consideration_order(batch, TaskOrder::kMinSlack);
  // All slacks equal (16ms): stability demands the identity permutation.
  const std::vector<std::uint32_t> expected{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(order, expected);
}

TEST(TaskOrderStabilityTest, IntoVariantMatchesAndReusesCapacity) {
  const auto batch = tied_batch();
  std::vector<std::uint32_t> out;
  for (const auto order : {TaskOrder::kBatchOrder,
                           TaskOrder::kEarliestDeadline,
                           TaskOrder::kMinSlack}) {
    task_consideration_order_into(batch, order, out);
    EXPECT_EQ(out, task_consideration_order(batch, order));
  }
  // Shrinking batches must shrink the output (resize, not append).
  const std::vector<Task> smaller(batch.begin(), batch.begin() + 2);
  task_consideration_order_into(smaller, TaskOrder::kEarliestDeadline, out);
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace rtds::search
