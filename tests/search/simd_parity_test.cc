// Scalar-vs-vector parity for the search/simd.h kernels — the proof
// obligation behind taking the batched paths in expand_core.h. Three
// layers:
//   1. raw kernel vs its *_scalar reference on randomized operands,
//      sweeping every lane-remainder shape (m and count at 1, below/at/above
//      the 4-lane AVX2 and 2-lane NEON widths, and the 63/64 extremes);
//   2. kernel verdicts vs PartialSchedule::evaluate_fast on fuzzed partial
//      schedules (the engine-facing contract, including ce_k evolution
//      across pushes and the simd min_ce against a scalar rescan);
//   3. word-boundary batch shapes off the unassigned bitset (64/128 tasks).
// On a scalar build (no -mavx2/-march=native, or RTDS_SIMD_FORCE_SCALAR)
// the dispatching kernels ARE the scalar ones and this suite pins the
// trivial identity; on a vector build it proves the lanes.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "machine/interconnect.h"
#include "search/partial_schedule.h"
#include "search/simd.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;
using tasks::ProcessorId;

TEST(SimdParityTest, BackendNameIsKnown) {
  const std::string name = simd::backend_name();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon") << name;
}

TEST(SimdParityTest, WorkersMaskMatchesScalarOnRandomOperands) {
  Xoshiro256ss rng(0x51D0A11ULL);
  const std::uint32_t kLaneShapes[] = {1,  2,  3,  4,  5,  7,  8,
                                       9,  15, 16, 17, 31, 32, 33,
                                       47, 48, 63, 64};
  for (std::uint32_t rep = 0; rep < 200; ++rep) {
    for (const std::uint32_t m : kLaneShapes) {
      std::vector<std::int64_t> ce(m);
      for (auto& v : ce) v = rng.uniform_int(0, 2'000'000'000);
      const std::int64_t p = rng.uniform_int(1, 1'000'000'000);
      const std::int64_t es = rng.uniform_int(0, 1'500'000'000);
      // Deadline band straddles feasible/infeasible so both verdicts occur.
      const std::int64_t d = rng.uniform_int(0, 4'000'000'000LL) -
                             500'000'000;
      const std::int64_t comm = rng.uniform_int(0, 50'000'000);
      const auto aff = (rng.next() << 32) ^ rng.next();
      EXPECT_EQ(
          simd::feasible_workers_mask(ce.data(), m, p, es, d, comm, aff),
          simd::feasible_workers_mask_scalar(ce.data(), m, p, es, d, comm,
                                             aff))
          << "m=" << m << " rep=" << rep;
    }
  }
}

TEST(SimdParityTest, TasksMaskMatchesScalarOnRandomOperands) {
  Xoshiro256ss rng(0x7A5C0DEULL);
  for (std::uint32_t rep = 0; rep < 200; ++rep) {
    const auto n = static_cast<std::uint32_t>(rng.uniform_int(1, 300));
    std::vector<std::int64_t> p(n), es(n), d(n);
    std::vector<std::uint64_t> aff(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      p[i] = rng.uniform_int(1, 1'000'000'000);
      es[i] = rng.uniform_int(0, 1'500'000'000);
      d[i] = rng.uniform_int(0, 4'000'000'000LL) - 500'000'000;
      aff[i] = (rng.next() << 32) ^ rng.next();
    }
    const std::uint32_t counts[] = {1, 2, 3, 4, 5, 7, 8, 31, 32, 33, 63, 64};
    for (const std::uint32_t count : counts) {
      std::vector<std::uint32_t> ids(count);
      for (auto& t : ids) {
        t = static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
      }
      const auto worker =
          static_cast<std::uint32_t>(rng.uniform_int(0, 63));
      const std::int64_t ce_w = rng.uniform_int(0, 2'000'000'000);
      const std::int64_t comm = rng.uniform_int(0, 50'000'000);
      EXPECT_EQ(simd::feasible_tasks_mask(ids.data(), count, ce_w, worker,
                                          p.data(), es.data(), d.data(),
                                          aff.data(), comm),
                simd::feasible_tasks_mask_scalar(ids.data(), count, ce_w,
                                                 worker, p.data(), es.data(),
                                                 d.data(), aff.data(), comm))
          << "count=" << count << " rep=" << rep;
    }
  }
}

TEST(SimdParityTest, MinMaxMatchScalarOnRandomOperands) {
  Xoshiro256ss rng(0x3417B3ULL);
  for (std::uint32_t rep = 0; rep < 500; ++rep) {
    const auto m = static_cast<std::uint32_t>(rng.uniform_int(1, 64));
    std::vector<std::int64_t> v(m);
    for (auto& x : v) {
      x = rng.uniform_int(0, 4'000'000'000LL) - 2'000'000'000;
    }
    EXPECT_EQ(simd::min_i64(v.data(), m), simd::min_i64_scalar(v.data(), m));
    EXPECT_EQ(simd::max_i64(v.data(), m), simd::max_i64_scalar(v.data(), m));
  }
}

// ---------------------------------------------------------------------------
// Engine-facing contract: kernel verdicts == evaluate_fast verdicts on
// fuzzed partial schedules, across pushes (ce_k evolution included).
// ---------------------------------------------------------------------------

struct FuzzInput {
  std::vector<Task> batch;
  std::vector<SimDuration> base_loads;
  SimTime delivery{SimTime::zero()};
  std::uint32_t m{1};
  SimDuration comm{SimDuration::zero()};
};

FuzzInput make_input(Xoshiro256ss& rng, bool allow_gangs) {
  FuzzInput s;
  // m sweeps the full lane range, with the 1 and 64 extremes overweighted.
  switch (rng.uniform_int(0, 3)) {
    case 0:
      s.m = 1;
      break;
    case 1:
      s.m = 64;
      break;
    default:
      s.m = static_cast<std::uint32_t>(rng.uniform_int(2, 63));
      break;
  }
  s.comm = usec(rng.uniform_int(0, 8000));
  s.delivery = SimTime::zero() + usec(rng.uniform_int(0, 20000));
  const auto n = static_cast<std::uint32_t>(rng.uniform_int(1, 200));
  s.batch.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Task& t = s.batch[i];
    t.id = i;
    t.processing = usec(rng.uniform_int(100, 10000));
    t.deadline = SimTime::zero() + usec(rng.uniform_int(500, 90000));
    if (rng.bernoulli(0.3)) {
      t.earliest_start = SimTime::zero() + usec(rng.uniform_int(0, 40000));
    }
    if (rng.bernoulli(0.25)) {
      t.affinity = AffinitySet::all(s.m);
    } else {
      const auto holders = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
      for (std::uint32_t h = 0; h < holders; ++h) {
        t.affinity.add(
            static_cast<ProcessorId>(rng.uniform_int(0, s.m - 1)));
      }
    }
    if (allow_gangs && s.m >= 2 && rng.bernoulli(0.2)) {
      t.workers_required =
          static_cast<std::uint32_t>(rng.uniform_int(2, s.m));
    }
  }
  s.base_loads.resize(s.m);
  for (auto& load : s.base_loads) {
    load = rng.bernoulli(0.5) ? SimDuration::zero()
                              : usec(rng.uniform_int(0, 15000));
  }
  return s;
}

/// Walks random feasible pushes through a schedule, checking at every state
/// that the masks agree with evaluate_fast and min_ce with a scalar rescan.
void check_schedule_parity(const FuzzInput& s, Xoshiro256ss& rng) {
  const auto net = machine::Interconnect::cut_through(s.m, s.comm);
  PartialSchedule ps(&s.batch, s.base_loads, s.delivery, &net);
  const auto n = static_cast<std::uint32_t>(s.batch.size());

  std::vector<std::uint32_t> word_tasks;
  Assignment a;
  for (std::uint32_t step = 0; step < 64 && !ps.complete(); ++step) {
    // min_ce: simd reduction vs scalar rescan.
    SimDuration lo = ps.ce(0);
    for (std::uint32_t k = 1; k < s.m; ++k) {
      lo = min_duration(lo, ps.ce(k));
    }
    ASSERT_EQ(ps.min_ce().us, lo.us);

    // Worker-mask parity for every unassigned eligible task.
    for (std::uint32_t i = 0; i < n; ++i) {
      if (ps.assigned(i) || !ps.workers_mask_eligible(i)) continue;
      const std::uint64_t mask = ps.feasible_workers_mask(i);
      for (std::uint32_t k = 0; k < s.m; ++k) {
        ASSERT_EQ((mask >> k) & 1u, ps.evaluate_fast(i, k, a) ? 1u : 0u)
            << "task " << i << " worker " << k << " step " << step;
      }
      // Workers beyond m must be clear.
      if (s.m < 64) {
        ASSERT_EQ(mask >> s.m, 0u);
      }
    }

    // Task-mask parity per unassigned-bitset word (the engine's batch
    // shape), when the batch is eligible at all.
    if (ps.tasks_mask_eligible()) {
      const auto& words = ps.unassigned_words();
      const auto worker =
          static_cast<ProcessorId>(rng.uniform_int(0, s.m - 1));
      for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t bits = words[w];
        if (bits == 0) continue;
        word_tasks.clear();
        while (bits != 0) {
          const auto pos = static_cast<std::uint32_t>(
              (w << 6) + std::uint32_t(std::countr_zero(bits)));
          bits &= bits - 1;
          word_tasks.push_back(ps.task_at(pos));
        }
        const std::uint64_t mask = ps.feasible_tasks_mask(
            worker, word_tasks.data(),
            static_cast<std::uint32_t>(word_tasks.size()));
        for (std::size_t j = 0; j < word_tasks.size(); ++j) {
          ASSERT_EQ((mask >> j) & 1u,
                    ps.evaluate_fast(word_tasks[j], worker, a) ? 1u : 0u)
              << "word " << w << " lane " << j << " step " << step;
        }
      }
    }

    // Advance: push a random feasible assignment (ce_k evolution is what
    // the next iteration's parity checks run against); stop at dead ends.
    bool pushed = false;
    const auto start_task =
        static_cast<std::uint32_t>(rng.uniform_int(0, n - 1));
    for (std::uint32_t off = 0; off < n && !pushed; ++off) {
      const std::uint32_t i = (start_task + off) % n;
      if (ps.assigned(i)) continue;
      const auto start_worker =
          static_cast<std::uint32_t>(rng.uniform_int(0, s.m - 1));
      for (std::uint32_t wk = 0; wk < s.m; ++wk) {
        if (ps.evaluate_fast(i, (start_worker + wk) % s.m, a)) {
          ps.push(a);
          ASSERT_EQ(ps.ce(a.worker).us, a.end_offset.us);
          pushed = true;
          break;
        }
      }
    }
    if (!pushed) break;
    // Occasionally backtrack so post-pop states get checked too.
    if (ps.depth() > 0 && rng.bernoulli(0.2)) ps.pop();
  }
}

TEST(SimdParityTest, MasksMatchEvaluateFastOverFuzzSchedules) {
  Xoshiro256ss rng(0xFA57F00DULL);
  for (std::uint32_t sc = 0; sc < 120; ++sc) {
    const FuzzInput s = make_input(rng, /*allow_gangs=*/sc % 3 == 0);
    check_schedule_parity(s, rng);
  }
}

TEST(SimdParityTest, WordBoundaryBatchShapes) {
  // n exactly at bitset word boundaries: the final word is full (64, 128)
  // or minimal (65, 129) — the mask path must agree in both shapes.
  Xoshiro256ss rng(0xB17B0A4DULL);
  for (const std::uint32_t n : {63u, 64u, 65u, 127u, 128u, 129u}) {
    for (std::uint32_t rep = 0; rep < 8; ++rep) {
      FuzzInput s = make_input(rng, /*allow_gangs=*/false);
      s.batch.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        Task& t = s.batch[i];
        t.id = i;
        if (t.processing == SimDuration::zero()) {
          t.processing = usec(rng.uniform_int(100, 10000));
          t.deadline = SimTime::zero() + usec(rng.uniform_int(500, 90000));
          t.affinity = AffinitySet::all(s.m);
        }
        t.workers_required = 1;
      }
      check_schedule_parity(s, rng);
    }
  }
}

}  // namespace
}  // namespace rtds::search
