// Tests of the sequence-representation level-processor selection rules.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/engine.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;

std::vector<Task> uniform_batch(std::uint32_t n, std::uint32_t m) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < n; ++i) {
    Task t;
    t.id = i;
    t.processing = msec(1);
    t.deadline = SimTime::zero() + msec(200);
    t.affinity = AffinitySet::all(m);
    batch.push_back(t);
  }
  return batch;
}

SearchConfig seq_cfg(LevelProcessorOrder order) {
  SearchConfig cfg;
  cfg.representation = Representation::kSequenceOriented;
  cfg.use_load_balance_cost = false;
  cfg.level_processor_order = order;
  return cfg;
}

TEST(LevelOrderTest, RoundRobinVisitsProcessorsInIndexOrder) {
  const std::uint32_t m = 3;
  const auto net = machine::Interconnect::cut_through(m, msec(1));
  const auto batch = uniform_batch(6, m);
  const auto r =
      SearchEngine(seq_cfg(LevelProcessorOrder::kRoundRobin))
          .run(batch, std::vector<SimDuration>(m, SimDuration{}),
               SimTime::zero() + msec(1), net, 1000000);
  ASSERT_EQ(r.schedule.size(), 6u);
  for (std::size_t i = 0; i < r.schedule.size(); ++i) {
    EXPECT_EQ(r.schedule[i].worker, i % m);
  }
}

TEST(LevelOrderTest, LeastLoadedPrefersIdleWorker) {
  // Worker 0 starts preloaded; the least-loaded rule must fill workers 1
  // and 2 first even though round-robin would begin at 0.
  const std::uint32_t m = 3;
  const auto net = machine::Interconnect::cut_through(m, msec(1));
  const auto batch = uniform_batch(4, m);
  const std::vector<SimDuration> base{msec(10), SimDuration::zero(),
                                      SimDuration::zero()};
  const auto r =
      SearchEngine(seq_cfg(LevelProcessorOrder::kLeastLoaded))
          .run(batch, base, SimTime::zero() + msec(1), net, 1000000);
  ASSERT_EQ(r.schedule.size(), 4u);
  EXPECT_NE(r.schedule[0].worker, 0u);
  EXPECT_NE(r.schedule[1].worker, 0u);
  // With 10ms preload vs 1ms tasks, worker 0 never wins a level here.
  for (const Assignment& a : r.schedule) {
    EXPECT_NE(a.worker, 0u);
  }
}

TEST(LevelOrderTest, LeastLoadedBalancesUniformBurst) {
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, msec(1));
  const auto batch = uniform_batch(12, m);
  const auto r =
      SearchEngine(seq_cfg(LevelProcessorOrder::kLeastLoaded))
          .run(batch, std::vector<SimDuration>(m, SimDuration{}),
               SimTime::zero() + msec(1), net, 1000000);
  ASSERT_EQ(r.schedule.size(), 12u);
  std::vector<int> per_worker(m, 0);
  for (const Assignment& a : r.schedule) ++per_worker[a.worker];
  for (int c : per_worker) EXPECT_EQ(c, 3);
}

TEST(LevelOrderTest, FeasibilityInvariantHolds) {
  Xoshiro256ss rng(3);
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, msec(3));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Task> batch;
    for (std::uint32_t i = 0; i < 40; ++i) {
      Task t;
      t.id = i;
      t.processing = rng.uniform_duration(usec(200), msec(4));
      t.deadline = SimTime::zero() + rng.uniform_duration(msec(3), msec(30));
      t.affinity.add(i % m);
      batch.push_back(t);
    }
    const SimTime delivery = SimTime::zero() + msec(2);
    const auto r =
        SearchEngine(seq_cfg(LevelProcessorOrder::kLeastLoaded))
            .run(batch, std::vector<SimDuration>(m, SimDuration{}), delivery,
                 net, 5000);
    std::vector<SimTime> horizon(m, delivery);
    for (const Assignment& a : r.schedule) {
      const Task& t = batch[a.task_index];
      horizon[a.worker] += t.processing + net.comm_cost(t.affinity, a.worker);
      ASSERT_LE(horizon[a.worker], t.deadline);
    }
  }
}

}  // namespace
}  // namespace rtds::search
