// Tests of the paper's Sec. 3 claims about the two search representations:
// pruned sequence-oriented search reaches dead-ends more often, terminates
// at shallower depths, and concentrates tasks on a prefix of the processors,
// while assignment-oriented search exploits all machines greedily.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "search/engine.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;
using tasks::ProcessorId;

std::vector<Task> random_batch(std::uint32_t n, std::uint32_t m,
                               double affinity_degree, double laxity,
                               Xoshiro256ss& rng) {
  std::vector<Task> batch;
  batch.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Task t;
    t.id = i;
    t.processing = rng.uniform_duration(msec(1), msec(5));
    t.deadline =
        SimTime::zero() +
        SimDuration{std::int64_t(laxity * double(t.processing.us))};
    for (std::uint32_t k = 0; k < m; ++k) {
      if (rng.bernoulli(affinity_degree)) t.affinity.add(k);
    }
    if (t.affinity.empty()) {
      t.affinity.add(static_cast<ProcessorId>(rng.uniform_int(0, m - 1)));
    }
    batch.push_back(t);
  }
  return batch;
}

SearchConfig assignment_cfg() {
  SearchConfig cfg;
  cfg.representation = Representation::kAssignmentOriented;
  cfg.use_load_balance_cost = true;
  return cfg;
}

SearchConfig sequence_cfg() {
  SearchConfig cfg;
  cfg.representation = Representation::kSequenceOriented;
  cfg.use_load_balance_cost = false;
  return cfg;
}

TEST(RepresentationTest, AssignmentOrientedBranchingIsProcessorCount) {
  // One expansion of the root generates exactly m vertices.
  Xoshiro256ss rng(1);
  const std::uint32_t m = 6;
  auto batch = random_batch(30, m, 1.0, 50.0, rng);
  const auto net = machine::Interconnect::cut_through(m, msec(1));
  const auto r = SearchEngine(assignment_cfg())
                     .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                          SimTime::zero() + msec(1), net, m);
  EXPECT_EQ(r.stats.vertices_generated, m);
  EXPECT_EQ(r.stats.expansions, 1u);
}

TEST(RepresentationTest, SequenceOrientedBranchingIsBatchSize) {
  // One expansion of the root generates up to n vertices (all unassigned
  // tasks on the level's processor).
  Xoshiro256ss rng(2);
  const std::uint32_t m = 6, n = 30;
  auto batch = random_batch(n, m, 1.0, 50.0, rng);
  const auto net = machine::Interconnect::cut_through(m, msec(1));
  const auto r = SearchEngine(sequence_cfg())
                     .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                          SimTime::zero() + msec(1), net, n);
  EXPECT_EQ(r.stats.vertices_generated, n);
  EXPECT_EQ(r.stats.expansions, 1u);
}

TEST(RepresentationTest, EqualBudgetSchedulesMoreTasksAssignmentOriented) {
  // The core scalability mechanism: with the same vertex budget, the
  // sequence-oriented representation pays ~n vertices per scheduled task
  // while the assignment-oriented one pays ~m.
  Xoshiro256ss rng(3);
  const std::uint32_t m = 8, n = 100;
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  std::uint64_t asg_total = 0, seq_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto batch = random_batch(n, m, 0.3, 60.0, rng);
    const std::uint64_t budget = 400;
    const auto asg = SearchEngine(assignment_cfg())
                         .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                              SimTime::zero() + msec(1), net, budget);
    const auto seq = SearchEngine(sequence_cfg())
                         .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                              SimTime::zero() + msec(1), net, budget);
    asg_total += asg.schedule.size();
    seq_total += seq.schedule.size();
  }
  EXPECT_GT(asg_total, 2 * seq_total);
}

TEST(RepresentationTest, SequenceOrientedLeavesProcessorsIdleAtShallowDepth) {
  // When the search stops at depth < m, only the first processors of the
  // round-robin order have tasks ("many processors remain idle while
  // others are heavily loaded").
  Xoshiro256ss rng(4);
  const std::uint32_t m = 10, n = 50;
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  auto batch = random_batch(n, m, 1.0, 80.0, rng);
  const std::uint64_t budget = 3 * n;  // a handful of levels at most
  const auto seq = SearchEngine(sequence_cfg())
                       .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                            SimTime::zero() + msec(1), net, budget);
  // Levels cost ~n, n-1, n-2, ... vertices, so at most 4 levels complete.
  ASSERT_LE(seq.schedule.size(), 4u);
  std::set<ProcessorId> used;
  for (const Assignment& a : seq.schedule) used.insert(a.worker);
  for (ProcessorId w : used) EXPECT_LT(w, 4u);

  const auto asg = SearchEngine(assignment_cfg())
                       .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                            SimTime::zero() + msec(1), net, budget);
  // Same budget: assignment-oriented spreads across many more workers.
  std::set<ProcessorId> asg_used;
  for (const Assignment& a : asg.schedule) asg_used.insert(a.worker);
  EXPECT_GT(asg_used.size(), used.size());
}

TEST(RepresentationTest, LowAffinityEqualBudgetFavorsAssignmentOriented) {
  // With rare affinity and a large C, only affine placements are feasible.
  // Under the paper's equal-quantum regime the assignment-oriented search
  // routes each task straight to its holders at cost ~m vertices, while the
  // sequence-oriented search pays ~n vertices per level — so with the same
  // budget it schedules far fewer tasks.
  Xoshiro256ss rng(5);
  const std::uint32_t m = 8, n = 40;
  const auto net = machine::Interconnect::cut_through(m, msec(100));
  std::uint64_t seq_scheduled = 0, asg_scheduled = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto batch = random_batch(n, m, 0.12, 3.0, rng);
    const std::uint64_t budget = 8 * n;  // same quantum for both
    const auto seq = SearchEngine(sequence_cfg())
                         .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                              SimTime::zero(), net, budget);
    const auto asg = SearchEngine(assignment_cfg())
                         .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                              SimTime::zero(), net, budget);
    seq_scheduled += seq.schedule.size();
    asg_scheduled += asg.schedule.size();
  }
  EXPECT_GT(asg_scheduled, seq_scheduled);
}

TEST(RepresentationTest, UnplaceableTaskSkippingKeepsPhasesProductive) {
  // A tight task whose only holder is saturated must not stall the whole
  // phase: with skipping (default) the other tasks still get scheduled;
  // with the strict expansion rule the phase dead-ends almost empty.
  const std::uint32_t m = 2;
  const auto net = machine::Interconnect::cut_through(m, sec(10));
  std::vector<Task> batch;
  // Task 0: earliest deadline, impossible (worker 0 pre-loaded past d).
  Task stuck;
  stuck.id = 0;
  stuck.processing = msec(2);
  stuck.deadline = SimTime::zero() + msec(4);
  stuck.affinity.add(0);
  batch.push_back(stuck);
  for (std::uint32_t i = 1; i <= 6; ++i) {
    Task t;
    t.id = i;
    t.processing = msec(1);
    t.deadline = SimTime::zero() + msec(100);
    t.affinity.add(1);
    batch.push_back(t);
  }
  const std::vector<SimDuration> base{msec(50), SimDuration::zero()};

  SearchConfig skipping = assignment_cfg();
  const auto with_skip = SearchEngine(skipping).run(
      batch, base, SimTime::zero() + msec(1), net, 100000);
  EXPECT_EQ(with_skip.schedule.size(), 6u);

  SearchConfig strict = assignment_cfg();
  strict.skip_unplaceable_tasks = false;
  const auto no_skip = SearchEngine(strict).run(
      batch, base, SimTime::zero() + msec(1), net, 100000);
  EXPECT_TRUE(no_skip.schedule.empty());
  EXPECT_TRUE(no_skip.stats.dead_end);
}

TEST(RepresentationTest, BothProduceOnlyFeasibleSchedules) {
  // Shared invariant across representations (feeds the correction theorem).
  Xoshiro256ss rng(6);
  const std::uint32_t m = 6;
  const auto net = machine::Interconnect::cut_through(m, msec(4));
  for (const auto& cfg : {assignment_cfg(), sequence_cfg()}) {
    for (int trial = 0; trial < 10; ++trial) {
      auto batch = random_batch(60, m, 0.3, 8.0, rng);
      const SimTime delivery = SimTime::zero() + msec(3);
      const auto r = SearchEngine(cfg).run(
          batch, std::vector<SimDuration>(m, usec(500)), delivery, net, 2000);
      std::vector<SimTime> horizon(m, delivery + usec(500));
      for (const Assignment& a : r.schedule) {
        const Task& t = batch[a.task_index];
        horizon[a.worker] +=
            t.processing + net.comm_cost(t.affinity, a.worker);
        ASSERT_LE(horizon[a.worker], t.deadline);
      }
    }
  }
}

TEST(RepresentationTest, PrunedSequenceSearchDeadEndsMoreOften) {
  // max_successors (the "limited backtracking" pruning the paper says
  // dynamic algorithms are forced to adopt) raises the dead-end
  // probability of the sequence-oriented representation (Sec. 3).
  Xoshiro256ss rng(7);
  const std::uint32_t m = 8, n = 40;
  const auto net = machine::Interconnect::cut_through(m, msec(60));
  int pruned_dead_ends = 0, full_dead_ends = 0;
  for (int trial = 0; trial < 15; ++trial) {
    auto batch = random_batch(n, m, 0.2, 4.0, rng);
    SearchConfig pruned = sequence_cfg();
    pruned.max_successors = 1;
    const auto rp = SearchEngine(pruned).run(
        batch, std::vector<SimDuration>(m, SimDuration{}), SimTime::zero(),
        net, 1000000);
    const auto rf = SearchEngine(sequence_cfg())
                        .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                             SimTime::zero(), net, 1000000);
    pruned_dead_ends += rp.stats.dead_end ? 1 : 0;
    full_dead_ends += rf.stats.dead_end ? 1 : 0;
  }
  EXPECT_GE(pruned_dead_ends, full_dead_ends);
  EXPECT_GT(pruned_dead_ends, 0);
}

}  // namespace
}  // namespace rtds::search
