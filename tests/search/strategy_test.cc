// Tests of the candidate-list consumption strategies (ABL-STRAT): the
// paper's depth-first discipline vs a best-first alternative.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "search/engine.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;

std::vector<Task> uniform_batch(std::uint32_t n, std::uint32_t m,
                                SimDuration window) {
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < n; ++i) {
    Task t;
    t.id = i;
    t.processing = msec(1);
    t.deadline = SimTime::zero() + window;
    t.affinity = AffinitySet::all(m);
    batch.push_back(t);
  }
  return batch;
}

SearchConfig with_strategy(SearchStrategy s) {
  SearchConfig cfg;
  cfg.strategy = s;
  return cfg;
}

TEST(StrategyTest, BothCompleteSmallInstances) {
  const auto batch = uniform_batch(8, 3, msec(100));
  const auto net = machine::Interconnect::cut_through(3, msec(1));
  for (SearchStrategy s :
       {SearchStrategy::kDepthFirst, SearchStrategy::kBestFirst}) {
    const auto r = SearchEngine(with_strategy(s))
                       .run(batch, std::vector<SimDuration>(3, SimDuration{}),
                            SimTime::zero() + msec(1), net, 1000000);
    EXPECT_EQ(r.schedule.size(), 8u) << int(s);
    EXPECT_TRUE(r.stats.reached_leaf);
  }
}

TEST(StrategyTest, DepthFirstDivesDeeperUnderBudget) {
  // CE grows with depth, so the best-first heap keeps returning to shallow
  // siblings: with an equal budget the depth-first search schedules more —
  // the reason the paper's algorithms dive.
  Xoshiro256ss rng(9);
  const std::uint32_t n = 60, m = 6;
  const auto net = machine::Interconnect::cut_through(m, msec(2));
  std::vector<Task> batch;
  for (std::uint32_t i = 0; i < n; ++i) {
    Task t;
    t.id = i;
    t.processing = rng.uniform_duration(usec(500), msec(3));
    t.deadline = SimTime::zero() + msec(300);
    t.affinity.add(i % m);
    t.affinity.add((i + 1) % m);
    batch.push_back(t);
  }
  const std::uint64_t budget = 30 * m;
  const auto dfs = SearchEngine(with_strategy(SearchStrategy::kDepthFirst))
                       .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                            SimTime::zero() + msec(1), net, budget);
  const auto bfs = SearchEngine(with_strategy(SearchStrategy::kBestFirst))
                       .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                            SimTime::zero() + msec(1), net, budget);
  EXPECT_GT(dfs.schedule.size(), bfs.schedule.size());
}

TEST(StrategyTest, BestFirstExpandsCheapestCandidateFirst) {
  // Two workers, one preloaded: the first expansion's successors have
  // different CE; best-first must take the cheaper one even after deeper
  // candidates appear.
  const auto batch = uniform_batch(4, 2, msec(200));
  const auto net = machine::Interconnect::cut_through(2, msec(0));
  const auto r = SearchEngine(with_strategy(SearchStrategy::kBestFirst))
                     .run(batch, {msec(10), SimDuration::zero()},
                          SimTime::zero() + msec(1), net, 1000000);
  ASSERT_FALSE(r.schedule.empty());
  // First committed assignment goes to the idle worker 1.
  EXPECT_EQ(r.schedule[0].worker, 1u);
}

TEST(StrategyTest, BestFirstSchedulesOnlyFeasibleWork) {
  // The feasibility invariant is strategy-independent.
  Xoshiro256ss rng(10);
  const std::uint32_t m = 4;
  const auto net = machine::Interconnect::cut_through(m, msec(3));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Task> batch;
    for (std::uint32_t i = 0; i < 30; ++i) {
      Task t;
      t.id = i;
      t.processing = rng.uniform_duration(usec(200), msec(4));
      t.deadline = SimTime::zero() + rng.uniform_duration(msec(3), msec(30));
      t.affinity.add(i % m);
      batch.push_back(t);
    }
    const SimTime delivery = SimTime::zero() + msec(2);
    const auto r = SearchEngine(with_strategy(SearchStrategy::kBestFirst))
                       .run(batch, std::vector<SimDuration>(m, SimDuration{}),
                            delivery, net, 3000);
    std::vector<SimTime> horizon(m, delivery);
    for (const Assignment& a : r.schedule) {
      const Task& t = batch[a.task_index];
      horizon[a.worker] += t.processing + net.comm_cost(t.affinity, a.worker);
      ASSERT_LE(horizon[a.worker], t.deadline);
    }
  }
}

TEST(StrategyTest, DeterministicUnderBothStrategies) {
  const auto batch = uniform_batch(12, 3, msec(100));
  const auto net = machine::Interconnect::cut_through(3, msec(1));
  for (SearchStrategy s :
       {SearchStrategy::kDepthFirst, SearchStrategy::kBestFirst}) {
    const SearchEngine engine(with_strategy(s));
    const auto a = engine.run(batch,
                              std::vector<SimDuration>(3, SimDuration{}),
                              SimTime::zero() + msec(1), net, 500);
    const auto b = engine.run(batch,
                              std::vector<SimDuration>(3, SimDuration{}),
                              SimTime::zero() + msec(1), net, 500);
    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (std::size_t i = 0; i < a.schedule.size(); ++i) {
      EXPECT_EQ(a.schedule[i].worker, b.schedule[i].worker);
      EXPECT_EQ(a.schedule[i].task_index, b.schedule[i].task_index);
    }
  }
}

}  // namespace
}  // namespace rtds::search
