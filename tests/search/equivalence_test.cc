// Golden equivalence suite for the search hot-path overhaul: the optimized
// SearchEngine must return a bit-identical SearchResult — every schedule
// field, every stat counter, every termination flag — to the frozen
// pre-optimization snapshot (search/reference_engine.h) on randomized
// scenarios covering all strategy / task-order / representation
// combinations, including budget-exhaustion and dead-end paths. Any drift
// in the fast path (bulk budget charging, bitset scans, O(1) pop, heap
// replacement, insertion sort) fails here rather than subtly moving a
// figure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "machine/interconnect.h"
#include "search/engine.h"
#include "search/reference_engine.h"

namespace rtds::search {
namespace {

using tasks::AffinitySet;
using tasks::ProcessorId;

struct Scenario {
  std::vector<Task> batch;
  std::vector<SimDuration> base_loads;
  SimTime delivery_time{SimTime::zero()};
  std::uint32_t num_workers{1};
  SimDuration comm{SimDuration::zero()};
  std::uint64_t vertex_budget{1};
};

/// Randomized phase input. Deliberately adversarial: mixed tight/hopeless
/// deadlines (dead ends and unplaceable skips), start-time constraints
/// (idle gaps), narrow affinities, uneven base loads, and budgets from
/// starved to generous (both exhaustion paths).
Scenario make_scenario(Xoshiro256ss& rng) {
  Scenario s;
  s.num_workers = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
  s.comm = usec(rng.uniform_int(0, 8000));
  s.delivery_time = SimTime::zero() + usec(rng.uniform_int(0, 20000));

  const auto n = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
  s.batch.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Task& t = s.batch[i];
    t.id = i;
    t.processing = usec(rng.uniform_int(100, 10000));
    // Deadline band straddles the feasible/hopeless boundary.
    t.deadline = SimTime::zero() + usec(rng.uniform_int(500, 90000));
    if (rng.bernoulli(0.3)) {
      t.earliest_start = SimTime::zero() + usec(rng.uniform_int(0, 40000));
    }
    if (rng.bernoulli(0.25)) {
      t.affinity = AffinitySet::all(s.num_workers);
    } else {
      const auto holders =
          static_cast<std::uint32_t>(rng.uniform_int(1, 3));
      for (std::uint32_t h = 0; h < holders; ++h) {
        t.affinity.add(static_cast<ProcessorId>(
            rng.uniform_int(0, s.num_workers - 1)));
      }
    }
    // Gang/moldable jobs: a quarter of the tasks on multi-worker machines
    // need a contiguous block of workers. Widths occasionally exceed the
    // machine (structurally unplaceable — both engines must agree on that
    // too).
    if (s.num_workers >= 2 && rng.bernoulli(0.25)) {
      t.workers_required = static_cast<std::uint32_t>(
          rng.uniform_int(2, s.num_workers + 1));
    }
  }

  s.base_loads.resize(s.num_workers);
  for (auto& load : s.base_loads) {
    load = rng.bernoulli(0.5) ? SimDuration::zero()
                              : usec(rng.uniform_int(0, 15000));
  }

  // Budgets: starved (exhaustion mid-expansion), moderate, and generous
  // (leaf or dead-end termination).
  switch (rng.uniform_int(0, 2)) {
    case 0:
      s.vertex_budget = std::uint64_t(rng.uniform_int(1, 25));
      break;
    case 1:
      s.vertex_budget = std::uint64_t(rng.uniform_int(25, 400));
      break;
    default:
      s.vertex_budget = std::uint64_t(rng.uniform_int(400, 20000));
      break;
  }
  return s;
}

std::string describe(const SearchConfig& c) {
  std::string out;
  out += c.representation == Representation::kAssignmentOriented ? "assign"
                                                                 : "seq";
  out += c.strategy == SearchStrategy::kDepthFirst ? "/dfs" : "/bfs";
  out += c.task_order == TaskOrder::kBatchOrder ? "/batch"
         : c.task_order == TaskOrder::kEarliestDeadline ? "/edf"
                                                        : "/slack";
  out += c.use_load_balance_cost ? "/ce" : "/nolb";
  return out;
}

void expect_identical(const SearchResult& fast, const SearchResult& ref,
                      const SearchConfig& cfg, std::uint64_t scenario) {
  const std::string where =
      describe(cfg) + " scenario " + std::to_string(scenario);
  ASSERT_EQ(fast.stats.vertices_generated, ref.stats.vertices_generated)
      << where;
  ASSERT_EQ(fast.stats.expansions, ref.stats.expansions) << where;
  ASSERT_EQ(fast.stats.backtracks, ref.stats.backtracks) << where;
  ASSERT_EQ(fast.stats.max_depth, ref.stats.max_depth) << where;
  ASSERT_EQ(fast.stats.reached_leaf, ref.stats.reached_leaf) << where;
  ASSERT_EQ(fast.stats.dead_end, ref.stats.dead_end) << where;
  ASSERT_EQ(fast.stats.budget_exhausted, ref.stats.budget_exhausted) << where;
  ASSERT_EQ(fast.schedule.size(), ref.schedule.size()) << where;
  for (std::size_t i = 0; i < fast.schedule.size(); ++i) {
    const Assignment& a = fast.schedule[i];
    const Assignment& b = ref.schedule[i];
    ASSERT_EQ(a.task_index, b.task_index) << where << " depth " << i;
    ASSERT_EQ(a.worker, b.worker) << where << " depth " << i;
    ASSERT_EQ(a.exec_cost, b.exec_cost) << where << " depth " << i;
    ASSERT_EQ(a.prev_ce, b.prev_ce) << where << " depth " << i;
    ASSERT_EQ(a.prev_max_ce, b.prev_max_ce) << where << " depth " << i;
    ASSERT_EQ(a.start_offset, b.start_offset) << where << " depth " << i;
    ASSERT_EQ(a.end_offset, b.end_offset) << where << " depth " << i;
  }
}

/// All strategy / order / representation combinations the engines accept,
/// with both cost-function settings and the pruning/ablation toggles that
/// change expansion control flow.
std::vector<SearchConfig> all_configs() {
  std::vector<SearchConfig> configs;
  for (const auto representation : {Representation::kAssignmentOriented,
                                    Representation::kSequenceOriented}) {
    for (const auto strategy :
         {SearchStrategy::kDepthFirst, SearchStrategy::kBestFirst}) {
      for (const auto order :
           {TaskOrder::kBatchOrder, TaskOrder::kEarliestDeadline,
            TaskOrder::kMinSlack}) {
        for (const bool lb : {true, false}) {
          SearchConfig c;
          c.representation = representation;
          c.strategy = strategy;
          c.task_order = order;
          c.use_load_balance_cost = lb;
          configs.push_back(c);
        }
      }
    }
  }
  // Control-flow variants: strict paper readings and pruning caps.
  SearchConfig strict;
  strict.skip_unplaceable_tasks = false;
  configs.push_back(strict);
  SearchConfig strict_seq;
  strict_seq.representation = Representation::kSequenceOriented;
  strict_seq.skip_saturated_processors = false;
  configs.push_back(strict_seq);
  SearchConfig least_loaded;
  least_loaded.representation = Representation::kSequenceOriented;
  least_loaded.level_processor_order = LevelProcessorOrder::kLeastLoaded;
  configs.push_back(least_loaded);
  SearchConfig pruned;
  pruned.max_successors = 3;
  pruned.max_depth = 8;
  configs.push_back(pruned);
  SearchConfig current_path;
  current_path.return_deepest = false;
  configs.push_back(current_path);
  for (const auto po : {ProcessorOrder::kIndexOrder, ProcessorOrder::kMinCommCost}) {
    SearchConfig c;
    c.use_load_balance_cost = false;
    c.processor_order = po;
    configs.push_back(c);
  }
  return configs;
}

TEST(SearchEquivalenceTest, BitIdenticalToReferenceAcrossFuzzScenarios) {
  // >= 200 scenarios x ~30 configs: every scenario is run under every
  // configuration through both engines.
  constexpr std::uint64_t kScenarios = 220;
  const std::vector<SearchConfig> configs = all_configs();
  Xoshiro256ss rng(0x5EA4C4E05ULL);
  std::uint64_t exhausted = 0, dead_ends = 0, leaves = 0;
  for (std::uint64_t sc = 0; sc < kScenarios; ++sc) {
    const Scenario s = make_scenario(rng);
    const auto net =
        machine::Interconnect::cut_through(s.num_workers, s.comm);
    for (const SearchConfig& cfg : configs) {
      const SearchResult fast = SearchEngine(cfg).run(
          s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
      const SearchResult ref = reference::run(
          cfg, s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
      expect_identical(fast, ref, cfg, sc);
      exhausted += fast.stats.budget_exhausted ? 1 : 0;
      dead_ends += fast.stats.dead_end ? 1 : 0;
      leaves += fast.stats.reached_leaf ? 1 : 0;
    }
  }
  // The sweep must actually exercise every termination path.
  EXPECT_GT(exhausted, 100u);
  EXPECT_GT(dead_ends, 100u);
  EXPECT_GT(leaves, 100u);
}

TEST(SearchEquivalenceTest, MeshRoutingStillIdentical) {
  // The store-and-forward model takes the slow comm path inside
  // evaluate_fast; verify it too matches the reference.
  Xoshiro256ss rng(0x3E5B);
  for (std::uint64_t sc = 0; sc < 40; ++sc) {
    const Scenario s = make_scenario(rng);
    const auto net = machine::Interconnect::mesh(s.num_workers, s.comm);
    for (const auto strategy :
         {SearchStrategy::kDepthFirst, SearchStrategy::kBestFirst}) {
      SearchConfig cfg;
      cfg.strategy = strategy;
      const SearchResult fast = SearchEngine(cfg).run(
          s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
      const SearchResult ref = reference::run(
          cfg, s.batch, s.base_loads, s.delivery_time, net, s.vertex_budget);
      expect_identical(fast, ref, cfg, sc);
    }
  }
}

TEST(SearchEquivalenceTest, EmptyBatchAndZeroBudgetMatch) {
  const auto net = machine::Interconnect::cut_through(2, msec(1));
  const SearchConfig cfg;
  const std::vector<Task> empty;
  std::vector<Task> one(1);
  one[0].processing = msec(1);
  one[0].deadline = SimTime::zero() + msec(10);
  one[0].affinity = AffinitySet::all(2);
  const std::vector<SimDuration> loads(2, SimDuration::zero());
  const std::vector<std::pair<const std::vector<Task>*, std::uint64_t>>
      cases{{&empty, 100}, {&one, 0}, {&one, 1}};
  for (const auto& [batch, budget] : cases) {
    const SearchResult fast =
        SearchEngine(cfg).run(*batch, loads, SimTime::zero(), net, budget);
    const SearchResult ref =
        reference::run(cfg, *batch, loads, SimTime::zero(), net, budget);
    expect_identical(fast, ref, cfg, 0);
  }
}

}  // namespace
}  // namespace rtds::search
