#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace rtds {
namespace {

TEST(HistogramTest, ValidatesConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(HistogramTest, CountsIntoCorrectBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0 (inclusive lower edge)
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  h.add(42.0);  // overflow
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[4], 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, QuantileEmptyThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(static_cast<void>(h.quantile(0.5)), InvalidArgument);
  h.add(0.5);
  EXPECT_THROW(static_cast<void>(h.quantile(1.5)), InvalidArgument);
}

TEST(HistogramTest, QuantileApproximatesUniform) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256ss rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, QuantileExtremesWithOutliers) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(-5.0);
  for (int i = 0; i < 10; ++i) h.add(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);   // underflow clamps to lo
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // overflow clamps to hi
}

TEST(HistogramTest, QuantileZeroWithoutUnderflowIsSmallestBucketEdge) {
  // q = 0 used to report lo even when no sample was anywhere near it; with
  // no underflow mass the minimum lives in the first NON-EMPTY bucket.
  Histogram h(0.0, 10.0, 10);
  h.add(7.3);
  h.add(7.9);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);  // symmetric: no overflow mass
  // Once underflow mass exists, q = 0 genuinely is below range.
  h.add(-1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(HistogramTest, QuantileSkipsEmptyInteriorBuckets) {
  // Mass in buckets 0 and 9 with an empty run between: interior quantiles
  // must interpolate within occupied buckets, never land in the gap.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) h.add(0.5);
  for (int i = 0; i < 50; ++i) h.add(9.5);
  EXPECT_LE(h.quantile(0.4), 1.0);
  EXPECT_GE(h.quantile(0.6), 9.0);
}

TEST(HistogramTest, QuantileAllMassOutOfRange) {
  Histogram h(0.0, 10.0, 4);
  for (int i = 0; i < 8; ++i) h.add(99.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);  // nothing recorded below hi
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  Histogram g(0.0, 10.0, 4);
  for (int i = 0; i < 8; ++i) g.add(-3.0);
  EXPECT_DOUBLE_EQ(g.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(g.quantile(1.0), 0.0);
}

TEST(HistogramTest, RenderShowsNonEmptyBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.7);
  h.add(3.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("[0, 1): 2"), std::string::npos);
  EXPECT_NE(out.find("[3, 4): 1"), std::string::npos);
  EXPECT_EQ(out.find("[1, 2)"), std::string::npos);  // empty bucket hidden
  EXPECT_NE(out.find("##"), std::string::npos);
}

}  // namespace
}  // namespace rtds
