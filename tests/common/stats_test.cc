#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace rtds {
namespace {

TEST(RunningStatsTest, EmptyBehaviour) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(static_cast<void>(s.mean()), InvalidArgument);
  EXPECT_THROW(static_cast<void>(s.min()), InvalidArgument);
  EXPECT_THROW(static_cast<void>(s.max()), InvalidArgument);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats joint, left, right;
  Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double(-10, 10);
    joint.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), joint.count());
  EXPECT_NEAR(left.mean(), joint.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), joint.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), joint.min());
  EXPECT_DOUBLE_EQ(left.max(), joint.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) == 1 - I_{1-x}(b, a)
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double lhs = regularized_incomplete_beta(2.5, 4.0, x);
    const double rhs = 1.0 - regularized_incomplete_beta(4.0, 2.5, 1.0 - x);
    EXPECT_NEAR(lhs, rhs, 1e-10);
  }
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBetaTest, HalfHalfIsArcsine) {
  // I_x(1/2, 1/2) = (2/pi) asin(sqrt(x)).
  for (double x : {0.1, 0.4, 0.9}) {
    const double expected = 2.0 / M_PI * std::asin(std::sqrt(x));
    EXPECT_NEAR(regularized_incomplete_beta(0.5, 0.5, x), expected, 1e-9);
  }
}

TEST(StudentTCriticalTest, MatchesTables) {
  // Classic two-tailed critical values.
  EXPECT_NEAR(student_t_critical(9, 0.05), 2.262, 0.002);
  EXPECT_NEAR(student_t_critical(9, 0.01), 3.250, 0.002);
  EXPECT_NEAR(student_t_critical(30, 0.05), 2.042, 0.002);
  // Large df approaches the normal quantile 1.96.
  EXPECT_NEAR(student_t_critical(100000, 0.05), 1.960, 0.005);
}

TEST(WelchTest, IdenticalSamplesNotSignificant) {
  RunningStats a, b;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    a.add(x);
    b.add(x);
  }
  const WelchResult r = welch_t_test(a, b);
  EXPECT_NEAR(r.t_statistic, 0.0, 1e-12);
  EXPECT_GT(r.p_value, 0.99);
  EXPECT_FALSE(r.significant(0.01));
}

TEST(WelchTest, ClearlySeparatedSamplesSignificant) {
  RunningStats a, b;
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10; ++i) {
    a.add(10.0 + rng.uniform_double(-0.5, 0.5));
    b.add(20.0 + rng.uniform_double(-0.5, 0.5));
  }
  const WelchResult r = welch_t_test(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_TRUE(r.significant(0.01));
  EXPECT_LT(r.t_statistic, 0.0);  // a.mean < b.mean
}

TEST(WelchTest, KnownTStatistic) {
  // Hand-computable case: a = {1,2,3}, b = {2,4,6}.
  RunningStats a, b;
  for (double x : {1.0, 2.0, 3.0}) a.add(x);
  for (double x : {2.0, 4.0, 6.0}) b.add(x);
  const WelchResult r = welch_t_test(a, b);
  // mean diff = -2, se = sqrt(1/3 + 4/3) = sqrt(5/3)
  EXPECT_NEAR(r.t_statistic, -2.0 / std::sqrt(5.0 / 3.0), 1e-9);
}

TEST(WelchTest, DegenerateConstantSamples) {
  RunningStats a, b;
  for (int i = 0; i < 5; ++i) {
    a.add(1.0);
    b.add(1.0);
  }
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).p_value, 1.0);
  RunningStats c;
  for (int i = 0; i < 5; ++i) c.add(2.0);
  EXPECT_DOUBLE_EQ(welch_t_test(a, c).p_value, 0.0);
}

TEST(WelchTest, RequiresTwoObservations) {
  RunningStats a, b;
  a.add(1.0);
  b.add(1.0);
  b.add(2.0);
  EXPECT_THROW(welch_t_test(a, b), InvalidArgument);
}

TEST(ConfidenceIntervalTest, ZeroForTinySamples) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(confidence_interval(s), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(confidence_interval(s), 0.0);
}

TEST(ConfidenceIntervalTest, MatchesManualComputation) {
  RunningStats s;
  for (double x : {10.0, 12.0, 14.0, 16.0, 18.0}) s.add(x);
  // sd = sqrt(10), n = 5, t(4, .01) ~ 4.604
  const double expected =
      student_t_critical(4, 0.01) * s.stddev() / std::sqrt(5.0);
  EXPECT_NEAR(confidence_interval(s, 0.99), expected, 1e-9);
  EXPECT_LT(confidence_interval(s, 0.95), confidence_interval(s, 0.99));
}

TEST(SummarizeTest, EmptyAndFilled) {
  EXPECT_EQ(summarize({}).n, 0u);
  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_GT(s.ci99, 0.0);
}

}  // namespace
}  // namespace rtds
