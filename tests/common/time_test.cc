#include "common/time.h"

#include <gtest/gtest.h>

namespace rtds {
namespace {

TEST(SimDurationTest, ArithmeticBasics) {
  const SimDuration a = msec(3);
  const SimDuration b = usec(500);
  EXPECT_EQ((a + b).us, 3500);
  EXPECT_EQ((a - b).us, 2500);
  EXPECT_EQ((a * 4).us, 12000);
  EXPECT_EQ(a / b, 6);
  EXPECT_EQ((a / 3).us, 1000);
  EXPECT_EQ((-a).us, -3000);
}

TEST(SimDurationTest, CompoundAssignment) {
  SimDuration d = usec(10);
  d += usec(5);
  EXPECT_EQ(d.us, 15);
  d -= usec(20);
  EXPECT_EQ(d.us, -5);
  EXPECT_TRUE(d.is_negative());
  EXPECT_FALSE(d.is_zero());
  EXPECT_TRUE(SimDuration::zero().is_zero());
}

TEST(SimDurationTest, Comparisons) {
  EXPECT_LT(usec(1), usec(2));
  EXPECT_LE(usec(2), usec(2));
  EXPECT_GT(msec(1), usec(999));
  EXPECT_EQ(sec(1), msec(1000));
}

TEST(SimDurationTest, UnitConversions) {
  EXPECT_EQ(sec(2).us, 2'000'000);
  EXPECT_EQ(msec(2).us, 2000);
  EXPECT_DOUBLE_EQ(msec(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(usec(2500).millis(), 2.5);
}

TEST(SimDurationTest, MinMaxClamp) {
  EXPECT_EQ(max_duration(usec(3), usec(7)), usec(7));
  EXPECT_EQ(min_duration(usec(3), usec(7)), usec(3));
  EXPECT_EQ(clamp_duration(usec(5), usec(1), usec(10)), usec(5));
  EXPECT_EQ(clamp_duration(usec(0), usec(1), usec(10)), usec(1));
  EXPECT_EQ(clamp_duration(usec(50), usec(1), usec(10)), usec(10));
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime t = SimTime::zero() + msec(5);
  EXPECT_EQ(t.us, 5000);
  EXPECT_EQ((t + usec(1)).us, 5001);
  EXPECT_EQ((t - usec(1)).us, 4999);
  EXPECT_EQ(t - SimTime::zero(), msec(5));
  SimTime u = t;
  u += msec(1);
  EXPECT_EQ(u.us, 6000);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::zero(), SimTime{1});
  EXPECT_EQ(SimTime{5}, SimTime::zero() + usec(5));
  EXPECT_LT(SimTime{5}, SimTime::max());
}

TEST(TimeToStringTest, Formats) {
  EXPECT_EQ(to_string(usec(12)), "12us");
  EXPECT_EQ(to_string(SimTime{7}), "t+7us");
}

}  // namespace
}  // namespace rtds
