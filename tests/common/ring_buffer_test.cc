#include "common/ring_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/error.h"

namespace rtds {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_EQ(rb.pop(), std::nullopt);
  EXPECT_THROW(static_cast<void>(rb.front()), InvalidArgument);
}

TEST(RingBufferTest, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), InvalidArgument);
}

TEST(RingBufferTest, FifoOrder) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(4));
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, WrapsAround) {
  RingBuffer<int> rb(2);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(rb.push(round));
    EXPECT_TRUE(rb.push(round + 100));
    EXPECT_EQ(rb.pop(), round);
    EXPECT_EQ(rb.pop(), round + 100);
  }
}

TEST(RingBufferTest, SizeTracksContents) {
  RingBuffer<int> rb(5);
  for (int i = 0; i < 4; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 4u);
  rb.pop();
  rb.pop();
  EXPECT_EQ(rb.size(), 2u);
  rb.push(9);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<std::string> rb(2);
  rb.push("a");
  rb.push("b");
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.push("c"));
  EXPECT_EQ(rb.pop(), "c");
}

TEST(RingBufferTest, ClearReleasesOwnedElements) {
  // clear() must value-reset the occupied slots, not just move the indices:
  // otherwise a cleared mailbox silently keeps its elements (and whatever
  // they own) alive until the slot happens to be overwritten.
  auto tracked = std::make_shared<int>(7);
  RingBuffer<std::shared_ptr<int>> rb(4);
  rb.push(tracked);
  rb.push(tracked);
  EXPECT_EQ(tracked.use_count(), 3);
  rb.clear();
  EXPECT_EQ(tracked.use_count(), 1);
  // A full buffer (head == tail only when empty thanks to the spare slot)
  // clears completely too.
  for (int i = 0; i < 4; ++i) rb.push(tracked);
  EXPECT_TRUE(rb.full());
  rb.clear();
  EXPECT_EQ(tracked.use_count(), 1);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, MoveOnlyFriendly) {
  RingBuffer<std::unique_ptr<int>> rb(2);
  EXPECT_TRUE(rb.push(std::make_unique<int>(7)));
  auto out = rb.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

}  // namespace
}  // namespace rtds
