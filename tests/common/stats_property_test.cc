// Statistical property tests: confidence-interval coverage and Welch test
// error rates, checked by simulation against known distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace rtds {
namespace {

TEST(CoverageTest, ConfidenceIntervalCoversTrueMean) {
  // Draw many samples of n=10 from a normal-ish distribution (sum of
  // uniforms) with known mean; the 99% CI must cover the mean ~99% of the
  // time (allow 97.5%..100% over 2000 trials).
  Xoshiro256ss rng(42);
  const double true_mean = 6.0;  // sum of 12 U(0,1) has mean 6, var 1
  int covered = 0;
  const int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    RunningStats s;
    for (int i = 0; i < 10; ++i) {
      double x = 0;
      for (int k = 0; k < 12; ++k) x += rng.uniform_double();
      s.add(x);
    }
    const double half = confidence_interval(s, 0.99);
    if (std::fabs(s.mean() - true_mean) <= half) ++covered;
  }
  const double coverage = double(covered) / kTrials;
  EXPECT_GE(coverage, 0.975);
}

TEST(CoverageTest, NinetyFiveNarrowerThanNinetyNine) {
  Xoshiro256ss rng(7);
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(rng.uniform_double(0, 10));
  EXPECT_LT(confidence_interval(s, 0.95), confidence_interval(s, 0.99));
}

TEST(WelchErrorRateTest, FalsePositiveRateNearAlpha) {
  // Same distribution on both sides: the 0.01-level test should reject
  // about 1% of the time (allow <= 2.5% over 2000 trials).
  Xoshiro256ss rng(11);
  int rejections = 0;
  const int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    RunningStats a, b;
    for (int i = 0; i < 10; ++i) {
      a.add(rng.uniform_double(0, 1));
      b.add(rng.uniform_double(0, 1));
    }
    if (welch_t_test(a, b).significant(0.01)) ++rejections;
  }
  EXPECT_LE(double(rejections) / kTrials, 0.025);
}

TEST(WelchErrorRateTest, PowerAgainstRealDifference) {
  // Means 0.5 vs 0.65 with sd ~0.29 and n=10 per side: the test should
  // detect the difference often (not a sharp bound; just non-trivial
  // power).
  Xoshiro256ss rng(13);
  int rejections = 0;
  const int kTrials = 500;
  for (int trial = 0; trial < kTrials; ++trial) {
    RunningStats a, b;
    for (int i = 0; i < 10; ++i) {
      a.add(rng.uniform_double(0.0, 1.0));
      b.add(rng.uniform_double(0.3, 1.3));  // +0.3 shift ~ 1 sd
    }
    if (welch_t_test(a, b).significant(0.01)) ++rejections;
  }
  EXPECT_GE(double(rejections) / kTrials, 0.2);
}

TEST(RunningStatsPropertyTest, MergeAssociativity) {
  Xoshiro256ss rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    RunningStats a, b, c, left, right;
    for (int i = 0; i < 30; ++i) {
      const double x = rng.uniform_double(-5, 5);
      const int which = int(rng.uniform_int(0, 2));
      (which == 0 ? a : which == 1 ? b : c).add(x);
    }
    // (a + b) + c
    left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    RunningStats bc = b;
    bc.merge(c);
    right = a;
    right.merge(bc);
    ASSERT_EQ(left.count(), right.count());
    if (left.count() > 0) {
      ASSERT_NEAR(left.mean(), right.mean(), 1e-9);
      ASSERT_NEAR(left.variance(), right.variance(), 1e-9);
    }
  }
}

}  // namespace
}  // namespace rtds
