#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"

namespace rtds {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256ssTest, Deterministic) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256ssTest, UniformIntStaysInRange) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Xoshiro256ssTest, UniformIntSingletonRange) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Xoshiro256ssTest, UniformIntCoversRange) {
  Xoshiro256ss rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro256ssTest, UniformIntRejectsBadRange) {
  Xoshiro256ss rng(3);
  EXPECT_THROW(rng.uniform_int(5, 4), InvalidArgument);
}

TEST(Xoshiro256ssTest, UniformIntIsRoughlyUniform) {
  Xoshiro256ss rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.uniform_int(0, kBuckets - 1)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Xoshiro256ssTest, UniformDoubleInUnitInterval) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256ssTest, UniformDoubleRange) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_double(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Xoshiro256ssTest, BernoulliEdges) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), InvalidArgument);
  EXPECT_THROW(rng.bernoulli(-0.1), InvalidArgument);
}

TEST(Xoshiro256ssTest, BernoulliMatchesProbability) {
  Xoshiro256ss rng(17);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(double(hits) / kDraws, 0.3, 0.01);
}

TEST(Xoshiro256ssTest, ExponentialMeanMatches) {
  Xoshiro256ss rng(23);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 4.0, 0.05);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(Xoshiro256ssTest, UniformDurationBounds) {
  Xoshiro256ss rng(31);
  for (int i = 0; i < 1000; ++i) {
    const SimDuration d = rng.uniform_duration(usec(10), usec(20));
    EXPECT_GE(d, usec(10));
    EXPECT_LE(d, usec(20));
  }
}

TEST(Xoshiro256ssTest, SampleIndicesDistinctAndBounded) {
  Xoshiro256ss rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_indices(20, 7);
    EXPECT_EQ(sample.size(), 7u);
    std::set<std::size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
  EXPECT_THROW(rng.sample_indices(3, 4), InvalidArgument);
}

TEST(Xoshiro256ssTest, SampleAllIndicesIsPermutation) {
  Xoshiro256ss rng(43);
  auto sample = rng.sample_indices(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Xoshiro256ssTest, ShuffleIsPermutation) {
  Xoshiro256ss rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Xoshiro256ssTest, PickReturnsMember) {
  Xoshiro256ss rng(53);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), InvalidArgument);
}

TEST(DeriveSeedTest, DistinctPerRunAndStable) {
  const auto s0 = derive_seed(100, 0);
  const auto s1 = derive_seed(100, 1);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(s0, derive_seed(100, 0));
  EXPECT_NE(derive_seed(100, 0), derive_seed(101, 0));
}

TEST(DeriveSeedTest, StreamZeroPreservesHistoricSeeds) {
  // The named-substream overload with stream 0 must collapse to the
  // two-argument form: exp::run_repeated relies on this so the pinned
  // figure numbers (tests/exp/fig5_golden_test.cc) never shift.
  for (std::uint64_t base : {1ULL, 100ULL, 0x5ADC0FFEE1998ULL}) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      EXPECT_EQ(derive_seed(base, 0, i), derive_seed(base, i));
    }
  }
}

TEST(DeriveSeedTest, NamedStreamsAreIndependent) {
  constexpr std::uint64_t kA = stream_id("fuzz.workload");
  constexpr std::uint64_t kB = stream_id("fuzz.scenario");
  static_assert(kA != kB, "distinct names must hash apart");
  static_assert(stream_id("x") == stream_id("x"));
  const std::uint64_t base = 0xBA5E;
  // Different streams off the same base diverge...
  EXPECT_NE(derive_seed(base, kA, 0), derive_seed(base, kB, 0));
  // ...and differ from the unstreamed sequence.
  EXPECT_NE(derive_seed(base, kA, 0), derive_seed(base, 0));
  EXPECT_NE(derive_seed(base, kA, 3), derive_seed(base, 3));
  // Deterministic, distinct per index, and base-sensitive.
  EXPECT_EQ(derive_seed(base, kA, 5), derive_seed(base, kA, 5));
  EXPECT_NE(derive_seed(base, kA, 5), derive_seed(base, kA, 6));
  EXPECT_NE(derive_seed(base, kA, 5), derive_seed(base + 1, kA, 5));
}

}  // namespace
}  // namespace rtds
