#include "runtime/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.h"

namespace rtds::runtime {
namespace {

TEST(BoundedQueueTest, BasicPushPop) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_THROW(BoundedQueue<int>(0), InvalidArgument);
}

TEST(BoundedQueueTest, CloseDrainsThenSignals) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);           // drain remaining
  EXPECT_EQ(q.pop(), std::nullopt);  // then closed
}

TEST(BoundedQueueTest, TryPushRefusesWhenFullWithoutBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: refuse immediately, never block
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));  // capacity freed
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueueTest, TryPushRefusesWhenClosed) {
  BoundedQueue<int> q(2);
  q.close();
  EXPECT_FALSE(q.try_push(1));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(2);
  std::atomic<int> got{0};
  std::thread consumer([&] {
    const auto v = q.pop();
    got = v.value_or(-1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0);
  q.push(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(BoundedQueueTest, PushBlocksWhenFullUntilPop) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedPopper) {
  BoundedQueue<int> q(2);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_EQ(q.pop(), std::nullopt);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(BoundedQueueTest, MpscStressDeliversEverythingOnce) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  std::thread consumer([&] {
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
      const auto v = q.pop();
      ASSERT_TRUE(v.has_value());
      ASSERT_FALSE(seen[std::size_t(*v)]);
      seen[std::size_t(*v)] = true;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace rtds::runtime
