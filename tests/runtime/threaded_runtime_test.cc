// Integration tests of the live threaded runtime. Wall-clock timing is
// inherently noisy, so deadlines here carry generous margins; the strong
// assertions are bookkeeping invariants, not exact latencies.
#include "runtime/threaded_runtime.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sched/presets.h"
#include "sched/quantum.h"
#include "tasks/workload.h"

namespace rtds::runtime {
namespace {

RuntimeConfig fast_config(std::uint32_t workers) {
  RuntimeConfig cfg;
  cfg.num_workers = workers;
  cfg.comm_cost = msec(1);
  cfg.vertex_cost = usec(10);
  cfg.time_scale = 1.0;
  return cfg;
}

TEST(ThreadedRuntimeTest, EmptyWorkload) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(5));
  const RuntimeReport r =
      run_threaded(*algo, *q, fast_config(2), {});
  EXPECT_EQ(r.total_tasks, 0u);
  EXPECT_DOUBLE_EQ(r.hit_ratio(), 1.0);
}

TEST(ThreadedRuntimeTest, ValidatesConfig) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(5));
  RuntimeConfig cfg = fast_config(0);
  EXPECT_THROW(run_threaded(*algo, *q, cfg, {}), InvalidArgument);
  cfg = fast_config(2);
  cfg.time_scale = 0.0;
  EXPECT_THROW(run_threaded(*algo, *q, cfg, {}), InvalidArgument);
}

TEST(ThreadedRuntimeTest, RejectsUnsortedWorkload) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(5));
  std::vector<tasks::Task> wl(2);
  wl[0].id = 0;
  wl[0].arrival = SimTime{1000};
  wl[0].processing = msec(1);
  wl[0].deadline = SimTime{500000};
  wl[0].affinity.add(0);
  wl[1] = wl[0];
  wl[1].id = 1;
  wl[1].arrival = SimTime{0};
  EXPECT_THROW(run_threaded(*algo, *q, fast_config(2), wl),
               InvalidArgument);
}

TEST(ThreadedRuntimeTest, BooksBalanceOnBurstyWorkload) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 60;
  wc.num_processors = 4;
  wc.processing_min = usec(200);
  wc.processing_max = msec(2);
  wc.affinity_degree = 0.5;
  wc.laxity_min = 30.0;  // generous: wall clock jitter tolerated
  wc.laxity_max = 60.0;
  Xoshiro256ss rng(3);
  const auto wl = tasks::generate_workload(wc, rng);
  const RuntimeReport r = run_threaded(*algo, *q, fast_config(4), wl);
  EXPECT_EQ(r.total_tasks, 60u);
  EXPECT_EQ(r.deadline_hits + r.exec_misses, r.scheduled);
  EXPECT_LE(r.scheduled + r.culled, r.total_tasks);
  EXPECT_GT(r.phases, 0u);
  EXPECT_GT(r.vertices_generated, 0u);
  // With 30-60x laxity virtually everything schedulable should be on time.
  EXPECT_GT(r.hit_ratio(), 0.8);
}

TEST(ThreadedRuntimeTest, GangWorkloadBooksBalanceLive) {
  // Gangs hold k mailboxes at once: the all-or-nothing reservation must
  // neither deadlock the host nor lose a task, and with generous laxity
  // the terminal books balance exactly like the singleton case.
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 40;
  wc.num_processors = 4;
  wc.processing_min = usec(200);
  wc.processing_max = msec(2);
  wc.affinity_degree = 1.0;
  wc.laxity_min = 30.0;
  wc.laxity_max = 60.0;
  wc.gang_fraction = 0.5;
  wc.gang_max_workers = 3;
  Xoshiro256ss rng(11);
  const auto wl = tasks::generate_workload(wc, rng);
  bool any_gang = false;
  for (const auto& t : wl) any_gang = any_gang || t.workers_required > 1;
  ASSERT_TRUE(any_gang);
  const RuntimeReport r = run_threaded(*algo, *q, fast_config(4), wl);
  EXPECT_EQ(r.total_tasks, 40u);
  EXPECT_EQ(r.deadline_hits + r.exec_misses, r.scheduled);
  EXPECT_LE(r.scheduled + r.culled, r.total_tasks);
  EXPECT_GT(r.hit_ratio(), 0.8);
}

TEST(ThreadedRuntimeTest, PoissonArrivalsDrainCompletely) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 40;
  wc.num_processors = 3;
  wc.arrival = tasks::ArrivalPattern::kPoisson;
  wc.mean_interarrival = usec(400);
  wc.processing_min = usec(100);
  wc.processing_max = msec(1);
  wc.affinity_degree = 0.6;
  wc.laxity_min = 50.0;
  wc.laxity_max = 100.0;
  Xoshiro256ss rng(4);
  const auto wl = tasks::generate_workload(wc, rng);
  const RuntimeReport r = run_threaded(*algo, *q, fast_config(3), wl);
  EXPECT_EQ(r.scheduled + r.culled, r.total_tasks);
  EXPECT_GT(r.finish_time, SimTime::zero());
}

TEST(ThreadedRuntimeTest, DColsAlsoRunsLive) {
  const auto algo = sched::make_d_cols();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 30;
  wc.num_processors = 2;
  wc.processing_min = usec(200);
  wc.processing_max = msec(1);
  wc.laxity_min = 40.0;
  wc.laxity_max = 80.0;
  Xoshiro256ss rng(5);
  const auto wl = tasks::generate_workload(wc, rng);
  const RuntimeReport r = run_threaded(*algo, *q, fast_config(2), wl);
  EXPECT_EQ(r.deadline_hits + r.exec_misses, r.scheduled);
  EXPECT_GT(r.scheduled, 0u);
}

TEST(ThreadedRuntimeTest, TimeScaleShrinksWallTime) {
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  tasks::WorkloadConfig wc;
  wc.num_tasks = 20;
  wc.num_processors = 2;
  wc.processing_min = msec(2);
  wc.processing_max = msec(4);
  wc.laxity_min = 50.0;
  wc.laxity_max = 50.0;
  Xoshiro256ss rng(6);
  const auto wl = tasks::generate_workload(wc, rng);
  RuntimeConfig cfg = fast_config(2);
  cfg.time_scale = 0.25;  // execute at 4x speed
  const RuntimeReport r = run_threaded(*algo, *q, cfg, wl);
  EXPECT_EQ(r.scheduled + r.culled, r.total_tasks);
  // 20 tasks * <=4ms at scale 0.25 over 2 workers: well under a second.
  EXPECT_LT(r.finish_time - SimTime::zero(), sec(2));
}

TEST(ThreadedRuntimeTest, MailboxOverflowIsRecoveredNotLost) {
  // One worker with a single-slot mailbox and a burst of 16 tasks: the
  // host must NOT block behind the full mailbox — refused deliveries are
  // counted and readmitted, and with two-minute deadlines every task is
  // eventually executed (or, if its delivery budget runs out, explicitly
  // rejected). No task may simply vanish.
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  std::vector<tasks::Task> wl;
  for (std::uint32_t i = 0; i < 16; ++i) {
    tasks::Task t;
    t.id = i;
    t.arrival = SimTime::zero();
    t.processing = msec(5);
    t.deadline = SimTime::zero() + sec(120);
    t.affinity.add(0);
    wl.push_back(t);
  }
  RuntimeConfig cfg = fast_config(1);
  cfg.mailbox_capacity = 1;
  cfg.max_delivery_attempts = 0;  // readmit until delivered or culled
  const RuntimeReport r = run_threaded(*algo, *q, cfg, wl);
  EXPECT_GT(r.overflow_drops, 0u);
  EXPECT_GT(r.readmissions, 0u);
  EXPECT_EQ(r.deadline_hits + r.exec_misses, r.scheduled);
  // Conservation: every offered task reached a terminal state.
  EXPECT_EQ(r.deadline_hits + r.exec_misses + r.culled + r.rejected,
            r.total_tasks);
  EXPECT_EQ(r.rejected, 0u);  // unbounded attempts: nothing force-retired
  EXPECT_EQ(r.scheduled + r.culled, r.total_tasks);
}

TEST(ThreadedRuntimeTest, ExhaustedDeliveryBudgetRejectsExplicitly) {
  // With readmission disabled (budget of one attempt), a refused delivery
  // is retired as an explicit rejection — still never a silent loss.
  const auto algo = sched::make_rt_sads();
  const auto q = sched::make_self_adjusting_quantum(usec(200), msec(10));
  std::vector<tasks::Task> wl;
  for (std::uint32_t i = 0; i < 12; ++i) {
    tasks::Task t;
    t.id = i;
    t.arrival = SimTime::zero();
    t.processing = msec(5);
    t.deadline = SimTime::zero() + sec(120);
    t.affinity.add(0);
    wl.push_back(t);
  }
  RuntimeConfig cfg = fast_config(1);
  cfg.mailbox_capacity = 1;
  cfg.max_delivery_attempts = 1;  // no readmission
  cfg.delivery_retries = 0;       // and no in-backend backoff either
  const RuntimeReport r = run_threaded(*algo, *q, cfg, wl);
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.readmissions, 0u);
  EXPECT_EQ(r.overflow_drops, r.rejected);  // one refusal retires a task
  EXPECT_EQ(r.deadline_hits + r.exec_misses + r.culled + r.rejected,
            r.total_tasks);
}

}  // namespace
}  // namespace rtds::runtime
