// Search hot-path throughput: optimized SearchEngine vs the frozen
// pre-optimization snapshot (search/reference_engine.h), on the paper's
// workload shapes.
//
//   bench_search_throughput [--quick] [--reps N] [--iters N] [--out PATH]
//                           [--capacity-max N]
//
// Sweeps (n, m, strategy, task order, representation) cells; each cell runs
// both engines on identical phase inputs, checks the results are
// bit-identical (the equivalence suite's guarantee, re-asserted here so a
// perf number can never come from a divergent search), and reports
// vertices/sec, ns/vertex, expansions/sec and p50/p99 per-phase search
// latency. A second sweep scales the parallel sharded engine over
// K ∈ {1, 2, 4, 8, 16} worker threads on the acceptance cells, verifying
// bit-identity against the sequential engine and reporting both useful
// (budgeted) and speculative vertices/sec with parallel efficiency —
// interpret the scaling against `hardware_concurrency` in the JSON: on a
// single-core host every K shares one core and the table shows overhead,
// not speedup. A third sweep is the CAPACITY table: generous-deadline
// batches at n ∈ {10^5, 10^6} (gated by --capacity-max; 0 skips, the
// --quick default) walked to a full-depth leaf through the wide node
// header, reporting vertices/sec plus the memory columns — process peak
// RSS, the engine's pooled arena/workspace bytes, and the parallel shards'
// arena bytes. n = 10^5 is still verified bit-identical against the
// reference engine; n = 10^6 (where the reference's per-vertex node heap
// is the bottleneck) is checked against a from-scratch schedule-invariant
// oracle and against the parallel engine's replay instead. Writes the
// machine-readable trajectory to BENCH_SEARCH.json so future PRs can diff
// throughput against this one.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "machine/interconnect.h"
#include "search/engine.h"
#include "search/parallel_engine.h"
#include "search/reference_engine.h"
#include "tasks/workload.h"

namespace {

using namespace rtds;
using search::Representation;
using search::SearchConfig;
using search::SearchResult;
using search::SearchStrategy;
using search::TaskOrder;

struct Cell {
  std::string name;
  std::uint32_t n;
  std::uint32_t m;
  SearchConfig config;
  bool quick;  ///< part of the --quick sweep
};

struct EngineNumbers {
  double vertices_per_sec{0};
  double ns_per_vertex{0};
  double expansions_per_sec{0};
  std::uint64_t p50_ns{0};
  std::uint64_t p99_ns{0};
  std::uint64_t vertices{0};
};

std::vector<Cell> make_cells() {
  const auto cell = [](std::string name, std::uint32_t n, std::uint32_t m,
                       bool quick, auto mutate) {
    Cell c;
    c.name = std::move(name);
    c.n = n;
    c.m = m;
    c.quick = quick;
    // RT-SADS defaults: assignment-oriented, depth-first, EDF, CE cost.
    mutate(c.config);
    return c;
  };
  const auto nop = [](SearchConfig&) {};
  std::vector<Cell> cells;
  // The acceptance cell: FIG5 machine (m=10), n=1000, depth-first
  // assignment-oriented RT-SADS configuration.
  cells.push_back(cell("fig5_m10_n1000_dfs_assign", 1000, 10, true, nop));
  cells.push_back(cell("n100_m2_dfs_assign", 100, 2, false, nop));
  cells.push_back(cell("n100_m10_dfs_assign", 100, 10, true, nop));
  cells.push_back(cell("n1000_m19_dfs_assign", 1000, 19, false, nop));
  cells.push_back(cell("n1000_m10_bestfirst_assign", 1000, 10, false,
                       [](SearchConfig& c) {
                         c.strategy = SearchStrategy::kBestFirst;
                       }));
  cells.push_back(cell("n1000_m10_dfs_batchorder", 1000, 10, false,
                       [](SearchConfig& c) {
                         c.task_order = TaskOrder::kBatchOrder;
                       }));
  cells.push_back(cell("n1000_m10_dfs_minslack", 1000, 10, false,
                       [](SearchConfig& c) {
                         c.task_order = TaskOrder::kMinSlack;
                       }));
  // D-COLS shape: sequence-oriented round-robin.
  cells.push_back(cell("n1000_m10_dfs_seq", 1000, 10, true,
                       [](SearchConfig& c) {
                         c.representation = Representation::kSequenceOriented;
                       }));
  return cells;
}

/// One phase input matching the paper's workload shape: bursty arrivals,
/// p in [1, 10]ms, degree of affinity R = 0.3, SF = 1 (laxity 10), C = 5ms
/// (the FIG5/ExperimentConfig defaults), generous delivery at +5ms.
struct PhaseInput {
  std::vector<tasks::Task> batch;
  std::vector<SimDuration> base_loads;
  SimTime delivery{SimTime::zero()};
  std::uint64_t budget{0};
};

PhaseInput make_input(const Cell& cell, std::uint64_t rep) {
  tasks::WorkloadConfig wc;
  wc.num_tasks = cell.n;
  wc.num_processors = cell.m;
  wc.affinity_degree = 0.3;
  Xoshiro256ss rng(bench::bench_seed("search_throughput", rep));
  PhaseInput in;
  in.batch = tasks::generate_workload(wc, rng);
  in.base_loads.assign(cell.m, SimDuration::zero());
  in.delivery = SimTime::zero() + msec(5);
  in.budget = std::uint64_t{200} * cell.n;  // 200k vertices at n=1000
  return in;
}

void require_identical(const SearchResult& a, const SearchResult& b,
                       const std::string& where) {
  const bool same =
      a.stats.vertices_generated == b.stats.vertices_generated &&
      a.stats.expansions == b.stats.expansions &&
      a.stats.backtracks == b.stats.backtracks &&
      a.stats.max_depth == b.stats.max_depth &&
      a.stats.reached_leaf == b.stats.reached_leaf &&
      a.stats.dead_end == b.stats.dead_end &&
      a.stats.budget_exhausted == b.stats.budget_exhausted &&
      a.schedule.size() == b.schedule.size();
  if (!same) {
    std::cerr << "FATAL: engines diverged on " << where << "\n";
    std::exit(1);
  }
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    const search::Assignment& x = a.schedule[i];
    const search::Assignment& y = b.schedule[i];
    if (x.task_index != y.task_index || x.worker != y.worker ||
        x.exec_cost != y.exec_cost || x.prev_ce != y.prev_ce ||
        x.prev_max_ce != y.prev_max_ce || x.start_offset != y.start_offset ||
        x.end_offset != y.end_offset) {
      std::cerr << "FATAL: schedules diverged on " << where << " depth " << i
                << "\n";
      std::exit(1);
    }
  }
}

std::uint64_t percentile(std::vector<std::uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

template <typename Run>
EngineNumbers measure(const std::vector<PhaseInput>& inputs,
                      const machine::Interconnect& net, std::uint32_t iters,
                      Run run) {
  // Warmup: populate thread-local workspaces / page in the arena.
  (void)run(inputs[0], net);

  EngineNumbers out;
  std::vector<std::uint64_t> latencies;
  std::uint64_t total_ns = 0, total_vertices = 0, total_expansions = 0;
  for (const PhaseInput& in : inputs) {
    for (std::uint32_t it = 0; it < iters; ++it) {
      const auto t0 = std::chrono::steady_clock::now();
      const SearchResult r = run(in, net);
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      latencies.push_back(ns);
      total_ns += ns;
      total_vertices += r.stats.vertices_generated;
      total_expansions += r.stats.expansions;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const double secs = double(total_ns) * 1e-9;
  out.vertices_per_sec = secs > 0 ? double(total_vertices) / secs : 0;
  out.ns_per_vertex =
      total_vertices > 0 ? double(total_ns) / double(total_vertices) : 0;
  out.expansions_per_sec = secs > 0 ? double(total_expansions) / secs : 0;
  out.p50_ns = percentile(latencies, 0.50);
  out.p99_ns = percentile(latencies, 0.99);
  out.vertices = total_vertices;
  return out;
}

/// Process peak RSS (Linux ru_maxrss is KiB) — the capacity memory column.
std::uint64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

/// Generous-deadline capacity input: every task feasible on every affinity
/// holder even if one worker absorbed the whole batch, so depth-first
/// search walks to a full-depth leaf — the shape that exercises the wide
/// node header and the arena at n >= 10^5 with a predictable vertex count
/// of ~n*m (mirrors tests/search/capacity_test.cc).
PhaseInput make_capacity_input(std::uint32_t n, std::uint32_t m,
                               std::uint64_t rep) {
  Xoshiro256ss rng(bench::bench_seed("search_capacity", rep));
  PhaseInput in;
  in.delivery = SimTime::zero() + msec(5);
  const std::int64_t horizon_us = std::int64_t{n} * 1500 + 1'000'000;
  in.batch.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    tasks::Task& t = in.batch[i];
    t.id = i;
    t.processing = usec(rng.uniform_int(100, 1000));
    t.deadline = in.delivery + usec(horizon_us);
    if (rng.bernoulli(0.7)) {
      t.affinity = tasks::AffinitySet::all(m);
    } else {
      const auto holders = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
      for (std::uint32_t h = 0; h < holders; ++h) {
        t.affinity.add(
            static_cast<tasks::ProcessorId>(rng.uniform_int(0, m - 1)));
      }
    }
  }
  in.base_loads.assign(m, SimDuration::zero());
  in.budget = std::uint64_t{n} * m + 1000;
  return in;
}

/// From-scratch schedule-invariant oracle for capacity runs too large to
/// replay through the reference engine: re-derives every Assignment field
/// (undo values, start/end offsets, comm pricing, deadlines, single
/// assignment per task) from the batch alone. Any divergence is fatal.
void check_capacity_invariants(const SearchResult& r, const PhaseInput& in,
                               std::uint32_t m, SimDuration comm,
                               const std::string& where) {
  const auto die = [&](const char* what, std::size_t depth) {
    std::cerr << "FATAL: capacity invariant '" << what << "' failed on "
              << where << " depth " << depth << "\n";
    std::exit(1);
  };
  if (!r.stats.reached_leaf || r.schedule.size() != in.batch.size()) {
    die("reached_leaf with full schedule", r.schedule.size());
  }
  std::vector<std::int64_t> ce(m, 0);
  std::vector<char> seen(in.batch.size(), 0);
  std::int64_t max_ce = 0;
  for (std::size_t i = 0; i < r.schedule.size(); ++i) {
    const search::Assignment& a = r.schedule[i];
    if (a.task_index >= in.batch.size() || a.worker >= m) die("bounds", i);
    if (seen[a.task_index] != 0) die("task assigned once", i);
    seen[a.task_index] = 1;
    const tasks::Task& t = in.batch[a.task_index];
    const std::int64_t want_comm =
        t.affinity.contains(a.worker) ? 0 : comm.us;
    if (a.exec_cost.us != t.processing.us + want_comm) die("exec_cost", i);
    if (a.prev_ce.us != ce[a.worker]) die("prev_ce undo value", i);
    if (a.prev_max_ce.us != max_ce) die("prev_max_ce undo value", i);
    const std::int64_t es =
        std::max<std::int64_t>(0, (t.earliest_start - in.delivery).us);
    const std::int64_t start = std::max(ce[a.worker], es);
    if (a.start_offset.us != start) die("start_offset", i);
    if (a.end_offset.us != start + a.exec_cost.us) die("end_offset", i);
    if (a.end_offset.us > (t.deadline - in.delivery).us) die("deadline", i);
    ce[a.worker] = a.end_offset.us;
    max_ce = std::max(max_ce, ce[a.worker]);
  }
}

const char* strategy_name(const SearchConfig& c) {
  return c.strategy == SearchStrategy::kDepthFirst ? "depth_first"
                                                   : "best_first";
}
const char* order_name(const SearchConfig& c) {
  switch (c.task_order) {
    case TaskOrder::kBatchOrder: return "batch";
    case TaskOrder::kEarliestDeadline: return "edf";
    case TaskOrder::kMinSlack: return "min_slack";
  }
  return "?";
}
const char* repr_name(const SearchConfig& c) {
  return c.representation == Representation::kAssignmentOriented
             ? "assignment"
             : "sequence";
}

void json_engine(std::ostream& os, const char* key, const EngineNumbers& e) {
  os << "    \"" << key << "\": {"
     << "\"vertices_per_sec\": " << std::uint64_t(e.vertices_per_sec) << ", "
     << "\"ns_per_vertex\": " << e.ns_per_vertex << ", "
     << "\"expansions_per_sec\": " << std::uint64_t(e.expansions_per_sec)
     << ", \"p50_ns\": " << e.p50_ns << ", \"p99_ns\": " << e.p99_ns << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint32_t reps = 5;
  std::uint32_t iters = 4;
  std::string out_path = "BENCH_SEARCH.json";
  // Largest capacity-sweep n to run (cells above it are skipped). Default:
  // the full 10^6 sweep; --quick skips capacity entirely unless the flag
  // names a ceiling explicitly (CI release-fast runs --quick
  // --capacity-max 100000).
  std::uint64_t capacity_max = 0;
  bool capacity_max_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--reps" && i + 1 < argc) {
      reps = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (a == "--iters" && i + 1 < argc) {
      iters = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
    } else if (a == "--capacity-max" && i + 1 < argc) {
      capacity_max = std::strtoull(argv[++i], nullptr, 0);
      capacity_max_set = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_search_throughput [--quick] [--reps N] "
                   "[--iters N] [--out PATH] [--capacity-max N]\n";
      return 2;
    }
  }
  if (quick) {
    reps = std::min(reps, 3u);
    iters = std::min(iters, 2u);
  }
  if (!capacity_max_set) capacity_max = quick ? 0 : 1'000'000;

  bench::print_header(
      "Search hot-path throughput: optimized engine vs pre-PR reference",
      "scheduling-capacity model of Sec. 4.1 (vertex budget = Q_s / cost)",
      "optimized >= 2x vertices/sec on the FIG5 m=10 n=1000 cell");

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_search_throughput\",\n  \"mode\": \""
       << (quick ? "quick" : "full") << "\",\n  \"reps\": " << reps
       << ",\n  \"iters\": " << iters << ",\n  \"configs\": [\n";

  std::cout << "cell                            |   vert/s(ref) |  "
               "vert/s(opt) | ns/v(ref) | ns/v(opt) | speedup\n"
            << "--------------------------------+---------------+------------"
               "--+-----------+-----------+--------\n";

  bool first = true;
  double acceptance_speedup = 0;
  for (const Cell& cell : make_cells()) {
    if (quick && !cell.quick) continue;

    const auto net = machine::Interconnect::cut_through(cell.m, msec(5));
    std::vector<PhaseInput> inputs;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      inputs.push_back(make_input(cell, rep));
    }

    // Safety: perf numbers only count if both engines agree bit-for-bit.
    for (const PhaseInput& in : inputs) {
      const SearchResult fast = search::SearchEngine(cell.config)
                                    .run(in.batch, in.base_loads, in.delivery,
                                         net, in.budget);
      const SearchResult ref =
          search::reference::run(cell.config, in.batch, in.base_loads,
                                 in.delivery, net, in.budget);
      require_identical(fast, ref, cell.name);
    }

    const EngineNumbers ref = measure(
        inputs, net, iters, [&](const PhaseInput& in, const auto& n) {
          return search::reference::run(cell.config, in.batch, in.base_loads,
                                        in.delivery, n, in.budget);
        });
    const EngineNumbers opt = measure(
        inputs, net, iters, [&](const PhaseInput& in, const auto& n) {
          return search::SearchEngine(cell.config)
              .run(in.batch, in.base_loads, in.delivery, n, in.budget);
        });
    const double speedup = ref.vertices_per_sec > 0
                               ? opt.vertices_per_sec / ref.vertices_per_sec
                               : 0;
    if (cell.name == "fig5_m10_n1000_dfs_assign") acceptance_speedup = speedup;

    std::cout << cell.name;
    for (std::size_t pad = cell.name.size(); pad < 32; ++pad) std::cout << ' ';
    std::cout << "| " << std::uint64_t(ref.vertices_per_sec) << " | "
              << std::uint64_t(opt.vertices_per_sec) << " | "
              << exp::fmt(ref.ns_per_vertex, 2) << " | "
              << exp::fmt(opt.ns_per_vertex, 2) << " | "
              << exp::fmt(speedup, 2) << "x\n";

    if (!first) json << ",\n";
    first = false;
    json << "   {\"config\": \"" << cell.name << "\", \"n\": " << cell.n
         << ", \"m\": " << cell.m << ", \"strategy\": \""
         << strategy_name(cell.config) << "\", \"task_order\": \""
         << order_name(cell.config) << "\", \"representation\": \""
         << repr_name(cell.config)
         << "\", \"vertex_budget\": " << (std::uint64_t{200} * cell.n)
         << ", \"vertices_per_run\": " << (opt.vertices / (reps * iters))
         << ",\n";
    json_engine(json, "reference", ref);
    json << ",\n";
    json_engine(json, "optimized", opt);
    json << ",\n    \"speedup_vertices_per_sec\": " << exp::fmt(speedup, 3)
         << "}";
  }
  json << "\n  ],\n";

  // ---- parallel engine: threads scaling table ---------------------------
  // Same cells, ParallelSearchEngine over K threads. Every parallel result
  // is checked bit-identical against the sequential engine before any
  // timing counts. Useful throughput = budgeted vertices/sec (the replay's
  // exact sequential accounting); speculative throughput additionally
  // counts exploration past the sequential frontier — the metric that
  // scales with cores, since speculation is what the shards parallelize.
  const std::uint32_t hw = std::thread::hardware_concurrency();
  json << "  \"hardware_concurrency\": " << hw
       << ",\n  \"threads_scaling\": [\n";

  std::cout << "\nthreads scaling (parallel engine, K workers, "
            << "hardware_concurrency=" << hw << ")\n"
            << "cell                            |  K | wall vert/s | "
               "spec vert/s | speedup | efficiency\n"
            << "--------------------------------+----+-------------+----------"
               "---+---------+-----------\n";

  const std::vector<std::uint32_t> thread_axis = {1, 2, 4, 8, 16};
  bool first_scale = true;
  for (const Cell& cell : make_cells()) {
    const bool scaling_cell = cell.name == "fig5_m10_n1000_dfs_assign" ||
                              (!quick &&
                               (cell.name == "n1000_m10_bestfirst_assign" ||
                                cell.name == "n1000_m10_dfs_seq"));
    if (!scaling_cell) continue;

    const auto net = machine::Interconnect::cut_through(cell.m, msec(5));
    std::vector<PhaseInput> inputs;
    std::vector<SearchResult> sequential;
    const search::SearchEngine seq_engine(cell.config);
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      inputs.push_back(make_input(cell, rep));
      const PhaseInput& in = inputs.back();
      sequential.push_back(seq_engine.run(in.batch, in.base_loads,
                                          in.delivery, net, in.budget));
    }

    double base_vps = 0;
    for (const std::uint32_t k : thread_axis) {
      const search::ParallelSearchEngine engine(cell.config, k);
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const SearchResult par =
            engine.run(inputs[i].batch, inputs[i].base_loads,
                       inputs[i].delivery, net, inputs[i].budget);
        require_identical(par, sequential[i],
                          cell.name + " threads=" + std::to_string(k));
      }
      std::uint64_t total_ns = 0, useful = 0, speculative = 0;
      for (const PhaseInput& in : inputs) {
        for (std::uint32_t it = 0; it < iters; ++it) {
          const auto t0 = std::chrono::steady_clock::now();
          const SearchResult r =
              engine.run(in.batch, in.base_loads, in.delivery, net, in.budget);
          total_ns += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
          useful += r.stats.vertices_generated;
          // threads == 1 delegates to the sequential engine: every vertex
          // it generates is both useful and "speculative" work performed.
          speculative += k == 1
                             ? r.stats.vertices_generated
                             : engine.last_run_stats().speculative_vertices;
        }
      }
      const double secs = double(total_ns) * 1e-9;
      const double wall_vps = secs > 0 ? double(useful) / secs : 0;
      const double spec_vps = secs > 0 ? double(speculative) / secs : 0;
      if (k == 1) base_vps = wall_vps;
      const double speedup = base_vps > 0 ? wall_vps / base_vps : 0;
      const double efficiency =
          base_vps > 0 ? 100.0 * spec_vps / (double(k) * base_vps) : 0;

      std::cout << cell.name;
      for (std::size_t pad = cell.name.size(); pad < 32; ++pad) {
        std::cout << ' ';
      }
      std::cout << "| " << k << " | " << std::uint64_t(wall_vps) << " | "
                << std::uint64_t(spec_vps) << " | " << exp::fmt(speedup, 2)
                << "x | " << exp::fmt(efficiency, 1) << "%\n";

      if (!first_scale) json << ",\n";
      first_scale = false;
      json << "   {\"config\": \"" << cell.name << "\", \"threads\": " << k
           << ", \"vertices_per_sec\": " << std::uint64_t(wall_vps)
           << ", \"speculative_vertices_per_sec\": " << std::uint64_t(spec_vps)
           << ", \"speedup_vs_1\": " << exp::fmt(speedup, 3)
           << ", \"efficiency_pct\": " << exp::fmt(efficiency, 1) << "}";
    }
  }
  json << "\n  ],\n";

  // ---- capacity table: wide-header sizes with memory columns ------------
  // Schedule-preserving by proof at 10^5 (bit-identical to the reference)
  // and by oracle at 10^6 (full invariant re-derivation + parallel-replay
  // bit-identity) — the reference's per-vertex node heap makes a 10^7
  // vertex replay the memory bottleneck, not the engine under test.
  json << "  \"capacity_max\": " << capacity_max << ",\n  \"capacity\": [\n";
  std::cout << "\ncapacity sweep (wide-header sizes, --capacity-max "
            << capacity_max << ")\n"
            << "cell                            |  vert/s(opt) | ns/v(opt) | "
               "peak_rss | workspace | par_arena\n"
            << "--------------------------------+--------------+-----------+-"
               "---------+-----------+----------\n";
  bool first_cap = true;
  for (const std::uint32_t cap_n : {100'000u, 1'000'000u}) {
    if (std::uint64_t{cap_n} > capacity_max) continue;
    const std::uint32_t cap_m = 10;
    const SimDuration cap_comm = usec(200);
    const auto net = machine::Interconnect::cut_through(cap_m, cap_comm);
    const std::string name =
        "capacity_n" + std::to_string(cap_n) + "_m" + std::to_string(cap_m);
    const PhaseInput in = make_capacity_input(cap_n, cap_m, 0);
    SearchConfig cfg;  // RT-SADS defaults: DFS, assignment-oriented, CE.

    // Proof obligations before any timing counts.
    const search::SearchEngine engine(cfg);
    const SearchResult opt_result =
        engine.run(in.batch, in.base_loads, in.delivery, net, in.budget);
    check_capacity_invariants(opt_result, in, cap_m, cap_comm, name);
    bool ref_checked = false;
    if (cap_n <= 100'000u) {
      const SearchResult ref_result = search::reference::run(
          cfg, in.batch, in.base_loads, in.delivery, net, in.budget);
      require_identical(opt_result, ref_result, name);
      ref_checked = true;
    }
    const search::ParallelSearchEngine par(cfg, 2);
    const SearchResult par_result =
        par.run(in.batch, in.base_loads, in.delivery, net, in.budget);
    require_identical(opt_result, par_result, name + " parallel");
    const std::uint64_t par_arena = par.last_run_stats().arena_bytes;

    // Timing: the sequential engine on the pooled warm arena.
    const std::uint32_t cap_iters = cap_n >= 1'000'000u ? 1 : 2;
    std::uint64_t total_ns = 0, total_vertices = 0;
    for (std::uint32_t it = 0; it < cap_iters; ++it) {
      const auto t0 = std::chrono::steady_clock::now();
      const SearchResult r =
          engine.run(in.batch, in.base_loads, in.delivery, net, in.budget);
      total_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      total_vertices += r.stats.vertices_generated;
    }
    const double secs = double(total_ns) * 1e-9;
    const double vps = secs > 0 ? double(total_vertices) / secs : 0;
    const double nspv =
        total_vertices > 0 ? double(total_ns) / double(total_vertices) : 0;
    const std::uint64_t rss = peak_rss_bytes();
    const std::uint64_t workspace = search::thread_workspace_peak_bytes();

    std::cout << name;
    for (std::size_t pad = name.size(); pad < 32; ++pad) std::cout << ' ';
    std::cout << "| " << std::uint64_t(vps) << " | " << exp::fmt(nspv, 2)
              << " | " << (rss >> 20) << "M | " << (workspace >> 20)
              << "M | " << (par_arena >> 20) << "M\n";

    if (!first_cap) json << ",\n";
    first_cap = false;
    json << "   {\"config\": \"" << name << "\", \"n\": " << cap_n
         << ", \"m\": " << cap_m
         << ", \"vertex_budget\": " << in.budget
         << ", \"vertices_per_run\": " << (total_vertices / cap_iters)
         << ", \"vertices_per_sec\": " << std::uint64_t(vps)
         << ", \"ns_per_vertex\": " << exp::fmt(nspv, 2)
         << ", \"reached_leaf\": true"
         << ", \"reference_checked\": " << (ref_checked ? "true" : "false")
         << ", \"peak_rss_bytes\": " << rss
         << ", \"workspace_peak_bytes\": " << workspace
         << ", \"parallel_arena_bytes\": " << par_arena << "}";
  }
  json << "\n  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "\nwrote " << out_path << "\n";
  std::cout << "acceptance (fig5_m10_n1000_dfs_assign) speedup: "
            << exp::fmt(acceptance_speedup, 2) << "x (target >= 2x)\n";
  return 0;
}
